(* Tests for morsel-driven parallel execution: the Pool scheduler's
   determinism contract, the domain-safety of the shared Budget and
   Profile instruments, and — the point of the whole layer — exact
   serial/parallel parity of the physical executor: identical rows in
   identical order, the identical error when several morsels could
   raise, and identical budget accounting, at every jobs width.

   Parallel runs force tiny morsels (the [?morsel] parameter) so that
   even toy tables split into many tasks and genuinely exercise the
   fan-out/merge machinery. *)

(* The engine reads XRQ_MORSEL lazily at its first physical execution;
   set it before anything runs so engine-level parity tests (which have
   no morsel knob) also split their small corpora into many morsels. *)
let () = Unix.putenv "XRQ_MORSEL" "4"

open Algebra
module Pool = Basis.Pool
module Budget = Basis.Budget
module Err = Basis.Err

let v_int i = Value.Int i
let v_str s = Value.Str s
let v_dbl f = Value.Dbl f
let v_bool b = Value.Bool b

let store () = Xmldb.Doc_store.create ()

let table_strings t =
  List.init (Table.nrows t) (fun r ->
      String.concat "|"
        (Array.to_list
           (Array.map (Format.asprintf "%a" Value.pp) (Table.row t r))))

(* ------------------------------------------------------------ the pool *)

let test_pool_exactly_once () =
  let n = 200 in
  let ran = Array.init n (fun _ -> Atomic.make 0) in
  Pool.run (Pool.get ()) ~jobs:4 n (fun i -> Atomic.incr ran.(i));
  Array.iteri
    (fun i c ->
       Alcotest.(check int) (Printf.sprintf "task %d ran exactly once" i) 1
         (Atomic.get c))
    ran

let test_pool_lowest_failure_wins () =
  let n = 50 in
  let ran = Array.init n (fun _ -> Atomic.make 0) in
  let outcome =
    match
      Pool.run (Pool.get ()) ~jobs:4 n (fun i ->
          Atomic.incr ran.(i);
          if i = 3 || i = 17 then failwith (Printf.sprintf "task %d" i))
    with
    | () -> "ok"
    | exception Failure m -> m
  in
  (* both failures were recorded; the lowest task index is re-raised *)
  Alcotest.(check string) "lowest-indexed failure re-raised" "task 3" outcome;
  Array.iteri
    (fun i c ->
       Alcotest.(check int)
         (Printf.sprintf "task %d still ran despite failures" i) 1
         (Atomic.get c))
    ran

let test_pool_pretripped_stop () =
  let ran = Atomic.make 0 in
  Pool.run (Pool.get ()) ~jobs:4 ~stop:(fun () -> true) 100 (fun _ ->
      Atomic.incr ran);
  Alcotest.(check int) "a pre-tripped stop claims no tasks" 0 (Atomic.get ran)

let test_pool_serial_inline () =
  let me = Domain.self () in
  let order = ref [] in
  Pool.run (Pool.get ()) ~jobs:1 10 (fun i ->
      Alcotest.(check bool) "jobs=1 stays on the calling domain" true
        (Domain.self () = me);
      order := i :: !order);
  Alcotest.(check (list int)) "jobs=1 runs tasks in index order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !order)

let test_pool_nested_degrades () =
  let inner = Array.init 10 (fun _ -> Atomic.make 0) in
  let pool = Pool.get () in
  Pool.run pool ~jobs:4 4 (fun _ ->
      (* the board is occupied by the outer job: the nested run must
         degrade to inline serial execution, not deadlock or clobber *)
      Pool.run pool ~jobs:4 10 (fun i -> Atomic.incr inner.(i)));
  Array.iteri
    (fun i c ->
       Alcotest.(check int) (Printf.sprintf "inner task %d ran 4x" i) 4
         (Atomic.get c))
    inner

let test_pool_cancel_mid_job () =
  let c = Budget.cancel_switch () in
  let g = Budget.start (Budget.limits ~cancel:c ()) in
  let n = 64 in
  let ran = Array.init n (fun _ -> Atomic.make 0) in
  Pool.run (Pool.get ()) ~jobs:4 ~stop:(fun () -> Budget.interrupted g) n
    (fun i ->
       Atomic.incr ran.(i);
       if i = 0 then Budget.cancel c);
  (* task 0 always runs (stop is still false when it is claimed); every
     other task runs at most once; the guard now reports interruption and
     converts it into the canonical cancellation error *)
  Alcotest.(check int) "task 0 ran" 1 (Atomic.get ran.(0));
  Array.iteri
    (fun i cnt ->
       Alcotest.(check bool)
         (Printf.sprintf "task %d at most once" i) true
         (Atomic.get cnt <= 1))
    ran;
  Alcotest.(check bool) "guard observes the cancellation" true
    (Budget.interrupted g);
  let msg =
    match Budget.check_interrupted g with
    | () -> "no error"
    | exception Err.Resource_error m -> m
  in
  Alcotest.(check string) "canonical cancellation error" "query cancelled" msg

(* ------------------------------------- budget counters across domains *)

let test_budget_atomic_counters () =
  let g = Budget.start Budget.unlimited in
  let per_task = 10_000 in
  Pool.run (Pool.get ()) ~jobs:4 4 (fun _ ->
      for _ = 1 to per_task do
        Budget.check g;
        Budget.add_rows g 1;
        Budget.add_bytes g 2
      done);
  Alcotest.(check int) "no op evaluation lost" (4 * per_task) (Budget.ops g);
  Alcotest.(check int) "no row lost" (4 * per_task) (Budget.rows g);
  Alcotest.(check int) "no byte lost" (2 * 4 * per_task) (Budget.bytes g)

let test_budget_cancel_from_other_domain () =
  let c = Budget.cancel_switch () in
  let g = Budget.start (Budget.limits ~cancel:c ()) in
  Alcotest.(check bool) "not yet interrupted" false (Budget.interrupted g);
  let d = Domain.spawn (fun () -> Budget.cancel c) in
  Domain.join d;
  Alcotest.(check bool) "cancellation visible across domains" true
    (Budget.interrupted g)

(* ------------------------------------ profile counters across domains *)

let test_profile_hammer () =
  let p = Profile.create () in
  let per_task = 10_000 in
  Pool.run (Pool.get ()) ~jobs:4 4 (fun d ->
      for k = 1 to per_task do
        Profile.add p "bucket" 0.001;
        Profile.add_node p ((d * per_task) + k) "lbl" 0.0005;
        Profile.add_kernel p ~fused:2 ~rows_in:3 ~rows_out:1;
        if k mod 2 = 0 then Profile.count_retype p
      done);
  let n = 4 * per_task in
  Alcotest.(check int) "node evals exact" n (Profile.node_evals p);
  Alcotest.(check int) "unique nodes exact" n (Profile.unique_nodes p);
  let ph = Profile.phys p in
  Alcotest.(check int) "kernels exact" n ph.Profile.kernels;
  Alcotest.(check int) "fused ops exact" (2 * n) ph.Profile.fused_ops;
  Alcotest.(check int) "rows in exact" (3 * n) ph.Profile.rows_in;
  Alcotest.(check int) "rows out exact" n ph.Profile.rows_out;
  Alcotest.(check int) "retypes exact" (n / 2) ph.Profile.retypes;
  let total = Profile.total p in
  Alcotest.(check bool) "bucket time within float tolerance" true
    (Float.abs (total -. (float_of_int n *. 0.001)) < 1e-6)

(* ------------------------------------- physical-level result parity *)

let jobs_widths = [ 2; 3; 4; 8 ]

let run_phys ?guard ?jobs ?morsel plan =
  Physical.run ?guard ?jobs ?morsel (store ()) (Lower.lower plan)

let check_par_parity ?(morsel = 2) msg plan =
  let serial = run_phys plan in
  List.iter
    (fun jobs ->
       let par = run_phys ~jobs ~morsel plan in
       Alcotest.(check (list string))
         (Printf.sprintf "%s: schema (jobs=%d)" msg jobs)
         (Array.to_list (Table.schema serial))
         (Array.to_list (Table.schema par));
       Alcotest.(check (list string))
         (Printf.sprintf "%s: rows (jobs=%d)" msg jobs)
         (table_strings serial) (table_strings par))
    jobs_widths

let phys_outcome ?guard ?jobs ?morsel plan =
  match run_phys ?guard ?jobs ?morsel plan with
  | t -> "ok: " ^ String.concat " ; " (table_strings t)
  | exception Err.Dynamic_error m -> "dynamic: " ^ m
  | exception Err.Resource_error m -> "resource: " ^ m
  | exception Err.Internal_error m -> "internal: " ^ m

let test_pipe_parity () =
  let b = Plan.builder () in
  let base =
    Plan.lit b [| "iter"; "item" |]
      (List.init 500 (fun i -> [| v_int (i mod 11); v_int (i * 13 mod 101) |]))
  in
  check_par_parity ~morsel:16 "fused select chain"
    (Plan.select b
       (Plan.fun2 b
          (Plan.attach b base "seven" (v_int 7))
          "keep" Plan.P_lt "iter" "seven")
       "keep");
  check_par_parity ~morsel:16 "arithmetic chain"
    (Plan.fun2 b
       (Plan.fun2 b base "s" Plan.P_add "item" "iter")
       "p" Plan.P_mul "s" "item");
  (* stacked selections: the composed selection vector must concatenate
     per-morsel fragments back into the serial order *)
  check_par_parity ~morsel:8 "stacked selects"
    (Plan.select b
       (Plan.select b
          (Plan.fun2 b
             (Plan.fun2 b base "p" Plan.P_ge "item" "iter")
             "q" Plan.P_lt "iter" "item")
          "p")
       "q")

let test_join_parity () =
  let b = Plan.builder () in
  let left =
    Plan.lit b [| "iter"; "k" |]
      (List.init 200 (fun i -> [| v_int i; v_int (i mod 10) |]))
  in
  let right =
    Plan.lit b [| "j"; "k2" |]
      (List.init 50 (fun i -> [| v_int (100 + i); v_int (i mod 10) |]))
  in
  check_par_parity ~morsel:8 "int equi-join with duplicate keys"
    (Plan.join b left right "k" "k2");
  let strs =
    Plan.lit b [| "i"; "inc" |]
      (List.init 60 (fun i ->
           [| v_int i; v_str (string_of_int (i * 37 mod 500)) |]))
  in
  let nums =
    Plan.lit b [| "j"; "price" |]
      (List.init 40 (fun j -> [| v_int j; v_dbl (float_of_int (j * 11)) |]))
  in
  (* the coerced nested loop — XMark Q11/Q12's hot shape *)
  check_par_parity ~morsel:4 "theta float coercion"
    (Plan.thetajoin b strs nums "inc" Plan.P_gt "price");
  check_par_parity ~morsel:4 "theta flipped"
    (Plan.thetajoin b nums strs "price" Plan.P_le "inc")

let test_aggregate_parity () =
  let b = Plan.builder () in
  let base =
    Plan.lit b [| "iter"; "item" |]
      (List.init 300 (fun i ->
           (* group keys appear in a scattered first-seen order *)
           [| v_int (i * 7 mod 13); v_int (i * 13 mod 101) |]))
  in
  check_par_parity ~morsel:8 "grouped count"
    (Plan.aggr b base "n" Plan.A_count None (Some "iter") None);
  check_par_parity ~morsel:8 "grouped sum"
    (Plan.aggr b base "s" Plan.A_sum (Some "item") (Some "iter") None);
  check_par_parity ~morsel:8 "grouped min"
    (Plan.aggr b base "m" Plan.A_min (Some "item") (Some "iter") None);
  check_par_parity ~morsel:8 "grouped max"
    (Plan.aggr b base "x" Plan.A_max (Some "item") (Some "iter") None);
  check_par_parity ~morsel:8 "ungrouped sum"
    (Plan.aggr b base "s" Plan.A_sum (Some "item") None None);
  check_par_parity ~morsel:8 "counted predicate"
    (Plan.aggr b
       (Plan.select b (Plan.fun2 b base "c" Plan.P_gt "item" "iter") "c")
       "n" Plan.A_count None (Some "iter") None)

let test_serial_gated_kernels_under_jobs () =
  let b = Plan.builder () in
  let base =
    Plan.lit b [| "iter"; "item" |]
      (List.init 120 (fun i -> [| v_int (i mod 5); v_int (i * 13 mod 17) |]))
  in
  (* rownum ([%]), distinct, rowid: gated serial, but they sit above and
     below parallel kernels and must compose with them under any width *)
  check_par_parity ~morsel:8 "rownum over a parallel selection"
    (Plan.rownum b
       (Plan.select b (Plan.fun2 b base "c" Plan.P_ge "item" "iter") "c")
       "pos"
       [ ("item", Plan.Desc) ]
       (Some "iter"));
  check_par_parity ~morsel:8 "distinct over a parallel chain"
    (Plan.distinct b
       (Plan.project b
          (Plan.fun2 b base "s" Plan.P_add "item" "iter")
          [ ("s", "s") ]));
  check_par_parity ~morsel:8 "rowid over a parallel selection"
    (Plan.rowid b
       (Plan.select b (Plan.fun2 b base "c" Plan.P_lt "item" "iter") "c")
       "id")

let test_mixed_columns_under_jobs () =
  let b = Plan.builder () in
  let mixed =
    Plan.lit b [| "iter"; "item" |]
      (List.init 40 (fun i ->
           let v =
             match i mod 4 with
             | 0 -> v_int i
             | 1 -> v_str (string_of_int (i mod 3))
             | 2 -> v_dbl (float_of_int i /. 2.0)
             | _ -> v_bool (i mod 8 < 4)
           in
           [| v_int i; v |]))
  in
  check_par_parity ~morsel:4 "boxed fallback under jobs"
    (Plan.rownum b mixed "pos" [ ("item", Plan.Asc) ] None);
  check_par_parity ~morsel:4 "distinct over mixed under jobs"
    (Plan.distinct b (Plan.project b mixed [ ("item", "item") ]))

(* ---------------------------------------------- error-choice parity *)

(* Two rows raise, in different morsels, with *distinguishable* messages
   (the non-boolean's type name is in the text). Whatever morsel a worker
   happens to finish first, the committed error must be the one serial
   execution meets first — the lowest row index. *)
let test_error_choice_across_morsels () =
  let b = Plan.builder () in
  let rows =
    List.init 200 (fun i ->
        let c =
          if i = 7 then v_str "s"
          else if i = 190 then v_int 3
          else v_bool true
        in
        [| v_int i; c |])
  in
  let plan = Plan.select b (Plan.lit b [| "iter"; "c" |] rows) "c" in
  let serial = phys_outcome plan in
  Alcotest.(check bool) "serial raises on the first bad row (a string)" true
    (serial = "dynamic: selection on non-boolean value xs:string");
  List.iter
    (fun jobs ->
       Alcotest.(check string)
         (Printf.sprintf "error choice (jobs=%d)" jobs)
         serial
         (phys_outcome ~jobs ~morsel:8 plan))
    jobs_widths;
  (* same row, different kinds of error: arithmetic in a fused chain *)
  let div_rows =
    List.init 100 (fun i ->
        [| v_int i; v_int (if i = 23 || i = 77 then 0 else 1 + (i mod 5)) |])
  in
  let div_plan =
    Plan.fun2 b (Plan.lit b [| "x"; "y" |] div_rows) "r" Plan.P_idiv "x" "y"
  in
  let serial_div = phys_outcome div_plan in
  List.iter
    (fun jobs ->
       Alcotest.(check string)
         (Printf.sprintf "division error parity (jobs=%d)" jobs)
         serial_div
         (phys_outcome ~jobs ~morsel:8 div_plan))
    jobs_widths

(* --------------------------------------------- budget / cancel parity *)

let big_plan b =
  let base =
    Plan.lit b [| "iter"; "item" |]
      (List.init 400 (fun i -> [| v_int (i mod 7); v_int (i * 13 mod 101) |]))
  in
  Plan.distinct b (Plan.fun2 b base "r" Plan.P_mul "item" "iter")

let test_budget_trip_parity () =
  let b = Plan.builder () in
  let plan = big_plan b in
  let with_spec spec jobs =
    let guard = Budget.start spec in
    if jobs = 1 then phys_outcome ~guard plan
    else phys_outcome ~guard ~jobs ~morsel:8 plan
  in
  List.iter
    (fun spec ->
       let serial = with_spec spec 1 in
       Alcotest.(check bool) "the budget actually trips" true
         (String.length serial > 9 && String.sub serial 0 9 = "resource:");
       List.iter
         (fun jobs ->
            Alcotest.(check string)
              (Printf.sprintf "budget message parity (jobs=%d)" jobs)
              serial (with_spec spec jobs))
         jobs_widths)
    [ Budget.limits ~max_rows:100 ();
      Budget.limits ~max_ops:2 ();
      Budget.limits ~timeout_s:0.0 () ];
  (* deterministic fault injection: op counting stays on the coordinator,
     so the n-th boundary is the same boundary at every width *)
  let fault = Budget.limits ~fault_at:2 () in
  let serial = with_spec fault 1 in
  Alcotest.(check bool) "the fault fires" true
    (String.length serial > 9 && String.sub serial 0 9 = "internal:");
  List.iter
    (fun jobs ->
       Alcotest.(check string)
         (Printf.sprintf "fault-injection parity (jobs=%d)" jobs)
         serial (with_spec fault jobs))
    jobs_widths

let test_cancelled_before_run_parity () =
  let b = Plan.builder () in
  let plan = big_plan b in
  let outcome jobs =
    let c = Budget.cancel_switch () in
    Budget.cancel c;
    let guard = Budget.start (Budget.limits ~cancel:c ()) in
    if jobs = 1 then phys_outcome ~guard plan
    else phys_outcome ~guard ~jobs ~morsel:8 plan
  in
  let serial = outcome 1 in
  Alcotest.(check string) "serial sees the cancellation"
    "resource: query cancelled" serial;
  List.iter
    (fun jobs ->
       Alcotest.(check string)
         (Printf.sprintf "cancellation parity (jobs=%d)" jobs)
         serial (outcome jobs))
    jobs_widths

(* A cancellation raced from a foreign domain mid-query may land before
   or after the query finishes — but the outcome must be one of exactly
   two canonical results: the full answer or the cancellation error. *)
let test_cancel_race_canonical_outcomes () =
  let b = Plan.builder () in
  let plan = big_plan b in
  let expected_ok = phys_outcome plan in
  for _ = 1 to 5 do
    let c = Budget.cancel_switch () in
    let guard = Budget.start (Budget.limits ~cancel:c ()) in
    let killer =
      Domain.spawn (fun () ->
          Unix.sleepf 0.0005;
          Budget.cancel c)
    in
    let got = phys_outcome ~guard ~jobs:4 ~morsel:2 plan in
    Domain.join killer;
    Alcotest.(check bool)
      "mid-run cancel yields the answer or the canonical error" true
      (got = expected_ok || got = "resource: query cancelled")
  done

(* -------------------------------------------- engine corpus parity *)

let doc_xml = "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"
let auction_xml = lazy (Xmark.Xmark_gen.generate ~scale:0.002 ())

let corpus_store () =
  let st = Xmldb.Doc_store.create () in
  let _ =
    Xmldb.Xml_parser.load_document st ~uri:"auction.xml"
      (Lazy.force auction_xml)
  in
  let _ = Xmldb.Xml_parser.load_document st ~uri:"t.xml" doc_xml in
  st

let ser st items =
  List.map
    (fun it ->
       match it with
       | Value.Node n -> Xmldb.Serialize.node_to_string st n
       | v -> Value.to_string v)
    items

(* A fresh store per run: constructors mutate the store, and isolation
   keeps node serializations comparable across runs. *)
let engine_outcome ~opts q =
  let st = corpus_store () in
  match Engine.run_result ~opts st q with
  | Ok r -> "ok: " ^ String.concat " | " (ser st r.Engine.items)
  | Error { Engine.kind; message } -> Err.kind_label kind ^ ": " ^ message

let queries_dir =
  if Sys.file_exists "../queries" then "../queries" else "queries"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let paper_queries () =
  Sys.readdir queries_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".xq")
  |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat queries_dir f)))

let check_corpus_parity (name, q) =
  let serial = engine_outcome ~opts:Engine.default_opts q in
  List.iter
    (fun jobs ->
       Alcotest.(check string)
         (Printf.sprintf "%s (jobs=%d)" name jobs)
         serial
         (engine_outcome ~opts:{ Engine.default_opts with Engine.jobs } q))
    [ 2; 4; 8 ]

let test_paper_corpus_parity () = List.iter check_corpus_parity (paper_queries ())

let test_xmark_corpus_parity () =
  List.iter check_corpus_parity Xmark.Xmark_queries.all

let test_engine_budget_parity () =
  (* a budget that trips mid-query: the parallel run must report the
     identical resource error, not a different counter reading *)
  let spec = Basis.Budget.limits ~max_rows:200 () in
  let opts jobs = { Engine.default_opts with Engine.budget = Some spec; jobs } in
  let q = Xmark.Xmark_queries.q11 in
  let serial = engine_outcome ~opts:(opts 1) q in
  Alcotest.(check bool) "the engine budget actually trips" true
    (String.length serial > 9 && String.sub serial 0 9 = "resource:");
  List.iter
    (fun jobs ->
       Alcotest.(check string)
         (Printf.sprintf "engine budget parity (jobs=%d)" jobs)
         serial
         (engine_outcome ~opts:(opts jobs) q))
    [ 2; 4 ]

let test_engine_cancel_parity () =
  let outcome jobs =
    let c = Basis.Budget.cancel_switch () in
    Basis.Budget.cancel c;
    let spec = Basis.Budget.limits ~cancel:c () in
    engine_outcome
      ~opts:{ Engine.default_opts with Engine.budget = Some spec; jobs }
      Xmark.Xmark_queries.q1
  in
  let serial = outcome 1 in
  Alcotest.(check string) "cancelled before run" "resource: query cancelled"
    serial;
  List.iter
    (fun jobs ->
       Alcotest.(check string)
         (Printf.sprintf "engine cancel parity (jobs=%d)" jobs)
         serial (outcome jobs))
    [ 2; 4 ]

let () =
  Alcotest.run "parallel"
    [ ("pool",
       [ Alcotest.test_case "every task exactly once" `Quick
           test_pool_exactly_once;
         Alcotest.test_case "lowest-indexed failure wins" `Quick
           test_pool_lowest_failure_wins;
         Alcotest.test_case "pre-tripped stop" `Quick test_pool_pretripped_stop;
         Alcotest.test_case "jobs=1 runs inline in order" `Quick
           test_pool_serial_inline;
         Alcotest.test_case "nested run degrades to serial" `Quick
           test_pool_nested_degrades;
         Alcotest.test_case "cancellation mid-job" `Quick
           test_pool_cancel_mid_job ]);
      ("shared instruments",
       [ Alcotest.test_case "budget counters are atomic" `Quick
           test_budget_atomic_counters;
         Alcotest.test_case "cancel crosses domains" `Quick
           test_budget_cancel_from_other_domain;
         Alcotest.test_case "profile survives a 4-domain hammer" `Quick
           test_profile_hammer ]);
      ("physical parity",
       [ Alcotest.test_case "pipes" `Quick test_pipe_parity;
         Alcotest.test_case "joins" `Quick test_join_parity;
         Alcotest.test_case "aggregates" `Quick test_aggregate_parity;
         Alcotest.test_case "serial-gated kernels" `Quick
           test_serial_gated_kernels_under_jobs;
         Alcotest.test_case "mixed columns" `Quick
           test_mixed_columns_under_jobs ]);
      ("error determinism",
       [ Alcotest.test_case "error choice across morsels" `Quick
           test_error_choice_across_morsels;
         Alcotest.test_case "budget trips" `Quick test_budget_trip_parity;
         Alcotest.test_case "cancelled before run" `Quick
           test_cancelled_before_run_parity;
         Alcotest.test_case "mid-run cancel race" `Quick
           test_cancel_race_canonical_outcomes ]);
      ("engine corpus",
       [ Alcotest.test_case "paper queries" `Slow test_paper_corpus_parity;
         Alcotest.test_case "XMark Q1-Q20" `Slow test_xmark_corpus_parity;
         Alcotest.test_case "budget parity" `Quick test_engine_budget_parity;
         Alcotest.test_case "cancel parity" `Quick test_engine_cancel_parity ])
    ]
