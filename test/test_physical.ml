(* Tests for the physical-plan layer: lowering (kernel fusion, sharing
   preservation) and the typed kernels, checked differentially against
   the boxed logical executor.

   The physical executor promises *exact* parity with the boxed one —
   including row order (rownum's stability tie-break makes row order
   observable) — so tables are compared row-for-row, not as multisets. *)

open Algebra

let v_int i = Value.Int i
let v_str s = Value.Str s
let v_dbl f = Value.Dbl f
let v_bool b = Value.Bool b

let store () = Xmldb.Doc_store.create ()

let table_strings t =
  List.init (Table.nrows t) (fun r ->
      String.concat "|"
        (Array.to_list
           (Array.map (Format.asprintf "%a" Value.pp) (Table.row t r))))

(* Run a plan through both executors against fresh stores and demand
   identical schemas and identical rows in identical order. *)
let check_parity msg plan =
  let boxed = Eval.run (store ()) plan in
  let physical = Physical.run (store ()) (Lower.lower plan) in
  Alcotest.(check (list string))
    (msg ^ ": schema")
    (Array.to_list (Table.schema boxed))
    (Array.to_list (Table.schema physical));
  Alcotest.(check (list string))
    (msg ^ ": rows")
    (table_strings boxed) (table_strings physical)

(* Both executors must fail identically: same exception constructor and
   same message. *)
let check_error_parity msg plan =
  let outcome run =
    match run () with
    | (_ : Table.t) -> "ok"
    | exception Basis.Err.Dynamic_error m -> "dynamic: " ^ m
    | exception Basis.Err.Internal_error m -> "internal: " ^ m
  in
  Alcotest.(check string) msg
    (outcome (fun () -> Eval.run (store ()) plan))
    (outcome (fun () -> Physical.run (store ()) (Lower.lower plan)))

(* ------------------------------------------------------------ lowering *)

let test_fusion_chain () =
  let b = Plan.builder () in
  let base = Plan.lit b [| "iter"; "item" |]
      [ [| v_int 1; v_int 4 |]; [| v_int 2; v_int 7 |]; [| v_int 3; v_int 1 |] ]
  in
  (* attach · fun2 · select: a maximal chain, one kernel *)
  let p =
    Plan.select b
      (Plan.fun2 b
         (Plan.attach b base "five" (v_int 5))
         "keep" Plan.P_lt "item" "five")
      "keep"
  in
  let pp = Lower.lower p in
  Alcotest.(check int) "two kernels (pipe + source)" 2 (Lower.count_kernels pp);
  (match pp.Physical.pop with
   | Physical.K_pipe ops ->
     Alcotest.(check int) "three fused ops" 3 (List.length ops)
   | _ -> Alcotest.fail "expected a K_pipe at the root");
  Alcotest.(check int) "covered = logical ops minus source" 4
    (Lower.count_covered pp);
  check_parity "fused chain" p

let test_fusion_stops_at_sharing () =
  let b = Plan.builder () in
  let base = Plan.lit b [| "item" |] [ [| v_int 1 |]; [| v_int 2 |] ] in
  (* [shared] feeds two parents: the chain above it must not swallow it *)
  let shared = Plan.attach b base "k" (v_int 1) in
  let left = Plan.fun2 b shared "s" Plan.P_add "item" "k" in
  let p = Plan.union b (Plan.project b left [ ("item", "s") ])
      (Plan.project b shared [ ("item", "item") ]) in
  let pp = Lower.lower p in
  let rec find_shared (n : Physical.pnode) seen =
    if List.memq n.Physical.pid !seen then true
    else begin
      seen := n.Physical.pid :: !seen;
      List.exists (fun c -> find_shared c seen) n.Physical.pinputs
    end
  in
  Alcotest.(check bool) "shared node kept its own kernel" true
    (find_shared pp (ref []));
  check_parity "sharing preserved" p

(* -------------------------------------------------------- empty tables *)

let test_empty_tables () =
  let b = Plan.builder () in
  let empty = Plan.lit b [| "iter"; "item" |] [] in
  check_parity "select over empty"
    (Plan.select b (Plan.fun2 b empty "c" Plan.P_lt "item" "iter") "c");
  check_parity "distinct over empty" (Plan.distinct b empty);
  check_parity "rownum over empty"
    (Plan.rownum b empty "pos" [ ("item", Plan.Asc) ] None);
  check_parity "rowid over empty" (Plan.rowid b empty "id");
  check_parity "join over empty"
    (Plan.join b empty
       (Plan.project b empty [ ("iter2", "iter"); ("item2", "item") ])
       "item" "item2");
  check_parity "union of empties"
    (Plan.union b empty (Plan.project b empty [ ("iter", "iter"); ("item", "item") ]));
  (* A_count with no grouping emits one row even on empty input *)
  check_parity "count over empty" (Plan.aggr b empty "n" Plan.A_count None None None);
  check_parity "grouped sum over empty"
    (Plan.aggr b empty "s" Plan.A_sum (Some "item") (Some "iter") None)

(* --------------------------------------------------- all-Mixed columns *)

let test_all_mixed_columns () =
  let b = Plan.builder () in
  (* one column mixing every atomic kind: no typed representation fits,
     every kernel must take its Mixed/boxed path *)
  let mixed = Plan.lit b [| "iter"; "item" |]
      [ [| v_int 1; v_int 3 |];
        [| v_int 2; v_str "s" |];
        [| v_int 3; v_dbl 2.5 |];
        [| v_int 4; v_bool true |];
        [| v_int 5; v_str "s" |];
        [| v_int 6; v_int 3 |] ]
  in
  check_parity "distinct over mixed"
    (Plan.distinct b (Plan.project b mixed [ ("item", "item") ]));
  check_parity "rownum orders mixed by the total order"
    (Plan.rownum b mixed "pos" [ ("item", Plan.Asc) ] None);
  check_parity "join on mixed keys"
    (Plan.join b mixed
       (Plan.project b mixed [ ("iter2", "iter"); ("item2", "item") ])
       "item" "item2");
  check_parity "semijoin on mixed keys"
    (Plan.semijoin b mixed
       (Plan.project b mixed [ ("k", "item") ]) [ ("item", "k") ]);
  check_parity "grouped count partitioned on mixed"
    (Plan.aggr b mixed "n" Plan.A_count None (Some "item") None)

(* ---------------------------------------------------- select-of-select *)

let test_select_of_select () =
  let b = Plan.builder () in
  let base = Plan.lit b [| "iter"; "item" |]
      (List.init 20 (fun i -> [| v_int (i mod 4); v_int i |]))
  in
  let sel1 =
    Plan.select b (Plan.fun2 b base "a" Plan.P_gt "item" "iter") "a"
  in
  let sel2 =
    Plan.select b
      (Plan.attach b
         (Plan.fun2 b sel1 "bnd" Plan.P_lt "item" "iter") "t" (v_bool true))
      "bnd"
  in
  let pp = Lower.lower sel2 in
  Alcotest.(check int) "both selections fuse into one pipe" 2
    (Lower.count_kernels pp);
  check_parity "select of select" sel2;
  (* a selection stacked directly on a selection (no recompute between) *)
  check_parity "directly stacked selects"
    (Plan.select b (Plan.select b
         (Plan.fun2 b
            (Plan.fun2 b base "p" Plan.P_ge "item" "iter")
            "q" Plan.P_lt "iter" "item")
         "p") "q")

(* ---------------------------------------- distinct over a selection *)

let test_distinct_over_selection () =
  let b = Plan.builder () in
  let base = Plan.lit b [| "iter"; "item" |]
      (List.init 30 (fun i -> [| v_int (i mod 3); v_int (i mod 5) |]))
  in
  let selected =
    Plan.select b (Plan.fun2 b base "c" Plan.P_ge "item" "iter") "c"
  in
  check_parity "distinct over a selection"
    (Plan.distinct b (Plan.project b selected [ ("item", "item") ]));
  check_parity "rowid over a selection (scattered numbering)"
    (Plan.rowid b selected "id");
  check_parity "rownum over a selection"
    (Plan.rownum b selected "pos" [ ("item", Plan.Desc) ] (Some "iter"));
  check_parity "aggr over a selection"
    (Plan.aggr b selected "s" Plan.A_sum (Some "item") (Some "iter") None)

(* ------------------------------------------------- typed-path parity *)

let test_float_comparison_parity () =
  let b = Plan.builder () in
  (* NaN and the two zeros: the boxed comparator is Float.compare behind
     a NaN guard, which separates -0.0 from 0.0 — the typed kernels must
     reproduce that, not IEEE equality *)
  let base = Plan.lit b [| "x"; "y" |]
      [ [| v_dbl 0.0; v_dbl (-0.0) |];
        [| v_dbl (-0.0); v_dbl 0.0 |];
        [| v_dbl Float.nan; v_dbl 1.0 |];
        [| v_dbl 1.0; v_dbl Float.nan |];
        [| v_dbl 2.5; v_dbl 2.5 |] ]
  in
  List.iter
    (fun (name, f) ->
       check_parity name (Plan.fun2 b base "r" f "x" "y"))
    [ ("float eq", Plan.P_eq); ("float ne", Plan.P_ne);
      ("float lt", Plan.P_lt); ("float le", Plan.P_le);
      ("float gt", Plan.P_gt); ("float ge", Plan.P_ge) ];
  check_parity "rownum sorts -0.0 before 0.0"
    (Plan.rownum b base "pos" [ ("x", Plan.Asc) ] None)

let test_int_arithmetic_parity () =
  let b = Plan.builder () in
  let base = Plan.lit b [| "x"; "y" |]
      [ [| v_int 7; v_int 2 |]; [| v_int (-7); v_int 2 |];
        [| v_int 7; v_int (-2) |]; [| v_int 0; v_int 5 |] ]
  in
  List.iter
    (fun (name, f) -> check_parity name (Plan.fun2 b base "r" f "x" "y"))
    [ ("int add", Plan.P_add); ("int sub", Plan.P_sub);
      ("int mul", Plan.P_mul); ("int idiv", Plan.P_idiv);
      ("int mod", Plan.P_mod); ("int div", Plan.P_div) ]

let test_theta_coercion_parity () =
  let b = Plan.builder () in
  (* untyped strings vs numerics: the coercion shape Q11/Q12 hit, where
     the typed path pre-coerces each row to its double key once *)
  let strs =
    Plan.lit b [| "i"; "inc" |]
      [ [| v_int 1; v_str "4000.50" |]; [| v_int 2; v_str "120" |];
        [| v_int 3; v_str "99000" |]; [| v_int 4; v_str "NaN" |] ]
  in
  let nums =
    Plan.lit b [| "j"; "price" |]
      [ [| v_int 10; v_dbl 150.0 |]; [| v_int 11; v_int 4000 |];
        [| v_int 12; v_dbl Float.nan |]; [| v_int 13; v_dbl 120.0 |] ]
  in
  List.iter
    (fun (name, f) ->
       check_parity name (Plan.thetajoin b strs nums "inc" f "price");
       check_parity (name ^ " flipped")
         (Plan.thetajoin b nums strs "price" f "inc"))
    [ ("theta gt", Plan.P_gt); ("theta lt", Plan.P_lt);
      ("theta ge", Plan.P_ge); ("theta le", Plan.P_le) ];
  (* an uncoercible string raises the same error from the same pair
     position as the boxed nested loop *)
  let bad =
    Plan.lit b [| "i"; "k" |]
      [ [| v_int 1; v_str "12" |]; [| v_int 2; v_str "pear" |] ]
  in
  check_error_parity "uncoercible string in theta"
    (Plan.thetajoin b bad nums "k" Plan.P_lt "price");
  (* empty sides never touch the other side's values *)
  let empty_nums = Plan.lit b [| "j"; "price" |] [] in
  check_parity "theta with empty right"
    (Plan.thetajoin b bad empty_nums "k" Plan.P_lt "price")

let test_error_parity () =
  let b = Plan.builder () in
  let bad = Plan.lit b [| "x"; "y" |] [ [| v_int 1; v_int 0 |] ] in
  check_error_parity "idiv by zero" (Plan.fun2 b bad "r" Plan.P_idiv "x" "y");
  check_error_parity "mod by zero" (Plan.fun2 b bad "r" Plan.P_mod "x" "y");
  check_error_parity "selection on non-boolean"
    (Plan.select b (Plan.lit b [| "c" |] [ [| v_int 3 |] ]) "c");
  (* dead rows: a selection upstream removes the erroneous row before the
     arithmetic sees it — both sides must succeed *)
  let guarded =
    let base = Plan.lit b [| "x"; "y" |]
        [ [| v_int 10; v_int 2 |]; [| v_int 1; v_int 0 |] ]
    in
    let keep = Plan.fun2 b base "k" Plan.P_ne "y" "y" in
    Plan.select b keep "k"
  in
  check_parity "selection removes all rows" guarded

(* -------------------------------------------------- budget integration *)

let test_budget_through_physical () =
  let b = Plan.builder () in
  let big = Plan.lit b [| "item" |] (List.init 100 (fun i -> [| v_int i |])) in
  let p = Plan.distinct b (Plan.fun2 b big "r" Plan.P_mul "item" "item") in
  let spec = Basis.Budget.limits ~max_rows:50 () in
  let outcome () =
    match Physical.run ~guard:(Basis.Budget.start spec) (store ())
            (Lower.lower p)
    with
    | (_ : Table.t) -> "ok"
    | exception Basis.Err.Resource_error _ -> "resource"
  in
  Alcotest.(check string) "row budget trips through physical kernels"
    "resource" (outcome ())

let () =
  Alcotest.run "physical"
    [ ("lowering",
       [ Alcotest.test_case "fusion chain" `Quick test_fusion_chain;
         Alcotest.test_case "fusion stops at sharing" `Quick
           test_fusion_stops_at_sharing ]);
      ("kernels",
       [ Alcotest.test_case "empty tables" `Quick test_empty_tables;
         Alcotest.test_case "all-Mixed columns" `Quick test_all_mixed_columns;
         Alcotest.test_case "select of select" `Quick test_select_of_select;
         Alcotest.test_case "distinct over selection" `Quick
           test_distinct_over_selection ]);
      ("typed parity",
       [ Alcotest.test_case "float comparisons" `Quick
           test_float_comparison_parity;
         Alcotest.test_case "int arithmetic" `Quick
           test_int_arithmetic_parity;
         Alcotest.test_case "theta-join coercion" `Quick
           test_theta_coercion_parity;
         Alcotest.test_case "errors" `Quick test_error_parity ]);
      ("budgets",
       [ Alcotest.test_case "budget trips" `Quick
           test_budget_through_physical ]) ]
