(* Plan-shape golden tests.

   Every query under queries/ is compiled under the two canonical option
   sets — default_opts (order indifference on) and ordered_baseline
   (Figure-7 rules and CDA off) — and the shape of the optimized plan is
   pinned exactly: total operator count, rownum (%) count, rowid (#)
   count, join count, and the tree-node count (the plan unfolded without
   sharing). Any compiler, optimizer, or hash-consing change that moves a
   plan shape shows up here as a one-line diff.

   Regenerating after an intentional change:

     PLAN_SHAPES_DUMP=1 dune exec test/test_plan_shapes.exe

   prints the golden table in source form; paste it over [golden] below
   and eyeball the delta. *)

module P = Algebra.Plan

(* dune runtest runs in _build/default/test; dune exec runs at the root *)
let queries_dir =
  if Sys.file_exists "../queries" then "../queries" else "queries"

let query_files =
  [ "existential_join.xq"; "gold_items.xq"; "income_histogram.xq";
    "paper_expression3.xq"; "paper_fig10.xq"; "paper_q11.xq"; "paper_q6.xq";
    "quantifier_semijoin.xq"; "top_sellers.xq"; "xpath_existentials.xq" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type shape = {
  ops : int;        (* unique operators (DAG nodes) *)
  rownums : int;    (* % — the order bookkeeping the paper removes *)
  rowids : int;     (* # *)
  joins : int;      (* ⋈, ⋈θ, semi/anti, × *)
  tree_nodes : int; (* the plan unfolded without sharing *)
  ord_nodes : int;  (* nodes with a provable ordering fact (Algebra.Order) *)
  root_ord : string;
      (* the root's ordering annotation; "ord:pos↑" (or a const pos /
         one-row proof folded into it) is what licenses root-sort
         elision *)
}

let shape_of root =
  let rownums = ref 0 and rowids = ref 0 and joins = ref 0 in
  let a = Algebra.Order.make () in
  let ord_nodes = ref 0 in
  List.iter
    (fun (n : P.node) ->
       (match n.P.op with
        | P.Rownum _ -> incr rownums
        | P.Rowid _ -> incr rowids
        | P.Join _ | P.Thetajoin _ | P.Semijoin _ | P.Antijoin _
        | P.Cross _ -> incr joins
        | _ -> ());
       if Algebra.Order.annotate a n <> "" then incr ord_nodes)
    (P.topo_order root);
  let root_ord =
    if Algebra.Order.satisfies a root [ ("pos", P.Asc) ] then "pos-sorted"
    else
      match Algebra.Order.annotate a root with "" -> "unordered" | s -> s
  in
  { ops = P.count_ops root;
    rownums = !rownums;
    rowids = !rowids;
    joins = !joins;
    tree_nodes = P.count_tree_nodes root;
    ord_nodes = !ord_nodes;
    root_ord }

let compile opts text =
  let _, _, optimized = Engine.plans_of ~opts text in
  shape_of optimized

(* The rewriter's per-rule fire counts under default_opts (no store
   statistics, so cardinality-driven rules see uniform defaults). A rule
   missing from a query's list must NOT fire on it: each rule has at
   least one query where it fires and several where it must not. *)
let rule_fires text =
  (Engine.analyze ~opts:Engine.default_opts text).Engine.arewrite
    .Algebra.Rewrite.fires

(* (file, shape under default_opts, shape under ordered_baseline);
   regenerate with PLAN_SHAPES_DUMP=1 (see header). *)
let golden : (string * shape * shape) list =
  [ ("existential_join.xq",
     { ops = 57; rownums = 0; rowids = 2; joins = 8; tree_nodes = 350;
       ord_nodes = 41; root_ord = "pos-sorted" },
     { ops = 115; rownums = 14; rowids = 0; joins = 9; tree_nodes = 1384;
       ord_nodes = 104; root_ord = "pos-sorted" });
    ("gold_items.xq",
     { ops = 129; rownums = 1; rowids = 3; joins = 19; tree_nodes = 4086;
       ord_nodes = 93; root_ord = "pos-sorted" },
     { ops = 201; rownums = 12; rowids = 0; joins = 19; tree_nodes = 8830;
       ord_nodes = 151; root_ord = "pos-sorted" });
    ("income_histogram.xq",
     { ops = 215; rownums = 1; rowids = 2; joins = 30; tree_nodes = 2040;
       ord_nodes = 183; root_ord = "pos-sorted" },
     { ops = 356; rownums = 20; rowids = 0; joins = 32; tree_nodes = 5647;
       ord_nodes = 288; root_ord = "pos-sorted" });
    ("paper_expression3.xq",
     { ops = 86; rownums = 2; rowids = 2; joins = 10; tree_nodes = 329;
       ord_nodes = 58; root_ord = "unordered" },
     { ops = 122; rownums = 7; rowids = 0; joins = 10; tree_nodes = 588;
       ord_nodes = 98; root_ord = "unordered" });
    ("paper_fig10.xq",
     { ops = 26; rownums = 0; rowids = 2; joins = 2; tree_nodes = 54;
       ord_nodes = 23; root_ord = "pos-sorted" },
     { ops = 49; rownums = 7; rowids = 0; joins = 2; tree_nodes = 104;
       ord_nodes = 43; root_ord = "ord:iter\226\134\145; iter\226\134\147" });
    ("paper_q11.xq",
     { ops = 98; rownums = 2; rowids = 4; joins = 13; tree_nodes = 666;
       ord_nodes = 88; root_ord = "pos-sorted" },
     { ops = 163; rownums = 16; rowids = 0; joins = 13; tree_nodes = 1326;
       ord_nodes = 143; root_ord = "pos-sorted" });
    ("paper_q6.xq",
     { ops = 27; rownums = 0; rowids = 2; joins = 3; tree_nodes = 76;
       ord_nodes = 24; root_ord = "pos-sorted" },
     { ops = 54; rownums = 7; rowids = 0; joins = 3; tree_nodes = 168;
       ord_nodes = 49; root_ord = "pos-sorted" });
    ("quantifier_semijoin.xq",
     { ops = 80; rownums = 1; rowids = 3; joins = 11; tree_nodes = 534;
       ord_nodes = 75; root_ord = "pos-sorted" },
     { ops = 149; rownums = 11; rowids = 0; joins = 13; tree_nodes = 4086;
       ord_nodes = 125; root_ord = "pos-sorted" });
    ("top_sellers.xq",
     { ops = 125; rownums = 2; rowids = 3; joins = 19; tree_nodes = 3692;
       ord_nodes = 101; root_ord = "unordered" },
     { ops = 210; rownums = 17; rowids = 1; joins = 20; tree_nodes = 13656;
       ord_nodes = 124; root_ord = "ord:iter\226\134\145; iter\226\134\147" });
    ("xpath_existentials.xq",
     { ops = 63; rownums = 1; rowids = 4; joins = 10; tree_nodes = 615;
       ord_nodes = 61; root_ord = "pos-sorted" },
     { ops = 126; rownums = 15; rowids = 0; joins = 10; tree_nodes = 2346;
       ord_nodes = 104; root_ord = "pos-sorted" });
  ]

let golden_fires : (string * (string * int) list) list =
  [ ("existential_join.xq",
     [ ("fun-pushdown", 1);
       ("jg-empty-prune", 1);
       ("jg-select-const", 2);
       ("jg-semijoin-dedup", 1);
       ("jg-union-empty", 1);
       ("join-cross-elim", 1);
       ("join-swap", 2);
       ("join-synthesis", 1);
       ("project-fuse", 5);
       ("project-split", 2);
       ("select-pushdown", 4);
       ("sort-elision", 1) ]);
    ("gold_items.xq",
     [ ("project-fuse", 7);
       ("project-split", 4);
       ("select-pushdown", 1) ]);
    ("income_histogram.xq",
     [ ("fun-pushdown", 2);
       ("jg-empty-prune", 3);
       ("jg-select-const", 6);
       ("jg-semijoin-dedup", 5);
       ("jg-union-empty", 3);
       ("project-fuse", 11);
       ("project-split", 4);
       ("select-pushdown", 13) ]);
    ("paper_expression3.xq",
     [ ("sort-elision", 2) ]);
    ("paper_fig10.xq",
     [  ]);
    ("paper_q11.xq",
     [ ("fun-pushdown", 1);
       ("project-fuse", 6);
       ("project-split", 4);
       ("sort-elision", 5) ]);
    ("paper_q6.xq",
     [ ("sort-elision", 3) ]);
    ("quantifier_semijoin.xq",
     [ ("fun-pushdown", 1);
       ("jg-empty-prune", 2);
       ("jg-select-const", 4);
       ("jg-semijoin-dedup", 2);
       ("jg-semijoin-synthesis", 1);
       ("jg-union-empty", 2);
       ("join-cross-elim", 1);
       ("project-fuse", 9);
       ("project-split", 3);
       ("select-pushdown", 8);
       ("sort-elision", 3) ]);
    ("top_sellers.xq",
     [ ("jg-empty-prune", 1);
       ("jg-select-const", 2);
       ("jg-semijoin-dedup", 1);
       ("jg-union-empty", 1);
       ("project-fuse", 7);
       ("project-split", 4);
       ("select-pushdown", 4);
       ("sort-elision", 1) ]);
    ("xpath_existentials.xq",
     [ ("jg-empty-prune", 1);
       ("jg-select-const", 2);
       ("jg-semijoin-dedup", 1);
       ("jg-semijoin-synthesis", 1);
       ("jg-union-empty", 1);
       ("project-fuse", 4);
       ("project-split", 1);
       ("select-pushdown", 4);
       ("sort-elision", 5) ]);
  ]

let measure file =
  let text = read_file (Filename.concat queries_dir file) in
  (compile Engine.default_opts text, compile Engine.ordered_baseline text)

let measure_fires file =
  rule_fires (read_file (Filename.concat queries_dir file))

let dump () =
  print_string "let golden : (string * shape * shape) list =\n  [ ";
  List.iteri
    (fun i file ->
       let d, b = measure file in
       let pp { ops; rownums; rowids; joins; tree_nodes; ord_nodes; root_ord }
         =
         Printf.sprintf
           "{ ops = %d; rownums = %d; rowids = %d; joins = %d; \
            tree_nodes = %d;\n       ord_nodes = %d; root_ord = %S }"
           ops rownums rowids joins tree_nodes ord_nodes root_ord
       in
       Printf.printf "%s(%S,\n     %s,\n     %s);\n"
         (if i = 0 then "" else "    ")
         file (pp d) (pp b))
    query_files;
  print_string "  ]\n";
  print_string "\nlet golden_fires : (string * (string * int) list) list =\n  [ ";
  List.iteri
    (fun i file ->
       let fires = measure_fires file in
       Printf.printf "%s(%S,\n     [ %s ]);\n"
         (if i = 0 then "" else "    ")
         file
         (String.concat ";\n       "
            (List.map (fun (r, k) -> Printf.sprintf "(%S, %d)" r k) fires)))
    query_files;
  print_string "  ]\n"

let check_shape name expected actual =
  let pp { ops; rownums; rowids; joins; tree_nodes; ord_nodes; root_ord } =
    Printf.sprintf
      "ops=%d rownums=%d rowids=%d joins=%d tree=%d ord_nodes=%d root=%s"
      ops rownums rowids joins tree_nodes ord_nodes root_ord
  in
  Alcotest.(check string) name (pp expected) (pp actual)

let test_golden (file, exp_default, exp_baseline) () =
  let d, b = measure file in
  check_shape (file ^ " (default_opts)") exp_default d;
  check_shape (file ^ " (ordered_baseline)") exp_baseline b

let pp_fires fires =
  String.concat " "
    (List.map (fun (r, k) -> Printf.sprintf "%s=%d" r k) fires)

let test_fires (file, expected) () =
  Alcotest.(check string)
    (file ^ " (rule fires)") (pp_fires expected) (pp_fires (measure_fires file))

(* The paper's point, as an invariant over the whole corpus: order
   indifference never adds order bookkeeping, and plans never grow. *)
let test_invariants () =
  List.iter
    (fun file ->
       let d, b = measure file in
       if d.rownums > b.rownums then
         Alcotest.failf "%s: default has MORE rownums than baseline (%d > %d)"
           file d.rownums b.rownums;
       if d.ops > b.ops then
         Alcotest.failf "%s: default plan is LARGER than baseline (%d > %d)"
           file d.ops b.ops)
    query_files

let () =
  if Sys.getenv_opt "PLAN_SHAPES_DUMP" <> None then dump ()
  else begin
    (* every file on disk must be pinned, and vice versa *)
    let pinned = List.map (fun (f, _, _) -> f) golden in
    assert (List.sort compare pinned = List.sort compare query_files);
    Alcotest.run "plan_shapes"
      [ ("golden",
         List.map
           (fun ((file, _, _) as g) ->
              Alcotest.test_case file `Quick (test_golden g))
           golden);
        ("rewrite rule fires",
         List.map
           (fun ((file, _) as g) ->
              Alcotest.test_case file `Quick (test_fires g))
           golden_fires);
        ("invariants",
         [ Alcotest.test_case "default ≤ baseline" `Quick test_invariants ]) ]
  end
