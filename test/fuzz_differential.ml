(* Differential fuzz harness (the paper's Section-5 methodology as a
   correctness oracle): a seeded generator of small core XQuery
   expressions, each evaluated under

       {compiled, interpreted} x {default_opts, ordered_baseline}
                               x {without, with (generous) budgets}

   plus the executor dimensions {DAG, tree evaluation}, the physical
   layer {typed kernels, boxed logical executor}, the logical rewriter
   {on, off — both against each other and against the interpreter},
   morsel-parallel execution {jobs 4 over tiny forced morsels, with the
   serial runs as oracle}, the prepared-plan cache {cold, warm}, the
   query server {direct Engine, loopback TCP through a lazily started
   in-process server} and the storage layer {packed columnar store,
   boxed reference arrays, chunked streaming ingest}, asserting
   identical results — or identically
   *classified* errors — across the whole matrix. (For the interpreter
   the plan options are vacuous, so its plan variants collapse into one
   run per budget setting.)

   To keep the 300-seed nightly sweep bounded as dimensions accrue, the
   budget overlay rides on only one config per backend (default and
   baseline): budget transparency is already pinned point-wise by
   test_robustness, so budget x every-executor-dimension bought no new
   coverage for 3 extra runs per seed.

   Divergence policy:
     - both sides Ok              -> serialized item lists must match
                                     (multiset-compare when the query
                                     contains order-latitude constructs:
                                     unordered {} / distinct-values)
     - both sides Error           -> the Err.kind classes must match
     - Ok vs dynamic error        -> tolerated: XQuery 2.3.4 grants
                                     latitude over evaluating erroneous
                                     expressions whose value is unneeded
     - Internal or Resource error -> always a failure (budgets here are
                                     generous by construction)
     - any unclassified exception -> always a failure

   Every divergence logs the seed and the query text, so a failure
   reproduces with --start SEED --seeds 1.

   Usage: fuzz_differential [--seeds N] [--start K] [--deadline S] [-v]
   Exit status: 0 = clean, 1 = divergences found. *)

open Basis
module Value = Algebra.Value

(* Force tiny morsels before the engine's first physical execution (the
   engine reads XRQ_MORSEL lazily): fuzz queries produce small tables,
   and without this the parallel configs would never actually fan out. *)
let () = Unix.putenv "XRQ_MORSEL" "4"

let doc_xml = "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"

(* [packed] selects the fragment representation (packed columns vs the
   boxed reference arrays); [chunk > 0] ingests t.xml through the
   streaming reader in [chunk]-byte pieces over a tiny sliding window
   instead of the monolithic string parse. Both are pure representation
   or ingest-path choices and must be invisible to every query. *)
let mk_store ?(packed = true) ?(chunk = 0) () =
  let st = Xmldb.Doc_store.create ~packed () in
  (if chunk > 0 then begin
     let pos = ref 0 in
     let reader b ofs len =
       let n = min (min len chunk) (String.length doc_xml - !pos) in
       Bytes.blit_string doc_xml !pos b ofs n;
       pos := !pos + n;
       n
     in
     ignore (Xmldb.Xml_parser.load_reader ~window:16 st ~uri:"t.xml" reader)
   end
   else ignore (Xmldb.Xml_parser.load_document st ~uri:"t.xml" doc_xml));
  st

(* ------------------------------------------------------------- generator *)

(* Seeded random expression generator. [lax] is flipped when the emitted
   query contains a construct whose result order is implementation
   latitude (unordered {}, distinct-values): those queries compare as
   multisets. All emitted text parses by construction. *)
let gen_query ~lax prng =
  let var_names = [| "v"; "w"; "x" |] in
  let rec gen depth vars =
    let atom () =
      match Prng.int prng 7 with
      | 0 -> string_of_int (Prng.int prng 10)
      | 1 -> "()"
      | 2 -> Printf.sprintf "\"s%d\"" (Prng.int prng 3)
      | 3 ->
        (match vars with
         | [] -> string_of_int (1 + Prng.int prng 5)
         | _ -> "$" ^ Prng.pick prng (Array.of_list vars))
      | 4 -> Printf.sprintf "%d.5" (Prng.int prng 5)
      | 5 -> Printf.sprintf "(%d to %d)" (1 + Prng.int prng 3) (Prng.int prng 8)
      | _ -> "true()"
    in
    if depth <= 0 then atom ()
    else
      let sub () = gen (depth - 1) vars in
      match Prng.int prng 16 with
      | 0 ->
        let op = Prng.pick prng [| "+"; "-"; "*" |] in
        Printf.sprintf "(%s %s %s)" (sub ()) op (sub ())
      | 1 ->
        (* division: a deliberate dynamic-error source (div by zero) *)
        let op = Prng.pick prng [| "div"; "idiv"; "mod" |] in
        Printf.sprintf "(%s %s %s)" (sub ()) op (sub ())
      | 2 ->
        let op = Prng.pick prng [| "="; "!="; "<"; ">="; "eq"; "lt" |] in
        Printf.sprintf "(%s %s %s)" (sub ()) op (sub ())
      | 3 -> Printf.sprintf "(%s, %s)" (sub ()) (sub ())
      | 4 ->
        let v = Prng.pick prng var_names in
        Printf.sprintf "(for $%s in (%s) return %s)" v (sub ())
          (gen (depth - 1) (v :: vars))
      | 5 ->
        let v = Prng.pick prng var_names in
        Printf.sprintf "(let $%s := (%s) return %s)" v (sub ())
          (gen (depth - 1) (v :: vars))
      | 6 ->
        let v = Prng.pick prng var_names in
        Printf.sprintf
          "(for $%s in (%s) where boolean(($%s, %s)[1] >= 2) return %s)" v
          (sub ()) v
          (gen (depth - 1) (v :: vars))
          (gen (depth - 1) (v :: vars))
      | 7 ->
        Printf.sprintf "(if (boolean((%s, 0)[1] >= 1)) then %s else %s)"
          (sub ()) (sub ()) (sub ())
      | 8 ->
        let f = Prng.pick prng [| "count"; "sum"; "empty"; "exists"; "reverse" |] in
        Printf.sprintf "%s(%s)" f (sub ())
      | 9 ->
        let ax = Prng.pick prng [| "//"; "/a/"; "/a/b/"; "//b/" |] in
        let tag = Prng.pick prng [| "c"; "d"; "e"; "f"; "*"; "zz" |] in
        Printf.sprintf "doc(\"t.xml\")%s%s" ax tag
      | 10 ->
        let tag = Prng.pick prng [| "c"; "*" |] in
        Printf.sprintf "count(doc(\"t.xml\")//%s[boolean((%s, 0)[1] >= 1)])"
          tag (sub ())
      | 11 ->
        let q = Prng.pick prng [| "some"; "every" |] in
        let v = Prng.pick prng var_names in
        Printf.sprintf "(%s $%s in (%s) satisfies boolean(($%s, %s)[1] >= 1))"
          q v (sub ()) v
          (gen (depth - 1) (v :: vars))
      | 12 ->
        let f = Prng.pick prng [| "concat"; "contains"; "starts-with" |] in
        Printf.sprintf "%s(string((%s)[1]), string((%s)[1]))" f (sub ()) (sub ())
      | 13 ->
        lax := true;
        let tag = Prng.pick prng [| "c"; "d"; "*" |] in
        Printf.sprintf "unordered { doc(\"t.xml\")//%s }" tag
      | 14 ->
        lax := true;
        Printf.sprintf "distinct-values((%s, %s))" (sub ()) (sub ())
      | _ -> Printf.sprintf "<r>{%s}</r>" (sub ())
  in
  gen (2 + Prng.int prng 2) []

(* -------------------------------------------------------------- evaluator *)

type outcome =
  | Items of string list          (* per-item serialization *)
  | Failed of Err.kind * string
  | Blew_up of string             (* unclassified exception: always a bug *)

let ser st items =
  List.map
    (fun it ->
       match it with
       | Value.Node n -> Xmldb.Serialize.node_to_string st n
       | v -> Value.to_string v)
    items

let evaluate ?cache ?(mk = fun () -> mk_store ()) ~opts q =
  (* a fresh store per evaluation: constructors mutate the store, and
     isolation keeps node serializations comparable *)
  let st = mk () in
  match Engine.run_result ?cache ~opts st q with
  | Ok r -> Items (ser st r.Engine.items)
  | Error { Engine.kind; message } -> Failed (kind, message)
  | exception e -> Blew_up (Printexc.to_string e)

(* The server side of the differential pair: the same query through a
   loopback TCP connection to an in-process server, itemized (QI), so
   the wire serialization is compared field by field against [ser]. The
   server store persists across seeds — constructors append fragments to
   it — but every generated query navigates from doc("t.xml"), which
   never changes, so results stay comparable. Started lazily: a fuzz
   sweep that never reaches this config pays nothing. *)
let server_conn =
  lazy
    (let st = mk_store () in
     let cfg =
       Server.config ~port:0 ~workers:2 ~queue_capacity:64 ~client_cap:8
         ~ceiling:(Budget.limits ~timeout_s:30. ())
         ~stores:[ ("main", st) ] ()
     in
     let srv = Server.start cfg in
     at_exit (fun () -> Server.stop ~grace_s:5. srv);
     let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     Unix.connect fd Unix.(ADDR_INET (inet_addr_loopback, Server.port srv));
     (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd))

let kind_of_label = function
  | "dynamic" -> Some Err.Dynamic
  | "static" -> Some Err.Static
  | "resource" -> Some Err.Resource
  | "internal" -> Some Err.Internal
  | _ -> None

let evaluate_server q =
  let ic, oc = Lazy.force server_conn in
  match
    output_string oc ("QI " ^ q ^ "\n");
    flush oc;
    input_line ic
  with
  | exception e -> Blew_up ("server connection: " ^ Printexc.to_string e)
  | line ->
    (match Server.Protocol.parse_response line with
     | Ok (Server.Protocol.Resp_ok (n, raw)) ->
       Items (Server.Protocol.items_of ~n raw)
     | Ok (Server.Protocol.Resp_err { class_; message; _ }) ->
       (match kind_of_label class_ with
        | Some k -> Failed (k, message)
        | None -> Blew_up ("unknown wire error class: " ^ class_))
     | Ok _ -> Blew_up ("unexpected response: " ^ line)
     | Error m -> Blew_up ("response did not parse: " ^ m))

(* Each config is (name, q -> outcome). Beyond the backend/options/budget
   matrix, two executor dimensions ride along:
     - tree evaluation: the sharing-oblivious Tree mode re-derives every
       shared subplan — same answers, different cost — so it doubles as a
       memoization oracle;
     - the prepared-plan cache: the warm config's first run populates a
       fresh (cold) cache and its second replays the prepared plan
       against a fresh store — both states must be invisible to
       results. *)
let configs ~budget_spec =
  let with_budget o = { o with Engine.budget = Some budget_spec } in
  let interp = { Engine.default_opts with Engine.backend = Engine.Interpreted } in
  let tree = { Engine.default_opts with Engine.eval_mode = Algebra.Eval.Tree } in
  let boxed = { Engine.default_opts with Engine.physical = `Off } in
  let parallel = { Engine.default_opts with Engine.jobs = 4 } in
  let norewrite = { Engine.default_opts with Engine.rewrite = false } in
  let noorder = { Engine.default_opts with Engine.order_props = false } in
  let nojg = { Engine.default_opts with Engine.join_isolation = false } in
  let plain opts q = evaluate ~opts q in
  let warm_cache opts q =
    let cache = Engine.create_cache () in
    ignore (evaluate ~cache ~opts q);
    evaluate ~cache ~opts q
  in
  [ ("interp", plain interp);
    ("compiled/default", plain Engine.default_opts);
    ("compiled/default+budget", plain (with_budget Engine.default_opts));
    (* the boxed logical executor vs the typed physical kernels: the
       central differential pair of the physical layer *)
    ("compiled/boxed", plain boxed);
    (* the logical rewriter off, on both executors: default (rewrite on)
       vs these and vs the interpreter reference triangulates every
       rewrite rule against an unrewritten plan *)
    ("compiled/no-rewrite", plain norewrite);
    ("compiled/no-rewrite/boxed",
     plain { norewrite with Engine.physical = `Off });
    (* morsel-parallel execution at width 4 over forced-tiny morsels:
       the serial runs above are the oracle — the parity contract says
       identical rows, identical error choice, identical accounting *)
    ("compiled/parallel", plain parallel);
    ("compiled/baseline", plain Engine.ordered_baseline);
    ("compiled/baseline+budget", plain (with_budget Engine.ordered_baseline));
    (* tree mode is budgeted unconditionally: re-deriving shared subplans
       can inflate work by orders of magnitude (that is what it is for),
       and an unbudgeted tree walk of an adversarial seed could run
       essentially forever. The flip side: tree mode may exhaust a budget
       the DAG run sails under, so Resource errors from this config are
       tolerated (see the main loop), not divergences. *)
    ("compiled/tree", plain (with_budget tree));
    (* ordering-property reasoning off, on both executors: every elided
       sort, skipped root sort and merge-degraded % in the default runs
       is differentially checked against these sort-preserving plans.
       (These replaced cold-cache: the warm-cache config's first run IS
       a cold-cache run, so that pair already covers both states.) *)
    ("compiled/no-order-props", plain noorder);
    ("compiled/no-order-props/boxed",
     plain { noorder with Engine.physical = `Off });
    (* join-graph isolation off, on both executors: every scaffold the
       jg-* rules collapse (and every where that slid past a let at
       compile time) is differentially checked against the
       count-then-filter plan it replaced *)
    ("compiled/no-join-isolation", plain nojg);
    ("compiled/no-join-isolation/boxed",
     plain { nojg with Engine.physical = `Off });
    ("compiled/warm-cache", warm_cache Engine.default_opts);
    (* compressed execution off, on the serial and morsel-parallel
       executors: the default runs carry code-carrying columns, batched
       steps and code-translated predicates; these materialized
       reference runs differentially check every one of them *)
    ("compiled/no-code-eval",
     plain { Engine.default_opts with Engine.code_eval = false });
    ("compiled/no-code-eval/parallel",
     plain { parallel with Engine.code_eval = false });
    (* the storage dimensions: the boxed reference representation (the
       default store packs fragments into bit-width minimal columns) and
       a store ingested through the streaming reader in 3-byte chunks
       over a 16-byte window — both must be invisible to every query *)
    ("store/boxed",
     fun q -> evaluate ~mk:(fun () -> mk_store ~packed:false ())
         ~opts:Engine.default_opts q);
    ("store/chunked",
     fun q -> evaluate ~mk:(fun () -> mk_store ~chunk:3 ())
         ~opts:Engine.default_opts q);
    (* the query served over loopback TCP: wire framing, session budget
       clamping and per-item response serialization must all be
       invisible — same items, same error classes as the direct run *)
    ("server/loopback", evaluate_server) ]

(* ------------------------------------------------------------ comparison *)

let canon ~lax items = if lax then List.sort compare items else items

let divergence ~lax reference got =
  match (reference, got) with
  | Items a, Items b ->
    if canon ~lax a = canon ~lax b then None
    else
      Some
        (Printf.sprintf "results differ:\n    ref: %s\n    got: %s"
           (String.concat " | " a) (String.concat " | " b))
  | Failed (k1, _), Failed (k2, _) ->
    if k1 = k2 then None
    else if k1 = Err.Dynamic && k2 = Err.Dynamic then None
    else
      Some
        (Printf.sprintf "error classes differ: %s vs %s" (Err.kind_label k1)
           (Err.kind_label k2))
  (* XQuery 2.3.4 latitude: one side may skip an erroneous subexpression
     whose value the plan never demands *)
  | Items _, Failed (Err.Dynamic, _) | Failed (Err.Dynamic, _), Items _ -> None
  | Items _, Failed (k, m) | Failed (k, m), Items _ ->
    Some (Printf.sprintf "%s error on one side only: %s" (Err.kind_label k) m)
  | Blew_up m, _ | _, Blew_up m ->
    Some (Printf.sprintf "uncaught exception: %s" m)

(* ------------------------------------------------------------------ main *)

let () =
  let seeds = ref 200 in
  let start = ref 0 in
  let deadline = ref 2.0 in
  let verbose = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--seeds" :: n :: rest -> seeds := int_of_string n; parse_args rest
    | "--start" :: n :: rest -> start := int_of_string n; parse_args rest
    | "--deadline" :: s :: rest -> deadline := float_of_string s; parse_args rest
    | "-v" :: rest | "--verbose" :: rest -> verbose := true; parse_args rest
    | a :: _ -> Printf.eprintf "fuzz_differential: unknown argument %s\n" a; exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (* generous per-query budgets: a safety net, never a semantic actor —
     any Resource_error under these limits is reported as a divergence *)
  let budget_spec =
    Budget.limits ~timeout_s:!deadline ~max_rows:2_000_000
      ~max_bytes:200_000_000 ~max_ops:2_000_000 ()
  in
  let failures = ref 0 in
  let tolerated = ref 0 in
  for seed = !start to !start + !seeds - 1 do
    let prng = Prng.create seed in
    let lax = ref false in
    let q = gen_query ~lax prng in
    if !verbose then Printf.printf "seed %d: %s\n%!" seed q;
    let reference =
      evaluate ~opts:{ Engine.default_opts with Engine.backend = Engine.Interpreted } q
    in
    (match reference with
     | Blew_up m ->
       incr failures;
       Printf.printf "DIVERGENCE seed=%d [interp reference] query=%s\n  %s\n%!"
         seed q m
     | _ -> ());
    List.iter
      (fun (cname, run) ->
         let got = run q in
         (match (reference, got) with
          | Items _, Failed (Err.Dynamic, _) | Failed (Err.Dynamic, _), Items _ ->
            incr tolerated
          | _ -> ());
         match (cname, got) with
         | "compiled/tree", Failed (Err.Resource, _) ->
           (* cost inflation, not a semantic disagreement *)
           incr tolerated
         | _ ->
         match divergence ~lax:!lax reference got with
         | None -> ()
         | Some why ->
           incr failures;
           Printf.printf "DIVERGENCE seed=%d [%s] query=%s\n  %s\n%!" seed
             cname q why)
      (configs ~budget_spec)
  done;
  Printf.printf
    "fuzz_differential: %d seeds (%d..%d), %d configs each: %d divergences, \
     %d tolerated error-latitude disagreements\n%!"
    !seeds !start
    (!start + !seeds - 1)
    (List.length (configs ~budget_spec))
    !failures !tolerated;
  exit (if !failures > 0 then 1 else 0)
