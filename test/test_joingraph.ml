(* Join-graph isolation (Algebra.Joingraph + the compile-level where
   slide), tested at three grains:

     1. per-rule unit fixtures over hand-built plans — each jg-* rule
        has a case where it fires (and the plan shape changes as
        advertised) and a case where it provably must not, including
        the required-check veto: a pruning rule may not discard a
        subtree whose unshared operators raise errors the spec demands
        (fn:exactly-one on a non-singleton is not covered by the XQuery
        2.3.4 "need not evaluate" latitude);

     2. the compile-level half — a joinable where slides past
        intervening independent lets (the raw plan changes shape) but
        not past a let that binds one of its free variables (the raw
        plan is bit-identical with the switch on or off);

     3. end-to-end result identity over the query corpus — every file
        under queries/ answers identically (serialization and error
        message alike) with join isolation on and off, under the native
        prolog AND under a forced ordered mode; plus the Semijoin /
        Antijoin cardinality estimates are pinned. *)

module P = Algebra.Plan
module R = Algebra.Rewrite
module V = Algebra.Value

let fire rule (s : R.stats) =
  Option.value ~default:0 (List.assoc_opt rule s.R.fires)

let has_op pred root =
  List.exists (fun (n : P.node) -> pred n.P.op) (P.topo_order root)

let is_join = function P.Join _ -> true | _ -> false
let is_semijoin = function P.Semijoin _ -> true | _ -> false
let is_select = function P.Select _ -> true | _ -> false
let is_distinct = function P.Distinct _ -> true | _ -> false
let is_empty_lit = function P.Lit { rows = []; _ } -> true | _ -> false

let lit b schema rows =
  P.mk b (P.Lit { schema = Array.of_list schema; rows })

let ints l = List.map (fun xs -> Array.of_list (List.map (fun i -> V.Int i) xs)) l

(* Evaluate a plan over an empty store and flatten to a list of
   stringified rows (in plan order; [~sort] for multiset comparison). *)
let rows_of ?(sort = false) root =
  let st = Xmldb.Doc_store.create () in
  let t = Algebra.Eval.run st root in
  let cols = List.sort compare (Array.to_list (Algebra.Table.schema t)) in
  let rows =
    List.init (Algebra.Table.nrows t) (fun i ->
        String.concat "|"
          (List.map
             (fun c -> V.to_string (Algebra.Table.get t c i))
             cols))
  in
  if sort then List.sort compare rows else rows

let check_rows ~sort name a b =
  Alcotest.(check (list string)) name (rows_of ~sort a) (rows_of ~sort b)

(* ------------------------------------------------------- unit fixtures *)

let test_select_const () =
  (* true arm: sigma over its own attached [true] is the identity *)
  let b = P.builder () in
  let base = lit b [ "x" ] (ints [ [ 1 ]; [ 2 ] ]) in
  let at = P.mk b (P.Attach { input = base; res = "c"; value = V.Bool true }) in
  let sel = P.mk b (P.Select { input = at; col = "c" }) in
  let root, s = R.optimize b sel in
  Alcotest.(check int) "fires on attached true" 1 (fire "jg-select-const" s);
  Alcotest.(check bool) "select gone" false (has_op is_select root);
  check_rows ~sort:false "rows unchanged" sel root;
  (* false arm: sigma over its own attached [false] prunes the input *)
  let b2 = P.builder () in
  let base2 = lit b2 [ "x" ] (ints [ [ 1 ]; [ 2 ] ]) in
  let at2 = P.mk b2 (P.Attach { input = base2; res = "c"; value = V.Bool false }) in
  let sel2 = P.mk b2 (P.Select { input = at2; col = "c" }) in
  let root2, s2 = R.optimize b2 sel2 in
  Alcotest.(check int) "fires on attached false" 1 (fire "jg-select-const" s2);
  Alcotest.(check bool) "pruned to the empty relation" true
    (is_empty_lit root2.P.op);
  check_rows ~sort:false "still empty" sel2 root2

let test_select_const_check_veto () =
  (* the pruned subtree contains an unshared required-check operator
     (fn:exactly-one's check primitive): discarding it could swallow an
     error the spec demands, so the false arm must NOT fire *)
  let b = P.builder () in
  let base = lit b [ "x" ] (ints [ [ 1 ]; [ 2 ] ]) in
  let chk =
    P.mk b
      (P.Fun1 { input = base; res = "y"; f = P.P_check_exactly_one; arg = "x" })
  in
  let at = P.mk b (P.Attach { input = chk; res = "c"; value = V.Bool false }) in
  let sel = P.mk b (P.Select { input = at; col = "c" }) in
  let root, s = R.optimize b sel in
  Alcotest.(check int) "no fire over a required check" 0
    (fire "jg-select-const" s);
  Alcotest.(check bool) "select kept" true (has_op is_select root)

let test_empty_prune () =
  (* emptiness propagates through row-wise operators *)
  let b = P.builder () in
  let empty = lit b [ "x" ] [] in
  let proj = P.mk b (P.Project { input = empty; cols = [ ("y", "x") ] }) in
  let root, s = R.optimize b proj in
  Alcotest.(check bool) "fires through Project" true
    (fire "jg-empty-prune" s >= 1);
  Alcotest.(check bool) "root is the empty relation" true
    (is_empty_lit root.P.op);
  (* ... and through a join sibling (the checked-free case) *)
  let b2 = P.builder () in
  let empty2 = lit b2 [ "a" ] [] in
  let r2 = lit b2 [ "b" ] (ints [ [ 1 ]; [ 2 ] ]) in
  let join2 =
    P.mk b2 (P.Join { left = empty2; right = r2; lcol = "a"; rcol = "b" })
  in
  let root2, s2 = R.optimize b2 join2 in
  Alcotest.(check bool) "fires on a join's empty side" true
    (fire "jg-empty-prune" s2 >= 1);
  Alcotest.(check bool) "join pruned" true (is_empty_lit root2.P.op)

let test_empty_prune_check_veto () =
  (* the surviving join sibling would be discarded too — and it carries
     an unshared required check, so the prune must NOT fire *)
  let b = P.builder () in
  let empty = lit b [ "a" ] [] in
  let base = lit b [ "x" ] (ints [ [ 1 ]; [ 2 ] ]) in
  let chk =
    P.mk b
      (P.Fun1 { input = base; res = "y"; f = P.P_check_exactly_one; arg = "x" })
  in
  let join =
    P.mk b (P.Join { left = empty; right = chk; lcol = "a"; rcol = "x" })
  in
  let root, s = R.optimize b join in
  Alcotest.(check int) "no fire over a required check" 0
    (fire "jg-empty-prune" s);
  Alcotest.(check bool) "join kept" true (has_op is_join root)

let test_union_empty () =
  let b = P.builder () in
  let empty = lit b [ "x" ] [] in
  let r = lit b [ "x" ] (ints [ [ 1 ]; [ 2 ] ]) in
  let u = P.mk b (P.Union { left = empty; right = r }) in
  let root, s = R.optimize b u in
  Alcotest.(check int) "fires on empty side" 1 (fire "jg-union-empty" s);
  check_rows ~sort:false "rows unchanged" u root;
  (* guard: two populated sides stay a union *)
  let b2 = P.builder () in
  let l2 = lit b2 [ "x" ] (ints [ [ 1 ] ]) in
  let r2 = lit b2 [ "x" ] (ints [ [ 2 ] ]) in
  let u2 = P.mk b2 (P.Union { left = l2; right = r2 }) in
  let _, s2 = R.optimize b2 u2 in
  Alcotest.(check int) "no fire when both populated" 0 (fire "jg-union-empty" s2)

let test_semijoin_synthesis () =
  (* distinct-projecting only left columns of an equijoin becomes a
     semijoin, bit-identical in row order *)
  let b = P.builder () in
  let l = lit b [ "a" ] (ints [ [ 1 ]; [ 2 ]; [ 3 ] ]) in
  let r = lit b [ "b" ] (ints [ [ 2 ]; [ 3 ]; [ 4 ] ]) in
  let j = P.mk b (P.Join { left = l; right = r; lcol = "a"; rcol = "b" }) in
  let proj = P.mk b (P.Project { input = j; cols = [ ("a", "a") ] }) in
  let d = P.mk b (P.Distinct { input = proj }) in
  let root, s = R.optimize b d in
  Alcotest.(check int) "fires" 1 (fire "jg-semijoin-synthesis" s);
  Alcotest.(check bool) "semijoin present" true (has_op is_semijoin root);
  Alcotest.(check bool) "join gone" false (has_op is_join root);
  check_rows ~sort:false "row order identical" d root;
  (* guard: a projection that keeps a right-side column observes the
     join's multiplicity — no fire *)
  let b2 = P.builder () in
  let l2 = lit b2 [ "a" ] (ints [ [ 1 ]; [ 2 ] ]) in
  let r2 = lit b2 [ "b" ] (ints [ [ 1 ]; [ 2 ] ]) in
  let j2 = P.mk b2 (P.Join { left = l2; right = r2; lcol = "a"; rcol = "b" }) in
  let proj2 =
    P.mk b2 (P.Project { input = j2; cols = [ ("a", "a"); ("bb", "b") ] })
  in
  let d2 = P.mk b2 (P.Distinct { input = proj2 }) in
  let root2, s2 = R.optimize b2 d2 in
  Alcotest.(check int) "no fire with a right column kept" 0
    (fire "jg-semijoin-synthesis" s2);
  Alcotest.(check bool) "join kept" true (has_op is_join root2)

let test_semijoin_dedup () =
  let b = P.builder () in
  let l = lit b [ "a" ] (ints [ [ 1 ]; [ 2 ]; [ 3 ] ]) in
  let r = lit b [ "b" ] (ints [ [ 2 ]; [ 2 ]; [ 3 ] ]) in
  let d = P.mk b (P.Distinct { input = r }) in
  let sj = P.mk b (P.Semijoin { left = l; right = d; on = [ ("a", "b") ] }) in
  let root, s = R.optimize b sj in
  Alcotest.(check int) "fires under a semijoin right" 1
    (fire "jg-semijoin-dedup" s);
  Alcotest.(check bool) "distinct gone" false (has_op is_distinct root);
  check_rows ~sort:false "rows unchanged" sj root;
  (* guard: a Distinct on the LEFT (probe) side is observable — no fire *)
  let b2 = P.builder () in
  let l2 = lit b2 [ "a" ] (ints [ [ 1 ]; [ 1 ]; [ 2 ] ]) in
  let r2 = lit b2 [ "b" ] (ints [ [ 1 ] ]) in
  let d2 = P.mk b2 (P.Distinct { input = l2 }) in
  let sj2 = P.mk b2 (P.Semijoin { left = d2; right = r2; on = [ ("a", "b") ] }) in
  let root2, s2 = R.optimize b2 sj2 in
  Alcotest.(check int) "no fire on the probe side" 0
    (fire "jg-semijoin-dedup" s2);
  Alcotest.(check bool) "distinct kept" true (has_op is_distinct root2)

(* --------------------------------------------------- cardinality pins *)

let test_card_estimates () =
  let b = P.builder () in
  let l = lit b [ "a" ] (ints (List.init 10 (fun i -> [ i ]))) in
  let r = lit b [ "b" ] (ints [ [ 1 ]; [ 2 ]; [ 3 ] ]) in
  let sj = P.mk b (P.Semijoin { left = l; right = r; on = [ ("a", "b") ] }) in
  let aj = P.mk b (P.Antijoin { left = l; right = r; on = [ ("a", "b") ] }) in
  let est = P.Card.estimator () in
  Alcotest.(check int) "lit estimate is its row count" 10 (est l);
  Alcotest.(check int) "semijoin: min of the sides" 3 (est sj);
  Alcotest.(check int) "antijoin: left minus the overlap bound" 7 (est aj)

(* ------------------------------------------- compile-level where slide *)

let raw_shape ~join_isolation q =
  let opts = { Engine.default_opts with Engine.join_isolation } in
  let _, raw, _ = Engine.plans_of ~opts q in
  let joins = ref 0 in
  List.iter
    (fun (n : P.node) ->
       match n.P.op with
       | P.Join _ | P.Thetajoin _ | P.Semijoin _ | P.Antijoin _ | P.Cross _ ->
         incr joins
       | _ -> ())
    (P.topo_order raw);
  (P.count_ops raw, !joins, P.count_tree_nodes raw)

(* Q9's shape in miniature: the let neither binds a variable of the
   where nor is bound over by it, so the where may slide left and join
   recognition fires. *)
let slide_q =
  {|let $auction := doc("auction.xml")
return
  for $p in $auction/site/people/person
  let $n := $p/name/text()
  where $p/@id = $auction/site/closed_auctions/closed_auction/buyer/@person
  return <r>{ $n }</r>|}

(* The where's free variables include the let's binding: no slide. *)
let dependent_q =
  {|let $auction := doc("auction.xml")
return
  for $p in $auction/site/people/person
  let $m := $p/@id
  where $m = $auction/site/closed_auctions/closed_auction/buyer/@person
  return <r>{ $p/name/text() }</r>|}

let test_slide_fires () =
  let ops, joins, tree = raw_shape ~join_isolation:true slide_q in
  let off = raw_shape ~join_isolation:false slide_q in
  if (ops, joins, tree) = off then
    Alcotest.failf
      "where did not slide past the independent let: raw plan identical \
       on and off (ops=%d joins=%d tree=%d)"
      ops joins tree

let test_slide_blocked () =
  let pp (a, j, t) = Printf.sprintf "ops=%d joins=%d tree=%d" a j t in
  Alcotest.(check string) "raw plan identical when the let binds a where var"
    (pp (raw_shape ~join_isolation:false dependent_q))
    (pp (raw_shape ~join_isolation:true dependent_q))

(* -------------------------------------------- corpus result identity *)

let auction_xml = lazy (Xmark.Xmark_gen.generate ~scale:0.002 ())
let doc_xml = "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"

let mk_store () =
  let st = Xmldb.Doc_store.create () in
  let _ =
    Xmldb.Xml_parser.load_document st ~uri:"auction.xml"
      (Lazy.force auction_xml)
  in
  let _ = Xmldb.Xml_parser.load_document st ~uri:"t.xml" doc_xml in
  st

let queries_dir =
  if Sys.file_exists "../queries" then "../queries" else "queries"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus () =
  Sys.readdir queries_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".xq")
  |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat queries_dir f)))

let outcome ?(base = Engine.default_opts) ?mode ~join_isolation q =
  let opts = { base with Engine.join_isolation; mode } in
  match Engine.run_result ~opts (mk_store ()) q with
  | Ok r -> "ok: " ^ r.Engine.serialized
  | Error { Engine.kind; message } ->
    Basis.Err.kind_label kind ^ ": " ^ message

let test_corpus_identity () =
  List.iter
    (fun (file, q) ->
       Alcotest.(check string)
         (file ^ " (native prolog)")
         (outcome ~join_isolation:false q) (outcome ~join_isolation:true q);
       Alcotest.(check string)
         (file ^ " (forced ordered)")
         (outcome ~mode:Xquery.Ast.Ordered ~join_isolation:false q)
         (outcome ~mode:Xquery.Ast.Ordered ~join_isolation:true q))
    (corpus ())

let test_slide_identity () =
  (* under default_opts a join-recognized for-loop's result order is
     already free (pre-existing: [join_rec] on vs off differ the same
     way on the adjacent shape), so with the slide toggling which
     compile path runs, on/off compare as multisets of items. Under
     ordered_baseline — the config that promises order — the slide must
     be byte-invisible, and is: bind_ordered numbering restores the
     document order through the join. *)
  let items s =
    String.split_on_char '<' s |> List.sort compare |> String.concat "<"
  in
  Alcotest.(check string) "same items (default opts)"
    (items (outcome ~join_isolation:false slide_q))
    (items (outcome ~join_isolation:true slide_q));
  Alcotest.(check string) "same items (forced ordered)"
    (items (outcome ~mode:Xquery.Ast.Ordered ~join_isolation:false slide_q))
    (items (outcome ~mode:Xquery.Ast.Ordered ~join_isolation:true slide_q));
  Alcotest.(check string) "byte-identical (ordered baseline)"
    (outcome ~base:Engine.ordered_baseline ~join_isolation:false slide_q)
    (outcome ~base:Engine.ordered_baseline ~join_isolation:true slide_q)

(* fn:exactly-one(()) MUST still raise with the prunes on — the
   end-to-end pin of the required-check veto *)
let test_required_error_survives () =
  match Engine.run_result (mk_store ()) "exactly-one(())" with
  | Ok r ->
    Alcotest.failf "exactly-one(()) answered %S instead of raising"
      r.Engine.serialized
  | Error { Engine.kind; message } ->
    Alcotest.(check string) "error class" "dynamic"
      (Basis.Err.kind_label kind);
    if not (Astring.String.is_infix ~affix:"exactly-one" message) then
      Alcotest.failf "unexpected message: %s" message

let () =
  Alcotest.run "joingraph"
    [ ("rules",
       [ Alcotest.test_case "select-const" `Quick test_select_const;
         Alcotest.test_case "select-const check veto" `Quick
           test_select_const_check_veto;
         Alcotest.test_case "empty-prune" `Quick test_empty_prune;
         Alcotest.test_case "empty-prune check veto" `Quick
           test_empty_prune_check_veto;
         Alcotest.test_case "union-empty" `Quick test_union_empty;
         Alcotest.test_case "semijoin synthesis" `Quick test_semijoin_synthesis;
         Alcotest.test_case "semijoin dedup" `Quick test_semijoin_dedup ]);
      ("estimates",
       [ Alcotest.test_case "semi/anti cardinality" `Quick test_card_estimates ]);
      ("compile slide",
       [ Alcotest.test_case "slides past an independent let" `Quick
           test_slide_fires;
         Alcotest.test_case "blocked by a dependent let" `Quick
           test_slide_blocked;
         Alcotest.test_case "slide result identity" `Quick
           test_slide_identity ]);
      ("corpus",
       [ Alcotest.test_case "isolation on = isolation off" `Quick
           test_corpus_identity;
         Alcotest.test_case "required errors survive" `Quick
           test_required_error_survives ]) ]
