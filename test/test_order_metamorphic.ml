(* Order-indifference metamorphic tests over the paper-query corpus.

   The paper's central claim is that order indifference is a *semantic*
   property the compiler may exploit without changing answers. That
   yields two metamorphic relations every query under queries/ must
   satisfy, under every executor configuration:

     1. wrapping the query body in [unordered { ... }] (maximum
        latitude granted) may at most permute the result sequence —
        plain and wrapped runs agree as multisets;

     2. the configuration itself is invisible: the boxed logical
        executor, the typed physical executor, and morsel-parallel
        execution at any width all produce the *identical* sequence
        for the same query text — including under a forced
        [ordering mode ordered] prolog (the paper's baseline).

   Relation 2 is deliberately exact (not multiset): the engine promises
   serial/parallel and boxed/physical bit-parity, and the ordered-mode
   baseline anchors the comparison the paper's Section 5 makes. *)

(* Read lazily by the engine at its first physical execution: force tiny
   morsels so these small corpora really split across tasks. *)
let () = Unix.putenv "XRQ_MORSEL" "4"

module Value = Algebra.Value

let doc_xml = "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"
let auction_xml = lazy (Xmark.Xmark_gen.generate ~scale:0.002 ())

let mk_store () =
  let st = Xmldb.Doc_store.create () in
  let _ =
    Xmldb.Xml_parser.load_document st ~uri:"auction.xml"
      (Lazy.force auction_xml)
  in
  let _ = Xmldb.Xml_parser.load_document st ~uri:"t.xml" doc_xml in
  st

(* The executor configurations of relation 2: {boxed, physical} ×
   {serial, jobs=4}, each with ordering-property reasoning on, plus both
   executors with it off, plus both with join-graph isolation off. The
   boxed executor ignores [jobs]; running it at jobs=4 anyway pins down
   exactly that. Keeping the no-order-props and no-join-isolation runs
   in the same exact-agreement matrix is the elision oracle: a sort
   wrongly proved away — or a scaffold wrongly collapsed to a
   semi/anti-join — would desynchronize them from the reference. *)
let configs =
  [ ("physical/serial", `On, 1, true, true);
    ("physical/jobs4", `On, 4, true, true);
    ("boxed/serial", `Off, 1, true, true);
    ("boxed/jobs4", `Off, 4, true, true);
    ("physical/serial/no-order-props", `On, 1, false, true);
    ("boxed/serial/no-order-props", `Off, 1, false, true);
    ("physical/serial/no-join-isolation", `On, 1, true, false);
    ("boxed/serial/no-join-isolation", `Off, 1, true, false) ]

type outcome = Items of string list | Failed of string

let run ?mode (name, physical, jobs, order_props, join_isolation) q =
  let opts =
    { Engine.default_opts with
      Engine.physical; jobs; mode; order_props; join_isolation }
  in
  let st = mk_store () in
  ignore name;
  match Engine.run_result ~opts st q with
  | Ok r ->
    Items
      (List.map
         (fun it ->
            match it with
            | Value.Node n -> Xmldb.Serialize.node_to_string st n
            | v -> Value.to_string v)
         r.Engine.items)
  | Error { Engine.kind; message } ->
    Failed (Basis.Err.kind_label kind ^ ": " ^ message)

let exact = function
  | Items l -> "ok: " ^ String.concat " | " l
  | Failed m -> m

let multiset = function
  | Items l -> "ok: " ^ String.concat " | " (List.sort compare l)
  | Failed m -> m

(* ------------------------------------------------------------- corpus *)

let queries_dir =
  if Sys.file_exists "../queries" then "../queries" else "queries"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus () =
  Sys.readdir queries_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".xq")
  |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat queries_dir f)))

(* Wrap the query *body* in [unordered { ... }]. A prolog declaration
   (gold_items.xq, income_histogram.xq carry [declare ordering
   unordered;]) must stay outside the wrap — splice after it. Leading
   comments are legal inside an expression, so they need no special
   handling. *)
let wrap_unordered text =
  let marker = "declare ordering unordered;" in
  let ml = String.length marker in
  let rec find i =
    if i + ml > String.length text then None
    else if String.sub text i ml = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    String.sub text 0 (i + ml)
    ^ " unordered { "
    ^ String.sub text (i + ml) (String.length text - i - ml)
    ^ " }"
  | None -> "unordered { " ^ text ^ " }"

(* ----------------------------------------------------------- relations *)

(* Relation 1: per configuration, the wrap may at most permute. *)
let test_unordered_wrap_is_permutation () =
  List.iter
    (fun (file, text) ->
       let wrapped = wrap_unordered text in
       List.iter
         (fun ((name, _, _, _, _) as cfg) ->
            Alcotest.(check string)
              (Printf.sprintf "%s [%s]: unordered{} at most permutes" file name)
              (multiset (run cfg text))
              (multiset (run cfg wrapped)))
         configs)
    (corpus ())

(* Relation 2: the configuration is invisible — exact agreement across
   all four, for the plain text, the wrapped text, and the text under a
   forced ordered mode. *)
let check_configs_exact ?mode label text =
  match configs with
  | [] -> assert false
  | reference_cfg :: rest ->
    let reference = exact (run ?mode reference_cfg text) in
    List.iter
      (fun ((name, _, _, _, _) as cfg) ->
         Alcotest.(check string)
           (Printf.sprintf "%s [%s]" label name)
           reference
           (exact (run ?mode cfg text)))
      rest

let test_configs_agree_plain () =
  List.iter
    (fun (file, text) -> check_configs_exact (file ^ " plain") text)
    (corpus ())

let test_configs_agree_wrapped () =
  List.iter
    (fun (file, text) ->
       check_configs_exact (file ^ " wrapped") (wrap_unordered text))
    (corpus ())

let test_configs_agree_forced_ordered () =
  List.iter
    (fun (file, text) ->
       check_configs_exact ~mode:Xquery.Ast.Ordered (file ^ " ordered-mode")
         text)
    (corpus ())

(* An ordered-context sanity anchor: a query whose result order *is*
   observable (positional access after sorting) must agree exactly —
   not merely as a multiset — between plain and wrapped runs too,
   because [unordered {}] scopes only over the wrapped expression's
   internal binding order, never over an [order by]. *)
let test_ordered_context_exact () =
  let q =
    {|let $a := doc("auction.xml")
      for $p in $a/site/people/person
      order by string(exactly-one($p/name/text())) descending
      return $p/name/text()|}
  in
  List.iter
    (fun ((name, _, _, _, _) as cfg) ->
       Alcotest.(check string)
         (Printf.sprintf "order-by survives unordered{} [%s]" name)
         (exact (run cfg q))
         (exact (run cfg (wrap_unordered q))))
    configs

(* The soundness boundary of sort elision, pinned adversarially: an
   [unordered { ... order by ... descending ... }] under a FORCED
   ordered mode. The wrap grants maximum latitude and a mode-peeking
   implementation might take it as licence to skip the root sort — but
   elision must be purely structural (a proof the rows already arrive
   pos-sorted), and a descending order-by makes that proof impossible.
   So: the root sort must NOT be elided, the result must be the
   descending sequence exactly, and order-props on/off must agree to the
   byte in every configuration. *)
let test_unordered_wrap_never_licenses_elision () =
  let q = "unordered { for $i in (1, 2, 3) order by $i descending return $i }"
  in
  (* structural check: the engine did not elide the root sort *)
  let st = mk_store () in
  let r =
    Engine.run ~opts:{ Engine.default_opts with mode = Some Xquery.Ast.Ordered }
      ~with_profile:true st q
  in
  (match r.Engine.profile with
   | None -> Alcotest.fail "profile requested but absent"
   | Some p ->
     Alcotest.(check int) "root sort NOT elided under unordered{}+desc" 0
       (Algebra.Profile.phys p).Algebra.Profile.root_sort_elided);
  (* behavioural check: exact descending result, every config, on = off *)
  List.iter
    (fun ((name, _, _, _, _) as cfg) ->
       Alcotest.(check string)
         (Printf.sprintf "desc result exact under forced ordered [%s]" name)
         "ok: 3 | 2 | 1"
         (exact (run ~mode:Xquery.Ast.Ordered cfg q)))
    configs

let () =
  Alcotest.run "order-metamorphic"
    [ ("relation 1: unordered{} permutes at most",
       [ Alcotest.test_case "corpus" `Slow test_unordered_wrap_is_permutation;
         Alcotest.test_case "ordered context stays exact" `Quick
           test_ordered_context_exact ]);
      ("relation 2: configurations are invisible",
       [ Alcotest.test_case "plain" `Slow test_configs_agree_plain;
         Alcotest.test_case "wrapped" `Slow test_configs_agree_wrapped;
         Alcotest.test_case "forced ordered mode" `Slow
           test_configs_agree_forced_ordered ]);
      ("sort-elision soundness boundary",
       [ Alcotest.test_case "unordered{} + order-by-desc never elides"
           `Quick test_unordered_wrap_never_licenses_elision ]) ]
