(* The logical rewriter (Algebra.Rewrite) and its property-driven
   companions in Icols, tested at three grains:

     1. per-rule unit fixtures over hand-built plans — each rule has a
        case where it fires (and the plan shape changes as advertised)
        and a case where it provably must not (its guard would be
        violated: result column selected on, order-sensitive consumer,
        balanced cardinalities);

     2. executable soundness — for the order-changing rules, the
        original and rewritten plans are evaluated and compared as
        multisets (order-preserving rules compare exactly);

     3. end-to-end result identity over the query corpus — every file
        under queries/ answers identically (serialization and error
        message alike) with the rewriter on and off, under the native
        prolog AND under a forced ordered mode. This is the acceptance
        bar: rewriting is invisible except in time. *)

module P = Algebra.Plan
module R = Algebra.Rewrite
module V = Algebra.Value

let fire rule (s : R.stats) =
  Option.value ~default:0 (List.assoc_opt rule s.R.fires)

let has_op pred root =
  List.exists (fun (n : P.node) -> pred n.P.op) (P.topo_order root)

let is_cross = function P.Cross _ -> true | _ -> false
let is_theta = function P.Thetajoin _ -> true | _ -> false
let is_distinct = function P.Distinct _ -> true | _ -> false
let is_rownum = function P.Rownum _ -> true | _ -> false

let lit b schema rows =
  P.mk b (P.Lit { schema = Array.of_list schema; rows })

let ints l = List.map (fun xs -> Array.of_list (List.map (fun i -> V.Int i) xs)) l

(* Evaluate a plan over an empty store and flatten to a sorted list of
   stringified rows (multiset comparison) or an in-order list (exact). *)
let rows_of ?(sort = false) root =
  let st = Xmldb.Doc_store.create () in
  let t = Algebra.Eval.run st root in
  let cols = List.sort compare (Array.to_list (Algebra.Table.schema t)) in
  let rows =
    List.init (Algebra.Table.nrows t) (fun i ->
        String.concat "|"
          (List.map
             (fun c -> V.to_string (Algebra.Table.get t c i))
             cols))
  in
  if sort then List.sort compare rows else rows

let check_rows ~sort name a b =
  Alcotest.(check (list string)) name (rows_of ~sort a) (rows_of ~sort b)

(* ------------------------------------------------------- unit fixtures *)

let test_select_pushdown () =
  let b = P.builder () in
  let base = lit b [ "c"; "x" ]
      (List.map (fun (c, x) -> [| V.Bool c; V.Int x |])
         [ (true, 1); (false, 2); (true, 3) ]) in
  let attach = P.mk b (P.Attach { input = base; res = "f"; value = V.Int 9 }) in
  let sel = P.mk b (P.Select { input = attach; col = "c" }) in
  let root, s = R.optimize b sel in
  Alcotest.(check int) "fires through Attach" 1 (fire "select-pushdown" s);
  (match root.P.op with
   | P.Attach _ -> ()
   | _ -> Alcotest.fail "Attach should now be the root");
  check_rows ~sort:false "rows unchanged" sel root;
  (* guard: selecting on the attached column itself must not move *)
  let b2 = P.builder () in
  let base2 = lit b2 [ "x" ] (ints [ [ 1 ]; [ 2 ] ]) in
  let attach2 = P.mk b2 (P.Attach { input = base2; res = "c"; value = V.Bool true }) in
  let sel2 = P.mk b2 (P.Select { input = attach2; col = "c" }) in
  let _, s2 = R.optimize b2 sel2 in
  Alcotest.(check int) "no fire on own result" 0 (fire "select-pushdown" s2)

let test_join_synthesis () =
  let b = P.builder () in
  let a = lit b [ "x" ] (ints [ [ 1 ]; [ 2 ]; [ 3 ] ]) in
  let c = lit b [ "y" ] (ints [ [ 2 ]; [ 3 ]; [ 4 ] ]) in
  let cross = P.mk b (P.Cross { left = a; right = c }) in
  let f2 =
    P.mk b
      (P.Fun2 { input = cross; res = "c"; f = P.P_eq; arg1 = "x"; arg2 = "y" })
  in
  let sel = P.mk b (P.Select { input = f2; col = "c" }) in
  let root, s = R.optimize b sel in
  Alcotest.(check int) "fires" 1 (fire "join-synthesis" s);
  Alcotest.(check bool) "cross gone" false (has_op is_cross root);
  Alcotest.(check bool) "theta join present" true (has_op is_theta root);
  check_rows ~sort:false "pair order preserved" sel root;
  (* guard: a comparison that is kept as a value (not selected on) must
     stay a Fun2 over the cross *)
  let b2 = P.builder () in
  let a2 = lit b2 [ "x" ] (ints [ [ 1 ] ]) in
  let c2 = lit b2 [ "y" ] (ints [ [ 1 ] ]) in
  let cross2 = P.mk b2 (P.Cross { left = a2; right = c2 }) in
  let f2' =
    P.mk b2
      (P.Fun2 { input = cross2; res = "c"; f = P.P_eq; arg1 = "x"; arg2 = "y" })
  in
  let _, s2 = R.optimize b2 f2' in
  Alcotest.(check int) "no fire without a sigma" 0 (fire "join-synthesis" s2)

let test_join_cross_elim () =
  let mk_shape b =
    let a = lit b [ "a" ] (ints [ [ 1 ]; [ 2 ] ]) in
    let f1 = lit b [ "b" ] (ints [ [ 1 ]; [ 2 ]; [ 3 ] ]) in
    let f2 = lit b [ "c" ] (ints [ [ 7 ]; [ 8 ] ]) in
    let cross = P.mk b (P.Cross { left = f1; right = f2 }) in
    P.mk b (P.Join { left = a; right = cross; lcol = "a"; rcol = "b" })
  in
  (* at the root every executor extracts by pos, so the join is
     order-insensitive and may commute with the cross *)
  let b = P.builder () in
  let join = mk_shape b in
  let root, s = R.optimize b join in
  Alcotest.(check int) "fires at insensitive root" 1 (fire "join-cross-elim" s);
  (match root.P.op with
   | P.Cross _ -> ()
   | _ -> Alcotest.fail "Cross should now be the root");
  check_rows ~sort:true "same multiset" join root;
  (* guard: under a rowid the join's row order is observed — no fire *)
  let b2 = P.builder () in
  let guarded = P.mk b2 (P.Rowid { input = mk_shape b2; res = "r" }) in
  let _, s2 = R.optimize b2 guarded in
  Alcotest.(check int) "no fire under rowid" 0 (fire "join-cross-elim" s2)

let test_join_swap () =
  let small = ints [ [ 1 ]; [ 2 ] ] in
  let big = ints (List.init 64 (fun i -> [ i mod 3 ])) in
  let b = P.builder () in
  let l = lit b [ "a" ] small in
  let r = lit b [ "b" ] big in
  let join = P.mk b (P.Join { left = l; right = r; lcol = "a"; rcol = "b" }) in
  let root, s = R.optimize b join in
  Alcotest.(check int) "fires on skew" 1 (fire "join-swap" s);
  (match root.P.op with
   | P.Join { lcol; rcol; _ } ->
     Alcotest.(check (pair string string)) "columns mirrored" ("b", "a")
       (lcol, rcol)
   | _ -> Alcotest.fail "expected a join root");
  check_rows ~sort:true "same multiset" join root;
  (* guard: balanced inputs stay put (no oscillation) *)
  let b2 = P.builder () in
  let l2 = lit b2 [ "a" ] big in
  let r2 = lit b2 [ "b" ] big in
  let join2 = P.mk b2 (P.Join { left = l2; right = r2; lcol = "a"; rcol = "b" }) in
  let _, s2 = R.optimize b2 join2 in
  Alcotest.(check int) "no fire when balanced" 0 (fire "join-swap" s2)

(* ------------------------------------- property-driven rules in Icols *)

let pos_item b n =
  P.mk b (P.Project { input = n; cols = [ ("pos", "pos"); ("item", "item") ] })

let test_keyed_distinct_elision () =
  (* CDA keeps only pos|item at the root, so the key must BE pos for the
     elision to stay sound after narrowing — a rowid named anything else
     is pruned, and the delta then sees the duplicate items for real *)
  let b = P.builder () in
  let base = lit b [ "iter"; "item" ] (ints [ [ 1; 5 ]; [ 1; 5 ]; [ 2; 6 ] ]) in
  let rid = P.mk b (P.Rowid { input = base; res = "pos" }) in
  let d = P.mk b (P.Distinct { input = rid }) in
  let root = Exrquy.Icols.optimize b (pos_item b d) in
  Alcotest.(check bool) "distinct elided (surviving rowid key)" false
    (has_op is_distinct root);
  check_rows ~sort:false "rows unchanged" (pos_item b d) root;
  (* guard 1: a key that does not survive narrowing must not license the
     elision — same plan, rowid under a different (dead) name *)
  let b2 = P.builder () in
  let base2 = lit b2 [ "iter"; "item" ] (ints [ [ 1; 5 ]; [ 1; 5 ]; [ 2; 6 ] ]) in
  let rid2 = P.mk b2 (P.Rowid { input = base2; res = "k" }) in
  let at = P.mk b2 (P.Attach { input = rid2; res = "pos"; value = V.Int 1 }) in
  let d2 = P.mk b2 (P.Distinct { input = at }) in
  let root2 = Exrquy.Icols.optimize b2 (pos_item b2 d2) in
  Alcotest.(check bool) "distinct kept when the key is pruned" true
    (has_op is_distinct root2);
  (* guard 2: no key at all *)
  let b3 = P.builder () in
  let base3 = lit b3 [ "pos"; "item" ] (ints [ [ 1; 5 ]; [ 1; 5 ] ]) in
  let d3 = P.mk b3 (P.Distinct { input = base3 }) in
  let root3 = Exrquy.Icols.optimize b3 d3 in
  Alcotest.(check bool) "distinct kept without keys" true
    (has_op is_distinct root3)

let test_dense_rownum_degrade () =
  (* the order criterion is a dense Lit column (strictly increasing, NOT
     rowid-born), so this isolates the dense-prefix degradation from the
     pre-existing all-arbitrary one *)
  let b = P.builder () in
  let base = lit b [ "k"; "item" ] (ints [ [ 10; 7 ]; [ 20; 8 ]; [ 30; 9 ] ]) in
  let rn =
    P.mk b
      (P.Rownum
         { input = base; res = "pos"; order = [ ("k", P.Asc) ]; part = None })
  in
  let root = Exrquy.Icols.optimize b (pos_item b rn) in
  Alcotest.(check bool) "rownum degraded to rowid (dense criterion)" false
    (has_op is_rownum root);
  check_rows ~sort:false "numbering identical" (pos_item b rn) root;
  (* guard: a duplicate-free but non-monotone criterion must keep the
     sort (the numbering genuinely permutes) *)
  let b2 = P.builder () in
  let base2 = lit b2 [ "k"; "item" ] (ints [ [ 30; 7 ]; [ 10; 8 ]; [ 20; 9 ] ]) in
  let rn2 =
    P.mk b2
      (P.Rownum
         { input = base2; res = "pos"; order = [ ("k", P.Asc) ]; part = None })
  in
  let root2 = Exrquy.Icols.optimize b2 (pos_item b2 rn2) in
  Alcotest.(check bool) "rownum kept" true (has_op is_rownum root2)

(* ------------------------------------------- physical build-side flip *)

let test_build_flip_parity () =
  let b = P.builder () in
  let l = lit b [ "a"; "x" ] (ints [ [ 1; 10 ]; [ 2; 20 ]; [ 1; 30 ] ]) in
  let r = lit b [ "b"; "y" ]
      (ints [ [ 1; 100 ]; [ 1; 200 ]; [ 2; 300 ]; [ 3; 400 ] ]) in
  let join = P.mk b (P.Join { left = l; right = r; lcol = "a"; rcol = "b" }) in
  let st = Xmldb.Doc_store.create () in
  let exec card =
    let profile = Algebra.Profile.create () in
    let pp = Algebra.Lower.lower ?card join in
    let t = Algebra.Physical.run ~profile st pp in
    let rows =
      List.init (Algebra.Table.nrows t) (fun i ->
          String.concat "|"
            (List.map
               (fun c -> V.to_string (Algebra.Table.get t c i))
               (List.sort compare (Array.to_list (Algebra.Table.schema t)))))
    in
    (rows, (Algebra.Profile.phys profile).Algebra.Profile.build_flips)
  in
  let plain, flips0 = exec None in
  let flipped, flips1 =
    (* force the flip: pretend the left side is far smaller *)
    exec (Some (fun (n : P.node) -> if n.P.id = l.P.id then 1 else 1000))
  in
  Alcotest.(check int) "no flip by default" 0 flips0;
  Alcotest.(check bool) "flip recorded" true (flips1 > 0);
  Alcotest.(check (list string)) "row order identical either side" plain
    flipped

(* -------------------------------------------- corpus result identity *)

let auction_xml = lazy (Xmark.Xmark_gen.generate ~scale:0.002 ())
let doc_xml = "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"

let mk_store () =
  let st = Xmldb.Doc_store.create () in
  let _ =
    Xmldb.Xml_parser.load_document st ~uri:"auction.xml"
      (Lazy.force auction_xml)
  in
  let _ = Xmldb.Xml_parser.load_document st ~uri:"t.xml" doc_xml in
  st

let queries_dir =
  if Sys.file_exists "../queries" then "../queries" else "queries"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus () =
  Sys.readdir queries_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".xq")
  |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat queries_dir f)))

let outcome ?mode ~rewrite q =
  let opts = { Engine.default_opts with Engine.rewrite; mode } in
  match Engine.run_result ~opts (mk_store ()) q with
  | Ok r -> "ok: " ^ r.Engine.serialized
  | Error { Engine.kind; message } ->
    Basis.Err.kind_label kind ^ ": " ^ message

let test_corpus_identity () =
  List.iter
    (fun (file, q) ->
       Alcotest.(check string)
         (file ^ " (native prolog)")
         (outcome ~rewrite:false q) (outcome ~rewrite:true q);
       Alcotest.(check string)
         (file ^ " (forced ordered)")
         (outcome ~mode:Xquery.Ast.Ordered ~rewrite:false q)
         (outcome ~mode:Xquery.Ast.Ordered ~rewrite:true q))
    (corpus ())

let () =
  Alcotest.run "rewrite"
    [ ("rules",
       [ Alcotest.test_case "select pushdown" `Quick test_select_pushdown;
         Alcotest.test_case "join synthesis" `Quick test_join_synthesis;
         Alcotest.test_case "join-cross elimination" `Quick test_join_cross_elim;
         Alcotest.test_case "join swap" `Quick test_join_swap ]);
      ("properties",
       [ Alcotest.test_case "keyed distinct elision" `Quick
           test_keyed_distinct_elision;
         Alcotest.test_case "dense rownum degrade" `Quick
           test_dense_rownum_degrade ]);
      ("physical",
       [ Alcotest.test_case "build-side flip parity" `Quick
           test_build_flip_parity ]);
      ("corpus",
       [ Alcotest.test_case "rewrite on = rewrite off" `Quick
           test_corpus_identity ]) ]
