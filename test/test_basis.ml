(* Tests for the foundation library: growable vectors, string interning,
   the error discipline, and the deterministic PRNG. *)

open Basis

(* ------------------------------------------------------------------- vec *)

let test_vec_basic () =
  let v = Vec.create 0 in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 1 to 100 do Vec.push v i done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 41);
  Vec.set v 41 7;
  Alcotest.(check int) "set" 7 (Vec.get v 41);
  Alcotest.(check int) "last" 100 (Vec.last v);
  Alcotest.(check int) "pop" 100 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  let a = Vec.to_array v in
  Alcotest.(check int) "snapshot length" 99 (Array.length a);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_vec_bounds () =
  (* out-of-bounds access is a broken invariant of ours, not a user
     error: the uniform taxonomy reports it as Err.Internal_error *)
  let v = Vec.create 0 in
  Vec.push v 1;
  (match Vec.get v 1 with
   | exception Err.Internal_error _ -> ()
   | _ -> Alcotest.fail "get out of bounds");
  (match Vec.get v (-1) with
   | exception Err.Internal_error _ -> ()
   | _ -> Alcotest.fail "negative index");
  let empty = Vec.create 0 in
  (match Vec.pop empty with
   | exception Err.Internal_error _ -> ()
   | _ -> Alcotest.fail "pop of empty")

let test_vec_iteration () =
  let v = Vec.of_array 0 [| 1; 2; 3 |] in
  Alcotest.(check int) "fold" 6 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 3 (List.length !acc);
  let w = Vec.create 0 in
  Vec.append w v;
  Vec.append w v;
  Alcotest.(check int) "append" 6 (Vec.length w)

let vec_growth_prop =
  QCheck2.Test.make ~count:100 ~name:"vec: to_array round-trips any pushes"
    QCheck2.Gen.(list int)
    (fun xs ->
       let v = Vec.create 0 in
       List.iter (Vec.push v) xs;
       Array.to_list (Vec.to_array v) = xs)

(* ----------------------------------------------------------- string pool *)

let test_pool () =
  let p = String_pool.create () in
  let a = String_pool.intern p "hello" in
  let b = String_pool.intern p "world" in
  let a' = String_pool.intern p "hello" in
  Alcotest.(check int) "stable ids" a a';
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check string) "get" "hello" (String_pool.get p a);
  Alcotest.(check int) "size" 2 (String_pool.size p);
  Alcotest.(check (option int)) "find" (Some b) (String_pool.find_opt p "world");
  Alcotest.(check (option int)) "missing" None (String_pool.find_opt p "nope")

(* ------------------------------------------------------------------ prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 43 in
  let diff = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then diff := true
  done;
  Alcotest.(check bool) "different seeds differ" true !diff

let test_prng_ranges () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int r 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of range";
    let f = Prng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of range";
    let z = Prng.zipf r 100 in
    if z < 0 || z >= 100 then Alcotest.fail "zipf out of range"
  done;
  (match Prng.int r 0 with
   | exception Err.Internal_error _ -> ()
   | _ -> Alcotest.fail "bound 0 must raise")

let test_prng_zipf_skew () =
  (* rank 0 must be (much) more likely than the median rank *)
  let r = Prng.create 1 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let z = Prng.zipf r 100 in
    counts.(z) <- counts.(z) + 1
  done;
  Alcotest.(check bool) "skewed toward 0" true (counts.(0) > counts.(50) * 3)

(* ------------------------------------------------------------------- err *)

let test_err () =
  (match Err.dynamic "boom %d" 1 with
   | exception Err.Dynamic_error "boom 1" -> ()
   | _ -> Alcotest.fail "dynamic");
  (match Err.static "s" with
   | exception Err.Static_error "s" -> ()
   | _ -> Alcotest.fail "static");
  Alcotest.(check string) "to_string"
    "dynamic error: x" (Err.to_string (Err.Dynamic_error "x"));
  (match Err.protect (fun () -> 42) with
   | Ok 42 -> ()
   | _ -> Alcotest.fail "protect ok");
  (match Err.protect (fun () -> Err.dynamic "no") with
   | Error m when m = "dynamic error: no" -> ()
   | _ -> Alcotest.fail "protect error");
  (match Err.resource "over %s" "budget" with
   | exception Err.Resource_error "over budget" -> ()
   | _ -> Alcotest.fail "resource");
  (match Err.protect (fun () -> Err.resource "slow") with
   | Error "resource error: slow" -> ()
   | _ -> Alcotest.fail "protect resource");
  (match Err.protect_kind (fun () -> Err.resource "slow") with
   | Error (Err.Resource, "slow") -> ()
   | _ -> Alcotest.fail "protect_kind resource");
  Alcotest.(check (list int)) "exit codes distinct"
    [ 1; 2; 3; 4 ]
    (List.map Err.exit_code [ Err.Dynamic; Err.Static; Err.Resource; Err.Internal ]);
  (match Err.classify (Err.Internal_error "bug") with
   | Some (Err.Internal, "bug") -> ()
   | _ -> Alcotest.fail "classify internal");
  Alcotest.(check bool) "classify foreign" true
    (Err.classify Exit = None)

(* ---------------------------------------------------------------- budget *)

let resource_raised f =
  match f () with
  | exception Err.Resource_error _ -> true
  | _ -> false

let test_budget_ops () =
  let g = Budget.start (Budget.limits ~max_ops:3 ()) in
  Budget.check g; Budget.check g; Budget.check g;
  Alcotest.(check int) "ops counted" 3 (Budget.ops g);
  Alcotest.(check bool) "4th check raises" true
    (resource_raised (fun () -> Budget.check g))

let test_budget_rows_bytes () =
  let g = Budget.start (Budget.limits ~max_rows:10 ()) in
  Budget.add_rows g 6;
  Budget.add_rows g 4;
  Alcotest.(check bool) "11th row raises" true
    (resource_raised (fun () -> Budget.add_rows g 1));
  let g = Budget.start (Budget.limits ~max_bytes:100 ()) in
  Alcotest.(check bool) "byte accounting armed" true (Budget.wants_bytes g);
  Budget.add_bytes g 99;
  Alcotest.(check bool) "101st byte raises" true
    (resource_raised (fun () -> Budget.add_bytes g 2));
  let unarmed = Budget.start Budget.unlimited in
  Alcotest.(check bool) "byte accounting unarmed" false
    (Budget.wants_bytes unarmed);
  (* unlimited guards never trip *)
  for _ = 1 to 1000 do Budget.check unarmed done;
  Budget.add_rows unarmed max_int;
  Budget.add_bytes unarmed max_int

let test_budget_deadline () =
  let g = Budget.start (Budget.limits ~timeout_s:0.0 ()) in
  Alcotest.(check bool) "expired deadline raises" true
    (resource_raised (fun () -> Budget.check g));
  let g = Budget.start (Budget.limits ~timeout_s:60.0 ()) in
  Budget.check g (* far deadline does not *)

let test_budget_cancel () =
  let c = Budget.cancel_switch () in
  let g = Budget.start (Budget.limits ~cancel:c ()) in
  Budget.check g;
  Alcotest.(check bool) "not yet cancelled" false (Budget.cancelled c);
  Budget.cancel c;
  Alcotest.(check bool) "cancelled" true (Budget.cancelled c);
  Alcotest.(check bool) "next boundary raises" true
    (resource_raised (fun () -> Budget.check g))

let test_budget_fault () =
  (* the injected fault is an internal error (a fake bug), not a
     resource error — it must engage the engine's fallback machinery *)
  let g = Budget.start (Budget.limits ~fault_at:3 ()) in
  Budget.check g; Budget.check g;
  (match Budget.check g with
   | exception Err.Internal_error m ->
     Alcotest.(check bool) "message names the boundary" true
       (m = "injected fault at operator boundary 3")
   | () -> Alcotest.fail "fault did not fire");
  (* deterministic: same spec, same boundary *)
  let g' = Budget.start (Budget.limits ~fault_at:3 ()) in
  Budget.check g'; Budget.check g';
  Alcotest.(check bool) "fires again at 3" true
    (match Budget.check g' with
     | exception Err.Internal_error _ -> true
     | () -> false)

(* ---------------------------------------------------- budget: clamping *)

let test_budget_clamp () =
  let c = Budget.cancel_switch () in
  let ceiling =
    Budget.limits ~timeout_s:10. ~max_rows:1000 ~fault_at:7
      ~cancel:(Budget.cancel_switch ()) ()
  in
  let wish = Budget.limits ~timeout_s:60. ~max_bytes:500 ~cancel:c () in
  let s = Budget.clamp ~ceiling wish in
  Alcotest.(check (option (float 1e-9))) "timeout: min wins"
    (Some 10.) s.Budget.timeout_s;
  Alcotest.(check (option int)) "rows: ceiling-only limit kept"
    (Some 1000) s.Budget.max_rows;
  Alcotest.(check (option int)) "bytes: spec-only limit kept"
    (Some 500) s.Budget.max_bytes;
  Alcotest.(check (option int)) "ops: unarmed stays unarmed"
    None s.Budget.max_ops;
  (* policy boundaries: the ceiling must not alias its cancel switch or
     fault hook into the clamped request *)
  Alcotest.(check bool) "cancel comes from the spec side" true
    (match s.Budget.cancel with Some x -> x == c | None -> false);
  Alcotest.(check (option int)) "ceiling fault_at is not inherited"
    None s.Budget.fault_at;
  let tighter =
    Budget.clamp ~ceiling (Budget.limits ~timeout_s:0.5 ~max_rows:10 ())
  in
  Alcotest.(check (option (float 1e-9))) "client may wish tighter"
    (Some 0.5) tighter.Budget.timeout_s;
  Alcotest.(check (option int)) "rows: min wins" (Some 10)
    tighter.Budget.max_rows

let test_budget_remaining () =
  let g = Budget.start (Budget.limits ~timeout_s:60. ()) in
  (match Budget.remaining_s g with
   | Some r -> Alcotest.(check bool) "remaining in (0, 60]" true (r > 0. && r <= 60.)
   | None -> Alcotest.fail "deadline armed but no remaining time");
  let unarmed = Budget.start Budget.unlimited in
  Alcotest.(check bool) "unarmed guard has no remaining" true
    (Budget.remaining_s unarmed = None)

let test_budget_interrupted () =
  let c = Budget.cancel_switch () in
  let g = Budget.start (Budget.limits ~cancel:c ~max_ops:100 ()) in
  Alcotest.(check bool) "live guard not interrupted" false
    (Budget.interrupted g);
  Budget.check_interrupted g;
  (* interruption probes are free: they must not eat the op budget *)
  Alcotest.(check int) "probes don't count ops" 0 (Budget.ops g);
  Budget.cancel c;
  Alcotest.(check bool) "cancelled guard is interrupted" true
    (Budget.interrupted g);
  Alcotest.(check bool) "check_interrupted raises" true
    (resource_raised (fun () -> Budget.check_interrupted g))

(* ------------------------------------------------------------------ pool *)

(* The hardening contract: nothing a task body or stop hook does — up to
   and including Stack_overflow — may wedge the pool. Every test reuses
   the pool after the failure to prove the workers survived. *)

let reusable p =
  let hits = Array.make 8 0 in
  Pool.run p ~jobs:2 8 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "pool reusable: every task ran once" true
    (Array.for_all (fun n -> n = 1) hits)

let test_pool_body_raises () =
  let p = Pool.create () in
  let ran = Array.make 6 false in
  (match
     Pool.run p ~jobs:2 6 (fun i ->
       ran.(i) <- true;
       if i = 2 then Err.dynamic "task %d failed" i)
   with
   | exception Err.Dynamic_error "task 2 failed" -> ()
   | () -> Alcotest.fail "exception swallowed");
  (* determinism: the remaining tasks still execute *)
  Alcotest.(check bool) "all tasks ran despite the failure" true
    (Array.for_all Fun.id ran);
  reusable p;
  Pool.shutdown p

let test_pool_lowest_failure_wins () =
  let p = Pool.create () in
  (match
     Pool.run p ~jobs:2 8 (fun i ->
       if i = 5 then Err.dynamic "later"
       else if i = 1 then Err.resource "earlier")
   with
   | exception Err.Resource_error "earlier" -> ()
   | exception e ->
     Alcotest.failf "wrong failure surfaced: %s" (Printexc.to_string e)
   | () -> Alcotest.fail "exception swallowed");
  reusable p;
  Pool.shutdown p

let test_pool_stack_overflow () =
  let p = Pool.create () in
  (* raised directly: growing a real 8MB+ fiber stack by copying takes
     ~10s on this class of host, and the pool's recovery path — catch,
     record, re-raise after the job, survive — is identical *)
  (match
     Pool.run p ~jobs:2 4 (fun i -> if i = 1 then raise Stack_overflow)
   with
   | exception Stack_overflow -> ()
   | exception e ->
     Alcotest.failf "expected Stack_overflow, got %s" (Printexc.to_string e)
   | () -> Alcotest.fail "overflow swallowed");
  reusable p;
  Pool.shutdown p

let test_pool_raising_stop () =
  let p = Pool.create () in
  (* a raising stop hook acts as a trip and surfaces its exception... *)
  (match
     Pool.run p ~jobs:2 16
       ~stop:(fun () -> Err.resource "budget mid-claim")
       (fun _ -> ())
   with
   | exception Err.Resource_error "budget mid-claim" -> ()
   | exception e ->
     Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
   | () -> Alcotest.fail "raising stop hook ignored");
  reusable p;
  (* ...unless a task body also failed: body failures carry lower
     indices (serial order), so they win. The hook only starts raising
     once the body failure has happened — a hook that raises on first
     check trips the run before any body executes. *)
  let body_failed = Atomic.make false in
  (match
     Pool.run p ~jobs:2 16
       ~stop:(fun () ->
         if Atomic.get body_failed then Err.resource "hook" else false)
       (fun i ->
         if i = 0 then begin
           Atomic.set body_failed true;
           Err.dynamic "body"
         end)
   with
   | exception Err.Dynamic_error "body" -> ()
   | exception e ->
     Alcotest.failf "body failure must win: %s" (Printexc.to_string e)
   | () -> Alcotest.fail "both failures swallowed");
  reusable p;
  Pool.shutdown p

let test_pool_contention_counter () =
  let p = Pool.create () in
  Alcotest.(check int) "fresh pool: no contention" 0 (Pool.contended p);
  (* a nested submission finds the job board occupied, degrades to
     inline serial execution, and is counted — the watchdog's signal *)
  let inner_ran = ref 0 in
  Pool.run p ~jobs:2 2 (fun _ ->
    Pool.run p ~jobs:2 2 (fun _ -> incr inner_ran));
  Alcotest.(check bool) "nested runs counted as contention" true
    (Pool.contended p >= 1);
  Alcotest.(check int) "degraded runs still execute every task" 4 !inner_ran;
  reusable p;
  Pool.shutdown p

(* ---------------------------------------------------------------- rwlock *)

let test_rwlock_basic () =
  let l = Rwlock.create () in
  Alcotest.(check int) "with_read returns" 1 (Rwlock.with_read l (fun () -> 1));
  Alcotest.(check int) "with_write returns" 2 (Rwlock.with_write l (fun () -> 2));
  (* exception safety: a raising section must release the lock *)
  (match Rwlock.with_write l (fun () -> failwith "boom") with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "lock free after raising writer" 3
    (Rwlock.with_write l (fun () -> 3));
  (match Rwlock.with_read l (fun () -> failwith "boom") with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "lock free after raising reader" 4
    (Rwlock.with_write l (fun () -> 4))

let test_rwlock_readers_share () =
  let l = Rwlock.create () in
  Rwlock.lock_read l;
  (* a second reader gets in while the first still holds the lock *)
  let d = Domain.spawn (fun () -> Rwlock.with_read l (fun () -> 42)) in
  Alcotest.(check int) "concurrent reader admitted" 42 (Domain.join d);
  Rwlock.unlock_read l

let test_rwlock_writer_excludes () =
  let l = Rwlock.create () in
  let entered = Atomic.make false in
  Rwlock.lock_write l;
  let d =
    Domain.spawn (fun () ->
      Rwlock.with_read l (fun () -> Atomic.set entered true))
  in
  (* give the reader ample opportunity to (wrongly) slip past *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "reader blocked by writer" false (Atomic.get entered);
  Rwlock.unlock_write l;
  Domain.join d;
  Alcotest.(check bool) "reader admitted after release" true
    (Atomic.get entered)

let test_rwlock_writes_exclusive () =
  let l = Rwlock.create () in
  let counter = ref 0 in
  let bump () =
    for _ = 1 to 2_000 do
      Rwlock.with_write l (fun () -> counter := !counter + 1)
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn bump) in
  List.iter Domain.join ds;
  (* a plain ref: only writer exclusivity makes this count exact *)
  Alcotest.(check int) "no lost updates" 6_000 !counter

let () =
  Alcotest.run "basis"
    [ ( "vec",
        [ Alcotest.test_case "basics" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iteration" `Quick test_vec_iteration;
          QCheck_alcotest.to_alcotest vec_growth_prop ] );
      ( "string pool", [ Alcotest.test_case "interning" `Quick test_pool ] );
      ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew ] );
      ( "err", [ Alcotest.test_case "classes" `Quick test_err ] );
      ( "budget",
        [ Alcotest.test_case "op budget" `Quick test_budget_ops;
          Alcotest.test_case "row and byte budgets" `Quick test_budget_rows_bytes;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "cancellation" `Quick test_budget_cancel;
          Alcotest.test_case "fault injection" `Quick test_budget_fault;
          Alcotest.test_case "ceiling clamp" `Quick test_budget_clamp;
          Alcotest.test_case "remaining time" `Quick test_budget_remaining;
          Alcotest.test_case "interruption probes" `Quick
            test_budget_interrupted ] );
      ( "pool",
        [ Alcotest.test_case "task body raises" `Quick test_pool_body_raises;
          Alcotest.test_case "lowest failure wins" `Quick
            test_pool_lowest_failure_wins;
          Alcotest.test_case "stack overflow in body" `Quick
            test_pool_stack_overflow;
          Alcotest.test_case "raising stop hook" `Quick test_pool_raising_stop;
          Alcotest.test_case "contention counter" `Quick
            test_pool_contention_counter ] );
      ( "rwlock",
        [ Alcotest.test_case "basics and exception safety" `Quick
          test_rwlock_basic;
          Alcotest.test_case "readers share" `Quick test_rwlock_readers_share;
          Alcotest.test_case "writer excludes readers" `Quick
            test_rwlock_writer_excludes;
          Alcotest.test_case "writers mutually exclusive" `Quick
            test_rwlock_writes_exclusive ] );
    ]
