(* End-to-end engine tests, built around differential testing:

     reference interpreter (ordered semantics)
       ==  compiled plans, for every combination of
           {Figure-7 rules on/off} x {CDA on/off} x {hoisting on/off}

   exactly under ordered mode, and up to the admissible reordering under
   ordering mode unordered. Plus dynamic-error propagation and a qcheck
   generator of random FLWOR/arithmetic/path queries. *)

module Value = Algebra.Value

let mk_store () =
  let st = Xmldb.Doc_store.create () in
  let _ =
    Xmldb.Xml_parser.load_document st ~uri:"t.xml"
      "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"
  in
  let _ =
    Xmldb.Xml_parser.load_document st ~uri:"ids.xml"
      "<r><p id=\"p1\"><q id=\"q1\"/></p><p id=\"p2\"/></r>"
  in
  st

(* serialize each item separately so sequences compare item-wise *)
let ser st items =
  List.map
    (fun it ->
       match it with
       | Value.Node n -> Xmldb.Serialize.node_to_string st n
       | v -> Value.to_string v)
    items

let opts_matrix =
  [ ("full", Engine.default_opts);
    ("no-cda", { Engine.default_opts with Engine.cda = false });
    ("no-hoist", { Engine.default_opts with Engine.hoist = false });
    ("baseline", Engine.ordered_baseline);
    ("rules-only", { Engine.default_opts with Engine.cda = false; Engine.hoist = false });
    ("tag-index", { Engine.default_opts with Engine.step_impl = Algebra.Eval.Tag_index }) ]

let check_query ?(multiset = false) st q =
  let reference =
    match Interp.Interpreter.run st q with
    | items -> Ok (ser st items)
    | exception Basis.Err.Dynamic_error m -> Error m
  in
  List.iter
    (fun (oname, opts) ->
       let got =
         match Engine.run ~opts st q with
         | r -> Ok (ser st r.Engine.items)
         | exception Basis.Err.Dynamic_error m -> Error m
       in
       match (reference, got) with
       | Ok a, Ok b ->
         let a, b =
           if multiset then (List.sort compare a, List.sort compare b)
           else (a, b)
         in
         if a <> b then
           Alcotest.failf "%s [%s]:\n  interp:   %s\n  compiled: %s" q oname
             (String.concat " | " a) (String.concat " | " b)
       | Error _, Error _ -> ()
       | Error m, Ok _ ->
         Alcotest.failf "%s [%s]: interp raised (%s), compiled succeeded" q oname m
       | Ok _, Error m ->
         Alcotest.failf "%s [%s]: compiled raised (%s), interp succeeded" q oname m)
    opts_matrix

let t name ?multiset queries =
  Alcotest.test_case name `Quick (fun () ->
      let st = mk_store () in
      List.iter (fun q -> check_query ?multiset st q) queries)

(* ------------------------------------------------------------ the corpus *)

let literals_and_sequences =
  [ "42"; "-7"; "3.5"; "\"str\""; "()"; "(1,2,3)"; "((1,2),(),(3))";
    "1 to 5"; "5 to 1"; "(1 to 3, 10 to 12)"; "reverse(1 to 4)";
    "subsequence((1,2,3,4,5), 2)"; "subsequence((1,2,3,4,5), 2, 2)" ]

let arithmetic =
  [ "1 + 2 * 3"; "7 idiv 2"; "7 mod 2"; "1 div 4"; "-(3 + 4)";
    "\"12\" + 1"; "() + 1"; "1.5 * 2"; "10 - 2 - 3" ]

let comparisons =
  [ "1 < 2"; "2 <= 2"; "(1,2,3) = 3"; "(1,2) = (3,4)"; "(1,2) != (1,2)";
    "() = 1"; "\"a\" < \"b\""; "1 eq 1"; "2 gt 1"; "\"x\" ne \"y\"";
    "(1,2,3) >= 3" ]

let logic =
  [ "true() and false()"; "true() or false()"; "not(true())";
    "1 and 1"; "0 or 0"; "boolean((1,2)[1] = 1)";
    "if (1 < 2) then \"y\" else \"n\"";
    "if (()) then 1 else 2" ]

let flwors =
  [ "for $x in (1,2,3) return $x * 2";
    "for $x in (1,2) return ($x, $x * 10)";
    "for $x in (1,2), $y in (10,20) return $x + $y";
    "for $x in (1,2) for $y in ($x, $x+1) return $x * 100 + $y";
    "for $x at $p in (\"a\",\"b\") return $p";
    "let $x := (1,2) return count($x)";
    "for $x in (1,2,3,4) where $x mod 2 = 0 return $x";
    "for $x in (1,2,3) let $y := $x * $x where $y > 2 return $y";
    "for $x in (3,1,2) order by $x return $x";
    "for $x in (3,1,2) order by $x descending return $x";
    "for $x in (1,2,3), $y in (1,2) order by $y, $x descending return $x * 10 + $y";
    "for $x in (\"b\",(),\"a\") order by string($x) return \"k\"";
    "for $p in (1,2) return for $q in (1 to $p) return $q";
    "for $x in () return 1";
    "let $x := () return ($x, 1)" ]

let quantifiers =
  [ "some $x in (1,2,3) satisfies $x > 2";
    "every $x in (1,2,3) satisfies $x > 0";
    "some $x in () satisfies $x";
    "every $x in () satisfies $x";
    "some $x in (1,2), $y in (2,3) satisfies $x = $y" ]

let paths =
  [ "doc(\"t.xml\")/a";
    "doc(\"t.xml\")/a/b/c";
    "doc(\"t.xml\")//c";
    "doc(\"t.xml\")//*";
    "doc(\"t.xml\")//text()";
    "doc(\"t.xml\")//node()";
    "doc(\"t.xml\")/a/e/@k";
    "doc(\"t.xml\")//c/..";
    "doc(\"t.xml\")//f/ancestor::*";
    "doc(\"t.xml\")//f/following::*";
    "doc(\"t.xml\")//f/preceding::node()";
    "doc(\"t.xml\")//c/following-sibling::*";
    "doc(\"t.xml\")/a/b/preceding-sibling::node()";
    "doc(\"t.xml\")//self::c";
    "(doc(\"t.xml\")//c | doc(\"t.xml\")//d)";
    "(doc(\"t.xml\")//* intersect doc(\"t.xml\")/a/*)";
    "(doc(\"t.xml\")//* except doc(\"t.xml\")//c)";
    "doc(\"t.xml\")/a/*[2]";
    "doc(\"t.xml\")//*[last()]";
    "doc(\"t.xml\")//*[@k]";
    "doc(\"t.xml\")//*[@k = \"1\"]";
    "doc(\"t.xml\")//*[c][1]";
    "doc(\"t.xml\")/a/(b|e)/node()";
    "for $n in doc(\"t.xml\")//* return name($n)";
    "doc(\"t.xml\")//e/text()";
    "doc(\"t.xml\")//f/ancestor::*[1]";
    "doc(\"t.xml\")//f/ancestor::*[last()]";
    "doc(\"t.xml\")//e/preceding-sibling::*[1]";
    "doc(\"t.xml\")//d/ancestor-or-self::node()[2]";
    "(doc(\"t.xml\")//f/ancestor::*)[1]";
    "let $d := <w1><w2><w3><w4><c/></w4></w3></w2></w1> \
     return name(exactly-one($d//c/ancestor::*[2]))";
    "let $d := <w1><w2><w3><w4><c/></w4></w3></w2></w1> \
     return name(exactly-one($d//c/ancestor::*[w3][1]))";
    "let $d := <w1><w2><w3><w4><c/></w4></w3></w2></w1> \
     return name(exactly-one($d//c/ancestor-or-self::*[3]))" ]

let functions =
  [ "count((1,2,3))"; "count(())"; "sum((1,2,3))"; "sum(())";
    "avg((1,2,3))"; "max((1,5,3))"; "min((2,1,3))"; "max(())";
    "empty(())"; "empty((1))"; "exists(())"; "exists((1))";
    "distinct-values((1,2,1,3))"; "data(doc(\"t.xml\")//e/@k)";
    "string(doc(\"t.xml\")/a/e)"; "string-length(\"hello\")";
    "concat(\"a\",\"b\",\"c\")"; "contains(\"hello\",\"lo\")";
    "starts-with(\"hello\",\"he\")"; "string-join((\"x\",\"y\",\"z\"), \"-\")";
    "number(\"3.5\")"; "number(\"oops\") != 1"; "round(2.5)"; "floor(2.9)";
    "ceiling(2.1)"; "abs(-4)"; "zero-or-one(())"; "zero-or-one((7))";
    "exactly-one((7))"; "one-or-more((1,2))";
    "local-name(doc(\"t.xml\")/a/e/@k)";
    "normalize-space(\"  a   b \")" ]

let string_functions =
  [ "substring(\"motor car\", 6)"; "substring(\"metadata\", 4, 3)";
    "substring(\"12345\", 1.5, 2.6)"; "substring(\"12345\", 0, 3)";
    "substring(\"12345\", 5, -3)"; "upper-case(\"aBc0\")"; "lower-case(\"AbC0\")";
    "ends-with(\"tattoo\", \"too\")"; "ends-with(\"tattoo\", \"x\")";
    "substring-before(\"tattoo\", \"attoo\")"; "substring-before(\"tattoo\", \"z\")";
    "substring-after(\"tattoo\", \"tat\")"; "substring-after(\"tattoo\", \"z\")";
    "translate(\"bar\", \"abc\", \"ABC\")"; "translate(\"--aaa--\", \"abc-\", \"ABC\")";
    "upper-case(string(doc(\"t.xml\")/a/e))" ]

let sequence_functions =
  [ "remove((\"a\",\"b\",\"c\"), 2)"; "remove((\"a\",\"b\",\"c\"), 9)";
    "remove((), 1)";
    "insert-before((\"a\",\"b\",\"c\"), 2, (\"x\",\"y\"))";
    "insert-before((\"a\",\"b\",\"c\"), 0, \"x\")";
    "insert-before((\"a\",\"b\",\"c\"), 9, \"x\")";
    "insert-before((), 1, (\"x\",\"y\"))";
    "deep-equal((1,2), (1,2))"; "deep-equal((1,2), (2,1))";
    "deep-equal((), ())";
    "deep-equal(doc(\"t.xml\")//b, doc(\"t.xml\")//b)";
    "deep-equal(<a><b/></a>, <a><b/></a>)";
    "deep-equal(<a><b/></a>, <a><c/></a>)";
    "max((\"9\", \"10\"))"; "min((\"9\", \"10\"))";
    "max((\"pear\", \"apple\"))"; "min((\"b\", \"a\", \"c\"))";
    "max(doc(\"t.xml\")/a/e/@k)";
    "for $x in (1,2) return remove(($x, $x+1, $x+2), $x)" ]

let constructors =
  [ "<e/>"; "<e a=\"1\" b=\"x{1+1}\"/>"; "<e>text</e>";
    "<e>{ 1, 2 }</e>"; "<e>a{ 1 }b</e>"; "<e>{ \"x\" }{ \"y\" }</e>";
    "<out>{ doc(\"t.xml\")//c }</out>";
    "<out>{ doc(\"t.xml\")/a/e/@k }</out>";
    "element foo { \"x\" }"; "element { \"bar\" } { () }";
    "attribute sz { 1 + 1 }"; "text { \"plain\" }"; "comment { \"note\" }";
    "<w><inner>{ doc(\"t.xml\")//d }</inner></w>";
    "(<a1/>, <b1/>, <c1/>)";
    "for $i in (1,2) return <r n=\"{ $i }\"><v>{ $i * 2 }</v></r>";
    "string(<e>{ 1+1 }</e>)" ]

(* node identity / order across constructed trees *)
let node_semantics =
  [ "let $b := doc(\"t.xml\")//b, $d := doc(\"t.xml\")//d, \
       $e := <e>{ $d, $b }</e> \
     return ($b << $d, exactly-one($e/b) << exactly-one($e/d))";
    "let $c := doc(\"t.xml\")//c return ($c[1] is $c[1], $c[1] is $c[2])";
    "count(<x><y/></x>/y)";
    "let $t := doc(\"t.xml\") return $t//c[2]" ]

let type_operators =
  [ "5 instance of xs:integer"; "5 instance of xs:string";
    "5.5 instance of xs:double"; "\"x\" instance of xs:string";
    "(1,2) instance of xs:integer+"; "(1,2) instance of xs:integer?";
    "() instance of empty-sequence()"; "(1) instance of empty-sequence()";
    "() instance of xs:integer?"; "() instance of xs:integer";
    "doc(\"t.xml\")//c instance of element()*";
    "doc(\"t.xml\")//c instance of element(c)+";
    "doc(\"t.xml\")//c instance of element(d)*";
    "doc(\"t.xml\")/a/e/@k instance of attribute()";
    "doc(\"t.xml\")//text() instance of text()+";
    "doc(\"t.xml\") instance of document-node()";
    "(5, \"x\") instance of item()+";
    "\"4.5\" cast as xs:double"; "\"42\" cast as xs:integer + 1";
    "() cast as xs:integer?"; "5 cast as xs:string";
    "\"true\" cast as xs:boolean"; "1 cast as xs:boolean";
    "\"abc\" castable as xs:integer"; "\"42\" castable as xs:integer";
    "() castable as xs:integer?"; "() castable as xs:integer";
    "(1,2) castable as xs:integer";
    "(1,2,3) treat as xs:integer+";
    "typeswitch (5) case xs:string return \"s\" case $i as xs:integer return $i * 2 default return 0";
    "typeswitch (<a/>) case element(b) return 1 case element(a) return 2 default return 3";
    "typeswitch (()) case xs:integer return 1 default $d return count($d)";
    "for $x in (1, \"a\", 2.5) return typeswitch ($x) case xs:integer return \"int\" case xs:double return \"dbl\" default return \"other\"" ]

let type_errors =
  [ "() cast as xs:integer"; "(1,2) cast as xs:integer";
    "\"abc\" cast as xs:integer"; "(1,2) treat as xs:integer";
    "\"x\" treat as xs:integer" ]

let misc_features =
  [ "declare boundary-space preserve; <a> <b/> </a>";
    "declare boundary-space strip; <a> <b/> </a>";
    "root(doc(\"t.xml\")//d) is doc(\"t.xml\")";
    "name(exactly-one(root(doc(\"t.xml\")//d)/a))";
    "root(<x><y/></x>//y) instance of element(x)";
    "id(\"p2\", doc(\"ids.xml\"))";
    "id((\"q1\", \"p1\"), doc(\"ids.xml\"))";
    "id(\"p2 p1\", doc(\"ids.xml\"))";
    "id(\"nosuch\", doc(\"ids.xml\"))";
    "id(\"p1\", doc(\"t.xml\"))";
    "for $i in (\"p1\",\"p2\") return name(exactly-one(id($i, doc(\"ids.xml\"))))";
    "count(id(\"p1 p1 q1\", doc(\"ids.xml\")))" ]

let unordered_queries =
  [ "unordered { doc(\"t.xml\")//(c|d) }";
    "unordered { for $x in (1,2) return ($x, $x * 10) }";
    "declare ordering unordered; doc(\"t.xml\")//*";
    "declare ordering unordered; for $x in doc(\"t.xml\")//* return name($x)";
    "unordered { (doc(\"t.xml\")//c, doc(\"t.xml\")//d) }";
    "declare ordering unordered; \
     for $b in doc(\"t.xml\")/a/b return count($b/descendant::c)" ]

(* the paper's section 2 examples *)
let paper_examples =
  [ (* expression (3): constructed document order *)
    "let $t := doc(\"t.xml\") \
     let $b := $t//b let $d := $t//d \
     let $e := <e>{ $d, $b }</e> \
     return (exactly-one($b) << exactly-one($d), \
             exactly-one($e/b) << exactly-one($e/d))";
    (* expression (4): positional variables *)
    "for $x at $p in (\"a\",\"b\",\"c\") return <e pos=\"{ $p }\">{ $x }</e>";
    (* expression (5): iteration-internal order *)
    "for $x in (1,2) return ($x, $x * 10)";
    (* expression (6)/(7): nested iteration *)
    "for $x in (1,2) for $y in (10,20) return <a>{ $x, $y }</a>" ]

(* ------------------------------------------------------- dynamic errors *)

let test_errors () =
  let st = mk_store () in
  let expect_dynamic q =
    (match Engine.run st q with
     | exception Basis.Err.Dynamic_error _ -> ()
     | _ -> Alcotest.failf "expected dynamic error: %s" q)
  in
  expect_dynamic "1 idiv 0";
  expect_dynamic "exactly-one(())";
  expect_dynamic "exactly-one((1,2))";
  expect_dynamic "zero-or-one((1,2))";
  expect_dynamic "one-or-more(())";
  expect_dynamic "doc(\"missing.xml\")";
  expect_dynamic "1 + \"x\"";
  expect_dynamic "sum((1, \"x\"))";
  expect_dynamic "error()";
  (* a path whose last step yields atomics violates XQuery 1.0 *)
  expect_dynamic "let $d := <a><b/></a> return $d/b/name()";
  expect_dynamic "error((), \"oops\")";
  expect_dynamic "for $x in (1,2) return error(\"per iteration\")";
  List.iter expect_dynamic type_errors

(* --------------------------------------- unordered results: permutations *)

let test_unordered_permutation () =
  let st = mk_store () in
  let q_ord = "doc(\"t.xml\")//(c|d|f)" in
  let q_unord = "unordered { doc(\"t.xml\")//(c|d|f) }" in
  let a = ser st (Engine.run st q_ord).Engine.items in
  let b = ser st (Engine.run st q_unord).Engine.items in
  Alcotest.(check (list string)) "same multiset"
    (List.sort compare a) (List.sort compare b);
  (* and this specific engine produces the concatenated order that
     Section 1 of the paper anticipates: the c nodes precede the d node *)
  let q2 = "unordered { doc(\"t.xml\")/a/b/(c|d) }" in
  let got = ser st (Engine.run st q2).Engine.items in
  Alcotest.(check (list string)) "c's first" [ "<c/>"; "<d/>" ] got

(* ------------------------------------------------------------- XMark *)

let test_xmark_differential () =
  let st = Xmldb.Doc_store.create () in
  let _ = Xmark.Xmark_gen.load ~scale:0.001 st in
  List.iter
    (fun (name, q) ->
       let reference = ser st (Interp.Interpreter.run st q) in
       List.iter
         (fun (oname, opts) ->
            let got = ser st (Engine.run ~opts st q).Engine.items in
            if got <> reference then
              Alcotest.failf "XMark %s [%s] differs from the interpreter"
                name oname)
         opts_matrix)
    Xmark.Xmark_queries.all

let test_xmark_join_recognition () =
  (* the value-join queries must agree across join-recognition on/off and
     the interpreter, at a scale where the plans genuinely differ *)
  let st = Xmldb.Doc_store.create () in
  let _ = Xmark.Xmark_gen.load ~scale:0.003 st in
  List.iter
    (fun qn ->
       let q = Xmark.Xmark_queries.get qn in
       let reference = ser st (Interp.Interpreter.run st q) in
       List.iter
         (fun opts ->
            let got = ser st (Engine.run ~opts st q).Engine.items in
            if got <> reference then
              Alcotest.failf "XMark %s: join recognition changes the result" qn)
         [ Engine.default_opts;
           { Engine.default_opts with Engine.join_rec = false };
           { Engine.default_opts with Engine.hoist = false; Engine.join_rec = false } ])
    [ "Q8"; "Q9"; "Q11"; "Q12" ]

let test_xmark_unordered_multiset () =
  let st = Xmldb.Doc_store.create () in
  let _ = Xmark.Xmark_gen.load ~scale:0.001 st in
  let unopts = { Engine.default_opts with Engine.mode = Some Xquery.Ast.Unordered } in
  List.iter
    (fun (name, q) ->
       let reference = List.sort compare (ser st (Interp.Interpreter.run st q)) in
       let got =
         List.sort compare (ser st (Engine.run ~opts:unopts st q).Engine.items)
       in
       (* under ordering mode unordered the result must still be a
          permutation of the ordered result for every XMark query: none of
          them observes sequence order of unordered subexpressions *)
       if got <> reference then
         Alcotest.failf "XMark %s: unordered result is not a permutation" name)
    Xmark.Xmark_queries.all

(* ------------------------------------------------ random query property *)

let gen_query : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let var_names = [ "v"; "w" ] in
  let rec expr depth in_scope =
    let atoms =
      [ (3, map string_of_int (int_range 0 9));
        (1, return "()");
        (2, oneofl (List.filter_map
                      (fun v -> if List.mem v in_scope then Some ("$" ^ v) else None)
                      var_names
                    @ [ "1" ])) ]
    in
    if depth >= 3 then frequency atoms
    else
      frequency
        (atoms
         @ [ (2,
              (let* a = expr (depth + 1) in_scope in
               let* b = expr (depth + 1) in_scope in
               let* op = oneofl [ "+"; "-"; "*" ] in
               return (Printf.sprintf "(%s %s %s)" a op b)));
             (2,
              (let* a = expr (depth + 1) in_scope in
               let* b = expr (depth + 1) in_scope in
               return (Printf.sprintf "(%s, %s)" a b)));
             (1,
              (let* a = expr (depth + 1) in_scope in
               let* b = expr (depth + 1) in_scope in
               let* op = oneofl [ "="; "<"; ">=" ] in
               return (Printf.sprintf "(%s %s %s)" a op b)));
             (1,
              (let* a = expr (depth + 1) in_scope in
               let* f = oneofl [ "count"; "sum"; "reverse"; "empty" ] in
               return (Printf.sprintf "%s(%s)" f a)));
             (2,
              (let* v = oneofl var_names in
               let* dom = expr (depth + 1) in_scope in
               let* body = expr (depth + 1) (v :: in_scope) in
               return (Printf.sprintf "(for $%s in (%s) return %s)" v dom body)));
             (1,
              (let* v = oneofl var_names in
               let* dom = expr (depth + 1) in_scope in
               let* cond = expr (depth + 1) (v :: in_scope) in
               let* body = expr (depth + 1) (v :: in_scope) in
               return
                 (Printf.sprintf
                    "(for $%s in (%s) where boolean(($%s, %s)[1] >= 2) return %s)"
                    v dom v cond body)));
             (1,
              (let* v = oneofl var_names in
               let* def = expr (depth + 1) in_scope in
               let* body = expr (depth + 1) (v :: in_scope) in
               return (Printf.sprintf "(let $%s := (%s) return %s)" v def body)));
             (1,
              (let* tag = oneofl [ "c"; "d"; "e"; "f"; "zz" ] in
               let* ax = oneofl [ "//"; "/a/"; "/a/b/" ] in
               return (Printf.sprintf "count(doc(\"t.xml\")%s%s)" ax tag)));
             (1,
              (let* tag = oneofl [ "c"; "*" ] in
               let* pred = expr (depth + 1) in_scope in
               return
                 (Printf.sprintf
                    "count(doc(\"t.xml\")//%s[boolean((%s, 0)[1] >= 1)])"
                    tag pred)));
             (1,
              (let* q = oneofl [ "some"; "every" ] in
               let* v = oneofl var_names in
               let* dom = expr (depth + 1) in_scope in
               let* body = expr (depth + 1) (v :: in_scope) in
               return
                 (Printf.sprintf
                    "(%s $%s in (%s) satisfies boolean(($%s, %s)[1] >= 1))"
                    q v dom v body))) ])
  in
  expr 0 []

let random_query_prop =
  QCheck2.Test.make ~count:300 ~name:"random queries: compiled = interpreted"
    gen_query
    (fun q ->
       let st = mk_store () in
       let reference =
         match Interp.Interpreter.run st q with
         | items -> Ok (ser st items)
         | exception Basis.Err.Dynamic_error m -> Error m
       in
       List.for_all
         (fun (oname, opts) ->
            let got =
              match Engine.run ~opts st q with
              | r -> Ok (ser st r.Engine.items)
              | exception Basis.Err.Dynamic_error m -> Error m
            in
            match (reference, got) with
            | Ok a, Ok b ->
              if a = b then true
              else
                QCheck2.Test.fail_reportf "[%s] %s:\n interp %s\n compiled %s"
                  oname q (String.concat "|" a) (String.concat "|" b)
            (* XQuery grants latitude over whether erroneous expressions
               whose value is not needed are evaluated (2.3.4): the eager
               interpreter and the demand-driven plan evaluator may
               legitimately disagree on *raising*, never on values *)
            | Error _, _ | _, Error _ -> true)
         [ ("full", Engine.default_opts); ("baseline", Engine.ordered_baseline) ]
       &&
       (* under ordering mode unordered the result must still be the same
          multiset of items *)
       (match
          ( reference,
            Engine.run
              ~opts:{ Engine.default_opts with Engine.mode = Some Xquery.Ast.Unordered }
              st q )
        with
        | Ok a, r ->
          let b = ser st r.Engine.items in
          if List.sort compare a = List.sort compare b then true
          else
            QCheck2.Test.fail_reportf
              "[unordered] %s is not a permutation:\n %s\n %s" q
              (String.concat "|" a) (String.concat "|" b)
        | Error _, _ -> true
        | exception Basis.Err.Dynamic_error _ -> true))

(* ----------------------------------------------------- prepared-plan cache *)

module PC = Engine.Plan_cache

let test_lru_eviction () =
  let c : int PC.t = PC.create ~capacity:2 in
  PC.add c "a" 1;
  PC.add c "b" 2;
  ignore (PC.find c "a");  (* touch a: b becomes the LRU entry *)
  PC.add c "c" 3;
  let s = PC.stats c in
  Alcotest.(check int) "one eviction" 1 s.PC.evictions;
  Alcotest.(check int) "size stays at capacity" 2 s.PC.size;
  Alcotest.(check (option int)) "a survived (recently used)" (Some 1)
    (PC.find c "a");
  Alcotest.(check (option int)) "b evicted (least recently used)" None
    (PC.find c "b");
  Alcotest.(check (option int)) "c present" (Some 3) (PC.find c "c")

let test_cache_capacity_zero () =
  let c : int PC.t = PC.create ~capacity:0 in
  PC.add c "a" 1;
  Alcotest.(check (option int)) "capacity 0 stores nothing" None (PC.find c "a");
  Alcotest.(check int) "no eviction churn" 0 (PC.stats c).PC.evictions

let test_normalize_query () =
  let n = PC.normalize_query in
  (* reformatted copies of one query share a key *)
  Alcotest.(check string) "whitespace runs collapse to one space"
    (n "for $x in (1, 2) return $x")
    (n "for   $x\n  in (1,\n     2)\nreturn\t$x");
  Alcotest.(check string) "comments stripped"
    (n "1 + 2")
    (n "1 (: nested (: comment :) here :) + 2");
  (* string literals are data: their spacing must survive *)
  Alcotest.(check bool) "literal whitespace significant" false
    (n "\"a  b\"" = n "\"a b\"");
  (* direct constructors: conservative trim-only fallback, so literal
     element content is never merged *)
  Alcotest.(check bool) "constructor text significant" false
    (n "<e>a  b</e>" = n "<e>a b</e>")

let test_run_cache_identity () =
  (* a warm cache hit returns byte-identical answers, and the counters
     show the hit; a different option fingerprint misses *)
  let cache = Engine.create_cache ~capacity:8 () in
  let q = "for   $v in (1 to 5) (: c :) return $v * $v" in
  let cold = Engine.run ~cache (mk_store ()) q in
  let warm = Engine.run ~cache (mk_store ()) "for $v in (1 to 5) return $v * $v" in
  Alcotest.(check string) "identical answers" cold.Engine.serialized
    warm.Engine.serialized;
  let s = Engine.cache_stats cache in
  Alcotest.(check int) "one miss (the cold run)" 1 s.PC.misses;
  Alcotest.(check int) "one hit (reformatted warm run)" 1 s.PC.hits;
  let baseline = { Engine.ordered_baseline with Engine.budget = None } in
  ignore (Engine.run ~cache ~opts:baseline (mk_store ()) q);
  Alcotest.(check int) "other options fingerprint misses" 2
    (Engine.cache_stats cache).PC.misses

let () =
  Alcotest.run "engine"
    [ ( "differential",
        [ t "literals+sequences" literals_and_sequences;
          t "arithmetic" arithmetic;
          t "comparisons" comparisons;
          t "logic" logic;
          t "flwors" flwors;
          t "quantifiers" quantifiers;
          t "paths" paths;
          t "functions" functions ~multiset:true;
          t "string functions" string_functions;
          t "sequence functions" sequence_functions;
          t "type operators" type_operators;
          t "misc features" misc_features;
          t "constructors" constructors;
          t "node semantics" node_semantics;
          t "unordered scopes" unordered_queries ~multiset:true;
          t "paper examples (section 2)" paper_examples ] );
      ( "semantics",
        [ Alcotest.test_case "dynamic errors" `Quick test_errors;
          Alcotest.test_case "unordered permutations" `Quick test_unordered_permutation ] );
      ( "xmark",
        [ Alcotest.test_case "Q1-Q20 differential x opts" `Slow test_xmark_differential;
          Alcotest.test_case "join recognition equivalence" `Slow test_xmark_join_recognition;
          Alcotest.test_case "Q1-Q20 unordered multiset" `Slow test_xmark_unordered_multiset ] );
      ( "plan cache",
        [ Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "capacity zero" `Quick test_cache_capacity_zero;
          Alcotest.test_case "query normalization" `Quick test_normalize_query;
          Alcotest.test_case "run identity + counters" `Quick
            test_run_cache_identity ] );
      ( "random", [ QCheck_alcotest.to_alcotest random_query_prop ] );
    ]
