(* The ordering-property framework, pinned from both ends.

   Part 1 — unit guards. Every propagation rule in [Algebra.Order] gets
   a fire case AND a no-fire case, built directly on the plan builder so
   the rule under test is isolated from the compiler: the staircase step
   emits document order only when its input is iter-sorted; [#] stamps a
   sorted key regardless of carrier order; [@] is order-neutral; joins
   pass the OUTER side's order and never the inner's (unless the outer
   is one row); Union kills facts but its sides become countable runs.
   The no-fire cases are the point: a rule that fires too eagerly is a
   wrong answer waiting for a query to expose it.

   Part 2 — the elision oracle. For every corpus query, under a FORCED
   [ordering mode ordered] prolog, the engine with ordering-property
   reasoning on (sorts elided, root sort skipped, merges) must produce
   byte-identical output to the engine with it off, across
   {boxed, physical} × {serial, jobs = 4}. Order props prove facts about
   physical row order, never about the query's mode — so elision must be
   invisible even where order is fully observable. *)

let () = Unix.putenv "XRQ_MORSEL" "4"

module P = Algebra.Plan
module O = Algebra.Order
module V = Algebra.Value

(* ------------------------------------------------------- unit helpers *)

let sat root req =
  let a = O.make () in
  O.satisfies a root req

let runs root req =
  let a = O.make () in
  O.sorted_runs a root req

let check_sat name expected root req =
  Alcotest.(check bool)
    (Printf.sprintf "%s [%s]" name (O.req_to_string req))
    expected (sat root req)

let ints b col xs = P.lit b [| col |] (List.map (fun i -> [| V.Int i |]) xs)

(* iter|item tables: [pairs] are (iter, item) rows *)
let ii b pairs =
  P.lit b [| "iter"; "item" |]
    (List.map (fun (i, v) -> [| V.Int i; V.Int v |]) pairs)

(* ------------------------------------------------------------- Part 1 *)

let test_lit () =
  let b = P.builder () in
  let asc = ints b "c" [ 1; 2; 2; 5 ] in
  check_sat "sorted lit proves asc" true asc [ ("c", P.Asc) ];
  check_sat "sorted lit does not prove desc" false asc [ ("c", P.Desc) ];
  let desc = ints b "c" [ 5; 3; 1 ] in
  check_sat "desc lit proves desc" true desc [ ("c", P.Desc) ];
  check_sat "desc lit does not prove asc" false desc [ ("c", P.Asc) ];
  (* literal inspection is clipped: a 65-row sorted table proves nothing *)
  let big = ints b "c" (List.init 65 Fun.id) in
  check_sat "oversized lit proves nothing" false big [ ("c", P.Asc) ];
  (* a one-row table satisfies every requirement (all columns const) *)
  let one = P.lit b [| "a"; "z" |] [ [| V.Int 7; V.Str "x" |] ] in
  check_sat "one-row lit satisfies anything" true one
    [ ("a", P.Desc); ("z", P.Asc) ]

let test_rowid () =
  let b = P.builder () in
  let unsorted = ints b "c" [ 3; 1; 2 ] in
  let rid = P.rowid b unsorted "rid" in
  (* # stamps 1..n in row order: a sorted key, whatever the carrier *)
  check_sat "# result is ascending" true rid [ ("rid", P.Asc) ];
  check_sat "# does not sort the carrier" false rid [ ("c", P.Asc) ];
  (* ...and being a key, a matched rid prefix pins any suffix *)
  check_sat "# key pins the suffix" true rid [ ("rid", P.Asc); ("c", P.Desc) ];
  check_sat "# result is not descending" false rid [ ("rid", P.Desc) ]

let test_attach () =
  let b = P.builder () in
  let sorted = ints b "c" [ 1; 2; 3 ] in
  let att = P.attach b sorted "k" (V.Str "x") in
  (* a const column is order-neutral: both directions hold *)
  check_sat "@ const asc" true att [ ("k", P.Asc) ];
  check_sat "@ const desc" true att [ ("k", P.Desc) ];
  (* the carrier's order survives, alone and under the const *)
  check_sat "@ keeps carrier order" true att [ ("c", P.Asc) ];
  check_sat "@ const + carrier" true att [ ("k", P.Desc); ("c", P.Asc) ];
  let unsorted = ints b "c" [ 3; 1; 2 ] in
  let att2 = P.attach b unsorted "k" (V.Str "x") in
  check_sat "@ invents no carrier order" false att2 [ ("c", P.Asc) ]

let test_step_staircase () =
  let b = P.builder () in
  (* iter sorted, item deliberately NOT sorted: the step's document-order
     output must come from the staircase contract, not the input *)
  let inp = ii b [ (1, 9); (1, 3); (2, 7) ] in
  let st = P.step b inp Xmldb.Axis.Child P.N_any in
  check_sat "staircase emits iter-major document order" true st
    [ ("iter", P.Asc); ("item", P.Asc) ];
  check_sat "staircase output iter-sorted" true st [ ("iter", P.Asc) ];
  (* item alone is NOT globally sorted across iteration groups *)
  check_sat "doc order is per-group, not global" false st
    [ ("item", P.Asc) ];
  (* no-fire: an iter-unsorted input voids the contract *)
  let shuffled = ii b [ (2, 1); (1, 2) ] in
  let st2 = P.step b shuffled Xmldb.Axis.Child P.N_any in
  check_sat "unsorted iter: no document-order fact" false st2
    [ ("iter", P.Asc); ("item", P.Asc) ];
  (* single iteration group: const iter strips away; item becomes a
     duplicate-free sorted key and pins any suffix *)
  let one_group = ii b [ (1, 9); (1, 3); (1, 7) ] in
  let st3 = P.step b one_group Xmldb.Axis.Descendant P.N_wild in
  check_sat "const iter: item globally sorted" true st3 [ ("item", P.Asc) ];
  check_sat "const iter: item key pins suffix" true st3
    [ ("item", P.Asc); ("iter", P.Desc) ]

let test_join_outer_order () =
  let b = P.builder () in
  let left =
    P.lit b [| "l"; "a" |]
      [ [| V.Int 1; V.Int 10 |]; [| V.Int 2; V.Int 20 |];
        [| V.Int 3; V.Int 30 |] ]
  in
  let right =
    P.lit b [| "r"; "z" |]
      [ [| V.Int 1; V.Int 5 |]; [| V.Int 2; V.Int 6 |] ]
  in
  let j = P.join b left right "l" "r" in
  (* probes run left-major: the outer's order survives... *)
  check_sat "join keeps outer order" true j [ ("a", P.Asc) ];
  (* ...the inner's does NOT (bucket hits interleave across probes) *)
  check_sat "join drops inner order" false j [ ("z", P.Asc) ];
  (* unless the outer is a single row — then output IS the inner subset *)
  let left1 = P.lit b [| "l"; "a" |] [ [| V.Int 1; V.Int 10 |] ] in
  let j1 = P.join b left1 right "l" "r" in
  check_sat "one-row outer: inner order passes" true j1 [ ("z", P.Asc) ];
  (* Cross has the same outer-major discipline *)
  let c = P.cross b left right in
  check_sat "cross keeps outer order" true c [ ("a", P.Asc) ];
  check_sat "cross drops inner order" false c [ ("z", P.Asc) ];
  (* Thetajoin's sort-based path may reorder matches: inner order never
     passes, not even under a one-row outer *)
  let tj = P.thetajoin b left1 right "l" P.P_lt "r" in
  check_sat "thetajoin keeps outer order" true tj [ ("a", P.Asc) ];
  check_sat "thetajoin never passes inner order" false tj [ ("z", P.Asc) ]

let test_select_subsequence () =
  let b = P.builder () in
  let t =
    P.lit b [| "c"; "flag" |]
      [ [| V.Int 1; V.Bool true |]; [| V.Int 2; V.Bool false |];
        [| V.Int 3; V.Bool true |] ]
  in
  let sel = P.select b t "flag" in
  (* a subsequence of a sorted sequence is sorted *)
  check_sat "select keeps order" true sel [ ("c", P.Asc) ];
  (* the selection column is const true afterwards: order-neutral *)
  check_sat "select col is const" true sel [ ("flag", P.Desc) ];
  let u =
    P.lit b [| "c"; "flag" |]
      [ [| V.Int 3; V.Bool true |]; [| V.Int 1; V.Bool true |] ]
  in
  check_sat "select invents no order" false (P.select b u "flag")
    [ ("c", P.Asc) ]

let test_rownum_props () =
  let b = P.builder () in
  let sorted = ints b "c" [ 1; 2; 3 ] in
  let rn = P.rownum b sorted "rk" [ ("c", P.Asc) ] None in
  (* ranks over an already-ordered input are 1..n in row order *)
  check_sat "% over sorted input: ranks ascend" true rn [ ("rk", P.Asc) ];
  let unsorted = ints b "c" [ 3; 1; 2 ] in
  let rn2 = P.rownum b unsorted "rk" [ ("c", P.Asc) ] None in
  (* the rank VALUES are a permutation here, not the row order *)
  check_sat "% over unsorted input: no rank fact" false rn2
    [ ("rk", P.Asc) ]

let test_union_runs () =
  let b = P.builder () in
  let s1 = ints b "c" [ 1; 3; 5 ] in
  let s2 = ints b "c" [ 2; 4 ] in
  let s3 = ints b "c" [ 0; 6 ] in
  let u = P.union b s1 s2 in
  (* append kills global facts... *)
  check_sat "union kills facts" false u [ ("c", P.Asc) ];
  (* ...but each side is one run: a 2-way merge suffices *)
  Alcotest.(check (option int)) "union = 2 runs" (Some 2)
    (runs u [ ("c", P.Asc) ]);
  Alcotest.(check (option int)) "nested union sums runs" (Some 3)
    (runs (P.union b u s3) [ ("c", P.Asc) ]);
  Alcotest.(check (option int)) "sorted input = 1 run" (Some 1)
    (runs s1 [ ("c", P.Asc) ]);
  Alcotest.(check (option int)) "unsorted side proves nothing" None
    (runs (P.union b s1 (ints b "c" [ 9; 2 ])) [ ("c", P.Asc) ]);
  (* column-appending operators pass the run count through *)
  Alcotest.(check (option int)) "runs pass through #" (Some 2)
    (runs (P.rowid b u "rid") [ ("c", P.Asc) ])

(* The rewrite rule itself: % over a provably-ordered input becomes #,
   exactly once, and only when the analysis is enabled. *)
let test_sort_elision_rewrite () =
  let b = P.builder () in
  let base = ints b "c" [ 3; 1; 2 ] in
  let rid = P.rowid b base "rid" in
  let root = P.rownum b rid "rk" [ ("rid", P.Asc) ] None in
  let elided, st = Algebra.Rewrite.optimize ~order_props:true b root in
  Alcotest.(check (option int)) "sort-elision fires once" (Some 1)
    (List.assoc_opt "sort-elision" st.Algebra.Rewrite.fires);
  Alcotest.(check int) "no % remains" 0 (P.count_kind elided "%");
  let kept, st_off = Algebra.Rewrite.optimize ~order_props:false b root in
  Alcotest.(check (option int)) "disabled: rule never fires" None
    (List.assoc_opt "sort-elision" st_off.Algebra.Rewrite.fires);
  Alcotest.(check int) "disabled: % survives" 1 (P.count_kind kept "%");
  (* no-fire: a % whose order is NOT proved must survive even enabled *)
  let needy = P.rownum b base "rk" [ ("c", P.Asc) ] None in
  let kept2, _ = Algebra.Rewrite.optimize ~order_props:true b needy in
  Alcotest.(check int) "unproved order: % survives" 1
    (P.count_kind kept2 "%")

(* ------------------------------------------------------------- Part 2 *)

let doc_xml = "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"
let auction_xml = lazy (Xmark.Xmark_gen.generate ~scale:0.002 ())

let mk_store () =
  let st = Xmldb.Doc_store.create () in
  let _ =
    Xmldb.Xml_parser.load_document st ~uri:"auction.xml"
      (Lazy.force auction_xml)
  in
  let _ = Xmldb.Xml_parser.load_document st ~uri:"t.xml" doc_xml in
  st

let queries_dir =
  if Sys.file_exists "../queries" then "../queries" else "queries"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus () =
  Sys.readdir queries_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".xq")
  |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat queries_dir f)))

let run_exact ~order_props ~physical ~jobs text =
  let opts =
    { Engine.default_opts with
      Engine.mode = Some Xquery.Ast.Ordered;
      physical;
      jobs;
      order_props }
  in
  let st = mk_store () in
  match Engine.run_result ~opts st text with
  | Ok r ->
    "ok: "
    ^ String.concat " | "
        (List.map
           (fun it ->
              match it with
              | V.Node n -> Xmldb.Serialize.node_to_string st n
              | v -> V.to_string v)
           r.Engine.items)
  | Error { Engine.kind; message } ->
    Basis.Err.kind_label kind ^ ": " ^ message

(* THE oracle: forced ordered mode, elision on vs off, every executor —
   byte-for-byte. *)
let test_forced_ordered_oracle () =
  List.iter
    (fun (file, text) ->
       let reference =
         run_exact ~order_props:false ~physical:`Off ~jobs:1 text
       in
       List.iter
         (fun (cname, physical, jobs, order_props) ->
            Alcotest.(check string)
              (Printf.sprintf "%s ordered-mode [%s]" file cname)
              reference
              (run_exact ~order_props ~physical ~jobs text))
         [ ("physical/serial/on", `On, 1, true);
           ("physical/jobs4/on", `On, 4, true);
           ("boxed/serial/on", `Off, 1, true);
           ("boxed/jobs4/on", `Off, 4, true);
           ("physical/serial/off", `On, 1, false) ])
    (corpus ())

(* Fire/no-fire guards at the engine level: where the rule must act on
   the real corpus, and where it must stay silent. *)
let fires_of ~order_props text =
  let opts = { Engine.default_opts with Engine.order_props } in
  (Engine.analyze ~opts text).Engine.arewrite.Algebra.Rewrite.fires

let test_corpus_fire_guards () =
  let q6 = read_file (Filename.concat queries_dir "paper_q6.xq") in
  let gold = read_file (Filename.concat queries_dir "gold_items.xq") in
  (match List.assoc_opt "sort-elision" (fires_of ~order_props:true q6) with
   | Some n when n > 0 -> ()
   | _ -> Alcotest.fail "paper_q6: sort-elision must fire");
  Alcotest.(check (option int)) "gold_items: no elidable sort" None
    (List.assoc_opt "sort-elision" (fires_of ~order_props:true gold));
  (* the flag really gates the rule, corpus-wide *)
  List.iter
    (fun (file, text) ->
       Alcotest.(check (option int))
         (file ^ ": order_props=false silences the rule") None
         (List.assoc_opt "sort-elision" (fires_of ~order_props:false text)))
    (corpus ())

(* Root-sort elision, observed through the profile counters: fires where
   the plan proves pos-order, stays silent where it cannot. *)
let root_elided file =
  let st = mk_store () in
  let text = read_file (Filename.concat queries_dir file) in
  let r = Engine.run ~with_profile:true st text in
  match r.Engine.profile with
  | None -> Alcotest.fail "profile requested but absent"
  | Some p -> (Algebra.Profile.phys p).Algebra.Profile.root_sort_elided

let test_root_sort_counters () =
  Alcotest.(check int) "paper_q6: root sort elided" 1
    (root_elided "paper_q6.xq");
  (* top_sellers ends in a descending order-by: pos-order is unprovable
     and the root sort MUST stay *)
  Alcotest.(check int) "top_sellers: root sort kept" 0
    (root_elided "top_sellers.xq")

let () =
  Alcotest.run "order-props"
    [ ("rule guards: sources",
       [ Alcotest.test_case "literal tables" `Quick test_lit;
         Alcotest.test_case "rowid (#)" `Quick test_rowid;
         Alcotest.test_case "attach (@)" `Quick test_attach;
         Alcotest.test_case "staircase step" `Quick test_step_staircase ]);
      ("rule guards: combinators",
       [ Alcotest.test_case "join/cross/thetajoin outer order" `Quick
           test_join_outer_order;
         Alcotest.test_case "select subsequence" `Quick
           test_select_subsequence;
         Alcotest.test_case "rownum (%)" `Quick test_rownum_props;
         Alcotest.test_case "union runs" `Quick test_union_runs ]);
      ("sort-elision rewrite",
       [ Alcotest.test_case "fire and no-fire" `Quick
           test_sort_elision_rewrite ]);
      ("elision oracle",
       [ Alcotest.test_case "corpus fire guards" `Quick
           test_corpus_fire_guards;
         Alcotest.test_case "root-sort counters" `Quick
           test_root_sort_counters;
         Alcotest.test_case "forced ordered mode, on = off, all executors"
           `Slow test_forced_ordered_oracle ]) ]
