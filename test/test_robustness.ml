(* Resource governance and graceful degradation, end to end:

     - every budget axis (deadline / rows / bytes / op count) and
       cooperative cancellation raise Err.Resource_error from BOTH
       backends — never a crash, never a partial result;
     - a generous budget is semantically transparent;
     - deterministic fault injection at every operator boundary of the
       paper's Figure-10 query engages the interpreter fallback and still
       yields the correct answer;
     - front-end errors (malformed XML, query syntax errors) carry
       position info and classify as static errors. *)

open Basis
module Value = Algebra.Value

let doc_xml = "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"

let mk_store () =
  let st = Xmldb.Doc_store.create () in
  let _ = Xmldb.Xml_parser.load_document st ~uri:"t.xml" doc_xml in
  st

(* serialize each item separately so sequences compare item-wise *)
let ser st items =
  List.map
    (fun it ->
       match it with
       | Value.Node n -> Xmldb.Serialize.node_to_string st n
       | v -> Value.to_string v)
    items

let backends = [ ("compiled", Engine.Compiled); ("interpreted", Engine.Interpreted) ]

let run_with ~backend spec q =
  let opts = { Engine.default_opts with Engine.backend; budget = Some spec } in
  Engine.run_result ~opts (mk_store ()) q

let expect_resource name r =
  match r with
  | Error { Engine.kind = Err.Resource; _ } -> ()
  | Ok _ -> Alcotest.failf "%s: expected Resource_error, got a result" name
  | Error { Engine.kind; message } ->
    Alcotest.failf "%s: expected a resource error, got %s error: %s" name
      (Err.kind_label kind) message

(* enough work that every budget axis has something to exhaust *)
let heavy = "count(for $v in 1 to 200 for $w in 1 to 200 return $v * $w)"
let stringy =
  "string-join(for $v in 1 to 200 return \"xxxxxxxxxxxxxxxxxxxx\", \",\")"

(* ----------------------------------------------------- budget exhaustion *)

let test_deadline () =
  List.iter
    (fun (name, backend) ->
       expect_resource (name ^ "/deadline")
         (run_with ~backend (Budget.limits ~timeout_s:0.0 ()) heavy))
    backends

let test_row_budget () =
  List.iter
    (fun (name, backend) ->
       expect_resource (name ^ "/rows")
         (run_with ~backend (Budget.limits ~max_rows:500 ()) heavy))
    backends

let test_byte_budget () =
  List.iter
    (fun (name, backend) ->
       expect_resource (name ^ "/bytes")
         (run_with ~backend (Budget.limits ~max_bytes:2048 ()) stringy))
    backends

let test_op_budget () =
  List.iter
    (fun (name, backend) ->
       expect_resource (name ^ "/ops")
         (run_with ~backend (Budget.limits ~max_ops:5 ()) heavy))
    backends

let test_cancellation () =
  (* cooperative cancellation: the switch is flipped before evaluation
     reaches its first operator boundary, so the run is interrupted
     mid-query (after parse/compile, inside evaluation) *)
  List.iter
    (fun (name, backend) ->
       let c = Budget.cancel_switch () in
       Budget.cancel c;
       expect_resource (name ^ "/cancel")
         (run_with ~backend (Budget.limits ~cancel:c ()) heavy))
    backends

let test_generous_budget_transparent () =
  (* a budget the query fits into must not change its meaning *)
  let spec =
    Budget.limits ~timeout_s:30.0 ~max_rows:2_000_000
      ~max_bytes:200_000_000 ~max_ops:2_000_000 ()
  in
  let queries =
    [ heavy; stringy; "doc(\"t.xml\")//c"; "(1,2.5,\"s\")";
      "for $v in doc(\"t.xml\")//* return local-name($v)" ]
  in
  List.iter
    (fun (name, backend) ->
       List.iter
         (fun q ->
            let plain =
              Engine.run
                ~opts:{ Engine.default_opts with Engine.backend }
                (mk_store ()) q
            in
            match run_with ~backend spec q with
            | Ok budgeted ->
              Alcotest.(check string)
                (Printf.sprintf "%s: %s" name q)
                plain.Engine.serialized budgeted.Engine.serialized
            | Error { Engine.kind; message } ->
              Alcotest.failf "%s: %s: generous budget tripped: %s error: %s"
                name q (Err.kind_label kind) message)
         queries)
    backends

(* ------------------------------------------------------- fault injection *)

let fig10 = "let $t := doc(\"t.xml\") return unordered { $t//(c|d) }"

let multiset items = List.sort compare items

let count_boundaries st q =
  let _, _, optimized = Engine.plans_of ~opts:Engine.default_opts q in
  let g = Budget.start Budget.unlimited in
  ignore (Algebra.Eval.run ~guard:g st optimized);
  Budget.ops g

let test_fault_sweep_fig10 () =
  let st = mk_store () in
  let reference =
    Engine.run
      ~opts:{ Engine.default_opts with Engine.backend = Engine.Interpreted }
      st fig10
  in
  let expected = multiset (ser st reference.Engine.items) in
  let n = count_boundaries st fig10 in
  if n < 3 then Alcotest.failf "suspiciously few operator boundaries (%d)" n;
  for k = 1 to n do
    let opts =
      { Engine.default_opts with
        Engine.budget = Some (Budget.limits ~fault_at:k ()) }
    in
    match Engine.run ~opts st fig10 with
    | r ->
      (match r.Engine.degraded with
       | Some _ -> ()
       | None ->
         Alcotest.failf "fault at boundary %d/%d: fallback did not engage" k n);
      let got = multiset (ser st r.Engine.items) in
      if got <> expected then
        Alcotest.failf "fault at boundary %d/%d: degraded result differs" k n
    | exception e ->
      Alcotest.failf "fault at boundary %d/%d escaped the fallback: %s" k n
        (Printexc.to_string e)
  done

let test_fault_without_fallback () =
  let st = mk_store () in
  let opts =
    { Engine.default_opts with
      Engine.budget = Some (Budget.limits ~fault_at:1 ());
      Engine.fallback = false }
  in
  match Engine.run ~opts st fig10 with
  | exception Err.Internal_error _ -> ()
  | _ -> Alcotest.fail "with fallback disabled the injected fault must surface"

let test_fault_seeded_determinism () =
  (* boundaries picked by a seeded Prng: the same seed must produce the
     same degradation behavior and the same answer, twice *)
  let queries =
    [ fig10; heavy; "doc(\"t.xml\")//c"; "sum(for $v in 1 to 9 return $v)" ]
  in
  let outcome k q =
    let st = mk_store () in
    let opts =
      { Engine.default_opts with
        Engine.budget = Some (Budget.limits ~fault_at:k ()) }
    in
    let r = Engine.run ~opts st q in
    (Option.is_some r.Engine.degraded, multiset (ser st r.Engine.items))
  in
  let prng = Prng.create 0xFA17 in
  List.iter
    (fun q ->
       let k = 1 + Prng.int prng 40 in
       let a = outcome k q and b = outcome k q in
       if a <> b then
         Alcotest.failf "fault at %d not deterministic for %s" k q)
    queries

(* ------------------------------------------- memoization and budgets *)

module P = Algebra.Plan
module Eval = Algebra.Eval

(* a let-bound sequence consumed twice: loop-lifting shares the binding's
   subplan between both consumers, so DAG and tree costs diverge *)
let shared_q =
  "let $v := (for $x in 1 to 50 return $x * $x) return (count($v), sum($v))"

let eval_mode mode = { Engine.default_opts with Engine.eval_mode = mode }

let ops_in mode q =
  let st = mk_store () in
  let _, _, optimized = Engine.plans_of ~opts:Engine.default_opts q in
  let g = Budget.start Budget.unlimited in
  ignore (Eval.run ~guard:g ~mode st optimized);
  Budget.ops g

let test_budget_memoization_aware () =
  (* the budget charges a node's cost once per *unique* node: an op budget
     of exactly the DAG cost admits the memoizing executor and refuses the
     sharing-oblivious tree walk of the very same plan *)
  let dag_ops = ops_in Eval.Dag shared_q in
  let tree_ops = ops_in Eval.Tree shared_q in
  if tree_ops <= dag_ops then
    Alcotest.failf "no sharing to observe (dag %d ops, tree %d ops)" dag_ops
      tree_ops;
  let spec = Budget.limits ~max_ops:dag_ops () in
  (match
     Engine.run_result
       ~opts:{ (eval_mode Eval.Dag) with Engine.budget = Some spec }
       (mk_store ()) shared_q
   with
   | Ok _ -> ()
   | Error { Engine.kind; message } ->
     Alcotest.failf "DAG mode under its own op budget tripped: %s error: %s"
       (Err.kind_label kind) message);
  expect_resource "tree walk under the DAG budget"
    (Engine.run_result
       ~opts:{ (eval_mode Eval.Tree) with Engine.budget = Some spec }
       (mk_store ()) shared_q)

let test_tiny_budget_mode_identical () =
  (* a budget even a single walk of the shared subtree exceeds fails
     identically with memoization on and off *)
  List.iter
    (fun (name, mode) ->
       expect_resource (name ^ "/tiny ops")
         (Engine.run_result
            ~opts:
              { (eval_mode mode) with
                Engine.budget = Some (Budget.limits ~max_ops:3 ()) }
            (mk_store ()) shared_q))
    [ ("dag", Eval.Dag); ("tree", Eval.Tree) ]

let test_evals_counters () =
  (* the executor's work counter is exact in both modes *)
  let st = mk_store () in
  let _, _, optimized = Engine.plans_of ~opts:Engine.default_opts shared_q in
  let check_mode name mode expected =
    let ctx = Eval.create ~mode st in
    ignore (Eval.eval ctx optimized);
    Alcotest.(check int) name expected (Eval.evals ctx)
  in
  check_mode "dag evals = unique ops" Eval.Dag (P.count_ops optimized);
  check_mode "tree evals = tree nodes" Eval.Tree (P.count_tree_nodes optimized)

let test_cancel_mid_dag_walk () =
  (* cancellation lands mid-walk: warm the cache for a shared node, flip
     the switch, then evaluate a root above it — the memoized child is
     free (cache hits are never boundaries) but the remaining operators
     are, and the walk must still die with a resource error *)
  let st = mk_store () in
  let b = P.builder () in
  let base =
    P.lit b
      [| "iter"; "pos"; "item" |]
      [ [| Value.Int 1; Value.Int 1; Value.Int 7 |];
        [| Value.Int 1; Value.Int 2; Value.Int 9 |] ]
  in
  let shared = P.rownum b base "r" [ ("pos", P.Asc) ] None in
  let left = P.project b shared [ ("x", "item") ] in
  let right = P.project b shared [ ("x", "r") ] in
  let root = P.union b left right in
  let c = Budget.cancel_switch () in
  let guard = Budget.start (Budget.limits ~cancel:c ()) in
  let ctx = Eval.create ~guard st in
  (match Eval.eval ctx shared with
   | _ -> ()
   | exception e ->
     Alcotest.failf "warming the shared node failed: %s" (Printexc.to_string e));
  Budget.cancel c;
  match Eval.eval ctx root with
  | _ -> Alcotest.fail "cancellation ignored above a memoized child"
  | exception Err.Resource_error _ -> ()

(* ------------------------------------------- front-end error classification *)

let test_malformed_xml () =
  let check_static src =
    let st = Xmldb.Doc_store.create () in
    match Xmldb.Xml_parser.load_document st ~uri:"bad.xml" src with
    | exception e ->
      (match Engine.classify_error e with
       | Some { Engine.kind = Err.Static; message } ->
         if not (Astring.String.is_infix ~affix:"offset" message) then
           Alcotest.failf "no position info in %S" message
       | Some { Engine.kind; _ } ->
         Alcotest.failf "%S classified as %s" src (Err.kind_label kind)
       | None -> Alcotest.failf "%S not classified" src)
    | _ -> Alcotest.failf "expected a parse error for %S" src
  in
  List.iter check_static
    [ "<a>"; "<a></b>"; "<a attr></a>"; "<a>&unknown;</a>"; "<a/><b/>"; "" ]

let test_query_syntax_positions () =
  let pos_of src =
    match Xquery.Parser.parse_query src with
    | exception Xquery.Parser.Syntax_error (_, pos) -> pos
    | _ -> Alcotest.failf "expected a syntax error for %S" src
  in
  List.iter
    (fun src ->
       let p = pos_of src in
       if p < 0 || p > String.length src then
         Alcotest.failf "offset %d out of range for %S" p src)
    [ "1 +"; "for $x in"; "let $y :="; "if (1) then 2"; "1 =" ];
  (* classification folds the position into a static error message *)
  (match Xquery.Parser.parse_query "1 +" with
   | exception e ->
     (match Engine.classify_error e with
      | Some { Engine.kind = Err.Static; message } ->
        if not (Astring.String.is_infix ~affix:"offset" message) then
          Alcotest.failf "no position info in %S" message
      | _ -> Alcotest.fail "syntax error not classified static")
   | _ -> Alcotest.fail "expected a syntax error")

let test_resource_error_not_degraded () =
  (* budget exhaustion must NOT trigger the interpreter fallback: the
     fallback is for our bugs, not for refused work *)
  let st = mk_store () in
  let opts =
    { Engine.default_opts with
      Engine.budget = Some (Budget.limits ~max_rows:100 ()) }
  in
  match Engine.run ~opts st heavy with
  | exception Err.Resource_error _ -> ()
  | r ->
    (match r.Engine.degraded with
     | Some _ -> Alcotest.fail "resource exhaustion engaged the fallback"
     | None -> Alcotest.fail "row budget did not trip")

let () =
  Alcotest.run "robustness"
    [ ( "budgets",
        [ Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "row budget" `Quick test_row_budget;
          Alcotest.test_case "byte budget" `Quick test_byte_budget;
          Alcotest.test_case "op budget" `Quick test_op_budget;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "generous budget transparent" `Quick
            test_generous_budget_transparent;
          Alcotest.test_case "no fallback on resource errors" `Quick
            test_resource_error_not_degraded ] );
      ( "fault injection",
        [ Alcotest.test_case "every boundary of Figure 10" `Quick
            test_fault_sweep_fig10;
          Alcotest.test_case "no fallback surfaces the fault" `Quick
            test_fault_without_fallback;
          Alcotest.test_case "seeded determinism" `Quick
            test_fault_seeded_determinism ] );
      ( "memoization",
        [ Alcotest.test_case "budgets charge unique nodes once" `Quick
            test_budget_memoization_aware;
          Alcotest.test_case "tiny budgets fail identically" `Quick
            test_tiny_budget_mode_identical;
          Alcotest.test_case "evals counters exact" `Quick test_evals_counters;
          Alcotest.test_case "cancellation mid-DAG-walk" `Quick
            test_cancel_mid_dag_walk ] );
      ( "front-end errors",
        [ Alcotest.test_case "malformed XML" `Quick test_malformed_xml;
          Alcotest.test_case "syntax error positions" `Quick
            test_query_syntax_positions ] );
    ]
