(* Tests for the XML substrate: parser, store encoding invariants,
   builder/copy semantics, serializer round-trips, and — the core — a
   differential test of the staircase axis evaluator against a naive
   oracle derived solely from the parent column, over random trees. *)

open Xmldb

let store () = Doc_store.create ()

let parse ?strip_ws st src = Xml_parser.parse_document ?strip_ws st src

let ser st n = Serialize.node_to_string st n

(* ---------------------------------------------------------------- parser *)

let test_parse_simple () =
  let st = store () in
  let doc = parse st "<a><b><c/><d/></b><c/></a>" in
  Alcotest.(check string) "round trip" "<a><b><c/><d/></b><c/></a>" (ser st doc)

let test_parse_attributes () =
  let st = store () in
  let doc = parse st {|<e pos="1" name='x &amp; y'>t</e>|} in
  Alcotest.(check string) "attrs" {|<e pos="1" name="x &amp; y">t</e>|} (ser st doc)

let test_parse_entities () =
  let st = store () in
  let doc = parse st "<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>" in
  Alcotest.(check string) "entities" "<a>&lt;&gt;&amp;\"'AB</a>" (ser st doc)

let test_parse_cdata () =
  let st = store () in
  let doc = parse st "<a><![CDATA[x < y & z]]></a>" in
  Alcotest.(check string) "cdata" "<a>x &lt; y &amp; z</a>" (ser st doc)

let test_parse_comment_pi () =
  let st = store () in
  let doc = parse st "<a><!--note--><?target data?></a>" in
  Alcotest.(check string) "comment+pi" "<a><!--note--><?target data?></a>" (ser st doc)

let test_parse_prolog () =
  let st = store () in
  let doc =
    parse st
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><!--pre--><a/>"
  in
  (* the prolog comment becomes a child of the document node, per XDM *)
  Alcotest.(check string) "prolog" "<!--pre--><a/>" (ser st doc)

let test_parse_nested_deep () =
  let depth = 2000 in
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do Buffer.add_string buf "<n>" done;
  Buffer.add_string buf "x";
  for _ = 1 to depth do Buffer.add_string buf "</n>" done;
  let st = store () in
  let doc = parse st (Buffer.contents buf) in
  Alcotest.(check string) "string value at depth" "x" (Doc_store.string_value st doc)

let test_parse_errors () =
  let st = store () in
  let fails src =
    match parse st src with
    | exception Xml_parser.Parse_error (_, pos) ->
      (* the reported offset must point into (or just past) the source *)
      if pos < 0 || pos > String.length src then
        Alcotest.failf "offset %d out of range for %S" pos src
    | _ -> Alcotest.failf "expected parse error for %s" src
  in
  fails "<a>";
  fails "<a></b>";
  fails "<a attr></a>";
  fails "<a>&unknown;</a>";
  fails "<a/><b/>";
  fails "";
  (* a late error is reported late, not at offset 0 *)
  (match parse st "<root><x></y></root>" with
   | exception Xml_parser.Parse_error (_, pos) ->
     if pos < 6 then Alcotest.failf "mismatched close tag reported at %d" pos
   | _ -> Alcotest.fail "expected parse error for mismatched close tag")

let test_strip_ws () =
  let st = store () in
  let doc = parse ~strip_ws:true st "<a>\n  <b> x </b>\n</a>" in
  Alcotest.(check string) "ws stripped" "<a><b> x </b></a>" (ser st doc)

let test_text_merging () =
  let st = store () in
  let b = Doc_store.Builder.create st in
  Doc_store.Builder.start_element b (Qname.make "a");
  Doc_store.Builder.text b "x";
  Doc_store.Builder.text b "y";
  Doc_store.Builder.text b "";
  Doc_store.Builder.text b "z";
  Doc_store.Builder.end_element b;
  let _, roots = Doc_store.Builder.finish b in
  Alcotest.(check int) "merged into one text node" 1 (Doc_store.size st roots.(0));
  Alcotest.(check string) "value" "xyz" (Doc_store.string_value st roots.(0))

(* ------------------------------------------------------------- encoding *)

(* Figure 5 of the paper: <a><b><c/><d/></b><c/></a>, preorder ranks 0..4. *)
let fig1 st =
  parse st "<a><b><c/><d/></b><c/></a>"

let node _st doc pre = Node_id.make ~frag:(Node_id.frag doc) ~pre

let test_preorder_ranks () =
  let st = store () in
  let doc = fig1 st in
  (* pre 0 is the document node, the element a is pre 1, etc. *)
  let names =
    List.map
      (fun pre ->
         match Doc_store.name st (node st doc pre) with
         | Some q -> Qname.local q
         | None -> "-")
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check (list string)) "preorder" [ "a"; "b"; "c"; "d"; "c" ] names;
  (* b (pre 2) precedes d (pre 4) in document order *)
  Alcotest.(check bool) "doc order via ranks" true
    (Node_id.compare (node st doc 2) (node st doc 4) < 0)

let test_sizes_levels () =
  let st = store () in
  let doc = fig1 st in
  let sizes = List.map (fun p -> Doc_store.size st (node st doc p)) [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "sizes" [ 5; 4; 2; 0; 0; 0 ] sizes;
  let levels = List.map (fun p -> Doc_store.level st (node st doc p)) [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "levels" [ 0; 1; 2; 3; 3; 2 ] levels

let test_parents () =
  let st = store () in
  let doc = fig1 st in
  let parent p =
    match Doc_store.parent st (node st doc p) with
    | Some n -> Node_id.pre n
    | None -> -1
  in
  Alcotest.(check (list int)) "parents" [ -1; 0; 1; 2; 2; 1 ]
    (List.map parent [ 0; 1; 2; 3; 4; 5 ])

let test_string_value () =
  let st = store () in
  let doc = parse st "<a>x<b>y<c>z</c></b>w</a>" in
  Alcotest.(check string) "element string value" "xyzw" (Doc_store.string_value st doc);
  let st2 = store () in
  let doc2 = parse st2 {|<a id="i7">t</a>|} in
  (* attribute row sits at pre 2 (document 0, element 1) *)
  Alcotest.(check string) "attribute value" "i7"
    (Doc_store.string_value st2 (node st2 doc2 2))

let test_document_registry () =
  let st = store () in
  let root = Xml_parser.load_document st ~uri:"d.xml" "<r/>" in
  (match Doc_store.find_document st "d.xml" with
   | Some n -> Alcotest.(check bool) "found" true (Node_id.equal n root)
   | None -> Alcotest.fail "document not registered");
  Alcotest.(check (option reject)) "missing uri" None
    (Doc_store.find_document st "other.xml")

(* --------------------------------------------------------------- builder *)

let test_builder_copy () =
  let st = store () in
  let doc = parse st "<a><b><c/><d/></b><c/></a>" in
  (* copy element b (pre 2) into a fresh element e, twice *)
  let b = Doc_store.Builder.create st in
  Doc_store.Builder.start_element b (Qname.make "e");
  Doc_store.Builder.copy b (node st doc 2);
  Doc_store.Builder.copy b (node st doc 2);
  Doc_store.Builder.end_element b;
  let _, roots = Doc_store.Builder.finish b in
  Alcotest.(check string) "copied twice"
    "<e><b><c/><d/></b><b><c/><d/></b></e>" (ser st roots.(0));
  (* originals untouched *)
  Alcotest.(check string) "source intact"
    "<a><b><c/><d/></b><c/></a>" (ser st doc)

let test_builder_copy_document () =
  let st = store () in
  let doc = parse st "<a>x<b/></a>" in
  let b = Doc_store.Builder.create st in
  Doc_store.Builder.start_element b (Qname.make "e");
  Doc_store.Builder.copy b doc;           (* document node: copies children *)
  Doc_store.Builder.end_element b;
  let _, roots = Doc_store.Builder.finish b in
  Alcotest.(check string) "doc copy" "<e><a>x<b/></a></e>" (ser st roots.(0))

let test_builder_attr_after_content () =
  let st = store () in
  let b = Doc_store.Builder.create st in
  Doc_store.Builder.start_element b (Qname.make "e");
  Doc_store.Builder.text b "t";
  (match Doc_store.Builder.attribute b (Qname.make "x") "1" with
   | exception Basis.Err.Dynamic_error _ -> ()
   | () -> Alcotest.fail "expected dynamic error")

let test_builder_multi_root () =
  let st = store () in
  let b = Doc_store.Builder.create st in
  Doc_store.Builder.start_element b (Qname.make "x");
  Doc_store.Builder.end_element b;
  Doc_store.Builder.start_element b (Qname.make "y");
  Doc_store.Builder.end_element b;
  let _, roots = Doc_store.Builder.finish b in
  Alcotest.(check int) "two roots" 2 (Array.length roots);
  Alcotest.(check string) "root 2" "<y/>" (ser st roots.(1))

(* ------------------------------------------------------------------ axes *)

let name_test st local = Node_test.Name (Doc_store.name_test_id st (Qname.make local))

let pres ns = Array.to_list (Array.map Node_id.pre ns)

let test_axis_child () =
  let st = store () in
  let doc = fig1 st in
  let r = Staircase.step st Axis.Child (name_test st "c") [| node st doc 1 |] in
  Alcotest.(check (list int)) "child::c of a" [ 5 ] (pres r);
  let r = Staircase.step st Axis.Child Node_test.Any_node [| node st doc 1 |] in
  Alcotest.(check (list int)) "child::node() of a" [ 2; 5 ] (pres r)

let test_axis_descendant () =
  let st = store () in
  let doc = fig1 st in
  let r = Staircase.step st Axis.Descendant (name_test st "c") [| doc |] in
  Alcotest.(check (list int)) "descendant c in doc order" [ 3; 5 ] (pres r);
  (* overlapping contexts: a and b — staircase pruning must not duplicate *)
  let r =
    Staircase.step st Axis.Descendant Node_test.Any_node
      [| node st doc 1; node st doc 2; node st doc 1 |]
  in
  Alcotest.(check (list int)) "pruned overlap" [ 2; 3; 4; 5 ] (pres r)

let test_axis_union_order () =
  (* the paper's Section 1 example: //(c|d) must yield (c1, d, c2) *)
  let st = store () in
  let doc = fig1 st in
  let c = Staircase.step st Axis.Descendant (name_test st "c") [| doc |] in
  let d = Staircase.step st Axis.Descendant (name_test st "d") [| doc |] in
  Alcotest.(check (list int)) "c nodes" [ 3; 5 ] (pres c);
  Alcotest.(check (list int)) "d nodes" [ 4 ] (pres d)

let test_axis_attribute () =
  let st = store () in
  let doc = parse st {|<a id="1" class="x"><b ref="2"/></a>|} in
  let r = Staircase.step st Axis.Attribute Node_test.Any_node [| node st doc 1 |] in
  Alcotest.(check int) "two attrs" 2 (Array.length r);
  let r = Staircase.step st Axis.Attribute (name_test st "ref") [| node st doc 1 |] in
  Alcotest.(check (list int)) "no ref on a" [] (pres r);
  (* name test on attribute axis matches attribute nodes (principal kind) *)
  let b_elem = Staircase.step st Axis.Child (name_test st "b") [| node st doc 1 |] in
  let r = Staircase.step st Axis.Attribute (name_test st "ref") b_elem in
  Alcotest.(check int) "ref attr of b" 1 (Array.length r)

let test_axis_child_skips_attributes () =
  let st = store () in
  let doc = parse st {|<a id="1"><b/>t</a>|} in
  let r = Staircase.step st Axis.Child Node_test.Any_node [| node st doc 1 |] in
  (* children are <b/> and the text node; the attribute row is skipped *)
  Alcotest.(check int) "two children" 2 (Array.length r);
  let kinds = Array.to_list (Array.map (Doc_store.kind st) r) in
  Alcotest.(check bool) "kinds" true
    (kinds = [ Node_kind.Element; Node_kind.Text ])

let test_axis_self_parent () =
  let st = store () in
  let doc = fig1 st in
  let r = Staircase.step st Axis.Self (name_test st "b") [| node st doc 2 |] in
  Alcotest.(check (list int)) "self::b" [ 2 ] (pres r);
  let r = Staircase.step st Axis.Self (name_test st "z") [| node st doc 2 |] in
  Alcotest.(check (list int)) "self::z empty" [] (pres r);
  (* parent of both c1 and d is b: deduplicated *)
  let r =
    Staircase.step st Axis.Parent Node_test.Any_node
      [| node st doc 3; node st doc 4 |]
  in
  Alcotest.(check (list int)) "dedup parent" [ 2 ] (pres r)

let test_axis_siblings () =
  let st = store () in
  let doc = parse st "<r><a/><b/><c/><d/></r>" in
  let b = node st doc 3 in
  let r = Staircase.step st Axis.Following_sibling Node_test.Any_node [| b |] in
  Alcotest.(check (list int)) "following-sibling of b" [ 4; 5 ] (pres r);
  let r = Staircase.step st Axis.Preceding_sibling Node_test.Any_node [| b |] in
  Alcotest.(check (list int)) "preceding-sibling of b" [ 2 ] (pres r)

let test_axis_following_preceding () =
  let st = store () in
  let doc = fig1 st in
  let b = node st doc 2 in
  let r = Staircase.step st Axis.Following Node_test.Any_node [| b |] in
  Alcotest.(check (list int)) "following of b" [ 5 ] (pres r);
  let c2 = node st doc 5 in
  let r = Staircase.step st Axis.Preceding Node_test.Any_node [| c2 |] in
  (* preceding of c2 excludes ancestors a and the document node *)
  Alcotest.(check (list int)) "preceding of c2" [ 2; 3; 4 ] (pres r)

let test_axis_ancestor () =
  let st = store () in
  let doc = fig1 st in
  let d = node st doc 4 in
  let r = Staircase.step st Axis.Ancestor Node_test.Any_node [| d |] in
  Alcotest.(check (list int)) "ancestors of d" [ 0; 1; 2 ] (pres r);
  let r = Staircase.step st Axis.Ancestor_or_self (name_test st "d") [| d |] in
  Alcotest.(check (list int)) "a-o-s name test" [ 4 ] (pres r)

let test_axis_cross_fragment_order () =
  let st = store () in
  let d1 = parse st "<a><x/></a>" in
  let d2 = parse st "<b><x/></b>" in
  let r = Staircase.step st Axis.Descendant (name_test st "x") [| d2; d1 |] in
  (* results must come back in global document order: frag of d1 first *)
  Alcotest.(check (list int)) "frags ascending"
    [ Node_id.frag d1; Node_id.frag d2 ]
    (Array.to_list (Array.map Node_id.frag r))

let test_axis_unknown_name () =
  let st = store () in
  let doc = fig1 st in
  let r = Staircase.step st Axis.Descendant (name_test st "nosuchtag") [| doc |] in
  Alcotest.(check (list int)) "unknown tag matches nothing" [] (pres r)

(* ------------------------------------------- qcheck: random-tree oracle *)

(* Generate a random XML document string with elements from a small tag
   alphabet, attributes, text, comments. *)
let gen_doc : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "d"; "e" ] in
  let rec elem depth =
    let* t = tag in
    let* n_attr = int_bound 2 in
    let* attrs =
      list_repeat n_attr
        (let* an = oneofl [ "id"; "k" ] in
         let* av = int_bound 9 in
         return (Printf.sprintf "%s%d=\"%d\"" an (Random.int 1000000) av))
    in
    let* n_children = if depth >= 4 then return 0 else int_bound 3 in
    let* children =
      list_repeat n_children
        (frequency
           [ (4, elem (depth + 1));
             (2, map (Printf.sprintf "t%d") (int_bound 9));
             (1, return "<!--c-->") ])
    in
    return
      (Printf.sprintf "<%s %s>%s</%s>" t (String.concat " " attrs)
         (String.concat "" children) t)
  in
  elem 0

(* Naive axis oracle computed only from the parent column. *)
module Oracle = struct
  let all_nodes st frag_id =
    let f = Doc_store.frag st frag_id in
    List.init (Doc_store.frag_length f) (fun pre -> Node_id.make ~frag:frag_id ~pre)

  let parent st n = Doc_store.parent st n

  let rec ancestors st n =
    match parent st n with None -> [] | Some p -> p :: ancestors st p

  let is_attr st n = Doc_store.kind st n = Node_kind.Attribute

  let children st frag_id x =
    List.filter
      (fun n -> parent st n = Some x && not (is_attr st n))
      (all_nodes st frag_id)

  let attrs st frag_id x =
    List.filter
      (fun n -> parent st n = Some x && is_attr st n)
      (all_nodes st frag_id)

  let rec descendants st frag_id x =
    List.concat_map
      (fun c -> c :: descendants st frag_id c)
      (children st frag_id x)

  let matches st principal (test : Node_test.t) n =
    match test with
    | Node_test.Any_node -> true
    | Node_test.Kind k -> Doc_store.kind st n = k
    | Node_test.Name_wild -> Doc_store.kind st n = principal
    | Node_test.Name id ->
      Doc_store.kind st n = principal && Doc_store.name_id st n = id
    | Node_test.Pi_target _ -> false

  let axis st frag_id (ax : Axis.t) x =
    match ax with
    | Axis.Child -> children st frag_id x
    | Axis.Attribute ->
      if Doc_store.kind st x = Node_kind.Element then attrs st frag_id x else []
    | Axis.Descendant -> descendants st frag_id x
    | Axis.Descendant_or_self -> x :: descendants st frag_id x
    | Axis.Self -> [ x ]
    | Axis.Parent -> (match parent st x with None -> [] | Some p -> [ p ])
    | Axis.Ancestor -> ancestors st x
    | Axis.Ancestor_or_self -> x :: ancestors st x
    | Axis.Following_sibling ->
      if is_attr st x then []
      else
        (match parent st x with
         | None -> []
         | Some p ->
           List.filter (fun s -> Node_id.compare s x > 0) (children st frag_id p))
    | Axis.Preceding_sibling ->
      if is_attr st x then []
      else
        (match parent st x with
         | None -> []
         | Some p ->
           List.filter (fun s -> Node_id.compare s x < 0) (children st frag_id p))
    | Axis.Following ->
      let anc = x :: ancestors st x in
      let sub = descendants st frag_id x in
      List.filter
        (fun n ->
           Node_id.compare n x > 0
           && (not (List.mem n anc)) && (not (List.mem n sub))
           && not (is_attr st n))
        (all_nodes st frag_id)
    | Axis.Preceding ->
      let anc = ancestors st x in
      List.filter
        (fun n ->
           Node_id.compare n x < 0
           && (not (List.mem n anc))
           && not (is_attr st n))
        (all_nodes st frag_id)

  let step st frag_id ax test ctxs =
    let principal = Staircase.principal_kind ax in
    let results =
      List.concat_map (fun x -> axis st frag_id ax x) (Array.to_list ctxs)
    in
    let results = List.filter (matches st principal test) results in
    List.sort_uniq Node_id.compare results
end

let all_axes =
  [ Axis.Child; Axis.Descendant; Axis.Descendant_or_self; Axis.Self;
    Axis.Attribute; Axis.Parent; Axis.Ancestor; Axis.Ancestor_or_self;
    Axis.Following; Axis.Following_sibling; Axis.Preceding;
    Axis.Preceding_sibling ]

let axis_oracle_prop =
  QCheck2.Test.make ~count:120
    ~name:"staircase step equals naive oracle on random trees"
    QCheck2.Gen.(tup2 gen_doc (int_bound 10000))
    (fun (src, seed) ->
       let st = store () in
       let doc = parse st src in
       let frag_id = Node_id.frag doc in
       let f = Doc_store.frag st frag_id in
       let n = Doc_store.frag_length f in
       (* pseudorandom context subset *)
       let rng = Basis.Prng.create seed in
       let ctxs =
         Array.of_list
           (List.filter_map
              (fun pre ->
                 if Basis.Prng.int rng 3 = 0 then
                   Some (Node_id.make ~frag:frag_id ~pre)
                 else None)
              (List.init n (fun i -> i)))
       in
       let tests =
         [ Node_test.Any_node;
           Node_test.Name_wild;
           Node_test.Kind Node_kind.Text;
           Node_test.Name (Doc_store.name_test_id st (Qname.make "b")) ]
       in
       List.for_all
         (fun ax ->
            List.for_all
              (fun test ->
                 let got =
                   Array.to_list (Staircase.step st ax test ctxs)
                 in
                 let want = Oracle.step st frag_id ax test ctxs in
                 if got <> want then
                   QCheck2.Test.fail_reportf
                     "axis %s differs: got [%s] want [%s] on %s"
                     (Axis.to_string ax)
                     (String.concat ";" (List.map Node_id.to_string got))
                     (String.concat ";" (List.map Node_id.to_string want))
                     src
                 else true)
              tests)
         all_axes)

(* The TwigStack-style tag-index step must agree with the staircase scan
   on its whole applicability profile, over random trees and context
   sets. *)
let tag_index_prop =
  QCheck2.Test.make ~count:150
    ~name:"tag-index step equals staircase scan"
    QCheck2.Gen.(tup2 gen_doc (int_bound 10000))
    (fun (src, seed) ->
       let st = store () in
       let doc = parse st src in
       let frag_id = Node_id.frag doc in
       let f = Doc_store.frag st frag_id in
       let n = Doc_store.frag_length f in
       let ti = Tag_index.create st in
       let rng = Basis.Prng.create seed in
       let ctxs =
         Array.of_list
           (List.filter_map
              (fun pre ->
                 if Basis.Prng.int rng 3 = 0 then
                   Some (Node_id.make ~frag:frag_id ~pre)
                 else None)
              (List.init n (fun i -> i)))
       in
       let axes =
         [ Axis.Child; Axis.Descendant; Axis.Descendant_or_self; Axis.Attribute ]
       in
       let tests =
         List.map
           (fun t' -> Node_test.Name (Doc_store.name_test_id st (Qname.make t')))
           [ "a"; "b"; "id"; "nosuch" ]
       in
       List.for_all
         (fun ax ->
            List.for_all
              (fun test ->
                 if not (Tag_index.applicable ax test) then true
                 else begin
                   let got = Array.to_list (Tag_index.step ti ax test ctxs) in
                   let want = Array.to_list (Staircase.step st ax test ctxs) in
                   if got <> want then
                     QCheck2.Test.fail_reportf
                       "axis %s differs: got [%s] want [%s] on %s"
                       (Axis.to_string ax)
                       (String.concat ";" (List.map Node_id.to_string got))
                       (String.concat ";" (List.map Node_id.to_string want))
                       src
                   else true
                 end)
              tests)
         axes)

let roundtrip_prop =
  QCheck2.Test.make ~count:200 ~name:"parse-serialize-parse is stable"
    gen_doc
    (fun src ->
       let st = store () in
       let doc = parse st src in
       let s1 = ser st doc in
       let st2 = store () in
       let doc2 = parse st2 s1 in
       let s2 = ser st2 doc2 in
       String.equal s1 s2)

let encoding_invariants_prop =
  QCheck2.Test.make ~count:200 ~name:"pre/size/level/parent invariants"
    gen_doc
    (fun src ->
       let st = store () in
       let doc = parse st src in
       let f = Doc_store.frag st (Node_id.frag doc) in
       let n = Doc_store.frag_length f in
       let ok = ref true in
       for p = 0 to n - 1 do
         (* subtree fits inside parent's subtree *)
         let pa = Doc_store.parent_at f p in
         if pa >= 0 then begin
           if not (pa < p && p + Doc_store.size_at f p <= pa + Doc_store.size_at f pa)
           then ok := false;
           if Doc_store.level_at f p <> Doc_store.level_at f pa + 1 then ok := false
         end else if Doc_store.level_at f p <> 0 then ok := false
       done;
       !ok)

(* ---------------------------------------------------------- ingest guard *)

(* Budgeted ingest (the server's remote LOAD path): a guard tripping
   mid-parse must abort with Resource_error and leave the store exactly
   as it was — fragments only publish at Builder.finish, so an abandoned
   parse is invisible — and the store must stay fully usable after. *)

module Budget = Basis.Budget

let big_xml =
  let b = Buffer.create 4096 in
  Buffer.add_string b "<root>";
  for i = 1 to 200 do
    Buffer.add_string b (Printf.sprintf "<item n=\"%d\">x</item>" i)
  done;
  Buffer.add_string b "</root>";
  Buffer.contents b

let check_unpublished st ~frags_before ~docs_before =
  Alcotest.(check int) "no fragment published" frags_before
    (Doc_store.n_frags st);
  Alcotest.(check int) "no document registered" docs_before
    (List.length (Doc_store.documents st));
  (* the store survives: a subsequent unguarded load works *)
  let _ = Xml_parser.load_document st ~uri:"after.xml" "<ok/>" in
  Alcotest.(check bool) "store usable after the trip" true
    (Doc_store.find_document st "after.xml" <> None)

let test_ingest_op_budget_trip () =
  let st = store () in
  let _ = Xml_parser.load_document st ~uri:"pre.xml" "<pre/>" in
  let frags_before = Doc_store.n_frags st in
  let docs_before = List.length (Doc_store.documents st) in
  let guard = Budget.start (Budget.limits ~max_ops:10 ()) in
  (match Xml_parser.load_document ~guard st ~uri:"big.xml" big_xml with
   | exception Basis.Err.Resource_error _ -> ()
   | _ -> Alcotest.fail "op budget did not trip mid-parse");
  Alcotest.(check bool) "the guard did count element work" true
    (Budget.ops guard >= 10);
  check_unpublished st ~frags_before ~docs_before

let test_ingest_deadline_trip () =
  let st = store () in
  let guard = Budget.start (Budget.limits ~timeout_s:0.0 ()) in
  (match Xml_parser.load_document ~guard st ~uri:"big.xml" big_xml with
   | exception Basis.Err.Resource_error _ -> ()
   | _ -> Alcotest.fail "expired deadline did not trip");
  check_unpublished st ~frags_before:0 ~docs_before:0

let test_ingest_cancellation () =
  let st = store () in
  let c = Budget.cancel_switch () in
  let guard = Budget.start (Budget.limits ~cancel:c ()) in
  Budget.cancel c;
  (match Xml_parser.load_document ~guard st ~uri:"big.xml" big_xml with
   | exception Basis.Err.Resource_error _ -> ()
   | _ -> Alcotest.fail "cancelled guard did not trip");
  check_unpublished st ~frags_before:0 ~docs_before:0

let test_ingest_generous_guard_is_invisible () =
  let st = store () in
  let guard = Budget.start (Budget.limits ~max_ops:1_000_000 ()) in
  let guarded = Xml_parser.load_document ~guard st ~uri:"g.xml" big_xml in
  let st' = store () in
  let plain = Xml_parser.load_document st' ~uri:"g.xml" big_xml in
  Alcotest.(check string) "guarded parse = unguarded parse"
    (ser st' plain) (ser st guarded)

(* ------------------------------------------------------------------ main *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "xmldb"
    [ ( "parser",
        [ Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "comment+pi" `Quick test_parse_comment_pi;
          Alcotest.test_case "prolog" `Quick test_parse_prolog;
          Alcotest.test_case "deep nesting" `Quick test_parse_nested_deep;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "strip ws" `Quick test_strip_ws ] );
      ( "encoding",
        [ Alcotest.test_case "preorder ranks (fig 5)" `Quick test_preorder_ranks;
          Alcotest.test_case "sizes+levels" `Quick test_sizes_levels;
          Alcotest.test_case "parents" `Quick test_parents;
          Alcotest.test_case "string value" `Quick test_string_value;
          Alcotest.test_case "document registry" `Quick test_document_registry ] );
      ( "builder",
        [ Alcotest.test_case "text merging" `Quick test_text_merging;
          Alcotest.test_case "deep copy" `Quick test_builder_copy;
          Alcotest.test_case "copy document" `Quick test_builder_copy_document;
          Alcotest.test_case "attr after content" `Quick test_builder_attr_after_content;
          Alcotest.test_case "multi root fragment" `Quick test_builder_multi_root ] );
      ( "axes",
        [ Alcotest.test_case "child" `Quick test_axis_child;
          Alcotest.test_case "descendant" `Quick test_axis_descendant;
          Alcotest.test_case "union order (paper §1)" `Quick test_axis_union_order;
          Alcotest.test_case "attribute" `Quick test_axis_attribute;
          Alcotest.test_case "child skips attrs" `Quick test_axis_child_skips_attributes;
          Alcotest.test_case "self+parent" `Quick test_axis_self_parent;
          Alcotest.test_case "siblings" `Quick test_axis_siblings;
          Alcotest.test_case "following/preceding" `Quick test_axis_following_preceding;
          Alcotest.test_case "ancestor" `Quick test_axis_ancestor;
          Alcotest.test_case "cross fragment order" `Quick test_axis_cross_fragment_order;
          Alcotest.test_case "unknown name" `Quick test_axis_unknown_name ] );
      ( "ingest guard",
        [ Alcotest.test_case "op budget trips mid-parse" `Quick
            test_ingest_op_budget_trip;
          Alcotest.test_case "expired deadline trips" `Quick
            test_ingest_deadline_trip;
          Alcotest.test_case "cancellation trips" `Quick
            test_ingest_cancellation;
          Alcotest.test_case "generous guard is invisible" `Quick
            test_ingest_generous_guard_is_invisible ] );
      qsuite "properties"
        [ axis_oracle_prop; tag_index_prop; roundtrip_prop;
          encoding_invariants_prop ];
    ]
