(* Tests for the query server: the wire grammar, the watchdog and
   admission-queue state machines, the session layer, and — over real
   loopback TCP connections — the robustness contracts of the issue:
   result parity with the direct engine, the error-class mapping,
   budget clamping, queue-full and per-client-cap shedding, disconnect
   cancellation, and the graceful drain (no admitted response lost, new
   work shed, stragglers budget-cancelled after the grace period).

   A final gated test drives the real bin/serve executable through a
   SIGTERM drain (skipped when the binary is not around, e.g. when the
   test runs outside dune's dependency sandbox). *)

module P = Server.Protocol
module Budget = Basis.Budget
module Err = Basis.Err

let doc_xml = "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"

let mk_store () =
  let st = Xmldb.Doc_store.create () in
  let _ = Xmldb.Xml_parser.load_document st ~uri:"t.xml" doc_xml in
  st

(* -------------------------------------------------------------- protocol *)

let test_protocol_escaping () =
  let cases =
    [ ""; "plain"; "with space"; "line\nbreak"; "cr\rlf\n"; "back\\slash";
      "\\n literal"; "mix \\ \n \r end" ]
  in
  List.iter
    (fun s ->
       Alcotest.(check string) "escape round-trip" s (P.unescape (P.escape s));
       Alcotest.(check string) "item round-trip" s
         (P.unescape_item (P.escape_item s));
       Alcotest.(check bool) "escaped payload is line-safe" false
         (String.contains (P.escape s) '\n');
       Alcotest.(check bool) "escaped item is space-safe" false
         (String.contains (P.escape_item s) ' '))
    cases

let test_protocol_requests () =
  let rt req =
    match P.parse_request (P.render_request req) with
    | Ok r -> Alcotest.(check bool) "request round-trip" true (r = req)
    | Error m -> Alcotest.failf "round-trip failed to parse: %s" m
  in
  rt (P.Query { itemized = false; timeout_s = None; text = "1 + 1" });
  rt (P.Query { itemized = true; timeout_s = Some 0.25; text = "a b  c" });
  rt (P.Prepare { name = "q1"; text = "count(doc(\"t.xml\")//c)" });
  rt (P.Exec { itemized = false; timeout_s = Some 1.0; name = "q1" });
  rt (P.Exec { itemized = true; timeout_s = None; name = "q1" });
  rt (P.Load { timeout_s = None; uri = "m.xml"; xml = "<m>\n<x/></m>" });
  rt (P.Use "session");
  rt P.Stats;
  rt P.Ping;
  rt P.Quit;
  rt (P.Sleep { timeout_s = Some 0.1; ms = 50 });
  (match P.parse_request "NOSUCH x" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown verb must not parse");
  (match P.parse_request "" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty line must not parse")

let test_protocol_responses () =
  (* the wire mirrors the CLI exit codes exactly *)
  List.iter
    (fun kind ->
       match P.parse_response (P.err kind "boom") with
       | Ok (P.Resp_err { class_; code; message }) ->
         Alcotest.(check string) "class label" (Err.kind_label kind) class_;
         Alcotest.(check int) "code = exit code" (Err.exit_code kind) code;
         Alcotest.(check string) "message" "boom" message
       | _ -> Alcotest.fail "ERR did not parse")
    [ Err.Dynamic; Err.Static; Err.Resource; Err.Internal ];
  (match P.parse_response (P.ok_payload ~n:2 "1 2") with
   | Ok (P.Resp_ok (2, raw)) ->
     Alcotest.(check string) "payload" "1 2" (P.payload_of raw)
   | _ -> Alcotest.fail "OK payload did not parse");
  (match P.parse_response (P.ok_items [ "a b"; "c\nd" ]) with
   | Ok (P.Resp_ok (2, raw)) ->
     Alcotest.(check (list string)) "items" [ "a b"; "c\nd" ]
       (P.items_of ~n:2 raw)
   | _ -> Alcotest.fail "OK items did not parse");
  (* 0 items vs one empty item *)
  (match P.parse_response (P.ok_items []) with
   | Ok (P.Resp_ok (0, raw)) ->
     Alcotest.(check (list string)) "zero items" [] (P.items_of ~n:0 raw)
   | _ -> Alcotest.fail "empty OK did not parse");
  Alcotest.(check bool) "pong" true (P.parse_response P.pong = Ok P.Resp_pong);
  Alcotest.(check bool) "bye" true (P.parse_response P.bye = Ok P.Resp_bye)

(* -------------------------------------------------------------- watchdog *)

let test_watchdog_hysteresis () =
  let wd =
    Server.Watchdog.create ~threshold:4 ~degrade_after:3 ~recover_after:2 ()
  in
  let obs d = Server.Watchdog.observe wd d in
  (* two hot ticks are not enough *)
  Alcotest.(check bool) "hot 1" true (obs 10 = Server.Watchdog.Normal);
  Alcotest.(check bool) "hot 2" true (obs 4 = Server.Watchdog.Normal);
  (* a calm tick resets the streak *)
  Alcotest.(check bool) "calm resets" true (obs 3 = Server.Watchdog.Normal);
  Alcotest.(check bool) "hot 1'" true (obs 5 = Server.Watchdog.Normal);
  Alcotest.(check bool) "hot 2'" true (obs 5 = Server.Watchdog.Normal);
  Alcotest.(check bool) "hot 3' degrades" true
    (obs 5 = Server.Watchdog.Degraded);
  Alcotest.(check int) "one degradation" 1 (Server.Watchdog.degradations wd);
  (* recovery needs two consecutive calm ticks *)
  Alcotest.(check bool) "calm 1" true (obs 0 = Server.Watchdog.Degraded);
  Alcotest.(check bool) "hot resets recovery" true
    (obs 9 = Server.Watchdog.Degraded);
  Alcotest.(check bool) "calm 1'" true (obs 0 = Server.Watchdog.Degraded);
  Alcotest.(check bool) "calm 2' recovers" true
    (obs 0 = Server.Watchdog.Normal);
  Alcotest.(check int) "still one degradation" 1
    (Server.Watchdog.degradations wd);
  (match Server.Watchdog.create ~threshold:0 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "non-positive threshold must be rejected")

(* ------------------------------------------------------------- admission *)

let test_admission_queue () =
  let q = Server.Admission.create ~capacity:2 in
  Alcotest.(check bool) "admit 1" true (Server.Admission.submit q 1 = `Admitted);
  Alcotest.(check bool) "admit 2" true (Server.Admission.submit q 2 = `Admitted);
  Alcotest.(check bool) "full sheds" true
    (Server.Admission.submit q 3 = `Queue_full);
  Alcotest.(check int) "depth" 2 (Server.Admission.depth q);
  Alcotest.(check bool) "fifo 1" true (Server.Admission.take q = Some 1);
  Alcotest.(check bool) "slot freed" true
    (Server.Admission.submit q 4 = `Admitted);
  Server.Admission.drain q;
  Alcotest.(check bool) "draining sheds" true
    (Server.Admission.submit q 5 = `Draining);
  (* the graceful-shutdown contract: everything admitted is still served *)
  Alcotest.(check bool) "fifo 2 after drain" true
    (Server.Admission.take q = Some 2);
  Alcotest.(check bool) "fifo 4 after drain" true
    (Server.Admission.take q = Some 4);
  Alcotest.(check bool) "empty + draining ends the worker" true
    (Server.Admission.take q = None);
  let s = Server.Admission.stats q in
  Alcotest.(check int) "admitted" 3 s.Server.Admission.admitted;
  Alcotest.(check int) "shed_full" 1 s.Server.Admission.shed_full;
  Alcotest.(check int) "shed_draining" 1 s.Server.Admission.shed_draining

(* --------------------------------------------------------------- session *)

let registry_with ?(name = "main") st =
  let r = Server.Session.Registry.create () in
  Server.Session.Registry.add r ~name st;
  r

let mk_session ?cache ?ceiling ?opts ?(store = "main") registry =
  match Server.Session.create ?cache ?ceiling ?opts ~registry ~store () with
  | Ok s -> s
  | Error m -> Alcotest.failf "session create failed: %s" m

let ser st items =
  List.map
    (function
      | Algebra.Value.Node n -> Xmldb.Serialize.node_to_string st n
      | v -> Algebra.Value.to_string v)
    items

let test_session_query_parity () =
  let st = mk_store () in
  let s = mk_session (registry_with st) in
  List.iter
    (fun q ->
       let direct_store = mk_store () in
       let expected =
         match Engine.run_result direct_store q with
         | Ok r -> ser direct_store r.Engine.items
         | Error e -> Alcotest.failf "direct run failed: %s" e.Engine.message
       in
       match Server.Session.query s q with
       | Ok reply ->
         Alcotest.(check (list string)) q expected
           reply.Server.Session.items
       | Error e -> Alcotest.failf "session run failed: %s" e.Engine.message)
    [ "1 + 1";
      "count(doc(\"t.xml\")//c)";
      "doc(\"t.xml\")//b/c";
      "for $v in (1, 2, 3) return $v * 2";
      "<r>{ count(doc(\"t.xml\")//*) }</r>" ]

let test_session_unknown_store () =
  let st = mk_store () in
  let r = registry_with st in
  (match Server.Session.create ~registry:r ~store:"nope" () with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown store must be rejected");
  let s = mk_session r in
  (match Server.Session.use s (`Shared "nope") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "use of unknown store must be rejected");
  Alcotest.(check string) "current unchanged" "main"
    (Server.Session.current_store s)

let test_session_prepare_exec () =
  let st = mk_store () in
  let s = mk_session (registry_with st) in
  (match Server.Session.prepare s ~name:"c2" "count(doc(\"t.xml\")//c)" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "prepare failed: %s" e.Engine.message);
  (match Server.Session.exec s "c2" with
   | Ok r ->
     Alcotest.(check (list string)) "exec result" [ "2" ]
       r.Server.Session.items
   | Error e -> Alcotest.failf "exec failed: %s" e.Engine.message);
  (match Server.Session.exec s "missing" with
   | Error { Engine.kind = Err.Dynamic; _ } -> ()
   | _ -> Alcotest.fail "unknown statement must be a dynamic error");
  (* static errors surface at prepare time, not first exec *)
  (match Server.Session.prepare s ~name:"bad" ")(" with
   | Error { Engine.kind = Err.Static; _ } -> ()
   | _ -> Alcotest.fail "prepare of a syntax error must fail statically")

let test_session_ceiling_clamps () =
  let st = mk_store () in
  let ceiling = Budget.limits ~timeout_s:0.05 () in
  let s = mk_session ~ceiling (registry_with st) in
  (* the client wishes for 10s; the ceiling says 50ms *)
  (match Server.Session.sleep ~timeout_s:10.0 s ~ms:5000 with
   | Error { Engine.kind = Err.Resource; _ } -> ()
   | Ok () -> Alcotest.fail "ceiling did not clamp the client wish"
   | Error e -> Alcotest.failf "wrong error class: %s" e.Engine.message)

let test_session_cancel_inflight () =
  let st = mk_store () in
  let s = mk_session (registry_with st) in
  let result = ref (Ok ()) in
  let th =
    Thread.create (fun () -> result := Server.Session.sleep s ~ms:30_000) ()
  in
  Thread.delay 0.1;
  Server.Session.cancel_inflight s;
  Thread.join th;
  (match !result with
   | Error { Engine.kind = Err.Resource; _ } -> ()
   | Ok () -> Alcotest.fail "cancellation did not interrupt the request"
   | Error e -> Alcotest.failf "wrong error class: %s" e.Engine.message)

let test_session_private_store () =
  let st = mk_store () in
  let r = registry_with st in
  let s1 = mk_session r and s2 = mk_session r in
  (match Server.Session.load s1 ~uri:"mine.xml" "<m><x/><x/></m>" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "load failed: %s" e.Engine.message);
  (match Server.Session.use s1 `Private with
   | Ok () -> ()
   | Error m -> Alcotest.failf "use private failed: %s" m);
  Alcotest.(check string) "private store label" "session"
    (Server.Session.current_store s1);
  (match Server.Session.query s1 "count(doc(\"mine.xml\")//x)" with
   | Ok reply ->
     Alcotest.(check (list string)) "private doc visible" [ "2" ]
       reply.Server.Session.items
   | Error e -> Alcotest.failf "private query failed: %s" e.Engine.message);
  (* another session's private store is its own: the document is absent *)
  ignore (Server.Session.use s2 `Private);
  (match Server.Session.query s2 "count(doc(\"mine.xml\")//x)" with
   | Error { Engine.kind = Err.Dynamic; _ } -> ()
   | Ok _ -> Alcotest.fail "private stores must be isolated per session"
   | Error e -> Alcotest.failf "wrong error class: %s" e.Engine.message)

(* ------------------------------------------------------ wire integration *)

let with_server ?(workers = 2) ?(queue_capacity = 8) ?(client_cap = 4)
    ?ceiling ?(debug = true) f =
  let st = mk_store () in
  let cfg =
    Server.config ~port:0 ?ceiling ~workers ~queue_capacity ~client_cap
      ~debug ~stores:[ ("main", st) ] ()
  in
  let t = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop ~grace_s:5. t) (fun () -> f t)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd Unix.(ADDR_INET (inet_addr_loopback, Server.port t));
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv c = input_line c.ic

let rpc c line = send c line; recv c

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let expect_err ?substring kind resp =
  match P.parse_response resp with
  | Ok (P.Resp_err { class_; code; message }) ->
    Alcotest.(check string) "error class" (Err.kind_label kind) class_;
    Alcotest.(check int) "error code" (Err.exit_code kind) code;
    (match substring with
     | None -> ()
     | Some sub ->
       Alcotest.(check bool)
         (Printf.sprintf "message %S mentions %S" message sub)
         true
         (Astring.String.is_infix ~affix:sub message))
  | _ -> Alcotest.failf "expected ERR, got %s" resp

let stats_field resp key =
  match P.parse_response resp with
  | Ok (P.Resp_ok (_, raw)) ->
    let kvs =
      List.filter_map
        (fun f ->
           match String.index_opt f '=' with
           | Some i ->
             Some
               ( String.sub f 0 i,
                 String.sub f (i + 1) (String.length f - i - 1) )
           | None -> None)
        (String.split_on_char ' ' raw)
    in
    (try List.assoc key kvs
     with Not_found -> Alcotest.failf "no %s in stats %s" key resp)
  | _ -> Alcotest.failf "STATS did not parse: %s" resp

let test_wire_roundtrip () =
  with_server (fun t ->
    let c = connect t in
    Alcotest.(check string) "ping" P.pong (rpc c "PING");
    List.iter
      (fun q ->
         let direct = mk_store () in
         let expected =
           match Engine.run_result direct q with
           | Ok r -> ser direct r.Engine.items
           | Error e -> Alcotest.failf "direct run failed: %s" e.Engine.message
         in
         match P.parse_response (rpc c ("QI " ^ q)) with
         | Ok (P.Resp_ok (n, raw)) ->
           Alcotest.(check (list string)) q expected (P.items_of ~n raw)
         | _ -> Alcotest.failf "QI %s did not return OK" q)
      [ "1 + 1";
        "doc(\"t.xml\")//c";
        "(doc(\"t.xml\")//e)[1]/@k";
        "for $v in (1 to 4) return $v * $v";
        "<r>{ 6 * 7 }</r>" ];
    Alcotest.(check string) "bye" P.bye (rpc c "QUIT");
    close_client c)

let test_wire_error_classes () =
  with_server (fun t ->
    let c = connect t in
    expect_err Err.Dynamic (rpc c "Q 1 idiv 0");
    expect_err Err.Static (rpc c "Q )(bad");
    expect_err Err.Static ~substring:"protocol" (rpc c "BOGUS verb");
    expect_err Err.Resource ~substring:"deadline"
      (rpc c "SLEEP t=60 5000");
    expect_err Err.Dynamic ~substring:"unknown prepared"
      (rpc c "E missing");
    expect_err Err.Dynamic ~substring:"unknown store" (rpc c "U missing");
    (* the connection survives every class of request failure *)
    Alcotest.(check string) "still alive" P.pong (rpc c "PING");
    close_client c)

let test_wire_prepare_exec_and_stores () =
  with_server (fun t ->
    let c = connect t in
    Alcotest.(check string) "prepare" P.ok_unit
      (rpc c "P c2 count(doc(\"t.xml\")//c)");
    (match P.parse_response (rpc c "E c2") with
     | Ok (P.Resp_ok (1, raw)) ->
       Alcotest.(check string) "exec payload" "2" (P.payload_of raw)
     | _ -> Alcotest.fail "E c2 failed");
    Alcotest.(check string) "load" P.ok_unit
      (rpc c "L mine.xml <m><x>7</x><x>8</x></m>");
    Alcotest.(check string) "use session" P.ok_unit (rpc c "U session");
    Alcotest.(check string) "session store in stats" "session"
      (stats_field (rpc c "STATS") "store");
    (match P.parse_response (rpc c "QI doc(\"mine.xml\")//x/text()") with
     | Ok (P.Resp_ok (n, raw)) ->
       Alcotest.(check (list string)) "private doc" [ "7"; "8" ]
         (P.items_of ~n raw)
     | _ -> Alcotest.fail "private query failed");
    Alcotest.(check string) "back to main" P.ok_unit (rpc c "U main");
    expect_err Err.Dynamic (rpc c "Q count(doc(\"mine.xml\")//x)");
    close_client c)

let test_wire_queue_full_shed () =
  with_server ~workers:1 ~queue_capacity:1 ~client_cap:8 (fun t ->
    let a = connect t and b = connect t in
    (* occupy the single worker... *)
    send a "SLEEP 400";
    Thread.delay 0.15;
    (* ...fill the queue... *)
    send a "SLEEP 100";
    Thread.delay 0.05;
    (* ...and the next request must shed, immediately, with the
       documented class — not buffer behind the queue *)
    let t0 = Unix.gettimeofday () in
    expect_err Err.Resource ~substring:"queue full" (rpc b "Q 1");
    Alcotest.(check bool) "shed is immediate" true
      (Unix.gettimeofday () -. t0 < 0.2);
    (* the admitted work still completes *)
    Alcotest.(check string) "sleep 1 served" P.ok_unit (recv a);
    Alcotest.(check string) "sleep 2 served" P.ok_unit (recv a);
    Alcotest.(check string) "shed counted" "1"
      (stats_field (rpc b "STATS") "shed_full");
    close_client a;
    close_client b)

let test_wire_client_cap_shed () =
  with_server ~workers:1 ~queue_capacity:8 ~client_cap:1 (fun t ->
    let c = connect t in
    send c "SLEEP 300";
    Thread.delay 0.1;
    (* one in flight is the cap: the second request sheds... *)
    expect_err Err.Resource ~substring:"cap" (rpc c "Q 1");
    Alcotest.(check string) "first request still served" P.ok_unit (recv c);
    (* ...and the slot frees once the first completes *)
    (match P.parse_response (rpc c "Q 2 + 2") with
     | Ok (P.Resp_ok (1, raw)) ->
       Alcotest.(check string) "after completion" "4" (P.payload_of raw)
     | _ -> Alcotest.fail "query after cap release failed");
    Alcotest.(check string) "cap shed counted" "1"
      (stats_field (rpc c "STATS") "shed_cap");
    close_client c)

let test_wire_disconnect_cancels () =
  with_server ~workers:1 (fun t ->
    let a = connect t in
    send a "SLEEP t=60000 30000";
    Thread.delay 0.2;
    (* the client vanishes mid-query: the worker must be freed well
       before the 30s sleep — the disconnect trips the budget switch *)
    close_client a;
    let b = connect t in
    let deadline = Unix.gettimeofday () +. 5.0 in
    let rec freed () =
      if stats_field (rpc b "STATS") "executing" = "0" then true
      else if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.05;
        freed ()
      end
    in
    Alcotest.(check bool) "worker freed by disconnect" true (freed ());
    Alcotest.(check string) "request accounted as completed" "1"
      (stats_field (rpc b "STATS") "completed");
    close_client b)

let test_wire_drain_no_lost_responses () =
  with_server ~workers:1 (fun t ->
    let c = connect t in
    (* one executing, one queued *)
    send c "SLEEP 300";
    send c "Q 40 + 2";
    Thread.delay 0.1;
    let stopper = Thread.create (fun () -> Server.stop ~grace_s:10. t) () in
    Thread.delay 0.1;
    (* new work is refused while draining... *)
    expect_err Err.Resource ~substring:"draining" (rpc c "Q 1");
    (* ...but every admitted response still arrives, in order *)
    Alcotest.(check string) "in-flight sleep served" P.ok_unit (recv c);
    (match P.parse_response (recv c) with
     | Ok (P.Resp_ok (1, raw)) ->
       Alcotest.(check string) "queued query served" "42" (P.payload_of raw)
     | _ -> Alcotest.fail "queued response lost in drain");
    Thread.join stopper;
    close_client c)

let test_wire_drain_grace_cancels_stragglers () =
  with_server ~workers:1 (fun t ->
    let c = connect t in
    send c "SLEEP t=60000 30000";
    Thread.delay 0.1;
    let t0 = Unix.gettimeofday () in
    Server.stop ~grace_s:0.3 t;
    let elapsed = Unix.gettimeofday () -. t0 in
    Alcotest.(check bool) "stop returned promptly (not after 30s)" true
      (elapsed < 5.0);
    (* the straggler was budget-cancelled, and its error response was
       still flushed before the socket closed *)
    expect_err Err.Resource (recv c);
    close_client c)

(* ----------------------------------------------- bin/serve under SIGTERM *)

(* The full-executable drain: boot bin/serve, give it in-flight work, hit
   it with SIGTERM, and require every response plus a clean exit 0. *)
let test_serve_sigterm_drain () =
  let bin =
    match Sys.getenv_opt "XRQ_SERVE_BIN" with
    | Some p -> p
    | None -> "../bin/serve.exe"
  in
  if not (Sys.file_exists bin) then
    Alcotest.skip ()
  else begin
    let doc = Filename.temp_file "serve_test" ".xml" in
    let och = open_out doc in
    output_string och doc_xml;
    close_out och;
    let out_r, out_w = Unix.pipe () in
    let pid =
      Unix.create_process bin
        [| bin; "-d"; "t.xml=" ^ doc; "--port"; "0"; "--debug";
           "--workers"; "1"; "--grace"; "10" |]
        Unix.stdin out_w Unix.stderr
    in
    Unix.close out_w;
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        (try Unix.close out_r with Unix.Unix_error _ -> ());
        Sys.remove doc)
      (fun () ->
        let ic = Unix.in_channel_of_descr out_r in
        let ready = input_line ic in
        let port =
          match String.rindex_opt ready ':' with
          | Some i ->
            int_of_string
              (String.sub ready (i + 1) (String.length ready - i - 1))
          | None -> Alcotest.failf "unexpected readiness line: %s" ready
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd Unix.(ADDR_INET (inet_addr_loopback, port));
        let cic = Unix.in_channel_of_descr fd
        and coc = Unix.out_channel_of_descr fd in
        (* in-flight and queued work at the moment the signal lands *)
        output_string coc "SLEEP 300\nQ count(doc(\"t.xml\")//c)\n";
        flush coc;
        Thread.delay 0.1;
        Unix.kill pid Sys.sigterm;
        Alcotest.(check string) "in-flight response survives SIGTERM"
          P.ok_unit (input_line cic);
        (match P.parse_response (input_line cic) with
         | Ok (P.Resp_ok (1, raw)) ->
           Alcotest.(check string) "queued response survives SIGTERM" "2"
             (P.payload_of raw)
         | _ -> Alcotest.fail "queued response lost");
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, Unix.WEXITED n -> Alcotest.failf "serve exited %d" n
        | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
          Alcotest.failf "serve killed by signal %d" n)
  end

(* ------------------------------------------------------------------ main *)

let () =
  Alcotest.run "server"
    [ ( "protocol",
        [ Alcotest.test_case "escaping" `Quick test_protocol_escaping;
          Alcotest.test_case "requests" `Quick test_protocol_requests;
          Alcotest.test_case "responses" `Quick test_protocol_responses ] );
      ( "watchdog",
        [ Alcotest.test_case "hysteresis" `Quick test_watchdog_hysteresis ] );
      ( "admission",
        [ Alcotest.test_case "bounded queue" `Quick test_admission_queue ] );
      ( "session",
        [ Alcotest.test_case "query parity" `Quick test_session_query_parity;
          Alcotest.test_case "unknown store" `Quick test_session_unknown_store;
          Alcotest.test_case "prepare/exec" `Quick test_session_prepare_exec;
          Alcotest.test_case "ceiling clamps wishes" `Quick
            test_session_ceiling_clamps;
          Alcotest.test_case "cancel in-flight" `Quick
            test_session_cancel_inflight;
          Alcotest.test_case "private stores" `Quick
            test_session_private_store ] );
      ( "wire",
        [ Alcotest.test_case "roundtrip parity" `Quick test_wire_roundtrip;
          Alcotest.test_case "error classes" `Quick test_wire_error_classes;
          Alcotest.test_case "prepare/exec/stores" `Quick
            test_wire_prepare_exec_and_stores;
          Alcotest.test_case "queue-full shed" `Quick
            test_wire_queue_full_shed;
          Alcotest.test_case "client-cap shed" `Quick
            test_wire_client_cap_shed;
          Alcotest.test_case "disconnect cancels" `Quick
            test_wire_disconnect_cancels;
          Alcotest.test_case "drain loses nothing" `Quick
            test_wire_drain_no_lost_responses;
          Alcotest.test_case "grace cancels stragglers" `Quick
            test_wire_drain_grace_cancels_stragglers ] );
      ( "bin/serve",
        [ Alcotest.test_case "SIGTERM drain" `Quick
            test_serve_sigterm_drain ] );
    ]
