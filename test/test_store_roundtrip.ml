(* The storage parity layer: the packed columnar store, the streaming
   chunked parser and the snapshot format are all *representation*
   changes — none may be observable through the accessor API, the query
   engine, or a save/load cycle. Six property families pin that down:

     1. accessor parity — packed and boxed builds of the same document
        agree row for row on all six accessors, over PRNG-generated
        documents (dictionary-friendly and dictionary-hostile name
        distributions), an XMark instance, and runtime-constructed
        fragments;
     2. snapshot identity — save -> load -> save is byte-identical,
        boxed and packed sources produce the same image, and a loaded
        store is accessor-identical to its source;
     3. chunk invariance — parsing through a reader at chunk sizes
        {1, 7, 64K, whole-document} yields a store byte-identical (as a
        snapshot) to the monolithic parse;
     4. engine parity — every corpus query returns identical serialized
        results on packed, boxed, and snapshot-loaded stores, across
        {boxed, physical} executors x {serial, jobs=4};
     5. corruption — truncations, bit flips, version/magic skew and
        trailing garbage all fail as clean dynamic errors and never
        surface a partially loaded store;
     6. compressed execution — the bulk [*_range] accessors agree row
        for row with the per-row accessors (packed, boxed, and across
        chunk seams), and query results under code-eval are
        byte-identical to the materialized reference path, dictionary
        or no dictionary. *)

module DS = Xmldb.Doc_store

(* ------------------------------------------------- random documents *)

(* A PRNG-driven XML generator. [names] controls dictionary pressure:
   a tiny vocabulary makes per-fragment dictionaries pay off, a large
   one makes the encoder reject them — both paths must stay invisible. *)
let gen_xml ~seed ~names ~max_children ~depth () =
  let rng = Basis.Prng.create seed in
  let name i = Printf.sprintf "n%d" i in
  let buf = Buffer.create 1024 in
  let rec element d =
    let tag = name (Basis.Prng.int rng names) in
    Buffer.add_char buf '<';
    Buffer.add_string buf tag;
    for _ = 1 to Basis.Prng.int rng 3 do
      Buffer.add_string buf
        (Printf.sprintf " a%d=\"v%d\"" (Basis.Prng.int rng names)
           (Basis.Prng.int rng 1000))
    done;
    if d = 0 || Basis.Prng.int rng 10 = 0 then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      for _ = 1 to 1 + Basis.Prng.int rng max_children do
        match Basis.Prng.int rng 10 with
        | 0 -> Buffer.add_string buf "<!--c-->"
        | 1 -> Buffer.add_string buf "<?pi data?>"
        | 2 | 3 | 4 ->
          Buffer.add_string buf
            (Printf.sprintf "t%d&amp;x" (Basis.Prng.int rng 500))
        | _ -> element (d - 1)
      done;
      Buffer.add_string buf "</";
      Buffer.add_string buf tag;
      Buffer.add_char buf '>'
    end
  in
  element depth;
  Buffer.contents buf

let sample_docs =
  lazy
    (let small = List.init 8 (fun i ->
         gen_xml ~seed:(100 + i) ~names:5 ~max_children:4 ~depth:5 ()) in
     let wide = List.init 4 (fun i ->
         gen_xml ~seed:(200 + i) ~names:400 ~max_children:8 ~depth:3 ()) in
     let fixed =
       [ "<a/>"; "<a b=\"c\"/>"; "<a><!--x--><?t d?><![CDATA[<raw>]]></a>" ]
     in
     small @ wide @ fixed)

let auction_xml = lazy (Xmark.Xmark_gen.generate ~scale:0.002 ())

let build packed xml =
  let st = DS.create ~packed () in
  ignore (Xmldb.Xml_parser.load_document st ~uri:"d.xml" xml);
  st

(* --------------------------------------------- 1. accessor parity *)

let check_frag_parity label fp fb =
  let n = DS.frag_length fp in
  Alcotest.(check int) (label ^ ": frag length") (DS.frag_length fb) n;
  for pre = 0 to n - 1 do
    let ctx what got want =
      if got <> want then
        Alcotest.failf "%s: %s at pre %d: packed %d, boxed %d" label what
          pre got want
    in
    ctx "kind"
      (Xmldb.Node_kind.to_int (DS.kind_at fp pre))
      (Xmldb.Node_kind.to_int (DS.kind_at fb pre));
    ctx "name" (DS.name_at fp pre) (DS.name_at fb pre);
    ctx "value" (DS.value_at fp pre) (DS.value_at fb pre);
    ctx "size" (DS.size_at fp pre) (DS.size_at fb pre);
    ctx "level" (DS.level_at fp pre) (DS.level_at fb pre);
    ctx "parent" (DS.parent_at fp pre) (DS.parent_at fb pre)
  done

let check_store_parity label sp sb =
  Alcotest.(check int) (label ^ ": n_frags") (DS.n_frags sb) (DS.n_frags sp);
  for fi = 0 to DS.n_frags sp - 1 do
    let lf = Printf.sprintf "%s frag %d" label fi in
    Alcotest.(check bool) (lf ^ " packed flag") true
      (DS.frag_packed (DS.frag sp fi));
    Alcotest.(check bool) (lf ^ " boxed flag") false
      (DS.frag_packed (DS.frag sb fi));
    check_frag_parity lf (DS.frag sp fi) (DS.frag sb fi)
  done

let test_accessor_parity_random () =
  List.iteri
    (fun i xml ->
       let label = Printf.sprintf "doc %d" i in
       let sp = build true xml and sb = build false xml in
       check_store_parity label sp sb;
       Alcotest.(check bool)
         (label ^ ": packed no larger than boxed")
         true
         (DS.encoded_bytes sp <= DS.encoded_bytes sb))
    (Lazy.force sample_docs)

let test_accessor_parity_xmark () =
  let xml = Lazy.force auction_xml in
  let sp = build true xml and sb = build false xml in
  check_store_parity "xmark" sp sb;
  (* the headline claim of the issue: at least 2x denser than boxed *)
  let ratio =
    float_of_int (DS.encoded_bytes sb) /. float_of_int (DS.encoded_bytes sp)
  in
  if ratio < 2.0 then
    Alcotest.failf "xmark compression ratio %.2f below 2x" ratio

(* Runtime node construction freezes fresh fragments through the same
   packing path; a constructor-heavy query must grow both stores
   identically. *)
let test_accessor_parity_constructed () =
  let xml = "<a><b x=\"1\">t</b><b x=\"2\">u</b></a>" in
  let q =
    {|for $b in doc("d.xml")/a/b
      return <r k="{$b/@x}"><copy>{$b}</copy><!--made--></r>|}
  in
  let sp = build true xml and sb = build false xml in
  let rp = (Engine.run sp q).Engine.serialized in
  let rb = (Engine.run sb q).Engine.serialized in
  Alcotest.(check string) "constructed results agree" rb rp;
  check_store_parity "constructed" sp sb

(* ------------------------------------------- 2. snapshot identity *)

let test_snapshot_roundtrip () =
  List.iteri
    (fun i xml ->
       let label = Printf.sprintf "doc %d" i in
       let st = build true xml in
       let s1 = DS.Snapshot.to_string st in
       let st2 = DS.Snapshot.of_string s1 in
       let s2 = DS.Snapshot.to_string st2 in
       Alcotest.(check bool) (label ^ ": save->load->save identical") true
         (String.equal s1 s2);
       for fi = 0 to DS.n_frags st2 - 1 do
         check_frag_parity (label ^ " loaded vs source") (DS.frag st2 fi)
           (DS.frag st fi)
       done;
       Alcotest.(check (list string))
         (label ^ ": document registry survives")
         (List.map fst (DS.documents st))
         (List.map fst (DS.documents st2)))
    (Lazy.force sample_docs)

let test_snapshot_boxed_source_identical () =
  List.iteri
    (fun i xml ->
       let sp = build true xml and sb = build false xml in
       Alcotest.(check bool)
         (Printf.sprintf "doc %d: boxed and packed sources save identically"
            i)
         true
         (String.equal (DS.Snapshot.to_string sp) (DS.Snapshot.to_string sb)))
    (Lazy.force sample_docs)

let test_snapshot_file_roundtrip () =
  let xml = Lazy.force auction_xml in
  let st = build true xml in
  let path = Filename.temp_file "xrq-roundtrip" ".xrqs" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       DS.Snapshot.save st path;
       let st2 = DS.Snapshot.load path in
       Alcotest.(check bool) "file round-trip identical" true
         (String.equal (DS.Snapshot.to_string st) (DS.Snapshot.to_string st2));
       (* a second save of the same store is byte-identical on disk *)
       let path2 = path ^ ".again" in
       Fun.protect
         ~finally:(fun () -> try Sys.remove path2 with Sys_error _ -> ())
         (fun () ->
            DS.Snapshot.save st path2;
            let slurp p =
              let ic = open_in_bin p in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            Alcotest.(check bool) "two saves byte-identical" true
              (String.equal (slurp path) (slurp path2))))

(* -------------------------------------------- 3. chunk invariance *)

let parse_chunked ?window st xml chunk =
  let pos = ref 0 in
  let reader b ofs len =
    let n = min (min len chunk) (String.length xml - !pos) in
    Bytes.blit_string xml !pos b ofs n;
    pos := !pos + n;
    n
  in
  ignore (Xmldb.Xml_parser.load_reader ?window st ~uri:"d.xml" reader)

let test_chunk_invariance () =
  let docs = Lazy.force sample_docs @ [ Lazy.force auction_xml ] in
  List.iteri
    (fun i xml ->
       let reference = DS.Snapshot.to_string (build true xml) in
       List.iter
         (fun chunk ->
            let chunk =
              if chunk = max_int then String.length xml else chunk
            in
            (* a window smaller than the default exercises compaction and
               growth; keep it tiny for the tiny chunks *)
            let window = if chunk <= 7 then 16 else 65536 in
            let st = DS.create ~packed:true () in
            parse_chunked ~window st xml chunk;
            Alcotest.(check bool)
              (Printf.sprintf "doc %d chunk %d byte-identical" i chunk)
              true
              (String.equal reference (DS.Snapshot.to_string st)))
         [ 1; 7; 65536; max_int ])
    docs

let test_chunk_invariance_load_file () =
  let xml = Lazy.force auction_xml in
  let reference = DS.Snapshot.to_string (build true xml) in
  let path = Filename.temp_file "xrq-chunk" ".xml" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let oc = open_out_bin path in
       output_string oc xml;
       close_out oc;
       List.iter
         (fun chunk_size ->
            let st = DS.create ~packed:true () in
            ignore
              (Xmldb.Xml_parser.load_file ~chunk_size st ~uri:"d.xml" path);
            Alcotest.(check bool)
              (Printf.sprintf "load_file chunk %d byte-identical" chunk_size)
              true
              (String.equal reference (DS.Snapshot.to_string st)))
         [ 512; 65536 ])

(* ----------------------------------------------- 4. engine parity *)

let queries_dir =
  if Sys.file_exists "../queries" then "../queries" else "queries"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus () =
  Sys.readdir queries_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".xq")
  |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat queries_dir f)))

let doc_xml = "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"

let mk_corpus_store packed =
  let st = DS.create ~packed () in
  let _ =
    Xmldb.Xml_parser.load_document st ~uri:"auction.xml"
      (Lazy.force auction_xml)
  in
  let _ = Xmldb.Xml_parser.load_document st ~uri:"t.xml" doc_xml in
  st

let configs =
  [ ("physical/serial", `On, 1);
    ("physical/jobs4", `On, 4);
    ("boxed/serial", `Off, 1);
    ("boxed/jobs4", `Off, 4) ]

let run_on st (physical, jobs) q =
  let opts = { Engine.default_opts with Engine.physical; jobs } in
  match Engine.run_result ~opts st q with
  | Ok r -> "ok: " ^ r.Engine.serialized
  | Error { Engine.kind; message } ->
    Basis.Err.kind_label kind ^ ": " ^ message

let test_corpus_parity () =
  (* three stores, one document: packed, boxed, and snapshot-loaded *)
  let sp = mk_corpus_store true in
  let sb = mk_corpus_store false in
  let sl = DS.Snapshot.of_string (DS.Snapshot.to_string sp) in
  List.iter
    (fun (file, text) ->
       List.iter
         (fun (cname, physical, jobs) ->
            let reference = run_on sb (physical, jobs) text in
            Alcotest.(check string)
              (Printf.sprintf "%s [%s] packed = boxed" file cname)
              reference
              (run_on sp (physical, jobs) text);
            Alcotest.(check string)
              (Printf.sprintf "%s [%s] loaded = boxed" file cname)
              reference
              (run_on sl (physical, jobs) text))
         configs)
    (corpus ())

(* ------------------------- 6. bulk accessors and the code-eval oracle *)

(* Every [*_range] decode must agree row for row with the per-row
   accessors — packed and boxed fragments alike — over empty, 1-row,
   interior, suffix and whole-column ranges, and each call must add
   exactly its row count to [Stats.bulk_decodes]. *)
let check_bulk_parity label f =
  let n = DS.frag_length f in
  if n > 0 then begin
    let ranges =
      [ (0, 0); (0, 1); (n - 1, n); (n / 3, min n ((2 * n / 3) + 1)); (0, n) ]
    in
    let kinds = Array.make n (DS.kind_at f 0) in
    let names = Array.make n 0 and values = Array.make n 0 in
    let sizes = Array.make n 0 and ncodes = Array.make n 0 in
    List.iter
      (fun (lo, hi) ->
         let len = hi - lo in
         let before = DS.Stats.bulk_decodes () in
         DS.kinds_range f lo hi kinds;
         DS.names_range f lo hi names;
         DS.values_range f lo hi values;
         DS.sizes_range f lo hi sizes;
         DS.name_codes_range f lo hi ncodes;
         for i = 0 to len - 1 do
           let pre = lo + i in
           let ck what got want =
             if got <> want then
               Alcotest.failf "%s [%d,%d): %s at pre %d: bulk %d, row %d"
                 label lo hi what pre got want
           in
           ck "kind"
             (Xmldb.Node_kind.to_int kinds.(i))
             (Xmldb.Node_kind.to_int (DS.kind_at f pre));
           ck "name" names.(i) (DS.name_at f pre);
           ck "value" values.(i) (DS.value_at f pre);
           ck "size" sizes.(i) (DS.size_at f pre);
           ck "name code" ncodes.(i) (DS.name_code_at f pre)
         done;
         let counted = DS.Stats.bulk_decodes () - before in
         if counted <> 5 * len then
           Alcotest.failf "%s [%d,%d): bulk_decodes counted %d, want %d"
             label lo hi counted (5 * len))
      ranges
  end

let test_bulk_accessor_parity () =
  let docs = Lazy.force sample_docs @ [ Lazy.force auction_xml ] in
  List.iteri
    (fun i xml ->
       List.iter
         (fun packed ->
            let st = build packed xml in
            for fi = 0 to DS.n_frags st - 1 do
              check_bulk_parity
                (Printf.sprintf "doc %d %s frag %d" i
                   (if packed then "packed" else "boxed")
                   fi)
                (DS.frag st fi)
            done)
         [ true; false ])
    docs

(* A tiny parse window forces multi-chunk packed columns, so the
   whole-column range crosses chunk seams. *)
let test_bulk_accessor_parity_chunked () =
  List.iteri
    (fun i xml ->
       let st = DS.create ~packed:true () in
       parse_chunked ~window:16 st xml 7;
       for fi = 0 to DS.n_frags st - 1 do
         check_bulk_parity
           (Printf.sprintf "chunked doc %d frag %d" i fi)
           (DS.frag st fi)
       done)
    [ List.nth (Lazy.force sample_docs) 0; Lazy.force auction_xml ]

(* The code-eval oracle: compressed execution (code-carrying columns,
   code-translated predicates, batched steps) must be byte-identical to
   the materialized reference path — over the whole query corpus and
   over equality shapes chosen to hit every translation case (match,
   no-match, a string the dictionary has never seen, the empty string,
   ne). Boxed stores present the identity coding and dictionary-hostile
   documents make the encoder reject per-fragment dictionaries; both
   fallbacks must stay invisible too. *)
let run_with opts st q =
  match Engine.run_result ~opts st q with
  | Ok r -> "ok: " ^ r.Engine.serialized
  | Error { Engine.kind; message } ->
    Basis.Err.kind_label kind ^ ": " ^ message

let code_eval_off = { Engine.default_opts with Engine.code_eval = false }

let eq_queries =
  [ ("text eq hit",
     {|count(for $e in doc("auction.xml")//profile/education
            where $e/text() eq "Graduate School" return $e)|});
    ("attr eq hit",
     {|count(for $t in doc("auction.xml")//closed_auction
            where $t/seller/@person eq "person0" return $t)|});
    ("eq absent string",
     {|count(for $e in doc("auction.xml")//profile/education
            where $e/text() eq "No Such Degree Anywhere" return $e)|});
    ("eq empty string",
     {|count(for $e in doc("auction.xml")//profile/education
            where $e/text() eq "" return $e)|});
    ("ne",
     {|count(for $e in doc("auction.xml")//profile/education
            where $e/text() ne "College" return $e)|}) ]

let test_code_eval_oracle_corpus () =
  let sp = mk_corpus_store true and sb = mk_corpus_store false in
  List.iter
    (fun (file, text) ->
       let want = run_with code_eval_off sp text in
       Alcotest.(check string)
         (Printf.sprintf "%s: code-eval on = off (packed)" file)
         want
         (run_with Engine.default_opts sp text);
       Alcotest.(check string)
         (Printf.sprintf "%s: code-eval on, boxed = off, packed" file)
         want
         (run_with Engine.default_opts sb text))
    (corpus ())

let test_code_eval_oracle_eq_shapes () =
  let sp = mk_corpus_store true and sb = mk_corpus_store false in
  List.iter
    (fun (name, q) ->
       let want = run_with code_eval_off sp q in
       Alcotest.(check string) (name ^ ": on = off, packed") want
         (run_with Engine.default_opts sp q);
       Alcotest.(check string) (name ^ ": on = off, boxed") want
         (run_with Engine.default_opts sb q))
    eq_queries;
  (* and the translated predicate really runs as a code compare on the
     packed store: the profile must say so for the hit queries *)
  let r =
    Engine.run ~opts:Engine.default_opts ~with_profile:true sp
      (List.assoc "attr eq hit" eq_queries)
  in
  match r.Engine.profile with
  | None -> Alcotest.fail "profile missing"
  | Some p ->
    let ph = Algebra.Profile.phys p in
    if ph.Algebra.Profile.code_preds <= 0 then
      Alcotest.fail "packed store: equality never ran on dictionary codes"

(* Dictionary-hostile vocabulary: the encoder rejects per-fragment
   dictionaries, [code_of_text] returns [None], and the predicate falls
   back — results must not move. *)
let test_code_eval_oracle_hostile () =
  let xml = gen_xml ~seed:42 ~names:400 ~max_children:8 ~depth:3 () in
  let queries =
    [ {|count(for $e in doc("d.xml")//* where $e/@a1 eq "v5" return $e)|};
      {|count(for $e in doc("d.xml")//* where $e/@a1 ne "v5" return $e)|};
      {|count(for $e in doc("d.xml")//* where $e/@a1 eq "" return $e)|} ]
  in
  List.iter
    (fun packed ->
       let st = build packed xml in
       List.iter
         (fun q ->
            Alcotest.(check string)
              (Printf.sprintf "hostile %s: on = off"
                 (if packed then "packed" else "boxed"))
              (run_with code_eval_off st q)
              (run_with Engine.default_opts st q))
         queries)
    [ true; false ]

(* --------------------------------------------------- 5. corruption *)

let expect_dynamic label thunk =
  match Basis.Err.protect_kind thunk with
  | Ok _ -> Alcotest.failf "%s: corrupt snapshot loaded successfully" label
  | Error (Basis.Err.Dynamic, msg) ->
    if not (String.length msg >= 16 && String.sub msg 0 16 = "corrupt snapshot")
    then Alcotest.failf "%s: unexpected message %S" label msg
  | Error (k, msg) ->
    Alcotest.failf "%s: wrong error class %s: %s" label
      (Basis.Err.kind_label k) msg

let test_corrupt_truncations () =
  let st = build true (List.nth (Lazy.force sample_docs) 0) in
  let s = DS.Snapshot.to_string st in
  let n = String.length s in
  List.iter
    (fun k ->
       let k = min k (n - 1) in
       expect_dynamic
         (Printf.sprintf "truncated to %d" k)
         (fun () -> DS.Snapshot.of_string (String.sub s 0 k)))
    [ 0; 3; 8; 11; n / 4; n / 2; n - 1 ]

let test_corrupt_bitflips () =
  let st = build true (List.nth (Lazy.force sample_docs) 0) in
  let s = DS.Snapshot.to_string st in
  let n = String.length s in
  let step = max 1 (n / 97) in
  let pos = ref 0 in
  while !pos < n do
    let b = Bytes.of_string s in
    Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0x40));
    (match Basis.Err.protect_kind (fun () ->
         DS.Snapshot.of_string (Bytes.to_string b)) with
     | Error (Basis.Err.Dynamic, _) -> ()
     | Error (k, msg) ->
       Alcotest.failf "flip at %d: wrong error class %s: %s" !pos
         (Basis.Err.kind_label k) msg
     | Ok st' ->
       (* a flip inside pool *string payloads* changes content the CRC
          protects — any successful load is a checksum hole *)
       ignore st';
       Alcotest.failf "flip at %d loaded successfully" !pos);
    pos := !pos + step
  done

let test_corrupt_version_and_magic () =
  let st = build true "<a/>" in
  let s = DS.Snapshot.to_string st in
  let with_byte i c =
    let b = Bytes.of_string s in
    Bytes.set b i c;
    Bytes.to_string b
  in
  (* bytes 0-7 are the magic, 8-11 the little-endian version *)
  expect_dynamic "bad magic" (fun () ->
      DS.Snapshot.of_string (with_byte 0 'Y'));
  expect_dynamic "future version" (fun () ->
      DS.Snapshot.of_string (with_byte 8 '\xFF'));
  expect_dynamic "trailing garbage" (fun () ->
      DS.Snapshot.of_string (s ^ "junk"));
  expect_dynamic "empty input" (fun () -> DS.Snapshot.of_string "")

let test_corrupt_missing_file () =
  match
    Basis.Err.protect_kind (fun () ->
        DS.Snapshot.load "/nonexistent/xrq-no-such-file.xrqs")
  with
  | Ok _ -> Alcotest.fail "load of missing file succeeded"
  | Error (Basis.Err.Dynamic, _) -> ()
  | Error (k, msg) ->
    Alcotest.failf "missing file: wrong error class %s: %s"
      (Basis.Err.kind_label k) msg

let () =
  Alcotest.run "store-roundtrip"
    [ ("1. accessor parity packed vs boxed",
       [ Alcotest.test_case "random documents" `Quick
           test_accessor_parity_random;
         Alcotest.test_case "xmark instance (and the 2x bar)" `Quick
           test_accessor_parity_xmark;
         Alcotest.test_case "runtime-constructed fragments" `Quick
           test_accessor_parity_constructed ]);
      ("2. snapshot identity",
       [ Alcotest.test_case "save -> load -> save byte-identical" `Quick
           test_snapshot_roundtrip;
         Alcotest.test_case "boxed source saves identically" `Quick
           test_snapshot_boxed_source_identical;
         Alcotest.test_case "file round-trip + deterministic save" `Quick
           test_snapshot_file_roundtrip ]);
      ("3. chunk invariance",
       [ Alcotest.test_case "reader chunks {1,7,64K,whole}" `Quick
           test_chunk_invariance;
         Alcotest.test_case "load_file chunk sizes" `Quick
           test_chunk_invariance_load_file ]);
      ("4. engine parity across stores",
       [ Alcotest.test_case "corpus x configs, packed/boxed/loaded" `Slow
           test_corpus_parity ]);
      ("6. bulk accessors and the code-eval oracle",
       [ Alcotest.test_case "bulk range = per-row, packed and boxed" `Quick
           test_bulk_accessor_parity;
         Alcotest.test_case "bulk ranges across chunk seams" `Quick
           test_bulk_accessor_parity_chunked;
         Alcotest.test_case "code-eval on = off over the corpus" `Slow
           test_code_eval_oracle_corpus;
         Alcotest.test_case "equality shapes (hit/miss/empty/ne)" `Quick
           test_code_eval_oracle_eq_shapes;
         Alcotest.test_case "dictionary-hostile fallback" `Quick
           test_code_eval_oracle_hostile ]);
      ("5. corruption is a clean dynamic error",
       [ Alcotest.test_case "truncations" `Quick test_corrupt_truncations;
         Alcotest.test_case "bit flips" `Quick test_corrupt_bitflips;
         Alcotest.test_case "version, magic, trailing, empty" `Quick
           test_corrupt_version_and_magic;
         Alcotest.test_case "missing file" `Quick test_corrupt_missing_file ])
    ]
