(* xrquy — the command-line front end.

     xrquy run   [-d uri=file.xml ...] [-q query.xq | -e expr] [options]
     xrquy plan  [-e expr | -q file] [options]     print the algebra plan
     xrquy xmark [--scale f] [--query Qn] [options] run XMark queries
     xrquy gen   [--scale f] [-o out.xml]           generate an XMark doc

   Options shared by run/plan/xmark:
     --mode ordered|unordered    force the ordering mode
     --no-rules                  disable the Figure-7 rules (baseline)
     --no-cda                    disable column dependency analysis
     --no-rewrite                disable the logical rewriter
     --no-order-props            disable ordering-property reasoning
                                 (sort elision, root-sort skip, merges)
     --no-join-isolation         disable join-graph isolation (the
                                 where-past-lets slide and the semijoin/
                                 antijoin synthesis rules)
     --no-hoist                  disable loop-invariant hoisting
     --interpret                 use the reference interpreter
     --profile                   print the per-bucket execution profile
     --dot                       print plans as Graphviz dot

   Parallelism (run/xmark):
     --jobs N                    morsel-parallel physical execution on N
                                 domains (default: XRQ_JOBS, else 1)
     --no-parallel               force serial execution

   Resource governance (run/xmark):
     --timeout S                 wall-clock deadline per query, in seconds
     --max-rows N                cumulative materialized-row budget
     --max-bytes N               cumulative estimated-byte budget
     --max-ops N                 operator-evaluation budget
     --no-fallback               fail instead of degrading to the
                                 interpreter on internal errors

   Plan sharing and the prepared-plan cache (run/xmark):
     --tree-eval                 sharing-oblivious tree evaluation
     --plan-cache N              prepared-plan LRU capacity (default 64)
     --no-plan-cache             disable the prepared-plan cache
     --repeat K                  (xmark) run each query K times
   Cache hit/miss/eviction counters are printed to stderr after the run;
   `plan` prints each plan's DAG-vs-tree node counts (sharing factor).

   Every command exits 0 on success, or with the error taxonomy's code:
   1 dynamic, 2 static (incl. parse errors), 3 resource, 4 internal. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------------------------------------------------- common args *)

let docs_arg =
  let doc = "Load an XML document and register it as URI (uri=path)." in
  Arg.(value & opt_all string [] & info [ "d"; "doc" ] ~docv:"URI=FILE" ~doc)

let query_file_arg =
  let doc = "Read the query from $(docv)." in
  Arg.(value & opt (some string) None & info [ "q"; "query-file" ] ~docv:"FILE" ~doc)

let expr_arg =
  let doc = "The query text itself." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let mode_arg =
  let doc = "Force the ordering mode (overrides the query prolog)." in
  Arg.(value & opt (some (enum [ ("ordered", Xquery.Ast.Ordered);
                                 ("unordered", Xquery.Ast.Unordered) ])) None
       & info [ "mode" ] ~docv:"MODE" ~doc)

let no_rules_arg =
  Arg.(value & flag & info [ "no-rules" ]
         ~doc:"Disable the order-indifference compilation rules \
               (FN:UNORDERED, LOC#, BIND#).")

let no_cda_arg =
  Arg.(value & flag & info [ "no-cda" ]
         ~doc:"Disable column dependency analysis and plan simplification.")

let no_hoist_arg =
  Arg.(value & flag & info [ "no-hoist" ] ~doc:"Disable loop-invariant hoisting.")

let interpret_arg =
  Arg.(value & flag & info [ "interpret" ]
         ~doc:"Evaluate with the reference tree-walking interpreter.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ] ~doc:"Print the execution profile.")

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Print plans in Graphviz dot syntax.")

let no_rewrite_arg =
  Arg.(value & flag & info [ "no-rewrite" ]
         ~doc:"Disable the logical rewriter (selection/function pushdown,                join synthesis over cross products, order-insensitive join                reassociation, cardinality-driven join input ordering).")

let no_order_props_arg =
  Arg.(value & flag & info [ "no-order-props" ]
         ~doc:"Disable ordering-property reasoning: no sort elision, no \
               root-sort-on-pos skip, no merge-degraded sorts. Results \
               are identical either way; plans keep every sort.")

let no_code_eval_arg =
  Arg.(value & flag & info [ "no-code-eval" ]
         ~doc:"Disable compressed execution in the physical backend: no \
               batched staircase scans over bulk-decoded packed columns, \
               no dictionary-code columns, no integer-coded equality \
               predicates. Results are bit-identical either way; this is \
               the materialized reference path benchmarks compare \
               against.")

let no_joinrec_arg =
  Arg.(value & flag & info [ "no-joinrec" ]
         ~doc:"Disable FLWOR where-clause value-join recognition.")

let no_join_isolation_arg =
  Arg.(value & flag & info [ "no-join-isolation" ]
         ~doc:"Disable join-graph isolation: no where-past-lets slide at \
               compile time, no semijoin/antijoin synthesis from the \
               existential count-then-filter scaffolds. Results are \
               identical either way.")

let no_physical_arg =
  Arg.(value & flag & info [ "no-physical" ]
         ~doc:"Execute plans with the boxed logical executor instead of \
               the physical layer (typed columns, selection vectors, \
               fused kernels). Results are identical; this is the \
               differential/debugging path.")

let tag_index_arg =
  Arg.(value & flag & info [ "tag-index" ]
         ~doc:"Evaluate steps with TwigStack-style tag-indexed element                streams instead of the staircase scan.")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"S"
           ~doc:"Abort the query after $(docv) seconds (exit code 3).")

let max_rows_arg =
  Arg.(value & opt (some int) None
       & info [ "max-rows" ] ~docv:"N"
           ~doc:"Abort after materializing $(docv) rows across all operators.")

let max_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "max-bytes" ] ~docv:"N"
           ~doc:"Abort after materializing an estimated $(docv) bytes.")

let max_ops_arg =
  Arg.(value & opt (some int) None
       & info [ "max-ops" ] ~docv:"N"
           ~doc:"Abort after $(docv) operator evaluations.")

let no_fallback_arg =
  Arg.(value & flag & info [ "no-fallback" ]
         ~doc:"Disable graceful degradation: report internal errors of the \
               compiled backend instead of retrying on the interpreter.")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Execute order-indifferent physical kernels on $(docv) \
                 domains (morsel-driven parallelism). Results, errors and \
                 profile counters are identical to serial execution. \
                 Default: the XRQ_JOBS environment variable, else 1.")

let no_parallel_arg =
  Arg.(value & flag & info [ "no-parallel" ]
         ~doc:"Force serial execution (equivalent to --jobs 1; overrides \
               --jobs and XRQ_JOBS).")

let tree_eval_arg =
  Arg.(value & flag & info [ "tree-eval" ]
         ~doc:"Evaluate plans as trees, re-computing shared subplans at \
               every reference (the sharing-oblivious cost model; results \
               are identical to the default DAG evaluation).")

let plan_cache_arg =
  Arg.(value & opt int 64
       & info [ "plan-cache" ] ~docv:"N"
           ~doc:"Capacity of the prepared-plan LRU cache (default 64): \
                 repeated queries skip parse, compile and optimize.")

let no_plan_cache_arg =
  Arg.(value & flag & info [ "no-plan-cache" ]
         ~doc:"Disable the prepared-plan cache.")

let mk_cache ~plan_cache ~no_plan_cache =
  if no_plan_cache || plan_cache <= 0 then None
  else Some (Engine.create_cache ~capacity:plan_cache ())

let report_cache_stats cache =
  Option.iter
    (fun c ->
       Printf.eprintf "plan cache: %s\n"
         (Engine.Plan_cache.stats_to_string (Engine.cache_stats c)))
    cache

let budget_spec timeout_s max_rows max_bytes max_ops =
  match (timeout_s, max_rows, max_bytes, max_ops) with
  | None, None, None, None -> None
  | _ ->
    Some
      { Basis.Budget.unlimited with
        Basis.Budget.timeout_s; max_rows; max_bytes; max_ops }

let mk_opts ?(no_joinrec = false) ?(no_join_isolation = false) ?budget
    ?(no_fallback = false) ?(tree_eval = false) ?(no_physical = false) ?jobs
    ?(no_parallel = false) ?(no_rewrite = false) ?(no_order_props = false)
    ?(no_code_eval = false) mode no_rules no_cda no_hoist interpret tag_index =
  { Engine.mode;
    unordered_rules = not no_rules;
    cda = not no_cda;
    hoist = not no_hoist;
    backend = (if interpret then Engine.Interpreted else Engine.Compiled);
    step_impl =
      (if tag_index then Algebra.Eval.Tag_index else Algebra.Eval.Scan);
    eval_mode = (if tree_eval then Algebra.Eval.Tree else Algebra.Eval.Dag);
    physical = (if no_physical then `Off else `On);
    join_rec = not no_joinrec;
    join_isolation = not no_join_isolation;
    budget;
    fallback = not no_fallback;
    jobs =
      (if no_parallel then 1
       else
         match jobs with
         | Some j -> max 1 j
         | None -> Engine.default_opts.Engine.jobs);
    rewrite = not no_rewrite;
    order_props = not no_order_props;
    code_eval = not no_code_eval }

let load_documents store specs =
  List.iter
    (fun spec ->
       match String.index_opt spec '=' with
       | Some i ->
         let uri = String.sub spec 0 i in
         let path = String.sub spec (i + 1) (String.length spec - i - 1) in
         ignore (Xmldb.Xml_parser.load_file store ~uri path)
       | None ->
         ignore (Xmldb.Xml_parser.load_file store ~uri:(Filename.basename spec) spec))
    specs

let query_text query_file expr =
  match (query_file, expr) with
  | Some f, _ -> read_file f
  | None, Some e -> e
  | None, None -> Basis.Err.static "no query given (positional QUERY or -q FILE)"

(* One readable line per failure, one exit code per error class:
   1 dynamic, 2 static, 3 resource, 4 internal. *)
let handle f =
  match f () with
  | () -> 0
  | exception e ->
    (match Engine.classify_error e with
     | Some { Engine.kind; message } ->
       Printf.eprintf "xrquy: %s error: %s\n" (Basis.Err.kind_label kind)
         message;
       Basis.Err.exit_code kind
     | None ->
       (match e with
        | Sys_error m ->
          (* missing query/document file and friends: the user's input *)
          Printf.eprintf "xrquy: static error: %s\n" m;
          Basis.Err.exit_code Basis.Err.Static
        | Failure m ->
          Printf.eprintf "xrquy: internal error: %s\n" m;
          Basis.Err.exit_code Basis.Err.Internal
        | e -> raise e))

let report_degraded r =
  match r.Engine.degraded with
  | Some reason -> Printf.eprintf "xrquy: degraded: %s\n" reason
  | None -> ()

(* ----------------------------------------------------------------- run *)

let run_cmd =
  let action docs qf expr mode no_rules no_cda no_hoist interpret profile
      tag_index no_joinrec no_join_isolation timeout max_rows max_bytes
      max_ops no_fallback tree_eval no_physical jobs no_parallel plan_cache
      no_plan_cache no_rewrite no_order_props no_code_eval =
    handle (fun () ->
        let store = Xmldb.Doc_store.create () in
        load_documents store docs;
        let budget = budget_spec timeout max_rows max_bytes max_ops in
        let opts =
          mk_opts ~no_joinrec ~no_join_isolation ?budget ~no_fallback
            ~tree_eval ~no_physical ?jobs ~no_parallel ~no_rewrite
            ~no_order_props ~no_code_eval mode no_rules no_cda no_hoist
            interpret tag_index
        in
        let cache = mk_cache ~plan_cache ~no_plan_cache in
        let r =
          Engine.run ?cache ~opts ~with_profile:profile store
            (query_text qf expr)
        in
        print_endline r.Engine.serialized;
        report_degraded r;
        (match r.Engine.profile with
         | Some p ->
           prerr_newline ();
           prerr_string (Algebra.Profile.to_string p)
         | None -> ());
        report_cache_stats cache;
        Printf.eprintf "-- %d items, %.1f ms\n" (List.length r.Engine.items)
          (r.Engine.wall_seconds *. 1000.0))
  in
  Cmd.v (Cmd.info "run" ~doc:"Evaluate an XQuery expression")
    Term.(const action $ docs_arg $ query_file_arg $ expr_arg $ mode_arg
          $ no_rules_arg $ no_cda_arg $ no_hoist_arg $ interpret_arg
          $ profile_arg $ tag_index_arg $ no_joinrec_arg
          $ no_join_isolation_arg $ timeout_arg $ max_rows_arg
          $ max_bytes_arg $ max_ops_arg $ no_fallback_arg $ tree_eval_arg
          $ no_physical_arg $ jobs_arg $ no_parallel_arg $ plan_cache_arg
          $ no_plan_cache_arg $ no_rewrite_arg $ no_order_props_arg
          $ no_code_eval_arg)

(* ---------------------------------------------------------------- plan *)

(* Per-node property note for the plan dump: constant, dense and key
   columns as inferred by Exrquy.Properties, plus the guaranteed sort
   orders from the ordering analysis (Algebra.Order). Dense implies key,
   so a dense column is reported once, under "dense". *)
let props_annot ?ord hints n =
  let module P = Exrquy.Properties in
  let p = P.props hints n in
  let set name s skip =
    let s = P.SSet.diff s skip in
    if P.SSet.is_empty s then []
    else [ Printf.sprintf "%s:%s" name (String.concat "," (P.SSet.elements s)) ]
  in
  let consts = P.SSet.of_list (List.map fst (P.SMap.bindings p.P.consts)) in
  let ordering =
    match ord with
    | None -> []
    | Some a -> (
      match Algebra.Order.annotate a n with "" -> [] | s -> [ s ])
  in
  let parts =
    set "const" consts P.SSet.empty
    @ set "dense" p.P.dense P.SSet.empty
    @ set "key" p.P.keys p.P.dense
    @ ordering
  in
  if parts = [] then None
  else Some ("(" ^ String.concat " " parts ^ ")")

let plan_cmd =
  let action docs qf expr mode no_rules no_cda no_hoist dot no_physical
      no_rewrite no_order_props no_join_isolation =
    handle (fun () ->
        (* documents are loaded only for their statistics: the rewriter's
           and the lowerer's cost decisions (join sides) *)
        let stats =
          if docs = [] then None
          else begin
            let store = Xmldb.Doc_store.create () in
            load_documents store docs;
            Some (Engine.stats_of_store store)
          end
        in
        let opts =
          mk_opts ~no_join_isolation ~no_physical ~no_rewrite
            ~no_order_props mode no_rules no_cda no_hoist false false
        in
        let a = Engine.analyze ~opts ?stats (query_text qf expr) in
        let raw = a.Engine.araw and optimized = a.Engine.aoptimized in
        let render p =
          if dot then Algebra.Plan_pp.to_dot p
          else
            let hints = Exrquy.Properties.infer p in
            let ord =
              if no_order_props then None else Some (Algebra.Order.make ())
            in
            Algebra.Plan_pp.to_tree ~annot:(props_annot ?ord hints) p
        in
        let sharing p =
          Printf.sprintf "%d DAG nodes, %d as a tree (sharing factor %.2f)"
            (Algebra.Plan.count_ops p) (Algebra.Plan.count_tree_nodes p)
            (Algebra.Plan.sharing_factor p)
        in
        Printf.printf "-- emitted plan: %s\n-- sharing: %s\n%s\n"
          (Algebra.Plan_pp.summary raw) (sharing raw)
          (if opts.Engine.cda then "" else render raw);
        if opts.Engine.cda then begin
          Printf.printf "-- after column dependency analysis: %s\n"
            (Algebra.Plan_pp.summary optimized);
          Printf.printf "-- sharing: %s\n" (sharing optimized)
        end;
        if opts.Engine.rewrite then begin
          let rs = a.Engine.arewrite in
          Printf.printf "-- rewriter: %d fires in %d rounds, %d -> %d operators\n"
            (Algebra.Rewrite.total_fires rs) rs.Algebra.Rewrite.rounds
            rs.Algebra.Rewrite.ops_before rs.Algebra.Rewrite.ops_after;
          List.iter
            (fun (rule, k) -> Printf.printf "--   %-18s %d\n" rule k)
            rs.Algebra.Rewrite.fires
        end;
        Printf.printf "-- join graph: %s\n"
          (Algebra.Joingraph.summary_to_string
             (Algebra.Joingraph.summary optimized));
        if opts.Engine.cda then print_string (render optimized);
        if (not no_physical) && not dot then begin
          let pp =
            Engine.lower_physical ?stats ~order_props:(not no_order_props)
              optimized
          in
          Printf.printf
            "-- physical plan: %d kernels covering %d logical ops, \
             %d parallelizable (\xE2\x88\xA5)\n"
            (Algebra.Lower.count_kernels pp)
            (Algebra.Lower.count_covered pp)
            (Algebra.Lower.count_parallel pp);
          print_string (Algebra.Lower.to_string pp)
        end)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Compile a query and print its algebra plan")
    Term.(const action $ docs_arg $ query_file_arg $ expr_arg $ mode_arg
          $ no_rules_arg $ no_cda_arg $ no_hoist_arg $ dot_arg
          $ no_physical_arg $ no_rewrite_arg $ no_order_props_arg
          $ no_join_isolation_arg)

(* --------------------------------------------------------------- xmark *)

let scale_arg =
  Arg.(value & opt float 0.01
       & info [ "scale" ] ~docv:"F" ~doc:"XMark scale factor (f = 1 is ~25k persons).")

let xmark_query_arg =
  Arg.(value & opt (some string) None
       & info [ "query" ] ~docv:"QN" ~doc:"Run a single XMark query (Q1..Q20).")

let repeat_arg =
  Arg.(value & opt int 1
       & info [ "repeat" ] ~docv:"K"
           ~doc:"Run each query $(docv) times (exercises the plan cache).")

let xmark_cmd =
  let action scale qname mode no_rules no_cda no_hoist interpret profile
      tag_index timeout max_rows max_bytes max_ops no_fallback tree_eval
      no_physical jobs no_parallel plan_cache no_plan_cache repeat
      no_rewrite no_order_props no_join_isolation no_code_eval =
    handle (fun () ->
        let store = Xmldb.Doc_store.create () in
        let _, bytes = Xmark.Xmark_gen.load ~scale store in
        Printf.eprintf "auction.xml: %.2f MB, %d nodes\n"
          (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes store);
        let budget = budget_spec timeout max_rows max_bytes max_ops in
        let opts =
          mk_opts ~no_join_isolation ?budget ~no_fallback ~tree_eval
            ~no_physical ?jobs ~no_parallel ~no_rewrite ~no_order_props
            ~no_code_eval mode no_rules no_cda no_hoist interpret tag_index
        in
        let cache = mk_cache ~plan_cache ~no_plan_cache in
        let queries =
          match qname with
          | Some n -> [ (n, Xmark.Xmark_queries.get n) ]
          | None -> Xmark.Xmark_queries.all
        in
        for _ = 1 to max 1 repeat do
          List.iter
            (fun (n, q) ->
               let r = Engine.run ?cache ~opts ~with_profile:profile store q in
               Printf.printf "%-4s %6d items %10.1f ms\n%!" n
                 (List.length r.Engine.items) (r.Engine.wall_seconds *. 1000.0);
               report_degraded r;
               match r.Engine.profile with
               | Some p -> print_string (Algebra.Profile.to_string p)
               | None -> ())
            queries
        done;
        report_cache_stats cache)
  in
  Cmd.v (Cmd.info "xmark" ~doc:"Run XMark benchmark queries on a generated instance")
    Term.(const action $ scale_arg $ xmark_query_arg $ mode_arg $ no_rules_arg
          $ no_cda_arg $ no_hoist_arg $ interpret_arg $ profile_arg
          $ tag_index_arg $ timeout_arg $ max_rows_arg $ max_bytes_arg
          $ max_ops_arg $ no_fallback_arg $ tree_eval_arg $ no_physical_arg
          $ jobs_arg $ no_parallel_arg $ plan_cache_arg $ no_plan_cache_arg
          $ repeat_arg $ no_rewrite_arg $ no_order_props_arg
          $ no_join_isolation_arg $ no_code_eval_arg)

(* ----------------------------------------------------------------- gen *)

let gen_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) (default stdout).")
  in
  let action scale out =
    handle (fun () ->
        let src = Xmark.Xmark_gen.generate ~scale () in
        match out with
        | None -> print_string src
        | Some path ->
          let oc = open_out_bin path in
          output_string oc src;
          close_out oc;
          Printf.eprintf "wrote %d bytes to %s\n" (String.length src) path)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate an XMark auction.xml instance")
    Term.(const action $ scale_arg $ out_arg)

(* --------------------------------------------------------------- store *)

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

let store_stats_line store =
  Printf.sprintf "%d documents, %d nodes, %d table bytes"
    (List.length (Xmldb.Doc_store.documents store))
    (Xmldb.Doc_store.total_nodes store)
    (Xmldb.Doc_store.encoded_bytes store)

let store_save_cmd =
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the snapshot to $(docv).")
  in
  let xmark_arg =
    Arg.(value & opt (some float) None
         & info [ "xmark" ] ~docv:"F"
             ~doc:"Also load a generated XMark instance at scale $(docv), \
                   registered as auction.xml.")
  in
  let action docs xmark_scale out =
    handle (fun () ->
        let store = Xmldb.Doc_store.create () in
        load_documents store docs;
        (match xmark_scale with
         | Some scale -> ignore (Xmark.Xmark_gen.load ~scale store)
         | None -> ());
        if Xmldb.Doc_store.documents store = [] then
          Basis.Err.static "nothing to save (give -d uri=file and/or --xmark F)";
        Xmldb.Doc_store.Snapshot.save store out;
        Printf.eprintf "snapshot v%d: %s -> %s (%d bytes)\n"
          Xmldb.Doc_store.Snapshot.format_version (store_stats_line store) out
          (file_size out))
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:"Build a store from documents and write a versioned snapshot")
    Term.(const action $ docs_arg $ xmark_arg $ out_arg)

let store_load_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"The snapshot file to load.")
  in
  let expr_opt_arg =
    Arg.(value & opt (some string) None
         & info [ "e"; "expr" ] ~docv:"QUERY" ~doc:"The query text itself.")
  in
  let action file qf expr mode interpret profile no_physical jobs
      no_code_eval =
    handle (fun () ->
        let store = Xmldb.Doc_store.Snapshot.load file in
        Printf.eprintf "loaded %s: %s\n" file (store_stats_line store);
        match (qf, expr) with
        | None, None ->
          List.iter
            (fun (uri, _) -> print_endline uri)
            (Xmldb.Doc_store.documents store)
        | _ ->
          let opts =
            mk_opts ~no_physical ?jobs ~no_code_eval mode false false false
              interpret false
          in
          let r =
            Engine.run ~opts ~with_profile:profile store (query_text qf expr)
          in
          print_endline r.Engine.serialized;
          report_degraded r;
          (match r.Engine.profile with
           | Some p ->
             prerr_newline ();
             prerr_string (Algebra.Profile.to_string p)
           | None -> ());
          Printf.eprintf "-- %d items, %.1f ms\n" (List.length r.Engine.items)
            (r.Engine.wall_seconds *. 1000.0))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Load a snapshot; list its documents or evaluate a query on it")
    Term.(const action $ file_arg $ query_file_arg $ expr_opt_arg $ mode_arg
          $ interpret_arg $ profile_arg $ no_physical_arg $ jobs_arg
          $ no_code_eval_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Save and load encoded document-store snapshots")
    [ store_save_cmd; store_load_cmd ]

let () =
  let info =
    Cmd.info "xrquy" ~version:"1.0.0"
      ~doc:"Order indifference in XQuery: a relational XQuery engine"
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ run_cmd; plan_cmd; xmark_cmd; gen_cmd; store_cmd ]))
