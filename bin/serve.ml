(* serve — the query-serving daemon over persistently loaded documents.

     serve [-d uri=file.xml ...] [--xmark F] [--port P] [options]

   Documents given with -d are loaded once, at startup, into the shared
   store "main"; --xmark adds a generated XMark instance as the store
   "xmark" (document URI auction.xml). Clients speak the line protocol of
   lib/server/protocol.mli; each session starts on the first loaded store
   and may switch with U.

   Robustness knobs mirror Server.config: a bounded admission queue with
   explicit shedding (--queue-cap), a per-client in-flight cap
   (--client-cap), a per-request budget ceiling (--timeout, --max-rows,
   --max-bytes, --max-ops) that
   clamps client deadline wishes, and the overload watchdog that degrades
   query parallelism to serial under sustained domain-pool contention.

   SIGTERM and SIGINT drain gracefully: stop admitting, finish (or after
   --grace seconds budget-cancel) in-flight work, flush every admitted
   response, then exit 0 with the final stats on stderr. *)

open Cmdliner

let docs_arg =
  let doc = "Load an XML document into the shared store 'main' (uri=path)." in
  Arg.(value & opt_all string [] & info [ "d"; "doc" ] ~docv:"URI=FILE" ~doc)

let xmark_arg =
  Arg.(value & opt (some float) None
       & info [ "xmark" ] ~docv:"F"
           ~doc:"Also serve a generated XMark instance at scale $(docv), \
                 as the store 'xmark' (document URI auction.xml).")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let port_arg =
  Arg.(value & opt int 7077
       & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"TCP port (0 picks an ephemeral port; the bound port is \
                 printed either way).")

let workers_arg =
  Arg.(value & opt int 4
       & info [ "workers" ] ~docv:"N" ~doc:"Executing worker threads.")

let queue_cap_arg =
  Arg.(value & opt int 64
       & info [ "queue-cap" ] ~docv:"N"
           ~doc:"Admission queue bound; a full queue sheds new requests \
                 with a wire-level resource error instead of buffering \
                 them.")

let client_cap_arg =
  Arg.(value & opt int 4
       & info [ "client-cap" ] ~docv:"N"
           ~doc:"Per-client in-flight request cap.")

let plan_cache_arg =
  Arg.(value & opt int 128
       & info [ "plan-cache" ] ~docv:"N"
           ~doc:"Capacity of the shared prepared-plan LRU cache.")

let timeout_arg =
  Arg.(value & opt float 10.
       & info [ "timeout" ] ~docv:"S"
           ~doc:"Per-request wall-clock ceiling in seconds; client t= \
                 wishes are clamped below it (<= 0 disarms).")

let max_rows_arg =
  Arg.(value & opt (some int) None
       & info [ "max-rows" ] ~docv:"N" ~doc:"Per-request row ceiling.")

let max_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "max-bytes" ] ~docv:"N" ~doc:"Per-request byte ceiling.")

let max_ops_arg =
  Arg.(value & opt (some int) None
       & info [ "max-ops" ] ~docv:"N"
           ~doc:"Per-request operator-evaluation ceiling.")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Morsel-parallel execution width per query (default: \
                 XRQ_JOBS, else 1). The overload watchdog degrades this \
                 to 1 under sustained pool contention.")

let grace_arg =
  Arg.(value & opt float 5.
       & info [ "grace" ] ~docv:"S"
           ~doc:"Drain grace period: in-flight work still running $(docv) \
                 seconds after SIGTERM is budget-cancelled.")

let debug_arg =
  Arg.(value & flag & info [ "debug" ]
         ~doc:"Enable the SLEEP test request (holds a worker; used by the \
               test suite and load experiments).")

let wd_threshold_arg =
  Arg.(value & opt int 4
       & info [ "wd-threshold" ] ~docv:"N"
           ~doc:"Watchdog: pool-contention delta per tick that counts as \
                 a hot tick.")

let wd_degrade_arg =
  Arg.(value & opt int 3
       & info [ "wd-degrade-after" ] ~docv:"N"
           ~doc:"Watchdog: consecutive hot ticks before degrading to \
                 serial execution.")

let wd_recover_arg =
  Arg.(value & opt int 5
       & info [ "wd-recover-after" ] ~docv:"N"
           ~doc:"Watchdog: consecutive calm ticks before recovering.")

let tick_arg =
  Arg.(value & opt float 0.1
       & info [ "tick" ] ~docv:"S" ~doc:"Watchdog sampling period.")

let load_documents store specs =
  List.iter
    (fun spec ->
       match String.index_opt spec '=' with
       | Some i ->
         let uri = String.sub spec 0 i in
         let path = String.sub spec (i + 1) (String.length spec - i - 1) in
         ignore (Xmldb.Xml_parser.load_file store ~uri path)
       | None ->
         ignore
           (Xmldb.Xml_parser.load_file store ~uri:(Filename.basename spec)
              spec))
    specs

let serve docs xmark host port workers queue_cap client_cap plan_cache
    timeout max_rows max_bytes max_ops jobs grace debug wd_threshold
    wd_degrade wd_recover tick =
  let stores = ref [] in
  if docs <> [] || xmark = None then begin
    let main = Xmldb.Doc_store.create () in
    load_documents main docs;
    stores := [ ("main", main) ]
  end;
  (match xmark with
   | None -> ()
   | Some scale ->
     let st = Xmldb.Doc_store.create () in
     let _, bytes = Xmark.Xmark_gen.load ~scale st in
     Printf.eprintf "xmark: auction.xml, %.2f MB, %d nodes\n%!"
       (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes st);
     stores := !stores @ [ ("xmark", st) ]);
  let ceiling =
    { Basis.Budget.unlimited with
      Basis.Budget.timeout_s = (if timeout > 0. then Some timeout else None);
      max_rows; max_bytes; max_ops }
  in
  let opts =
    { Engine.default_opts with
      Engine.jobs =
        (match jobs with
         | Some j -> max 1 j
         | None -> Engine.default_opts.Engine.jobs) }
  in
  let cfg =
    Server.config ~host ~port ~ceiling ~opts ~workers
      ~queue_capacity:queue_cap ~client_cap ~cache_capacity:plan_cache ~debug
      ~wd_threshold ~wd_degrade_after:wd_degrade ~wd_recover_after:wd_recover
      ~tick_s:tick ~stores:!stores ()
  in
  let t = Server.start cfg in
  (* the readiness line scripts and CI wait for — keep the format stable *)
  Printf.printf "listening on %s:%d\n%!" host (Server.port t);
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_requested) do
    Thread.delay 0.05
  done;
  Printf.eprintf "serve: draining (grace %gs)...\n%!" grace;
  Server.stop ~grace_s:grace t;
  (* the flushed final counters: shed/admitted/completed survive in the
     process log even when no client asked for STATS *)
  Printf.eprintf "serve: final stats: %s\n%!"
    (String.concat " "
       (List.map (fun (k, v) -> k ^ "=" ^ v) (Server.stats t)));
  0

let () =
  let info =
    Cmd.info "serve" ~version:"1.0.0"
      ~doc:"Concurrent XQuery server with admission control and load \
            shedding"
  in
  let term =
    Term.(const serve $ docs_arg $ xmark_arg $ host_arg $ port_arg
          $ workers_arg $ queue_cap_arg $ client_cap_arg $ plan_cache_arg
          $ timeout_arg $ max_rows_arg $ max_bytes_arg $ max_ops_arg
          $ jobs_arg $ grace_arg $ debug_arg $ wd_threshold_arg
          $ wd_degrade_arg $ wd_recover_arg $ tick_arg)
  in
  exit (Cmd.eval' (Cmd.v info term))
