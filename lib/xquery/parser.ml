(* Recursive-descent parser for the supported XQuery subset. A single
   character cursor drives both "query mode" (whitespace/comment-skipping,
   contextual keywords — XQuery has no reserved words) and "constructor
   mode" (direct element constructors, where whitespace and braces are
   significant). *)

open Ast

exception Syntax_error of string * int

type state = { src : string; mutable pos : int }

let error st fmt =
  Format.kasprintf (fun m -> raise (Syntax_error (m, st.pos))) fmt

let peek_char st =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_char_at st k =
  if st.pos + k < String.length st.src then Some st.src.[st.pos + k] else None

let advance st n = st.pos <- st.pos + n

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 128

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

(* Skip whitespace and (possibly nested) XQuery comments "(: ... :)". *)
let rec skip_ws st =
  (match peek_char st with
   | Some c when is_ws c -> advance st 1; skip_ws st
   | _ -> ());
  if looking_at st "(:" then begin
    advance st 2;
    let depth = ref 1 in
    while !depth > 0 do
      if st.pos >= String.length st.src then error st "unterminated comment";
      if looking_at st "(:" then (incr depth; advance st 2)
      else if looking_at st ":)" then (decr depth; advance st 2)
      else advance st 1
    done;
    skip_ws st
  end

(* After skip_ws: does the input start with symbol [s]? *)
let peek_sym st s =
  skip_ws st;
  looking_at st s

let eat_sym st s =
  skip_ws st;
  if looking_at st s then advance st (String.length s)
  else error st "expected %S" s

let try_sym st s =
  skip_ws st;
  if looking_at st s then (advance st (String.length s); true) else false

(* NCName / QName reading (no whitespace skipping: caller decides). *)
let read_ncname st =
  let start = st.pos in
  (match peek_char st with
   | Some c when is_name_start c -> advance st 1
   | _ -> error st "expected a name");
  let rec go () =
    match peek_char st with
    | Some c when is_name_char c -> advance st 1; go ()
    | _ -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

let read_qname st =
  let n1 = read_ncname st in
  if looking_at st ":" && (match peek_char_at st 1 with
      | Some c -> is_name_start c
      | None -> false)
  then begin
    advance st 1;
    let n2 = read_ncname st in
    Xmldb.Qname.make ~prefix:n1 n2
  end
  else Xmldb.Qname.make n1

(* Does a whole-word keyword appear here? Consumes it if so. *)
let try_keyword st kw =
  skip_ws st;
  let n = String.length kw in
  if looking_at st kw
     && (match peek_char_at st n with
         | Some c -> not (is_name_char c)
         | None -> true)
  then (advance st n; true)
  else false

let expect_keyword st kw =
  if not (try_keyword st kw) then error st "expected keyword %S" kw

(* Lookahead without consuming. *)
let save st = st.pos
let restore st p = st.pos <- p

let peek_keyword st kw =
  let p = save st in
  let r = try_keyword st kw in
  restore st p;
  r

(* -- literals -------------------------------------------------------------- *)

let parse_number st =
  skip_ws st;
  let start = st.pos in
  while (match peek_char st with Some c when is_digit c -> true | _ -> false) do
    advance st 1
  done;
  let is_dec = ref false in
  if looking_at st "." then begin
    is_dec := true;
    advance st 1;
    while (match peek_char st with Some c when is_digit c -> true | _ -> false) do
      advance st 1
    done
  end;
  (match peek_char st with
   | Some ('e' | 'E') ->
     is_dec := true;
     advance st 1;
     (match peek_char st with
      | Some ('+' | '-') -> advance st 1
      | _ -> ());
     while (match peek_char st with Some c when is_digit c -> true | _ -> false) do
       advance st 1
     done
   | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if text = "" || text = "." then error st "malformed number";
  if !is_dec then E_dec (float_of_string text)
  else E_int (int_of_string text)

let decode_entity st buf =
  (* cursor sits right after '&' *)
  if looking_at st "#x" || looking_at st "#X" then begin
    advance st 2;
    let s = st.pos in
    while (match peek_char st with
        | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> true | _ -> false)
    do advance st 1 done;
    let hex = String.sub st.src s (st.pos - s) in
    if not (looking_at st ";") then error st "malformed character reference";
    advance st 1;
    Buffer.add_utf_8_uchar buf (Uchar.of_int (int_of_string ("0x" ^ hex)))
  end
  else if looking_at st "#" then begin
    advance st 1;
    let s = st.pos in
    while (match peek_char st with Some '0' .. '9' -> true | _ -> false) do
      advance st 1
    done;
    let dec = String.sub st.src s (st.pos - s) in
    if not (looking_at st ";") then error st "malformed character reference";
    advance st 1;
    Buffer.add_utf_8_uchar buf (Uchar.of_int (int_of_string dec))
  end
  else begin
    let name = read_ncname st in
    if not (looking_at st ";") then error st "malformed entity reference";
    advance st 1;
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | other -> error st "unknown entity &%s;" other
  end

let parse_string_literal st =
  skip_ws st;
  let quote =
    match peek_char st with
    | Some ('"' as q) | Some ('\'' as q) -> advance st 1; q
    | _ -> error st "expected a string literal"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> error st "unterminated string literal"
    | Some c when c = quote ->
      advance st 1;
      (* doubled quote is an escaped quote *)
      if peek_char st = Some quote then begin
        Buffer.add_char buf quote;
        advance st 1;
        go ()
      end
    | Some '&' -> advance st 1; decode_entity st buf; go ()
    | Some c -> Buffer.add_char buf c; advance st 1; go ()
  in
  go ();
  Buffer.contents buf

(* -- node tests ------------------------------------------------------------ *)

let kind_test_keywords =
  [ "node"; "text"; "comment"; "processing-instruction"; "element";
    "attribute"; "document-node" ]

(* Parse a kind test after having consumed KEYWORD and "(". *)
let parse_kind_test st kw =
  let name_arg () =
    skip_ws st;
    if peek_sym st ")" then None
    else if peek_sym st "*" then (eat_sym st "*"; None)
    else Some (read_qname st)
  in
  let t =
    match kw with
    | "node" -> Nt_kind_node
    | "text" -> Nt_kind_text
    | "comment" -> Nt_kind_comment
    | "document-node" -> Nt_kind_document
    | "element" -> Nt_kind_element (name_arg ())
    | "attribute" -> Nt_kind_attribute (name_arg ())
    | "processing-instruction" ->
      skip_ws st;
      if peek_sym st ")" then Nt_kind_pi None
      else if (match peek_char st with Some ('"' | '\'') -> true | _ -> false)
      then Nt_kind_pi (Some (parse_string_literal st))
      else Nt_kind_pi (Some (read_ncname st))
    | _ -> error st "unknown kind test %s()" kw
  in
  eat_sym st ")";
  t

let parse_node_test st =
  skip_ws st;
  if looking_at st "*" then begin
    advance st 1;
    (* "*" or "*:local" (the latter unsupported, report clearly) *)
    if looking_at st ":" then error st "*:name node tests are not supported";
    Nt_wild
  end
  else begin
    let q = read_qname st in
    if Xmldb.Qname.prefix q <> "" && Xmldb.Qname.local q = "*" then
      Nt_prefix_wild (Xmldb.Qname.prefix q)
    else if looking_at st "(" && Xmldb.Qname.prefix q = ""
            && List.mem (Xmldb.Qname.local q) kind_test_keywords
    then begin
      advance st 1;
      parse_kind_test st (Xmldb.Qname.local q)
    end
    else Nt_name q
  end

(* -- sequence types --------------------------------------------------------- *)

(* ItemType: item(), a kind test, or an atomic type QName. *)
let parse_item_type st =
  skip_ws st;
  let q = read_qname st in
  let local = Xmldb.Qname.local q and prefix = Xmldb.Qname.prefix q in
  skip_ws st;
  if looking_at st "(" then begin
    advance st 1;
    let name_arg () =
      skip_ws st;
      if peek_sym st ")" then None
      else if peek_sym st "*" then (eat_sym st "*"; None)
      else Some (read_qname st)
    in
    let t =
      match local with
      | "item" -> It_item
      | "node" -> It_node
      | "element" -> It_element (name_arg ())
      | "attribute" -> It_attribute (name_arg ())
      | "text" -> It_text
      | "comment" -> It_comment
      | "processing-instruction" ->
        skip_ws st;
        if not (peek_sym st ")") then ignore (read_ncname st);
        It_pi
      | "document-node" ->
        (* optionally document-node(element(...)) — accepted, outer only *)
        skip_ws st;
        if not (peek_sym st ")") then begin
          let depth = ref 0 in
          let stop = ref false in
          while not !stop do
            match peek_char st with
            | None -> error st "unterminated document-node()"
            | Some '(' -> incr depth; advance st 1
            | Some ')' when !depth > 0 -> decr depth; advance st 1
            | Some ')' -> stop := true
            | Some _ -> advance st 1
          done
        end;
        It_document
      | other -> error st "unknown item type %s()" other
    in
    eat_sym st ")";
    t
  end
  else if prefix = "xs" || prefix = "" then It_atomic local
  else error st "unknown type %s" (Xmldb.Qname.to_string q)

let parse_occurrence st =
  (* no whitespace skipping: the indicator must follow the item type *)
  match peek_char st with
  | Some '?' -> advance st 1; Occ_opt
  | Some '+' -> advance st 1; Occ_plus
  | Some '*' -> advance st 1; Occ_star
  | _ -> Occ_one

let parse_sequence_type st =
  skip_ws st;
  let p = save st in
  if try_keyword st "empty-sequence" then begin
    skip_ws st;
    if looking_at st "(" then begin
      eat_sym st "("; eat_sym st ")";
      St_empty
    end
    else begin
      restore st p;
      let t = parse_item_type st in
      St (t, parse_occurrence st)
    end
  end
  else begin
    let t = parse_item_type st in
    St (t, parse_occurrence st)
  end

(* SingleType (cast/castable): an atomic type with an optional "?". *)
let parse_single_type st =
  skip_ws st;
  let q = read_qname st in
  if Xmldb.Qname.prefix q <> "xs" && Xmldb.Qname.prefix q <> "" then
    error st "cast target must be an xs: atomic type";
  let optional = looking_at st "?" in
  if optional then advance st 1;
  (Xmldb.Qname.local q, optional)

(* Function signatures parse types for validation but discard them:
   execution is dynamically typed. *)
let skip_sequence_type st = ignore (parse_sequence_type st)

(* -- expressions ------------------------------------------------------------ *)

let rec parse_expr st : expr =
  let e1 = parse_expr_single st in
  if try_sym st "," then
    let rec collect acc =
      let e = parse_expr_single st in
      if try_sym st "," then collect (e :: acc) else List.rev (e :: acc)
    in
    E_seq (collect [ e1 ])
  else e1

and parse_expr_single st =
  skip_ws st;
  if (peek_keyword st "for" || peek_keyword st "let") && is_dollar_after st
  then parse_flwor st
  else if (peek_keyword st "some" || peek_keyword st "every") && is_dollar_after st
  then parse_quantified st
  else if peek_keyword st "if" && is_paren_after st "if" then parse_if st
  else parse_or st

(* "for" only starts a FLWOR if followed by "$" (otherwise it could be a
   path step <for/>... XQuery has no reserved words). *)
and is_dollar_after st =
  let p = save st in
  let kw_consumed =
    try_keyword st "for" || try_keyword st "let" || try_keyword st "some"
    || try_keyword st "every"
  in
  let r = kw_consumed && (skip_ws st; looking_at st "$") in
  restore st p;
  r

and is_paren_after st kw =
  let p = save st in
  let r = try_keyword st kw && (skip_ws st; looking_at st "(") in
  restore st p;
  r

and parse_var_name st =
  eat_sym st "$";
  Xmldb.Qname.to_string (read_qname st)

and parse_flwor st =
  let clauses = ref [] in
  let rec parse_clauses () =
    if try_keyword st "for" then begin
      let rec one () =
        let var = parse_var_name st in
        let pos_var =
          if try_keyword st "at" then Some (parse_var_name st) else None
        in
        if try_keyword st "as" then skip_sequence_type st;
        expect_keyword st "in";
        let domain = parse_expr_single st in
        clauses := For_clause { var; pos_var; domain } :: !clauses;
        if try_sym st "," then one ()
      in
      one ();
      parse_clauses ()
    end
    else if try_keyword st "let" then begin
      let rec one () =
        let var = parse_var_name st in
        if try_keyword st "as" then skip_sequence_type st;
        eat_sym st ":=";
        let def = parse_expr_single st in
        clauses := Let_clause { var; def } :: !clauses;
        if try_sym st "," then one ()
      in
      one ();
      parse_clauses ()
    end
    else if try_keyword st "where" then begin
      let cond = parse_expr_single st in
      clauses := Where_clause cond :: !clauses;
      parse_clauses ()
    end
  in
  parse_clauses ();
  if !clauses = [] then error st "FLWOR without for/let clause";
  let stable = try_keyword st "stable" in
  let order_by =
    if try_keyword st "order" then begin
      expect_keyword st "by";
      let rec keys acc =
        let key = parse_expr_single st in
        let dir =
          if try_keyword st "descending" then Descending
          else begin
            ignore (try_keyword st "ascending");
            Ascending
          end
        in
        let empty =
          if try_keyword st "empty" then begin
            if try_keyword st "greatest" then Empty_greatest
            else begin
              expect_keyword st "least";
              Empty_least
            end
          end
          else Empty_least
        in
        let spec = { key; dir; empty } in
        if try_sym st "," then keys (spec :: acc) else List.rev (spec :: acc)
      in
      keys []
    end
    else []
  in
  expect_keyword st "return";
  let return_ = parse_expr_single st in
  E_flwor { clauses = List.rev !clauses; order_by; stable; return_ }

and parse_quantified st =
  let q = if try_keyword st "some" then Some_q
    else (expect_keyword st "every"; Every_q) in
  let rec bindings acc =
    let var = parse_var_name st in
    if try_keyword st "as" then skip_sequence_type st;
    expect_keyword st "in";
    let domain = parse_expr_single st in
    if try_sym st "," then bindings ((var, domain) :: acc)
    else List.rev ((var, domain) :: acc)
  in
  let bs = bindings [] in
  expect_keyword st "satisfies";
  let body = parse_expr_single st in
  E_quantified (q, bs, body)

and parse_if st =
  expect_keyword st "if";
  eat_sym st "(";
  let cond = parse_expr st in
  eat_sym st ")";
  expect_keyword st "then";
  let e1 = parse_expr_single st in
  expect_keyword st "else";
  let e2 = parse_expr_single st in
  E_if (cond, e1, e2)

and parse_or st =
  let e1 = parse_and st in
  if try_keyword st "or" then E_or (e1, parse_or st) else e1

and parse_and st =
  let e1 = parse_comparison st in
  if try_keyword st "and" then E_and (e1, parse_and st) else e1

and parse_comparison st =
  let e1 = parse_range st in
  skip_ws st;
  (* value comparisons *)
  let vc =
    if try_keyword st "eq" then Some Veq
    else if try_keyword st "ne" then Some Vne
    else if try_keyword st "lt" then Some Vlt
    else if try_keyword st "le" then Some Vle
    else if try_keyword st "gt" then Some Vgt
    else if try_keyword st "ge" then Some Vge
    else None
  in
  match vc with
  | Some c -> E_value_cmp (c, e1, parse_range st)
  | None ->
    if try_keyword st "is" then E_node_cmp (Is, e1, parse_range st)
    else if try_sym st "<<" then E_node_cmp (Precedes, e1, parse_range st)
    else if try_sym st ">>" then E_node_cmp (Follows, e1, parse_range st)
    (* general comparisons; note "<" must not swallow "<<" or a direct
       constructor — "<" followed by a name-start char would be ambiguous,
       but in comparison position XQuery reads it as the operator *)
    else if try_sym st "!=" then E_general_cmp (Gne, e1, parse_range st)
    else if try_sym st "<=" then E_general_cmp (Gle, e1, parse_range st)
    else if try_sym st ">=" then E_general_cmp (Gge, e1, parse_range st)
    else if try_sym st "=" then E_general_cmp (Geq, e1, parse_range st)
    else if try_sym st "<" then E_general_cmp (Glt, e1, parse_range st)
    else if try_sym st ">" then E_general_cmp (Ggt, e1, parse_range st)
    else e1

and parse_range st =
  let e1 = parse_additive st in
  if try_keyword st "to" then E_range (e1, parse_additive st) else e1

and parse_additive st =
  let e1 = parse_multiplicative st in
  let rec go acc =
    skip_ws st;
    if looking_at st "+" then begin
      advance st 1;
      go (E_arith (Add, acc, parse_multiplicative st))
    end
    else if looking_at st "-" then begin
      advance st 1;
      go (E_arith (Sub, acc, parse_multiplicative st))
    end
    else acc
  in
  go e1

and parse_multiplicative st =
  let e1 = parse_union_expr st in
  let rec go acc =
    skip_ws st;
    if looking_at st "*" && peek_char_at st 1 <> Some ':' then begin
      advance st 1;
      go (E_arith (Mul, acc, parse_union_expr st))
    end
    else if try_keyword st "div" then go (E_arith (Div, acc, parse_union_expr st))
    else if try_keyword st "idiv" then go (E_arith (Idiv, acc, parse_union_expr st))
    else if try_keyword st "mod" then go (E_arith (Mod, acc, parse_union_expr st))
    else acc
  in
  go e1

and parse_union_expr st =
  let e1 = parse_intersect_expr st in
  let rec go acc =
    if try_sym st "|" || try_keyword st "union" then
      go (E_union (acc, parse_intersect_expr st))
    else acc
  in
  go e1

and parse_intersect_expr st =
  let e1 = parse_instanceof st in
  let rec go acc =
    if try_keyword st "intersect" then go (E_intersect (acc, parse_instanceof st))
    else if try_keyword st "except" then go (E_except (acc, parse_instanceof st))
    else acc
  in
  go e1

(* two-word operators: backtrack unless the full keyword pair is present *)
and try_keyword2 st k1 k2 =
  let p = save st in
  if try_keyword st k1 then begin
    if try_keyword st k2 then true
    else begin restore st p; false end
  end
  else false

and parse_instanceof st =
  let e1 = parse_treat st in
  if try_keyword2 st "instance" "of" then
    E_instance_of (e1, parse_sequence_type st)
  else e1

and parse_treat st =
  let e1 = parse_castable st in
  if try_keyword2 st "treat" "as" then E_treat_as (e1, parse_sequence_type st)
  else e1

and parse_castable st =
  let e1 = parse_cast st in
  if try_keyword2 st "castable" "as" then begin
    let ty, opt = parse_single_type st in
    E_castable_as (e1, ty, opt)
  end
  else e1

and parse_cast st =
  let e1 = parse_unary st in
  if try_keyword2 st "cast" "as" then begin
    let ty, opt = parse_single_type st in
    E_cast_as (e1, ty, opt)
  end
  else e1

and parse_unary st =
  skip_ws st;
  if looking_at st "-" then begin
    advance st 1;
    E_unary_minus (parse_unary st)
  end
  else if looking_at st "+" then begin
    advance st 1;
    parse_unary st
  end
  else parse_path st

(* PathExpr: StepExpr (("/" | "//") StepExpr)* *)
and parse_path st =
  skip_ws st;
  if looking_at st "/" then
    error st "a leading '/' needs a context document; use fn:doc(...)";
  let e1 = parse_step st in
  let rec go acc =
    skip_ws st;
    if looking_at st "//" then begin
      advance st 2;
      let step = parse_step st in
      (* e1//e2 == e1/descendant-or-self::node()/e2 (paper, footnote 1) *)
      let dos =
        E_axis_step (Xmldb.Axis.Descendant_or_self, Nt_kind_node, [])
      in
      go (E_slash (E_slash (acc, dos), step))
    end
    else if looking_at st "/" then begin
      advance st 1;
      go (E_slash (acc, parse_step st))
    end
    else acc
  in
  go e1

(* StepExpr: AxisStep | FilterExpr(primary + predicates) *)
and parse_step st =
  skip_ws st;
  if looking_at st "@" then begin
    advance st 1;
    let t = parse_node_test st in
    E_axis_step (Xmldb.Axis.Attribute, t, parse_predicates st)
  end
  else if looking_at st ".." then begin
    advance st 2;
    E_axis_step (Xmldb.Axis.Parent, Nt_kind_node, parse_predicates st)
  end
  else begin
    (* explicit axis? *)
    let p = save st in
    let axis =
      match peek_char st with
      | Some c when is_name_start c ->
        let name = read_ncname st in
        if looking_at st "::" then begin
          advance st 2;
          match Xmldb.Axis.of_string name with
          | Some a -> Some a
          | None -> error st "unknown axis %s" name
        end
        else begin
          restore st p;
          None
        end
      | _ -> None
    in
    match axis with
    | Some a ->
      let t = parse_node_test st in
      E_axis_step (a, t, parse_predicates st)
    | None -> parse_filter_or_step st
  end

and parse_predicates st =
  let rec go acc =
    skip_ws st;
    if looking_at st "[" then begin
      advance st 1;
      let e = parse_expr st in
      eat_sym st "]";
      go (e :: acc)
    end
    else List.rev acc
  in
  go []

(* In name position: either a primary expression (literal, var, call,
   parens, constructor, ...) with predicates, or an abbreviated child/
   attribute axis step. *)
and parse_filter_or_step st =
  skip_ws st;
  match peek_char st with
  | None -> error st "unexpected end of query"
  | Some '$' ->
    let v = parse_var_name st in
    finish_filter st (E_var v)
  | Some '(' ->
    advance st 1;
    skip_ws st;
    if looking_at st ")" then begin
      advance st 1;
      finish_filter st (E_seq [])
    end
    else begin
      let e = parse_expr st in
      eat_sym st ")";
      finish_filter st e
    end
  | Some '.' when peek_char_at st 1 <> Some '.'
               && (match peek_char_at st 1 with
                   | Some c -> not (is_digit c)
                   | None -> true) ->
    advance st 1;
    finish_filter st E_context_item
  | Some c when is_digit c || c = '.' -> finish_filter st (parse_number st)
  | Some ('"' | '\'') -> finish_filter st (E_str (parse_string_literal st))
  | Some '<' -> finish_filter st (parse_direct_constructor st)
  | Some c when is_name_start c ->
    let p = save st in
    let q = read_qname st in
    let name = Xmldb.Qname.to_string q in
    skip_ws st;
    if name = "typeswitch" && looking_at st "(" then begin
      advance st 1;
      let scrutinee = parse_expr st in
      eat_sym st ")";
      let rec cases acc =
        if try_keyword st "case" then begin
          skip_ws st;
          let tvar =
            if looking_at st "$" then begin
              let v = parse_var_name st in
              expect_keyword st "as";
              Some v
            end
            else None
          in
          let ttype = parse_sequence_type st in
          expect_keyword st "return";
          let tbody = parse_expr_single st in
          cases ({ tvar; ttype; tbody } :: acc)
        end
        else List.rev acc
      in
      let cs = cases [] in
      if cs = [] then error st "typeswitch needs at least one case";
      expect_keyword st "default";
      skip_ws st;
      let dvar = if looking_at st "$" then Some (parse_var_name st) else None in
      expect_keyword st "return";
      let dflt = parse_expr_single st in
      finish_filter st (E_typeswitch (scrutinee, cs, (dvar, dflt)))
    end
    (* computed constructors / ordered,unordered blocks *)
    else if looking_at st "{"
       && List.mem name
            [ "ordered"; "unordered"; "text"; "comment"; "document" ]
    then begin
      advance st 1;
      let e = parse_expr st in
      eat_sym st "}";
      finish_filter st
        (match name with
         | "ordered" -> E_ordered e
         | "unordered" -> E_unordered e
         | "text" -> E_text_computed e
         | "comment" -> E_comment_computed e
         | "document" -> E_doc_computed e
         | other -> Basis.Err.internal "parser: unreachable curly constructor %S" other)
    end
    else if List.mem name [ "element"; "attribute"; "processing-instruction" ]
            && (looking_at st "{"
                || (match peek_char st with
                    | Some c' -> is_name_start c'
                    | None -> false))
    then begin
      (* computed element/attribute/PI constructor with const or computed name *)
      let nspec =
        if looking_at st "{" then begin
          advance st 1;
          let ne = parse_expr st in
          eat_sym st "}";
          Name_computed ne
        end
        else begin
          let n = read_qname st in
          Name_const n
        end
      in
      skip_ws st;
      if not (looking_at st "{") then begin
        (* it was not a constructor after all (e.g. "element" used as a
           path step followed by something else): backtrack *)
        restore st p;
        parse_abbrev_step st
      end
      else begin
        advance st 1;
        skip_ws st;
        let body = if looking_at st "}" then E_seq [] else parse_expr st in
        eat_sym st "}";
        finish_filter st
          (match name with
           | "element" -> E_elem_computed (nspec, body)
           | "attribute" -> E_attr_computed (nspec, body)
           | "processing-instruction" -> E_pi_computed (nspec, body)
           | other -> Basis.Err.internal "parser: unreachable computed constructor %S" other)
      end
    end
    else if looking_at st "(" then begin
      if Xmldb.Qname.prefix q = ""
         && List.mem (Xmldb.Qname.local q) kind_test_keywords
      then begin
        (* kind test in abbreviated (child axis) step position *)
        advance st 1;
        let t = parse_kind_test st (Xmldb.Qname.local q) in
        E_axis_step (Xmldb.Axis.Child, t, parse_predicates st)
      end
      else begin
        (* function call *)
        advance st 1;
        skip_ws st;
        let args =
          if looking_at st ")" then (advance st 1; [])
          else begin
            let rec go acc =
              let a = parse_expr_single st in
              if try_sym st "," then go (a :: acc)
              else begin
                eat_sym st ")";
                List.rev (a :: acc)
              end
            in
            go []
          end
        in
        finish_filter st (E_call (name, args))
      end
    end
    else begin
      restore st p;
      parse_abbrev_step st
    end
  | Some '*' ->
    let t = parse_node_test st in
    E_axis_step (Xmldb.Axis.Child, t, parse_predicates st)
  | Some c -> error st "unexpected character %C" c

and parse_abbrev_step st =
  let t = parse_node_test st in
  (* attribute kind tests select the attribute axis even abbreviated *)
  let axis =
    match t with
    | Nt_kind_attribute _ -> Xmldb.Axis.Attribute
    | _ -> Xmldb.Axis.Child
  in
  E_axis_step (axis, t, parse_predicates st)

and finish_filter st e =
  let preds = parse_predicates st in
  if preds = [] then e else E_filter (e, preds)

(* -- direct constructors ---------------------------------------------------- *)

and parse_direct_constructor st =
  (* cursor on '<' *)
  if looking_at st "<!--" then begin
    advance st 4;
    let s = st.pos in
    let rec find () =
      if st.pos + 2 >= String.length st.src then error st "unterminated comment"
      else if looking_at st "-->" then ()
      else (advance st 1; find ())
    in
    find ();
    let content = String.sub st.src s (st.pos - s) in
    advance st 3;
    E_comment_computed (E_str content)
  end
  else if looking_at st "<?" then begin
    advance st 2;
    let target = read_ncname st in
    (match peek_char st with Some c when is_ws c -> advance st 1 | _ -> ());
    let s = st.pos in
    let rec find () =
      if st.pos + 1 >= String.length st.src then error st "unterminated PI"
      else if looking_at st "?>" then ()
      else (advance st 1; find ())
    in
    find ();
    let content = String.sub st.src s (st.pos - s) in
    advance st 2;
    E_pi_computed (Name_const (Xmldb.Qname.make target), E_str content)
  end
  else begin
    advance st 1; (* '<' *)
    let name = read_qname st in
    (* attributes *)
    let rec attrs acc =
      (match peek_char st with
       | Some c when is_ws c -> advance st 1; attrs acc
       | Some c when is_name_start c ->
         let aname = read_qname st in
         skip_attr_ws st;
         if not (looking_at st "=") then error st "expected '=' in attribute";
         advance st 1;
         skip_attr_ws st;
         let pieces = parse_attr_value st in
         attrs ((aname, pieces) :: acc)
       | _ -> List.rev acc)
    in
    let attributes = attrs [] in
    if looking_at st "/>" then begin
      advance st 2;
      E_elem_direct (name, attributes, [])
    end
    else begin
      if not (looking_at st ">") then error st "expected '>'";
      advance st 1;
      let content = parse_element_content st in
      if not (looking_at st "</") then error st "expected closing tag";
      advance st 2;
      let close = read_qname st in
      if not (Xmldb.Qname.equal close name) then
        error st "mismatched constructor tags <%s>...</%s>"
          (Xmldb.Qname.to_string name) (Xmldb.Qname.to_string close);
      (match peek_char st with Some c when is_ws c -> advance st 1 | _ -> ());
      if not (looking_at st ">") then error st "expected '>'";
      advance st 1;
      E_elem_direct (name, attributes, content)
    end
  end

and skip_attr_ws st =
  while (match peek_char st with Some c when is_ws c -> true | _ -> false) do
    advance st 1
  done

and parse_attr_value st =
  let quote =
    match peek_char st with
    | Some ('"' as q) | Some ('\'' as q) -> advance st 1; q
    | _ -> error st "expected quoted attribute value"
  in
  let pieces = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      pieces := Ap_text (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let rec go () =
    match peek_char st with
    | None -> error st "unterminated attribute value"
    | Some c when c = quote ->
      advance st 1;
      if peek_char st = Some quote then begin
        Buffer.add_char buf quote;
        advance st 1;
        go ()
      end
    | Some '{' when peek_char_at st 1 = Some '{' ->
      Buffer.add_char buf '{'; advance st 2; go ()
    | Some '}' when peek_char_at st 1 = Some '}' ->
      Buffer.add_char buf '}'; advance st 2; go ()
    | Some '{' ->
      flush_text ();
      advance st 1;
      let e = parse_expr st in
      eat_sym st "}";
      pieces := Ap_expr e :: !pieces;
      go ()
    | Some '&' -> advance st 1; decode_entity st buf; go ()
    | Some c -> Buffer.add_char buf c; advance st 1; go ()
  in
  go ();
  flush_text ();
  List.rev !pieces

and parse_element_content st =
  let pieces = ref [] in
  let buf = Buffer.create 32 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      pieces := C_text (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let rec go () =
    match peek_char st with
    | None -> error st "unterminated element constructor"
    | Some '<' when looking_at st "</" -> flush_text ()
    | Some '<' when looking_at st "<![CDATA[" ->
      advance st 9;
      let s = st.pos in
      let rec find () =
        if st.pos + 2 >= String.length st.src then error st "unterminated CDATA"
        else if looking_at st "]]>" then ()
        else (advance st 1; find ())
      in
      find ();
      Buffer.add_string buf (String.sub st.src s (st.pos - s));
      advance st 3;
      go ()
    | Some '<' ->
      flush_text ();
      let e = parse_direct_constructor st in
      pieces := C_elem e :: !pieces;
      go ()
    | Some '{' when peek_char_at st 1 = Some '{' ->
      Buffer.add_char buf '{'; advance st 2; go ()
    | Some '}' when peek_char_at st 1 = Some '}' ->
      Buffer.add_char buf '}'; advance st 2; go ()
    | Some '{' ->
      flush_text ();
      advance st 1;
      let e = parse_expr st in
      eat_sym st "}";
      pieces := C_expr e :: !pieces;
      go ()
    | Some '&' -> advance st 1; decode_entity st buf; go ()
    | Some c -> Buffer.add_char buf c; advance st 1; go ()
  in
  go ();
  List.rev !pieces

(* -- prolog & entry point ---------------------------------------------------- *)

let parse_prolog st =
  let ordering = ref None in
  let boundary_space = ref Bs_strip in
  let functions = ref [] in
  let rec go () =
    if peek_keyword st "declare" then begin
      expect_keyword st "declare";
      if try_keyword st "ordering" then begin
        (if try_keyword st "ordered" then ordering := Some Ordered
         else begin
           expect_keyword st "unordered";
           ordering := Some Unordered
         end);
        eat_sym st ";";
        go ()
      end
      else if try_keyword st "function" then begin
        skip_ws st;
        let fq = read_qname st in
        let fname = Xmldb.Qname.to_string fq in
        eat_sym st "(";
        skip_ws st;
        let params =
          if looking_at st ")" then (advance st 1; [])
          else begin
            let rec ps acc =
              let v = parse_var_name st in
              if try_keyword st "as" then skip_sequence_type st;
              if try_sym st "," then ps (v :: acc)
              else begin
                eat_sym st ")";
                List.rev (v :: acc)
              end
            in
            ps []
          end
        in
        if try_keyword st "as" then skip_sequence_type st;
        eat_sym st "{";
        let body = parse_expr st in
        eat_sym st "}";
        eat_sym st ";";
        functions := { fname; params; body } :: !functions;
        go ()
      end
      else if try_keyword st "boundary-space" then begin
        (if try_keyword st "preserve" then boundary_space := Bs_preserve
         else begin
           expect_keyword st "strip";
           boundary_space := Bs_strip
         end);
        eat_sym st ";";
        go ()
      end
      else if try_keyword st "variable" then begin
        error st "declare variable is not supported; use let"
      end
      else error st "unsupported prolog declaration"
    end
  in
  go ();
  { ordering = !ordering; boundary_space = !boundary_space;
    functions = List.rev !functions }

let parse_query src =
  let st = { src; pos = 0 } in
  let prolog = parse_prolog st in
  let body = parse_expr st in
  skip_ws st;
  if st.pos <> String.length st.src then
    error st "trailing input after query body";
  { prolog; body }

(* Parse a single expression (no prolog); used by tests. *)
let parse_expression src =
  let st = { src; pos = 0 } in
  let e = parse_expr st in
  skip_ws st;
  if st.pos <> String.length st.src then error st "trailing input";
  e
