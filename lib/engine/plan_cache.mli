(** An LRU cache for prepared plans.

    String-keyed, counter-instrumented: every {!find} is a hit or a miss,
    every insertion past capacity evicts the least recently used entry.
    Used by {!Engine} keyed on (normalized query, options fingerprint),
    but generic over the cached value. Capacity 0 disables insertion
    (every lookup is a miss).

    Thread-safe: all operations take an internal mutex, so the query
    server shares one cache across concurrent sessions. {!find_or_add}
    builds outside the lock — two threads missing on the same key may
    both build, and the later insertion wins (a duplicate compile, never
    a wrong entry). *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;       (** live entries *)
  capacity : int;
}

val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Look up a key, refreshing its recency. Counts a hit or a miss. *)
val find : 'a t -> string -> 'a option

(** Insert (or refresh) a binding, evicting the LRU entry when full. *)
val add : 'a t -> string -> 'a -> unit

(** [find_or_add t key build] — {!find}, building and inserting on miss. *)
val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a

val stats : 'a t -> stats

val pp_stats : Format.formatter -> stats -> unit

val stats_to_string : stats -> string

(** Canonicalize query text for cache keying: strips (nested) XQuery
    comments and collapses whitespace runs outside string literals, so
    reformatted copies of one query share a cache entry. Queries with a
    ['<'] outside string literals are only trimmed: the scan cannot tell
    a direct constructor (whose literal content is whitespace-significant)
    from a comparison, and key precision is not worth a wrong plan. *)
val normalize_query : string -> string
