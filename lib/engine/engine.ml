(* The end-to-end engine façade:

     parse -> normalize (J.K) -> compile (=>) -> optimize -> execute -> serialize

   [opts] exposes every knob the paper's experiments need:
     - [mode]: force ordering mode ordered/unordered (overrides the prolog)
     - [unordered_rules]: the Figure-7 rules FN:UNORDERED / LOC# / BIND#
     - [cda]: column dependency analysis + plan simplification (Section 4.1)
     - [hoist]: loop-invariant hoisting
     - [backend]: compiled plans or the reference interpreter
     - [budget]: resource governance (deadline / rows / bytes / op count /
       cancellation), armed afresh for every run
     - [fallback]: graceful degradation — an internal error in the
       compiled backend retries the query on the reference interpreter *)

module Value = Algebra.Value
module Budget = Basis.Budget

(* re-export: the library is wrapped, so this is the public path *)
module Plan_cache = Plan_cache

type backend = Compiled | Interpreted

type opts = {
  mode : Xquery.Ast.ordering_mode option;
  unordered_rules : bool;
  cda : bool;
  hoist : bool;
  backend : backend;
  step_impl : Algebra.Eval.step_impl;
  eval_mode : Algebra.Eval.mode;
  physical : [ `On | `Off ];
      (* execute through the lowered physical plan (typed columns,
         selection vectors, fused kernels) or the boxed logical executor *)
  join_rec : bool;
  join_isolation : bool;
      (* join-graph isolation: the compile-level where-past-lets slide
         (Compile.cfg.join_isolation) plus the rewriter's Joingraph rules
         that collapse existential count-then-filter scaffolds into
         semijoin/antijoin operators *)
  budget : Budget.spec option;
  fallback : bool;
  jobs : int;
      (* domains for morsel-parallel physical execution; 1 = serial.
         Results, errors and profile counters are identical either way.
         Only the physical backend fans out; the boxed executor and the
         interpreter ignore it. *)
  rewrite : bool;
      (* the logical rewriter (Algebra.Rewrite): selection/fun pushdown,
         join synthesis over cross products, order-insensitive join
         reassociation and cardinality-driven input ordering, run between
         CDA and lowering *)
  order_props : bool;
      (* ordering-property reasoning (Algebra.Order): the rewriter's
         sort-elision rule, the root sort-on-pos skip, and merge-degraded
         % kernels. Pure optimization — a proof of an order already held
         can change no result *)
  code_eval : bool;
      (* compressed execution in the physical backend: batched staircase
         scans over bulk-decoded packed columns, atomize/string results
         kept as per-fragment dictionary codes, and equality predicates
         evaluated as integer code compares. Bit-identical results either
         way; off (--no-code-eval) is the materialized reference path *)
}

(* Engine-wide default parallelism, from XRQ_JOBS (CI runs the whole
   suite with XRQ_JOBS=4); absent or malformed means serial. *)
let default_jobs =
  match Sys.getenv_opt "XRQ_JOBS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let default_opts = {
  mode = None;
  unordered_rules = true;
  cda = true;
  hoist = true;
  backend = Compiled;
  step_impl = Algebra.Eval.Scan;
  eval_mode = Algebra.Eval.Dag;
  physical = `On;
  join_rec = true;
  join_isolation = true;
  budget = None;
  fallback = true;
  jobs = default_jobs;
  rewrite = true;
  order_props = true;
  code_eval = true;
}

(* Pathfinder with order indifference disabled: every plan is emitted as if
   ordering mode ordered were in effect, and no cleanup runs. *)
let ordered_baseline =
  { default_opts with
    unordered_rules = false; cda = false; rewrite = false;
    order_props = false }

type result = {
  items : Value.t list;        (* the result sequence *)
  serialized : string;
  plan : Algebra.Plan.node option;          (* after optimization *)
  raw_plan : Algebra.Plan.node option;      (* before optimization *)
  physical_plan : Algebra.Physical.pnode option;  (* what actually ran *)
  profile : Algebra.Profile.t option;
  wall_seconds : float;
  degraded : string option;    (* Some reason: served by the fallback path *)
  cache_stats : Plan_cache.stats option;
      (* plan-cache counters as of this run's end, when a cache was used *)
}

let parse_and_normalize ?mode text =
  let q = Xquery.Parser.parse_query text in
  Xquery.Normalize.normalize_query ?mode_override:mode q

(* Cardinality statistics for the rewriter / lowering, read off a store.
   Estimates steer only performance decisions (join input order, hash
   build sides), never correctness — so feeding a prepared plan compiled
   against one store's statistics to another store stays sound, merely
   possibly slower. *)
let stats_of_store store : Algebra.Plan.Card.stats =
  { Algebra.Plan.Card.total_nodes = Xmldb.Doc_store.total_nodes store;
    name_count = (fun q -> Xmldb.Doc_store.name_occurrences store q) }

type analysis = {
  acfg : Exrquy.Compile.cfg;
  araw : Algebra.Plan.node;
  aoptimized : Algebra.Plan.node;
  arewrite : Algebra.Rewrite.stats;  (* what the rewriter did (plan dumps) *)
}

(* compile -> CDA -> rewrite -> CDA -> rewrite: the rewriter exposes new
   dead columns and projections (CDA's food), and CDA's narrowing exposes
   new rewrite sites; each pass is itself a fixpoint, and in practice one
   interleaving round suffices, so two bounds the loop. *)
let analyze ?(opts = default_opts) ?stats text =
  let core = parse_and_normalize ?mode:opts.mode text in
  let cfg =
    { (Exrquy.Compile.default_cfg ()) with
      unordered_rules = opts.unordered_rules;
      hoist = opts.hoist;
      join_rec = opts.join_rec;
      join_isolation = opts.join_isolation }
  in
  let _, raw = Exrquy.Compile.compile_core ~cfg core in
  let cda p = if opts.cda then Exrquy.Icols.optimize cfg.b p else p in
  let optimized = cda raw in
  let optimized, rstats =
    if not opts.rewrite then (optimized, Algebra.Rewrite.empty_stats)
    else begin
      let order_props = opts.order_props in
      let join_isolation = opts.join_isolation in
      let o1, s1 =
        Algebra.Rewrite.optimize ~order_props ~join_isolation ?stats cfg.b
          optimized
      in
      let o1 = if o1.Algebra.Plan.id <> optimized.Algebra.Plan.id then cda o1 else o1 in
      let o2, s2 =
        Algebra.Rewrite.optimize ~order_props ~join_isolation ?stats cfg.b o1
      in
      let o2 = if o2.Algebra.Plan.id <> o1.Algebra.Plan.id then cda o2 else o2 in
      let fires =
        List.fold_left
          (fun acc (r, k) ->
             let prev = Option.value ~default:0 (List.assoc_opt r acc) in
             (r, prev + k) :: List.remove_assoc r acc)
          s1.Algebra.Rewrite.fires s2.Algebra.Rewrite.fires
        |> List.sort compare
      in
      ( o2,
        { Algebra.Rewrite.rounds = s1.rounds + s2.rounds;
          ops_before = s1.ops_before;
          ops_after = Algebra.Plan.count_ops o2;
          fires } )
    end
  in
  { acfg = cfg; araw = raw; aoptimized = optimized; arewrite = rstats }

(* Compile a query text to an (unoptimized, optimized) plan pair. *)
let plans_of ?opts ?stats text =
  let a = analyze ?opts ?stats text in
  (a.acfg, a.araw, a.aoptimized)

(* ------------------------------------------------- prepared-plan cache *)

(* What a cache hit skips: parse -> normalize (-> compile -> optimize for
   the compiled backend). Plans hold no store references (documents are
   resolved by Doc at evaluation time), so a prepared entry is reusable
   against any store. *)
type prepared =
  | Prepared_plans of {
      raw : Algebra.Plan.node;
      optimized : Algebra.Plan.node;
      physical : Algebra.Physical.pnode option;
          (* when the physical backend is on — the lowered physical plan
             (lowering is cached with the plans) *)
      pos_sorted : bool;
          (* the ordering analysis proved the optimized plan delivers its
             rows already sorted by pos: the root sort is a no-op and the
             executors skip it. A plan property, cached with the plan. *)
      sorts_elided : int;
          (* "sort-elision" fires during optimization, stamped into the
             profile of every run of this prepared plan *)
    }
  | Prepared_core of Xquery.Core_ast.core

type cache = prepared Plan_cache.t

let create_cache ?(capacity = 64) () : cache = Plan_cache.create ~capacity

let cache_stats (c : cache) = Plan_cache.stats c

(* Only the knobs that shape the prepared artifact participate: budget,
   fallback, step_impl and eval_mode are pure execution concerns, and one
   cached plan serves every setting of them. The backend is in because the
   two backends cache different artifacts. Parallelism is in even though
   the lowered plan is identical either way: a prepared entry advertises
   the execution configuration it was created under, and keeping jobs out
   would make cache hits silently change a query's parallelism when a
   caller mixes widths in one cache. *)
let opts_fingerprint opts =
  Printf.sprintf "m%sr%bc%bh%bj%bb%sp%sx%dw%bO%bg%be%b"
    (match opts.mode with
     | None -> "-"
     | Some Xquery.Ast.Ordered -> "o"
     | Some Xquery.Ast.Unordered -> "u")
    opts.unordered_rules opts.cda opts.hoist opts.join_rec
    (match opts.backend with Compiled -> "c" | Interpreted -> "i")
    (match opts.physical with `On -> "1" | `Off -> "0")
    opts.jobs opts.rewrite opts.order_props opts.join_isolation
    opts.code_eval

let cache_key opts text =
  opts_fingerprint opts ^ "\x00" ^ Plan_cache.normalize_query text

(* Attribute plan nodes to the profile buckets of the paper's Table 2. *)
let label_plan root =
  List.iter
    (fun (n : Algebra.Plan.node) ->
       if n.Algebra.Plan.label = "" then
         Algebra.Plan.set_label n
           (match n.Algebra.Plan.op with
            | Algebra.Plan.Step _ | Algebra.Plan.Doc _
            | Algebra.Plan.Id_lookup _ -> "path steps"
            | Algebra.Plan.Rownum _ -> "order (rownum %)"
            | Algebra.Plan.Join _ | Algebra.Plan.Thetajoin _
            | Algebra.Plan.Cross _ | Algebra.Plan.Semijoin _
            | Algebra.Plan.Antijoin _ -> "join"
            | Algebra.Plan.Elem _ | Algebra.Plan.Attr _
            | Algebra.Plan.Textnode _ | Algebra.Plan.Commentnode _
            | Algebra.Plan.Pinode _ | Algebra.Plan.Textify _ -> "construction"
            | Algebra.Plan.Aggr _ -> "aggregation"
            | Algebra.Plan.Fun1 _ | Algebra.Plan.Fun2 _
            | Algebra.Plan.Fun3 _ -> "arithmetic/comparison"
            | Algebra.Plan.Select _ -> "selection"
            | Algebra.Plan.Distinct _ -> "duplicate elimination"
            | Algebra.Plan.Project _ | Algebra.Plan.Attach _
            | Algebra.Plan.Rowid _ | Algebra.Plan.Lit _
            | Algebra.Plan.Union _ | Algebra.Plan.Range _ -> "plumbing"))
    (Algebra.Plan.topo_order root)

(* Lower an optimized logical plan to the physical-operator DAG, wiring
   the statically inferred column types in as dump annotations and the
   cardinality estimates in as the hash-build-side chooser. *)
let lower_physical ?stats ?(order_props = true) optimized =
  let hints = Exrquy.Properties.infer optimized in
  let types n =
    List.map
      (fun c -> (c, Exrquy.Properties.col_ty hints n c))
      (Exrquy.Properties.schema_list hints n)
  in
  let card = Algebra.Plan.Card.estimator ?stats () in
  (* Surviving % nodes whose input the ordering analysis proves piecewise
     sorted (k runs) get a merge hint: the kernel verifies the runs and
     merges instead of sorting. The hint is advisory — a wrong count
     falls back to the full sort. *)
  let merge_hint =
    if not order_props then fun _ -> None
    else begin
      let a = Algebra.Order.make () in
      fun (n : Algebra.Plan.node) ->
        match n.Algebra.Plan.op with
        | Algebra.Plan.Rownum { input; order; part; _ } ->
          let req =
            (match part with
             | Some p -> [ (p, Algebra.Plan.Asc) ]
             | None -> [])
            @ order
          in
          Algebra.Order.sorted_runs a input req
        | _ -> None
    end
  in
  Algebra.Lower.lower ~types ~card ~merge_hint optimized

let prepared_of ?cache ?stats opts text =
  let build () =
    match opts.backend with
    | Interpreted -> Prepared_core (parse_and_normalize ?mode:opts.mode text)
    | Compiled ->
      let a = analyze ~opts ?stats text in
      let raw = a.araw and optimized = a.aoptimized in
      (* label before lowering so physical kernels inherit the profile
         buckets of their logical head operators *)
      label_plan optimized;
      let physical =
        match opts.physical with
        | `Off -> None
        | `On ->
          Some (lower_physical ?stats ~order_props:opts.order_props optimized)
      in
      (* The root sort exists to order items by pos; when the optimized
         plan already proves pos-order (non-strict suffices: the root
         sort is stable), both executors may serialize in row order.
         This is a structural fact about the plan — it never consults
         the query's ordering mode. *)
      let pos_sorted =
        opts.order_props
        && Algebra.Order.satisfies (Algebra.Order.make ()) optimized
             [ ("pos", Algebra.Plan.Asc) ]
      in
      let sorts_elided =
        Option.value ~default:0
          (List.assoc_opt "sort-elision" a.arewrite.Algebra.Rewrite.fires)
      in
      Prepared_plans { raw; optimized; physical; pos_sorted; sorts_elided }
  in
  match cache with
  | None -> build ()
  | Some c -> Plan_cache.find_or_add c (cache_key opts text) build

(* Whether evaluating [text] may append fragments to the store. True when
   the prepared plan contains construction operators, and conservatively
   for the interpreter backend (core expressions are not inspected). The
   query server uses this to pick the read or write side of a shared
   store's lock; sharing [cache] with the later [run] means the
   classification compile is the run's compile. *)
let constructs_nodes ?cache ?(opts = default_opts) store text =
  match opts.backend with
  | Interpreted -> true
  | Compiled ->
    (match prepared_of ?cache ~stats:(stats_of_store store) opts text with
     | Prepared_core _ -> true
     | Prepared_plans { optimized; _ } ->
       List.exists
         (fun (n : Algebra.Plan.node) ->
            match n.Algebra.Plan.op with
            | Algebra.Plan.Elem _ | Algebra.Plan.Attr _
            | Algebra.Plan.Textnode _ | Algebra.Plan.Commentnode _
            | Algebra.Plan.Pinode _ | Algebra.Plan.Textify _ -> true
            | _ -> false)
         (Algebra.Plan.topo_order optimized))

(* Extract the result sequence from the final iter|pos|item table.
   [pos_sorted] is the ordering analysis's verdict on the optimized plan:
   when the rows provably arrive sorted by pos, the (stable) root sort
   would be the identity and is skipped outright. *)
let items_of_table ?(pos_sorted = false) t =
  let n = Algebra.Table.nrows t in
  if pos_sorted then List.init n (fun i -> Algebra.Table.get t "item" i)
  else
    let rows =
      List.init n (fun i ->
          (Algebra.Value.int_value (Algebra.Table.get t "pos" i),
           Algebra.Table.get t "item" i))
    in
    List.map snd (List.sort (fun (a, _) (b, _) -> Int.compare a b) rows)

(* The fault-injection hook lives in the compiled executor's boundary
   checks only: the interpreter (and in particular the fallback retry)
   always runs with the hook disarmed, so injected faults prove the
   degradation path out rather than re-firing inside it. *)
let interp_guard opts =
  Option.map
    (fun spec -> Budget.start { spec with Budget.fault_at = None })
    opts.budget

let run ?cache ?(opts = default_opts) ?(with_profile = false) store text : result =
  (* Monotonic, like Budget deadlines: a wall-clock step (NTP) must not
     distort reported latency any more than it may fire a timeout. *)
  let t0 = Basis.Clock.now () in
  let stats () = Option.map Plan_cache.stats cache in
  let run_interpreted ~degraded core =
    let items =
      Interp.Interpreter.eval_core ?guard:(interp_guard opts) store core
    in
    { items;
      serialized = Interp.Xdm.serialize store items;
      plan = None; raw_plan = None; physical_plan = None; profile = None;
      wall_seconds = Basis.Clock.now () -. t0;
      degraded;
      cache_stats = stats () }
  in
  let card_stats = stats_of_store store in
  match opts.backend with
  | Interpreted ->
    let core =
      match prepared_of ?cache ~stats:card_stats opts text with
      | Prepared_core c -> c
      | Prepared_plans _ -> assert false  (* the key includes the backend *)
    in
    run_interpreted ~degraded:None core
  | Compiled ->
    let run_compiled () =
      let raw, optimized, physical, pos_sorted, sorts_elided =
        match prepared_of ?cache ~stats:card_stats opts text with
        | Prepared_plans { raw; optimized; physical; pos_sorted; sorts_elided }
          ->
          (raw, optimized, physical, pos_sorted, sorts_elided)
        | Prepared_core _ -> assert false
      in
      let profile = if with_profile then Some (Algebra.Profile.create ()) else None in
      Option.iter
        (fun p ->
           if sorts_elided > 0 then Algebra.Profile.add_sorts_elided p sorts_elided;
           if pos_sorted then Algebra.Profile.count_root_sort_elided p)
        profile;
      let guard = Option.map Budget.start opts.budget in
      (* bulk-decode counting is a process-wide atomic (scans run inside
         worker domains); the profile gets this run's delta *)
      let bulk0 =
        match profile with
        | Some _ -> Xmldb.Doc_store.Stats.bulk_decodes ()
        | None -> 0
      in
      let table =
        match physical with
        | Some pp ->
          Algebra.Physical.run ?profile ?guard ~step_impl:opts.step_impl
            ~mode:opts.eval_mode ~jobs:opts.jobs ~code_eval:opts.code_eval
            store pp
        | None ->
          Algebra.Eval.run ?profile ?guard ~step_impl:opts.step_impl
            ~mode:opts.eval_mode store optimized
      in
      Option.iter
        (fun p ->
           Algebra.Profile.add_bulk_decodes p
             (Xmldb.Doc_store.Stats.bulk_decodes () - bulk0))
        profile;
      let items = items_of_table ~pos_sorted table in
      { items;
        serialized = Interp.Xdm.serialize store items;
        plan = Some optimized; raw_plan = Some raw; physical_plan = physical;
        profile;
        wall_seconds = Basis.Clock.now () -. t0;
        degraded = None;
        cache_stats = stats () }
    in
    (match run_compiled () with
     | r -> r
     | exception Basis.Err.Internal_error m when opts.fallback ->
       (* graceful degradation: a compiler/executor bug must not take the
          query down — retry on the reference interpreter (its guard is
          re-armed: the fallback run gets a fresh budget; the plan cache is
          bypassed — this path exists because something we built is wrong,
          so nothing cached is trusted) *)
       run_interpreted
         ~degraded:
           (Some
              (Printf.sprintf
                 "compiled backend failed (internal error: %s); \
                  answered by the reference interpreter" m))
         (parse_and_normalize ?mode:opts.mode text))

let run_to_string ?cache ?opts store text =
  (run ?cache ?opts store text).serialized

(* ---------------------------------------------- classified error capture *)

type error = { kind : Basis.Err.kind; message : string }

(* Fold the front-end parsers' positioned exceptions into the uniform
   taxonomy: anything the query author wrote wrong is a static error. *)
let classify_error = function
  | Xquery.Parser.Syntax_error (m, pos) ->
    Some
      { kind = Basis.Err.Static;
        message = Printf.sprintf "syntax error at offset %d: %s" pos m }
  | Xmldb.Xml_parser.Parse_error (m, pos) ->
    Some
      { kind = Basis.Err.Static;
        message = Printf.sprintf "XML parse error at offset %d: %s" pos m }
  | e ->
    Option.map
      (fun (kind, message) -> { kind; message })
      (Basis.Err.classify e)

let run_result ?cache ?opts ?with_profile store text =
  match run ?cache ?opts ?with_profile store text with
  | r -> Ok r
  | exception e ->
    (match classify_error e with
     | Some err -> Error err
     | None -> raise e)

(* Compile once, execute many times (benchmark harness): returns the
   optimized plan and a closure that runs it against a fresh evaluation
   context, returning the item count. *)
let prepare ?cache ?(opts = default_opts) store text =
  match prepared_of ?cache ~stats:(stats_of_store store) opts text with
  | Prepared_core core ->
    ( None,
      fun () ->
        List.length
          (Interp.Interpreter.eval_core ?guard:(interp_guard opts) store core)
    )
  | Prepared_plans { optimized; physical; _ } ->
    ( Some optimized,
      fun () ->
        let guard = Option.map Budget.start opts.budget in
        let table =
          match physical with
          | Some pp ->
            Algebra.Physical.run ?guard ~step_impl:opts.step_impl
              ~mode:opts.eval_mode ~jobs:opts.jobs
              ~code_eval:opts.code_eval store pp
          | None ->
            Algebra.Eval.run ?guard ~step_impl:opts.step_impl
              ~mode:opts.eval_mode store optimized
        in
        Algebra.Table.nrows table )
