(** The end-to-end engine façade:

    {v parse → normalize (J·K) → compile (⇒) → optimize → execute → serialize v}

    {!opts} exposes every knob the paper's experiments need; the two
    canonical settings are {!default_opts} (everything on) and
    {!ordered_baseline} (order indifference ignored — plans emitted as if
    ordering mode ordered, no cleanup — the comparison system of the
    paper's Section 5). *)

(** The LRU machinery behind the prepared-plan cache (re-exported: the
    library is wrapped, so this is its public path). *)
module Plan_cache : module type of Plan_cache

type backend = Compiled | Interpreted

type opts = {
  mode : Xquery.Ast.ordering_mode option;
      (** force the ordering mode (overrides the prolog) *)
  unordered_rules : bool;  (** the Figure-7 rules FN:UNORDERED/LOC#/BIND# *)
  cda : bool;              (** column dependency analysis (Section 4.1) *)
  hoist : bool;            (** loop-invariant hoisting *)
  backend : backend;       (** compiled plans or the reference interpreter *)
  step_impl : Algebra.Eval.step_impl;
      (** how the step operator ⊘ is realized: staircase scan or
          TwigStack-style tag-indexed streams *)
  eval_mode : Algebra.Eval.mode;
      (** [Dag] (default): shared subplans are evaluated once per run;
          [Tree]: sharing-oblivious re-evaluation, the differential
          oracle — results identical, costs not *)
  physical : [ `On | `Off ];
      (** [`On] (default): lower the optimized plan to the physical layer
          (typed columns, selection vectors, fused kernels) and execute
          that; [`Off]: the boxed logical executor. Results are
          identical; the physical path is the fast one. Participates in
          the plan-cache fingerprint (the lowered plan is cached). *)
  join_rec : bool;  (** FLWOR where-clause value-join recognition *)
  join_isolation : bool;
      (** join-graph isolation: the compile-level slide of a joinable
          [where] past intervening [let] clauses it does not depend on
          (so join recognition fires on for-let-where shapes), plus the
          {!Algebra.Joingraph} rewrite rules that collapse the
          count-then-filter scaffolds of [where empty(...)] and
          [some ... satisfies] existentials into semijoin/antijoin
          operators. Results, error choice and forced-ordered behaviour
          are identical on or off (default [true]). Participates in the
          plan-cache fingerprint. *)
  budget : Basis.Budget.spec option;
      (** resource governance — a fresh guard is armed per run (and per
          {!prepare} closure call); exhaustion raises
          {!Basis.Err.Resource_error} from either backend *)
  fallback : bool;
      (** graceful degradation: when the compiled backend raises
          {!Basis.Err.Internal_error}, retry on the reference interpreter
          and report via {!result.degraded} (default [true]) *)
  jobs : int;
      (** domains for morsel-parallel physical execution; [1] = serial.
          The default comes from the XRQ_JOBS environment variable
          (absent/malformed = 1). Results, error choice and profile
          counters are bit-identical to serial — only wall-clock time
          changes. The boxed executor and the interpreter ignore it.
          Participates in the plan-cache fingerprint. *)
  rewrite : bool;
      (** run the logical rewriter ({!Algebra.Rewrite}) between CDA and
          lowering: selection/function pushdown, join synthesis over
          cross products, order-insensitive join reassociation, and
          cardinality-driven join input ordering. Pure optimization —
          results and error behaviour are unchanged (default [true]).
          Participates in the plan-cache fingerprint. *)
  order_props : bool;
      (** ordering-property reasoning ({!Algebra.Order}): the rewriter's
          sort-elision rule ([%] → [#] when the required order already
          holds), the root sort-on-pos skip when the plan proves
          pos-order, and merge-degraded [%] kernels over piecewise-sorted
          input. Structural proofs about physical row order — never the
          query's ordering mode — so results are identical on or off
          (default [true]). Participates in the plan-cache
          fingerprint. *)
  code_eval : bool;
      (** compressed execution in the physical backend: batched staircase
          steps over bulk-decoded packed columns, atomize/string results
          carried as per-fragment dictionary codes
          ({!Algebra.Column.t.Codes}), and string-equality predicates
          translated once per fragment and evaluated as integer code
          compares, with strings materialized only at pipeline breakers
          and output. Results are bit-identical on or off; [false]
          ([--no-code-eval]) is the materialized reference path the
          parity oracle and benchmarks compare against (default [true]).
          Participates in the plan-cache fingerprint. *)
}

val default_opts : opts

(** Order indifference disabled end to end. *)
val ordered_baseline : opts

type result = {
  items : Algebra.Value.t list;  (** the result sequence *)
  serialized : string;
  plan : Algebra.Plan.node option;      (** after optimization *)
  raw_plan : Algebra.Plan.node option;  (** before optimization *)
  physical_plan : Algebra.Physical.pnode option;
      (** the lowered physical plan, when the physical backend ran *)
  profile : Algebra.Profile.t option;
  wall_seconds : float;
  degraded : string option;
      (** [Some reason] when the compiled backend failed internally and
          the answer was served by the interpreter fallback *)
  cache_stats : Plan_cache.stats option;
      (** plan-cache hit/miss/eviction counters as of this run's end,
          when the run was given a cache *)
}

(** {2 Prepared-plan cache}

    An LRU cache over prepared queries, keyed by (normalized query text,
    options fingerprint): a hit skips parse → normalize → compile →
    optimize entirely. Prepared plans hold no store references, so one
    cache may serve runs against different stores. Only plan-shaping
    options participate in the fingerprint — budget, fallback, step and
    evaluation mode do not; the backend does (the two backends cache
    different artifacts). *)

type cache

(** [create_cache ~capacity ()] — default capacity 64 entries. *)
val create_cache : ?capacity:int -> unit -> cache

val cache_stats : cache -> Plan_cache.stats

(** The cache key's option part (exposed for tests). *)
val opts_fingerprint : opts -> string

val parse_and_normalize :
  ?mode:Xquery.Ast.ordering_mode -> string -> Xquery.Core_ast.core

(** Cardinality statistics read off a store, for the rewriter's and the
    lowerer's cost decisions (join input order, hash build sides).
    Advisory only: estimates never affect results. *)
val stats_of_store : Xmldb.Doc_store.t -> Algebra.Plan.Card.stats

(** Everything the compiler front half produces for one query: the
    compile configuration, the raw plan, the optimized plan (CDA
    interleaved with the logical rewriter when enabled), and the
    rewriter's per-rule fire counts for plan dumps. *)
type analysis = {
  acfg : Exrquy.Compile.cfg;
  araw : Algebra.Plan.node;
  aoptimized : Algebra.Plan.node;
  arewrite : Algebra.Rewrite.stats;
}

val analyze :
  ?opts:opts -> ?stats:Algebra.Plan.Card.stats -> string -> analysis

(** Compile a query text; returns (compiler cfg, raw plan, optimized
    plan). With [opts.cda = false] and [opts.rewrite = false] the
    optimized plan equals the raw plan. *)
val plans_of :
  ?opts:opts -> ?stats:Algebra.Plan.Card.stats -> string ->
  Exrquy.Compile.cfg * Algebra.Plan.node * Algebra.Plan.node

(** Lower an optimized logical plan to its physical-operator DAG, with
    statically inferred column types attached as plan-dump annotations
    (what the compiled backend executes when [physical = `On]). [stats]
    steers the hash-join build-side choice; omitted = defaults.
    [order_props] (default [true]) lets the ordering analysis attach
    merge hints to surviving [%] kernels. *)
val lower_physical :
  ?stats:Algebra.Plan.Card.stats ->
  ?order_props:bool ->
  Algebra.Plan.node ->
  Algebra.Physical.pnode

(** Whether evaluating this query may append fragments to the store:
    true when the prepared plan contains construction operators, and
    conservatively for the interpreter backend. The query server uses
    this to decide between the shared (read) and exclusive (write) side
    of a store's lock; passing the same [cache] as the subsequent {!run}
    makes the classification compile and the run compile one compile. *)
val constructs_nodes :
  ?cache:cache -> ?opts:opts -> Xmldb.Doc_store.t -> string -> bool

(** Evaluate a query against the store. [with_profile] attaches a
    per-bucket execution profile (the paper's Table 2 instrument).
    [cache] consults/populates a prepared-plan cache; the interpreter
    fallback path never uses it. *)
val run :
  ?cache:cache -> ?opts:opts -> ?with_profile:bool -> Xmldb.Doc_store.t ->
  string -> result

val run_to_string :
  ?cache:cache -> ?opts:opts -> Xmldb.Doc_store.t -> string -> string

(** A classified failure: one of the four {!Basis.Err.kind} classes plus
    a rendered message. *)
type error = { kind : Basis.Err.kind; message : string }

(** Classify an exception into the uniform error taxonomy: the four
    {!Basis.Err} classes plus the front-end parsers' positioned
    exceptions (both static). [None] for anything else. *)
val classify_error : exn -> error option

(** {!run}, with every classified error captured as [Error]; unknown
    exceptions still propagate. *)
val run_result :
  ?cache:cache -> ?opts:opts -> ?with_profile:bool -> Xmldb.Doc_store.t ->
  string -> (result, error) Stdlib.result

(** Compile once, execute many times (benchmarking): returns the optimized
    plan (when compiled) and a closure that evaluates it against a fresh
    context, returning the result's row count. *)
val prepare :
  ?cache:cache -> ?opts:opts -> Xmldb.Doc_store.t -> string ->
  Algebra.Plan.node option * (unit -> int)
