(* An LRU cache for prepared plans, keyed by strings built from the
   normalized query text and an options fingerprint (see Engine).

   Recency is tracked by a monotonically increasing tick stamped on every
   access; eviction scans for the minimum stamp. Capacities are small
   (tens to hundreds of entries) and evictions only happen on insertion
   past capacity, so the O(n) scan is irrelevant next to the
   parse->compile work a hit saves.

   The counters are the cache's observable contract: every [find] is
   either a hit or a miss, every insertion past capacity is an
   eviction.

   All operations take an internal mutex so the query server can share
   one cache across concurrent session threads. [find_or_add] builds
   outside the lock — compilation can take milliseconds and must not
   serialize unrelated lookups; two threads missing on the same key both
   build and the second [add] wins, which costs a duplicate compile, not
   correctness. *)

type 'a entry = {
  value : 'a;
  mutable last_used : int;
}

type 'a t = {
  mu : Mutex.t;
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ~capacity =
  { mu = Mutex.create ();
    capacity = max 0 capacity;
    tbl = Hashtbl.create (max 16 capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let capacity (t : 'a t) = t.capacity

let[@inline] locked (t : 'a t) f =
  Mutex.lock t.mu;
  match f () with
  | v -> Mutex.unlock t.mu; v
  | exception e -> Mutex.unlock t.mu; raise e

let find (t : 'a t) key =
  locked t (fun () ->
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      t.tick <- t.tick + 1;
      e.last_used <- t.tick;
      t.hits <- t.hits + 1;
      Some e.value
    | None ->
      t.misses <- t.misses + 1;
      None)

let evict_lru (t : 'a t) =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
         match acc with
         | Some (_, stamp) when stamp <= e.last_used -> acc
         | _ -> Some (k, e.last_used))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let add (t : 'a t) key value =
  if t.capacity > 0 then
    locked t (fun () ->
      if (not (Hashtbl.mem t.tbl key)) && Hashtbl.length t.tbl >= t.capacity
      then evict_lru t;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.tbl key { value; last_used = t.tick })

(* The build runs outside the lock (see module comment): a concurrent
   miss on the same key may build twice, last add wins. *)
let find_or_add t key build =
  match find t key with
  | Some v -> v
  | None ->
    let v = build () in
    add t key v;
    v

let stats (t : 'a t) =
  locked t (fun () ->
    { hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      size = Hashtbl.length t.tbl;
      capacity = t.capacity })

let pp_stats fmt s =
  Format.fprintf fmt "%d hits, %d misses, %d evictions, %d/%d entries"
    s.hits s.misses s.evictions s.size s.capacity

let stats_to_string s = Format.asprintf "%a" pp_stats s

(* ------------------------------------------------- query normalization *)

(* Cache keys want textual noise removed: comments stripped, whitespace
   runs collapsed, so reformatted copies of one query share an entry.
   Comments [(: ... :)] nest and act as token separators; string literals
   are copied verbatim (their whitespace is data).

   Queries containing '<' outside string literals are left untrimmed
   (beyond the surrounding whitespace): '<' may open a direct constructor
   whose literal text content is whitespace-significant, and the lexical
   scan here cannot tell a constructor from a comparison. Conservatism
   only costs key precision, never correctness. *)
let normalize_query src =
  let n = String.length src in
  let has_bare_lt =
    (* scan outside string literals for '<' *)
    let rec go i in_str quote =
      if i >= n then false
      else
        let c = src.[i] in
        if in_str then go (i + 1) (c <> quote) quote
        else if c = '"' || c = '\'' then go (i + 1) true c
        else if c = '<' then true
        else go (i + 1) false ' '
    in
    go 0 false ' '
  in
  if has_bare_lt then String.trim src
  else begin
    let b = Buffer.create n in
    let i = ref 0 in
    let depth = ref 0 in
    let pending_ws = ref false in
    let sep () =
      if !pending_ws && Buffer.length b > 0 then Buffer.add_char b ' ';
      pending_ws := false
    in
    while !i < n do
      let c = src.[!i] in
      if !depth > 0 then begin
        if c = '(' && !i + 1 < n && src.[!i + 1] = ':' then begin
          incr depth;
          i := !i + 2
        end
        else if c = ':' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          i := !i + 2
        end
        else incr i;
        pending_ws := true
      end
      else if c = '(' && !i + 1 < n && src.[!i + 1] = ':' then begin
        depth := 1;
        i := !i + 2;
        pending_ws := true
      end
      else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
        pending_ws := true;
        incr i
      end
      else if c = '"' || c = '\'' then begin
        sep ();
        Buffer.add_char b c;
        incr i;
        let fin = ref false in
        while (not !fin) && !i < n do
          let d = src.[!i] in
          Buffer.add_char b d;
          incr i;
          if d = c then
            (* doubled quotes escape the delimiter inside the literal *)
            if !i < n && src.[!i] = c then begin
              Buffer.add_char b c;
              incr i
            end
            else fin := true
        done
      end
      else begin
        sep ();
        Buffer.add_char b c;
        incr i
      end
    done;
    Buffer.contents b
  end
