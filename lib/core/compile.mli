(** The loop-lifting compilation scheme "e ⇒ q" (paper, Section 3) with
    the order-indifference extensions of Section 4 / Figure 7.

    Every XQuery Core expression compiles, relative to a loop relation
    (one row per active iteration), to a table with schema
    [iter|pos|item]: "in iteration [iter], the expression assumes item
    value [item] at the sequence position corresponding to [pos]'s rank".

    The Figure-7 rules, toggled by {!cfg.unordered_rules}:
    {ul
    {- FN:UNORDERED — [fn:unordered(e) ⇒ #pos(π_(iter,item)(q_e))];}
    {- LOC# — under ordering mode unordered, steps take [#pos] instead of
       [%pos:⟨item⟩‖iter];}
    {- BIND# — under ordering mode unordered (or below an [order by]
       clause, context (f) of the paper), for-variable bindings take
       [#bind] instead of [%bind:⟨iter,pos⟩].}}

    Engineering notes:
    {ul
    {- {e loop-invariant hoisting} ({!cfg.hoist}): sub-expressions compile
       under the shallowest loop binding their free variables and are
       mapped into the current loop, reproducing the "evaluated once only"
       effect the paper gets from Pathfinder's join recognition;}
    {- like real loop-lifted plans, compilation is {e eager through
       conditionals}: both branches of an [if] compile over restricted
       loops and union — dynamic errors may surface from unreached
       branches (spec-sanctioned latitude);}
    {- static cardinality analysis elides the runtime singleton checks
       ([A_the]) wherever an operand is provably a singleton.}} *)

type cfg = {
  b : Algebra.Plan.builder;
  unordered_rules : bool;  (** enable FN:UNORDERED / LOC# / BIND# *)
  hoist : bool;            (** loop-invariant hoisting *)
  join_rec : bool;
      (** FLWOR where-clause value-join recognition (the paper's reference
          [9]): [for $v in D where a cmp b] with a fully loop-invariant D,
          a independent of $v, and b depending on at most $v compiles the
          filtered inner loop as a theta join instead of cross + filter *)
  join_isolation : bool;
      (** compile-level join-graph isolation: a joinable where may slide
          left past intervening let clauses that do not bind its free
          variables, so join recognition fires on for-let-where shapes
          (XMark Q9). The slid-over lets compile under the join-filtered
          loop — evaluated only for surviving iterations, the
          dynamic-error latitude (XQuery 2.3.4) join recognition already
          uses *)
}

val default_cfg : unit -> cfg

(** Compile a whole Core expression. The resulting plan yields the query
    result as an [iter|pos|item] table with [iter] = 1. Returns the
    configuration (whose builder must be reused for further rewriting)
    and the plan root. *)
val compile_core :
  ?cfg:cfg -> Xquery.Core_ast.core -> cfg * Algebra.Plan.node
