(* Bottom-up plan property inference:

     - static schema (column set) of every operator,
     - constant columns (every row carries the same, known value),
     - "arbitrary" columns: columns whose values were produced by the
       rowid operator # and therefore carry no semantic order information.

   This is the property framework the paper's wrap-up (Section 7) uses to
   degrade the residual %pos1:<bind,pos>||iter1 of Figure 9 to a free
   numbering: iter1 and pos are found constant, bind is found arbitrary,
   which empties %'s order criteria. *)

open Basis
module A = Algebra.Plan
module Value = Algebra.Value
module Column = Algebra.Column
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type props = {
  schema : SSet.t;
  consts : Value.t SMap.t;   (* column -> the value it always carries *)
  arbitrary : SSet.t;        (* columns born from # (rowid) *)
  ctypes : Column.ty SMap.t; (* column -> statically known value type;
                                absent means T_mixed (unknown). Hints for
                                the physical layer: they gate whether a
                                runtime retype is attempted, never replace
                                the dynamic check. *)
  keys : SSet.t;             (* columns provably duplicate-free *)
  dense : SSet.t;            (* columns strictly increasing in physical
                                row order (implies keys) *)
}

type t = (int, props) Hashtbl.t

let props tbl (n : A.node) : props =
  match Hashtbl.find_opt tbl n.A.id with
  | Some p -> p
  | None -> Err.internal "properties: node %d not inferred" n.A.id

let schema_list tbl n = SSet.elements (props tbl n).schema

let col_ty tbl n c =
  match SMap.find_opt c (props tbl n).ctypes with
  | Some ty -> ty
  | None -> Column.T_mixed

(* restrict a map/set to a column set *)
let restrict_map m cols = SMap.filter (fun c _ -> SSet.mem c cols) m
let restrict_set s cols = SSet.inter s cols

(* ------------------------------------------- static column-type inference *)

(* [None] means "statically unknown" (= T_mixed): the safe answer
   everywhere. These mirror the promotion rules of [Value]'s arithmetic:
   Int op Int stays Int except for [div], which yields Int or Dbl
   depending on exactness. *)

let atomize_ty = function
  | Some Column.T_node -> Some Column.T_str
  | Some (Column.T_int | Column.T_dbl | Column.T_bool | Column.T_str) as t -> t
  | _ -> None

let prim1_ty (f : A.prim1) (arg : Column.ty option) : Column.ty option =
  let open Column in
  match f with
  | A.P_not | A.P_is_node | A.P_cast_bool | A.P_check_zero_one
  | A.P_check_exactly_one | A.P_check_one_or_more | A.P_castable _
  | A.P_instance_item _ | A.P_check_treat -> Some T_bool
  | A.P_string | A.P_cast_str | A.P_normalize_space | A.P_upper | A.P_lower
  | A.P_serialize | A.P_name | A.P_local_name -> Some T_str
  | A.P_string_length | A.P_cast_int -> Some T_int
  | A.P_number | A.P_cast_dbl -> Some T_dbl
  | A.P_neg | A.P_round | A.P_floor | A.P_ceiling | A.P_abs ->
    (match arg with Some (T_int | T_dbl) -> arg | _ -> None)
  | A.P_atomize -> atomize_ty arg
  | A.P_node_check -> Some T_node
  | A.P_cast_as ty ->
    (match ty with
     | A.Ty_integer -> Some T_int
     | A.Ty_double -> Some T_dbl
     | A.Ty_string | A.Ty_untyped -> Some T_str
     | A.Ty_boolean -> Some T_bool
     | A.Ty_any_atomic -> atomize_ty arg)
  | A.P_error -> None

let prim2_ty (f : A.prim2) a b : Column.ty option =
  let open Column in
  let numeric =
    match (a, b) with
    | Some T_int, Some T_int -> Some T_int
    | Some (T_int | T_dbl), Some (T_int | T_dbl) -> Some T_dbl
    | _ -> None
  in
  match f with
  | A.P_eq | A.P_ne | A.P_lt | A.P_le | A.P_gt | A.P_ge | A.P_and | A.P_or
  | A.P_is | A.P_before | A.P_after | A.P_contains | A.P_starts_with
  | A.P_ends_with -> Some T_bool
  | A.P_concat | A.P_substr_before | A.P_substr_after -> Some T_str
  | A.P_add | A.P_sub | A.P_mul | A.P_mod -> numeric
  | A.P_div ->
    (* Int/Int yields Int when exact, Dbl otherwise: unknown statically *)
    (match (a, b) with
     | Some T_dbl, Some (T_int | T_dbl) | Some T_int, Some T_dbl ->
       Some T_dbl
     | _ -> None)
  | A.P_idiv -> Some T_int

let agg_ty (agg : A.agg) (arg : Column.ty option) : Column.ty option =
  let open Column in
  match agg with
  | A.A_count -> Some T_int
  | A.A_ebv -> Some T_bool
  | A.A_str_join _ -> Some T_str
  | A.A_the -> arg
  (* an empty group sums to Int 0, so T_dbl input does not give T_dbl *)
  | A.A_sum -> (match arg with Some T_int -> Some T_int | _ -> None)
  | A.A_max | A.A_min -> (match arg with Some (T_int | T_dbl) -> arg | _ -> None)
  | A.A_avg -> (match arg with Some T_dbl -> Some T_dbl | _ -> None)

(* add a hint only when it is informative *)
let add_ty res ty m =
  match ty with
  | Some t when t <> Column.T_mixed -> SMap.add res t m
  | _ -> SMap.remove res m

(* Exact key/denseness facts for literal tables, bounded so inference
   stays linear on big literals (where the facts would not pay anyway). *)
let lit_keys_dense schema rows =
  let n = List.length rows in
  if n = 0 || n > 32 then
    if n = 0 then
      (* no rows: every column is vacuously unique and increasing *)
      let all = SSet.of_list (Array.to_list schema) in
      (all, all)
    else (SSet.empty, SSet.empty)
  else
    Array.to_list schema
    |> List.mapi (fun i c ->
        let vals = List.map (fun (row : Value.t array) -> row.(i)) rows in
        let distinct =
          let rec ok = function
            | [] -> true
            | v :: rest -> (not (List.exists (Value.equal v) rest)) && ok rest
          in
          ok vals
        in
        let increasing =
          let rec ok = function
            | Value.Int a :: (Value.Int b :: _ as rest) -> a < b && ok rest
            | [ Value.Int _ ] -> true
            | [] -> true
            | _ -> false
          in
          ok vals
        in
        (c, distinct, increasing))
    |> List.fold_left
      (fun (ks, ds) (c, k, d) ->
         ((if k then SSet.add c ks else ks),
          (if d then SSet.add c ds else ds)))
      (SSet.empty, SSet.empty)

let single_row (n : A.node) =
  match n.A.op with A.Lit { rows = [ _ ]; _ } -> true | _ -> false

let infer (root : A.node) : t =
  let tbl : t = Hashtbl.create 64 in
  let get n = props tbl n in
  (* the ctypes of a node-producing operator's output: iter survives,
     item is a node *)
  let node_output pi =
    add_ty "item" (Some Column.T_node)
      (restrict_map pi.ctypes (SSet.singleton "iter"))
  in
  List.iter
    (fun (n : A.node) ->
       let p =
         match n.A.op with
         | A.Lit { schema; rows } ->
           let schema_set = SSet.of_list (Array.to_list schema) in
           let consts =
             match rows with
             | [ row ] ->
               Array.to_seq schema
               |> Seq.mapi (fun i c -> (c, row.(i)))
               |> SMap.of_seq
             | _ -> SMap.empty
           in
           let ctypes =
             match rows with
             | [] -> SMap.empty
             | first :: rest ->
               let tys = Array.map Column.ty_of_value first in
               List.iter
                 (fun row ->
                    Array.iteri
                      (fun i v ->
                         tys.(i) <-
                           Column.ty_union tys.(i) (Column.ty_of_value v))
                      row)
                 rest;
               Array.to_seq schema
               |> Seq.mapi (fun i c -> (i, c))
               |> Seq.filter_map (fun (i, c) ->
                   if tys.(i) = Column.T_mixed then None
                   else Some (c, tys.(i)))
               |> SMap.of_seq
           in
           let keys, dense = lit_keys_dense schema rows in
           { schema = schema_set; consts; arbitrary = SSet.empty; ctypes;
             keys; dense }
         | A.Project { input; cols } ->
           let pi = get input in
           let schema = SSet.of_list (List.map fst cols) in
           let consts =
             List.fold_left
               (fun acc (nw, src) ->
                  match SMap.find_opt src pi.consts with
                  | Some v -> SMap.add nw v acc
                  | None -> acc)
               SMap.empty cols
           in
           let arbitrary =
             List.fold_left
               (fun acc (nw, src) ->
                  if SSet.mem src pi.arbitrary then SSet.add nw acc else acc)
               SSet.empty cols
           in
           let ctypes =
             List.fold_left
               (fun acc (nw, src) ->
                  match SMap.find_opt src pi.ctypes with
                  | Some ty -> SMap.add nw ty acc
                  | None -> acc)
               SMap.empty cols
           in
           (* row count unchanged, so per-column facts just rename *)
           let rename_set s =
             List.fold_left
               (fun acc (nw, src) ->
                  if SSet.mem src s then SSet.add nw acc else acc)
               SSet.empty cols
           in
           { schema; consts; arbitrary; ctypes;
             keys = rename_set pi.keys; dense = rename_set pi.dense }
         | A.Select { input; _ } | A.Distinct { input } -> get input
         | A.Semijoin { left; _ } | A.Antijoin { left; _ } -> get left
         | A.Join { left; right; lcol; rcol } ->
           let pl = get left and pr = get right in
           (* a side's uniqueness survives iff the other side's join
              column is a key (each row then matches at most once); the
              output enumerates surviving left rows in order, so left
              denseness survives under the same condition *)
           let keys =
             SSet.union
               (if SSet.mem rcol pr.keys then pl.keys else SSet.empty)
               (if SSet.mem lcol pl.keys then pr.keys else SSet.empty)
           in
           let dense =
             if SSet.mem rcol pr.keys then pl.dense else SSet.empty
           in
           { schema = SSet.union pl.schema pr.schema;
             consts =
               SMap.union (fun _ v _ -> Some v) pl.consts pr.consts;
             arbitrary = SSet.union pl.arbitrary pr.arbitrary;
             ctypes = SMap.union (fun _ ty _ -> Some ty) pl.ctypes pr.ctypes;
             keys; dense }
         | A.Thetajoin { left; right; _ } ->
           let pl = get left and pr = get right in
           { schema = SSet.union pl.schema pr.schema;
             consts =
               SMap.union (fun _ v _ -> Some v) pl.consts pr.consts;
             arbitrary = SSet.union pl.arbitrary pr.arbitrary;
             ctypes = SMap.union (fun _ ty _ -> Some ty) pl.ctypes pr.ctypes;
             keys = SSet.empty; dense = SSet.empty }
         | A.Cross { left; right } ->
           let pl = get left and pr = get right in
           (* products repeat rows, except against a one-row side *)
           let keys, dense =
             if single_row right then (pl.keys, pl.dense)
             else if single_row left then (pr.keys, pr.dense)
             else (SSet.empty, SSet.empty)
           in
           { schema = SSet.union pl.schema pr.schema;
             consts =
               SMap.union (fun _ v _ -> Some v) pl.consts pr.consts;
             arbitrary = SSet.union pl.arbitrary pr.arbitrary;
             ctypes = SMap.union (fun _ ty _ -> Some ty) pl.ctypes pr.ctypes;
             keys; dense }
         | A.Union { left; right } ->
           let pl = get left and pr = get right in
           (* a column is constant after union iff constant with the same
              value on both sides; same pointwise reasoning for types *)
           let consts =
             SMap.merge
               (fun _ a b ->
                  match (a, b) with
                  | Some va, Some vb when Value.equal va vb -> Some va
                  | _ -> None)
               pl.consts pr.consts
           in
           let ctypes =
             SMap.merge
               (fun _ a b ->
                  match (a, b) with
                  | Some ta, Some tb when ta = tb -> Some ta
                  | _ -> None)
               pl.ctypes pr.ctypes
           in
           { schema = pl.schema;
             consts;
             arbitrary = SSet.inter pl.arbitrary pr.arbitrary;
             ctypes;
             (* rows from both sides interleave: uniqueness is lost *)
             keys = SSet.empty; dense = SSet.empty }
         | A.Rownum { input; res; part; _ } ->
           let pi = get input in
           (* unpartitioned row numbers are unique; they follow the sort
              order, not the physical row order, so they are not dense *)
           let keys =
             match part with
             | None -> SSet.add res pi.keys
             | Some _ -> pi.keys
           in
           { pi with
             schema = SSet.add res pi.schema;
             ctypes = SMap.add res Column.T_int pi.ctypes;
             keys }
         | A.Rowid { input; res } ->
           let pi = get input in
           { schema = SSet.add res pi.schema;
             consts = pi.consts;
             arbitrary = SSet.add res pi.arbitrary;
             ctypes = SMap.add res Column.T_int pi.ctypes;
             (* # numbers rows consecutively in physical order *)
             keys = SSet.add res pi.keys;
             dense = SSet.add res pi.dense }
         | A.Attach { input; res; value } ->
           let pi = get input in
           { schema = SSet.add res pi.schema;
             consts = SMap.add res value pi.consts;
             arbitrary = pi.arbitrary;
             ctypes = add_ty res (Some (Column.ty_of_value value)) pi.ctypes;
             keys = pi.keys; dense = pi.dense }
         | A.Fun1 { input; res; f; arg } ->
           let pi = get input in
           { pi with
             schema = SSet.add res pi.schema;
             ctypes =
               add_ty res (prim1_ty f (SMap.find_opt arg pi.ctypes)) pi.ctypes }
         | A.Fun2 { input; res; f; arg1; arg2 } ->
           let pi = get input in
           { pi with
             schema = SSet.add res pi.schema;
             ctypes =
               add_ty res
                 (prim2_ty f
                    (SMap.find_opt arg1 pi.ctypes)
                    (SMap.find_opt arg2 pi.ctypes))
                 pi.ctypes }
         | A.Fun3 { input; res; _ } ->
           let pi = get input in
           (* both ternary primitives build strings *)
           { pi with
             schema = SSet.add res pi.schema;
             ctypes = SMap.add res Column.T_str pi.ctypes }
         | A.Aggr { input; res; agg; arg; part; _ } ->
           let pi = get input in
           let schema, keep =
             match part with
             | Some p -> (SSet.of_list [ p; res ], SSet.singleton p)
             | None -> (SSet.singleton res, SSet.empty)
           in
           let arg_ty =
             Option.bind arg (fun a -> SMap.find_opt a pi.ctypes)
           in
           (* group-key values are a subset of the input's *)
           let keys, dense =
             match part with
             | Some p -> (SSet.singleton p, SSet.empty)  (* one row per group *)
             | None ->
               (* a single output row: trivially unique and increasing *)
               (SSet.singleton res, SSet.singleton res)
           in
           { schema;
             consts = restrict_map pi.consts keep;
             arbitrary = restrict_set pi.arbitrary keep;
             ctypes =
               add_ty res (agg_ty agg arg_ty) (restrict_map pi.ctypes keep);
             keys; dense }
         | A.Step { input; _ } | A.Doc { input } | A.Textnode { input }
         | A.Commentnode { input } | A.Pinode { input } ->
           let pi = get input in
           let keep = SSet.singleton "iter" in
           { schema = SSet.of_list [ "iter"; "item" ];
             consts = restrict_map pi.consts keep;
             arbitrary = restrict_set pi.arbitrary keep;
             ctypes = node_output pi;
             keys = SSet.empty; dense = SSet.empty }
         | A.Id_lookup { context; _ } ->
           let pc = get context in
           let keep = SSet.singleton "iter" in
           { schema = SSet.of_list [ "iter"; "item" ];
             consts = restrict_map pc.consts keep;
             arbitrary = restrict_set pc.arbitrary keep;
             ctypes = node_output pc;
             keys = SSet.empty; dense = SSet.empty }
         | A.Elem { qnames; _ } | A.Attr { qnames; _ } ->
           let pq = get qnames in
           let keep = SSet.singleton "iter" in
           { schema = SSet.of_list [ "iter"; "item" ];
             consts = restrict_map pq.consts keep;
             arbitrary = restrict_set pq.arbitrary keep;
             ctypes = node_output pq;
             keys = SSet.empty; dense = SSet.empty }
         | A.Range { input; lo = _; hi = _ } ->
           let pi = get input in
           let keep = SSet.singleton "iter" in
           { schema = SSet.of_list [ "iter"; "pos"; "item" ];
             consts = restrict_map pi.consts keep;
             arbitrary = restrict_set pi.arbitrary keep;
             ctypes =
               SMap.add "pos" Column.T_int
                 (SMap.add "item" Column.T_int
                    (restrict_map pi.ctypes keep));
             keys = SSet.empty; dense = SSet.empty }
         | A.Textify { input } ->
           let pi = get input in
           let keep = SSet.singleton "iter" in
           (* atomic runs become text nodes; node items pass through.
              Emitted pos values are a subset of the input's, so its type
              (but not its const-ness, kept conservative) survives. *)
           { schema = SSet.of_list [ "iter"; "pos"; "item" ];
             consts = restrict_map pi.consts keep;
             arbitrary = restrict_set pi.arbitrary keep;
             ctypes =
               SMap.add "item" Column.T_node
                 (restrict_map pi.ctypes (SSet.of_list [ "iter"; "pos" ]));
             keys = SSet.empty; dense = SSet.empty }
       in
       Hashtbl.replace tbl n.A.id p)
    (A.topo_order root);
  tbl
