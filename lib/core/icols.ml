(* Column dependency analysis and plan simplification (paper, Section 4.1,
   plus the Section 4.2 / Section 7 rewrites it enables).

   Phase 1 (analysis) walks the DAG top-down and infers, for every
   operator, the set of strictly required columns — seeded at the root
   with {pos, item}, the columns needed to serialize the query result.

   Phase 2 (rewrite) rebuilds the DAG bottom-up:
     - operators producing unrequired columns (%, #, @, fun) are pruned —
       this is what actually cashes in the order indifference that Rules
       LOC#/BIND#/FN:UNORDERED introduced (Figures 6(b) -> 9);
     - projections are narrowed to the required columns and fused;
     - rownum order criteria drop constant columns; a rownum left with
       only arbitrary (#-born) criteria and constant partitioning
       degrades into a free # (the paper's Section 7 wrap-up);
     - adjacent steps merge: descendant-or-self::node()/child::nt
       becomes descendant::nt once no order-establishing operator remains
       between them (the Q6/Q7 "exceptional speedup" of Section 5);
     - sigma over a comparison over a cross product fuses into a theta
       join (a lightweight form of Pathfinder's join recognition [9]).

   The optimize loop alternates analysis and rewriting to a fixpoint. *)

module A = Algebra.Plan
module SSet = Set.Make (String)
module P = Properties

(* ------------------------------------------------------------- analysis *)

let required (props : P.t) (root : A.node) : (int, SSet.t) Hashtbl.t =
  let req : (int, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  let get n = Option.value ~default:SSet.empty (Hashtbl.find_opt req n.A.id) in
  let add n cols =
    Hashtbl.replace req n.A.id (SSet.union (get n) cols)
  in
  Hashtbl.replace req root.A.id (SSet.of_list [ "pos"; "item" ]);
  let schema n = (P.props props n).P.schema in
  (* root first: topo_order lists children before parents *)
  List.iter
    (fun (n : A.node) ->
       let rs = get n in
       match n.A.op with
       | A.Lit _ -> ()
       | A.Project { input; cols } ->
         (* mirror the rewrite: a projection that keeps no required column
            still keeps its first column (for row cardinality) *)
         let kept = List.filter (fun (nw, _) -> SSet.mem nw rs) cols in
         let kept = if kept = [] then [ List.hd cols ] else kept in
         add input (SSet.of_list (List.map snd kept))
       | A.Select { input; col } -> add input (SSet.add col rs)
       | A.Join { left; right; lcol; rcol }
       | A.Thetajoin { left; right; lcol; rcol; _ } ->
         add left (SSet.add lcol (SSet.inter rs (schema left)));
         add right (SSet.add rcol (SSet.inter rs (schema right)))
       | A.Semijoin { left; right; on } | A.Antijoin { left; right; on } ->
         add left (SSet.union rs (SSet.of_list (List.map fst on)));
         add right (SSet.of_list (List.map snd on))
       | A.Cross { left; right } ->
         add left (SSet.inter rs (schema left));
         add right (SSet.inter rs (schema right))
       | A.Union { left; right } ->
         add left rs;
         add right rs
       | A.Distinct { input } ->
         (* duplicate elimination observes every column *)
         add input (schema input)
       | A.Rownum { input; res; order; part } ->
         if SSet.mem res rs then
           add input
             (SSet.union
                (SSet.remove res rs)
                (SSet.of_list
                   (List.map fst order @ Option.to_list part)))
         else add input rs
       | A.Rowid { input; res } | A.Attach { input; res; _ } ->
         add input (SSet.remove res rs)
       | A.Fun1 { input; res; arg; _ } ->
         if SSet.mem res rs then
           add input (SSet.add arg (SSet.remove res rs))
         else add input rs
       | A.Fun2 { input; res; arg1; arg2; _ } ->
         if SSet.mem res rs then
           add input (SSet.add arg1 (SSet.add arg2 (SSet.remove res rs)))
         else add input rs
       | A.Fun3 { input; res; arg1; arg2; arg3; _ } ->
         if SSet.mem res rs then
           add input
             (SSet.add arg1
                (SSet.add arg2 (SSet.add arg3 (SSet.remove res rs))))
         else add input rs
       | A.Aggr { input; arg; part; order; _ } ->
         add input
           (SSet.of_list
              (Option.to_list arg @ Option.to_list part @ Option.to_list order))
       | A.Step { input; _ } | A.Doc { input } ->
         add input (SSet.of_list [ "iter"; "item" ])
       | A.Elem { qnames; content } ->
         add qnames (SSet.of_list [ "iter"; "item" ]);
         add content (SSet.of_list [ "iter"; "pos"; "item" ])
       | A.Attr { qnames; values } ->
         add qnames (SSet.of_list [ "iter"; "item" ]);
         add values (SSet.of_list [ "iter"; "item" ])
       | A.Textnode { input } | A.Commentnode { input } ->
         add input (SSet.of_list [ "iter"; "item" ])
       | A.Pinode { input } ->
         add input (SSet.of_list [ "iter"; "target"; "value" ])
       | A.Range { input; lo; hi } ->
         add input (SSet.of_list [ "iter"; lo; hi ])
       | A.Textify { input } ->
         add input (SSet.of_list [ "iter"; "pos"; "item" ])
       | A.Id_lookup { values; context } ->
         add values (SSet.of_list [ "iter"; "item" ]);
         add context (SSet.of_list [ "iter"; "item" ]))
    (List.rev (A.topo_order root));
  req

(* -------------------------------------------------------------- rewriting *)

let is_identity_pair (nw, src) = String.equal nw src

(* Schema of a (possibly freshly rewritten) node, memoized by node id. *)
let make_schema_of () =
  let memo : (int, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  let rec schema_of (n : A.node) =
    match Hashtbl.find_opt memo n.A.id with
    | Some s -> s
    | None ->
      let s =
        match n.A.op with
        | A.Lit { schema; _ } -> SSet.of_list (Array.to_list schema)
        | A.Project { cols; _ } -> SSet.of_list (List.map fst cols)
        | A.Select { input; _ } | A.Distinct { input } -> schema_of input
        | A.Semijoin { left; _ } | A.Antijoin { left; _ } -> schema_of left
        | A.Join { left; right; _ } | A.Thetajoin { left; right; _ }
        | A.Cross { left; right } ->
          SSet.union (schema_of left) (schema_of right)
        | A.Union { left; _ } -> schema_of left
        | A.Rownum { input; res; _ } | A.Rowid { input; res }
        | A.Attach { input; res; _ } | A.Fun1 { input; res; _ }
        | A.Fun2 { input; res; _ } | A.Fun3 { input; res; _ } ->
          SSet.add res (schema_of input)
        | A.Aggr { res; part; _ } ->
          (match part with
           | Some p -> SSet.of_list [ p; res ]
           | None -> SSet.singleton res)
        | A.Step _ | A.Doc _ | A.Elem _ | A.Attr _ | A.Textnode _
        | A.Commentnode _ | A.Pinode _ | A.Id_lookup _ ->
          SSet.of_list [ "iter"; "item" ]
        | A.Range _ | A.Textify _ -> SSet.of_list [ "iter"; "pos"; "item" ]
      in
      Hashtbl.replace memo n.A.id s;
      s
  in
  schema_of

let rewrite b (props : P.t) req (root : A.node) : A.node =
  let schema_of = make_schema_of () in
  let mapped : (int, A.node) Hashtbl.t = Hashtbl.create 64 in
  let rs_of (orig : A.node) =
    Option.value ~default:SSet.empty (Hashtbl.find_opt req orig.A.id)
  in
  List.iter
    (fun (orig : A.node) ->
       let op' = A.map_children (fun c -> Hashtbl.find mapped c.A.id) orig.A.op in
       let rs = rs_of orig in
       let keep op = A.mk b op in
       let result =
         match op' with
         (* dead order/column producers *)
         | A.Rownum { input; res; _ } when not (SSet.mem res rs) -> input
         | A.Rowid { input; res } when not (SSet.mem res rs) -> input
         | A.Attach { input; res; _ } when not (SSet.mem res rs) -> input
         | A.Fun1 { input; res; _ } when not (SSet.mem res rs) -> input
         | A.Fun2 { input; res; _ } when not (SSet.mem res rs) -> input
         | A.Fun3 { input; res; _ } when not (SSet.mem res rs) -> input
         (* rownum: drop constant order criteria and constant grouping;
            degrade to # when only arbitrary criteria remain (Section 7) *)
         | A.Rownum { input; res; order; part } ->
           let iprops =
             match orig.A.op with
             | A.Rownum { input = oi; _ } -> P.props props oi
             | _ -> assert false
           in
           let order' =
             List.filter
               (fun (c, _) -> not (P.SMap.mem c iprops.P.consts))
               order
           in
           let part' =
             match part with
             | Some p when P.SMap.mem p iprops.P.consts -> None
             | p -> p
           in
           let all_arbitrary =
             List.for_all (fun (c, _) -> SSet.mem c iprops.P.arbitrary) order'
           in
           (* a leading strictly-increasing (dense) ascending criterion has
              no ties, so the remaining criteria are never consulted and
              the sort permutation is the identity: % degrades to # *)
           let dense_prefix =
             match order' with
             | (c, A.Asc) :: _ -> SSet.mem c iprops.P.dense
             | _ -> false
           in
           if order' = []
              || (all_arbitrary && part' = None)
              || (dense_prefix && part' = None)
           then keep (A.Rowid { input; res })
           else keep (A.Rownum { input; res; order = order'; part = part' })
         (* projection: narrow, fuse, and drop identities *)
         | A.Project { input; cols } ->
           let cols' = List.filter (fun (nw, _) -> SSet.mem nw rs) cols in
           let cols' = if cols' = [] then [ List.hd cols ] else cols' in
           (match input.A.op with
            | A.Project { input = inner; cols = inner_cols } ->
              let cols'' =
                List.map
                  (fun (nw, src) -> (nw, List.assoc src inner_cols))
                  cols'
              in
              keep (A.Project { input = inner; cols = cols'' })
            | A.Step _ | A.Doc _ | A.Elem _ | A.Attr _ | A.Textnode _
            | A.Commentnode _
              when List.for_all is_identity_pair cols'
                   && List.length cols' = 2
                   && List.mem_assoc "iter" cols'
                   && List.mem_assoc "item" cols' ->
              input
            | _ -> keep (A.Project { input; cols = cols' }))
         (* step fusion: descendant-or-self::node() followed by child /
            descendant / descendant-or-self *)
         | A.Step { input; axis; test } ->
           (match input.A.op with
            | A.Step { input = deeper; axis = Xmldb.Axis.Descendant_or_self;
                       test = A.N_any } ->
              (match axis with
               | Xmldb.Axis.Child | Xmldb.Axis.Descendant ->
                 keep (A.Step { input = deeper; axis = Xmldb.Axis.Descendant; test })
               | Xmldb.Axis.Descendant_or_self when test = A.N_any ->
                 input
               | _ -> keep op')
            | _ -> keep op')
         (* duplicate duplicate elimination; and delta over rows carrying
            a provably duplicate-free column passes every row through in
            order — exact, delta keeps first occurrences in row order *)
         | A.Distinct { input } ->
           (* the key must lie inside the columns the CONSUMERS require
              of this delta (rs), not merely inside the input's current
              schema: the delta's input keeps its full schema only
              because the delta itself demands it, so once the delta is
              elided the key column is pruned on the next round — and a
              key outside rs then guarantees nothing about duplicates
              among the rows restricted to rs *)
           let keyed =
             match orig.A.op with
             | A.Distinct { input = oi } ->
               SSet.exists
                 (fun c -> SSet.mem c rs)
                 (P.props props oi).P.keys
             | _ -> false
           in
           (match input.A.op with
            | A.Distinct _ -> input
            | _ when keyed -> input
            | _ -> keep op')
         (* union with a statically empty side; re-align schemas that the
            narrowing of one side may have made asymmetric *)
         | A.Union { left; right } ->
           (match (left.A.op, right.A.op) with
            | A.Lit { rows = []; _ }, _ -> right
            | _, A.Lit { rows = []; _ } -> left
            | _ ->
              let sl = schema_of left and sr = schema_of right in
              if SSet.equal sl sr then keep op'
              else begin
                let common = SSet.elements (SSet.inter sl sr) in
                let narrow side s =
                  if SSet.equal s (SSet.of_list common) then side
                  else
                    A.mk b
                      (A.Project
                         { input = side;
                           cols = List.map (fun c -> (c, c)) common })
                in
                keep
                  (A.Union { left = narrow left sl; right = narrow right sr })
              end)
         (* join recognition (lightweight): sigma over a comparison over a
            cross product becomes a theta join; otherwise selections are
            pushed toward the side that produces their column *)
         | A.Select { input; col } ->
           (match input.A.op with
            | A.Join { left; right; lcol; rcol }
              when SSet.mem col (schema_of left)
                   && not (SSet.mem col (schema_of right)) ->
              keep (A.Join { left = keep (A.Select { input = left; col });
                             right; lcol; rcol })
            | A.Join { left; right; lcol; rcol }
              when SSet.mem col (schema_of right)
                   && not (SSet.mem col (schema_of left)) ->
              keep (A.Join { left;
                             right = keep (A.Select { input = right; col });
                             lcol; rcol })
            | A.Cross { left; right }
              when SSet.mem col (schema_of left)
                   && not (SSet.mem col (schema_of right)) ->
              keep (A.Cross { left = keep (A.Select { input = left; col }); right })
            | A.Cross { left; right }
              when SSet.mem col (schema_of right)
                   && not (SSet.mem col (schema_of left)) ->
              keep (A.Cross { left; right = keep (A.Select { input = right; col }) })
            | A.Semijoin { left; right; on }
              when SSet.mem col (schema_of left) ->
              keep (A.Semijoin { left = keep (A.Select { input = left; col });
                                 right; on })
            | A.Union { left; right } ->
              keep (A.Union { left = keep (A.Select { input = left; col });
                              right = keep (A.Select { input = right; col }) })
            | A.Fun2 { input = j; res; f;
                       arg1; arg2 }
              when String.equal res col
                   && (match f with
                       | A.P_eq | A.P_ne | A.P_lt | A.P_le | A.P_gt | A.P_ge ->
                         true
                       | _ -> false) ->
              (match j.A.op with
               | A.Cross { left; right } ->
                 let lsch, rsch =
                   match orig.A.op with
                   | A.Select { input = oin; _ } ->
                     (match oin.A.op with
                      | A.Fun2 { input = oj; _ } ->
                        (match oj.A.op with
                         | A.Cross { left = ol; right = or_ } ->
                           ((P.props props ol).P.schema,
                            (P.props props or_).P.schema)
                         | _ -> (SSet.empty, SSet.empty))
                      | _ -> (SSet.empty, SSet.empty))
                   | _ -> (SSet.empty, SSet.empty)
                 in
                 if SSet.mem arg1 lsch && SSet.mem arg2 rsch then
                   let tj =
                     A.mk b (A.Thetajoin { left; right; lcol = arg1; cmp = f; rcol = arg2 })
                   in
                   (* consumers may still reference the boolean column *)
                   A.mk b (A.Attach { input = tj; res = col; value = Algebra.Value.Bool true })
                 else if SSet.mem arg2 lsch && SSet.mem arg1 rsch then
                   let flipped =
                     match f with
                     | A.P_lt -> A.P_gt | A.P_le -> A.P_ge
                     | A.P_gt -> A.P_lt | A.P_ge -> A.P_le
                     | other -> other
                   in
                   let tj =
                     A.mk b
                       (A.Thetajoin { left; right; lcol = arg2; cmp = flipped; rcol = arg1 })
                   in
                   A.mk b (A.Attach { input = tj; res = col; value = Algebra.Value.Bool true })
                 else keep op'
               | _ -> keep op')
            | _ -> keep op')
         | _ -> keep op'
       in
       if result.A.label = "" then A.set_label result orig.A.label;
       Hashtbl.replace mapped orig.A.id result)
    (A.topo_order root);
  Hashtbl.find mapped root.A.id

(* --------------------------------------------------------------- driver *)

let optimize_once b root =
  let props = P.infer root in
  let req = required props root in
  rewrite b props req root

let optimize ?(max_rounds = 50) b root =
  let rec go i root =
    if i >= max_rounds then root
    else
      let root' = optimize_once b root in
      if root'.A.id = root.A.id then root else go (i + 1) root'
  in
  go 0 root
