(** Bottom-up plan property inference:
    {ul
    {- the static schema (column set) of every operator;}
    {- {e constant} columns — every row carries the same, known value;}
    {- {e arbitrary} columns — born from the rowid operator [#], hence
       carrying no semantic order information;}
    {- static {e column types} — hints for the physical layer's typed
       (unboxed) columns.}}

    This is the property framework the paper's Section 7 uses to degrade
    the residual [%pos1:⟨bind,pos⟩‖iter1] of Figure 9: [iter1] and [pos]
    are found constant, [bind] arbitrary, which empties the rownum's
    order criteria and turns it into a free numbering. *)

module SMap : Map.S with type key = string and type 'a t = 'a Map.Make(String).t
module SSet : Set.S with type elt = string and type t = Set.Make(String).t

type props = {
  schema : SSet.t;
  consts : Algebra.Value.t SMap.t;  (** column → its constant value *)
  arbitrary : SSet.t;               (** columns born from # *)
  ctypes : Algebra.Column.ty SMap.t;
      (** column → statically known value type; absent = unknown
          ([T_mixed]). The physical layer uses these as hints gating
          whether a runtime retype is attempted — the dynamic check stays
          authoritative, so a wrong hint can cost time but never
          correctness. *)
  keys : SSet.t;
      (** columns provably duplicate-free across the node's rows. Unlike
          [ctypes], these license {e rewrites} (keyed Distinct elision),
          so the inference rules must be exact, never heuristic. *)
  dense : SSet.t;
      (** columns provably strictly increasing in physical row order
          (implies membership in [keys]); sorting by such a column is the
          identity, which degrades % over it to #. *)
}

(** Inference result: properties per plan-node id. *)
type t

(** Infer properties for every node reachable from the root. *)
val infer : Algebra.Plan.node -> t

(** Look up a node's properties; internal error if it was not inferred. *)
val props : t -> Algebra.Plan.node -> props

val schema_list : t -> Algebra.Plan.node -> string list

(** The statically known type of a node's column ([T_mixed] = unknown). *)
val col_ty : t -> Algebra.Plan.node -> string -> Algebra.Column.ty
