(* The loop-lifting compilation scheme "e => q" (paper, Section 3) with the
   order-indifference extensions of Section 4 (Figure 7).

   Every XQuery Core expression compiles, relative to a loop relation
   (one row per active iteration), to a table with schema iter|pos|item:
   "in iteration iter, the expression assumes item value item at the
   sequence position corresponding to pos's rank".

   The three rules of Figure 7 are implemented verbatim and can be toggled
   with [unordered_rules] (the ablation switch used by the benchmarks):

     FN:UNORDERED   fn:unordered(e)  =>  #pos(π_{iter,item}(q_e))
     LOC#           under mode unordered, steps take #pos instead of
                    %pos:<item>||iter
     BIND#          under mode unordered (or below an order by clause),
                    for-variable bindings take #bind instead of
                    %bind:<iter,pos>

   Two engineering notes:
     - Loop-invariant hoisting: every sub-expression is compiled under the
       shallowest loop that binds all its free variables and the result is
       lifted (mapped) into the current loop. This reproduces the effect
       the paper attributes to Pathfinder's join recognition [9] for Q11:
       "the two path expressions ... are evaluated once only".
     - Like Pathfinder, compiled plans evaluate eagerly through
       conditionals: both branches of an if are computed (over restricted
       loops) and unioned. A dynamic error in a branch may therefore
       surface even if no iteration reaches it. *)

open Basis
open Xquery.Core_ast
module A = Algebra.Plan
module Value = Algebra.Value

type cfg = {
  b : A.builder;
  unordered_rules : bool;  (* enable FN:UNORDERED / LOC# / BIND# *)
  hoist : bool;            (* loop-invariant hoisting *)
  join_rec : bool;         (* FLWOR where-clause value-join recognition [9] *)
  join_isolation : bool;   (* slide a joinable where past intervening lets
                              so join recognition sees it (Q9's
                              for-let-where shape) *)
}

let default_cfg () =
  { b = A.builder (); unordered_rules = true; hoist = true; join_rec = true;
    join_isolation = true }

type binding = {
  plan : A.node;
  bound_depth : int;
  bound_loop : int;   (* id of the loop the plan's iterations align with *)
  singleton : bool;   (* statically known to bind exactly one item *)
}

type env = {
  loop : A.node;                    (* current loop: a table with col iter *)
  depth : int;
  maps : (int * A.node) list;       (* depth k -> map(outer,inner) into the
                                       current loop's iterations *)
  maps_target : int;                (* loop id the maps were built against *)
  vars : (string * binding) list;
  parent : env option;              (* env snapshot of the enclosing loop *)
}

let initial_env cfg =
  let loop = A.lit_loop cfg.b in
  { loop; depth = 0; maps = []; maps_target = loop.A.id; vars = [];
    parent = None }

(* ------------------------------------------------------------ small utils *)

let ipi = [ ("iter", "iter"); ("pos", "pos"); ("item", "item") ]

let pi_ipi cfg q = A.project cfg.b q ipi

let pi2 cfg q = A.project cfg.b q [ ("iter", "iter"); ("item", "item") ]

(* Attach pos=1 to an iter|item table (the paper's "× (pos|1)"). *)
let with_pos1 cfg q = pi_ipi cfg (A.attach cfg.b q "pos" (Value.Int 1))

(* A literal constant under the given loop. *)
let const_under cfg loop v =
  let q = A.attach cfg.b (A.attach cfg.b loop "pos" (Value.Int 1)) "item" v in
  pi_ipi cfg q

let empty_table cfg = A.lit cfg.b [| "iter"; "pos"; "item" |] []

(* Derive sequence order from document order (interaction 1, doc->seq):
   %pos:<item>||iter — or, under LOC#/FN:UNORDERED, a free #pos. *)
let number_by_doc_order cfg ~ordered q2 =
  if ordered then pi_ipi cfg (A.rownum cfg.b q2 "pos" [ ("item", A.Asc) ] (Some "iter"))
  else pi_ipi cfg (A.rowid cfg.b q2 "pos")

(* -------------------------------------------------- variable / loop access *)

let env_at env d =
  let rec go e =
    if e.depth = d then e
    else
      match e.parent with
      | Some p -> go p
      | None -> Err.internal "no environment snapshot at depth %d" d
  in
  go env

(* Map a plan produced at depth k into the current loop, and restrict it to
   the current loop's live iterations. [aligned_loop] is the id of the loop
   the plan's iterations already align with (semijoin elision). *)
let lift_to_current cfg env ~from_depth ?aligned_loop q =
  if from_depth = env.depth then begin
    (* already at this depth: restrict only if the loop shrank since *)
    match aligned_loop with
    | Some id when id = env.loop.A.id -> q
    | _ -> pi_ipi cfg (A.semijoin cfg.b q env.loop [ ("iter", "iter") ])
  end
  else if from_depth = 0 then
    (* the depth-0 loop is the unit loop: lifting is a cross product with
       the (live) current loop — no further restriction needed *)
    pi_ipi cfg
      (A.cross cfg.b env.loop
         (A.project cfg.b q [ ("pos", "pos"); ("item", "item") ]))
  else begin
    match List.assoc_opt from_depth env.maps with
    | None -> Err.internal "no loop map from depth %d" from_depth
    | Some map ->
      let j = A.join cfg.b map q "outer" "iter" in
      let q' =
        A.project cfg.b j [ ("iter", "inner"); ("pos", "pos"); ("item", "item") ]
      in
      (* the maps target the loop as it was when entered; restrict only if
         a where/if has shrunk it since *)
      if env.maps_target = env.loop.A.id then q'
      else pi_ipi cfg (A.semijoin cfg.b q' env.loop [ ("iter", "iter") ])
  end

let lookup_var cfg env v =
  match List.assoc_opt v env.vars with
  | None -> Err.static "unbound variable $%s" v
  | Some { plan; bound_depth; bound_loop; _ } ->
    lift_to_current cfg env ~from_depth:bound_depth ~aligned_loop:bound_loop plan

module SS = Set.Make (String)

(* Depth of the shallowest loop that binds all free variables of [e]. *)
let needed_depth env e =
  let fv = free_vars e in
  let d = ref 0 in
  let ok = ref true in
  SS.iter
    (fun v ->
       match List.assoc_opt v env.vars with
       | Some b -> if b.bound_depth > !d then d := b.bound_depth
       | None -> ok := false)
    fv;
  if !ok then Some !d else None

(* compose m1: outer->mid with m2: mid->inner *)
let compose_maps cfg m1 m2 =
  let m1' = A.project cfg.b m1 [ ("outer", "outer"); ("mid", "inner") ] in
  let m2' = A.project cfg.b m2 [ ("mid2", "outer"); ("inner", "inner") ] in
  let j = A.join cfg.b m1' m2' "mid" "mid2" in
  A.project cfg.b j [ ("outer", "outer"); ("inner", "inner") ]

(* ------------------------------------------------------------- built-ins *)

(* Count of rows per iteration, with absent iterations filled with 0;
   yields iter|item. *)
let grouped_count cfg env q =
  let cnt = A.aggr cfg.b (pi2 cfg q) "item" A.A_count None (Some "iter") None in
  let missing = A.antijoin cfg.b env.loop cnt [ ("iter", "iter") ] in
  let zero = A.attach cfg.b missing "item" (Value.Int 0) in
  A.union cfg.b cnt (A.project cfg.b zero [ ("iter", "iter"); ("item", "item") ])

(* Per-iteration boolean presence: true where q has rows, [dflt] elsewhere. *)
let presence cfg env ~present_value ~absent_value q =
  let present = A.distinct cfg.b (A.project cfg.b q [ ("iter", "iter") ]) in
  let t = A.attach cfg.b present "item" present_value in
  let missing = A.antijoin cfg.b env.loop present [ ("iter", "iter") ] in
  let f = A.attach cfg.b missing "item" absent_value in
  A.union cfg.b
    (A.project cfg.b t [ ("iter", "iter"); ("item", "item") ])
    (A.project cfg.b f [ ("iter", "iter"); ("item", "item") ])

(* Effective boolean value per iteration (fills absent iterations: false). *)
let ebv_table cfg env q =
  let e = A.aggr cfg.b (pi2 cfg q) "item" A.A_ebv (Some "item") (Some "iter") None in
  let missing = A.antijoin cfg.b env.loop e [ ("iter", "iter") ] in
  let f = A.attach cfg.b missing "item" (Value.Bool false) in
  A.union cfg.b e (A.project cfg.b f [ ("iter", "iter"); ("item", "item") ])

(* The per-iteration single value of q as iter|item, raising a dynamic
   error on iterations with more than one item (the A_the aggregate). *)
let the_singleton cfg q =
  A.aggr cfg.b (pi2 cfg q) "item" A.A_the (Some "item") (Some "iter") None

(* Static cardinality: is [e] known to yield at most one item per
   iteration? Lets singleton contexts skip the A_the runtime check. *)
let rec static_single env (e : core) =
  match e with
  | C_int _ | C_dbl _ | C_str _ | C_qname _ | C_empty -> true
  | C_var v ->
    (match List.assoc_opt v env.vars with
     | Some b -> b.singleton
     | None -> false)
  | C_gencmp _ | C_valcmp _ | C_nodecmp _ | C_arith _ | C_neg _
  | C_and _ | C_or _ | C_quant _ | C_if (_, C_empty, C_empty) -> true
  | C_if (_, t, e') -> static_single env t && static_single env e'
  | C_elem _ | C_attr _ | C_text _ | C_comment _ | C_pi _ -> true
  | C_unordered e' | C_textify e' -> static_single env e'
  | C_call (f, _) ->
    List.mem f
      [ "doc"; "count"; "sum"; "avg"; "max"; "min"; "empty"; "exists"; "not";
        "boolean"; "fs:ebv"; "string"; "string-length"; "normalize-space";
        "concat"; "contains"; "starts-with"; "ends-with"; "string-join";
        "fs:joinws"; "fs:serialize-seq"; "number"; "round"; "floor";
        "ceiling"; "abs"; "name"; "local-name"; "true"; "false";
        "zero-or-one"; "exactly-one"; "substring"; "upper-case";
        "lower-case"; "substring-before"; "substring-after"; "translate" ]
  | C_instance _ | C_castable _ -> true
  | C_cast { optional; _ } -> optional || true (* at most one item *)
  | C_treat { input; _ } -> static_single env input
  | C_seq _ | C_flwor _ | C_step _ | C_ddo _ | C_union _ | C_intersect _
  | C_except _ | C_range _ -> false

(* A singleton view of the compiled [e]: skip the runtime cardinality check
   when static analysis already guarantees it. *)
let singleton_of cfg env e q =
  if static_single env e then pi2 cfg q else the_singleton cfg q

(* Singleton (or absent) value per iteration as iter|<res>, atomized.
   [sq] must already be a per-iteration singleton table (iter|item). *)
let singleton_col_of cfg sq res =
  let a = A.fun1 cfg.b sq "a" A.P_atomize "item" in
  A.project cfg.b a [ ("iter", "iter"); (res, "a") ]

let singleton_col cfg q res = singleton_col_of cfg (the_singleton cfg q) res

(* Join two per-iteration singleton tables; iterations missing on either
   side drop out (empty operand -> empty result). *)
let join_singletons_of cfg sq1 sq2 =
  let l = singleton_col_of cfg sq1 "v1" in
  let r =
    let a = A.fun1 cfg.b sq2 "a" A.P_atomize "item" in
    A.project cfg.b a [ ("iter2", "iter"); ("v2", "a") ]
  in
  A.join cfg.b l r "iter" "iter2"

(* Fill an iter|item singleton table with a default for absent iters. *)
let fill_default cfg env q2 v =
  let missing = A.antijoin cfg.b env.loop q2 [ ("iter", "iter") ] in
  let d = A.attach cfg.b missing "item" v in
  A.union cfg.b q2 (A.project cfg.b d [ ("iter", "iter"); ("item", "item") ])

(* Ast-level type names (already canonicalized by Normalize) to the
   algebra's dynamic-type vocabulary. *)
let atomic_ty = function
  | "integer" -> A.Ty_integer
  | "double" -> A.Ty_double
  | "string" -> A.Ty_string
  | "boolean" -> A.Ty_boolean
  | "untypedAtomic" -> A.Ty_untyped
  | "anyAtomicType" -> A.Ty_any_atomic
  | other -> Err.internal "unexpected atomic type %s" other

let item_ty (t : Xquery.Ast.item_type) : A.item_ty =
  match t with
  | Xquery.Ast.It_item -> A.Ty_item
  | Xquery.Ast.It_node -> A.Ty_node
  | Xquery.Ast.It_element q -> A.Ty_element q
  | Xquery.Ast.It_attribute q -> A.Ty_attribute q
  | Xquery.Ast.It_text -> A.Ty_text
  | Xquery.Ast.It_comment -> A.Ty_comment
  | Xquery.Ast.It_pi -> A.Ty_pi
  | Xquery.Ast.It_document -> A.Ty_document
  | Xquery.Ast.It_atomic n -> A.Ty_atomic (atomic_ty n)

(* ------------------------------------------------------------ compilation *)

let rec compile cfg env (e : core) : A.node =
  (* loop-invariant hoisting: compile under the shallowest sufficient loop *)
  let trivial = match e with C_var _ | C_empty -> true | _ -> false in
  match (if cfg.hoist && not trivial then needed_depth env e else None) with
  | Some d when d < env.depth ->
    let env_d = env_at env d in
    let q = compile_here cfg env_d e in
    lift_to_current cfg env ~from_depth:d ~aligned_loop:env_d.loop.A.id q
  | _ -> compile_here cfg env e

and compile_here cfg env (e : core) : A.node =
  match e with
  | C_int n -> const_under cfg env.loop (Value.Int n)
  | C_dbl f -> const_under cfg env.loop (Value.Dbl f)
  | C_str s -> const_under cfg env.loop (Value.Str s)
  | C_qname q -> const_under cfg env.loop (Value.Qname_v q)
  | C_empty -> empty_table cfg
  | C_var v -> lookup_var cfg env v
  | C_seq es -> compile_seq cfg env es
  | C_flwor f -> compile_flwor cfg env f
  | C_quant { q; var; domain; body } -> compile_quant cfg env q var domain body
  | C_if (c, t, e2) -> compile_if cfg env c t e2
  | C_step { input; axis; test; mode } ->
    let qi = compile cfg env input in
    let s = A.step cfg.b (pi2 cfg qi) axis (plan_test test) in
    let ordered =
      (not cfg.unordered_rules) || mode = Xquery.Ast.Ordered
    in
    (* Rule LOC (ordered) / LOC# (unordered) *)
    number_by_doc_order cfg ~ordered s
  | C_ddo { input; mode } ->
    let qi = compile cfg env input in
    (* XQuery 1.0: every path step must produce nodes; the checked value
       becomes the item so the check can never be pruned *)
    let checked = A.fun1 cfg.b (pi2 cfg qi) "nc" A.P_node_check "item" in
    let checked = A.project cfg.b checked [ ("iter", "iter"); ("item", "nc") ] in
    let d = A.distinct cfg.b checked in
    let ordered = (not cfg.unordered_rules) || mode = Xquery.Ast.Ordered in
    number_by_doc_order cfg ~ordered d
  | C_unordered e' ->
    let q = compile cfg env e' in
    if cfg.unordered_rules then
      (* Rule FN:UNORDERED: #pos . π_{iter,item} *)
      pi_ipi cfg (A.rowid cfg.b (pi2 cfg q) "pos")
    else q
  | C_gencmp (op, a, b) -> compile_gencmp cfg env op a b
  | C_valcmp (op, a, b) ->
    let sa = singleton_of cfg env a (compile cfg env a) in
    let sb = singleton_of cfg env b (compile cfg env b) in
    let j = join_singletons_of cfg sa sb in
    let c = A.fun2 cfg.b j "item" (val_prim op) "v1" "v2" in
    with_pos1 cfg (A.project cfg.b c [ ("iter", "iter"); ("item", "item") ])
  | C_nodecmp (op, a, b) ->
    (* node comparisons: no atomization, but singletons only *)
    let l = A.project cfg.b (singleton_of cfg env a (compile cfg env a)) [ ("iter", "iter"); ("v1", "item") ] in
    let r = A.project cfg.b (singleton_of cfg env b (compile cfg env b)) [ ("iter2", "iter"); ("v2", "item") ] in
    let j = A.join cfg.b l r "iter" "iter2" in
    let c = A.fun2 cfg.b j "item" (node_prim op) "v1" "v2" in
    with_pos1 cfg (A.project cfg.b c [ ("iter", "iter"); ("item", "item") ])
  | C_arith (op, a, b) ->
    let sa = singleton_of cfg env a (compile cfg env a) in
    let sb = singleton_of cfg env b (compile cfg env b) in
    let j = join_singletons_of cfg sa sb in
    let c = A.fun2 cfg.b j "item" (arith_prim op) "v1" "v2" in
    with_pos1 cfg (A.project cfg.b c [ ("iter", "iter"); ("item", "item") ])
  | C_neg a ->
    let q = singleton_col_of cfg (singleton_of cfg env a (compile cfg env a)) "v" in
    let c = A.fun1 cfg.b q "item" A.P_neg "v" in
    with_pos1 cfg (A.project cfg.b c [ ("iter", "iter"); ("item", "item") ])
  | C_and (a, b) | C_or (a, b) ->
    let prim = (match e with C_and _ -> A.P_and | _ -> A.P_or) in
    (* operands are EBV'd: one boolean per live iteration *)
    let l = A.project cfg.b (pi2 cfg (compile cfg env a)) [ ("iter", "iter"); ("v1", "item") ] in
    let r = A.project cfg.b (pi2 cfg (compile cfg env b)) [ ("iter2", "iter"); ("v2", "item") ] in
    let j = A.join cfg.b l r "iter" "iter2" in
    let c = A.fun2 cfg.b j "item" prim "v1" "v2" in
    with_pos1 cfg (A.project cfg.b c [ ("iter", "iter"); ("item", "item") ])
  | C_union (a, b, _mode) ->
    let u = A.union cfg.b (pi2 cfg (compile cfg env a)) (pi2 cfg (compile cfg env b)) in
    let d = A.distinct cfg.b u in
    (* document order determines sequence order (doc->seq): Rule LOC's
       % — the C_unordered wrapper added by Rule UNION overwrites it *)
    number_by_doc_order cfg ~ordered:true d
  | C_intersect (a, b, _) ->
    let qa = A.distinct cfg.b (pi2 cfg (compile cfg env a)) in
    let qb = pi2 cfg (compile cfg env b) in
    let s = A.semijoin cfg.b qa qb [ ("iter", "iter"); ("item", "item") ] in
    number_by_doc_order cfg ~ordered:true s
  | C_except (a, b, _) ->
    let qa = A.distinct cfg.b (pi2 cfg (compile cfg env a)) in
    let qb = pi2 cfg (compile cfg env b) in
    let s = A.antijoin cfg.b qa qb [ ("iter", "iter"); ("item", "item") ] in
    number_by_doc_order cfg ~ordered:true s
  | C_range (a, b) ->
    let sa = singleton_of cfg env a (compile cfg env a) in
    let sb = singleton_of cfg env b (compile cfg env b) in
    let j = join_singletons_of cfg sa sb in
    let lo = A.fun1 cfg.b j "lo" A.P_cast_int "v1" in
    let hi = A.fun1 cfg.b lo "hi" A.P_cast_int "v2" in
    A.range cfg.b hi "lo" "hi"
  | C_call (f, args) -> compile_call cfg env f args
  | C_elem { name; content } ->
    let qn = singleton_of cfg env name (compile cfg env name) in
    let qc = pi_ipi cfg (compile cfg env content) in
    with_pos1 cfg (A.elem cfg.b qn qc)
  | C_attr { name; value } ->
    let qn = singleton_of cfg env name (compile cfg env name) in
    let qv = pi2 cfg (compile cfg env value) in
    with_pos1 cfg (A.attr cfg.b qn qv)
  | C_text v ->
    with_pos1 cfg (A.textnode cfg.b (pi2 cfg (compile cfg env v)))
  | C_comment v ->
    with_pos1 cfg (A.commentnode cfg.b (pi2 cfg (compile cfg env v)))
  | C_pi { target; value } ->
    let t =
      singleton_col_of cfg
        (singleton_of cfg env target (compile cfg env target)) "target"
    in
    let v =
      let a = A.fun1 cfg.b (pi2 cfg (compile cfg env value)) "a" A.P_atomize "item" in
      A.project cfg.b a [ ("iter2", "iter"); ("value", "a") ]
    in
    let j = A.join cfg.b t v "iter" "iter2" in
    let j = A.project cfg.b j [ ("iter", "iter"); ("target", "target"); ("value", "value") ] in
    with_pos1 cfg (A.pinode cfg.b j)
  | C_textify e' ->
    (* group atomic runs into text nodes; pos order is preserved *)
    let q = pi_ipi cfg (compile cfg env e') in
    pi_ipi cfg (mk_textify cfg q)
  | C_instance { input; ty } ->
    let q = pi2 cfg (compile cfg env input) in
    with_pos1 cfg (instance_table cfg env q ty)
  | C_treat { input; ty } ->
    (* a runtime assertion: pass the operand through, raising when the
       dynamic type does not match *)
    let q = pi_ipi cfg (compile cfg env input) in
    let inst = instance_table cfg env (pi2 cfg q) ty in
    let chk = A.fun1 cfg.b inst "ok" A.P_check_treat "item" in
    let ok = A.project cfg.b (A.select cfg.b chk "ok") [ ("iter", "iter") ] in
    pi_ipi cfg (A.semijoin cfg.b q ok [ ("iter", "iter") ])
  | C_cast { input; ty; optional } ->
    let q = compile cfg env input in
    let s = the_singleton cfg q in            (* raises on more than one *)
    let casted = A.fun1 cfg.b s "c" (A.P_cast_as (atomic_ty ty)) "item" in
    let casted =
      with_pos1 cfg (A.project cfg.b casted [ ("iter", "iter"); ("item", "c") ])
    in
    if optional then casted
    else begin
      (* "cast as T" (no ?) requires exactly one item *)
      let cnt = grouped_count cfg env (pi2 cfg q) in
      let chk = A.fun1 cfg.b cnt "ok" A.P_check_exactly_one "item" in
      let ok = A.project cfg.b (A.select cfg.b chk "ok") [ ("iter", "iter") ] in
      pi_ipi cfg (A.semijoin cfg.b casted ok [ ("iter", "iter") ])
    end
  | C_castable { input; ty; optional } ->
    let q = pi2 cfg (compile cfg env input) in
    let cnt = grouped_count cfg env q in      (* iter|item incl. zeros *)
    let one = A.attach cfg.b cnt "one" (Value.Int 1) in
    (* count = 1: ask the value; count = 0: the "?" decides; else false *)
    let is_one = A.fun2 cfg.b one "c1" A.P_eq "item" "one" in
    let ones = A.project cfg.b (A.select cfg.b is_one "c1") [ ("i1", "iter") ] in
    let single =
      A.project cfg.b
        (A.join cfg.b ones q "i1" "iter")
        [ ("iter", "iter"); ("item", "item") ]
    in
    let can = A.fun1 cfg.b single "cc" (A.P_castable (atomic_ty ty)) "item" in
    let can = A.project cfg.b can [ ("iter", "iter"); ("item", "cc") ] in
    let is_zero = A.fun1 cfg.b cnt "z" A.P_not "item" in
    let zeros =
      A.project cfg.b
        (A.attach cfg.b
           (A.select cfg.b is_zero "z")
           "ans" (Value.Bool optional))
        [ ("iter", "iter"); ("item", "ans") ]
    in
    let gt_one = A.fun2 cfg.b one "cm" A.P_gt "item" "one" in
    let many =
      A.project cfg.b
        (A.attach cfg.b (A.select cfg.b gt_one "cm") "ans" (Value.Bool false))
        [ ("iter", "iter"); ("item", "ans") ]
    in
    with_pos1 cfg (A.union cfg.b (A.union cfg.b can zeros) many)

and mk_textify cfg q = A.mk cfg.b (A.Textify { input = q })

(* The per-iteration boolean of "q instance of ty": cardinality check plus
   a per-item dynamic type test, filled over the live loop. *)
and instance_table cfg env q2 (ty : Xquery.Ast.seq_type) =
  match ty with
  | Xquery.Ast.St_empty ->
    presence cfg env ~present_value:(Value.Bool false)
      ~absent_value:(Value.Bool true) q2
  | Xquery.Ast.St (ity, occ) ->
    let cnt = grouped_count cfg env q2 in
    let one = A.attach cfg.b cnt "one" (Value.Int 1) in
    let card_ok =
      match occ with
      | Xquery.Ast.Occ_one -> A.fun2 cfg.b one "ok1" A.P_eq "item" "one"
      | Xquery.Ast.Occ_opt -> A.fun2 cfg.b one "ok1" A.P_le "item" "one"
      | Xquery.Ast.Occ_plus -> A.fun2 cfg.b one "ok1" A.P_ge "item" "one"
      | Xquery.Ast.Occ_star -> A.attach cfg.b one "ok1" (Value.Bool true)
    in
    let card_ok = A.project cfg.b card_ok [ ("iter", "iter"); ("ok1", "ok1") ] in
    let tested = A.fun1 cfg.b q2 "t" (A.P_instance_item (item_ty ity)) "item" in
    let bad = A.fun1 cfg.b tested "nt" A.P_not "t" in
    let fails = A.select cfg.b bad "nt" in
    let items_ok =
      presence cfg env ~present_value:(Value.Bool false)
        ~absent_value:(Value.Bool true) fails
    in
    let items_ok = A.project cfg.b items_ok [ ("i2", "iter"); ("ok2", "item") ] in
    let j = A.join cfg.b card_ok items_ok "iter" "i2" in
    let both = A.fun2 cfg.b j "item" A.P_and "ok1" "ok2" in
    A.project cfg.b both [ ("iter", "iter"); ("item", "item") ]

and plan_test (t : Xquery.Ast.node_test) : A.ntest =
  match t with
  | Xquery.Ast.Nt_name q -> A.N_name q
  | Xquery.Ast.Nt_wild -> A.N_wild
  | Xquery.Ast.Nt_prefix_wild _ -> Err.static "prefix:* node tests are not supported"
  | Xquery.Ast.Nt_kind_node -> A.N_any
  | Xquery.Ast.Nt_kind_text -> A.N_kind Xmldb.Node_kind.Text
  | Xquery.Ast.Nt_kind_comment -> A.N_kind Xmldb.Node_kind.Comment
  | Xquery.Ast.Nt_kind_document -> A.N_kind Xmldb.Node_kind.Document
  | Xquery.Ast.Nt_kind_element None -> A.N_kind Xmldb.Node_kind.Element
  | Xquery.Ast.Nt_kind_element (Some q) -> A.N_name q
  | Xquery.Ast.Nt_kind_attribute None -> A.N_kind Xmldb.Node_kind.Attribute
  | Xquery.Ast.Nt_kind_attribute (Some q) -> A.N_name q
  | Xquery.Ast.Nt_kind_pi None -> A.N_kind Xmldb.Node_kind.Processing_instruction
  | Xquery.Ast.Nt_kind_pi (Some t') -> A.N_pi t'

and val_prim (op : Xquery.Ast.value_cmp) =
  match op with
  | Xquery.Ast.Veq -> A.P_eq | Xquery.Ast.Vne -> A.P_ne
  | Xquery.Ast.Vlt -> A.P_lt | Xquery.Ast.Vle -> A.P_le
  | Xquery.Ast.Vgt -> A.P_gt | Xquery.Ast.Vge -> A.P_ge

and gen_prim (op : Xquery.Ast.general_cmp) =
  match op with
  | Xquery.Ast.Geq -> A.P_eq | Xquery.Ast.Gne -> A.P_ne
  | Xquery.Ast.Glt -> A.P_lt | Xquery.Ast.Gle -> A.P_le
  | Xquery.Ast.Ggt -> A.P_gt | Xquery.Ast.Gge -> A.P_ge

and node_prim (op : Xquery.Ast.node_cmp) =
  match op with
  | Xquery.Ast.Is -> A.P_is
  | Xquery.Ast.Precedes -> A.P_before
  | Xquery.Ast.Follows -> A.P_after

and arith_prim (op : Xquery.Ast.arith) =
  match op with
  | Xquery.Ast.Add -> A.P_add | Xquery.Ast.Sub -> A.P_sub
  | Xquery.Ast.Mul -> A.P_mul | Xquery.Ast.Div -> A.P_div
  | Xquery.Ast.Idiv -> A.P_idiv | Xquery.Ast.Mod -> A.P_mod

(* (e1, e2, ...): disjoint union with an ord column, then renumber
   (iter->seq: sequence order is concatenation order). *)
and compile_seq cfg env es =
  match es with
  | [] -> empty_table cfg
  | [ e ] -> compile cfg env e
  | es ->
    let parts =
      List.mapi
        (fun i e ->
           let q = compile cfg env e in
           A.project cfg.b
             (A.attach cfg.b (pi_ipi cfg q) "ord" (Value.Int (i + 1)))
             [ ("iter", "iter"); ("ord", "ord"); ("pos", "pos"); ("item", "item") ])
        es
    in
    let u = List.fold_left (fun acc p -> A.union cfg.b acc p) (List.hd parts) (List.tl parts) in
    let n = A.rownum cfg.b u "pos2" [ ("ord", A.Asc); ("pos", A.Asc) ] (Some "iter") in
    A.project cfg.b n [ ("iter", "iter"); ("pos", "pos2"); ("item", "item") ]

and compile_if cfg env c t e2 =
  let qc = compile cfg env c in  (* one boolean per live iteration *)
  let qc2 = pi2 cfg qc in
  let loop_t =
    A.project cfg.b (A.select cfg.b qc2 "item") [ ("iter", "iter") ]
  in
  let nc = A.fun1 cfg.b qc2 "nitem" A.P_not "item" in
  let loop_f =
    A.project cfg.b (A.select cfg.b nc "nitem") [ ("iter", "iter") ]
  in
  let qt = compile cfg { env with loop = loop_t } t in
  let qe = compile cfg { env with loop = loop_f } e2 in
  pi_ipi cfg (A.union cfg.b (pi_ipi cfg qt) (pi_ipi cfg qe))

and compile_gencmp cfg env op a b =
  let qa = compile cfg env a and qb = compile cfg env b in
  let l =
    let x = A.fun1 cfg.b (pi2 cfg qa) "v1" A.P_atomize "item" in
    A.project cfg.b x [ ("iter", "iter"); ("v1", "v1") ]
  in
  let r =
    let x = A.fun1 cfg.b (pi2 cfg qb) "v2" A.P_atomize "item" in
    A.project cfg.b x [ ("iter2", "iter"); ("v2", "v2") ]
  in
  let j = A.join cfg.b l r "iter" "iter2" in
  let c = A.fun2 cfg.b j "c" (gen_prim op) "v1" "v2" in
  let sat = A.distinct cfg.b (A.project cfg.b (A.select cfg.b c "c") [ ("iter", "iter") ]) in
  with_pos1 cfg
    (presence cfg env ~present_value:(Value.Bool true)
       ~absent_value:(Value.Bool false) sat)

and compile_quant cfg env q var domain body =
  let qd = compile cfg env domain in
  (* QUANT: iteration order over the domain is free — #bind *)
  let t =
    if cfg.unordered_rules then A.rowid cfg.b (pi_ipi cfg qd) "bind"
    else A.rownum cfg.b (pi_ipi cfg qd) "bind" [ ("iter", A.Asc); ("pos", A.Asc) ] None
  in
  let inner_loop = A.project cfg.b t [ ("iter", "bind") ] in
  let map_new = A.project cfg.b t [ ("outer", "iter"); ("inner", "bind") ] in
  let var_plan =
    with_pos1 cfg (A.project cfg.b t [ ("iter", "bind"); ("item", "item") ])
  in
  let env' = push_loop cfg env inner_loop map_new [ (var, (var_plan, true)) ] in
  let qb = compile cfg env' body in
  (* for "every", test for a falsifying binding *)
  let qb2 = pi2 cfg qb in
  let hits =
    match q with
    | Xquery.Ast.Some_q -> A.select cfg.b qb2 "item"
    | Xquery.Ast.Every_q ->
      let n = A.fun1 cfg.b qb2 "nitem" A.P_not "item" in
      A.project cfg.b (A.select cfg.b n "nitem") [ ("iter", "iter"); ("item", "item") ]
  in
  let hit_inner = A.project cfg.b hits [ ("inner2", "iter") ] in
  let j = A.join cfg.b map_new hit_inner "inner" "inner2" in
  let sat = A.distinct cfg.b (A.project cfg.b j [ ("iter", "outer") ]) in
  let present, absent =
    match q with
    | Xquery.Ast.Some_q -> (Value.Bool true, Value.Bool false)
    | Xquery.Ast.Every_q -> (Value.Bool false, Value.Bool true)
  in
  with_pos1 cfg (presence cfg env ~present_value:present ~absent_value:absent sat)

(* Enter a nested loop: extend maps, bind new variables, link parent. *)
and push_loop cfg env inner_loop map_new new_vars =
  let maps' =
    (env.depth, map_new)
    :: List.map (fun (k, m) -> (k, compose_maps cfg m map_new)) env.maps
  in
  { loop = inner_loop;
    depth = env.depth + 1;
    maps = maps';
    maps_target = inner_loop.A.id;
    vars =
      List.map
        (fun (v, (p, single)) ->
           (v, { plan = p; bound_depth = env.depth + 1;
                 bound_loop = inner_loop.A.id; singleton = single }))
        new_vars
      @ env.vars;
    parent = Some env }

(* Value-join recognition on FLWOR where-clauses (the paper's reference
   [9], "Purely Relational FLWORs"): for

     for $v in D where a cmp b ...

   with D fully loop-invariant, a independent of $v, and b depending on at
   most $v (plus top-level bindings), the filtered inner loop is computed
   as an actual theta join of a's values (per outer iteration) with b's
   values (per D binding) — never materializing the outer x D cross
   product. The general comparison's existential semantics are a distinct
   projection of the join result. *)
and joinable_where cfg env_cur (fc : clause) cond =
  if not cfg.join_rec then None
  else
    match (fc, cond) with
    | CFor { var; pos_var = None; domain; _ }, C_gencmp (op, a0, b0) ->
      let unwrap = function C_unordered e -> e | e -> e in
      let a = unwrap a0 and b = unwrap b0 in
      let depth_ok e = needed_depth env_cur e in
      let only_v_and_invariants e =
        SS.for_all
          (fun x ->
             String.equal x var
             || (match List.assoc_opt x env_cur.vars with
                 | Some bd -> bd.bound_depth = 0
                 | None -> false))
          (free_vars e)
      in
      if depth_ok domain <> Some 0 then None
      else if
        (* outer-side operand on the left, $var-side on the right *)
        (not (SS.mem var (free_vars a)))
        && depth_ok a <> None
        && only_v_and_invariants b
      then Some (var, domain, op, a, b)
      else if
        (* swapped orientation: flip the comparison *)
        (not (SS.mem var (free_vars b)))
        && depth_ok b <> None
        && only_v_and_invariants a
      then begin
        let flipped =
          match op with
          | Xquery.Ast.Glt -> Xquery.Ast.Ggt
          | Xquery.Ast.Gle -> Xquery.Ast.Gge
          | Xquery.Ast.Ggt -> Xquery.Ast.Glt
          | Xquery.Ast.Gge -> Xquery.Ast.Gle
          | (Xquery.Ast.Geq | Xquery.Ast.Gne) as o -> o
        in
        Some (var, domain, flipped, b, a)
      end
      else None
    | _ -> None

and compile_join_for cfg env_cur ~bind_ordered (var, domain, op, a, b) =
  let env0 = env_at env_cur 0 in
  (* the domain, evaluated once (iter = 1 throughout) *)
  let qd0 = pi_ipi cfg (compile cfg env0 domain) in
  let t0 =
    if bind_ordered then
      A.rownum cfg.b qd0 "bind" [ ("iter", A.Asc); ("pos", A.Asc) ] None
    else A.rowid cfg.b qd0 "bind"
  in
  (* a standalone loop over the domain bindings, for compiling b *)
  let domain_loop = A.project cfg.b t0 [ ("iter", "bind") ] in
  let map0 = A.project cfg.b t0 [ ("outer", "iter"); ("inner", "bind") ] in
  let vplan =
    with_pos1 cfg (A.project cfg.b t0 [ ("iter", "bind"); ("item", "item") ])
  in
  let env_b =
    { loop = domain_loop;
      depth = 1;
      maps = [ (0, map0) ];
      maps_target = domain_loop.A.id;
      vars =
        (var, { plan = vplan; bound_depth = 1; bound_loop = domain_loop.A.id;
                singleton = true })
        :: List.filter (fun (_, bd) -> bd.bound_depth = 0) env_cur.vars;
      parent = Some env0 }
  in
  let qb = compile cfg env_b b in
  let qa = compile cfg env_cur a in
  let l =
    let x = A.fun1 cfg.b (pi2 cfg qa) "va" A.P_atomize "item" in
    A.project cfg.b x [ ("iter", "iter"); ("va", "va") ]
  in
  let r =
    let x = A.fun1 cfg.b (pi2 cfg qb) "vb" A.P_atomize "item" in
    A.project cfg.b x [ ("bindb", "iter"); ("vb", "vb") ]
  in
  (* THE join: (outer iteration, domain binding) pairs that satisfy the
     comparison, deduplicated (existential semantics) *)
  let pairs = A.thetajoin cfg.b l r "va" (gen_prim op) "vb" in
  let pairs = A.distinct cfg.b (A.project cfg.b pairs [ ("iter", "iter"); ("bindb", "bindb") ]) in
  (* recover sequence positions in D for the ordered tuple numbering *)
  let t0pos = A.project cfg.b t0 [ ("bind2", "bind"); ("pos", "pos") ] in
  let pairs_pos = A.join cfg.b pairs t0pos "bindb" "bind2" in
  let t =
    if bind_ordered then
      A.rownum cfg.b pairs_pos "bind3" [ ("iter", A.Asc); ("pos", A.Asc) ] None
    else A.rowid cfg.b pairs_pos "bind3"
  in
  let inner_loop = A.project cfg.b t [ ("iter", "bind3") ] in
  let map_new = A.project cfg.b t [ ("outer", "iter"); ("inner", "bind3") ] in
  let titems = A.project cfg.b t0 [ ("bind4", "bind"); ("item", "item") ] in
  let vplan_inner =
    with_pos1 cfg
      (A.project cfg.b
         (A.join cfg.b
            (A.project cfg.b t [ ("bind3", "bind3"); ("bindb", "bindb") ])
            titems "bindb" "bind4")
         [ ("iter", "bind3"); ("item", "item") ])
  in
  push_loop cfg env_cur inner_loop map_new [ (var, (vplan_inner, true)) ]

and compile_flwor cfg env (f : flwor) =
  let d0 = env.depth in
  let bind_ordered =
    (not cfg.unordered_rules)
    || (f.mode = Xquery.Ast.Ordered && f.order_by = [])
  in
  (* Join isolation, compile-level half: a joinable where may slide left
     past let clauses that neither bind its free variables nor are bound
     over by it, making it adjacent to the for so [compile_join_for]
     fires (Q9's for-let-where shape). The slid-over lets then compile
     under the join-filtered inner loop — their definitions are evaluated
     only for surviving iterations, the same dynamic-error latitude
     (XQuery 2.3.4) the predicate reordering of join recognition itself
     already uses. Result and order are unchanged: a where only restricts
     the iteration set, and a let neither adds, drops nor reorders
     iterations. With [join_isolation] off the scan stops at the first
     non-where clause, which is exactly the old adjacent-only behavior. *)
  let isolated_join env_cur fc rest =
    let rec scan lets = function
      | CWhere cond :: rest' -> (
        let clear =
          List.for_all
            (function
              | CLet { var; _ } -> not (SS.mem var (free_vars cond))
              | _ -> false)
            lets
        in
        match (if clear then joinable_where cfg env_cur fc cond else None) with
        | Some spec -> Some (spec, List.rev_append lets rest')
        | None -> None)
      | (CLet _ as cl) :: rest' when cfg.join_isolation ->
        scan (cl :: lets) rest'
      | _ -> None
    in
    scan [] rest
  in
  let rec process env_cur clauses =
    match clauses with
    | (CFor _ as fc) :: rest -> (
      match isolated_join env_cur fc rest with
      | Some (spec, rest') ->
        process (compile_join_for cfg env_cur ~bind_ordered spec) rest'
      | None -> process (step_clause env_cur fc) rest)
    | cl :: rest -> process (step_clause env_cur cl) rest
    | [] -> env_cur
  and step_clause env_cur cl =
    (match cl with
         | CLet { var; def } ->
           let plan = compile cfg env_cur def in
           { env_cur with
             vars =
               (var, { plan; bound_depth = env_cur.depth;
                       bound_loop = env_cur.loop.A.id;
                       singleton = static_single env_cur def })
               :: env_cur.vars }
         | CWhere cond ->
           let qc = pi2 cfg (compile cfg env_cur cond) in
           let loop' = A.project cfg.b (A.select cfg.b qc "item") [ ("iter", "iter") ] in
           { env_cur with loop = loop' }
         | CFor { var; pos_var; domain; reverse_pos } ->
           let qd = pi_ipi cfg (compile cfg env_cur domain) in
           (* Rule BIND (%) vs BIND# (#) *)
           let t =
             if bind_ordered then
               A.rownum cfg.b qd "bind" [ ("iter", A.Asc); ("pos", A.Asc) ] None
             else A.rowid cfg.b qd "bind"
           in
           (* positional variable: dense per-iteration numbering (reverse
              document order for predicates on reverse axes) *)
           let t =
             match pos_var with
             | None -> t
             | Some _ ->
               let dir = if reverse_pos then A.Desc else A.Asc in
               A.rownum cfg.b t "p" [ ("pos", dir) ] (Some "iter")
           in
           let inner_loop = A.project cfg.b t [ ("iter", "bind") ] in
           let map_new = A.project cfg.b t [ ("outer", "iter"); ("inner", "bind") ] in
           let var_plan =
             with_pos1 cfg (A.project cfg.b t [ ("iter", "bind"); ("item", "item") ])
           in
           let new_vars =
             (var, (var_plan, true))
             :: (match pos_var with
                 | None -> []
                 | Some p ->
                   [ (p,
                      (with_pos1 cfg
                         (A.project cfg.b t [ ("iter", "bind"); ("item", "p") ]),
                       true)) ])
           in
           push_loop cfg env_cur inner_loop map_new new_vars)
  in
  let env_final = process env f.clauses in
  let q_ret = pi_ipi cfg (compile cfg env_final f.return_) in
  if env_final.depth = d0 then begin
    (* let/where only: restrict the result to surviving iterations *)
    if env_final.loop == env.loop then q_ret
    else pi_ipi cfg (A.semijoin cfg.b q_ret env_final.loop [ ("iter", "iter") ])
  end
  else begin
    (* map the inner result back to the outer loop and number it:
       %pos1:<inner,pos>||outer (interaction 4, iter->seq) — or by the
       order by keys (context (f) of the paper) *)
    let map_full =
      if d0 = 0 && not (List.mem_assoc 0 env_final.maps) then
        (* depth 0: outer iteration is the constant 1 *)
        A.attach cfg.b env_final.loop "outer"  (Value.Int 1)
        |> fun m -> A.project cfg.b m [ ("outer", "outer"); ("inner", "iter") ]
      else
        match List.assoc_opt d0 env_final.maps with
        | Some m -> m
        | None -> Err.internal "missing flwor map"
    in
    (* restrict the map to live inner iterations (where clauses may have
       shrunk the innermost loop) *)
    let map_full =
      A.project cfg.b
        (A.join cfg.b map_full env_final.loop "inner" "iter")
        [ ("outer", "outer"); ("inner", "inner") ]
    in
    let j = A.join cfg.b map_full (A.project cfg.b q_ret [ ("iter2", "iter"); ("pos", "pos"); ("item", "item") ]) "inner" "iter2" in
    let order_keys, j =
      if f.order_by = [] then ([ ("inner", A.Asc); ("pos", A.Asc) ], j)
      else begin
        (* compute each key per inner iteration, with empty handling *)
        let _, keys_rev, j' =
          List.fold_left
            (fun (i, acc, jacc) (kexpr, dir, empty) ->
               let kq =
                 singleton_of cfg env_final kexpr (compile cfg env_final kexpr)
               in
               let kq = A.fun1 cfg.b kq "kv" A.P_atomize "item" in
               let kcol = Printf.sprintf "key%d" i in
               let fcol = Printf.sprintf "flag%d" i in
               let icol = Printf.sprintf "ki%d" i in
               let present =
                 A.project cfg.b
                   (A.attach cfg.b kq fcol (Value.Int 0))
                   [ (icol, "iter"); (kcol, "kv"); (fcol, fcol) ]
               in
               let missing =
                 A.antijoin cfg.b env_final.loop kq [ ("iter", "iter") ]
               in
               let flag_val =
                 match empty with
                 | Xquery.Ast.Empty_greatest -> Value.Int 1
                 | Xquery.Ast.Empty_least -> Value.Int (-1)
               in
               let absent =
                 A.project cfg.b
                   (A.attach cfg.b
                      (A.attach cfg.b missing kcol (Value.Int 0))
                      fcol flag_val)
                   [ (icol, "iter"); (kcol, kcol); (fcol, fcol) ]
               in
               let ktab = A.union cfg.b present absent in
               let jacc = A.join cfg.b jacc ktab "inner" icol in
               let adir = match dir with
                 | Xquery.Ast.Ascending -> A.Asc
                 | Xquery.Ast.Descending -> A.Desc
               in
               (i + 1, (kcol, adir) :: (fcol, adir) :: acc, jacc))
            (0, [], j) f.order_by
        in
        (List.rev keys_rev @ [ ("inner", A.Asc); ("pos", A.Asc) ], j')
      end
    in
    let numbered = A.rownum cfg.b j "pos1" order_keys (Some "outer") in
    A.project cfg.b numbered
      [ ("iter", "outer"); ("pos", "pos1"); ("item", "item") ]
  end

and compile_call cfg env f args =
  let arg i = List.nth args i in
  let c i = compile cfg env (arg i) in
  match f with
  | "doc" ->
    let q = singleton_col cfg (c 0) "item" in
    with_pos1 cfg (A.doc cfg.b q)
  | "count" -> with_pos1 cfg (grouped_count cfg env (c 0))
  | "sum" ->
    let a = A.fun1 cfg.b (pi2 cfg (c 0)) "v" A.P_atomize "item" in
    let s = A.aggr cfg.b a "item" A.A_sum (Some "v") (Some "iter") None in
    let s = A.project cfg.b s [ ("iter", "iter"); ("item", "item") ] in
    with_pos1 cfg (fill_default cfg env s (Value.Int 0))
  | "max" | "min" | "avg" ->
    let agg = match f with "max" -> A.A_max | "min" -> A.A_min | _ -> A.A_avg in
    let a = A.fun1 cfg.b (pi2 cfg (c 0)) "v" A.P_atomize "item" in
    let s = A.aggr cfg.b a "item" agg (Some "v") (Some "iter") None in
    with_pos1 cfg (A.project cfg.b s [ ("iter", "iter"); ("item", "item") ])
  | "empty" ->
    with_pos1 cfg
      (presence cfg env ~present_value:(Value.Bool false)
         ~absent_value:(Value.Bool true) (pi2 cfg (c 0)))
  | "exists" ->
    with_pos1 cfg
      (presence cfg env ~present_value:(Value.Bool true)
         ~absent_value:(Value.Bool false) (pi2 cfg (c 0)))
  | "not" ->
    let e = ebv_table cfg env (c 0) in
    let n = A.fun1 cfg.b e "nitem" A.P_not "item" in
    with_pos1 cfg (A.project cfg.b n [ ("iter", "iter"); ("item", "nitem") ])
  | "boolean" | "fs:ebv" -> with_pos1 cfg (ebv_table cfg env (c 0))
  | "distinct-values" ->
    let a = A.fun1 cfg.b (pi2 cfg (c 0)) "v" A.P_atomize "item" in
    let d = A.distinct cfg.b (A.project cfg.b a [ ("iter", "iter"); ("item", "v") ]) in
    (* implementation-defined order: # in either mode *)
    pi_ipi cfg (A.rowid cfg.b d "pos")
  | "data" ->
    let a = A.fun1 cfg.b (pi_ipi cfg (c 0)) "v" A.P_atomize "item" in
    A.project cfg.b a [ ("iter", "iter"); ("pos", "pos"); ("item", "v") ]
  | "string" ->
    let s = singleton_col cfg (c 0) "v" in
    let s = A.fun1 cfg.b s "item" A.P_cast_str "v" in
    let s = A.project cfg.b s [ ("iter", "iter"); ("item", "item") ] in
    with_pos1 cfg (fill_default cfg env s (Value.Str ""))
  | "string-length" | "normalize-space" | "upper-case" | "lower-case" ->
    let prim =
      match f with
      | "string-length" -> A.P_string_length
      | "normalize-space" -> A.P_normalize_space
      | "upper-case" -> A.P_upper
      | _ -> A.P_lower
    in
    let dflt = if f = "string-length" then Value.Int 0 else Value.Str "" in
    let s = singleton_col cfg (c 0) "v" in
    let s = A.fun1 cfg.b s "item" prim "v" in
    let s = A.project cfg.b s [ ("iter", "iter"); ("item", "item") ] in
    with_pos1 cfg (fill_default cfg env s dflt)
  | "concat" | "contains" | "starts-with" | "ends-with"
  | "substring-before" | "substring-after" ->
    let prim = match f with
      | "concat" -> A.P_concat
      | "contains" -> A.P_contains
      | "starts-with" -> A.P_starts_with
      | "ends-with" -> A.P_ends_with
      | "substring-before" -> A.P_substr_before
      | _ -> A.P_substr_after
    in
    let s1 =
      let t = singleton_col cfg (c 0) "v1" in
      let t = A.project cfg.b t [ ("iter", "iter"); ("item", "v1") ] in
      fill_default cfg env t (Value.Str "")
    in
    let s2 =
      let t = singleton_col cfg (c 1) "v2" in
      let t = A.project cfg.b t [ ("iter", "iter"); ("item", "v2") ] in
      fill_default cfg env t (Value.Str "")
    in
    let l = A.project cfg.b s1 [ ("iter", "iter"); ("v1", "item") ] in
    let r = A.project cfg.b s2 [ ("iter2", "iter"); ("v2", "item") ] in
    let j = A.join cfg.b l r "iter" "iter2" in
    let x = A.fun2 cfg.b j "item" prim "v1" "v2" in
    with_pos1 cfg (A.project cfg.b x [ ("iter", "iter"); ("item", "item") ])
  | "string-join" ->
    let sep =
      match arg 1 with
      | C_str s -> s
      | _ -> Err.static "fn:string-join: the separator must be a string literal"
    in
    let q = pi_ipi cfg (c 0) in
    let a = A.fun1 cfg.b q "v" A.P_atomize "item" in
    let s = A.aggr cfg.b a "item" (A.A_str_join sep) (Some "v") (Some "iter") (Some "pos") in
    let s = A.project cfg.b s [ ("iter", "iter"); ("item", "item") ] in
    with_pos1 cfg (fill_default cfg env s (Value.Str ""))
  | "fs:joinws" ->
    let q = pi_ipi cfg (c 0) in
    let a = A.fun1 cfg.b q "v" A.P_atomize "item" in
    let s = A.aggr cfg.b a "item" (A.A_str_join " ") (Some "v") (Some "iter") (Some "pos") in
    let s = A.project cfg.b s [ ("iter", "iter"); ("item", "item") ] in
    with_pos1 cfg (fill_default cfg env s (Value.Str ""))
  | "number" ->
    let s = singleton_col cfg (c 0) "v" in
    let s = A.fun1 cfg.b s "item" A.P_number "v" in
    let s = A.project cfg.b s [ ("iter", "iter"); ("item", "item") ] in
    with_pos1 cfg (fill_default cfg env s (Value.Dbl Float.nan))
  | "reverse" ->
    let q = pi_ipi cfg (c 0) in
    let n = A.rownum cfg.b q "pos2" [ ("pos", A.Desc) ] (Some "iter") in
    A.project cfg.b n [ ("iter", "iter"); ("pos", "pos2"); ("item", "item") ]
  | "subsequence" ->
    let q = pi_ipi cfg (c 0) in
    (* dense per-iteration positions *)
    let n = A.rownum cfg.b q "p" [ ("pos", A.Asc) ] (Some "iter") in
    let start =
      let s = singleton_col cfg (c 1) "v" in
      let s = A.fun1 cfg.b s "sv" A.P_cast_dbl "v" in
      let s = A.fun1 cfg.b s "sr" A.P_round "sv" in
      A.project cfg.b s [ ("iter2", "iter"); ("sr", "sr") ]
    in
    let j = A.join cfg.b n start "iter" "iter2" in
    let ge = A.fun2 cfg.b j "keep1" A.P_ge "p" "sr" in
    let filtered1 = A.select cfg.b ge "keep1" in
    let final =
      if List.length args = 3 then begin
        let len =
          let s = singleton_col cfg (c 2) "v" in
          let s = A.fun1 cfg.b s "lv" A.P_cast_dbl "v" in
          A.project cfg.b s [ ("iter3", "iter"); ("lv", "lv") ]
        in
        let j2 = A.join cfg.b filtered1 len "iter" "iter3" in
        let hi = A.fun2 cfg.b j2 "hi" A.P_add "sr" "lv" in
        let lt = A.fun2 cfg.b hi "keep2" A.P_lt "p" "hi" in
        A.select cfg.b lt "keep2"
      end
      else filtered1
    in
    A.project cfg.b final [ ("iter", "iter"); ("pos", "p"); ("item", "item") ]
  | "round" | "floor" | "ceiling" | "abs" ->
    let prim = match f with
      | "round" -> A.P_round | "floor" -> A.P_floor
      | "ceiling" -> A.P_ceiling | _ -> A.P_abs
    in
    let s = singleton_col cfg (c 0) "v" in
    let s = A.fun1 cfg.b s "item" prim "v" in
    with_pos1 cfg (A.project cfg.b s [ ("iter", "iter"); ("item", "item") ])
  | "name" | "local-name" ->
    let prim = if f = "name" then A.P_name else A.P_local_name in
    let q = pi2 cfg (c 0) in
    let s = A.fun1 cfg.b q "n" prim "item" in
    let s = A.project cfg.b s [ ("iter", "iter"); ("item", "n") ] in
    with_pos1 cfg (fill_default cfg env s (Value.Str ""))
  | "true" -> const_under cfg env.loop (Value.Bool true)
  | "false" -> const_under cfg env.loop (Value.Bool false)
  | "zero-or-one" | "exactly-one" | "one-or-more" ->
    let prim = match f with
      | "zero-or-one" -> A.P_check_zero_one
      | "exactly-one" -> A.P_check_exactly_one
      | _ -> A.P_check_one_or_more
    in
    let q = pi_ipi cfg (c 0) in
    let cnt = grouped_count cfg env q in
    let chk = A.fun1 cfg.b cnt "ok" prim "item" in
    let ok = A.project cfg.b (A.select cfg.b chk "ok") [ ("iter", "iter") ] in
    pi_ipi cfg (A.semijoin cfg.b q ok [ ("iter", "iter") ])
  | "substring" | "translate" ->
    (* ternary string functions over per-iteration singletons *)
    let s1 = singleton_col cfg (c 0) "v1" in
    let s2 =
      let a = A.fun1 cfg.b (the_singleton cfg (c 1)) "a" A.P_atomize "item" in
      A.project cfg.b a [ ("iter2", "iter"); ("v2", "a") ]
    in
    let j = A.join cfg.b s1 s2 "iter" "iter2" in
    let j3 =
      if f = "substring" && List.length args = 2 then
        (* missing length: +INF selects everything from start on *)
        A.attach cfg.b j "v3" (Value.Dbl infinity)
      else begin
        let s3 =
          let a = A.fun1 cfg.b (the_singleton cfg (c 2)) "a" A.P_atomize "item" in
          A.project cfg.b a [ ("iter3", "iter"); ("v3", "a") ]
        in
        A.project cfg.b (A.join cfg.b j s3 "iter" "iter3")
          [ ("iter", "iter"); ("v1", "v1"); ("v2", "v2"); ("v3", "v3") ]
      end
    in
    let prim = if f = "substring" then A.P3_substring else A.P3_translate in
    let x = A.fun3 cfg.b j3 "item" prim "v1" "v2" "v3" in
    let x = A.project cfg.b x [ ("iter", "iter"); ("item", "item") ] in
    with_pos1 cfg (fill_default cfg env x (Value.Str ""))
  | "fs:serialize-seq" ->
    (* item-wise XML serialization joined in sequence order — the carrier
       of the pragmatic fn:deep-equal *)
    let q = pi_ipi cfg (c 0) in
    let a = A.fun1 cfg.b q "v" A.P_serialize "item" in
    let s = A.aggr cfg.b a "item" (A.A_str_join "\x1f") (Some "v") (Some "iter") (Some "pos") in
    let s = A.project cfg.b s [ ("iter", "iter"); ("item", "item") ] in
    with_pos1 cfg (fill_default cfg env s (Value.Str ""))
  | "remove" ->
    (* drop the item at (dense) position p; out-of-range p drops nothing *)
    let q = pi_ipi cfg (c 0) in
    let n = A.rownum cfg.b q "dp" [ ("pos", A.Asc) ] (Some "iter") in
    let pcol =
      let a = A.fun1 cfg.b (the_singleton cfg (c 1)) "a" A.P_atomize "item" in
      let a = A.fun1 cfg.b a "p" A.P_cast_int "a" in
      A.project cfg.b a [ ("iter2", "iter"); ("p", "p") ]
    in
    let j = A.join cfg.b n pcol "iter" "iter2" in
    let ne = A.fun2 cfg.b j "keep" A.P_ne "dp" "p" in
    let sel = A.select cfg.b ne "keep" in
    A.project cfg.b sel [ ("iter", "iter"); ("pos", "dp"); ("item", "item") ]
  | "insert-before" ->
    (* inserted items land at key p - 0.5, strictly between the dense
       positions p-1 and p of the target (clamping falls out for free) *)
    let q = pi_ipi cfg (c 0) in
    let n = A.rownum cfg.b q "dp" [ ("pos", A.Asc) ] (Some "iter") in
    let target =
      A.project cfg.b (A.attach cfg.b n "k2" (Value.Int 0))
        [ ("iter", "iter"); ("k1", "dp"); ("k2", "k2"); ("item", "item") ]
    in
    let pcol =
      let a = A.fun1 cfg.b (the_singleton cfg (c 1)) "a" A.P_atomize "item" in
      let a = A.fun1 cfg.b a "pd" A.P_cast_dbl "a" in
      let a = A.attach cfg.b a "half" (Value.Dbl 0.5) in
      let a = A.fun2 cfg.b a "k1" A.P_sub "pd" "half" in
      A.project cfg.b a [ ("iter2", "iter"); ("k1", "k1") ]
    in
    let ins = pi_ipi cfg (c 2) in
    let ins = A.project cfg.b ins [ ("iter3", "iter"); ("k2", "pos"); ("item", "item") ] in
    let ins_keyed =
      A.project cfg.b (A.join cfg.b pcol ins "iter2" "iter3")
        [ ("iter", "iter2"); ("k1", "k1"); ("k2", "k2"); ("item", "item") ]
    in
    let u = A.union cfg.b target ins_keyed in
    let renum = A.rownum cfg.b u "pos2" [ ("k1", A.Asc); ("k2", A.Asc) ] (Some "iter") in
    A.project cfg.b renum [ ("iter", "iter"); ("pos", "pos2"); ("item", "item") ]
  | "id" ->
    let vals = pi2 cfg (c 0) in
    let ctxn = the_singleton cfg (c 1) in
    let looked = A.id_lookup cfg.b vals ctxn in
    (* document order determines sequence order, as after a step *)
    number_by_doc_order cfg ~ordered:true looked
  | "error" ->
    (* fn:error raises for every live iteration (eagerly, like all
       loop-lifted evaluation; see the module comment) *)
    let msg =
      if args = [] then const_under cfg env.loop (Value.Str "fn:error()")
      else c (List.length args - 1)
    in
    let m = singleton_col cfg msg "m" in
    let e' = A.fun1 cfg.b m "x" A.P_error "m" in
    (* the (never-produced) error value is the result item, so column
       dependency analysis can never prune the raising operator *)
    with_pos1 cfg
      (A.project cfg.b e' [ ("iter", "iter"); ("item", "x") ])
  | _ -> Err.static "compiler: unknown function %s/%d" f (List.length args)

(* ------------------------------------------------------------- entry point *)

(* Compile a whole Core expression; the result plan yields the query result
   as an iter|pos|item table with iter = 1. *)
let compile_core ?(cfg = default_cfg ()) core =
  let env = initial_env cfg in
  (cfg, compile cfg env core)
