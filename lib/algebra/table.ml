(* In-memory columnar tables — our stand-in for MonetDB's BATs. A table is
   a named list of equal-length value columns; the row set carries no
   inherent order semantics (the runtime is "inherently unordered", paper
   Section 1) — any order information lives in explicit columns such as
   pos and iter, exactly as in Pathfinder's compilation scheme. *)

open Basis

type t = {
  schema : string array;            (* column names, in display order *)
  cols : Value.t array array;       (* cols.(c).(row) *)
  nrows : int;
  mutable index : (string, int) Hashtbl.t option;
      (* name -> position, built lazily on the first by-name access and
         reused for the table's lifetime (schemas are immutable) *)
}

let schema t = t.schema
let nrows t = t.nrows
let ncols t = Array.length t.schema

let create schema cols nrows =
  if Array.length schema <> Array.length cols then
    Err.internal "Table.create: schema/columns mismatch";
  Array.iter
    (fun c ->
       if Array.length c <> nrows then
         Err.internal "Table.create: ragged columns")
    cols;
  { schema; cols; nrows; index = None }

let empty schema =
  { schema; cols = Array.map (fun _ -> [||]) schema; nrows = 0; index = None }

let index t =
  match t.index with
  | Some h -> h
  | None ->
    let h = Hashtbl.create (2 * Array.length t.schema) in
    (* first occurrence wins, like the linear scan this replaces *)
    Array.iteri
      (fun i name -> if not (Hashtbl.mem h name) then Hashtbl.add h name i)
      t.schema;
    t.index <- Some h;
    h

let col_index t name =
  match Hashtbl.find_opt (index t) name with
  | Some i -> i
  | None ->
    Err.internal "Table: no column %S in schema [%s]" name
      (String.concat "," (Array.to_list t.schema))

let has_col t name = Array.exists (String.equal name) t.schema

let col t name = t.cols.(col_index t name)

(* The raw column storage, in schema order — the zero-copy bridge into the
   physical layer's batches. Callers must not mutate. *)
let columns t = t.cols

let get t name row = (col t name).(row)

(* Build a table from a list of rows (each row ordered like [schema]). *)
let of_rows schema rows =
  let nrows = List.length rows in
  let ncols = Array.length schema in
  let cols = Array.init ncols (fun _ -> Array.make nrows (Value.Int 0)) in
  List.iteri
    (fun r row ->
       if Array.length row <> ncols then
         Err.internal "Table.of_rows: row arity mismatch";
       Array.iteri (fun c v -> cols.(c).(r) <- v) row)
    rows;
  { schema; cols; nrows; index = None }

let row t r = Array.map (fun c -> c.(r)) t.cols

let iter_rows f t =
  for r = 0 to t.nrows - 1 do f r done

(* Select a subset of rows by index. *)
let gather t (idx : int array) =
  { schema = t.schema;
    cols = Array.map (fun c -> Array.map (fun r -> c.(r)) idx) t.cols;
    nrows = Array.length idx;
    index = t.index }

(* Reorder columns / rename / duplicate: [(new_name, src_name)] list. *)
let project t cols =
  let schema = Array.of_list (List.map fst cols) in
  let srcs = Array.of_list (List.map (fun (_, s) -> col t s) cols) in
  { schema; cols = srcs; nrows = t.nrows; index = None }

let append_col t name c =
  if Array.length c <> t.nrows then Err.internal "Table.append_col: length";
  { schema = Array.append t.schema [| name |];
    cols = Array.append t.cols [| c |];
    nrows = t.nrows;
    index = None }

(* Align [other]'s columns to [t]'s schema (by name) and append the rows. *)
let union t other =
  if Array.length t.schema <> Array.length other.schema then
    Err.internal "Table.union: schema arity mismatch";
  let ocols = Array.map (fun name -> col other name) t.schema in
  { schema = t.schema;
    cols = Array.mapi (fun i c -> Array.append c ocols.(i)) t.cols;
    nrows = t.nrows + other.nrows;
    index = t.index }

let to_string ?(max_rows = 20) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat " | " (Array.to_list t.schema));
  Buffer.add_char buf '\n';
  let n = min t.nrows max_rows in
  for r = 0 to n - 1 do
    let cells =
      Array.to_list
        (Array.map
           (fun c -> Format.asprintf "%a" Value.pp c.(r))
           t.cols)
    in
    Buffer.add_string buf (String.concat " | " cells);
    Buffer.add_char buf '\n'
  done;
  if t.nrows > n then
    Buffer.add_string buf (Printf.sprintf "... (%d rows)\n" t.nrows);
  Buffer.contents buf

(* Estimated memory footprint: the Budget byte-accounting currency. *)
let estimated_bytes t =
  let total = ref 64 in
  Array.iter
    (fun c ->
       total := !total + 16;
       Array.iter (fun v -> total := !total + Value.estimated_bytes v) c)
    t.cols;
  !total
