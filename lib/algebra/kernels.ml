(* The operator kernels: the actual table-in/table-out implementations of
   every algebra operator, factored out of the evaluators. [Eval]
   (boxed, per-DAG-node memoization) and [Physical] (typed columns,
   selection vectors, fused pipelines) both dispatch into this module —
   [Physical] for its boxed-fallback path and for the scalar primitive
   semantics ([apply1]/[apply2]/[apply3]) its fused kernels reuse.

   Kernels see only an [env] (store + optional indexes) and their input
   tables; memoization, budgets, profiling, and Dag/Tree policy live in
   the callers. *)

open Basis
open Plan

(* What a kernel needs besides its inputs: the document store, the
   optional tag index realizing the step operator, and the lazily built
   id index for fn:id. *)
type env = {
  store : Xmldb.Doc_store.t;
  tag_index : Xmldb.Tag_index.t option;
  mutable id_index : Xmldb.Id_index.t option;
  code_eval : bool;
      (* compressed execution: batched staircase scans over bulk-decoded
         packed columns, and dictionary-code predicate evaluation in the
         physical layer. Results are bit-identical on or off. *)
}

let env ?tag_index ?(code_eval = true) store =
  { store; tag_index; id_index = None; code_eval }

let id_index env =
  match env.id_index with
  | Some i -> i
  | None ->
    let i = Xmldb.Id_index.create env.store in
    env.id_index <- Some i;
    i

(* ------------------------------------------------------------ primitives *)

module A_ty = Plan

let atomize store v =
  match v with
  | Value.Node n -> Value.Str (Xmldb.Doc_store.string_value store n)
  | v -> v

let node_of = function
  | Value.Node n -> n
  | v -> Err.dynamic "expected a node, got %s" (Value.type_name v)

let node_kind_is store v kind qopt =
  match v with
  | Value.Node n ->
    Xmldb.Node_kind.equal (Xmldb.Doc_store.kind store n) kind
    && (match qopt with
        | None -> true
        | Some q ->
          (match Xmldb.Doc_store.name store n with
           | Some q' -> Xmldb.Qname.equal q q'
           | None -> false))
  | _ -> false

(* "cast as" on an atomized single item. *)
let cast_atomic store ty v =
  let v = atomize store v in
  match (ty : A_ty.atomic_ty) with
  | A_ty.Ty_integer -> Value.Int (Value.int_value v)
  | A_ty.Ty_double -> Value.Dbl (Value.float_value v)
  | A_ty.Ty_string -> Value.Str (Value.to_string v)
  | A_ty.Ty_boolean -> Value.Bool (Value.bool_value v)
  | A_ty.Ty_untyped -> Value.Str (Value.to_string v)
  | A_ty.Ty_any_atomic -> v

let instance_item store ty v =
  match (ty : A_ty.item_ty) with
  | A_ty.Ty_item -> true
  | A_ty.Ty_node -> Value.is_node v
  | A_ty.Ty_element qopt -> node_kind_is store v Xmldb.Node_kind.Element qopt
  | A_ty.Ty_attribute qopt -> node_kind_is store v Xmldb.Node_kind.Attribute qopt
  | A_ty.Ty_text -> node_kind_is store v Xmldb.Node_kind.Text None
  | A_ty.Ty_comment -> node_kind_is store v Xmldb.Node_kind.Comment None
  | A_ty.Ty_pi -> node_kind_is store v Xmldb.Node_kind.Processing_instruction None
  | A_ty.Ty_document -> node_kind_is store v Xmldb.Node_kind.Document None
  | A_ty.Ty_atomic at ->
    (match (at, v) with
     | _, Value.Node _ -> false
     | A_ty.Ty_any_atomic, _ -> true
     | A_ty.Ty_integer, Value.Int _ -> true
     | A_ty.Ty_double, Value.Dbl _ -> true
     | A_ty.Ty_boolean, Value.Bool _ -> true
     (* strings and untypedAtomic share the Str carrier *)
     | (A_ty.Ty_string | A_ty.Ty_untyped), Value.Str _ -> true
     | _ -> false)

let apply1 store f v =
  match f with
  | P_not -> Value.Bool (not (Value.ebv_atomic v))
  | P_neg -> Value.neg v
  | P_atomize -> atomize store v
  | P_string -> Value.Str (Value.to_string (atomize store v))
  | P_number ->
    (match atomize store v with
     | exception _ -> Value.Dbl Float.nan
     | av ->
       (match Value.float_value av with
        | f -> Value.Dbl f
        | exception Err.Dynamic_error _ -> Value.Dbl Float.nan))
  | P_cast_int -> Value.Int (Value.int_value (atomize store v))
  | P_cast_dbl -> Value.Dbl (Value.float_value (atomize store v))
  | P_cast_str -> Value.Str (Value.to_string (atomize store v))
  | P_cast_bool -> Value.Bool (Value.bool_value v)
  | P_string_length ->
    Value.Int (String.length (Value.to_string (atomize store v)))
  | P_name ->
    (match v with
     | Value.Node n ->
       (match Xmldb.Doc_store.name store n with
        | Some q -> Value.Str (Xmldb.Qname.to_string q)
        | None -> Value.Str "")
     | v -> Err.dynamic "fn:name applied to %s" (Value.type_name v))
  | P_local_name ->
    (match v with
     | Value.Node n ->
       (match Xmldb.Doc_store.name store n with
        | Some q -> Value.Str (Xmldb.Qname.local q)
        | None -> Value.Str "")
     | v -> Err.dynamic "fn:local-name applied to %s" (Value.type_name v))
  | P_round ->
    (* fn:round rounds .5 toward positive infinity (unlike Float.round) *)
    (match v with
     | Value.Int _ -> v
     | v -> Value.Dbl (Float.floor (Value.float_value v +. 0.5)))
  | P_floor ->
    (match v with
     | Value.Int _ -> v
     | v -> Value.Dbl (Float.floor (Value.float_value v)))
  | P_ceiling ->
    (match v with
     | Value.Int _ -> v
     | v -> Value.Dbl (Float.ceil (Value.float_value v)))
  | P_abs ->
    (match v with
     | Value.Int i -> Value.Int (abs i)
     | v -> Value.Dbl (Float.abs (Value.float_value v)))
  | P_is_node -> Value.Bool (Value.is_node v)
  | P_normalize_space ->
    let s = Value.to_string (atomize store v) in
    let words =
      String.split_on_char ' '
        (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
      |> List.filter (fun w -> w <> "")
    in
    Value.Str (String.concat " " words)
  | P_check_zero_one ->
    if Value.int_value v > 1 then
      Err.dynamic "fn:zero-or-one: more than one item"
    else Value.Bool true
  | P_check_exactly_one ->
    if Value.int_value v <> 1 then
      Err.dynamic "fn:exactly-one: %d items" (Value.int_value v)
    else Value.Bool true
  | P_check_one_or_more ->
    if Value.int_value v < 1 then
      Err.dynamic "fn:one-or-more: empty sequence"
    else Value.Bool true
  | P_upper ->
    Value.Str (String.uppercase_ascii (Value.to_string (atomize store v)))
  | P_lower ->
    Value.Str (String.lowercase_ascii (Value.to_string (atomize store v)))
  | P_serialize ->
    (match v with
     | Value.Node n -> Value.Str (Xmldb.Serialize.node_to_string store n)
     | atom -> Value.Str (Value.to_string atom))
  | P_cast_as ty -> cast_atomic store ty v
  | P_castable ty ->
    (match cast_atomic store ty v with
     | _ -> Value.Bool true
     | exception Err.Dynamic_error _ -> Value.Bool false)
  | P_instance_item ty -> Value.Bool (instance_item store ty v)
  | P_check_treat ->
    if Value.bool_value v then Value.Bool true
    else Err.dynamic "treat as: the operand does not match the required type"
  | P_error ->
    Err.dynamic "fn:error: %s" (Value.to_string (atomize store v))
  | P_node_check ->
    (match v with
     | Value.Node _ -> v
     | v ->
       Err.dynamic "path steps must return nodes, got %s" (Value.type_name v))

let apply2 store f a bv =
  match f with
  | P_add -> Value.add a bv
  | P_sub -> Value.sub a bv
  | P_mul -> Value.mul a bv
  | P_div -> Value.div a bv
  | P_idiv -> Value.idiv a bv
  | P_mod -> Value.modulo a bv
  | P_eq -> Value.Bool (Value.cmp_eq a bv)
  | P_ne -> Value.Bool (Value.cmp_ne a bv)
  | P_lt -> Value.Bool (Value.cmp_lt a bv)
  | P_le -> Value.Bool (Value.cmp_le a bv)
  | P_gt -> Value.Bool (Value.cmp_gt a bv)
  | P_ge -> Value.Bool (Value.cmp_ge a bv)
  | P_and -> Value.Bool (Value.bool_value a && Value.bool_value bv)
  | P_or -> Value.Bool (Value.bool_value a || Value.bool_value bv)
  | P_is -> Value.Bool (Xmldb.Node_id.equal (node_of a) (node_of bv))
  | P_before -> Value.Bool (Xmldb.Node_id.compare (node_of a) (node_of bv) < 0)
  | P_after -> Value.Bool (Xmldb.Node_id.compare (node_of a) (node_of bv) > 0)
  | P_concat ->
    Value.Str (Value.to_string (atomize store a) ^ Value.to_string (atomize store bv))
  | P_contains ->
    let hay = Value.to_string (atomize store a)
    and needle = Value.to_string (atomize store bv) in
    let nh = String.length hay and nn = String.length needle in
    let rec scan i =
      if nn = 0 then true
      else if i + nn > nh then false
      else if String.sub hay i nn = needle then true
      else scan (i + 1)
    in
    Value.Bool (scan 0)
  | P_starts_with ->
    let s = Value.to_string (atomize store a)
    and p = Value.to_string (atomize store bv) in
    Value.Bool
      (String.length p <= String.length s
       && String.sub s 0 (String.length p) = p)
  | P_ends_with ->
    let s = Value.to_string (atomize store a)
    and p = Value.to_string (atomize store bv) in
    let ns = String.length s and np = String.length p in
    Value.Bool (np <= ns && String.sub s (ns - np) np = p)
  | P_substr_before | P_substr_after ->
    let s = Value.to_string (atomize store a)
    and p = Value.to_string (atomize store bv) in
    let ns = String.length s and np = String.length p in
    let rec find i =
      if np = 0 || i + np > ns then None
      else if String.sub s i np = p then Some i
      else find (i + 1)
    in
    (match find 0 with
     | None -> Value.Str ""
     | Some i ->
       if f = P_substr_before then Value.Str (String.sub s 0 i)
       else Value.Str (String.sub s (i + np) (ns - i - np)))

(* fn:substring and fn:translate (codepoints approximated by bytes for
   the ASCII-dominated workloads here). *)
let apply3 store f a b c =
  match f with
  | P3_substring ->
    let s = Value.to_string (atomize store a) in
    let start = Float.round (Value.float_value (atomize store b)) in
    let len = Float.round (Value.float_value (atomize store c)) in
    if Float.is_nan start || Float.is_nan len then Value.Str ""
    else begin
      let n = String.length s in
      let buf = Buffer.create (min n 16) in
      for p = 1 to n do
        let fp = float_of_int p in
        if fp >= start && fp < start +. len then Buffer.add_char buf s.[p - 1]
      done;
      Value.Str (Buffer.contents buf)
    end
  | P3_translate ->
    let s = Value.to_string (atomize store a) in
    let from_ = Value.to_string (atomize store b) in
    let to_ = Value.to_string (atomize store c) in
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun ch ->
         match String.index_opt from_ ch with
         | None -> Buffer.add_char buf ch
         | Some i ->
           if i < String.length to_ then Buffer.add_char buf to_.[i])
      s;
    Value.Str (Buffer.contents buf)

let cmp_fun = function
  | P_eq -> Value.cmp_eq
  | P_ne -> Value.cmp_ne
  | P_lt -> Value.cmp_lt
  | P_le -> Value.cmp_le
  | P_gt -> Value.cmp_gt
  | P_ge -> Value.cmp_ge
  | _ -> Err.internal "Thetajoin: comparison operator expected"

(* --------------------------------------------------------- row utilities *)

module Row_key = struct
  type t = Value.t array
  let equal a b =
    Array.length a = Array.length b
    &&
    (let ok = ref true in
     Array.iteri (fun i v -> if not (Value.equal v b.(i)) then ok := false) a;
     !ok)
  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 a
end

module Row_tbl = Hashtbl.Make (Row_key)

module Val_key = struct
  type t = Value.t
  let equal = Value.equal
  let hash = Value.hash
end

module Val_tbl = Hashtbl.Make (Val_key)

let all_ints c = Array.for_all (function Value.Int _ -> true | _ -> false) c

module Int_tbl = Hashtbl.Make (Int)

(* Group the rows of [t] by column [part] (None: one group), preserving
   first-seen group order. Returns (group key option, row index array) list.
   Integer group keys (the overwhelmingly common case: iter columns) take
   an unboxed fast path. *)
let group_rows t part =
  match part with
  | None ->
    [ (None, Array.init (Table.nrows t) (fun i -> i)) ]
  | Some pcol ->
    let c = Table.col t pcol in
    if all_ints c then begin
      let order = Vec.create 0 in
      let groups : int Vec.t Int_tbl.t = Int_tbl.create 64 in
      for r = 0 to Table.nrows t - 1 do
        let k = match c.(r) with Value.Int i -> i | _ -> assert false in
        match Int_tbl.find_opt groups k with
        | Some v -> Vec.push v r
        | None ->
          let v = Vec.create 0 in
          Vec.push v r;
          Int_tbl.add groups k v;
          Vec.push order k
      done;
      Vec.fold_left
        (fun acc k ->
           (Some (Value.Int k), Vec.to_array (Int_tbl.find groups k)) :: acc)
        [] order
      |> List.rev
    end
    else begin
      let order = Vec.create (Value.Int 0) in
      let groups : int Vec.t Val_tbl.t = Val_tbl.create 64 in
      for r = 0 to Table.nrows t - 1 do
        let k = c.(r) in
        match Val_tbl.find_opt groups k with
        | Some v -> Vec.push v r
        | None ->
          let v = Vec.create 0 in
          Vec.push v r;
          Val_tbl.add groups k v;
          Vec.push order k
      done;
      Vec.fold_left
        (fun acc k -> (Some k, Vec.to_array (Val_tbl.find groups k)) :: acc)
        [] order
      |> List.rev
    end

let check_disjoint_schemas l r =
  Array.iter
    (fun cl ->
       if Array.exists (String.equal cl) r then
         Err.internal "join: column %S on both sides" cl)
    l

(* ------------------------------------------------------------- operators *)

let eval_project t cols = Table.project t cols

let eval_select t colname =
  let c = Table.col t colname in
  let idx = Vec.create 0 in
  for r = 0 to Table.nrows t - 1 do
    match c.(r) with
    | Value.Bool true -> Vec.push idx r
    | Value.Bool false -> ()
    | v -> Err.dynamic "selection on non-boolean value %s" (Value.type_name v)
  done;
  Table.gather t (Vec.to_array idx)

let combine_rows l r li ri =
  let schema = Array.append (Table.schema l) (Table.schema r) in
  let pick t idx = Array.map (fun name ->
      let c = Table.col t name in
      Array.map (fun i -> c.(i)) idx)
      (Table.schema t)
  in
  Table.create schema (Array.append (pick l li) (pick r ri)) (Array.length li)

(* Equi-join matching: the (left row, right row) index pairs, exposed
   separately from the table plumbing so the physical executor can reuse
   the exact same matching semantics (and row order) while building its
   output with typed gathers instead of boxed tables. *)
let join_indices (lc : Value.t array) (rc : Value.t array) =
  let nl = Array.length lc and nr = Array.length rc in
  let li = Vec.create 0 and ri = Vec.create 0 in
  if all_ints lc && all_ints rc then begin
    (* unboxed fast path for integer keys (iter/bind joins) *)
    let index : int Vec.t Int_tbl.t = Int_tbl.create (max 16 nr) in
    for j = 0 to nr - 1 do
      let k = match rc.(j) with Value.Int i -> i | _ -> assert false in
      (match Int_tbl.find_opt index k with
       | Some v -> Vec.push v j
       | None ->
         let v = Vec.create 0 in
         Vec.push v j;
         Int_tbl.add index k v)
    done;
    for i = 0 to nl - 1 do
      let k = match lc.(i) with Value.Int x -> x | _ -> assert false in
      match Int_tbl.find_opt index k with
      | None -> ()
      | Some v -> Vec.iter (fun j -> Vec.push li i; Vec.push ri j) v
    done
  end
  else begin
    let index : int Vec.t Val_tbl.t = Val_tbl.create (max 16 nr) in
    for j = 0 to nr - 1 do
      (match Val_tbl.find_opt index rc.(j) with
       | Some v -> Vec.push v j
       | None ->
         let v = Vec.create 0 in
         Vec.push v j;
         Val_tbl.add index rc.(j) v)
    done;
    for i = 0 to nl - 1 do
      match Val_tbl.find_opt index lc.(i) with
      | None -> ()
      | Some v -> Vec.iter (fun j -> Vec.push li i; Vec.push ri j) v
    done
  end;
  (Vec.to_array li, Vec.to_array ri)

(* The same matching with the hash built on the LEFT column — chosen by
   the lowerer when cardinality estimates say the left side is smaller.
   Matches are accumulated per left row while streaming the right side in
   ascending order, then emitted left-major, so the output pair order is
   IDENTICAL to [join_indices] (i ascending, each i's j's ascending): the
   build side is a cost choice, never a semantic one. *)
let join_indices_build_left (lc : Value.t array) (rc : Value.t array) =
  let nl = Array.length lc and nr = Array.length rc in
  let matches : int Vec.t option array = Array.make nl None in
  let push_match i j =
    match matches.(i) with
    | Some v -> Vec.push v j
    | None ->
      let v = Vec.create 0 in
      Vec.push v j;
      matches.(i) <- Some v
  in
  if all_ints lc && all_ints rc then begin
    let index : int Vec.t Int_tbl.t = Int_tbl.create (max 16 nl) in
    for i = 0 to nl - 1 do
      let k = match lc.(i) with Value.Int x -> x | _ -> assert false in
      (match Int_tbl.find_opt index k with
       | Some v -> Vec.push v i
       | None ->
         let v = Vec.create 0 in
         Vec.push v i;
         Int_tbl.add index k v)
    done;
    for j = 0 to nr - 1 do
      let k = match rc.(j) with Value.Int x -> x | _ -> assert false in
      match Int_tbl.find_opt index k with
      | None -> ()
      | Some v -> Vec.iter (fun i -> push_match i j) v
    done
  end
  else begin
    let index : int Vec.t Val_tbl.t = Val_tbl.create (max 16 nl) in
    for i = 0 to nl - 1 do
      (match Val_tbl.find_opt index lc.(i) with
       | Some v -> Vec.push v i
       | None ->
         let v = Vec.create 0 in
         Vec.push v i;
         Val_tbl.add index lc.(i) v)
    done;
    for j = 0 to nr - 1 do
      match Val_tbl.find_opt index rc.(j) with
      | None -> ()
      | Some v -> Vec.iter (fun i -> push_match i j) v
    done
  end;
  let li = Vec.create 0 and ri = Vec.create 0 in
  Array.iteri
    (fun i m ->
       match m with
       | None -> ()
       | Some v -> Vec.iter (fun j -> Vec.push li i; Vec.push ri j) v)
    matches;
  (Vec.to_array li, Vec.to_array ri)

let eval_join l r lcol rcol =
  check_disjoint_schemas (Table.schema l) (Table.schema r);
  let li, ri = join_indices (Table.col l lcol) (Table.col r rcol) in
  combine_rows l r li ri

(* Theta-join matching over the two key columns, same exposure rationale
   as [join_indices]. *)
let theta_indices (lc : Value.t array) (cmp : prim2) (rc : Value.t array) =
  let homogeneous c =
    (* a hash join is only sound for general-comparison equality when no
       untyped-vs-numeric coercion can fire: all strings on both sides, or
       all numerics on both sides (Value.hash is Int/Dbl-consistent) *)
    Array.for_all (function Value.Str _ -> true | _ -> false) c
    || Array.for_all Value.is_numeric c
  in
  match cmp with
  | P_eq
    when (all_ints lc && all_ints rc)
         || (homogeneous lc && homogeneous rc
             && (Array.length lc = 0
                 || Array.length rc = 0
                 || Value.is_numeric lc.(0) = Value.is_numeric rc.(0))) ->
    join_indices lc rc
  | _ ->
    let all_numeric c = Array.for_all (fun v -> Value.is_numeric v) c in
    let nl = Array.length lc and nr0 = Array.length rc in
    let li = Vec.create 0 and ri = Vec.create 0 in
    (match cmp with
     | (P_lt | P_le | P_gt | P_ge) when all_numeric lc && all_numeric rc ->
       (* sort-based inequality join: sort the right side, emit ranges *)
       let rs = Array.init nr0 (fun j -> (Value.float_value rc.(j), j)) in
       Array.sort (fun (a, _) (b, _) -> Float.compare a b) rs;
       let nr = Array.length rs in
       (* index of first right value >= x (lower bound) *)
       let lower_bound x =
         let lo = ref 0 and hi = ref nr in
         while !lo < !hi do
           let mid = (!lo + !hi) / 2 in
           if fst rs.(mid) < x then lo := mid + 1 else hi := mid
         done;
         !lo
       in
       (* index of first right value > x (upper bound) *)
       let upper_bound x =
         let lo = ref 0 and hi = ref nr in
         while !lo < !hi do
           let mid = (!lo + !hi) / 2 in
           if fst rs.(mid) <= x then lo := mid + 1 else hi := mid
         done;
         !lo
       in
       for i = 0 to nl - 1 do
         let x = Value.float_value lc.(i) in
         if not (Float.is_nan x) then begin
           let from_, to_ =
             match cmp with
             | P_lt -> (upper_bound x, nr)   (* right > left *)
             | P_le -> (lower_bound x, nr)   (* right >= left *)
             | P_gt -> (0, lower_bound x)    (* right < left *)
             | P_ge -> (0, upper_bound x)    (* right <= left *)
             | _ -> assert false
           in
           for k = from_ to to_ - 1 do
             Vec.push li i;
             Vec.push ri (snd rs.(k))
           done
         end
       done
     | _ ->
       let f = cmp_fun cmp in
       for i = 0 to nl - 1 do
         for j = 0 to nr0 - 1 do
           if f lc.(i) rc.(j) then begin
             Vec.push li i;
             Vec.push ri j
           end
         done
       done);
    (Vec.to_array li, Vec.to_array ri)

let eval_thetajoin l r lcol cmp rcol =
  check_disjoint_schemas (Table.schema l) (Table.schema r);
  let li, ri = theta_indices (Table.col l lcol) cmp (Table.col r rcol) in
  combine_rows l r li ri

(* The hash side of a semi/anti join, split out so the physical layer can
   fan the probe out over morsels: the set of right-side key rows.
   Building it is sequential; after that the table is never mutated, so
   concurrent probes only perform racing reads of frozen state. *)
let semi_key_set ~nr (rcols : Value.t array array) =
  let set = Row_tbl.create (max 16 nr) in
  for j = 0 to nr - 1 do
    Row_tbl.replace set (Array.map (fun c -> c.(j)) rcols) ()
  done;
  set

(* Probe left rows [lo, hi) against the frozen key set; kept indices come
   back ascending, so per-morsel results concatenated in morsel order
   reproduce the serial scan. *)
let semi_probe set ~anti (lcols : Value.t array array) lo hi =
  let idx = Vec.create 0 in
  for i = lo to hi - 1 do
    let mem = Row_tbl.mem set (Array.map (fun c -> c.(i)) lcols) in
    if mem <> anti then Vec.push idx i
  done;
  Vec.to_array idx

(* Which left rows survive a semi/anti join, given the key columns of
   both sides (columns in matching on-pair order). *)
let semi_keep ~anti ~nl ~nr (lcols : Value.t array array)
    (rcols : Value.t array array) =
  let set = semi_key_set ~nr rcols in
  semi_probe set ~anti lcols 0 nl

(* Build-flipped variant: hash the (estimated-smaller) left side's keys,
   mark the matched ones in one scan of the right, then keep the left
   rows whose membership agrees with the polarity. The marking scan
   mutates the table, so this path is inherently sequential. Emits the
   same ascending left subsequence as [semi_keep]. *)
let semi_keep_build_left ~anti ~nl ~nr (lcols : Value.t array array)
    (rcols : Value.t array array) =
  let tbl = Row_tbl.create (max 16 nl) in
  for i = 0 to nl - 1 do
    let k = Array.map (fun c -> c.(i)) lcols in
    if not (Row_tbl.mem tbl k) then Row_tbl.add tbl k (ref false)
  done;
  for j = 0 to nr - 1 do
    match Row_tbl.find_opt tbl (Array.map (fun c -> c.(j)) rcols) with
    | Some hit -> hit := true
    | None -> ()
  done;
  let idx = Vec.create 0 in
  for i = 0 to nl - 1 do
    let mem = !(Row_tbl.find tbl (Array.map (fun c -> c.(i)) lcols)) in
    if mem <> anti then Vec.push idx i
  done;
  Vec.to_array idx

let eval_semi ~anti l r on =
  let rcols = Array.of_list (List.map (fun (_, rc) -> Table.col r rc) on) in
  let lcols = Array.of_list (List.map (fun (lc, _) -> Table.col l lc) on) in
  let keep =
    semi_keep ~anti ~nl:(Table.nrows l) ~nr:(Table.nrows r) lcols rcols
  in
  Table.gather l keep

let eval_cross l r =
  check_disjoint_schemas (Table.schema l) (Table.schema r);
  let nl = Table.nrows l and nr = Table.nrows r in
  let n = nl * nr in
  let li = Array.make n 0 and ri = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to nl - 1 do
    for j = 0 to nr - 1 do
      li.(!k) <- i;
      ri.(!k) <- j;
      incr k
    done
  done;
  combine_rows l r li ri

let eval_distinct t =
  let seen = Row_tbl.create (max 16 (Table.nrows t)) in
  let idx = Vec.create 0 in
  for r = 0 to Table.nrows t - 1 do
    let key = Table.row t r in
    if not (Row_tbl.mem seen key) then begin
      Row_tbl.add seen key ();
      Vec.push idx r
    end
  done;
  Table.gather t (Vec.to_array idx)

let eval_rownum t res order part =
  let n = Table.nrows t in
  let ocols = List.map (fun (c, d) -> (Table.col t c, d)) order in
  let pcol = Option.map (Table.col t) part in
  let perm = Array.init n (fun i -> i) in
  let compare_rows a b =
    let pc =
      match pcol with
      | None -> 0
      | Some c -> Value.compare_total c.(a) c.(b)
    in
    if pc <> 0 then pc
    else
      let rec go = function
        | [] -> Int.compare a b (* stability tie-break *)
        | (c, d) :: rest ->
          let cmp = Value.compare_total c.(a) c.(b) in
          let cmp = match d with Asc -> cmp | Desc -> -cmp in
          if cmp <> 0 then cmp else go rest
      in
      go ocols
  in
  Array.sort compare_rows perm;
  let out = Array.make n (Value.Int 0) in
  let counter = ref 0 in
  let last_part = ref None in
  Array.iter
    (fun r ->
       (match pcol with
        | None -> incr counter
        | Some c ->
          (match !last_part with
           | Some v when Value.equal v c.(r) -> incr counter
           | _ ->
             last_part := Some c.(r);
             counter := 1));
       out.(r) <- Value.Int !counter)
    perm;
  Table.append_col t res out

let eval_rowid t res =
  Table.append_col t res (Array.init (Table.nrows t) (fun i -> Value.Int (i + 1)))

let eval_attach t res v =
  Table.append_col t res (Array.make (Table.nrows t) v)

let eval_fun1 store t res f arg =
  let c = Table.col t arg in
  Table.append_col t res (Array.map (apply1 store f) c)

let eval_fun2 store t res f arg1 arg2 =
  let c1 = Table.col t arg1 and c2 = Table.col t arg2 in
  Table.append_col t res
    (Array.init (Table.nrows t) (fun r -> apply2 store f c1.(r) c2.(r)))

let eval_fun3 store t res f arg1 arg2 arg3 =
  let c1 = Table.col t arg1 and c2 = Table.col t arg2 in
  let c3 = Table.col t arg3 in
  Table.append_col t res
    (Array.init (Table.nrows t) (fun r -> apply3 store f c1.(r) c2.(r) c3.(r)))

let eval_aggr store t res agg arg part order =
  let argc = Option.map (Table.col t) arg in
  let orderc = Option.map (Table.col t) order in
  let arg_at r =
    match argc with
    | Some c -> c.(r)
    | None -> Err.internal "aggregate %s needs an argument column" res
  in
  let groups = group_rows t part in
  let out_rows = Vec.create [||] in
  List.iter
    (fun (key, rows) ->
       let emit v =
         match key with
         | Some k -> Vec.push out_rows [| k; v |]
         | None -> Vec.push out_rows [| v |]
       in
       match agg with
       | A_the ->
         (match rows with
          | [| r |] -> emit (arg_at r)
          | [||] -> ()
          | _ ->
            Err.dynamic "a singleton sequence is required here, got %d items"
              (Array.length rows))
       | A_count -> emit (Value.Int (Array.length rows))
       | A_sum ->
         let s =
           Array.fold_left
             (fun acc r -> Value.add acc (atomize store (arg_at r)))
             (Value.Int 0) rows
         in
         emit s
       | A_max | A_min ->
         if Array.length rows > 0 then begin
           let items = Array.map (fun r -> atomize store (arg_at r)) rows in
           (* untyped items compare numerically when the whole group has a
              numeric reading (the fn:min/max untypedAtomic->double cast) *)
           let numeric = Array.map Value.numeric_view items in
           let items =
             if Array.for_all Option.is_some numeric then
               Array.map Option.get numeric
             else items
           in
           let better =
             if agg = A_max then Value.cmp_gt else Value.cmp_lt in
           let best = ref items.(0) in
           let nan = ref false in
           Array.iter
             (fun v ->
                (match v with
                 | Value.Dbl f when Float.is_nan f -> nan := true
                 | _ -> ());
                if better v !best then best := v)
             items;
           emit (if !nan then Value.Dbl Float.nan else !best)
         end
       | A_avg ->
         if Array.length rows > 0 then begin
           let s =
             Array.fold_left
               (fun acc r -> Value.add acc (atomize store (arg_at r)))
               (Value.Int 0) rows
           in
           emit (Value.div s (Value.Int (Array.length rows)))
         end
       | A_ebv ->
         let n = Array.length rows in
         if n = 0 then emit (Value.Bool false)
         else begin
           let all_nodes =
             Array.for_all (fun r -> Value.is_node (arg_at r)) rows in
           if all_nodes then emit (Value.Bool true)
           else if n = 1 then emit (Value.Bool (Value.ebv_atomic (arg_at rows.(0))))
           else
             Err.dynamic
               "effective boolean value of a sequence of %d atomic items" n
         end
       | A_str_join sep ->
         let items =
           Array.map
             (fun r ->
                let key =
                  match orderc with
                  | Some c -> c.(r)
                  | None -> Value.Int 0
                in
                (key, Value.to_string (atomize store (arg_at r))))
             rows
         in
         Array.sort (fun (a, _) (b, _) -> Value.compare_total a b) items;
         emit
           (Value.Str
              (String.concat sep (Array.to_list (Array.map snd items)))))
    groups;
  let schema =
    match part with
    | Some p -> [| p; res |]
    | None -> [| res |]
  in
  Table.of_rows schema (Vec.fold_left (fun acc r -> r :: acc) [] out_rows |> List.rev)

let resolve_test store = function
  | N_name q -> Xmldb.Node_test.Name (Xmldb.Doc_store.name_test_id store q)
  | N_wild -> Xmldb.Node_test.Name_wild
  | N_kind k -> Xmldb.Node_test.Kind k
  | N_any -> Xmldb.Node_test.Any_node
  | N_pi t -> Xmldb.Node_test.Pi_target t

let eval_step ?tag_index ?(batch = true) store t axis test =
  let test = resolve_test store test in
  let itemc = Table.col t "item" in
  let groups = group_rows t (Some "iter") in
  let out = Vec.create [||] in
  let eval_one =
    match tag_index with
    | Some ti when Xmldb.Tag_index.applicable axis test ->
      Xmldb.Tag_index.step ti axis test
    | _ -> Xmldb.Staircase.step ~batch store axis test
  in
  List.iter
    (fun (key, rows) ->
       let iter = Option.get key in
       let ctxs = Array.map (fun r -> node_of itemc.(r)) rows in
       let result = eval_one ctxs in
       Array.iter
         (fun n -> Vec.push out [| iter; Value.Node n |])
         result)
    groups;
  Table.of_rows [| "iter"; "item" |]
    (Vec.fold_left (fun acc r -> r :: acc) [] out |> List.rev)

let eval_doc store t =
  let itemc = Table.col t "item" in
  let iterc = Table.col t "iter" in
  Table.of_rows [| "iter"; "item" |]
    (List.init (Table.nrows t) (fun r ->
         let uri = Value.to_string (atomize store itemc.(r)) in
         match Xmldb.Doc_store.find_document store uri with
         | Some n -> [| iterc.(r); Value.Node n |]
         | None -> Err.dynamic "fn:doc: document %S not available" uri))

(* Element construction: one new fragment per evaluation; per iteration of
   [qnames], build an element whose content is [content]'s rows for that
   iteration in pos order. Adjacent atomics are joined with a space; nodes
   are deep-copied (XQuery constructor semantics). *)
let eval_elem store qn ct =
  let qiter = Table.col qn "iter" and qitem = Table.col qn "item" in
  let citer = Table.col ct "iter" and cpos = Table.col ct "pos" in
  let citem = Table.col ct "item" in
  (* group content by iter, each group sorted by pos *)
  let content : (int * Value.t) Vec.t Val_tbl.t = Val_tbl.create 64 in
  for r = 0 to Table.nrows ct - 1 do
    let entry = (Value.int_value cpos.(r), citem.(r)) in
    match Val_tbl.find_opt content citer.(r) with
    | Some v -> Vec.push v entry
    | None ->
      let v = Vec.create (0, Value.Int 0) in
      Vec.push v entry;
      Val_tbl.add content citer.(r) v
  done;
  let b = Xmldb.Doc_store.Builder.create store in
  let n = Table.nrows qn in
  for r = 0 to n - 1 do
    let name =
      match qitem.(r) with
      | Value.Qname_v q -> q
      | Value.Str s -> Xmldb.Qname.of_string s
      | v -> Err.dynamic "element name must be a QName, got %s" (Value.type_name v)
    in
    Xmldb.Doc_store.Builder.start_element b name;
    (match Val_tbl.find_opt content qiter.(r) with
     | None -> ()
     | Some v ->
       let items = Vec.to_array v in
       Array.sort (fun (p1, _) (p2, _) -> Int.compare p1 p2) items;
       let prev_atomic = ref false in
       Array.iter
         (fun (_, item) ->
            match item with
            | Value.Node nid ->
              Xmldb.Doc_store.Builder.copy b nid;
              prev_atomic := false
            | atom ->
              let s = Value.to_string atom in
              if !prev_atomic then Xmldb.Doc_store.Builder.text b (" " ^ s)
              else Xmldb.Doc_store.Builder.text b s;
              prev_atomic := true)
         items);
    Xmldb.Doc_store.Builder.end_element b
  done;
  let fid, roots = Xmldb.Doc_store.Builder.finish b in
  ignore fid;
  if Array.length roots <> n then
    Err.internal "element construction produced %d roots for %d iterations"
      (Array.length roots) n;
  Table.of_rows [| "iter"; "item" |]
    (List.init n (fun r -> [| qiter.(r); Value.Node roots.(r) |]))

let eval_attr store qn vals =
  let qiter = Table.col qn "iter" and qitem = Table.col qn "item" in
  let viter = Table.col vals "iter" and vitem = Table.col vals "item" in
  (* values: at most one row per iter; absent -> "" *)
  let vmap = Val_tbl.create 64 in
  for r = 0 to Table.nrows vals - 1 do
    Val_tbl.replace vmap viter.(r) (Value.to_string (atomize store vitem.(r)))
  done;
  let b = Xmldb.Doc_store.Builder.create store in
  let n = Table.nrows qn in
  for r = 0 to n - 1 do
    let name =
      match qitem.(r) with
      | Value.Qname_v q -> q
      | Value.Str s -> Xmldb.Qname.of_string s
      | v -> Err.dynamic "attribute name must be a QName, got %s" (Value.type_name v)
    in
    let v = Option.value ~default:"" (Val_tbl.find_opt vmap qiter.(r)) in
    Xmldb.Doc_store.Builder.attribute b name v
  done;
  let _, roots = Xmldb.Doc_store.Builder.finish b in
  Table.of_rows [| "iter"; "item" |]
    (List.init n (fun r -> [| qiter.(r); Value.Node roots.(r) |]))

let eval_textlike store t ~kind =
  let iterc = Table.col t "iter" and itemc = Table.col t "item" in
  let b = Xmldb.Doc_store.Builder.create store in
  let n = Table.nrows t in
  for r = 0 to n - 1 do
    let s = Value.to_string (atomize store itemc.(r)) in
    match kind with
    | `Text -> Xmldb.Doc_store.Builder.force_text b s
    | `Comment -> Xmldb.Doc_store.Builder.comment b s
  done;
  let _, roots = Xmldb.Doc_store.Builder.finish b in
  Table.of_rows [| "iter"; "item" |]
    (List.init n (fun r -> [| iterc.(r); Value.Node roots.(r) |]))

let eval_pinode store t =
  let iterc = Table.col t "iter" in
  let tc = Table.col t "target" and vc = Table.col t "value" in
  let b = Xmldb.Doc_store.Builder.create store in
  let n = Table.nrows t in
  for r = 0 to n - 1 do
    Xmldb.Doc_store.Builder.pi b
      (Value.to_string (atomize store tc.(r)))
      (Value.to_string (atomize store vc.(r)))
  done;
  let _, roots = Xmldb.Doc_store.Builder.finish b in
  Table.of_rows [| "iter"; "item" |]
    (List.init n (fun r -> [| iterc.(r); Value.Node roots.(r) |]))

let eval_range t lo hi =
  let iterc = Table.col t "iter" in
  let loc = Table.col t lo and hic = Table.col t hi in
  let rows = Vec.create [||] in
  for r = 0 to Table.nrows t - 1 do
    let l = Value.int_value loc.(r) and h = Value.int_value hic.(r) in
    let pos = ref 0 in
    for v = l to h do
      incr pos;
      Vec.push rows [| iterc.(r); Value.Int !pos; Value.Int v |]
    done
  done;
  Table.of_rows [| "iter"; "pos"; "item" |]
    (Vec.fold_left (fun acc r -> r :: acc) [] rows |> List.rev)

(* fs:item-sequence-to-node-sequence: per iteration in pos order, runs of
   atomic items become single text nodes (space-separated). *)
let eval_textify store t =
  let iterc = Table.col t "iter" in
  let posc = Table.col t "pos" and itemc = Table.col t "item" in
  let order = Array.init (Table.nrows t) (fun i -> i) in
  Array.sort
    (fun a b ->
       match Value.compare_total iterc.(a) iterc.(b) with
       | 0 -> Value.compare_total posc.(a) posc.(b)
       | c -> c)
    order;
  let b = Xmldb.Doc_store.Builder.create store in
  (* first pass: emit text nodes for atomic runs, remember placements *)
  let rows = Vec.create (Value.Int 0, Value.Int 0, `Node_row 0) in
  let run : (Value.t * Value.t * string list) option ref = ref None in
  let text_count = ref 0 in
  let flush () =
    match !run with
    | None -> ()
    | Some (iter, pos, parts) ->
      Xmldb.Doc_store.Builder.force_text b (String.concat " " (List.rev parts));
      Vec.push rows (iter, pos, `Text_row !text_count);
      incr text_count;
      run := None
  in
  Array.iter
    (fun r ->
       match itemc.(r) with
       | Value.Node _ ->
         flush ();
         Vec.push rows (iterc.(r), posc.(r), `Node_row r)
       | atom ->
         let s = Value.to_string atom in
         (match !run with
          | Some (iter, pos, parts) when Value.equal iter iterc.(r) ->
            run := Some (iter, pos, s :: parts)
          | _ ->
            flush ();
            run := Some (iterc.(r), posc.(r), [ s ])))
    order;
  flush ();
  let _, roots = Xmldb.Doc_store.Builder.finish b in
  Table.of_rows [| "iter"; "pos"; "item" |]
    (List.map
       (fun (iter, pos, what) ->
          let item =
            match what with
            | `Node_row r -> itemc.(r)
            | `Text_row k -> Value.Node roots.(k)
          in
          [| iter; pos; item |])
       (Vec.fold_left (fun acc x -> x :: acc) [] rows |> List.rev))

let eval_id_lookup idx store values context =
  let viter = Table.col values "iter" and vitem = Table.col values "item" in
  let citer = Table.col context "iter" and citem = Table.col context "item" in
  (* group idref strings per iteration *)
  let vals : string list Int_tbl.t = Int_tbl.create 16 in
  for r = 0 to Table.nrows values - 1 do
    let k = Value.int_value viter.(r) in
    let s = Value.to_string (atomize store vitem.(r)) in
    Int_tbl.replace vals k
      (s :: Option.value ~default:[] (Int_tbl.find_opt vals k))
  done;
  let rows = Vec.create [||] in
  for r = 0 to Table.nrows context - 1 do
    let iter = citer.(r) in
    let ctx = node_of citem.(r) in
    let vs =
      Option.value ~default:[] (Int_tbl.find_opt vals (Value.int_value iter))
    in
    Array.iter
      (fun n -> Vec.push rows [| iter; Value.Node n |])
      (Xmldb.Id_index.lookup idx ~ctx vs)
  done;
  Table.of_rows [| "iter"; "item" |]
    (Vec.fold_left (fun acc r -> r :: acc) [] rows |> List.rev)

(* ------------------------------------------------------- the entry point *)

(* Evaluate one operator over its already-evaluated children, passed
   positionally in [Plan.children] order. *)
let eval_op env op (inputs : Table.t list) : Table.t =
  let one () =
    match inputs with
    | [ t ] -> t
    | _ -> Err.internal "kernel arity: one input expected"
  in
  let two () =
    match inputs with
    | [ a; b ] -> (a, b)
    | _ -> Err.internal "kernel arity: two inputs expected"
  in
  match op with
  | Lit { schema; rows } -> Table.of_rows schema rows
  | Project { cols; _ } -> eval_project (one ()) cols
  | Select { col; _ } -> eval_select (one ()) col
  | Join { lcol; rcol; _ } ->
    let l, r = two () in
    eval_join l r lcol rcol
  | Thetajoin { lcol; cmp; rcol; _ } ->
    let l, r = two () in
    eval_thetajoin l r lcol cmp rcol
  | Semijoin { on; _ } ->
    let l, r = two () in
    eval_semi ~anti:false l r on
  | Antijoin { on; _ } ->
    let l, r = two () in
    eval_semi ~anti:true l r on
  | Cross _ ->
    let l, r = two () in
    eval_cross l r
  | Union _ ->
    let l, r = two () in
    Table.union l r
  | Distinct _ -> eval_distinct (one ())
  | Rownum { res; order; part; _ } -> eval_rownum (one ()) res order part
  | Rowid { res; _ } -> eval_rowid (one ()) res
  | Attach { res; value; _ } -> eval_attach (one ()) res value
  | Fun1 { res; f; arg; _ } -> eval_fun1 env.store (one ()) res f arg
  | Fun2 { res; f; arg1; arg2; _ } ->
    eval_fun2 env.store (one ()) res f arg1 arg2
  | Fun3 { res; f; arg1; arg2; arg3; _ } ->
    eval_fun3 env.store (one ()) res f arg1 arg2 arg3
  | Aggr { res; agg; arg; part; order; _ } ->
    eval_aggr env.store (one ()) res agg arg part order
  | Step { axis; test; _ } ->
    eval_step ?tag_index:env.tag_index ~batch:env.code_eval env.store (one ())
      axis test
  | Doc _ -> eval_doc env.store (one ())
  | Elem _ ->
    let q, c = two () in
    eval_elem env.store q c
  | Attr _ ->
    let q, v = two () in
    eval_attr env.store q v
  | Textnode _ -> eval_textlike env.store (one ()) ~kind:`Text
  | Commentnode _ -> eval_textlike env.store (one ()) ~kind:`Comment
  | Pinode _ -> eval_pinode env.store (one ())
  | Range { lo; hi; _ } -> eval_range (one ()) lo hi
  | Textify _ -> eval_textify env.store (one ())
  | Id_lookup _ ->
    let vs, ctx = two () in
    eval_id_lookup (id_index env) env.store vs ctx
