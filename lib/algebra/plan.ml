(* The restricted relational algebra dialect that Pathfinder emits
   (paper, Table 1), represented as a DAG of hash-consed operator nodes.

   Conventions (matching the paper):
     - projection [Project] does NOT remove duplicate rows, and doubles as
       column renaming: cols is a list of (new_name, src_name);
     - [Rownum] is the ROW_NUMBER() OVER (PARTITION BY part ORDER BY order)
       primitive "%" — it requires a sort of its input;
     - [Rowid] is "#": it attaches arbitrary (but unique, dense) numbers at
       negligible cost — the free ROWID column of the back-end;
     - [Attach] plays the role of the "× (pos|1)" cross product with a
       literal singleton table: it attaches a constant column;
     - [Step] is the XPath step operator "⊘ ax::nt": it consumes an
       iter|item table of context nodes and yields a per-iteration
       duplicate-free iter|item table of result nodes;
     - construction operators ([Elem], [Attr], [Textnode], ...) allocate
       new nodes in the document store, one fragment per evaluation.

   Nodes are hash-consed by a [builder] so that equal sub-plans are shared;
   the operator counts reported in the paper (e.g. 19 operators for Q6's
   DAG in Figure 6(a)) count shared nodes once. *)

type col = string

type dir = Asc | Desc

(* The dynamic-type vocabulary for cast / castable / instance of. *)
type atomic_ty =
  | Ty_integer
  | Ty_double     (* also standing in for xs:decimal / xs:float *)
  | Ty_string
  | Ty_boolean
  | Ty_untyped    (* xs:untypedAtomic: carried as a string *)
  | Ty_any_atomic

type item_ty =
  | Ty_item
  | Ty_node
  | Ty_element of Xmldb.Qname.t option
  | Ty_attribute of Xmldb.Qname.t option
  | Ty_text
  | Ty_comment
  | Ty_pi
  | Ty_document
  | Ty_atomic of atomic_ty

type prim1 =
  | P_not
  | P_neg
  | P_atomize        (* nodes -> their string value; atomics pass through *)
  | P_string         (* fn:string *)
  | P_number         (* fn:number: -> xs:double, NaN on failure *)
  | P_cast_int
  | P_cast_dbl
  | P_cast_str
  | P_cast_bool
  | P_string_length
  | P_name           (* node -> qname string ("" for unnamed) *)
  | P_local_name
  | P_round
  | P_floor
  | P_ceiling
  | P_abs
  | P_is_node
  | P_normalize_space
  | P_check_zero_one    (* raises when the (count) argument exceeds 1 *)
  | P_check_exactly_one (* raises unless the (count) argument equals 1 *)
  | P_check_one_or_more (* raises when the (count) argument is 0 *)
  | P_upper             (* fn:upper-case (ASCII) *)
  | P_lower             (* fn:lower-case (ASCII) *)
  | P_serialize         (* nodes -> their XML serialization; atomics -> string *)
  | P_cast_as of atomic_ty   (* "cast as": atomizes, then casts; raises *)
  | P_castable of atomic_ty  (* "castable as" on one item: never raises *)
  | P_instance_item of item_ty (* per-item dynamic type test *)
  | P_check_treat       (* raises "treat as" failure unless the bool is true *)
  | P_node_check        (* identity on nodes; dynamic error on atomics (path-step results) *)
  | P_error             (* fn:error: raises with the argument as message *)

type prim2 =
  | P_add | P_sub | P_mul | P_div | P_idiv | P_mod
  | P_eq | P_ne | P_lt | P_le | P_gt | P_ge
  | P_and | P_or
  | P_is | P_before | P_after        (* node identity / document order *)
  | P_concat | P_contains | P_starts_with | P_ends_with
  | P_substr_before | P_substr_after

(* Row-wise ternary primitives. *)
type prim3 =
  | P3_substring   (* fn:substring(str, start, len) — 1-based, rounded *)
  | P3_translate   (* fn:translate(str, map, trans) *)

type agg =
  | A_the            (* the group's single value; dynamic error on more *)
  | A_count
  | A_sum
  | A_max
  | A_min
  | A_avg
  | A_ebv            (* effective boolean value of the group's sequence *)
  | A_str_join of string  (* fn:string-join with separator; needs order *)

(* Node tests are kept by QName (not name-pool id): names may only be
   interned at runtime by element construction. *)
type ntest =
  | N_name of Xmldb.Qname.t
  | N_wild
  | N_kind of Xmldb.Node_kind.t
  | N_any
  | N_pi of string

type node = {
  id : int;
  op : op;
  mutable label : string;  (* profiling category, set by the compiler *)
}

and op =
  | Lit of { schema : col array; rows : Value.t array list }
  | Project of { input : node; cols : (col * col) list }
  | Select of { input : node; col : col }
  | Join of { left : node; right : node; lcol : col; rcol : col }
  | Thetajoin of { left : node; right : node; lcol : col; cmp : prim2; rcol : col }
  | Semijoin of { left : node; right : node; on : (col * col) list }
  | Antijoin of { left : node; right : node; on : (col * col) list }
  | Cross of { left : node; right : node }
  | Union of { left : node; right : node }      (* disjoint union (append) *)
  | Distinct of { input : node }                (* full-row duplicate removal *)
  | Rownum of { input : node; res : col; order : (col * dir) list; part : col option }
  | Rowid of { input : node; res : col }
  | Attach of { input : node; res : col; value : Value.t }
  | Fun1 of { input : node; res : col; f : prim1; arg : col }
  | Fun2 of { input : node; res : col; f : prim2; arg1 : col; arg2 : col }
  | Fun3 of { input : node; res : col; f : prim3; arg1 : col; arg2 : col; arg3 : col }
  | Aggr of { input : node; res : col; agg : agg; arg : col option;
              part : col option; order : col option }
  | Step of { input : node; axis : Xmldb.Axis.t; test : ntest }
  | Doc of { input : node }                     (* iter|item:uri -> iter|item:node *)
  | Elem of { qnames : node; content : node }   (* iter|item:qname, iter|pos|item *)
  | Attr of { qnames : node; values : node }    (* iter|item:qname, iter|item:str *)
  | Textnode of { input : node }                (* iter|item:str *)
  | Commentnode of { input : node }
  | Pinode of { input : node }                  (* iter|target|value *)
  | Range of { input : node; lo : col; hi : col } (* -> iter|pos|item *)
  | Textify of { input : node }
  | Id_lookup of { values : node; context : node }
    (* fn:id: values iter|item (idref strings), context iter|item (one
       node per iteration); yields iter|item element nodes, duplicate-free
       per iteration *)
    (* fs:item-sequence-to-node-sequence over iter|pos|item: per iteration
       (in pos order) runs of atomic items become single text nodes
       (space-separated); nodes pass through. *)

let children = function
  | Lit _ -> []
  | Project { input; _ } | Select { input; _ } | Distinct { input }
  | Rownum { input; _ } | Rowid { input; _ } | Attach { input; _ }
  | Fun1 { input; _ } | Fun2 { input; _ } | Fun3 { input; _ }
  | Aggr { input; _ }
  | Step { input; _ } | Doc { input } | Textnode { input }
  | Commentnode { input } | Pinode { input } | Range { input; _ }
  | Textify { input } -> [ input ]
  | Id_lookup { values; context } -> [ values; context ]
  | Join { left; right; _ } | Thetajoin { left; right; _ }
  | Semijoin { left; right; _ } | Antijoin { left; right; _ }
  | Cross { left; right } | Union { left; right } -> [ left; right ]
  | Elem { qnames; content } -> [ qnames; content ]
  | Attr { qnames; values } -> [ qnames; values ]

let map_children f op =
  match op with
  | Lit _ -> op
  | Project r -> Project { r with input = f r.input }
  | Select r -> Select { r with input = f r.input }
  | Distinct { input } -> Distinct { input = f input }
  | Rownum r -> Rownum { r with input = f r.input }
  | Rowid r -> Rowid { r with input = f r.input }
  | Attach r -> Attach { r with input = f r.input }
  | Fun1 r -> Fun1 { r with input = f r.input }
  | Fun2 r -> Fun2 { r with input = f r.input }
  | Fun3 r -> Fun3 { r with input = f r.input }
  | Aggr r -> Aggr { r with input = f r.input }
  | Step r -> Step { r with input = f r.input }
  | Doc { input } -> Doc { input = f input }
  | Textnode { input } -> Textnode { input = f input }
  | Commentnode { input } -> Commentnode { input = f input }
  | Pinode { input } -> Pinode { input = f input }
  | Range r -> Range { r with input = f r.input }
  | Textify { input } -> Textify { input = f input }
  | Id_lookup { values; context } ->
    Id_lookup { values = f values; context = f context }
  | Join r -> Join { r with left = f r.left; right = f r.right }
  | Thetajoin r -> Thetajoin { r with left = f r.left; right = f r.right }
  | Semijoin r -> Semijoin { r with left = f r.left; right = f r.right }
  | Antijoin r -> Antijoin { r with left = f r.left; right = f r.right }
  | Cross { left; right } -> Cross { left = f left; right = f right }
  | Union { left; right } -> Union { left = f left; right = f right }
  | Elem { qnames; content } -> Elem { qnames = f qnames; content = f content }
  | Attr { qnames; values } -> Attr { qnames = f qnames; values = f values }

(* -- hash-consing builder -------------------------------------------------- *)

(* Keys replace child nodes by placeholder nodes carrying only the id, so
   polymorphic hashing/equality give structural sharing. *)
let placeholder id = { id; op = Lit { schema = [||]; rows = [] }; label = "" }

let keyify op = map_children (fun n -> placeholder n.id) op

type builder = {
  mutable next_id : int;
  consed : (op, node) Hashtbl.t;
}

let builder () = { next_id = 0; consed = Hashtbl.create 256 }

let mk b op =
  let key = keyify op in
  match Hashtbl.find_opt b.consed key with
  | Some n -> n
  | None ->
    let n = { id = b.next_id; op; label = "" } in
    b.next_id <- b.next_id + 1;
    Hashtbl.add b.consed key n;
    n

let with_label label n = n.label <- label; n

let set_label n label = n.label <- label

(* -- convenience constructors (paper notation in comments) ---------------- *)

let lit b schema rows = mk b (Lit { schema; rows })

(* the literal unit loop: a single iteration *)
let lit_loop b = lit b [| "iter" |] [ [| Value.Int 1 |] ]

let project b input cols = mk b (Project { input; cols })             (* π *)
let select b input col = mk b (Select { input; col })                 (* σ *)
let join b left right lcol rcol = mk b (Join { left; right; lcol; rcol })  (* ⋈ *)
let thetajoin b left right lcol cmp rcol =
  mk b (Thetajoin { left; right; lcol; cmp; rcol })
let semijoin b left right on = mk b (Semijoin { left; right; on })
let antijoin b left right on = mk b (Antijoin { left; right; on })
let cross b left right = mk b (Cross { left; right })                 (* × *)
let union b left right = mk b (Union { left; right })                 (* ∪. *)
let distinct b input = mk b (Distinct { input })                      (* δ *)
let rownum b input res order part = mk b (Rownum { input; res; order; part })  (* % *)
let rowid b input res = mk b (Rowid { input; res })                   (* # *)
let attach b input res value = mk b (Attach { input; res; value })    (* @ *)
let fun1 b input res f arg = mk b (Fun1 { input; res; f; arg })
let fun2 b input res f arg1 arg2 = mk b (Fun2 { input; res; f; arg1; arg2 })
let fun3 b input res f arg1 arg2 arg3 =
  mk b (Fun3 { input; res; f; arg1; arg2; arg3 })
let aggr b input res agg arg part order = mk b (Aggr { input; res; agg; arg; part; order })
let step b input axis test = mk b (Step { input; axis; test })        (* ⊘ *)
let doc b input = mk b (Doc { input })
let elem b qnames content = mk b (Elem { qnames; content })
let attr b qnames values = mk b (Attr { qnames; values })
let textnode b input = mk b (Textnode { input })
let commentnode b input = mk b (Commentnode { input })
let pinode b input = mk b (Pinode { input })
let range b input lo hi = mk b (Range { input; lo; hi })
let textify b input = mk b (Textify { input })
let id_lookup b values context = mk b (Id_lookup { values; context })

(* -- traversal helpers ----------------------------------------------------- *)

(* All distinct nodes reachable from [root], children before parents. *)
let topo_order root =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      List.iter go (children n.op);
      acc := n :: !acc
    end
  in
  go root;
  List.rev !acc

let count_ops root = List.length (topo_order root)

(* Size of the fully expanded operator tree: what a tree-walking executor
   would evaluate. Computed bottom-up over distinct nodes (sharing makes
   the naive recursion exponential); saturates at max_int. *)
let count_tree_nodes root =
  let memo = Hashtbl.create 64 in
  let rec go n =
    match Hashtbl.find_opt memo n.id with
    | Some s -> s
    | None ->
      let s =
        List.fold_left
          (fun acc c ->
             let sc = go c in
             if acc >= max_int - sc then max_int else acc + sc)
          1 (children n.op)
      in
      Hashtbl.add memo n.id s;
      s
  in
  go root

(* tree nodes / DAG nodes: 1.0 means no sharing; Pathfinder-style
   loop-lifted plans typically land well above it. *)
let sharing_factor root =
  float_of_int (count_tree_nodes root) /. float_of_int (count_ops root)

let op_symbol = function
  | Lit _ -> "table"
  | Project _ -> "π"
  | Select _ -> "σ"
  | Join _ -> "⋈"
  | Thetajoin _ -> "⋈θ"
  | Semijoin _ -> "⋉"
  | Antijoin _ -> "▷"
  | Cross _ -> "×"
  | Union _ -> "∪"
  | Distinct _ -> "δ"
  | Rownum _ -> "%"
  | Rowid _ -> "#"
  | Attach _ -> "@"
  | Fun1 _ -> "fun1"
  | Fun2 _ -> "fun2"
  | Fun3 _ -> "fun3"
  | Aggr { agg; _ } ->
    (match agg with
     | A_the -> "the"
     | A_count -> "count" | A_sum -> "sum" | A_max -> "max" | A_min -> "min"
     | A_avg -> "avg" | A_ebv -> "ebv" | A_str_join _ -> "str-join")
  | Step _ -> "⊘"
  | Doc _ -> "doc"
  | Elem _ -> "elem"
  | Attr _ -> "attr"
  | Textnode _ -> "text"
  | Commentnode _ -> "comment"
  | Pinode _ -> "pi"
  | Range _ -> "range"
  | Textify _ -> "textify"
  | Id_lookup _ -> "id"

(* Count operators by kind; [count_rownums] is the metric Figures 6/9 track. *)
let count_by_kind root =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
       let k = op_symbol n.op in
       Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (topo_order root);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let count_kind root sym =
  List.fold_left
    (fun acc n -> if String.equal (op_symbol n.op) sym then acc + 1 else acc)
    0 (topo_order root)

(* -- cardinality estimation ------------------------------------------------ *)

(* Coarse bottom-up row-count estimates, seeded from document-store
   statistics (tag occurrence counts, total store size). The estimates
   only ever steer performance decisions — which join side to build a
   hash on, which input of an order-indifferent join to enumerate first —
   never correctness, so being wrong is cheap and being store-independent
   (the default stats) is sound. *)
module Card = struct
  type stats = {
    total_nodes : int;                   (* rows across all fragments *)
    name_count : Xmldb.Qname.t -> int;   (* occurrences of a tag name *)
  }

  (* A store-free guess: documents are "medium", every tag is "common".
     Chosen so that a literal sequence (rows known exactly) still ranks
     below a path step into an unknown document. *)
  let default_stats = { total_nodes = 10_000; name_count = (fun _ -> 1_000) }

  let sat_mul a b =
    if a > 0 && b > max_int / a then max_int else a * b

  (* On-demand estimator: estimates are memoized by node id, so one
     estimator can serve a whole optimization run — including nodes the
     rewriter creates after the estimator was made. *)
  let estimator ?(stats = default_stats) () : node -> int =
    let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let rec est (n : node) =
      match Hashtbl.find_opt memo n.id with
      | Some e -> e
      | None ->
        let e =
          match n.op with
          | Lit { rows; _ } -> List.length rows
          | Project { input; _ } | Attach { input; _ } | Fun1 { input; _ }
          | Fun2 { input; _ } | Fun3 { input; _ } | Rownum { input; _ }
          | Rowid { input; _ } | Doc { input } | Textify { input } ->
            est input
          | Select { input; _ } -> max 1 (est input / 3)
          | Distinct { input } -> max 1 (est input / 2)
          (* a semijoin keeps at most one copy of each left row per right
             match class: bounded by both sides. The antijoin keeps the
             complement of that bound. *)
          | Semijoin { left; right; _ } ->
            max 1 (min (est left) (est right))
          | Antijoin { left; right; _ } ->
            max 1 (est left - min (est left) (est right))
          | Join { left; right; _ } -> max (est left) (est right)
          | Thetajoin { left; right; _ } ->
            max 1 (sat_mul (est left) (est right) / 4)
          | Cross { left; right } -> sat_mul (est left) (est right)
          | Union { left; right } -> est left + est right
          | Aggr { input; part; _ } ->
            (match part with None -> 1 | Some _ -> max 1 (est input / 2))
          | Step { input; test; axis } ->
            (* a named step lands on at most that tag's population;
               unnamed steps fan out relative to the context size *)
            let ctx = est input in
            (match test with
             | N_name q -> max 1 (min (stats.name_count q) (sat_mul ctx 8))
             | N_wild | N_any ->
               (match axis with
                | Xmldb.Axis.Attribute | Xmldb.Axis.Child -> sat_mul ctx 4
                | _ -> max ctx (stats.total_nodes / 2))
             | N_kind _ | N_pi _ -> sat_mul ctx 2)
          | Elem { qnames; _ } | Attr { qnames; _ } -> est qnames
          | Textnode { input } | Commentnode { input } | Pinode { input } ->
            est input
          | Range { input; _ } -> sat_mul (est input) 8
          | Id_lookup { values; _ } -> est values
        in
        Hashtbl.replace memo n.id e;
        e
    in
    est

  (* node id -> estimated row count over one fixed DAG *)
  let estimate ?stats (root : node) : int -> int =
    let est = estimator ?stats () in
    List.iter (fun n -> ignore (est n)) (topo_order root);
    let byid = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace byid n.id (est n)) (topo_order root);
    fun id -> Option.value ~default:1 (Hashtbl.find_opt byid id)
end
