(* Rendering of plan DAGs: a human-readable ASCII tree (with sharing
   references, since Pathfinder emits DAGs, not trees) and Graphviz dot.
   Used by the CLI's --plan flag and by the Figure 6/9/10 benchmarks. *)

open Plan

let dir_str = function Asc -> "" | Desc -> "/desc"

let prim1_name = function
  | P_not -> "not" | P_neg -> "neg" | P_atomize -> "data" | P_string -> "string"
  | P_number -> "number" | P_cast_int -> "int" | P_cast_dbl -> "dbl"
  | P_cast_str -> "str" | P_cast_bool -> "bool" | P_string_length -> "strlen"
  | P_name -> "name" | P_local_name -> "local-name" | P_round -> "round"
  | P_floor -> "floor" | P_ceiling -> "ceiling" | P_abs -> "abs"
  | P_is_node -> "is-node" | P_normalize_space -> "normalize-space"
  | P_check_zero_one -> "check01" | P_check_exactly_one -> "check1"
  | P_check_one_or_more -> "check1+" | P_upper -> "upper-case"
  | P_lower -> "lower-case" | P_serialize -> "serialize"
  | P_cast_as _ -> "cast" | P_castable _ -> "castable"
  | P_instance_item _ -> "instance" | P_check_treat -> "treat"
  | P_error -> "error" | P_node_check -> "node-check"

let prim2_name = function
  | P_add -> "+" | P_sub -> "-" | P_mul -> "*" | P_div -> "div"
  | P_idiv -> "idiv" | P_mod -> "mod"
  | P_eq -> "=" | P_ne -> "!=" | P_lt -> "<" | P_le -> "<=" | P_gt -> ">"
  | P_ge -> ">=" | P_and -> "and" | P_or -> "or" | P_is -> "is"
  | P_before -> "<<" | P_after -> ">>" | P_concat -> "||"
  | P_contains -> "contains" | P_starts_with -> "starts-with"
  | P_ends_with -> "ends-with" | P_substr_before -> "substring-before"
  | P_substr_after -> "substring-after"

let ntest_str = function
  | N_name q -> Xmldb.Qname.to_string q
  | N_wild -> "*"
  | N_kind k -> Xmldb.Node_kind.to_string k ^ "()"
  | N_any -> "node()"
  | N_pi t -> Printf.sprintf "processing-instruction(%S)" t

let describe n =
  match n.op with
  | Lit { schema; rows } ->
    Printf.sprintf "table(%s)[%d]"
      (String.concat "," (Array.to_list schema))
      (List.length rows)
  | Project { cols; _ } ->
    Printf.sprintf "π_{%s}"
      (String.concat ","
         (List.map
            (fun (n', s) -> if n' = s then n' else n' ^ ":" ^ s)
            cols))
  | Select { col; _ } -> Printf.sprintf "σ_%s" col
  | Join { lcol; rcol; _ } -> Printf.sprintf "⋈_{%s=%s}" lcol rcol
  | Thetajoin { lcol; cmp; rcol; _ } ->
    Printf.sprintf "⋈_{%s%s%s}" lcol (prim2_name cmp) rcol
  | Semijoin { on; _ } ->
    Printf.sprintf "⋉_{%s}"
      (String.concat "," (List.map (fun (a, b) -> a ^ "=" ^ b) on))
  | Antijoin { on; _ } ->
    Printf.sprintf "▷_{%s}"
      (String.concat "," (List.map (fun (a, b) -> a ^ "=" ^ b) on))
  | Cross _ -> "×"
  | Union _ -> "∪"
  | Distinct _ -> "δ"
  | Rownum { res; order; part; _ } ->
    Printf.sprintf "%%_{%s:⟨%s⟩%s}" res
      (String.concat "," (List.map (fun (c, d) -> c ^ dir_str d) order))
      (match part with None -> "" | Some p -> "‖" ^ p)
  | Rowid { res; _ } -> Printf.sprintf "#_%s" res
  | Attach { res; value; _ } ->
    Printf.sprintf "@_{%s:%s}" res (Format.asprintf "%a" Value.pp value)
  | Fun1 { res; f; arg; _ } ->
    Printf.sprintf "fun_{%s:%s(%s)}" res (prim1_name f) arg
  | Fun2 { res; f; arg1; arg2; _ } ->
    Printf.sprintf "fun_{%s:(%s%s%s)}" res arg1 (prim2_name f) arg2
  | Fun3 { res; f; arg1; arg2; arg3; _ } ->
    Printf.sprintf "fun_{%s:%s(%s,%s,%s)}" res
      (match f with P3_substring -> "substring" | P3_translate -> "translate")
      arg1 arg2 arg3
  | Aggr { res; agg; arg; part; _ } ->
    let agg_name =
      match agg with
      | A_the -> "the"
      | A_count -> "count" | A_sum -> "sum" | A_max -> "max" | A_min -> "min"
      | A_avg -> "avg" | A_ebv -> "ebv"
      | A_str_join sep -> Printf.sprintf "string-join[%S]" sep
    in
    Printf.sprintf "%s_%s%s%s" agg_name res
      (match arg with None -> "" | Some a -> "(" ^ a ^ ")")
      (match part with None -> "" | Some p -> "‖" ^ p)
  | Step { axis; test; _ } ->
    Printf.sprintf "⊘_{%s::%s}" (Xmldb.Axis.to_string axis) (ntest_str test)
  | Doc _ -> "doc"
  | Elem _ -> "elem"
  | Attr _ -> "attr"
  | Textnode _ -> "text"
  | Commentnode _ -> "comment"
  | Pinode _ -> "pi"
  | Range { lo; hi; _ } -> Printf.sprintf "range(%s,%s)" lo hi
  | Textify _ -> "textify"
  | Id_lookup _ -> "fn:id"

(* ASCII tree with sharing references: a node already printed appears as
   "^id" instead of being expanded again. [annot] can append a per-node
   note (e.g. inferred properties) after the operator description. *)
let to_tree ?(annot = fun (_ : node) -> (None : string option)) root =
  let buf = Buffer.create 512 in
  let printed = Hashtbl.create 64 in
  let rec go indent n =
    if Hashtbl.mem printed n.id then
      Buffer.add_string buf (Printf.sprintf "%s^%d\n" indent n.id)
    else begin
      Hashtbl.add printed n.id ();
      let note = match annot n with None -> "" | Some s -> "  " ^ s in
      Buffer.add_string buf
        (Printf.sprintf "%s[%d] %s%s%s\n" indent n.id (describe n) note
           (if n.label = "" then "" else "  {" ^ n.label ^ "}"));
      List.iter (go (indent ^ "  ")) (children n.op)
    end
  in
  go "" root;
  Buffer.contents buf

let to_dot root =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph plan {\n  node [shape=box,fontname=\"monospace\"];\n";
  let nodes = topo_order root in
  List.iter
    (fun n ->
       Buffer.add_string buf
         (Printf.sprintf "  n%d [label=\"%s\"];\n" n.id
            (String.concat ""
               (List.map
                  (fun c -> if c = '"' then "\\\"" else String.make 1 c)
                  (List.init (String.length (describe n)) (String.get (describe n)))))))
    nodes;
  List.iter
    (fun n ->
       List.iter
         (fun c -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" n.id c.id))
         (children n.op))
    nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* One-line summary used by the plan-size experiments. *)
let summary root =
  let total = count_ops root in
  let rn = count_kind root "%" in
  let ri = count_kind root "#" in
  Printf.sprintf "%d operators (%d rownum %%, %d rowid #)" total rn ri
