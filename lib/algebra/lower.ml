(* Lowering: compile the hash-consed logical Plan DAG into the physical
   operator DAG that [Physical] executes.

   The one non-trivial decision made here is kernel fusion: a maximal
   chain of adjacent Attach / Fun1 / Fun2 / Fun3 / Select operators is
   folded into a single [K_pipe] kernel that runs the whole chain in one
   pass. A chain may only swallow a node whose result no one else needs,
   i.e. whose parent count in the DAG is exactly 1 — shared subplans keep
   their own kernel (and their own memo slot), so the sharing the
   hash-consing found is preserved intact. The chain's head node CAN be
   shared: the fused kernel is memoized under the head's id.

   Everything else maps 1:1 onto a physical kernel — typed where
   [Physical] has a typed implementation, [K_boxed] (the boxed kernel
   called through table conversions) where it does not. Lowering is
   strictly post-logical: it never changes plan shapes, so the logical
   optimizer's output (and its golden tests) are untouched.

   Static column-type hints come in through [types] — a function rather
   than a direct [Properties] call because the property inference lives
   in a layer above this one. Hints only annotate the physical plan for
   dumps; execution re-detects types dynamically.

   Lowering also decides which kernels are licensed to fan out over
   morsels ([ppar]) — the plan-shape story of the paper, mapped onto the
   executor: Rowid is the [#] shape (order immaterial — dense renumbering
   at the end), Rownum is the [%] shape (an order the query can observe),
   so pipes, join and semijoin probes and the order-indifferent
   aggregates (count/sum/min/max) parallelize, while Rownum — and
   everything whose matching logic is inherently sequential (Distinct's
   first-wins dedup, any hash build that is itself the output, Union's
   append) or boxed — stays serial. *)

type chain = Physical.chain_op list

(* Parent (reference) counts over the DAG: how many operators consume
   each node's result. Each node visited once thanks to hash-consing. *)
let parent_counts root =
  let counts = Hashtbl.create 256 in
  List.iter
    (fun (n : Plan.node) ->
       List.iter
         (fun (c : Plan.node) ->
            Hashtbl.replace counts c.id
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts c.id)))
         (Plan.children n.op))
    (Plan.topo_order root);
  counts

let chain_op_of (op : Plan.op) : (Physical.chain_op * Plan.node) option =
  match op with
  | Plan.Select { input; col } -> Some (Physical.F_select col, input)
  | Plan.Attach { input; res; value } ->
    Some (Physical.F_attach (res, value), input)
  | Plan.Fun1 { input; res; f; arg } ->
    Some (Physical.F_fun1 (res, f, arg), input)
  | Plan.Fun2 { input; res; f; arg1; arg2 } ->
    Some (Physical.F_fun2 (res, f, arg1, arg2), input)
  | Plan.Fun3 { input; res; f; arg1; arg2; arg3 } ->
    Some (Physical.F_fun3 (res, f, arg1, arg2, arg3), input)
  | _ -> None

let label_of (n : Plan.node) =
  if n.Plan.label = "" then Plan.op_symbol n.Plan.op else n.Plan.label

(* Order-indifference licence per kernel (see the module comment). A
   build-left join runs serial: its accumulation order is the build of
   the output itself, not a probe that can be sliced into morsels.
   A standalone [#] stamp fans out: the dense path is O(1) and the
   scattered path writes disjoint, index-determined slots per morsel —
   this is what makes sort-elision (% becoming #) widen the ∥ fraction
   of the plan, not just remove a sort. *)
let parallelizable (pop : Physical.pop) =
  match pop with
  | Physical.K_join { build_left = true; _ }
  | Physical.K_semijoin { build_left = true; _ } -> false
  | Physical.K_pipe _ | Physical.K_join _ | Physical.K_thetajoin _
  | Physical.K_semijoin _ | Physical.K_rowid _ -> true
  | Physical.K_aggr { agg; _ } -> (
    match agg with
    | Plan.A_count | Plan.A_sum | Plan.A_min | Plan.A_max -> true
    | _ -> false)
  | Physical.K_project _ | Physical.K_distinct | Physical.K_union
  | Physical.K_rownum _ | Physical.K_boxed _ -> false

let lower ?(types = fun (_ : Plan.node) -> ([] : (string * Column.ty) list))
    ?card ?(merge_hint = fun (_ : Plan.node) -> (None : int option))
    (root : Plan.node) : Physical.pnode =
  (* Cardinality estimates pick the hash-join build side: build on the
     left when it is estimated (with margin) smaller than the right. A
     wrong estimate costs time, never correctness — both builds emit the
     same pair order. *)
  let build_left_of left right =
    match card with
    | None -> false
    | Some est -> 2 * est left < est right
  in
  let parents = parent_counts root in
  let parent_count (n : Plan.node) =
    Option.value ~default:0 (Hashtbl.find_opt parents n.Plan.id)
  in
  let memo : (int, Physical.pnode) Hashtbl.t = Hashtbl.create 256 in
  let rec go (n : Plan.node) : Physical.pnode =
    match Hashtbl.find_opt memo n.Plan.id with
    | Some p -> p
    | None ->
      let mk pop pinputs pfused =
        { Physical.pid = n.Plan.id;
          pop;
          pinputs;
          pfused;
          plabel = label_of n;
          ptypes = types n;
          ppar = parallelizable pop }
      in
      let p =
        match chain_op_of n.Plan.op with
        | Some (op, input) ->
          (* grow the chain downward while the next node is chainable and
             consumed by this chain alone *)
          let rec grow acc fused (cur : Plan.node) =
            match chain_op_of cur.Plan.op with
            | Some (op', input') when parent_count cur = 1 ->
              grow (op' :: acc) (fused + 1) input'
            | _ -> (acc, fused, cur)
          in
          let ops, fused, src = grow [ op ] 1 input in
          mk (Physical.K_pipe ops) [ go src ] fused
        | None -> (
          match n.Plan.op with
          | Plan.Project { input; cols } ->
            mk (Physical.K_project cols) [ go input ] 1
          | Plan.Distinct { input } -> mk Physical.K_distinct [ go input ] 1
          | Plan.Union { left; right } ->
            mk Physical.K_union [ go left; go right ] 1
          | Plan.Rowid { input; res } ->
            mk (Physical.K_rowid res) [ go input ] 1
          | Plan.Rownum { input; res; order; part } ->
            mk
              (Physical.K_rownum
                 { res; order; part; merge_hint = merge_hint n })
              [ go input ] 1
          | Plan.Join { left; right; lcol; rcol } ->
            mk
              (Physical.K_join
                 { lcol; rcol; build_left = build_left_of left right })
              [ go left; go right ] 1
          | Plan.Thetajoin { left; right; lcol; cmp; rcol } ->
            mk
              (Physical.K_thetajoin { lcol; cmp; rcol })
              [ go left; go right ] 1
          | Plan.Semijoin { left; right; on } ->
            mk
              (Physical.K_semijoin
                 { anti = false; on; build_left = build_left_of left right })
              [ go left; go right ] 1
          | Plan.Antijoin { left; right; on } ->
            mk
              (Physical.K_semijoin
                 { anti = true; on; build_left = build_left_of left right })
              [ go left; go right ] 1
          | Plan.Aggr { input; res; agg; arg; part; order } ->
            mk (Physical.K_aggr { res; agg; arg; part; order }) [ go input ] 1
          | op ->
            (* Lit, Cross, Step, node construction, Range, Textify,
               Id_lookup, Doc: boxed kernels over converted inputs *)
            mk (Physical.K_boxed op) (List.map go (Plan.children op)) 1)
      in
      Hashtbl.add memo n.Plan.id p;
      p
  in
  go root

(* Distinct kernels in the physical DAG (each shared kernel counted once). *)
let count_kernels (root : Physical.pnode) =
  let seen = Hashtbl.create 64 in
  let rec go (p : Physical.pnode) =
    if not (Hashtbl.mem seen p.Physical.pid) then begin
      Hashtbl.add seen p.Physical.pid ();
      List.iter go p.Physical.pinputs
    end
  in
  go root;
  Hashtbl.length seen

(* Logical operators covered (the sum of fusion widths). *)
let count_covered (root : Physical.pnode) =
  let seen = Hashtbl.create 64 in
  let total = ref 0 in
  let rec go (p : Physical.pnode) =
    if not (Hashtbl.mem seen p.Physical.pid) then begin
      Hashtbl.add seen p.Physical.pid ();
      total := !total + p.Physical.pfused;
      List.iter go p.Physical.pinputs
    end
  in
  go root;
  !total

(* Kernels licensed for morsel parallelism (each counted once). *)
let count_parallel (root : Physical.pnode) =
  let seen = Hashtbl.create 64 in
  let total = ref 0 in
  let rec go (p : Physical.pnode) =
    if not (Hashtbl.mem seen p.Physical.pid) then begin
      Hashtbl.add seen p.Physical.pid ();
      if p.Physical.ppar then incr total;
      List.iter go p.Physical.pinputs
    end
  in
  go root;
  !total

let chain_op_name = function
  | Physical.F_select c -> Printf.sprintf "σ(%s)" c
  | Physical.F_attach (res, v) ->
    Format.asprintf "@%s:=%a" res Value.pp v
  | Physical.F_fun1 (res, _, a) -> Printf.sprintf "%s:=f1(%s)" res a
  | Physical.F_fun2 (res, _, a1, a2) ->
    Printf.sprintf "%s:=f2(%s,%s)" res a1 a2
  | Physical.F_fun3 (res, _, a1, a2, a3) ->
    Printf.sprintf "%s:=f3(%s,%s,%s)" res a1 a2 a3

(* Physical-plan dump: one node per line, indentation for structure,
   [^id] back-references for shared kernels, column-type annotations from
   the static hints. *)
let pp fmt (root : Physical.pnode) =
  let seen = Hashtbl.create 64 in
  let rec go indent (p : Physical.pnode) =
    if Hashtbl.mem seen p.Physical.pid then
      Format.fprintf fmt "%s^%d (shared)@\n" indent p.Physical.pid
    else begin
      Hashtbl.add seen p.Physical.pid ();
      (* equality comparisons whose operands are statically strings are
         code-eval candidates: at run time they translate the comparand
         into the fragment's dictionary code once and compare machine
         ints per row (unless --no-code-eval, or the operand column
         turns out not to carry codes). The stamp covers every shape
         the optimizer can leave the equality in: a fused predicate, a
         hash-join or semijoin key, or an eq thetajoin. *)
      let tyof c = List.assoc_opt c p.Physical.ptypes in
      let str c = tyof c = Some Column.T_str in
      let detail =
        match p.Physical.pop with
        | Physical.K_pipe ops ->
          let name op =
            let base = chain_op_name op in
            match op with
            | Physical.F_fun2 (_, (Plan.P_eq | Plan.P_ne), a1, a2)
              when str a1 || str a2 -> base ^ "[code]"
            | _ -> base
          in
          " [" ^ String.concat "; " (List.map name ops) ^ "]"
        | Physical.K_thetajoin { lcol; cmp = Plan.P_eq; rcol }
          when str lcol || str rcol -> " [code]"
        | Physical.K_join { lcol; rcol; _ } when str lcol || str rcol ->
          " [code]"
        | Physical.K_semijoin { on = [ (lc, _) ]; _ } when str lc ->
          " [code]"
        | _ -> ""
      in
      let tys =
        match p.Physical.ptypes with
        | [] -> ""
        | l ->
          " {"
          ^ String.concat ", "
              (List.map
                 (fun (c, ty) -> c ^ ":" ^ Column.ty_name ty)
                 (List.filter (fun (_, ty) -> ty <> Column.T_mixed) l))
          ^ "}"
      in
      let tys = if tys = " {}" then "" else tys in
      Format.fprintf fmt "%s[%d] %s%s%s%s%s@\n" indent p.Physical.pid
        (Physical.pop_name p.Physical.pop)
        (if p.Physical.ppar then " \xE2\x88\xA5" else "")
        (if p.Physical.pfused > 1 then
           Printf.sprintf " (fuses %d ops)" p.Physical.pfused
         else "")
        detail tys;
      List.iter (go (indent ^ "  ")) p.Physical.pinputs
    end
  in
  go "" root

let to_string root = Format.asprintf "%a" pp root
