(** In-memory columnar tables — the stand-in for MonetDB's BATs.

    A table is a named list of equal-length value columns. The row set
    carries {e no} inherent order semantics (the runtime is "inherently
    unordered", paper Section 1): any order information lives in explicit
    columns such as [pos] and [iter], exactly as in Pathfinder's
    compilation scheme. Operators access columns by name. *)

type t

val schema : t -> string array
val nrows : t -> int
val ncols : t -> int

(** [create schema cols nrows] wraps existing columns; checks arity and
    lengths. *)
val create : string array -> Value.t array array -> int -> t

val empty : string array -> t

(** Index of a column; internal error when absent. *)
val col_index : t -> string -> int

val has_col : t -> string -> bool

(** The raw column array (shared, do not mutate). *)
val col : t -> string -> Value.t array

(** The raw column storage, in schema order (zero copy — do not mutate). *)
val columns : t -> Value.t array array

val get : t -> string -> int -> Value.t

(** Build from a row list; each row ordered like the schema. *)
val of_rows : string array -> Value.t array list -> t

(** Materialize row [r] as an array. *)
val row : t -> int -> Value.t array

val iter_rows : (int -> unit) -> t -> unit

(** Select a subset of rows by index (duplicates allowed). *)
val gather : t -> int array -> t

(** Reorder / rename / duplicate columns: [(new_name, src_name)] pairs. *)
val project : t -> (string * string) list -> t

val append_col : t -> string -> Value.t array -> t

(** Append [other]'s rows, aligning its columns to [t]'s schema by name. *)
val union : t -> t -> t

(** Debug rendering (up to [max_rows] rows). *)
val to_string : ?max_rows:int -> t -> string

(** Estimated memory footprint in bytes (see {!Value.estimated_bytes}). *)
val estimated_bytes : t -> int
