(* Ordering-property inference over the logical plan DAG.

   The rewriter's const/dense/key lattice (Exrquy.Properties) answers
   "what VALUES can this column hold"; this module answers "in what ORDER
   do the rows come out" — the missing half of the paper's order story.
   A fact is a lexicographic sortedness claim: the node's output rows,
   in physical row order, are non-strictly sorted by a list of
   (column, direction) keys under [Value.compare_total]. Facts are
   statements about *physical row order*, which in this engine is
   deterministic and identical across the boxed executor, the typed
   physical executor, and every morsel width (the parallel machinery
   stitches per-morsel results in morsel order by construction) — so one
   analysis serves every backend.

   Every propagation rule below encodes a row-order invariant of the
   kernels themselves, independent of any ordering-mode latitude:

     - the staircase/tag-index step emits, per input row group, result
       nodes sorted by document order, groups in first-seen iter order —
       so an iter-sorted input yields (iter, item)-sorted output;
     - # (Rowid) appends a dense 1..n stamp in row order: its result
       column is always a sorted key;
     - @ (Attach), Fun*, % (Rownum) append a column and keep the carrier
       rows in place;
     - equi-joins probe the left side in row order (left-major pair
       order), so the outer side's facts survive;
     - Union is an append: facts die, but each side keeps its own —
       which is exactly what [sorted_runs] recovers for k-way merges;
     - Select/Distinct/Semijoin/Antijoin emit a subsequence of their
       (left) input, and subsequences of sorted rows stay sorted.

   Soundness matters more than completeness: a missing fact costs a sort
   that was already paid for; a wrong fact changes answers. Facts are
   therefore derived only from invariants the kernels guarantee
   unconditionally — never from the query's ordering mode. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type req = (Plan.col * Plan.dir) list

type props = {
  facts : req list;
      (* each: rows are non-strictly lex-sorted by these keys *)
  keys : SSet.t;         (* columns with pairwise-distinct values *)
  consts : Value.t SMap.t;  (* columns equal to one value on every row *)
  one_row : bool;        (* at most one row: every ordering holds *)
}

let empty =
  { facts = []; keys = SSet.empty; consts = SMap.empty; one_row = false }

(* Keep the analysis O(plan size): a handful of short facts per node. *)
let max_facts = 8
let max_fact_len = 4

let clip p =
  let facts =
    List.filteri (fun i _ -> i < max_facts) p.facts
    |> List.map (fun f -> List.filteri (fun i _ -> i < max_fact_len) f)
  in
  { p with facts = List.sort_uniq compare facts }

(* Constant columns are order-neutral: all rows carry one value, so they
   can be dropped both from a requirement and from a fact. *)
let strip_consts consts l =
  List.filter (fun (c, _) -> not (SMap.mem c consts)) l

(* Does [fact] prove [req]? Walk matching (col, dir) prefixes; a matched
   key column sorts strictly, pinning every remaining requirement key. *)
let fact_proves keys fact req =
  let rec go fact req =
    match req with
    | [] -> true
    | (c, d) :: req' -> (
      match fact with
      | [] -> false
      | (fc, fd) :: fact' ->
        String.equal fc c && fd = d && (SSet.mem c keys || go fact' req'))
  in
  go fact req

let proves p req =
  p.one_row
  ||
  let req = strip_consts p.consts req in
  req = []
  || List.exists (fun f -> fact_proves p.keys (strip_consts p.consts f) req) p.facts

(* ---------------------------------------------------------- propagation *)

(* Rename facts/keys/consts through a projection; a fact survives as its
   longest kept prefix (a prefix of a lex ordering is a lex ordering). *)
let remap_fact cols fact =
  let rec go acc = function
    | [] -> List.rev acc
    | (c, d) :: rest -> (
      match List.find_opt (fun (_, src) -> String.equal src c) cols with
      | Some (nw, _) -> go ((nw, d) :: acc) rest
      | None -> List.rev acc)
  in
  go [] fact

(* Facts whose leading columns all pass [kept]; truncated at the first
   column that does not. *)
let truncate_facts kept facts =
  List.map
    (fun f ->
       let rec go acc = function
         | (c, d) :: rest when kept c -> go ((c, d) :: acc) rest
         | _ -> List.rev acc
       in
       go [] f)
    facts
  |> List.filter (fun f -> f <> [])

let drop_cols dropped p =
  let kept c = not (List.mem c dropped) in
  { facts = truncate_facts kept p.facts;
    keys = SSet.filter kept p.keys;
    consts = SMap.filter (fun c _ -> kept c) p.consts;
    one_row = p.one_row }

(* Exact single-column properties of a literal table (loop relations,
   small constant sequences): cheap, and the seed for everything else. *)
let lit_props schema rows =
  let nrows = List.length rows in
  if nrows = 0 then { empty with one_row = true }
  else if nrows = 1 then begin
    (* the 1-row loop relation seeding every plan: each column is both
       constant and a key, and downstream const-stripping depends on it *)
    let row = List.hd rows in
    let consts =
      Array.to_seq (Array.mapi (fun i name -> (name, Array.get row i)) schema)
      |> SMap.of_seq
    in
    { facts = [];
      keys = SSet.of_list (Array.to_list schema);
      consts;
      one_row = true }
  end
  else if nrows > 64 then empty
  else begin
    let cols = Array.length schema in
    let facts = ref [] and keys = ref SSet.empty and consts = ref SMap.empty in
    for ci = 0 to cols - 1 do
      let vs = List.map (fun r -> Array.get r ci) rows in
      let rec pairs f = function
        | a :: (b :: _ as rest) -> f a b && pairs f rest
        | _ -> true
      in
      let name = schema.(ci) in
      if pairs (fun a b -> Value.compare_total a b = 0) vs then
        consts := SMap.add name (List.hd vs) !consts
      else begin
        if pairs (fun a b -> Value.compare_total a b <= 0) vs then
          facts := [ (name, Plan.Asc) ] :: !facts;
        if pairs (fun a b -> Value.compare_total a b >= 0) vs then
          facts := [ (name, Plan.Desc) ] :: !facts
      end;
      if
        List.length (List.sort_uniq Value.compare_total vs) = nrows
      then keys := SSet.add name !keys
    done;
    { facts = !facts; keys = !keys; consts = !consts; one_row = false }
  end

type analyzer = Plan.node -> props

let make () : analyzer =
  let memo : (int, props) Hashtbl.t = Hashtbl.create 64 in
  let rec props (n : Plan.node) : props =
    match Hashtbl.find_opt memo n.Plan.id with
    | Some p -> p
    | None ->
      let p = clip (derive n) in
      Hashtbl.replace memo n.Plan.id p;
      p
  and satisfies n req = proves (props n) req
  and derive (n : Plan.node) : props =
    match n.Plan.op with
    | Plan.Lit { schema; rows } -> lit_props schema rows
    | Plan.Project { input; cols } ->
      let p = props input in
      { facts = List.filter (fun f -> f <> []) (List.map (remap_fact cols) p.facts);
        keys =
          List.fold_left
            (fun acc (nw, src) -> if SSet.mem src p.keys then SSet.add nw acc else acc)
            SSet.empty cols;
        consts =
          List.fold_left
            (fun acc (nw, src) ->
               match SMap.find_opt src p.consts with
               | Some v -> SMap.add nw v acc
               | None -> acc)
            SMap.empty cols;
        one_row = p.one_row }
    | Plan.Select { input; col } ->
      (* a subsequence of the input; the filter column is all-true after *)
      let p = props input in
      { p with consts = SMap.add col (Value.Bool true) p.consts }
    | Plan.Distinct { input } -> props input
    | Plan.Semijoin { left; right; on } ->
      (* a subsequence of the left input; every surviving row matched some
         right row on [on], so a constant right column pins its left
         partner (vacuously sound when no row survives) *)
      let pl = props left and pr = props right in
      let consts =
        List.fold_left
          (fun acc (lcol, rcol) ->
             match SMap.find_opt rcol pr.consts with
             | Some v -> SMap.add lcol v acc
             | None -> acc)
          pl.consts on
      in
      { pl with consts }
    | Plan.Antijoin { left; _ } -> props left
    | Plan.Join { left; right; lcol; rcol } ->
      let pl = props left and pr = props right in
      (* pair order is left-major with right matches in right-row order
         (hash buckets accumulate probe hits in scan order) *)
      let facts = pl.facts @ (if pl.one_row then pr.facts else []) in
      let keys =
        SSet.union
          (if SSet.mem rcol pr.keys then pl.keys else SSet.empty)
          (if SSet.mem lcol pl.keys then pr.keys else SSet.empty)
      in
      (* output rows satisfy lcol = rcol: a const on one join column is a
         const on the other *)
      let consts =
        let merged =
          SMap.union (fun _ v _ -> Some v) pl.consts pr.consts
        in
        match (SMap.find_opt lcol merged, SMap.find_opt rcol merged) with
        | Some v, None -> SMap.add rcol v merged
        | None, Some v -> SMap.add lcol v merged
        | _ -> merged
      in
      { facts; keys; consts; one_row = pl.one_row && pr.one_row }
    | Plan.Thetajoin { left; right; _ } ->
      let pl = props left and pr = props right in
      (* left-major; inequality matches need not come out in right-row
         order (the sort-based path reorders), so right facts never pass *)
      { facts = pl.facts;
        keys = SSet.empty;
        consts = SMap.union (fun _ v _ -> Some v) pl.consts pr.consts;
        one_row = false }
    | Plan.Cross { left; right } ->
      let pl = props left and pr = props right in
      { facts = pl.facts @ (if pl.one_row then pr.facts else []);
        keys =
          SSet.union
            (if pr.one_row then pl.keys else SSet.empty)
            (if pl.one_row then pr.keys else SSet.empty);
        consts = SMap.union (fun _ v _ -> Some v) pl.consts pr.consts;
        one_row = pl.one_row && pr.one_row }
    | Plan.Union { left; right } ->
      (* an append: per-side facts become runs (see [sorted_runs]), not
         global facts *)
      let pl = props left and pr = props right in
      { facts = [];
        keys = SSet.empty;
        consts =
          SMap.merge
            (fun _ a b ->
               match (a, b) with
               | Some va, Some vb when Value.compare_total va vb = 0 -> Some va
               | _ -> None)
            pl.consts pr.consts;
        one_row = false }
    | Plan.Rownum { input; res; order; part } ->
      (* the carrier rows stay in place; [res] is appended *)
      let p = props input in
      let extra =
        match part with
        | None ->
          (* input already in the requested order: ranks are 1..n in row
             order — exactly # *)
          if proves p order then [ [ (res, Plan.Asc) ] ] else []
        | Some pc ->
          (* input grouped-and-sorted by the partition: per-partition
             ranks ascend within each run of the partition column *)
          List.filter_map
            (fun d ->
               if proves p ((pc, d) :: order) then
                 Some [ (pc, d); (res, Plan.Asc) ]
               else None)
            [ Plan.Asc; Plan.Desc ]
      in
      { p with
        facts = extra @ p.facts;
        keys = (if part = None then SSet.add res p.keys else p.keys) }
    | Plan.Rowid { input; res } ->
      let p = props input in
      { p with
        facts = [ (res, Plan.Asc) ] :: p.facts;
        keys = SSet.add res p.keys }
    | Plan.Attach { input; res; value } ->
      let p = props input in
      { p with consts = SMap.add res value p.consts }
    | Plan.Fun1 { input; _ } | Plan.Fun2 { input; _ } | Plan.Fun3 { input; _ }
      ->
      props input
    | Plan.Aggr { input; res; part; _ } -> (
      match part with
      | None ->
        { empty with one_row = true; keys = SSet.singleton res }
      | Some pc ->
        let p = props input in
        (* one output row per group, groups in first-seen order — which
           is sorted iff the input was sorted by the partition column *)
        let facts =
          List.filter_map
            (fun d -> if proves p [ (pc, d) ] then Some [ (pc, d) ] else None)
            [ Plan.Asc; Plan.Desc ]
        in
        { facts;
          keys = SSet.singleton pc;
          consts =
            (match SMap.find_opt pc p.consts with
             | Some v -> SMap.singleton pc v
             | None -> SMap.empty);
          one_row = p.one_row })
    | Plan.Step { input; _ } ->
      (* per-iteration results sorted by document order (the staircase /
         tag-index contract), iteration groups in first-seen iter order,
         duplicate-free within a group *)
      let p = props input in
      let facts =
        if satisfies input [ ("iter", Plan.Asc) ] then
          [ [ ("iter", Plan.Asc); ("item", Plan.Asc) ] ]
        else []
      in
      let one_group = p.one_row || SMap.mem "iter" p.consts in
      { facts;
        keys = (if one_group then SSet.singleton "item" else SSet.empty);
        consts =
          (match SMap.find_opt "iter" p.consts with
           | Some v -> SMap.singleton "iter" v
           | None -> SMap.empty);
        one_row = false }
    | Plan.Id_lookup _ -> empty
    | Plan.Doc { input } -> drop_cols [ "item" ] (props input)
    | Plan.Elem { qnames; _ } | Plan.Attr { qnames; _ } ->
      (* one constructed node per qnames row, in qnames row order *)
      drop_cols [ "item" ] (props qnames)
    | Plan.Textnode { input } | Plan.Commentnode { input } ->
      drop_cols [ "item" ] (props input)
    | Plan.Pinode { input } ->
      drop_cols [ "item"; "target"; "value" ] (props input)
    | Plan.Range { input; _ } ->
      (* each input row expands to pos = 1..k with ascending items *)
      let p = props input in
      let iter_sorted = satisfies input [ ("iter", Plan.Asc) ] in
      let facts =
        if iter_sorted && SSet.mem "iter" p.keys then
          [ [ ("iter", Plan.Asc); ("pos", Plan.Asc) ];
            [ ("iter", Plan.Asc); ("item", Plan.Asc) ] ]
        else if iter_sorted then [ [ ("iter", Plan.Asc) ] ]
        else []
      in
      { facts;
        keys = SSet.empty;
        consts =
          (match SMap.find_opt "iter" p.consts with
           | Some v -> SMap.singleton "iter" v
           | None -> SMap.empty);
        one_row = false }
    | Plan.Textify { input } ->
      (* emits rows explicitly sorted by (iter, pos) *)
      let p = props input in
      { facts = [ [ ("iter", Plan.Asc); ("pos", Plan.Asc) ] ];
        keys = SSet.empty;
        consts =
          (match SMap.find_opt "iter" p.consts with
           | Some v -> SMap.singleton "iter" v
           | None -> SMap.empty);
        one_row = p.one_row }
  in
  props

let satisfies (a : analyzer) n req = proves (a n) req

(* ------------------------------------------------------ piecewise runs *)

(* How many sorted runs (w.r.t. [req]) is this node's output a
   concatenation of? [Some 1] = globally sorted; [Some k] licenses a
   k-way merge instead of a full sort; [None] = nothing provable. Unions
   are the producers (each side contributes its own runs); row-preserving
   and subsequence operators pass the count through. *)
let sorted_runs (a : analyzer) node req =
  let cap = 64 in
  let rec runs (n : Plan.node) req =
    let req = strip_consts (a n).consts req in
    if proves (a n) req then Some 1
    else
      match n.Plan.op with
      | Plan.Union { left; right } -> (
        match (runs left req, runs right req) with
        | Some k1, Some k2 when k1 + k2 <= cap -> Some (k1 + k2)
        | _ -> None)
      | Plan.Select { input; _ } | Plan.Distinct { input } ->
        (* a subsequence of k sorted runs is at most k sorted runs *)
        runs input req
      | Plan.Semijoin { left; _ } | Plan.Antijoin { left; _ } ->
        runs left req
      | Plan.Project { input; cols } ->
        let rec back acc = function
          | [] -> Some (List.rev acc)
          | (c, d) :: rest -> (
            match List.assoc_opt c cols with
            | Some src -> back ((src, d) :: acc) rest
            | None -> None)
        in
        Option.bind (back [] req) (fun req' -> runs input req')
      | Plan.Rownum { input; res; _ }
      | Plan.Rowid { input; res }
      | Plan.Attach { input; res; _ }
      | Plan.Fun1 { input; res; _ }
      | Plan.Fun2 { input; res; _ }
      | Plan.Fun3 { input; res; _ } ->
        if List.mem_assoc res req then None else runs input req
      | _ -> None
  in
  runs node req

(* ----------------------------------------------------------- rendering *)

let dir_arrow = function Plan.Asc -> "\xE2\x86\x91" | Plan.Desc -> "\xE2\x86\x93"

let req_to_string req =
  String.concat "," (List.map (fun (c, d) -> c ^ dir_arrow d) req)

(* A compact per-node annotation for plan dumps: the facts (shortest
   first), plus the one-row marker. *)
let annotate (a : analyzer) n =
  let p = a n in
  if p.one_row then "ord:1row"
  else
    match
      List.sort (fun f g -> compare (List.length f, f) (List.length g, g)) p.facts
    with
    | [] -> ""
    | fs ->
      "ord:"
      ^ String.concat "; "
          (List.filteri (fun i _ -> i < 2) (List.map req_to_string fs))
