(** Property- and cardinality-aware logical rewriting over the plan DAG,
    applied between column dependency analysis and lowering.

    The pass runs a small set of named rules to fixpoint:

    {ul
    {- ["select-pushdown"] — selections migrate through
       Attach/Fun/Project/Distinct and into the join, cross, semijoin or
       union side that owns their column (row order preserved; can only
       suppress dynamic errors, the latitude CDA's pushdown already
       uses);}
    {- ["fun-pushdown"] — Attach and error-free Fun1 primitives
       distribute over Cross into the side owning their argument, so
       per-row computation runs once per input row instead of once per
       pair (order-exact);}
    {- ["project-fuse"] / ["project-split"] — adjacent projections
       compose; a projection over a Cross splits into per-side
       projections (order-exact);}
    {- ["join-synthesis"] — σ over an equality/comparison over a Cross
       becomes a Thetajoin (plus an Attach reconstructing the predicate
       column), replacing the quadratic cross-then-filter with the
       physical layer's hash/sort join paths (order-exact: a theta join
       enumerates surviving pairs in the cross's left-major order);}
    {- ["join-cross-elim"] — a join whose condition touches only one
       factor of a Cross operand commutes with the Cross, shrinking the
       quadratic iteration spaces loop-lifting builds for existential
       predicates (changes row order — gated on order insensitivity);}
    {- ["join-swap"] — order-indifferent join inputs are swapped so the
       hash build side is the estimated-smaller one ({!Plan.Card};
       order-changing, same gate; a strict 2x ratio prevents
       oscillation);}
    {- ["sort-elision"] — an unpartitioned [%] (Rownum) whose input
       provably arrives sorted by the requested keys ({!Order}) becomes
       a [#] (Rowid) stamp: the stable sort of a sorted input is the
       identity, so ranks equal row positions bit-for-bit. Unlike the
       order-changing rules this needs no insensitivity gate — it
       changes no row order, it only stops pretending to;}
    {- ["jg-select-const"] / ["jg-empty-prune"] / ["jg-union-empty"] /
       ["jg-semijoin-synthesis"] / ["jg-semijoin-dedup"] — the join-graph
       isolation rules ({!Joingraph}), which collapse the
       count-then-filter scaffolds of [where empty(for ...)] and
       [some ... satisfies] existentials into {!Plan.op.Semijoin} /
       {!Plan.op.Antijoin} operators. Gated by [join_isolation], not by
       the insensitivity analysis: they are row-order-exact (or prune
       provably empty subtrees under the same 2.3.4 error latitude as
       select pushdown — refusing to discard required-check operators,
       whose errors that latitude does not cover).}}

    Order-changing rules fire only on nodes whose row order provably
    cannot be observed: every path to the root passes a Distinct, a
    Semijoin/Antijoin right input, or an order-indifferent aggregate
    before any order-sensitive operator. This holds in ordered mode too;
    no [fn:unordered] context is required. All rules preserve the result
    multiset exactly. *)

(** What a run did, for plan dumps and tests. *)
type stats = {
  rounds : int;                  (** rebuild passes until fixpoint *)
  ops_before : int;
  ops_after : int;
  fires : (string * int) list;   (** rule name -> fire count, sorted *)
}

val empty_stats : stats

val total_fires : stats -> int

(** [optimize b root] rewrites to fixpoint (bounded by [max_rounds],
    default 50) and returns the new root with run statistics.
    [stats] seeds cardinality estimates for ["join-swap"]; estimates are
    advisory — they steer performance choices, never correctness.
    [order_props] (default [true]) enables the {!Order}-backed
    ["sort-elision"] rule; switching it off restores sort-preserving
    plans for differential testing. [join_isolation] (default [true])
    enables the {!Joingraph} rules; switching it off restores the
    count-then-filter scaffolds for differential testing. *)
val optimize :
  ?max_rounds:int ->
  ?order_props:bool ->
  ?join_isolation:bool ->
  ?stats:Plan.Card.stats ->
  Plan.builder ->
  Plan.node ->
  Plan.node * stats
