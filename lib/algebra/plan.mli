(** The restricted relational algebra dialect Pathfinder emits (paper,
    Table 1), as a DAG of hash-consed operator nodes.

    Conventions matching the paper:
    {ul
    {- {!constructor:op.Project} does not remove duplicates and doubles as
       renaming;}
    {- {!constructor:op.Rownum} is the "%" primitive
       (ROW_NUMBER() OVER (PARTITION BY part ORDER BY order)) — it
       requires a sort;}
    {- {!constructor:op.Rowid} is "#": arbitrary but unique dense numbers
       at negligible cost;}
    {- {!constructor:op.Attach} plays the role of "× (pos|1)": it attaches
       a constant column;}
    {- {!constructor:op.Step} is the XPath step operator "⊘ ax::nt":
       iter|item context nodes in, per-iteration duplicate-free iter|item
       result nodes out;}
    {- construction operators allocate new nodes in the document store,
       one fragment per evaluation.}}

    Nodes are hash-consed by a {!builder} so equal sub-plans are shared;
    operator counts (e.g. Figure 6's 19 operators) count shared nodes
    once. *)

type col = string

type dir = Asc | Desc

(** The dynamic-type vocabulary for [cast as] / [castable as] /
    [instance of]. *)
type atomic_ty =
  | Ty_integer
  | Ty_double     (** also standing in for xs:decimal / xs:float *)
  | Ty_string
  | Ty_boolean
  | Ty_untyped    (** xs:untypedAtomic: carried as a string *)
  | Ty_any_atomic

type item_ty =
  | Ty_item
  | Ty_node
  | Ty_element of Xmldb.Qname.t option
  | Ty_attribute of Xmldb.Qname.t option
  | Ty_text
  | Ty_comment
  | Ty_pi
  | Ty_document
  | Ty_atomic of atomic_ty

(** Row-wise unary primitives. *)
type prim1 =
  | P_not
  | P_neg
  | P_atomize        (** nodes → their string value; atomics pass through *)
  | P_string         (** fn:string *)
  | P_number         (** fn:number: → xs:double, NaN on failure *)
  | P_cast_int
  | P_cast_dbl
  | P_cast_str
  | P_cast_bool
  | P_string_length
  | P_name           (** node → qname string ("" when unnamed) *)
  | P_local_name
  | P_round
  | P_floor
  | P_ceiling
  | P_abs
  | P_is_node
  | P_normalize_space
  | P_check_zero_one    (** raises when the (count) argument exceeds 1 *)
  | P_check_exactly_one (** raises unless the (count) argument equals 1 *)
  | P_check_one_or_more (** raises when the (count) argument is 0 *)
  | P_upper             (** fn:upper-case (ASCII) *)
  | P_lower             (** fn:lower-case (ASCII) *)
  | P_serialize         (** nodes → their XML serialization; atomics → string *)
  | P_cast_as of atomic_ty   (** "cast as": atomizes, then casts; raises *)
  | P_castable of atomic_ty  (** "castable as" on one item: never raises *)
  | P_instance_item of item_ty (** per-item dynamic type test *)
  | P_check_treat       (** raises "treat as" failure unless the bool is true *)
  | P_node_check        (** identity on nodes; dynamic error on atomics (path-step results) *)
  | P_error             (** fn:error: raises with the argument as message *)

(** Row-wise binary primitives (value semantics of {!Value}). *)
type prim2 =
  | P_add | P_sub | P_mul | P_div | P_idiv | P_mod
  | P_eq | P_ne | P_lt | P_le | P_gt | P_ge
  | P_and | P_or
  | P_is | P_before | P_after        (** node identity / document order *)
  | P_concat | P_contains | P_starts_with | P_ends_with
  | P_substr_before | P_substr_after

(** Row-wise ternary primitives. *)
type prim3 =
  | P3_substring   (** fn:substring(str, start, len) — 1-based, rounded *)
  | P3_translate   (** fn:translate(str, map, trans) *)

(** Grouped aggregation functions. *)
type agg =
  | A_the            (** the group's single value; dynamic error on more *)
  | A_count
  | A_sum
  | A_max
  | A_min
  | A_avg
  | A_ebv            (** effective boolean value of the group's sequence *)
  | A_str_join of string
      (** fn:string-join with this separator, ordered by the [order] col *)

(** Node tests, by QName (resolved against the store's name pool only at
    evaluation time: construction may intern new names at runtime). *)
type ntest =
  | N_name of Xmldb.Qname.t
  | N_wild
  | N_kind of Xmldb.Node_kind.t
  | N_any
  | N_pi of string

type node = private {
  id : int;                (** unique within one builder *)
  op : op;
  mutable label : string;  (** profiling bucket, set by the compiler *)
}

and op =
  | Lit of { schema : col array; rows : Value.t array list }
  | Project of { input : node; cols : (col * col) list }
      (** [(new_name, src_name)] pairs; duplicates no rows *)
  | Select of { input : node; col : col }
      (** keep rows whose boolean column [col] is true *)
  | Join of { left : node; right : node; lcol : col; rcol : col }
  | Thetajoin of { left : node; right : node; lcol : col; cmp : prim2; rcol : col }
  | Semijoin of { left : node; right : node; on : (col * col) list }
  | Antijoin of { left : node; right : node; on : (col * col) list }
  | Cross of { left : node; right : node }
  | Union of { left : node; right : node }
      (** disjoint union (append); schemas must agree by name *)
  | Distinct of { input : node }  (** full-row duplicate elimination *)
  | Rownum of { input : node; res : col; order : (col * dir) list; part : col option }
  | Rowid of { input : node; res : col }
  | Attach of { input : node; res : col; value : Value.t }
  | Fun1 of { input : node; res : col; f : prim1; arg : col }
  | Fun2 of { input : node; res : col; f : prim2; arg1 : col; arg2 : col }
  | Fun3 of { input : node; res : col; f : prim3; arg1 : col; arg2 : col; arg3 : col }
  | Aggr of { input : node; res : col; agg : agg; arg : col option;
              part : col option; order : col option }
  | Step of { input : node; axis : Xmldb.Axis.t; test : ntest }
  | Doc of { input : node }       (** iter|item:uri → iter|item:node *)
  | Elem of { qnames : node; content : node }
      (** qnames: iter|item (QName/string), content: iter|pos|item *)
  | Attr of { qnames : node; values : node }
  | Textnode of { input : node }
  | Commentnode of { input : node }
  | Pinode of { input : node }    (** iter|target|value *)
  | Range of { input : node; lo : col; hi : col } (** → iter|pos|item *)
  | Textify of { input : node }
      (** fs:item-sequence-to-node-sequence over iter|pos|item: atomic runs
          (pos order, per iteration) become single space-joined text
          nodes; nodes pass through *)
  | Id_lookup of { values : node; context : node }
      (** fn:id: values iter|item (idref strings), context iter|item (one
          node per iteration); yields iter|item element nodes,
          duplicate-free per iteration *)

(** Children of an operator, in argument order. *)
val children : op -> node list

(** Rebuild an operator with its child nodes mapped. *)
val map_children : (node -> node) -> op -> op

(** {2 Hash-consing builder} *)

type builder

val builder : unit -> builder

(** Intern an operator: structurally equal ops (children compared by id)
    return the same node. *)
val mk : builder -> op -> node

val with_label : string -> node -> node

(** Set the profiling label (idempotent plan decoration). *)
val set_label : node -> string -> unit

(** {2 Constructors} (thin wrappers over {!mk}) *)

val lit : builder -> col array -> Value.t array list -> node

(** The literal unit loop: a single iteration (iter = 1). *)
val lit_loop : builder -> node

val project : builder -> node -> (col * col) list -> node
val select : builder -> node -> col -> node
val join : builder -> node -> node -> col -> col -> node
val thetajoin : builder -> node -> node -> col -> prim2 -> col -> node
val semijoin : builder -> node -> node -> (col * col) list -> node
val antijoin : builder -> node -> node -> (col * col) list -> node
val cross : builder -> node -> node -> node
val union : builder -> node -> node -> node
val distinct : builder -> node -> node
val rownum : builder -> node -> col -> (col * dir) list -> col option -> node
val rowid : builder -> node -> col -> node
val attach : builder -> node -> col -> Value.t -> node
val fun1 : builder -> node -> col -> prim1 -> col -> node
val fun2 : builder -> node -> col -> prim2 -> col -> col -> node
val fun3 : builder -> node -> col -> prim3 -> col -> col -> col -> node
val aggr : builder -> node -> col -> agg -> col option -> col option -> col option -> node
val step : builder -> node -> Xmldb.Axis.t -> ntest -> node
val doc : builder -> node -> node
val elem : builder -> node -> node -> node
val attr : builder -> node -> node -> node
val textnode : builder -> node -> node
val commentnode : builder -> node -> node
val pinode : builder -> node -> node
val range : builder -> node -> col -> col -> node
val textify : builder -> node -> node
val id_lookup : builder -> node -> node -> node

(** {2 Traversal and statistics} *)

(** All distinct reachable nodes, children before parents. *)
val topo_order : node -> node list

(** Number of distinct operators in the DAG (shared nodes count once, as
    in the paper's figures). *)
val count_ops : node -> int

(** Size of the fully expanded operator tree — what a tree-walking
    executor would evaluate. Saturates at [max_int]. *)
val count_tree_nodes : node -> int

(** [count_tree_nodes] / [count_ops]: 1.0 means no sharing. *)
val sharing_factor : node -> float

(** Short symbol for an operator kind: "%", "#", "⊘", "π", ... *)
val op_symbol : op -> string

val count_by_kind : node -> (string * int) list

(** [count_kind p "%"] — e.g. the number of order-establishing rownums. *)
val count_kind : node -> string -> int

(** {2 Cardinality estimation}

    Coarse bottom-up row-count estimates seeded from document-store
    statistics (tag occurrence counts, store size). They steer only
    performance decisions — hash-join build sides, the enumeration order
    of order-indifferent join inputs — never correctness, so wrong or
    store-independent (default) stats are always sound. *)
module Card : sig
  type stats = {
    total_nodes : int;                  (** rows across all fragments *)
    name_count : Xmldb.Qname.t -> int;  (** occurrences of a tag name *)
  }

  (** Store-free guesses (documents are "medium", tags are "common"). *)
  val default_stats : stats

  (** An on-demand estimator: memoized by node id, so one estimator can
      serve an optimization run including nodes created after it was
      made. *)
  val estimator : ?stats:stats -> unit -> node -> int

  (** [estimate ?stats root] memoizes an estimate for every node in the
      DAG and returns the lookup (by node id; unknown ids estimate 1). *)
  val estimate : ?stats:stats -> node -> int -> int
end
