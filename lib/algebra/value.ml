(* Item values stored in table cells. Atomic values follow a pragmatic XDM
   subset: integers, doubles (also standing in for xs:decimal), strings
   (also standing in for xs:untypedAtomic — every value atomized from a
   node is a string, as in an untyped document), booleans and QNames.

   The comparison/arithmetic semantics implement XQuery general-comparison
   coercion: an untyped (string) operand meeting a numeric operand is cast
   to xs:double; value comparisons between incompatible types raise a
   dynamic error. *)

open Basis

type t =
  | Int of int
  | Dbl of float
  | Str of string
  | Bool of bool
  | Qname_v of Xmldb.Qname.t
  | Node of Xmldb.Node_id.t

let type_name = function
  | Int _ -> "xs:integer"
  | Dbl _ -> "xs:double"
  | Str _ -> "xs:string"
  | Bool _ -> "xs:boolean"
  | Qname_v _ -> "xs:QName"
  | Node _ -> "node()"

let is_node = function Node _ -> true | _ -> false
let is_numeric = function Int _ | Dbl _ -> true | _ -> false

(* -- casts ---------------------------------------------------------------- *)

let parse_number s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some i -> Some (Int i)
  | None ->
    (match float_of_string_opt s with
     | Some f -> Some (Dbl f)
     | None ->
       (match s with
        | "INF" -> Some (Dbl infinity)
        | "-INF" -> Some (Dbl neg_infinity)
        | "NaN" -> Some (Dbl nan)
        | _ -> None))

let float_value = function
  | Int i -> float_of_int i
  | Dbl f -> f
  | Str s ->
    (match parse_number s with
     | Some (Int i) -> float_of_int i
     | Some (Dbl f) -> f
     | _ -> Err.dynamic "cannot cast %S to xs:double" s
     | exception _ -> Err.dynamic "cannot cast %S to xs:double" s)
  | Bool b -> if b then 1.0 else 0.0
  | v -> Err.dynamic "cannot cast %s to xs:double" (type_name v)

let int_value = function
  | Int i -> i
  | Dbl f ->
    if Float.is_integer f then int_of_float f
    else Err.dynamic "cannot cast %g to xs:integer" f
  | Str s ->
    (match int_of_string_opt (String.trim s) with
     | Some i -> i
     | None -> Err.dynamic "cannot cast %S to xs:integer" s)
  | Bool b -> if b then 1 else 0
  | v -> Err.dynamic "cannot cast %s to xs:integer" (type_name v)

(* The xs:boolean *cast* (used by casts and boolean-vs-untyped
   comparisons): only the boolean lexical forms are accepted. *)
let bool_value = function
  | Bool b -> b
  | Str "true" | Str "1" -> true
  | Str "false" | Str "0" -> false
  | Int i -> i <> 0
  | Dbl f -> not (f = 0.0 || Float.is_nan f)
  | v -> Err.dynamic "cannot cast %s to xs:boolean" (type_name v)

(* The *effective boolean value* of a singleton atomic (different from the
   cast: any non-empty string is true). Nodes are handled by the caller
   (a node's EBV is true). *)
let ebv_atomic = function
  | Bool b -> b
  | Str s -> s <> ""
  | Int i -> i <> 0
  | Dbl f -> not (f = 0.0 || Float.is_nan f)
  | v -> Err.dynamic "no effective boolean value for %s" (type_name v)

(* Serialization of atomic values (XDM canonical-ish forms). *)
let to_string = function
  | Int i -> string_of_int i
  | Dbl f ->
    if Float.is_nan f then "NaN"
    else if f = infinity then "INF"
    else if f = neg_infinity then "-INF"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else begin
      let s = Printf.sprintf "%.12g" f in
      s
    end
  | Str s -> s
  | Bool b -> if b then "true" else "false"
  | Qname_v q -> Xmldb.Qname.to_string q
  | Node _ as v -> Err.dynamic "cannot stringify %s without a store" (type_name v)

(* -- total order (used for sorting, grouping, dedup) ---------------------- *)

let type_rank = function
  | Bool _ -> 0 | Int _ -> 1 | Dbl _ -> 1 | Str _ -> 2 | Qname_v _ -> 3
  | Node _ -> 4

(* A deterministic total order across all values: numerics compare
   numerically with each other, otherwise by type rank then value. Not an
   XQuery-visible order; used internally by sort/group operators. *)
let compare_total a b =
  let ra = type_rank a and rb = type_rank b in
  if ra <> rb then Int.compare ra rb
  else
    match (a, b) with
    | Bool x, Bool y -> Bool.compare x y
    | (Int _ | Dbl _), (Int _ | Dbl _) ->
      (match (a, b) with
       | Int x, Int y -> Int.compare x y
       | _ -> Float.compare (float_value a) (float_value b))
    | Str x, Str y -> String.compare x y
    | Qname_v x, Qname_v y -> Xmldb.Qname.compare x y
    | Node x, Node y -> Xmldb.Node_id.compare x y
    | _ -> Err.internal "compare_total: unreachable"

let equal a b = compare_total a b = 0

let hash = function
  | Int i -> Hashtbl.hash (1, i)
  | Dbl f ->
    if Float.is_integer f && Float.abs f < 1e18 then Hashtbl.hash (1, int_of_float f)
    else Hashtbl.hash (1, f)
  | Str s -> Hashtbl.hash (2, s)
  | Bool b -> Hashtbl.hash (0, b)
  | Qname_v q -> Hashtbl.hash (3, Xmldb.Qname.to_string q)
  | Node n -> Hashtbl.hash (4, Xmldb.Node_id.frag n, Xmldb.Node_id.pre n)

(* -- XQuery comparison with general-comparison coercion ------------------- *)

type cmp_result =
  | C_lt
  | C_eq
  | C_gt
  | C_unordered  (* a NaN is involved: every comparison is false, ne is true *)

let of_int_cmp c = if c < 0 then C_lt else if c = 0 then C_eq else C_gt

let float_cmp x y =
  if Float.is_nan x || Float.is_nan y then C_unordered
  else of_int_cmp (Float.compare x y)

let compare_xq a b =
  match (a, b) with
  | Int x, Int y -> of_int_cmp (Int.compare x y)
  | (Int _ | Dbl _), (Int _ | Dbl _)
  | Str _, (Int _ | Dbl _) | (Int _ | Dbl _), Str _ ->
    (* untyped meets numeric: cast the untyped side to xs:double *)
    float_cmp (float_value a) (float_value b)
  | Str x, Str y -> of_int_cmp (String.compare x y)
  | Bool x, Bool y -> of_int_cmp (Bool.compare x y)
  | Bool x, Str s -> of_int_cmp (Bool.compare x (bool_value (Str s)))
  | Str s, Bool y -> of_int_cmp (Bool.compare (bool_value (Str s)) y)
  | Qname_v x, Qname_v y ->
    if Xmldb.Qname.equal x y then C_eq
    else of_int_cmp (Xmldb.Qname.compare x y)
  | _ ->
    Err.dynamic "cannot compare %s with %s" (type_name a) (type_name b)

let cmp_eq a b = compare_xq a b = C_eq
let cmp_ne a b =
  (match compare_xq a b with C_eq -> false | C_lt | C_gt | C_unordered -> true)
let cmp_lt a b = compare_xq a b = C_lt
let cmp_le a b =
  (match compare_xq a b with C_lt | C_eq -> true | C_gt | C_unordered -> false)
let cmp_gt a b = compare_xq a b = C_gt
let cmp_ge a b =
  (match compare_xq a b with C_gt | C_eq -> true | C_lt | C_unordered -> false)

(* -- arithmetic ------------------------------------------------------------ *)

let arith_operands a b =
  (* untyped operands are cast to xs:double per the XQuery arithmetic rules *)
  let norm = function
    | Str s ->
      (match parse_number s with
       | Some v -> (match v with Int i -> Dbl (float_of_int i) | v -> v)
       | None -> Err.dynamic "cannot cast %S to a number" s)
    | v -> v
  in
  (norm a, norm b)

let add a b =
  match arith_operands a b with
  | Int x, Int y -> Int (x + y)
  | x, y -> Dbl (float_value x +. float_value y)

let sub a b =
  match arith_operands a b with
  | Int x, Int y -> Int (x - y)
  | x, y -> Dbl (float_value x -. float_value y)

let mul a b =
  match arith_operands a b with
  | Int x, Int y -> Int (x * y)
  | x, y -> Dbl (float_value x *. float_value y)

let div a b =
  match arith_operands a b with
  | Int _, Int 0 -> Err.dynamic "division by zero"
  | Int x, Int y ->
    if x mod y = 0 then Int (x / y)
    else Dbl (float_of_int x /. float_of_int y)
  | x, y -> Dbl (float_value x /. float_value y)

let idiv a b =
  match arith_operands a b with
  | _, Int 0 -> Err.dynamic "integer division by zero"
  | Int x, Int y ->
    let q = x / y in
    Int q
  | x, y ->
    let fy = float_value y in
    if fy = 0.0 then Err.dynamic "integer division by zero"
    else Int (int_of_float (Float.trunc (float_value x /. fy)))

let modulo a b =
  match arith_operands a b with
  | _, Int 0 -> Err.dynamic "modulus by zero"
  | Int x, Int y -> Int (x - (x / y * y))
  | x, y -> Dbl (Float.rem (float_value x) (float_value y))

let neg = function
  | Int i -> Int (-i)
  | Dbl f -> Dbl (-.f)
  | Str _ as v -> (match arith_operands v (Int 0) with x, _ -> Dbl (-.(float_value x)))
  | v -> Err.dynamic "cannot negate %s" (type_name v)

(* fn:min/fn:max comparison discipline: untypedAtomic operands are cast
   to xs:double per the spec. Since this model carries both xs:string and
   untypedAtomic as [Str], we use: if every item in the group is numeric
   or parses as a number, compare numerically; otherwise compare as
   strings (see DESIGN.md). [minmax_view] returns the comparison proxy. *)
let numeric_view = function
  | Int _ | Dbl _ as v -> Some v
  | Str s -> parse_number s
  | Bool _ | Qname_v _ | Node _ -> None

let pp fmt v =
  match v with
  | Node n -> Format.fprintf fmt "node(%s)" (Xmldb.Node_id.to_string n)
  | Qname_v q -> Format.fprintf fmt "qname(%s)" (Xmldb.Qname.to_string q)
  | v -> Format.pp_print_string fmt (to_string v)

(* Rough per-cell memory footprint (boxed OCaml representation), the
   currency of Budget byte accounting. Deliberately an estimate: close
   enough to catch a runaway materialization, cheap enough to compute. *)
let estimated_bytes = function
  | Int _ | Bool _ -> 16
  | Dbl _ -> 24
  | Str s -> 32 + String.length s
  | Qname_v _ -> 48
  | Node _ -> 24
