(* The physical executor: evaluates a lowered physical-operator DAG over
   typed column batches instead of boxed value tables.

   Three mechanisms carry the speedup:

     - typed columns ([Column]): batches hold unboxed int/float/bool/
       string-id/node-id arrays, converted from the boxed representation
       on demand (per column, cached) and kept typed across operators —
       in particular across the [Column.gather]s that build join outputs;

     - selection vectors: Select, Distinct, Semijoin and Antijoin deliver
       a selection over their input's rows instead of materializing a new
       table; materialization is forced only at pipeline breakers (joins,
       Rownum's sort, aggregation, Union, boxed-fallback kernels, and the
       final serialization);

     - kernel fusion: the lowering pass ([Lower]) folds single-parent
       Attach/Fun/Select chains into one [K_pipe] kernel that runs the
       whole chain in a single pass over the batch.

   Everything without a typed implementation falls back to the boxed
   kernels ([Kernels.eval_op]) through cached table conversions, so the
   physical layer never has to be complete to be correct. Matching
   semantics of joins are *shared* with the boxed executor
   ([Kernels.join_indices] / [theta_indices] / [semi_keep]): the physical
   layer only changes how inputs are fed and outputs are built, so both
   executors agree bit-for-bit, including row order (Rownum's stability
   tie-break makes row order observable) and NaN/negative-zero behavior
   (float comparisons replicate the boxed [Value] semantics: unordered on
   NaN, total [Float.compare] otherwise).

   Resource governance: one [Budget.check] per kernel invocation (a fused
   chain is one kernel, so physical runs make at most as many checks as
   the logical executor for the same plan). Byte accounting deliberately
   charges the *boxed-equivalent* footprint, so a byte budget governs the
   same logical materialization on either executor rather than rewarding
   the cheaper representation.

   Morsel-driven parallelism ([jobs > 1]): kernels whose output order the
   optimizer proved immaterial — exactly the rowid/[#] shapes and
   order-indifferent aggregates of the paper, marked [ppar] by the
   lowering — split their row loops into contiguous row-range morsels
   executed on a fixed domain pool ([Basis.Pool]). Determinism is by
   construction, not by luck:

     - each morsel covers a contiguous range of the visible-row index
       space and writes either disjoint base rows of a shared output
       column or a private buffer; per-morsel buffers are concatenated in
       morsel order, so output row order is bit-identical to serial;
     - partial aggregates merge per-morsel tables in morsel order, which
       reproduces the serial first-seen group order (morsels are
       contiguous and in order);
     - a failing morsel does not abort its siblings; after all morsels
       finish, the exception of the lowest-indexed failing morsel is
       re-raised — rows within a morsel are scanned in ascending order,
       so that is the error the serial scan would have hit first;
     - all budget/profile accounting stays on the coordinating domain
       (one [Budget.check] per kernel, as serial), so op counts, fault
       injection, and profile counters are bit-identical too. Worker
       domains only *poll* [Budget.interrupted] between morsels and bail
       out early; the coordinator then re-raises the same cancellation/
       deadline error serial execution reports.

   Worker domains never touch [String_pool] (not thread-safe): retyping
   and typed-path dispatch happen on the coordinator before a row loop
   fans out; workers only read frozen columns and the document store
   (whose reads are pure). [%]-bearing kernels (Rownum), Distinct,
   build-flipped joins/semijoins and boxed fallbacks stay serial. *)

open Basis

(* ------------------------------------------------------ the physical plan *)

(* One member of a fused Attach/Fun/Select chain, applied input-first. *)
type chain_op =
  | F_select of string
  | F_attach of string * Value.t
  | F_fun1 of string * Plan.prim1 * string
  | F_fun2 of string * Plan.prim2 * string * string
  | F_fun3 of string * Plan.prim3 * string * string * string

type pop =
  | K_pipe of chain_op list      (* >= 1 chain ops over one input *)
  | K_project of (string * string) list
  | K_distinct
  | K_union
  | K_rowid of string
  | K_rownum of {
      res : string;
      order : (string * Plan.dir) list;
      part : string option;
      merge_hint : int option;
          (* ordering analysis proved the input piecewise sorted in at
             most this many runs: replace the O(n log n) sort with run
             detection + a k-way merge. None = no guarantee, full sort. *)
    }
  | K_join of { lcol : string; rcol : string; build_left : bool }
      (* [build_left]: hash the left column instead of the right (chosen
         by the lowering when estimates say the left side is smaller);
         output pair order is identical either way *)
  | K_thetajoin of { lcol : string; cmp : Plan.prim2; rcol : string }
  | K_semijoin of { anti : bool; on : (string * string) list; build_left : bool }
      (* [build_left]: hash the (smaller) left side's keys and mark them
         while scanning the right, instead of hashing the right and
         probing per left row. The marking scan is the output build
         itself, so a flipped semijoin stays serial; the default probe
         fans out over morsels like [K_join]. Either way the kept rows
         are an ascending subsequence of the left input. *)
  | K_aggr of {
      res : string;
      agg : Plan.agg;
      arg : string option;
      part : string option;
      order : string option;
    }
  | K_boxed of Plan.op           (* no typed implementation: boxed kernel *)

type pnode = {
  pid : int;           (* hash-cons id of the logical head node *)
  pop : pop;
  pinputs : pnode list;
  pfused : int;        (* logical operators this kernel covers *)
  plabel : string;     (* profile bucket (the logical head's label) *)
  ptypes : (string * Column.ty) list;
      (* statically inferred column types of the output (plan-dump aid) *)
  ppar : bool;
      (* order-indifferent kernel, licensed to fan out over morsels:
         rowid/[#] pipeline shapes, hash/theta join and semijoin probes,
         and count/sum/min/max aggregates — never [%]-bearing (Rownum)
         or boxed kernels. Set by the lowering ([Lower]). *)
}

let pop_name = function
  | K_pipe ops -> Printf.sprintf "pipe[%d]" (List.length ops)
  | K_project _ -> "project"
  | K_distinct -> "distinct"
  | K_union -> "union"
  | K_rowid _ -> "rowid"
  | K_rownum _ -> "rownum"
  | K_join { build_left = true; _ } -> "join(build:left)"
  | K_join _ -> "join"
  | K_thetajoin _ -> "thetajoin"
  | K_semijoin { anti = false; build_left = true; _ } -> "semijoin(build:left)"
  | K_semijoin { anti = false; _ } -> "semijoin"
  | K_semijoin { anti = true; build_left = true; _ } -> "antijoin(build:left)"
  | K_semijoin { anti = true; _ } -> "antijoin"
  | K_aggr _ -> "aggr"
  | K_boxed op -> "boxed:" ^ Plan.op_symbol op

(* ---------------------------------------------------------------- batches *)

(* A batch is a set of equal-length base columns plus an optional
   selection vector: the visible rows are [sel] (in that order) when
   present, all of [0 .. base-1] otherwise.

   A column entering from the boxed world stays [Mixed] in [cols] — the
   boxed view must remain zero-copy, because boxed kernels (steps,
   construction) sit between most typed ones and a retype that *replaced*
   the boxed array would force a full re-boxing pass at the next boxed
   boundary. Typed kernels instead consult [typed], a lazily filled
   per-column cache of the retyped view ([Some Mixed] records a scan that
   found the column genuinely heterogeneous, so it is never rescanned).
   [table] caches the whole-batch boxed view. *)
type batch = {
  schema : string array;
  cols : Column.t array;
  typed : Column.t option array; (* entries mutated by retype caching *)
  sel : int array option;
  nrows : int;                   (* visible rows ( = |sel| when present ) *)
  base : int;                    (* rows in the base columns *)
  mutable table : Table.t option;
}

(* Morsel-parallel execution state: the shared domain pool plus this
   query's fan-out width and minimum morsel size. *)
type par = {
  ppool : Pool.t;
  pjobs : int;
  pmorsel : int;  (* row loops shorter than this never fan out *)
}

type ctx = {
  env : Kernels.env;
  pool : String_pool.t;
  cache : (int, batch) Hashtbl.t;
  mode : Eval.mode;
  profile : Profile.t option;
  guard : Budget.t option;
  par : par option;       (* None = serial execution *)
  mutable kernels : int;  (* kernel invocations (cache hits excluded) *)
}

(* Minimum rows per morsel before a loop fans out. Overridable via
   XRQ_MORSEL so tests and the fuzzer can force tiny tables through the
   parallel paths; read once (first query), like an ordinary config. *)
let default_morsel =
  lazy
    (match Sys.getenv_opt "XRQ_MORSEL" with
     | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1024)
     | None -> 1024)

let create ?profile ?guard ?(step_impl = Eval.Scan) ?(mode = Eval.Dag)
    ?(jobs = 1) ?morsel ?(code_eval = true) store =
  let tag_index =
    match step_impl with
    | Eval.Scan -> None
    | Eval.Tag_index -> Some (Xmldb.Tag_index.create store)
  in
  let par =
    if jobs <= 1 then None
    else
      let pmorsel =
        match morsel with
        | Some m -> max 1 m
        | None -> Lazy.force default_morsel
      in
      Some { ppool = Pool.get (); pjobs = jobs; pmorsel }
  in
  { env = Kernels.env ?tag_index ~code_eval store;
    pool = String_pool.create ();
    cache = Hashtbl.create 64;
    mode;
    profile;
    guard;
    par;
    kernels = 0 }

let kernels ctx = ctx.kernels

let bump ctx f = match ctx.profile with Some p -> f p | None -> ()

(* ------------------------------------------------------ morsel scheduling *)

(* Contiguous [lo, hi) ranges covering [0, n): adaptive sizing lives in
   {!Basis.Pool.adaptive_spans}. Depends only on (n, morsel, jobs) —
   never on scheduling — so any run of the same plan splits
   identically. *)
let spans n ~morsel ~jobs = Pool.adaptive_spans n ~morsel ~jobs

let par_stop ctx =
  match ctx.guard with
  | Some g -> fun () -> Budget.interrupted g
  | None -> fun () -> false

(* After a parallel loop joins: if workers bailed out because the guard
   tripped, surface the same cancellation/deadline error serial execution
   reports (and never use the partially filled output). *)
let par_check ctx =
  match ctx.guard with Some g -> Budget.check_interrupted g | None -> ()

(* Run [fill lo hi] over index space [0, n): inline, or morsel-parallel
   when this kernel is order-indifferent ([par]) and [n] is big enough.
   [fill] must touch only state owned by its own range. *)
let run_spans ctx ~par n fill =
  match ctx.par with
  | Some pr when par && n > pr.pmorsel -> (
    let sp = spans n ~morsel:pr.pmorsel ~jobs:pr.pjobs in
    match Array.length sp with
    | 0 | 1 -> fill 0 n
    | k ->
      Pool.run pr.ppool ~jobs:pr.pjobs ~stop:(par_stop ctx) k (fun i ->
          let lo, hi = sp.(i) in
          fill lo hi);
      par_check ctx)
  | _ -> fill 0 n

(* Same, but each morsel produces a value; results come back in morsel
   order (serial = one morsel). *)
let map_spans ctx ~par n (produce : int -> int -> 'a) : 'a array =
  match ctx.par with
  | Some pr when par && n > pr.pmorsel -> (
    let sp = spans n ~morsel:pr.pmorsel ~jobs:pr.pjobs in
    match Array.length sp with
    | 0 | 1 -> [| produce 0 n |]
    | k ->
      let out = Array.make k None in
      Pool.run pr.ppool ~jobs:pr.pjobs ~stop:(par_stop ctx) k (fun i ->
          let lo, hi = sp.(i) in
          out.(i) <- Some (produce lo hi));
      par_check ctx;
      Array.map
        (function
          | Some v -> v
          | None ->
            (* unreachable: a skipped morsel implies [par_check] raised *)
            Err.internal "Physical: missing morsel result")
        out)
  | _ -> [| produce 0 n |]

(* Stitch per-morsel (left, right) index pairs back together in morsel
   order — the serial probe order. *)
let concat_pairs (parts : (int array * int array) array) =
  match parts with
  | [| (li, ri) |] -> (li, ri)
  | _ ->
    let total =
      Array.fold_left (fun acc (l, _) -> acc + Array.length l) 0 parts
    in
    let li = Array.make total 0 and ri = Array.make total 0 in
    let off = ref 0 in
    Array.iter
      (fun (l, r) ->
         let k = Array.length l in
         Array.blit l 0 li !off k;
         Array.blit r 0 ri !off k;
         off := !off + k)
      parts;
    (li, ri)

let of_table t =
  let n = Table.nrows t in
  let cols = Array.map (fun c -> Column.Mixed c) (Table.columns t) in
  { schema = Table.schema t;
    cols;
    typed = Array.make (Array.length cols) None;
    sel = None;
    nrows = n;
    base = n;
    table = Some t }

let iter_sel b f =
  match b.sel with
  | None -> for r = 0 to b.nrows - 1 do f r done
  | Some s -> Array.iter f s

let col_pos b name =
  let n = Array.length b.schema in
  let rec go i =
    if i >= n then
      Err.internal "Physical: no column %S in schema [%s]" name
        (String.concat "," (Array.to_list b.schema))
    else if String.equal b.schema.(i) name then i
    else go (i + 1)
  in
  go 0

(* The column, after a cached attempt to tighten Mixed to a typed
   representation. Dynamic detection is authoritative; static hints from
   the lowering only ever decorate the plan dump. *)
let retyped ctx b i =
  match b.cols.(i) with
  | Column.Mixed vs when Array.length vs > 0 -> (
    match b.typed.(i) with
    | Some c -> c
    | None ->
      let c = Column.of_values ~pool:ctx.pool vs in
      (match c with
       | Column.Mixed _ -> ()
       | _ -> bump ctx Profile.count_retype);
      b.typed.(i) <- Some c;
      c)
  | c -> c

let rcol ctx b name = retyped ctx b (col_pos b name)

(* Force the selection into the base: one gather per column, in whatever
   representation the column has (typed views are gathered alongside, so
   the retype cache survives compaction). *)
let compact b =
  match b.sel with
  | None -> b
  | Some s ->
    { schema = b.schema;
      cols = Array.map (fun c -> Column.gather c s) b.cols;
      typed =
        Array.map
          (function Some c -> Some (Column.gather c s) | None -> None)
          b.typed;
      sel = None;
      nrows = b.nrows;
      base = b.nrows;
      table = b.table }

(* The boxed view of a batch — the bridge into boxed-fallback kernels and
   the final serialization. Cached; counted as a forced materialization
   the first time. *)
let to_table ctx b =
  match b.table with
  | Some t -> t
  | None ->
    bump ctx Profile.count_mat_forced;
    let cb = compact b in
    Array.iter
      (function
        | Column.Codes _ -> bump ctx Profile.count_late_mat
        | _ -> ())
      cb.cols;
    let t =
      Table.create b.schema (Array.map Column.to_values cb.cols) b.nrows
    in
    b.table <- Some t;
    t

(* A single column's visible rows, boxed (for key columns of matching
   kernels that have no typed path). Reads the base representation — for
   Mixed columns this is the original boxed array, no retype scan, no
   re-boxing. *)
let boxed_vis ctx b name =
  let c = b.cols.(col_pos b name) in
  (* boxing a code-carrying column decodes every visible row: count it as
     a late materialization (once per column use, coordinator-side) *)
  (match c with
   | Column.Codes _ -> bump ctx Profile.count_late_mat
   | _ -> ());
  match (c, b.sel) with
  | Column.Mixed vs, None -> vs
  | Column.Mixed vs, Some s -> Array.map (fun r -> vs.(r)) s
  | c, None -> Column.to_values c
  | c, Some s -> Array.map (fun r -> Column.get c r) s

(* Boxed-equivalent byte estimate over the visible rows (see the module
   comment for why this is not the typed footprint). *)
let budget_bytes b =
  let total = ref 64 in
  Array.iter
    (fun c ->
       total := !total + 16;
       let fixed k = total := !total + (k * b.nrows) in
       match c with
       | Column.Ints _ | Column.Seq _ | Column.Bools _ -> fixed 16
       | Column.Dbls _ -> fixed 24
       | Column.Nodes _ -> fixed 24
       | Column.Const { v; _ } -> fixed (Value.estimated_bytes v)
       | Column.Strs { pool; ids } ->
         iter_sel b (fun r ->
             total :=
               !total + 32 + String.length (String_pool.get pool ids.(r)))
       | Column.Codes { frag; pool; codes } ->
         (* priced as the strings it decodes to, like [Strs]: a byte
            budget must govern the same logical materialization on
            either representation *)
         iter_sel b (fun r ->
             let id = Xmldb.Doc_store.text_id_of_code frag codes.(r) in
             total :=
               !total + 32
               + (if id < 0 then 0 else String.length (String_pool.get pool id)))
       | Column.Mixed vs ->
         iter_sel b (fun r -> total := !total + Value.estimated_bytes vs.(r)))
    b.cols;
  !total

(* ------------------------------------------------------- typed accessors *)

(* Read the column as machine ints, when every row is an Int. *)
let int_reader c =
  match c with
  | Column.Ints a -> Some (fun i -> a.(i))
  | Column.Seq { start; _ } -> Some (fun i -> start + i)
  | Column.Const { v = Value.Int x; _ } -> Some (fun _ -> x)
  | _ -> None

(* Read the column as floats, when every row is numeric (Int or Dbl) —
   the promotion the boxed comparison/arithmetic rules apply. *)
let num_reader c =
  match c with
  | Column.Ints a -> Some (fun i -> float_of_int a.(i))
  | Column.Dbls a -> Some (fun i -> a.(i))
  | Column.Seq { start; _ } -> Some (fun i -> float_of_int (start + i))
  | Column.Const { v = Value.Int x; _ } ->
    let f = float_of_int x in
    Some (fun _ -> f)
  | Column.Const { v = Value.Dbl x; _ } -> Some (fun _ -> x)
  | _ -> None

let bool_reader c =
  match c with
  | Column.Bools b -> Some (fun i -> Bytes.unsafe_get b i <> '\000')
  | Column.Const { v = Value.Bool x; _ } -> Some (fun _ -> x)
  | _ -> None

(* String-pool ids, when every row is a string interned in [pool] —
   id equality is string equality within one pool. *)
let str_reader pool c =
  match c with
  | Column.Strs { pool = p; ids } when p == pool -> Some (fun i -> ids.(i))
  | _ -> None

(* Late materialization: expand a code-carrying column to query-pool ids
   (one decode + intern per base row, coordinator-side — String_pool is
   not thread-safe). Keys of hash joins go through this so string joins
   keep the pool-id fast path; other columns pass through untouched. *)
let materialize_codes ctx c =
  match c with
  | Column.Codes { frag; pool; codes } ->
    bump ctx Profile.count_late_mat;
    let ids =
      Array.map
        (fun code ->
           let id = Xmldb.Doc_store.text_id_of_code frag code in
           String_pool.intern ctx.pool
             (if id < 0 then "" else String_pool.get pool id))
        codes
    in
    Column.Strs { pool = ctx.pool; ids }
  | c -> c

(* -------------------------------------------------------- fused pipeline *)

(* State threaded through a fused chain: growing named base columns plus
   the current selection. Compute ops fill only the selected rows of
   their output; dead entries hold dummies and are never read, because a
   chain's selection only ever shrinks. *)
type pipe = {
  mutable pcols : (string * Column.t) array;
  mutable ptyped : Column.t option array;  (* typed views of Mixed entries *)
  mutable psel : int array option;
  mutable pn : int;  (* visible rows *)
  pbase : int;
}

(* First occurrence wins, matching [Table.col] after duplicate appends. *)
let pipe_col p name =
  let n = Array.length p.pcols in
  let rec go i =
    if i >= n then
      Err.internal "Physical: no column %S in fused pipeline" name
    else
      let cn, c = p.pcols.(i) in
      if String.equal cn name then (i, c) else go (i + 1)
  in
  go 0

let pipe_retyped ctx p name =
  let i, c = pipe_col p name in
  match c with
  | Column.Mixed vs when Array.length vs > 0 -> (
    match p.ptyped.(i) with
    | Some c' -> c'
    | None ->
      let c' = Column.of_values ~pool:ctx.pool vs in
      (match c' with
       | Column.Mixed _ -> ()
       | _ -> bump ctx Profile.count_retype);
      p.ptyped.(i) <- Some c';
      c')
  | c -> c

(* Visible rows [lo, hi) of the current selection, in order. *)
let pipe_iter_span p lo hi f =
  match p.psel with
  | None -> for r = lo to hi - 1 do f r done
  | Some s -> for k = lo to hi - 1 do f s.(k) done

(* The row loop of one compute op: [run f] applies [f] to every visible
   row — inline, or sliced into morsels on the pool when the enclosing
   kernel is order-indifferent. Distinct morsels see disjoint visible
   rows (the selection is strictly increasing), so per-row writes to
   distinct base slots of a shared output never overlap. Reads the
   pipe's *current* selection at call time, after any earlier selects in
   the chain. *)
let row_runner ctx ~par p =
  fun f -> run_spans ctx ~par p.pn (fun lo hi -> pipe_iter_span p lo hi f)

(* Generic per-row fallback: boxed application over the visible rows.
   [Kernels.apply*] only read the store (node string-values, names):
   pure, so safe on worker domains. *)
let generic1 env run p f c =
  let out = Array.make p.pbase (Value.Int 0) in
  run (fun r ->
      out.(r) <- Kernels.apply1 env.Kernels.store f (Column.get c r));
  Column.Mixed out

let generic2 env run p f c1 c2 =
  let out = Array.make p.pbase (Value.Int 0) in
  run (fun r ->
      out.(r) <-
        Kernels.apply2 env.Kernels.store f (Column.get c1 r) (Column.get c2 r));
  Column.Mixed out

let generic3 env run p f c1 c2 c3 =
  let out = Array.make p.pbase (Value.Int 0) in
  run (fun r ->
      out.(r) <-
        Kernels.apply3 env.Kernels.store f (Column.get c1 r) (Column.get c2 r)
          (Column.get c3 r));
  Column.Mixed out

(* Compressed execution of atomize/string over a node column: when every
   visible row lives in one fragment and is a value-carrying kind
   (attribute / text / comment / PI — whose XDM string value IS the row's
   own value), the result column stays as the fragment's dictionary codes
   ([Column.Codes]) and only materializes at consumers that need the
   text. Elements and documents (string value concatenates descendants)
   and mixed-fragment columns fall back to the generic boxed path. The
   eligibility scan runs on the coordinator; the fill loop only reads
   packed columns (pure), so it may fan out over morsels. *)
exception Not_codeable

let codes_of_nodes ctx run p (frag : int array) (pre : int array) =
  if p.pn = 0 then None
  else
    try
      let fid = ref (-1) in
      pipe_iter_span p 0 p.pn (fun r ->
          if !fid = -1 then fid := frag.(r)
          else if frag.(r) <> !fid then raise Not_codeable);
      let store = ctx.env.Kernels.store in
      let f = Xmldb.Doc_store.frag store !fid in
      pipe_iter_span p 0 p.pn (fun r ->
          match Xmldb.Doc_store.kind_at f pre.(r) with
          | Xmldb.Node_kind.Attribute | Xmldb.Node_kind.Text
          | Xmldb.Node_kind.Comment
          | Xmldb.Node_kind.Processing_instruction -> ()
          | Xmldb.Node_kind.Element | Xmldb.Node_kind.Document ->
            raise Not_codeable);
      let codes = Array.make p.pbase 0 in
      run (fun r -> codes.(r) <- Xmldb.Doc_store.text_code_at f pre.(r));
      Some
        (Column.Codes
           { frag = f; pool = Xmldb.Doc_store.text_pool store; codes })
    with Not_codeable -> None

(* Unary kernels with a typed path; everything else runs generic. *)
let fun1_col ctx run p f c =
  let typed =
    match f with
    | Plan.P_atomize when ctx.env.Kernels.code_eval -> (
      match c with
      | Column.Nodes { frag; pre } -> codes_of_nodes ctx run p frag pre
      (* atomization only transforms nodes: every typed non-node column
         (a string literal kept Const, in particular) passes through
         unchanged — which is what lets a comparand survive to the
         predicate as a Const the code translation can probe once *)
      | Column.Ints _ | Column.Dbls _ | Column.Bools _ | Column.Strs _
      | Column.Codes _ | Column.Seq _ -> Some c
      | Column.Const { v = Value.Node _; _ } -> None
      | Column.Const _ -> Some c
      | Column.Mixed _ -> None)
    | Plan.P_string when ctx.env.Kernels.code_eval -> (
      match c with
      | Column.Nodes { frag; pre } -> codes_of_nodes ctx run p frag pre
      | Column.Strs _ | Column.Codes _
      | Column.Const { v = Value.Str _; _ } ->
        (* string() of a string: identity *)
        Some c
      | _ -> None)
    | Plan.P_not ->
      (* the ebv of a Bool is the Bool itself, so negation is direct *)
      Option.map
        (fun g ->
           let out = Bytes.make p.pbase '\000' in
           run (fun r -> if not (g r) then Bytes.set out r '\001');
           Column.Bools out)
        (bool_reader c)
    | Plan.P_neg | Plan.P_abs -> (
      match c with
      | Column.Ints a ->
        let out = Array.make p.pbase 0 in
        let op = if f = Plan.P_neg then ( ~- ) else abs in
        run (fun r -> out.(r) <- op a.(r));
        Some (Column.Ints out)
      | Column.Dbls a ->
        let out = Array.make p.pbase 0.0 in
        let op = if f = Plan.P_neg then ( ~-. ) else Float.abs in
        run (fun r -> out.(r) <- op a.(r));
        Some (Column.Dbls out)
      | _ -> None)
    | _ -> None
  in
  match typed with Some c -> c | None -> generic1 ctx.env run p f c

(* Binary kernels. Int×Int stays int (except P_div, whose result type is
   data-dependent, so it runs generic); numeric×numeric runs as floats.
   Both replicate the boxed promotion rules exactly — float comparisons
   are unordered on NaN and [Float.compare] otherwise (so -0.0 < 0.0,
   like the boxed path), NOT the native IEEE operators. *)
let fun2_col ctx run p f c1 c2 =
  let bools g =
    let out = Bytes.make p.pbase '\000' in
    run (fun r -> if g r then Bytes.set out r '\001');
    Column.Bools out
  in
  let ints g =
    let out = Array.make p.pbase 0 in
    run (fun r -> out.(r) <- g r);
    Column.Ints out
  in
  let dbls g =
    let out = Array.make p.pbase 0.0 in
    run (fun r -> out.(r) <- g r);
    Column.Dbls out
  in
  let fcmp_bools g1 g2 test =
    bools (fun r ->
        let x = g1 r and y = g2 r in
        if Float.is_nan x || Float.is_nan y then false
        else test (Float.compare x y))
  in
  let typed =
    match f with
    | Plan.P_add | Plan.P_sub | Plan.P_mul | Plan.P_idiv | Plan.P_mod
    | Plan.P_eq | Plan.P_ne | Plan.P_lt | Plan.P_le | Plan.P_gt | Plan.P_ge
      -> (
        match (int_reader c1, int_reader c2) with
        | Some g1, Some g2 -> (
          match f with
          | Plan.P_add -> Some (ints (fun r -> g1 r + g2 r))
          | Plan.P_sub -> Some (ints (fun r -> g1 r - g2 r))
          | Plan.P_mul -> Some (ints (fun r -> g1 r * g2 r))
          | Plan.P_idiv ->
            Some
              (ints (fun r ->
                   let y = g2 r in
                   if y = 0 then Err.dynamic "integer division by zero";
                   g1 r / y))
          | Plan.P_mod ->
            Some
              (ints (fun r ->
                   let y = g2 r in
                   if y = 0 then Err.dynamic "modulus by zero";
                   let x = g1 r in
                   x - (x / y * y)))
          | Plan.P_eq -> Some (bools (fun r -> g1 r = g2 r))
          | Plan.P_ne -> Some (bools (fun r -> g1 r <> g2 r))
          | Plan.P_lt -> Some (bools (fun r -> g1 r < g2 r))
          | Plan.P_le -> Some (bools (fun r -> g1 r <= g2 r))
          | Plan.P_gt -> Some (bools (fun r -> g1 r > g2 r))
          | Plan.P_ge -> Some (bools (fun r -> g1 r >= g2 r))
          | _ -> None)
        | _ -> (
          match (num_reader c1, num_reader c2) with
          | Some g1, Some g2 -> (
            match f with
            | Plan.P_add -> Some (dbls (fun r -> g1 r +. g2 r))
            | Plan.P_sub -> Some (dbls (fun r -> g1 r -. g2 r))
            | Plan.P_mul -> Some (dbls (fun r -> g1 r *. g2 r))
            | Plan.P_eq -> Some (fcmp_bools g1 g2 (fun c -> c = 0))
            | Plan.P_ne ->
              Some
                (bools (fun r ->
                     let x = g1 r and y = g2 r in
                     Float.is_nan x || Float.is_nan y
                     || Float.compare x y <> 0))
            | Plan.P_lt -> Some (fcmp_bools g1 g2 (fun c -> c < 0))
            | Plan.P_le -> Some (fcmp_bools g1 g2 (fun c -> c <= 0))
            | Plan.P_gt -> Some (fcmp_bools g1 g2 (fun c -> c > 0))
            | Plan.P_ge -> Some (fcmp_bools g1 g2 (fun c -> c >= 0))
            | _ -> None (* idiv/mod on doubles: rare, stays boxed *))
          | _ -> (
            (* dictionary-coded equality: translate the comparand into
               the fragment's local code once, then compare machine ints
               per row — no string is ever materialized. Code 0 (row
               without a value) and an interned "" both decode to the
               empty string, so codes pass through [norm] first. *)
            let code_pred () =
              let store = ctx.env.Kernels.store in
              let norm frag =
                match Xmldb.Doc_store.code_of_text store frag "" with
                | Some e -> fun code -> if code = 0 then e else code
                | None -> fun code -> code
              in
              let neg = f = Plan.P_ne in
              match (c1, c2) with
              | ( Column.Codes { frag; codes; _ },
                  Column.Const { v = Value.Str s; _ } )
              | ( Column.Const { v = Value.Str s; _ },
                  Column.Codes { frag; codes; _ } ) ->
                let nz = norm frag in
                let target =
                  if String.equal s "" then Some (nz 0)
                  else Xmldb.Doc_store.code_of_text store frag s
                in
                bump ctx Profile.count_code_pred;
                (match target with
                 | Some k ->
                   Some (bools (fun r -> (nz codes.(r) = k) <> neg))
                 | None ->
                   (* the string occurs nowhere in the fragment: the
                      predicate is constant over every row *)
                   Some (bools (fun _ -> neg)))
              | Column.Codes k1, Column.Codes k2 when k1.frag == k2.frag ->
                let nz = norm k1.frag in
                let a = k1.codes and b = k2.codes in
                bump ctx Profile.count_code_pred;
                Some (bools (fun r -> (nz a.(r) = nz b.(r)) <> neg))
              | ( Column.Codes { frag; codes; _ },
                  Column.Strs { pool; ids } )
              | ( Column.Strs { pool; ids },
                  Column.Codes { frag; codes; _ } ) ->
                (* interned comparands (a replicated literal that lost its
                   Const-ness in a boxed kernel, typically): translate each
                   distinct pool id into the fragment's code once, then
                   compare ints. The translation runs on the coordinator
                   (String_pool reads + the memo are not domain-safe);
                   the fill loop may still fan out. -1 = absent from the
                   fragment, matching no row. *)
                let nz = norm frag in
                let memo : (int, int) Hashtbl.t = Hashtbl.create 8 in
                let tcodes = Array.make p.pbase (-1) in
                pipe_iter_span p 0 p.pn (fun r ->
                    let id = ids.(r) in
                    tcodes.(r) <-
                      (match Hashtbl.find_opt memo id with
                       | Some k -> k
                       | None ->
                         let s = String_pool.get pool id in
                         let k =
                           if String.equal s "" then nz 0
                           else
                             match
                               Xmldb.Doc_store.code_of_text store frag s
                             with
                             | Some k -> k
                             | None -> -1
                         in
                         Hashtbl.add memo id k;
                         k));
                bump ctx Profile.count_code_pred;
                Some (bools (fun r -> (nz codes.(r) = tcodes.(r)) <> neg))
              | _ -> None
            in
            match f with
            | Plan.P_eq | Plan.P_ne -> (
              match code_pred () with
              | Some _ as res -> res
              | None -> (
                (* string equality via pool ids; code columns that missed
                   the int path materialize late into the query pool *)
                let c1 = materialize_codes ctx c1 in
                let c2 = materialize_codes ctx c2 in
                match (str_reader ctx.pool c1, str_reader ctx.pool c2) with
                | Some g1, Some g2 ->
                  if f = Plan.P_eq then Some (bools (fun r -> g1 r = g2 r))
                  else Some (bools (fun r -> g1 r <> g2 r))
                | _ -> None))
            | _ -> None)))
    | Plan.P_and | Plan.P_or -> (
      match (bool_reader c1, bool_reader c2) with
      | Some g1, Some g2 ->
        if f = Plan.P_and then Some (bools (fun r -> g1 r && g2 r))
        else Some (bools (fun r -> g1 r || g2 r))
      | _ -> None)
    | _ -> None
  in
  match typed with Some c -> c | None -> generic2 ctx.env run p f c1 c2

(* The filter: refine the selection without touching any column. Error
   behavior matches the boxed select row-for-row over the visible rows
   (rows dropped by an earlier select were never observable here; a
   morsel scans its rows in ascending order and the lowest failing
   morsel's error is the one re-raised, so the surfaced error is the
   serial one). Parallel morsels collect survivors into private vectors
   concatenated in morsel order — the serial selection exactly. *)
let select_sel ctx ~par p c =
  let test_of =
    match c with
    | Column.Bools bb -> Some (fun r -> Bytes.unsafe_get bb r <> '\000')
    | Column.Const _ -> None
    | _ ->
      Some
        (fun r ->
           match Column.get c r with
           | Value.Bool b -> b
           | v ->
             Err.dynamic "selection on non-boolean value %s"
               (Value.type_name v))
  in
  match test_of with
  | None -> (
    match c with
    | Column.Const { v = Value.Bool true; _ } ->
      let live = Vec.create 0 in
      pipe_iter_span p 0 p.pn (fun r -> Vec.push live r);
      Vec.to_array live
    | Column.Const { v = Value.Bool false; _ } -> [||]
    | Column.Const { v; _ } ->
      if p.pn > 0 then
        Err.dynamic "selection on non-boolean value %s" (Value.type_name v)
      else [||]
    | _ -> assert false)
  | Some test ->
    let produce lo hi =
      let live = Vec.create 0 in
      pipe_iter_span p lo hi (fun r -> if test r then Vec.push live r);
      Vec.to_array live
    in
    let parts = map_spans ctx ~par p.pn produce in
    (match parts with
     | [| s |] -> s
     | _ -> Array.concat (Array.to_list parts))

(* Chain ops run strictly in order (an op-level barrier): the coordinator
   does all retyping and typed-path dispatch (String_pool is not
   thread-safe), then only the per-row fill loop of each op fans out. *)
let run_pipe ctx ~par (b : batch) (ops : chain_op list) : batch =
  let p =
    { pcols = Array.mapi (fun i c -> (b.schema.(i), c)) b.cols;
      ptyped = Array.copy b.typed;
      psel = b.sel;
      pn = b.nrows;
      pbase = b.base }
  in
  let run = row_runner ctx ~par p in
  let push name c =
    p.pcols <- Array.append p.pcols [| (name, c) |];
    p.ptyped <- Array.append p.ptyped [| None |]
  in
  List.iter
    (fun op ->
       match op with
       | F_select name ->
         let c = pipe_retyped ctx p name in
         let s = select_sel ctx ~par p c in
         p.psel <- Some s;
         p.pn <- Array.length s;
         bump ctx Profile.count_mat_avoided
       | F_attach (res, v) -> push res (Column.const v p.pbase)
       | F_fun1 (res, f, a) ->
         let c = pipe_retyped ctx p a in
         push res (fun1_col ctx run p f c)
       | F_fun2 (res, f, a1, a2) ->
         let c1 = pipe_retyped ctx p a1 in
         let c2 = pipe_retyped ctx p a2 in
         push res (fun2_col ctx run p f c1 c2)
       | F_fun3 (res, f, a1, a2, a3) ->
         let c1 = pipe_retyped ctx p a1 in
         let c2 = pipe_retyped ctx p a2 in
         let c3 = pipe_retyped ctx p a3 in
         push res (generic3 ctx.env run p f c1 c2 c3))
    ops;
  { schema = Array.map fst p.pcols;
    cols = Array.map snd p.pcols;
    typed = p.ptyped;
    sel = p.psel;
    nrows = p.pn;
    base = p.pbase;
    table = None }

(* ------------------------------------------------------- breaker kernels *)

let check_disjoint l r =
  Array.iter
    (fun cl ->
       if Array.exists (String.equal cl) r then
         Err.internal "join: column %S on both sides" cl)
    l

(* Build a join output: typed gathers of both (compacted) sides through
   the match index pairs — no boxing, the payoff of the whole layer. *)
let join_output (l : batch) (r : batch) li ri =
  let n = Array.length li in
  let side (b : batch) idx =
    ( Array.map (fun c -> Column.gather c idx) b.cols,
      Array.map
        (function Some c -> Some (Column.gather c idx) | None -> None)
        b.typed )
  in
  let lc, lt = side l li and rc, rt = side r ri in
  { schema = Array.append l.schema r.schema;
    cols = Array.append lc rc;
    typed = Array.append lt rt;
    sel = None;
    nrows = n;
    base = n;
    table = None }

(* Matching key pairs via an int hash join — the boxed fast path's exact
   insertion/probe order, so the output row order agrees with it. The
   build side is sequential; the probe side (outer loop over [n1]) may
   fan out over morsels: the index is frozen by then (concurrent
   [Hashtbl] reads of an unmutated table are safe), and per-morsel match
   pairs concatenated in morsel order reproduce the serial i-outer,
   j-inner enumeration. *)
let int_join_indices ctx ~par g1 n1 g2 n2 =
  let module IT = Kernels.Int_tbl in
  let index : int Vec.t IT.t = IT.create (max 16 n2) in
  for j = 0 to n2 - 1 do
    let k = g2 j in
    match IT.find_opt index k with
    | Some v -> Vec.push v j
    | None ->
      let v = Vec.create 0 in
      Vec.push v j;
      IT.add index k v
  done;
  let probe lo hi =
    let li = Vec.create 0 and ri = Vec.create 0 in
    for i = lo to hi - 1 do
      match IT.find_opt index (g1 i) with
      | None -> ()
      | Some v ->
        Vec.iter
          (fun j ->
             Vec.push li i;
             Vec.push ri j)
          v
    done;
    (Vec.to_array li, Vec.to_array ri)
  in
  concat_pairs (map_spans ctx ~par n1 probe)

(* Normalized-code key readers for an equality join: [Some (g1, g2)]
   when the key pair can hash and compare as machine ints with no string
   ever materialized. Same-fragment Codes×Codes compares raw codes;
   Codes against interned strings (or a Const comparand) translates each
   distinct string into the fragment's code once — the reverse dictionary
   probe — with -1 for strings the fragment never contains (codes are
   non-negative, so -1 matches nothing). Code 0 (valueless row) and an
   interned "" both decode to "", hence the [norm] pass on every code
   read. Translation runs on the coordinator (pool reads and the memo
   are not domain-safe); the returned readers are pure array reads, safe
   under morsel fan-out. *)
let code_key_readers ctx lc rc =
  let store = ctx.env.Kernels.store in
  let norm frag =
    match Xmldb.Doc_store.code_of_text store frag "" with
    | Some e -> fun code -> if code = 0 then e else code
    | None -> fun code -> code
  in
  let translate frag n (get : int -> string) =
    let nz = norm frag in
    let memo : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let out = Array.make n (-1) in
    for i = 0 to n - 1 do
      let s = get i in
      out.(i) <-
        (match Hashtbl.find_opt memo s with
         | Some k -> k
         | None ->
           let k =
             if String.equal s "" then nz 0
             else
               match Xmldb.Doc_store.code_of_text store frag s with
               | Some k -> k
               | None -> -1
           in
           Hashtbl.add memo s k;
           k)
    done;
    fun i -> out.(i)
  in
  let coded frag (codes : int array) =
    let nz = norm frag in
    fun i -> nz codes.(i)
  in
  match (lc, rc) with
  | Column.Codes k1, Column.Codes k2 when k1.frag == k2.frag ->
    Some (coded k1.frag k1.codes, coded k1.frag k2.codes)
  | Column.Codes { frag; codes; _ }, Column.Strs { pool; ids } ->
    Some
      ( coded frag codes,
        translate frag (Array.length ids) (fun i -> String_pool.get pool ids.(i)) )
  | Column.Strs { pool; ids }, Column.Codes { frag; codes; _ } ->
    Some
      ( translate frag (Array.length ids) (fun i -> String_pool.get pool ids.(i)),
        coded frag codes )
  | Column.Codes { frag; codes; _ }, Column.Const { v = Value.Str s; n } ->
    Some (coded frag codes, translate frag n (fun _ -> s))
  | Column.Const { v = Value.Str s; n }, Column.Codes { frag; codes; _ } ->
    Some (translate frag n (fun _ -> s), coded frag codes)
  | _ -> None

(* Build-left over int key readers: same (i asc, j asc within i) pair
   order as [Kernels.join_indices_build_left] — matches accumulate per
   left row while the right side streams ascending, then emit
   left-major. Serial by construction (flipped joins never fan out). *)
let int_join_indices_build_left g1 n1 g2 n2 =
  let module IT = Kernels.Int_tbl in
  let index : int Vec.t IT.t = IT.create (max 16 n1) in
  for i = 0 to n1 - 1 do
    let k = g1 i in
    match IT.find_opt index k with
    | Some v -> Vec.push v i
    | None ->
      let v = Vec.create 0 in
      Vec.push v i;
      IT.add index k v
  done;
  let matches : int Vec.t option array = Array.make n1 None in
  for j = 0 to n2 - 1 do
    match IT.find_opt index (g2 j) with
    | None -> ()
    | Some v ->
      Vec.iter
        (fun i ->
           match matches.(i) with
           | Some m -> Vec.push m j
           | None ->
             let m = Vec.create 0 in
             Vec.push m j;
             matches.(i) <- Some m)
        v
  done;
  let li = Vec.create 0 and ri = Vec.create 0 in
  Array.iteri
    (fun i m ->
       match m with
       | None -> ()
       | Some v ->
         Vec.iter
           (fun j ->
              Vec.push li i;
              Vec.push ri j)
           v)
    matches;
  (Vec.to_array li, Vec.to_array ri)

let k_join ctx ~par ~build_left lb rb lcol rcname =
  check_disjoint lb.schema rb.schema;
  let lb = compact lb and rb = compact rb in
  if build_left then begin
    (* estimated-smaller left side carries the hash; the kernel emits the
       exact (i asc, j asc) pair order of the build-right paths, so this
       is purely a cost choice. Serial by construction (ppar is off for
       flipped joins). *)
    bump ctx Profile.count_build_flip;
    let lc0 = rcol ctx lb lcol and rc0 = rcol ctx rb rcname in
    let li, ri =
      match code_key_readers ctx lc0 rc0 with
      | Some (g1, g2) ->
        bump ctx Profile.count_code_pred;
        int_join_indices_build_left g1 lb.nrows g2 rb.nrows
      | None ->
        Kernels.join_indices_build_left (boxed_vis ctx lb lcol)
          (boxed_vis ctx rb rcname)
    in
    join_output lb rb li ri
  end
  else begin
    let lc0 = rcol ctx lb lcol and rc0 = rcol ctx rb rcname in
    match code_key_readers ctx lc0 rc0 with
    | Some (g1, g2) ->
      (* the join IS the equality predicate: translated once, it hashes
         and compares normalized dictionary codes — counted as a code
         predicate, and no key string is ever materialized *)
      bump ctx Profile.count_code_pred;
      let li, ri = int_join_indices ctx ~par g1 lb.nrows g2 rb.nrows in
      join_output lb rb li ri
    | None ->
      (* code-carrying keys that missed the int path materialize into the
         query pool here: a string hash join then runs on pool ids, not
         per-pair boxed compares *)
      let lc = materialize_codes ctx lc0 in
      let rc = materialize_codes ctx rc0 in
      let li, ri =
        match (int_reader lc, int_reader rc) with
        | Some g1, Some g2 -> int_join_indices ctx ~par g1 lb.nrows g2 rb.nrows
        | _ -> (
          match (str_reader ctx.pool lc, str_reader ctx.pool rc) with
          | Some g1, Some g2 ->
            int_join_indices ctx ~par g1 lb.nrows g2 rb.nrows
          | _ ->
            Kernels.join_indices (boxed_vis ctx lb lcol)
              (boxed_vis ctx rb rcname))
      in
      join_output lb rb li ri
  end

(* Inequality theta where untyped strings meet numerics: the boxed
   kernel takes its nested loop and re-coerces (re-parses!) the untyped
   side once per PAIR. Here each row is coerced to its xs:double key
   exactly once, then pairs compare as unboxed floats — same pair
   enumeration order (i-outer, j-inner), same NaN semantics
   ([float_cmp]: unordered compares false), and the first uncoercible
   value raises in the same position the nested loop would have reached
   it (row (0,0) coerces left then right, then the inner loop finishes
   the right side before the outer loop resumes the left).

   Only fires when exactly one side is all-numeric and the other mixes
   strings in — both-all-numeric stays on the boxed sort-based range
   join, and Str×Str pairs (string comparison, not coercion) or
   Bool/Node/QName operands (different rules per pair) stay on the
   boxed nested loop. *)
let theta_float_keys lvs rvs =
  let numeric = function Value.Int _ | Value.Dbl _ -> true | _ -> false in
  let coercible = function
    | Value.Int _ | Value.Dbl _ | Value.Str _ -> true
    | _ -> false
  in
  let all p a = Array.for_all p a in
  if
    Array.length lvs = 0
    || Array.length rvs = 0
    || not
         ((all numeric lvs && all coercible rvs && not (all numeric rvs))
          || (all numeric rvs && all coercible lvs && not (all numeric lvs)))
  then None
  else begin
    let lk = Array.make (Array.length lvs) 0.0 in
    let rk = Array.make (Array.length rvs) 0.0 in
    lk.(0) <- Value.float_value lvs.(0);
    Array.iteri (fun j v -> rk.(j) <- Value.float_value v) rvs;
    for i = 1 to Array.length lvs - 1 do
      lk.(i) <- Value.float_value lvs.(i)
    done;
    Some (lk, rk)
  end

(* The O(|l|·|r|) nested loop — the hottest loop on XMark Q11/Q12 and the
   main beneficiary of morsel parallelism: the outer (left) rows split
   into morsels, each enumerating its pairs in the serial i-outer,
   j-inner order; morsel-order concatenation restores the full serial
   pair order. *)
let theta_float_indices ctx ~par cmp lk rk =
  let test =
    match cmp with
    | Plan.P_lt -> fun c -> c < 0
    | Plan.P_le -> fun c -> c <= 0
    | Plan.P_gt -> fun c -> c > 0
    | Plan.P_ge -> fun c -> c >= 0
    | _ -> Err.internal "theta_float_indices: inequality expected"
  in
  let produce lo hi =
    let li = Vec.create 0 and ri = Vec.create 0 in
    for i = lo to hi - 1 do
      let x = lk.(i) in
      if not (Float.is_nan x) then
        Array.iteri
          (fun j y ->
             if (not (Float.is_nan y)) && test (Float.compare x y) then begin
               Vec.push li i;
               Vec.push ri j
             end)
          rk
    done;
    (Vec.to_array li, Vec.to_array ri)
  in
  concat_pairs (map_spans ctx ~par (Array.length lk) produce)

let k_thetajoin ctx ~par lb rb lcol cmp rcname =
  check_disjoint lb.schema rb.schema;
  let lb = compact lb and rb = compact rb in
  let li, ri =
    match cmp with
    | Plan.P_eq -> (
      (* int×int equality is coercion-free: safe for the typed path; an
         equality over code-carrying string keys hashes normalized
         dictionary codes instead — the same i-asc, j-asc pair order as
         the boxed nested loop, with no string ever materialized *)
      let lc0 = rcol ctx lb lcol and rc0 = rcol ctx rb rcname in
      match code_key_readers ctx lc0 rc0 with
      | Some (g1, g2) ->
        bump ctx Profile.count_code_pred;
        int_join_indices ctx ~par g1 lb.nrows g2 rb.nrows
      | None -> (
        match (int_reader lc0, int_reader rc0) with
        | Some g1, Some g2 ->
          int_join_indices ctx ~par g1 lb.nrows g2 rb.nrows
        | _ ->
          Kernels.theta_indices (boxed_vis ctx lb lcol) cmp
            (boxed_vis ctx rb rcname)))
    | Plan.P_lt | Plan.P_le | Plan.P_gt | Plan.P_ge -> (
      let lvs = boxed_vis ctx lb lcol and rvs = boxed_vis ctx rb rcname in
      match theta_float_keys lvs rvs with
      | Some (lk, rk) -> theta_float_indices ctx ~par cmp lk rk
      | None -> Kernels.theta_indices lvs cmp rvs)
    | _ ->
      (* everything else: matching stays boxed (the homogeneity/NaN
         analysis lives there), output stays typed *)
      Kernels.theta_indices (boxed_vis ctx lb lcol) cmp
        (boxed_vis ctx rb rcname)
  in
  join_output lb rb li ri

(* Semi/anti join: the output is the left batch with a composed selection
   — nothing materializes. The default path hashes the right side's keys
   (serial) and probes the left side, fanning the probe out over morsels
   exactly like the join probe: the key set is frozen before workers
   start, the boxed key arrays are materialized on the coordinator (no
   [String_pool] access inside the loop), and per-morsel kept indices
   concatenated in morsel order reproduce the serial ascending scan.
   [build_left] hashes the estimated-smaller left side instead and marks
   matches in one scan of the right — serial by construction ([ppar] is
   off for flipped semijoins). *)
let k_semijoin ctx ~par ~anti ~build_left lb rb on =
  (* single-key semijoins over code-carrying columns keep the match on
     normalized dictionary codes: the key column is gathered through the
     selection (gather preserves the Codes/Strs shape), so the readers
     index visible positions like the boxed key arrays do. Membership is
     symmetric, so build-side choice cannot change the kept set — both
     sides share one int-set probe. *)
  let code_keys =
    match on with
    | [ (lc, rc) ] ->
      let vis b name =
        let c = rcol ctx b name in
        match b.sel with None -> c | Some s -> Column.gather c s
      in
      code_key_readers ctx (vis lb lc) (vis rb rc)
    | _ -> None
  in
  let keep =
    match code_keys with
    | Some (g1, g2) ->
      bump ctx Profile.count_code_pred;
      if build_left then bump ctx Profile.count_build_flip;
      let module IT = Kernels.Int_tbl in
      let set : unit IT.t = IT.create (max 16 rb.nrows) in
      for j = 0 to rb.nrows - 1 do
        IT.replace set (g2 j) ()
      done;
      let probe lo hi =
        let keep = Vec.create 0 in
        for i = lo to hi - 1 do
          if IT.mem set (g1 i) <> anti then Vec.push keep i
        done;
        Vec.to_array keep
      in
      (match
         map_spans ctx ~par:(par && not build_left) lb.nrows probe
       with
       | [| one |] -> one
       | parts -> Array.concat (Array.to_list parts))
    | None ->
      let lkeys =
        Array.of_list (List.map (fun (lc, _) -> boxed_vis ctx lb lc) on)
      in
      let rkeys =
        Array.of_list (List.map (fun (_, rc) -> boxed_vis ctx rb rc) on)
      in
      if build_left then begin
        bump ctx Profile.count_build_flip;
        Kernels.semi_keep_build_left ~anti ~nl:lb.nrows ~nr:rb.nrows lkeys
          rkeys
      end
      else
        let set = Kernels.semi_key_set ~nr:rb.nrows rkeys in
        (match
           map_spans ctx ~par lb.nrows (fun lo hi ->
               Kernels.semi_probe set ~anti lkeys lo hi)
         with
        | [| one |] -> one
        | parts -> Array.concat (Array.to_list parts))
  in
  let sel' =
    match lb.sel with
    | None -> keep
    | Some s -> Array.map (fun k -> s.(k)) keep
  in
  bump ctx Profile.count_mat_avoided;
  { lb with sel = Some sel'; nrows = Array.length sel'; table = None }

let k_distinct ctx b =
  let n = Array.length b.schema in
  let keep =
    match (if n = 1 then int_reader (retyped ctx b 0) else None) with
    | Some g ->
      (* single int column: dedup without boxing *)
      let module IT = Kernels.Int_tbl in
      let seen : unit IT.t = IT.create (max 16 b.nrows) in
      let keep = Vec.create 0 in
      let k = ref 0 in
      iter_sel b (fun r ->
          let key = g r in
          if not (IT.mem seen key) then begin
            IT.add seen key ();
            Vec.push keep !k
          end;
          incr k);
      Vec.to_array keep
    | None ->
      let cols = Array.init n (fun i -> boxed_vis ctx b b.schema.(i)) in
      let seen = Kernels.Row_tbl.create (max 16 b.nrows) in
      let keep = Vec.create 0 in
      for k = 0 to b.nrows - 1 do
        let key = Array.map (fun c -> c.(k)) cols in
        if not (Kernels.Row_tbl.mem seen key) then begin
          Kernels.Row_tbl.add seen key ();
          Vec.push keep k
        end
      done;
      Vec.to_array keep
  in
  let sel' =
    match b.sel with
    | None -> keep
    | Some s -> Array.map (fun k -> s.(k)) keep
  in
  bump ctx Profile.count_mat_avoided;
  { b with sel = Some sel'; nrows = Array.length sel'; table = None }

let k_project b cols =
  let idx = Array.of_list (List.map (fun (_, src) -> col_pos b src) cols) in
  { schema = Array.of_list (List.map fst cols);
    cols = Array.map (fun i -> b.cols.(i)) idx;
    typed = Array.map (fun i -> b.typed.(i)) idx;
    sel = b.sel;
    nrows = b.nrows;
    base = b.base;
    table = None }

let k_union lb rb =
  if Array.length lb.schema <> Array.length rb.schema then
    Err.internal "Table.union: schema arity mismatch";
  let lb = compact lb and rb = compact rb in
  let cols =
    Array.mapi
      (fun i name -> Column.append lb.cols.(i) rb.cols.(col_pos rb name))
      lb.schema
  in
  { schema = lb.schema;
    cols;
    typed = Array.make (Array.length cols) None;
    sel = None;
    nrows = lb.nrows + rb.nrows;
    base = lb.nrows + rb.nrows;
    table = None }

let k_rowid ctx ~par b res =
  match b.sel with
  | None ->
    (* dense numbering is MonetDB's void column: O(1), nothing stored *)
    bump ctx Profile.count_mat_avoided;
    { b with
      schema = Array.append b.schema [| res |];
      cols = Array.append b.cols [| Column.seq ~start:1 b.nrows |];
      typed = Array.append b.typed [| None |];
      table = None }
  | Some s ->
    (* scattered: number the selected rows 1..n in selection order; each
       write targets [s.(i)] and the selection is injective, so morsels
       scatter into disjoint slots *)
    let out = Array.make b.base 0 in
    run_spans ctx ~par (Array.length s) (fun lo hi ->
        for i = lo to hi - 1 do
          out.(s.(i)) <- i + 1
        done);
    { b with
      schema = Array.append b.schema [| res |];
      cols = Array.append b.cols [| Column.Ints out |];
      typed = Array.append b.typed [| None |];
      table = None }

(* Rownum: the pipeline breaker the paper's cost model revolves around.
   Compact, sort a permutation — typed comparators where columns are
   typed; [Value.compare_total] agrees with [Int.compare]/[Float.compare]
   on homogeneous columns — then number within partitions. *)
let k_rownum ctx b res order part merge_hint =
  let b = compact b in
  let n = b.nrows in
  let cmp_of name =
    let i = col_pos b name in
    match retyped ctx b i with
    | Column.Ints a -> fun x y -> Int.compare a.(x) a.(y)
    | Column.Seq _ -> Int.compare
    | Column.Dbls a -> fun x y -> Float.compare a.(x) a.(y)
    | Column.Const _ -> fun _ _ -> 0
    | Column.Nodes { frag; pre } ->
      (* (frag, pre) lexicographically = [Node_id.compare] = the total
         order on homogeneous node columns *)
      fun x y ->
        let c = Int.compare frag.(x) frag.(y) in
        if c <> 0 then c else Int.compare pre.(x) pre.(y)
    | Column.Strs { pool; ids } ->
      fun x y ->
        String.compare (String_pool.get pool ids.(x))
          (String_pool.get pool ids.(y))
    | Column.Codes { frag; pool; codes } ->
      let s i =
        let id = Xmldb.Doc_store.text_id_of_code frag codes.(i) in
        if id < 0 then "" else String_pool.get pool id
      in
      fun x y -> String.compare (s x) (s y)
    | _ -> (
      (* genuinely heterogeneous: compare the boxed values in place —
         never [Column.get] on a typed rep, which would allocate a box
         per comparison inside the sort *)
      match b.cols.(i) with
      | Column.Mixed vs -> fun x y -> Value.compare_total vs.(x) vs.(y)
      | c -> fun x y -> Value.compare_total (Column.get c x) (Column.get c y))
  in
  let ocmps = List.map (fun (name, d) -> (cmp_of name, d)) order in
  let pcmp = Option.map cmp_of part in
  let perm = Array.init n (fun i -> i) in
  let compare_rows a bi =
    let pc = match pcmp with None -> 0 | Some c -> c a bi in
    if pc <> 0 then pc
    else
      let rec go = function
        | [] -> Int.compare a bi (* stability tie-break *)
        | (c, d) :: rest ->
          let cmp = c a bi in
          let cmp = match d with Plan.Asc -> cmp | Plan.Desc -> -cmp in
          if cmp <> 0 then cmp else go rest
      in
      go ocmps
  in
  (* Piecewise-sorted input (ordering analysis bounded the run count,
     e.g. a union of per-branch sorted sides): detect the runs in one
     linear scan and replace the O(n log n) sort with a bottom-up merge
     of adjacent runs. [compare_rows] is a total order (row-position
     tie-break), so the merge result is the unique sorted permutation —
     bit-identical to [Array.sort]. Fall back to the full sort if the
     input has more runs than promised (the hint is a performance claim;
     correctness never depends on it). *)
  let merged =
    match merge_hint with
    | None -> false
    | Some hint ->
      let cap = max hint 64 in
      let bounds = ref [ 0 ] and runs = ref 1 in
      (try
         for i = 1 to n - 1 do
           if compare_rows (i - 1) i > 0 then begin
             incr runs;
             if !runs > cap then raise Exit;
             bounds := i :: !bounds
           end
         done;
         let segments =
           (* (lo, hi) run extents, in input order *)
           let rec go hi acc = function
             | [] -> acc
             | lo :: rest -> go lo ((lo, hi) :: acc) rest
           in
           go n [] !bounds
         in
         let arrays =
           List.map (fun (lo, hi) -> Array.init (hi - lo) (fun k -> lo + k))
             segments
         in
         let merge xs ys =
           let nx = Array.length xs and ny = Array.length ys in
           let out = Array.make (nx + ny) 0 in
           let i = ref 0 and j = ref 0 in
           for k = 0 to nx + ny - 1 do
             if
               !i < nx
               && (!j >= ny || compare_rows xs.(!i) ys.(!j) <= 0)
             then begin
               out.(k) <- xs.(!i);
               incr i
             end
             else begin
               out.(k) <- ys.(!j);
               incr j
             end
           done;
           out
         in
         let rec rounds = function
           | [] -> ()
           | [ final ] -> Array.blit final 0 perm 0 n
           | many ->
             let rec pair = function
               | a :: c :: rest -> merge a c :: pair rest
               | tail -> tail
             in
             rounds (pair many)
         in
         rounds arrays;
         bump ctx Profile.count_sort_merge;
         true
       with Exit -> false)
  in
  if not merged then Array.sort compare_rows perm;
  let out = Array.make n 0 in
  (match pcmp with
   | None -> Array.iteri (fun k r -> out.(r) <- k + 1) perm
   | Some pc ->
     (* partition equality is comparator equality: [Value.equal] is
        defined as [compare_total = 0], so this matches the boxed
        counter's restart points exactly *)
     let counter = ref 0 in
     let last = ref (-1) in
     Array.iter
       (fun r ->
          (match !last with
           | -1 -> counter := 1
           | lr -> if pc lr r = 0 then incr counter else counter := 1);
          last := r;
          out.(r) <- !counter)
       perm);
  { b with
    schema = Array.append b.schema [| res |];
    cols = Array.append b.cols [| Column.Ints out |];
    typed = Array.append b.typed [| None |];
    table = None }

(* Int-keyed grouped fold with partial aggregation over morsels: every
   morsel folds its contiguous range of visible rows into a private
   (first-seen key order, accumulator table) pair; the coordinator merges
   the partials *in morsel order*, combining accumulators for keys seen
   by several morsels. Because morsels are contiguous, in-order slices of
   the scan, walking their first-seen key sequences in morsel order while
   skipping already-merged keys reproduces the global first-seen group
   order of the serial scan exactly ([Kernels.group_rows] order). The
   combiner must be associative over row-range splits — count, sum, min,
   max are — and the fold of a single morsel is the serial fold, so the
   serial path is just the one-morsel case. *)
let int_grouped ctx ~par b ~(g : int -> int) ~(of_row : int -> int)
    ~(combine : int -> int -> int) =
  let module IT = Kernels.Int_tbl in
  let fold lo hi =
    let order_v = Vec.create 0 in
    let accs : int ref IT.t = IT.create 64 in
    let step r =
      let k = g r in
      match IT.find_opt accs k with
      | Some a -> a := combine !a (of_row r)
      | None ->
        IT.add accs k (ref (of_row r));
        Vec.push order_v k
    in
    (match b.sel with
     | None -> for r = lo to hi - 1 do step r done
     | Some s -> for i = lo to hi - 1 do step s.(i) done);
    (order_v, accs)
  in
  let parts = map_spans ctx ~par b.nrows fold in
  let order_v, accs =
    match parts with
    | [| one |] -> one
    | _ ->
      let order_v = Vec.create 0 in
      let accs : int ref IT.t = IT.create 64 in
      Array.iter
        (fun (ov, av) ->
           Vec.iter
             (fun k ->
                let v = !(IT.find av k) in
                match IT.find_opt accs k with
                | Some a -> a := combine !a v
                | None ->
                  IT.add accs k (ref v);
                  Vec.push order_v k)
             ov)
        parts;
      (order_v, accs)
  in
  let n = Vec.length order_v in
  let keys = Array.make n 0 and vals = Array.make n 0 in
  Vec.iteri
    (fun i k ->
       keys.(i) <- k;
       vals.(i) <- !(IT.find accs k))
    order_v;
  (keys, vals)

(* Aggregation: typed paths for the order-indifferent shapes — count, and
   integer sum/min/max, grouped by an int column (iter grouping, the
   overwhelmingly common case), first-seen group order exactly like
   [Kernels.group_rows] — everything else boxed. On the boxed path
   atomize is the identity on Int, [numeric_view] maps Int to itself, an
   all-Int sum folds to an Int, and min/max pick an Int by integer
   comparison with no NaN involved — so these typed results are
   value-identical to the boxed ones. *)
let k_aggr ctx ~par b res agg arg part order =
  let boxed () =
    let t = to_table ctx b in
    of_table
      (Kernels.eval_aggr ctx.env.Kernels.store t res agg arg part order)
  in
  let grouped p ~g ~of_row ~combine =
    let keys, vals = int_grouped ctx ~par b ~g ~of_row ~combine in
    let n = Array.length keys in
    { schema = [| p; res |];
      cols = [| Column.Ints keys; Column.Ints vals |];
      typed = [| None; None |];
      sel = None;
      nrows = n;
      base = n;
      table = None }
  in
  match (agg, part) with
  | Plan.A_count, None ->
    of_table (Table.of_rows [| res |] [ [| Value.Int b.nrows |] ])
  | Plan.A_count, Some p -> (
    match int_reader (rcol ctx b p) with
    | None -> boxed ()
    | Some g -> grouped p ~g ~of_row:(fun _ -> 1) ~combine:( + ))
  | (Plan.A_sum | Plan.A_min | Plan.A_max), Some p -> (
    match
      ( int_reader (rcol ctx b p),
        Option.map (fun a -> int_reader (rcol ctx b a)) arg )
    with
    | Some g, Some (Some ga) ->
      let combine =
        match agg with
        | Plan.A_sum -> ( + )
        | Plan.A_min -> min
        | _ -> max
      in
      grouped p ~g ~of_row:ga ~combine
    | _ -> boxed ())
  | _ -> boxed ()

(* ------------------------------------------------------------- dispatcher *)

let exec_kernel ctx (p : pnode) (inputs : batch list) : batch =
  let one () =
    match inputs with
    | [ b ] -> b
    | _ -> Err.internal "physical kernel arity: one input expected"
  in
  let two () =
    match inputs with
    | [ a; b ] -> (a, b)
    | _ -> Err.internal "physical kernel arity: two inputs expected"
  in
  let par = p.ppar in
  match p.pop with
  | K_pipe ops -> run_pipe ctx ~par (one ()) ops
  | K_project cols -> k_project (one ()) cols
  | K_distinct -> k_distinct ctx (one ())
  | K_union ->
    let l, r = two () in
    k_union l r
  | K_rowid res -> k_rowid ctx ~par (one ()) res
  | K_rownum { res; order; part; merge_hint } ->
    k_rownum ctx (one ()) res order part merge_hint
  | K_join { lcol; rcol; build_left } ->
    let l, r = two () in
    k_join ctx ~par ~build_left l r lcol rcol
  | K_thetajoin { lcol; cmp; rcol } ->
    let l, r = two () in
    k_thetajoin ctx ~par l r lcol cmp rcol
  | K_semijoin { anti; on; build_left } ->
    let l, r = two () in
    k_semijoin ctx ~par ~anti ~build_left l r on
  | K_aggr { res; agg; arg; part; order } ->
    k_aggr ctx ~par (one ()) res agg arg part order
  | K_boxed op ->
    let tables = List.map (to_table ctx) inputs in
    of_table (Kernels.eval_op ctx.env op tables)

let rec eval ctx (p : pnode) : batch =
  match
    (match ctx.mode with
     | Eval.Dag -> Hashtbl.find_opt ctx.cache p.pid
     | Eval.Tree -> None)
  with
  | Some b -> b
  | None ->
    (* the kernel boundary: deadline / op budget / cancellation / fault
       injection fire here, once per kernel invocation. A fused chain is
       one kernel, so a physical run makes at most as many checks as the
       logical executor made for the same plan. *)
    (match ctx.guard with Some g -> Budget.check g | None -> ());
    (match ctx.mode with
     | Eval.Dag -> List.iter (fun c -> ignore (eval ctx c)) p.pinputs
     | Eval.Tree -> ());
    let t0 = match ctx.profile with Some _ -> Clock.now () | None -> 0.0 in
    ctx.kernels <- ctx.kernels + 1;
    let inputs = List.map (eval ctx) p.pinputs in
    let out = exec_kernel ctx p inputs in
    (match ctx.guard with
     | Some g ->
       Budget.add_rows g out.nrows;
       if Budget.wants_bytes g then Budget.add_bytes g (budget_bytes out)
     | None -> ());
    (match ctx.profile with
     | Some prof ->
       let dt = Clock.now () -. t0 in
       Profile.add prof p.plabel dt;
       Profile.add_node prof p.pid p.plabel dt;
       Profile.add_kernel prof ~fused:p.pfused
         ~rows_in:(List.fold_left (fun acc b -> acc + b.nrows) 0 inputs)
         ~rows_out:out.nrows
     | None -> ());
    (match ctx.mode with
     | Eval.Dag -> Hashtbl.add ctx.cache p.pid out
     | Eval.Tree -> ());
    out

(* Evaluate a whole physical plan; the result is boxed for the
   serialization boundary (the one materialization every query pays).
   [jobs] > 1 enables morsel parallelism on the kernels the lowering
   marked order-indifferent; results, errors and profile counters are
   bit-identical to [jobs = 1]. [morsel] overrides the minimum rows per
   morsel (default 1024, or XRQ_MORSEL). *)
let run ?profile ?guard ?step_impl ?mode ?jobs ?morsel ?code_eval store
    (root : pnode) : Table.t =
  let ctx =
    create ?profile ?guard ?step_impl ?mode ?jobs ?morsel ?code_eval store
  in
  let out = eval ctx root in
  to_table ctx out
