(* The columnar executor: evaluates an algebra DAG bottom-up, memoizing
   every node's result table by node id, so the sharing in Pathfinder's
   emitted DAGs (paper Section 3) translates into single evaluation.

   The engine is "inherently unordered": no operator promises any row
   order; all order semantics live in explicit pos/iter columns. The one
   cost asymmetry the paper's results hinge on is implemented faithfully:
   [Rownum] ("%") sorts its input, [Rowid] ("#") just stamps a counter.

   The per-operator table implementations live in [Kernels]; this module
   is the policy layer — memoization, Dag/Tree sharing semantics, budget
   enforcement, and profiling. *)

open Basis
open Plan

type step_impl = Scan | Tag_index

(* [Dag] memoizes every node's result by hash-cons id, so shared subplans
   are computed (and their cost charged) exactly once. [Tree] walks the
   plan as if it were a tree, re-evaluating shared subtrees on every
   reference — the differential-testing oracle for the sharing machinery
   and the honest cost model of a sharing-oblivious executor. *)
type mode = Dag | Tree

type ctx = {
  env : Kernels.env;
  cache : (int, Table.t) Hashtbl.t;
  mode : mode;
  mutable evals : int;  (* node evaluations performed (cache hits excluded) *)
  profile : Profile.t option;
  guard : Budget.t option;  (* resource governor, checked per operator *)
}

let create ?profile ?guard ?(step_impl = Scan) ?(mode = Dag) store =
  let tag_index =
    match step_impl with
    | Scan -> None
    | Tag_index -> Some (Xmldb.Tag_index.create store)
  in
  { env = Kernels.env ?tag_index store;
    cache = Hashtbl.create 128;
    mode;
    evals = 0;
    profile;
    guard }

let evals ctx = ctx.evals

let now = Clock.now

(* ------------------------------------------------------------ dispatcher *)

let rec eval ctx (n : node) : Table.t =
  match
    (match ctx.mode with
     | Dag -> Hashtbl.find_opt ctx.cache n.id
     | Tree -> None)
  with
  | Some t -> t
  | None ->
    (* the operator boundary: deadline / op-budget / cancellation / fault
       injection all fire here, before any work for this node. In Dag mode
       cache hits never reach it, so a node's cost is charged exactly once;
       in Tree mode every reference to a shared subtree pays again. *)
    (match ctx.guard with Some g -> Budget.check g | None -> ());
    let kids = children n.op in
    (* evaluate children first so their time is attributed to them; in
       Tree mode that pre-pass would double-evaluate, so children run
       inside the timed region below and attribution is inclusive *)
    (match ctx.mode with
     | Dag -> List.iter (fun c -> ignore (eval ctx c)) kids
     | Tree -> ());
    let t0 = match ctx.profile with Some _ -> now () | None -> 0.0 in
    ctx.evals <- ctx.evals + 1;
    let inputs = List.map (eval ctx) kids in
    let t = Kernels.eval_op ctx.env n.op inputs in
    (match ctx.guard with
     | Some g ->
       Budget.add_rows g (Table.nrows t);
       if Budget.wants_bytes g then
         Budget.add_bytes g (Table.estimated_bytes t)
     | None -> ());
    (match ctx.profile with
     | Some p ->
       let label = if n.label = "" then op_symbol n.op else n.label in
       let dt = now () -. t0 in
       Profile.add p label dt;
       Profile.add_node p n.id label dt
     | None -> ());
    (match ctx.mode with
     | Dag -> Hashtbl.add ctx.cache n.id t
     | Tree -> ());
    t

(* Evaluate a whole plan against a fresh context. *)
let run ?profile ?guard ?step_impl ?mode store root =
  let ctx = create ?profile ?guard ?step_impl ?mode store in
  eval ctx root

(* Primitive semantics, re-exported for the interpreter and tests. *)
let atomize = Kernels.atomize
let apply1 = Kernels.apply1
let apply2 = Kernels.apply2
let apply3 = Kernels.apply3
