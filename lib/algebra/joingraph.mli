(** Join-graph isolation: the DAG-level rules that peel value joins out
    of the iteration scaffold, plus join-graph extraction for plan
    annotations and benchmarks.

    The rules run inside {!Rewrite}'s fixpoint (when its
    [join_isolation] switch is on) and synthesize the
    {!Plan.op.Semijoin} / {!Plan.op.Antijoin} operators from the
    count-then-filter scaffolds loop-lifting emits for
    [where empty(for ...)] and [some ... satisfies] existentials:

    {ul
    {- ["jg-select-const"] — a selection over its own attached boolean
       constant keeps every row ([true]: the attach is returned as-is) or
       none ([false]: the empty relation — subtree pruning under the
       XQuery 2.3.4 error latitude CDA's pushdown already uses);}
    {- ["jg-empty-prune"] — emptiness propagates through row-wise
       operators and join family members (an antijoin against an empty
       right side is its left input, unchanged);}
    {- both pruning rules refuse to discard a subtree containing a
       required-check operator (singleton-cardinality checks, casts,
       [fn:error], division, [A_the]): those errors are demanded by
       function semantics, beyond the 2.3.4 latitude;}
    {- ["jg-union-empty"] — appending an empty side is the identity;}
    {- ["jg-semijoin-synthesis"] —
       [distinct(project_L(join))] with all of [L] from the left side
       becomes [distinct(project_L(semijoin))], bit-identical in row
       order;}
    {- ["jg-semijoin-dedup"] — a [Distinct] under a semi/anti-join's
       right input is dead work: membership ignores multiplicity.}} *)

(** The rule names above, in reporting order. *)
val rules : string list

(** One rewrite attempt on an operator whose children the rewriter has
    already rebuilt. [schema_of] is the memoized static-schema analysis;
    [shared] says whether a node has more than one parent in the plan
    entering the pass (a shared node survives a prune through its other
    reference, so its required checks still run); [fire] the rule
    counter. [None]: no rule applies. *)
val try_rule :
  Plan.builder ->
  schema_of:(Plan.node -> Set.Make(String).t) ->
  shared:(Plan.node -> bool) ->
  fire:(string -> unit) ->
  Plan.op ->
  Plan.node option

(** {2 Join-graph extraction} *)

(** The shape of a plan's join graph: vertices are the non-join operand
    subplans feeding join operators (iteration-independent table
    expressions, shared nodes counted once), edges its value predicates
    (a Cross contributes an operator but no edge). *)
type summary = {
  vertices : int;
  edges : int;
  equijoins : int;
  thetajoins : int;
  semijoins : int;
  antijoins : int;
  crosses : int;
}

val summary : Plan.node -> summary

(** ["5 vertices, 4 edges (2 ⋈, 1 θ, 1 ⋉, 0 ▷, 0 ×)"] *)
val summary_to_string : summary -> string
