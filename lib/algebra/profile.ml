(* Per-operator wall-clock profiling, the instrument behind Table 2 of the
   paper (the Q11 execution-time breakdown). The compiler labels plan nodes
   with the source sub-expression they implement; the executor adds the
   local evaluation time of every node to its label's bucket. *)

(* Per-unique-plan-node attribution, keyed by the node's hash-cons id: in
   DAG evaluation each node appears once; a tree-walking evaluation of a
   shared plan accumulates [evals > 1] on the shared nodes. *)
type node_stat = {
  nlabel : string;
  mutable evals : int;
  mutable seconds : float;
}

(* Physical-executor counters: how much work the typed/selection-vector
   machinery did and, more importantly, how much it avoided. *)
type phys = {
  mutable kernels : int;      (* physical kernel invocations *)
  mutable fused_ops : int;    (* logical operators folded into fused kernels *)
  mutable rows_in : int;      (* input rows across all kernel invocations *)
  mutable rows_out : int;     (* output rows across all kernel invocations *)
  mutable mat_avoided : int;  (* results delivered as a selection vector /
                                 const / seq instead of materialized rows *)
  mutable mat_forced : int;   (* batches boxed back to tables at pipeline
                                 breakers or for a boxed-fallback kernel *)
  mutable retypes : int;      (* Mixed -> typed column conversions *)
  mutable build_flips : int;  (* joins executed with the hash built on the
                                 (estimated-smaller) left side *)
  mutable sorts_elided : int; (* interior % nodes rewritten away because the
                                 required order was proved to already hold *)
  mutable sorts_to_merges : int; (* % sorts degraded to k-way run merges of
                                    piecewise-sorted input *)
  mutable root_sort_elided : int; (* root sort-on-pos skipped: the plan
                                     proved pos-order *)
  mutable code_preds : int;   (* predicates translated to dictionary codes
                                 and evaluated as integer compares *)
  mutable bulk_decodes : int; (* rows decoded through the store's bulk
                                 range accessors *)
  mutable late_materializations : int; (* code-carrying columns expanded
                                          to strings at pipeline breakers
                                          or for a consumer that needs
                                          the text *)
}

(* A profile may be observed while a morsel-parallel query is running
   (e.g. a monitoring domain rendering [pp]), and nothing stops a caller
   from sharing one profile across concurrent evaluations, so every
   mutation and every aggregating read is serialized by [mu]. The
   parallel executor itself keeps all counting on the coordinating
   domain — that, not the mutex, is what makes the counter *values*
   bit-identical to serial mode; the mutex makes any remaining
   concurrent use race-free rather than silently lossy. *)
type t = {
  mu : Mutex.t;
  buckets : (string, float ref) Hashtbl.t;
  nodes : (int, node_stat) Hashtbl.t;
  phys : phys;
}

let create () =
  { mu = Mutex.create ();
    buckets = Hashtbl.create 32;
    nodes = Hashtbl.create 64;
    phys =
      { kernels = 0; fused_ops = 0; rows_in = 0; rows_out = 0;
        mat_avoided = 0; mat_forced = 0; retypes = 0; build_flips = 0;
        sorts_elided = 0; sorts_to_merges = 0; root_sort_elided = 0;
        code_preds = 0; bulk_decodes = 0; late_materializations = 0 } }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v -> Mutex.unlock t.mu; v
  | exception e -> Mutex.unlock t.mu; raise e

let phys t = t.phys

let add_kernel t ~fused ~rows_in ~rows_out =
  locked t (fun () ->
      let p = t.phys in
      p.kernels <- p.kernels + 1;
      p.fused_ops <- p.fused_ops + fused;
      p.rows_in <- p.rows_in + rows_in;
      p.rows_out <- p.rows_out + rows_out)

let count_mat_avoided t =
  locked t (fun () -> t.phys.mat_avoided <- t.phys.mat_avoided + 1)

let count_mat_forced t =
  locked t (fun () -> t.phys.mat_forced <- t.phys.mat_forced + 1)

let count_retype t =
  locked t (fun () -> t.phys.retypes <- t.phys.retypes + 1)

let count_build_flip t =
  locked t (fun () -> t.phys.build_flips <- t.phys.build_flips + 1)

let add_sorts_elided t k =
  locked t (fun () -> t.phys.sorts_elided <- t.phys.sorts_elided + k)

let count_sort_merge t =
  locked t (fun () -> t.phys.sorts_to_merges <- t.phys.sorts_to_merges + 1)

let count_root_sort_elided t =
  locked t (fun () -> t.phys.root_sort_elided <- t.phys.root_sort_elided + 1)

let count_code_pred t =
  locked t (fun () -> t.phys.code_preds <- t.phys.code_preds + 1)

let add_bulk_decodes t k =
  locked t (fun () -> t.phys.bulk_decodes <- t.phys.bulk_decodes + k)

let count_late_mat t =
  locked t (fun () ->
      t.phys.late_materializations <- t.phys.late_materializations + 1)

let add t label seconds =
  locked t (fun () ->
      match Hashtbl.find_opt t.buckets label with
      | Some r -> r := !r +. seconds
      | None -> Hashtbl.add t.buckets label (ref seconds))

let add_node t id label seconds =
  locked t (fun () ->
      match Hashtbl.find_opt t.nodes id with
      | Some s ->
        s.evals <- s.evals + 1;
        s.seconds <- s.seconds +. seconds
      | None -> Hashtbl.add t.nodes id { nlabel = label; evals = 1; seconds })

(* Unlocked internals, composed under a single lock by [pp]. *)

let unique_nodes_u t = Hashtbl.length t.nodes

let node_evals_u t = Hashtbl.fold (fun _ s acc -> acc + s.evals) t.nodes 0

let node_rows_u t =
  Hashtbl.fold (fun id s acc -> (id, s.nlabel, s.evals, s.seconds) :: acc)
    t.nodes []
  |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare b a)

let total_u t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.buckets 0.0

(* Buckets sorted by descending time. *)
let rows_u t =
  let l = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.buckets [] in
  List.sort (fun (_, a) (_, b) -> Float.compare b a) l

let unique_nodes t = locked t (fun () -> unique_nodes_u t)
let node_evals t = locked t (fun () -> node_evals_u t)
let node_rows t = locked t (fun () -> node_rows_u t)
let total t = locked t (fun () -> total_u t)
let rows t = locked t (fun () -> rows_u t)

(* Render in the style of the paper's Table 2: time [ms] and % of total. *)
let pp fmt t =
  let tot, rws, nnodes, nevals, p =
    locked t (fun () ->
        ( total_u t, rows_u t, unique_nodes_u t, node_evals_u t,
          { t.phys with kernels = t.phys.kernels } ))
  in
  Format.fprintf fmt "%-42s %12s %6s@." "Bucket" "Time [ms]" "%";
  List.iter
    (fun (label, secs) ->
       let pct = if tot > 0.0 then 100.0 *. secs /. tot else 0.0 in
       Format.fprintf fmt "%-42s %12.1f %5.1f%%@." label (secs *. 1000.0) pct)
    rws;
  Format.fprintf fmt "%-42s %12.1f@." "total" (tot *. 1000.0);
  if nnodes > 0 then
    Format.fprintf fmt "%d unique plan nodes, %d evaluations@." nnodes nevals;
  if p.kernels > 0 then begin
    Format.fprintf fmt
      "physical: %d kernels (%d logical ops fused away), %d rows in, \
       %d rows out@."
      p.kernels p.fused_ops p.rows_in p.rows_out;
    Format.fprintf fmt
      "physical: %d materializations avoided, %d forced, %d columns retyped@."
      p.mat_avoided p.mat_forced p.retypes;
    if p.build_flips > 0 then
      Format.fprintf fmt "physical: %d joins built their hash on the left@."
        p.build_flips
  end;
  if p.sorts_elided > 0 || p.sorts_to_merges > 0 || p.root_sort_elided > 0
  then
    Format.fprintf fmt
      "order: %d sorts elided, %d degraded to merges, root sort %s@."
      p.sorts_elided p.sorts_to_merges
      (if p.root_sort_elided > 0 then "elided" else "kept");
  if p.code_preds > 0 || p.bulk_decodes > 0 || p.late_materializations > 0
  then
    Format.fprintf fmt
      "compressed: %d code predicates, %d rows bulk-decoded, \
       %d late materializations@."
      p.code_preds p.bulk_decodes p.late_materializations

let to_string t = Format.asprintf "%a" pp t
