(** Rendering of plan DAGs: ASCII trees with sharing references (a node
    already printed appears as [^id]) and Graphviz dot. Used by the CLI's
    plan subcommand and the Figure 6/9/10 benchmarks. *)

(** One-line description of a node, in the paper's notation:
    ["%_{pos:⟨item⟩‖iter}"], ["⊘_{descendant::item}"], ... *)
val describe : Plan.node -> string

(** [annot] appends a per-node note (e.g. inferred properties) after the
    operator description. *)
val to_tree : ?annot:(Plan.node -> string option) -> Plan.node -> string

val to_dot : Plan.node -> string

(** ["N operators (R rownum %, I rowid #)"] — the plan-size metric of
    Figures 6/9 and the 235→141 comparison. *)
val summary : Plan.node -> string

val prim1_name : Plan.prim1 -> string
val prim2_name : Plan.prim2 -> string
