(* Property- and cardinality-aware logical rewriting, between column
   dependency analysis and lowering.

   CDA (Icols) prunes what order indifference makes dead; this pass
   reshapes what is left, in the spirit of the classical rewrites
   Pathfinder ran before lowering and of "XQuery Join Graph Isolation":

     - selections migrate through Attach/Fun/Project/Distinct and into
       the join/cross side that owns their column;
     - error-free Fun/Attach operators and projections distribute over
       Cross, so value computations run per input row instead of per
       pair;
     - sigma over an equality/comparison over a cross product becomes a
       theta join (the physical layer's hash / sort paths then fire
       instead of the quadratic cross-then-filter);
     - a join whose condition touches only one factor of a Cross operand
       commutes with the Cross — the rewrite that actually removes the
       quadratic iteration spaces loop-lifting builds for existential
       predicates;
     - join inputs are reordered so the hash build side is the smaller
       one (cardinality estimates from [Plan.Card]);
     - the join-graph isolation rules ([Joingraph]) collapse the
       count-then-filter scaffolds of where-empty / quantifier
       existentials into Semijoin/Antijoin operators.

   Soundness and row order. Every rule preserves the result multiset
   exactly. The first three groups also preserve row order bit-for-bit
   (filtering and per-row computation commute with append/cross order;
   a theta join enumerates pairs in the same left-major order the
   filtered cross did). The last two change row order, so they are gated
   on an order-insensitivity analysis: a node may be reordered only when
   EVERY path from it to the root passes through an operator that
   provably erases row order (a Distinct, a Semijoin/Antijoin right
   input, an order-indifferent aggregate) before anything order-sensitive
   (Rownum's tie-break, Rowid's numbering, node construction) sees it.
   This is plan-internal order indifference: it holds in ordering mode
   ordered too, no fn:unordered context needed.

   Errors: rules never evaluate a row-wise operator over more rows than
   the original plan did. Selections pushed below a Fun filter rows
   before the Fun sees them, which can only suppress dynamic errors —
   the latitude XQuery 2.3.4 grants and that CDA's existing select
   pushdown already uses. Fun pushdown through Cross would evaluate the
   Fun on rows the product may have dropped (an empty other side), so it
   is restricted to primitives that cannot raise. *)

module SSet = Set.Make (String)

(* ------------------------------------------------------------- analysis *)

(* Static schema of a (possibly freshly built) node, memoized by id. *)
let make_schema_of () =
  let memo : (int, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  let rec schema_of (n : Plan.node) =
    match Hashtbl.find_opt memo n.Plan.id with
    | Some s -> s
    | None ->
      let s =
        match n.Plan.op with
        | Plan.Lit { schema; _ } -> SSet.of_list (Array.to_list schema)
        | Plan.Project { cols; _ } -> SSet.of_list (List.map fst cols)
        | Plan.Select { input; _ } | Plan.Distinct { input } -> schema_of input
        | Plan.Semijoin { left; _ } | Plan.Antijoin { left; _ } ->
          schema_of left
        | Plan.Join { left; right; _ } | Plan.Thetajoin { left; right; _ }
        | Plan.Cross { left; right } ->
          SSet.union (schema_of left) (schema_of right)
        | Plan.Union { left; _ } -> schema_of left
        | Plan.Rownum { input; res; _ } | Plan.Rowid { input; res }
        | Plan.Attach { input; res; _ } | Plan.Fun1 { input; res; _ }
        | Plan.Fun2 { input; res; _ } | Plan.Fun3 { input; res; _ } ->
          SSet.add res (schema_of input)
        | Plan.Aggr { res; part; _ } ->
          (match part with
           | Some p -> SSet.of_list [ p; res ]
           | None -> SSet.singleton res)
        | Plan.Step _ | Plan.Doc _ | Plan.Elem _ | Plan.Attr _
        | Plan.Textnode _ | Plan.Commentnode _ | Plan.Pinode _
        | Plan.Id_lookup _ ->
          SSet.of_list [ "iter"; "item" ]
        | Plan.Range _ | Plan.Textify _ ->
          SSet.of_list [ "iter"; "pos"; "item" ]
      in
      Hashtbl.replace memo n.Plan.id s;
      s
  in
  schema_of

(* Top-down order-insensitivity: true for a node iff every consumer path
   to the root erases its row order. Meet over parent edges (a single
   order-sensitive consumer pins the node).

   The root itself is insensitive by default: every executor in this
   engine extracts the result sequence by sorting the final iter|pos|item
   table on pos (order is encoded in data, not in physical row order —
   the paper's thesis, made literal). A consumer that does read the final
   table in physical row order must pass ~root_ordered:true. *)
let order_insensitive ?(root_ordered = false) (root : Plan.node) :
    Plan.node -> bool =
  let insens : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let note (c : Plan.node) v =
    Hashtbl.replace insens c.Plan.id
      (v && Option.value ~default:true (Hashtbl.find_opt insens c.Plan.id))
  in
  Hashtbl.replace insens root.Plan.id (not root_ordered);
  List.iter
    (fun (n : Plan.node) ->
       let pi =
         Option.value ~default:false (Hashtbl.find_opt insens n.Plan.id)
       in
       match n.Plan.op with
       (* membership tests: right-side order and multiplicity invisible *)
       | Plan.Semijoin { left; right; _ } | Plan.Antijoin { left; right; _ }
         ->
         note left pi;
         note right true
       (* order producers observe their input order (tie-breaks, dense
          numbering) *)
       | Plan.Rownum { input; _ } | Plan.Rowid { input; _ } ->
         note input false
       | Plan.Aggr { input; agg; _ } -> (
         match agg with
         (* order-indifferent aggregates; A_the demands a singleton *)
         | Plan.A_count | Plan.A_sum | Plan.A_min | Plan.A_max | Plan.A_avg
         | Plan.A_the ->
           note input pi
         (* first-item EBV, separator joining: group order observable *)
         | Plan.A_ebv | Plan.A_str_join _ -> note input false)
       (* constructed content order is document order: keep it *)
       | Plan.Elem _ | Plan.Attr _ | Plan.Textnode _ | Plan.Commentnode _
       | Plan.Pinode _ | Plan.Textify _ | Plan.Id_lookup _ ->
         List.iter (fun c -> note c false) (Plan.children n.Plan.op)
       (* row-wise / structural operators pass their own status down *)
       | op -> List.iter (fun c -> note c pi) (Plan.children op))
    (List.rev (Plan.topo_order root));
  fun n ->
    Option.value ~default:false (Hashtbl.find_opt insens n.Plan.id)

(* ----------------------------------------------------------------- rules *)

(* Primitives that cannot raise a dynamic error, on any input row: only
   these may be evaluated on rows the original plan might never have
   materialized (Fun pushdown through Cross). *)
let prim1_total : Plan.prim1 -> bool = function
  | Plan.P_atomize | Plan.P_string | Plan.P_cast_str
  | Plan.P_normalize_space | Plan.P_upper | Plan.P_lower | Plan.P_serialize
  | Plan.P_is_node | Plan.P_castable _ | Plan.P_instance_item _ ->
    true
  | _ -> false

let mirror_cmp : Plan.prim2 -> Plan.prim2 = function
  | Plan.P_lt -> Plan.P_gt
  | Plan.P_le -> Plan.P_ge
  | Plan.P_gt -> Plan.P_lt
  | Plan.P_ge -> Plan.P_le
  | other -> other

let is_cmp : Plan.prim2 -> bool = function
  | Plan.P_eq | Plan.P_ne | Plan.P_lt | Plan.P_le | Plan.P_gt | Plan.P_ge ->
    true
  | _ -> false

type stats = {
  rounds : int;
  ops_before : int;
  ops_after : int;
  fires : (string * int) list;  (* rule name -> fire count, sorted *)
}

let empty_stats =
  { rounds = 0; ops_before = 0; ops_after = 0; fires = [] }

let total_fires s = List.fold_left (fun acc (_, k) -> acc + k) 0 s.fires

(* One bottom-up rebuild pass. [fire] counts rule applications.
   [ord] is the ordering-property analyzer for "sort-elision" (None when
   order-property reasoning is disabled); it is created fresh per pass so
   its facts describe the pass's own rebuilt nodes. [jg] enables the
   join-graph isolation rules ([Joingraph]), consulted first: their
   patterns (sigma over its own attached constant, Distinct over a
   left-only projection of a join, ...) are disjoint from the arms below,
   so the order only decides who answers, never what. *)
let rewrite_once b ~est ~fire ~ord ~jg (root : Plan.node) : Plan.node =
  let schema_of = make_schema_of () in
  let insensitive = order_insensitive root in
  let mapped : (int, Plan.node) Hashtbl.t = Hashtbl.create 64 in
  let owns side col = SSet.mem col (schema_of side) in
  (* pre-pass parent counts, for the Joingraph prune gate: a node with
     two parents entering the pass keeps its other reference when one is
     discarded. Nodes created during the pass miss the table and count
     as unshared — erring toward vetoing a prune. *)
  let parents : (int, int) Hashtbl.t = Hashtbl.create 64 in
  if jg then
    List.iter
      (fun (n : Plan.node) ->
         List.iter
           (fun (c : Plan.node) ->
              Hashtbl.replace parents c.Plan.id
                (1 + Option.value ~default:0
                       (Hashtbl.find_opt parents c.Plan.id)))
           (Plan.children n.Plan.op))
      (Plan.topo_order root);
  let shared (n : Plan.node) =
    Option.value ~default:0 (Hashtbl.find_opt parents n.Plan.id) > 1
  in
  List.iter
    (fun (orig : Plan.node) ->
       let op' =
         Plan.map_children
           (fun c -> Hashtbl.find mapped c.Plan.id)
           orig.Plan.op
       in
       let keep op = Plan.mk b op in
       let joingraph_result =
         if jg then Joingraph.try_rule b ~schema_of ~shared ~fire op'
         else None
       in
       let result =
         match joingraph_result with
         | Some n -> n
         | None ->
         match op' with
         (* -- selection pushdown --------------------------------------- *)
         | Plan.Select { input; col } -> (
           match input.Plan.op with
           | Plan.Attach { input = i; res; value } when res <> col ->
             fire "select-pushdown";
             keep
               (Plan.Attach
                  { input = keep (Plan.Select { input = i; col }); res; value })
           | Plan.Fun1 { input = i; res; f; arg } when res <> col ->
             fire "select-pushdown";
             keep
               (Plan.Fun1
                  { input = keep (Plan.Select { input = i; col });
                    res; f; arg })
           | Plan.Fun3 { input = i; res; f; arg1; arg2; arg3 }
             when res <> col ->
             fire "select-pushdown";
             keep
               (Plan.Fun3
                  { input = keep (Plan.Select { input = i; col });
                    res; f; arg1; arg2; arg3 })
           | Plan.Project { input = i; cols } when List.mem_assoc col cols ->
             fire "select-pushdown";
             let src = List.assoc col cols in
             keep
               (Plan.Project
                  { input = keep (Plan.Select { input = i; col = src });
                    cols })
           | Plan.Distinct { input = i } ->
             fire "select-pushdown";
             keep
               (Plan.Distinct { input = keep (Plan.Select { input = i; col }) })
           | Plan.Semijoin { left; right; on } when owns left col ->
             fire "select-pushdown";
             keep
               (Plan.Semijoin
                  { left = keep (Plan.Select { input = left; col });
                    right; on })
           | Plan.Antijoin { left; right; on } when owns left col ->
             fire "select-pushdown";
             keep
               (Plan.Antijoin
                  { left = keep (Plan.Select { input = left; col });
                    right; on })
           | Plan.Union { left; right } ->
             fire "select-pushdown";
             keep
               (Plan.Union
                  { left = keep (Plan.Select { input = left; col });
                    right = keep (Plan.Select { input = right; col }) })
           | Plan.Cross { left; right }
             when owns left col && not (owns right col) ->
             fire "select-pushdown";
             keep
               (Plan.Cross
                  { left = keep (Plan.Select { input = left; col }); right })
           | Plan.Cross { left; right }
             when owns right col && not (owns left col) ->
             fire "select-pushdown";
             keep
               (Plan.Cross
                  { left; right = keep (Plan.Select { input = right; col }) })
           | Plan.Join { left; right; lcol; rcol }
             when owns left col && not (owns right col) ->
             fire "select-pushdown";
             keep
               (Plan.Join
                  { left = keep (Plan.Select { input = left; col });
                    right; lcol; rcol })
           | Plan.Join { left; right; lcol; rcol }
             when owns right col && not (owns left col) ->
             fire "select-pushdown";
             keep
               (Plan.Join
                  { left;
                    right = keep (Plan.Select { input = right; col });
                    lcol; rcol })
           (* -- join synthesis: sigma over cmp over cross -------------- *)
           | Plan.Fun2 { input = j; res; f; arg1; arg2 }
             when res = col && is_cmp f -> (
             match j.Plan.op with
             | Plan.Cross { left; right }
               when owns left arg1 && owns right arg2 ->
               fire "join-synthesis";
               let tj =
                 keep
                   (Plan.Thetajoin
                      { left; right; lcol = arg1; cmp = f; rcol = arg2 })
               in
               keep (Plan.Attach { input = tj; res = col; value = Value.Bool true })
             | Plan.Cross { left; right }
               when owns left arg2 && owns right arg1 ->
               fire "join-synthesis";
               let tj =
                 keep
                   (Plan.Thetajoin
                      { left; right; lcol = arg2; cmp = mirror_cmp f;
                        rcol = arg1 })
               in
               keep (Plan.Attach { input = tj; res = col; value = Value.Bool true })
             | _ -> keep op')
           | Plan.Fun2 { input = i; res; f; arg1; arg2 } when res <> col ->
             fire "select-pushdown";
             keep
               (Plan.Fun2
                  { input = keep (Plan.Select { input = i; col });
                    res; f; arg1; arg2 })
           | _ -> keep op')
         (* -- error-free Fun/Attach distribution over Cross ------------- *)
         | Plan.Attach { input; res; value } -> (
           match input.Plan.op with
           | Plan.Cross { left; right } when not (owns right res) ->
             fire "fun-pushdown";
             keep
               (Plan.Cross
                  { left = keep (Plan.Attach { input = left; res; value });
                    right })
           | _ -> keep op')
         | Plan.Fun1 { input; res; f; arg } when prim1_total f -> (
           match input.Plan.op with
           | Plan.Cross { left; right }
             when owns left arg && not (owns right res) ->
             fire "fun-pushdown";
             keep
               (Plan.Cross
                  { left = keep (Plan.Fun1 { input = left; res; f; arg });
                    right })
           | Plan.Cross { left; right }
             when owns right arg && not (owns left res) ->
             fire "fun-pushdown";
             keep
               (Plan.Cross
                  { left;
                    right = keep (Plan.Fun1 { input = right; res; f; arg }) })
           | _ -> keep op')
         (* -- projections: fuse, and split over Cross ------------------- *)
         | Plan.Project { input; cols } -> (
           match input.Plan.op with
           | Plan.Project { input = inner; cols = inner_cols }
             when List.for_all (fun (_, s) -> List.mem_assoc s inner_cols) cols
             ->
             fire "project-fuse";
             keep
               (Plan.Project
                  { input = inner;
                    cols =
                      List.map
                        (fun (nw, src) -> (nw, List.assoc src inner_cols))
                        cols })
           | Plan.Cross { left; right } ->
             let lcols =
               List.filter (fun (_, src) -> owns left src) cols
             in
             let rcols =
               List.filter (fun (_, src) -> not (owns left src)) cols
             in
             if lcols <> [] && rcols <> []
                && List.for_all (fun (_, src) -> owns right src) rcols
             then begin
               fire "project-split";
               keep
                 (Plan.Cross
                    { left = keep (Plan.Project { input = left; cols = lcols });
                      right =
                        keep (Plan.Project { input = right; cols = rcols }) })
             end
             else keep op'
           | _ -> keep op')
         (* -- join/cross commutation and input ordering ----------------- *)
         | Plan.Join { left; right; lcol; rcol } when insensitive orig -> (
           match (left.Plan.op, right.Plan.op) with
           | _, Plan.Cross { left = a; right = b2 } when owns a rcol ->
             fire "join-cross-elim";
             keep
               (Plan.Cross
                  { left = keep (Plan.Join { left; right = a; lcol; rcol });
                    right = b2 })
           | _, Plan.Cross { left = a; right = b2 } when owns b2 rcol ->
             fire "join-cross-elim";
             keep
               (Plan.Cross
                  { left = a;
                    right = keep (Plan.Join { left; right = b2; lcol; rcol })
                  })
           | Plan.Cross { left = a; right = b2 }, _ when owns a lcol ->
             fire "join-cross-elim";
             keep
               (Plan.Cross
                  { left = keep (Plan.Join { left = a; right; lcol; rcol });
                    right = b2 })
           | Plan.Cross { left = a; right = b2 }, _ when owns b2 lcol ->
             fire "join-cross-elim";
             keep
               (Plan.Cross
                  { left = a;
                    right = keep (Plan.Join { left = b2; right; lcol; rcol })
                  })
           | _ when est right > 2 * est left ->
             (* hash builds on the right: make the smaller side the build *)
             fire "join-swap";
             keep (Plan.Join { left = right; right = left; lcol = rcol; rcol = lcol })
           | _ -> keep op')
         | Plan.Thetajoin { left; right; lcol; cmp; rcol }
           when insensitive orig -> (
           match (left.Plan.op, right.Plan.op) with
           | _, Plan.Cross { left = a; right = b2 } when owns a rcol ->
             fire "join-cross-elim";
             keep
               (Plan.Cross
                  { left =
                      keep
                        (Plan.Thetajoin { left; right = a; lcol; cmp; rcol });
                    right = b2 })
           | _, Plan.Cross { left = a; right = b2 } when owns b2 rcol ->
             fire "join-cross-elim";
             keep
               (Plan.Cross
                  { left = a;
                    right =
                      keep
                        (Plan.Thetajoin { left; right = b2; lcol; cmp; rcol })
                  })
           | Plan.Cross { left = a; right = b2 }, _ when owns a lcol ->
             fire "join-cross-elim";
             keep
               (Plan.Cross
                  { left =
                      keep
                        (Plan.Thetajoin { left = a; right; lcol; cmp; rcol });
                    right = b2 })
           | Plan.Cross { left = a; right = b2 }, _ when owns b2 lcol ->
             fire "join-cross-elim";
             keep
               (Plan.Cross
                  { left = a;
                    right =
                      keep
                        (Plan.Thetajoin { left = b2; right; lcol; cmp; rcol })
                  })
           | _ when est right > 2 * est left ->
             fire "join-swap";
             keep
               (Plan.Thetajoin
                  { left = right; right = left; lcol = rcol;
                    cmp = mirror_cmp cmp; rcol = lcol })
           | _ -> keep op')
         (* -- sort elision: % whose order already holds becomes # ------- *)
         | Plan.Rownum { input; res; order; part = None }
           when (match ord with
                 | Some a -> Order.satisfies a input order
                 | None -> false) ->
           (* the input provably arrives sorted by [order] under
              compare_total; the sort comparator ends in a row-position
              tie-break, so the stable sort of an already-sorted input is
              the identity permutation and the rank column is exactly the
              1..n row stamp # produces — bit-identical, breaker-free,
              and ∥-eligible after lowering *)
           fire "sort-elision";
           keep (Plan.Rowid { input; res })
         | _ -> keep op'
       in
       if result.Plan.label = "" then Plan.set_label result orig.Plan.label;
       Hashtbl.replace mapped orig.Plan.id result)
    (Plan.topo_order root);
  Hashtbl.find mapped root.Plan.id

(* --------------------------------------------------------------- driver *)

let optimize ?(max_rounds = 50) ?(order_props = true)
  ?(join_isolation = true) ?stats:card_stats b
  (root : Plan.node) : Plan.node * stats =
  let est = Plan.Card.estimator ?stats:card_stats () in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let fire rule =
    Hashtbl.replace counts rule
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts rule))
  in
  let ops_before = Plan.count_ops root in
  let rec go i root =
    if i >= max_rounds then (root, i)
    else
      let ord = if order_props then Some (Order.make ()) else None in
      let root' = rewrite_once b ~est ~fire ~ord ~jg:join_isolation root in
      if root'.Plan.id = root.Plan.id then (root, i) else go (i + 1) root'
  in
  let root', rounds = go 0 root in
  let fires =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  (root', { rounds; ops_before; ops_after = Plan.count_ops root'; fires })
