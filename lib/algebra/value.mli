(** Item values stored in table cells: a pragmatic XDM subset.

    Integers, doubles (also standing in for xs:decimal), strings (also
    standing in for xs:untypedAtomic — atomizing a node of an untyped
    document yields a string), booleans, QNames and node references.

    Comparison and arithmetic implement the XQuery general-comparison
    coercions: an untyped (string) operand meeting a numeric operand is
    cast to xs:double; incompatible pairs raise dynamic errors; NaN makes
    every comparison false except [ne]. *)

type t =
  | Int of int
  | Dbl of float
  | Str of string
  | Bool of bool
  | Qname_v of Xmldb.Qname.t
  | Node of Xmldb.Node_id.t

(** "xs:integer", "node()" and friends, for error messages. *)
val type_name : t -> string

val is_node : t -> bool
val is_numeric : t -> bool

(** {2 Casts} (raising dynamic errors on failure) *)

val float_value : t -> float
val int_value : t -> int

(** The xs:boolean cast: boolean lexical forms only. *)
val bool_value : t -> bool

(** The effective boolean value of a singleton atomic: any non-empty
    string is true (nodes are the caller's business). *)
val ebv_atomic : t -> bool

(** XDM canonical-ish serialization of an atomic value; raises on nodes
    (their string value needs the store). *)
val to_string : t -> string

(** Parse an integer/decimal/INF/NaN lexical form. *)
val parse_number : string -> t option

(** {2 Total order} — a deterministic order across all values, used by
    sort/group/dedup operators. Numerics compare numerically with each
    other; otherwise by type rank, then value. Not an XQuery-visible
    order. *)

val compare_total : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** {2 XQuery comparisons} with general-comparison coercion *)

type cmp_result = C_lt | C_eq | C_gt | C_unordered

val compare_xq : t -> t -> cmp_result

val cmp_eq : t -> t -> bool
val cmp_ne : t -> t -> bool
val cmp_lt : t -> t -> bool
val cmp_le : t -> t -> bool
val cmp_gt : t -> t -> bool
val cmp_ge : t -> t -> bool

(** {2 Arithmetic} — untyped operands cast to xs:double; [Int op Int]
    stays integral where exact ([div] may return a double). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val idiv : t -> t -> t
val modulo : t -> t -> t
val neg : t -> t

(** The numeric reading of a value if it has one (numerics themselves,
    or strings that parse as numbers) — the fn:min/fn:max coercion
    helper. *)
val numeric_view : t -> t option

val pp : Format.formatter -> t -> unit

(** Rough per-cell memory footprint in bytes (the currency of
    {!Basis.Budget} byte accounting) — an estimate, not an exact size. *)
val estimated_bytes : t -> int
