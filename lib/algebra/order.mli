(** Ordering-property inference over the logical plan DAG.

    Complements the value-domain lattice (const/dense/key) with the
    order half of the paper's story: which (column, direction) sort
    orders does each node's output {e already} satisfy, in physical row
    order, under {!Value.compare_total}?

    Facts are derived only from unconditional kernel invariants — the
    staircase join emits document order, [#] stamps a sorted key, joins
    probe left-major, Union appends — never from the query's ordering
    mode. Physical row order is deterministic and identical across the
    boxed executor, the typed physical executor, and every morsel/job
    setting, so one analysis covers every backend.

    Consumers: the rewriter elides [%] (Rownum) nodes whose required
    order is already satisfied; the engine elides the root sort-on-pos
    when the optimized plan proves [pos]-order; lowering degrades
    remaining sorts to k-way merges when {!sorted_runs} bounds the run
    count. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string

(** A sort requirement / guarantee: lexicographic, non-strict, w.r.t.
    {!Value.compare_total}. *)
type req = (Plan.col * Plan.dir) list

type props = {
  facts : req list;
      (** each: rows are non-strictly lex-sorted by these keys *)
  keys : SSet.t;  (** columns with pairwise-distinct values *)
  consts : Value.t SMap.t;
      (** columns equal to one value on every row (order-neutral) *)
  one_row : bool;  (** at most one row: every ordering holds *)
}

val empty : props

(** Memoizing analysis over one DAG (memo keyed by node id, so it is
    also valid for nodes built after the analyzer). *)
type analyzer = Plan.node -> props

val make : unit -> analyzer

(** [satisfies a n req]: does [n]'s output provably arrive sorted by
    [req]? Constant columns are discounted; a matched key column pins
    the remaining requirement. *)
val satisfies : analyzer -> Plan.node -> req -> bool

(** [sorted_runs a n req]: the node's output is a concatenation of at
    most [k] runs each sorted by [req]. [Some 1] means globally sorted;
    [Some k], k > 1 licenses a k-way merge in place of a full sort.
    Unions produce runs; subsequence and column-appending operators pass
    the count through. Capped at 64. *)
val sorted_runs : analyzer -> Plan.node -> req -> int option

(** Render a requirement as ["pos↑,item↓"] — shared by plan dumps and
    tests. *)
val req_to_string : req -> string

(** Compact per-node annotation for plan output: ["ord:1row"],
    ["ord:iter↑,item↑"], or [""] when nothing is known. *)
val annotate : analyzer -> Plan.node -> string
