(** Typed columns for the physical plan layer.

    The logical {!Table} stores every cell as a boxed {!Value.t}; a
    [Column.t] stores a whole column as one flat array of its dynamic
    type — machine ints, floats, byte-wide booleans, string-pool ids, or
    (frag, pre) node-id pairs — with [Mixed] as the loss-free fallback
    for heterogeneous columns. [Const] (one value, any length) and [Seq]
    (i -> start + i, MonetDB's void) encode Attach and Rowid results
    without materializing anything. *)

type ty = T_int | T_dbl | T_bool | T_str | T_node | T_mixed

val ty_name : ty -> string
val ty_of_value : Value.t -> ty

(** The join of two column types: equal, or [T_mixed]. *)
val ty_union : ty -> ty -> ty

type t =
  | Ints of int array
  | Dbls of float array
  | Bools of Bytes.t  (** one byte per row, ['\000'] = false *)
  | Strs of { pool : Basis.String_pool.t; ids : int array }
  | Codes of {
      frag : Xmldb.Doc_store.frag;
      pool : Basis.String_pool.t;
      codes : int array;
    }
      (** A string column kept as its owning fragment's local dictionary
          codes ({!Xmldb.Doc_store.text_code_at}): the compressed-execution
          carrier. Within one fragment, code equality coincides with
          string equality, so equality predicates run as integer compares;
          [get]/{!to_values} materialize through the store's text [pool]
          (late materialization). Codes from different fragments are not
          comparable — {!append} degrades across fragments. *)
  | Nodes of { frag : int array; pre : int array }
  | Const of { v : Value.t; n : int }  (** [v], repeated [n] times *)
  | Seq of { start : int; n : int }  (** [Int (start + i)] *)
  | Mixed of Value.t array

val length : t -> int
val ty_of : t -> ty

(** Box row [i]. *)
val get : t -> int -> Value.t

val const : Value.t -> int -> t
val seq : start:int -> int -> t

(** Infer the tightest typed representation of a boxed column; falls
    back to sharing the array as [Mixed] (zero copy) on heterogeneity.
    Strings are interned into [pool]. *)
val of_values : pool:Basis.String_pool.t -> Value.t array -> t

(** Box the whole column. A [Mixed] column returns its array shared —
    callers must not mutate, same contract as {!Table.col}. *)
val to_values : t -> Value.t array

(** Try to tighten a [Mixed] column; others pass through unchanged. *)
val retype : pool:Basis.String_pool.t -> t -> t

(** Select rows by index, preserving the typed representation
    ([Const] stays const; [Seq] degrades to [Ints]). *)
val gather : t -> int array -> t

(** Disjoint-union append; mismatched representations degrade to
    [Mixed]. [Strs] stay typed only when both share one pool. *)
val append : t -> t -> t

(** Estimated footprint, the {!Basis.Budget} byte currency. *)
val estimated_bytes : t -> int

(** One-line summary, e.g. ["int[42] const"], for plan dumps. *)
val describe : t -> string
