(** Per-operator wall-clock profiling — the instrument behind the paper's
    Table 2 (the Q11 execution-time breakdown). The compiler labels plan
    nodes with the sub-expression category they implement; the executor
    adds each node's local evaluation time to its label's bucket. *)

type t

(** Accumulation is race-free: every mutator and aggregating read holds
    an internal lock, so a profile shared across domains (or rendered
    while a query runs) never loses increments. The morsel-parallel
    executor still counts only on its coordinating domain, which is what
    keeps counter values bit-identical between serial and parallel
    runs. *)

(** Physical-executor counters: work the typed/selection-vector machinery
    did — and, more importantly, avoided. All zero unless the physical
    backend ran with this profile. *)
type phys = {
  mutable kernels : int;      (** physical kernel invocations *)
  mutable fused_ops : int;    (** logical operators folded into fused kernels *)
  mutable rows_in : int;      (** input rows summed over kernel invocations *)
  mutable rows_out : int;     (** output rows summed over kernel invocations *)
  mutable mat_avoided : int;  (** results delivered as selection vector /
                                  const / seq instead of materialized rows *)
  mutable mat_forced : int;   (** batches boxed back to tables at pipeline
                                  breakers or for boxed-fallback kernels *)
  mutable retypes : int;      (** Mixed → typed column conversions *)
  mutable build_flips : int;
      (** joins executed with the hash built on the (estimated-smaller)
          left side *)
  mutable sorts_elided : int;
      (** interior [%] nodes rewritten away because the required order
          was proved to already hold ({!Order}) *)
  mutable sorts_to_merges : int;
      (** [%] sorts degraded to k-way run merges of piecewise-sorted
          input *)
  mutable root_sort_elided : int;
      (** root sort-on-pos skipped because the plan proved pos-order *)
  mutable code_preds : int;
      (** predicates translated to per-fragment dictionary codes and
          evaluated as integer compares (no string materialization) *)
  mutable bulk_decodes : int;
      (** rows decoded through {!Xmldb.Doc_store}'s bulk range accessors
          (batched staircase scans and packed-column windows) *)
  mutable late_materializations : int;
      (** code-carrying columns expanded to strings at pipeline breakers
          or for consumers that need the text *)
}

val create : unit -> t

val phys : t -> phys

(** One physical kernel invocation: [fused] logical ops it covered,
    input and output row counts. *)
val add_kernel : t -> fused:int -> rows_in:int -> rows_out:int -> unit

val count_mat_avoided : t -> unit
val count_mat_forced : t -> unit
val count_retype : t -> unit
val count_build_flip : t -> unit

(** [add_sorts_elided t k] records [k] interior [%] nodes the rewriter
    replaced with [#] stamps for the profiled query. *)
val add_sorts_elided : t -> int -> unit

val count_sort_merge : t -> unit
val count_root_sort_elided : t -> unit

val count_code_pred : t -> unit

(** [add_bulk_decodes t k] folds [k] bulk-decoded rows (a
    {!Xmldb.Doc_store.Stats} delta) into the profile. *)
val add_bulk_decodes : t -> int -> unit

val count_late_mat : t -> unit

(** [add t label seconds] accumulates into [label]'s bucket. *)
val add : t -> string -> float -> unit

(** [add_node t id label seconds] attributes one evaluation of the plan
    node with hash-cons id [id]. Under DAG evaluation every node is added
    once; tree evaluation accumulates repeat counts on shared nodes. *)
val add_node : t -> int -> string -> float -> unit

(** Distinct plan nodes that were evaluated at least once. *)
val unique_nodes : t -> int

(** Total node evaluations ([= unique_nodes] under DAG evaluation). *)
val node_evals : t -> int

(** Per-node attribution, most expensive first: (id, label, evals, seconds). *)
val node_rows : t -> (int * string * int * float) list

val total : t -> float

(** Buckets with their accumulated seconds, largest first. *)
val rows : t -> (string * float) list

(** Render in the style of the paper's Table 2: time in ms and % share. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
