(** Per-operator wall-clock profiling — the instrument behind the paper's
    Table 2 (the Q11 execution-time breakdown). The compiler labels plan
    nodes with the sub-expression category they implement; the executor
    adds each node's local evaluation time to its label's bucket. *)

type t

val create : unit -> t

(** [add t label seconds] accumulates into [label]'s bucket. *)
val add : t -> string -> float -> unit

(** [add_node t id label seconds] attributes one evaluation of the plan
    node with hash-cons id [id]. Under DAG evaluation every node is added
    once; tree evaluation accumulates repeat counts on shared nodes. *)
val add_node : t -> int -> string -> float -> unit

(** Distinct plan nodes that were evaluated at least once. *)
val unique_nodes : t -> int

(** Total node evaluations ([= unique_nodes] under DAG evaluation). *)
val node_evals : t -> int

(** Per-node attribution, most expensive first: (id, label, evals, seconds). *)
val node_rows : t -> (int * string * int * float) list

val total : t -> float

(** Buckets with their accumulated seconds, largest first. *)
val rows : t -> (string * float) list

(** Render in the style of the paper's Table 2: time in ms and % share. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
