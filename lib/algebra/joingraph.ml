(* Join-graph isolation: peel value joins out of the iteration scaffold.

   Loop-lifting encodes every FLWOR as iter-scaffolding — maps between
   iteration spaces, presence unions, count-then-filter existentials.
   "XQuery Join Graph Isolation" (Grust/Mayr/Rittinger) observes that the
   value joins buried in that scaffold form a small graph (vertices:
   iteration-independent table expressions; edges: value predicates) that
   can be peeled out and re-planned as hash joins. The source paper's
   order indifference is the license: the scaffold's row order is
   plan-internal, so the re-assembled join tree is freely shaped.

   This module holds the DAG-level half of the pass: local rules the
   rewriter ([Rewrite]) runs inside its fixpoint, each named and
   fire-counted like every other rewrite rule. Together they collapse the
   count-then-filter scaffolds that [where empty(for ...)] and
   [some ... satisfies] compile to into [Plan.Semijoin] / [Plan.Antijoin]
   — the operators were plumbed end-to-end (Order/Card/lower/kernels) by
   earlier PRs, but nothing synthesized them until now. The compile-level
   half (sliding a joinable where past intervening lets) lives in
   [Exrquy.Compile] behind the same [join_isolation] switch.

   Soundness. Every rule preserves the result multiset; all but the
   constant-selection rules are row-order-exact:

     - jg-select-const: sigma over its own attached constant keeps every
       row (true) or none (false) — the attach IS the predicate. The
       false case prunes the input subtree, which can only suppress
       dynamic errors: the XQuery 2.3.4 latitude CDA's select pushdown
       already uses.
     - jg-empty-prune: an operator fed an empty relation emits an empty
       relation (row-wise operators, joins; NOT unpartitioned Aggr, which
       emits one row from zero, and NOT Union, which jg-union-empty
       handles). Pruning the other join side is the same error latitude.

   The 2.3.4 latitude has a limit: errors demanded by a function's own
   semantics (fn:exactly-one over () MUST raise) are not optional, and
   loop-lifting implements them as check primitives inside exactly the
   attach-default scaffolds these prunes dismantle. So every rule that
   DISCARDS a subtree (select-const false; the empty-prunes of a join
   sibling) first proves the discarded subtree free of required-check
   operators ([carries_checks]); rules that merely re-route inputs
   (union-empty, semijoin synthesis/dedup, emptiness through row-wise
   operators) need no such proof.
     - jg-union-empty: appending an empty side is the identity.
     - jg-semijoin-synthesis: distinct-projecting only left columns of an
       equijoin never observes the right side beyond membership —
       delta(pi_L(join)) = delta(pi_L(semijoin)). Bit-identical row
       order: both sides enumerate left rows in probe order, and the
       first occurrence of each distinct L-tuple is the first left row
       producing it.
     - jg-semijoin-dedup: membership ignores right-side multiplicity, so
       a Distinct under a semi/anti-join's right input is dead work. *)

module SSet = Set.Make (String)

let rule_select_const = "jg-select-const"
let rule_empty_prune = "jg-empty-prune"
let rule_union_empty = "jg-union-empty"
let rule_semijoin_synthesis = "jg-semijoin-synthesis"
let rule_semijoin_dedup = "jg-semijoin-dedup"

let rules =
  [ rule_select_const; rule_empty_prune; rule_union_empty;
    rule_semijoin_synthesis; rule_semijoin_dedup ]

let is_empty_lit (n : Plan.node) =
  match n.Plan.op with Plan.Lit { rows = []; _ } -> true | _ -> false

(* Does discarding this subtree lose an operator whose purpose is
   raising a required dynamic error — the singleton-cardinality checks,
   casts, "treat as", the path-step atomics check, fn:error, division
   (by zero), the A_the aggregate? Discarding such an operator could
   swallow an error the spec demands (fn:exactly-one on a non-singleton),
   which the 2.3.4 "need not evaluate" latitude does not cover.

   Only nodes that actually become unreachable matter: the walk stops at
   [shared] nodes (more than one parent in the surrounding plan), because
   a shared node keeps its other reference and still evaluates — the
   existential scaffolds these rules target always share their inner
   query spine (and the query prolog's singleton checks hanging off it)
   with the surviving semijoin/antijoin side. Sharedness is judged
   against the plan entering the rewrite pass, a safe approximation: a
   fresh unshared node errs toward vetoing the prune. *)
let carries_checks ~shared (root : Plan.node) =
  let seen = Hashtbl.create 32 in
  let rec go (n : Plan.node) =
    (not (Hashtbl.mem seen n.Plan.id))
    && (not (shared n))
    && begin
      Hashtbl.add seen n.Plan.id ();
      (match n.Plan.op with
       | Plan.Fun1 { f; _ } -> (
         match f with
         | Plan.P_check_zero_one | Plan.P_check_exactly_one
         | Plan.P_check_one_or_more | Plan.P_check_treat
         | Plan.P_node_check | Plan.P_error | Plan.P_cast_as _
         | Plan.P_cast_int | Plan.P_cast_dbl | Plan.P_cast_bool -> true
         | _ -> false)
       | Plan.Fun2 { f = Plan.P_div | Plan.P_idiv | Plan.P_mod; _ } -> true
       | Plan.Aggr { agg = Plan.A_the; _ } -> true
       | _ -> false)
      || List.exists go (Plan.children n.Plan.op)
    end
  in
  go root

(* One rewrite attempt on an operator whose children are already rebuilt
   (the rewriter's bottom-up contract). [schema_of] is the rewriter's
   memoized static-schema analysis; [shared] its pre-pass parent counts
   (for [carries_checks]); [fire] its rule counter. *)
let try_rule b ~(schema_of : Plan.node -> SSet.t)
    ~(shared : Plan.node -> bool) ~(fire : string -> unit) (op : Plan.op) :
    Plan.node option =
  let keep o = Plan.mk b o in
  (* a subtree may be discarded when it is already empty (nothing to
     lose) or it loses no required-check operator *)
  let droppable n = is_empty_lit n || not (carries_checks ~shared n) in
  (* the empty relation with the same static schema as [n] *)
  let empty_like (n : Plan.node) =
    keep
      (Plan.Lit
         { schema = Array.of_list (SSet.elements (schema_of n)); rows = [] })
  in
  (* ditto for the would-be result of [op] itself *)
  let empty_of op = empty_like (keep op) in
  match op with
  (* -- jg-select-const: sigma over its own attached boolean ------------- *)
  | Plan.Select { input; col } -> (
    match input.Plan.op with
    | Plan.Attach { res; value = Value.Bool true; _ } when res = col ->
      fire rule_select_const;
      Some input
    | Plan.Attach { res; input = inner; value = Value.Bool false; _ }
      when res = col && droppable inner ->
      fire rule_select_const;
      Some (empty_like input)
    | _ when is_empty_lit input ->
      fire rule_empty_prune;
      Some (empty_like input)
    | _ -> None)
  (* -- jg-union-empty: drop an empty append side ------------------------ *)
  | Plan.Union { left; right } when is_empty_lit left ->
    fire rule_union_empty;
    Some right
  | Plan.Union { left; right } when is_empty_lit right ->
    fire rule_union_empty;
    Some left
  (* -- jg-semijoin-synthesis: delta(pi_L(equijoin)) -> delta(pi_L(⋉)) -- *)
  | Plan.Distinct { input } -> (
    match input.Plan.op with
    | Plan.Project { input = j; cols } -> (
      match j.Plan.op with
      | Plan.Join { left; right; lcol; rcol }
        when List.for_all (fun (_, src) -> SSet.mem src (schema_of left)) cols
        ->
        fire rule_semijoin_synthesis;
        Some
          (keep
             (Plan.Distinct
                { input =
                    keep
                      (Plan.Project
                         { input =
                             keep
                               (Plan.Semijoin
                                  { left; right; on = [ (lcol, rcol) ] });
                           cols }) }))
      | _ when is_empty_lit j ->
        fire rule_empty_prune;
        Some (empty_like input)
      | _ -> None)
    | _ when is_empty_lit input ->
      fire rule_empty_prune;
      Some input
    | _ -> None)
  (* -- jg-semijoin-dedup: membership ignores right multiplicity --------- *)
  | Plan.Semijoin { left; right = { Plan.op = Plan.Distinct { input = r }; _ };
                    on }
    when not (is_empty_lit left) ->
    fire rule_semijoin_dedup;
    Some (keep (Plan.Semijoin { left; right = r; on }))
  | Plan.Antijoin { left; right = { Plan.op = Plan.Distinct { input = r }; _ };
                    on }
    when not (is_empty_lit left) ->
    fire rule_semijoin_dedup;
    Some (keep (Plan.Antijoin { left; right = r; on }))
  (* -- jg-empty-prune: emptiness propagates ----------------------------- *)
  | Plan.Project { input; _ } | Plan.Attach { input; _ }
  | Plan.Fun1 { input; _ } | Plan.Fun2 { input; _ } | Plan.Fun3 { input; _ }
  | Plan.Rowid { input; _ } | Plan.Rownum { input; _ }
    when is_empty_lit input ->
    fire rule_empty_prune;
    Some (empty_of op)
  | Plan.Join { left; right; _ } | Plan.Thetajoin { left; right; _ }
  | Plan.Cross { left; right }
    when (is_empty_lit left || is_empty_lit right)
         && droppable left && droppable right ->
    fire rule_empty_prune;
    Some (empty_of op)
  | Plan.Semijoin { left; right; _ }
    when (is_empty_lit left || is_empty_lit right)
         && droppable left && droppable right ->
    fire rule_empty_prune;
    Some (empty_like left)
  | Plan.Antijoin { left; right; _ }
    when is_empty_lit left && droppable right ->
    fire rule_empty_prune;
    Some (empty_like left)
  | Plan.Antijoin { left; right; _ } when is_empty_lit right ->
    (* nothing on the right: every left row survives, in place *)
    fire rule_empty_prune;
    Some left
  | _ -> None

(* ------------------------------------------------- join-graph extraction *)

type summary = {
  vertices : int;
  edges : int;
  equijoins : int;
  thetajoins : int;
  semijoins : int;
  antijoins : int;
  crosses : int;
}

let empty_summary =
  { vertices = 0; edges = 0; equijoins = 0; thetajoins = 0; semijoins = 0;
    antijoins = 0; crosses = 0 }

let is_join_op (n : Plan.node) =
  match n.Plan.op with
  | Plan.Join _ | Plan.Thetajoin _ | Plan.Semijoin _ | Plan.Antijoin _
  | Plan.Cross _ ->
    true
  | _ -> false

(* Walk the DAG once: join operators are the interior of the join graph,
   their non-join operands its vertices (iteration-independent table
   expressions, counted once each thanks to hash-consing), their
   predicates its edges (a Cross contributes none). *)
let summary (root : Plan.node) : summary =
  let vertex_ids = Hashtbl.create 16 in
  List.fold_left
    (fun acc (n : Plan.node) ->
       if not (is_join_op n) then acc
       else begin
         List.iter
           (fun (c : Plan.node) ->
              if not (is_join_op c) then
                Hashtbl.replace vertex_ids c.Plan.id ())
           (Plan.children n.Plan.op);
         match n.Plan.op with
         | Plan.Join _ ->
           { acc with edges = acc.edges + 1; equijoins = acc.equijoins + 1 }
         | Plan.Thetajoin _ ->
           { acc with edges = acc.edges + 1; thetajoins = acc.thetajoins + 1 }
         | Plan.Semijoin { on; _ } ->
           { acc with
             edges = acc.edges + List.length on;
             semijoins = acc.semijoins + 1 }
         | Plan.Antijoin { on; _ } ->
           { acc with
             edges = acc.edges + List.length on;
             antijoins = acc.antijoins + 1 }
         | Plan.Cross _ -> { acc with crosses = acc.crosses + 1 }
         | _ -> acc
       end)
    empty_summary (Plan.topo_order root)
  |> fun s -> { s with vertices = Hashtbl.length vertex_ids }

let summary_to_string s =
  Printf.sprintf
    "%d vertices, %d edges (%d \xE2\x8B\x88, %d \xCE\xB8, %d \xE2\x8B\x89, \
     %d \xE2\x96\xB7, %d \xC3\x97)"
    s.vertices s.edges s.equijoins s.thetajoins s.semijoins s.antijoins
    s.crosses
