(* Typed columns for the physical plan layer: the MonetDB/BAT-style
   unboxed carriers the paper's back-end executes on. The logical layer
   ([Table]) stores every cell as a boxed [Value.t]; a [Column.t] stores a
   whole column in one flat array of its dynamic type — machine ints,
   floats, byte-wide booleans, string-pool ids, or (frag, pre) node-id
   pairs — with [Mixed] as the loss-free fallback for genuinely
   heterogeneous columns. Two dense encodings ride along: [Const] (the
   result of Attach: one value, any length — never materialized) and
   [Seq] (the result of Rowid [#]: i -> start + i, MonetDB's void — the
   "free numbering" the paper's cost asymmetry rests on, here literally
   O(1)). *)

open Basis

type ty = T_int | T_dbl | T_bool | T_str | T_node | T_mixed

let ty_name = function
  | T_int -> "int" | T_dbl -> "dbl" | T_bool -> "bool"
  | T_str -> "str" | T_node -> "node" | T_mixed -> "mixed"

let ty_of_value = function
  | Value.Int _ -> T_int
  | Value.Dbl _ -> T_dbl
  | Value.Bool _ -> T_bool
  | Value.Str _ -> T_str
  | Value.Node _ -> T_node
  | Value.Qname_v _ -> T_mixed

(* the join of two column types: equal or Mixed *)
let ty_union a b = if a = b then a else T_mixed

type t =
  | Ints of int array
  | Dbls of float array
  | Bools of Bytes.t                               (* one byte per row *)
  | Strs of { pool : String_pool.t; ids : int array }
  | Codes of {
      frag : Xmldb.Doc_store.frag;  (* owner: codes only mean anything here *)
      pool : String_pool.t;         (* the store's global text pool *)
      codes : int array;            (* local value codes, see Doc_store *)
    }
  | Nodes of { frag : int array; pre : int array }
  | Const of { v : Value.t; n : int }              (* v, repeated n times *)
  | Seq of { start : int; n : int }                (* Int (start + i) *)
  | Mixed of Value.t array

let length = function
  | Ints a -> Array.length a
  | Dbls a -> Array.length a
  | Bools b -> Bytes.length b
  | Strs { ids; _ } -> Array.length ids
  | Codes { codes; _ } -> Array.length codes
  | Nodes { pre; _ } -> Array.length pre
  | Const { n; _ } -> n
  | Seq { n; _ } -> n
  | Mixed a -> Array.length a

let ty_of = function
  | Ints _ -> T_int
  | Dbls _ -> T_dbl
  | Bools _ -> T_bool
  | Strs _ -> T_str
  | Codes _ -> T_str
  | Nodes _ -> T_node
  | Const { v; _ } -> ty_of_value v
  | Seq _ -> T_int
  | Mixed _ -> T_mixed

let get c i =
  match c with
  | Ints a -> Value.Int a.(i)
  | Dbls a -> Value.Dbl a.(i)
  | Bools b -> Value.Bool (Bytes.unsafe_get b i <> '\000')
  | Strs { pool; ids } -> Value.Str (String_pool.get pool ids.(i))
  | Codes { frag; pool; codes } ->
    let id = Xmldb.Doc_store.text_id_of_code frag codes.(i) in
    Value.Str (if id < 0 then "" else String_pool.get pool id)
  | Nodes { frag; pre } ->
    Value.Node (Xmldb.Node_id.make ~frag:frag.(i) ~pre:pre.(i))
  | Const { v; n } ->
    if i < 0 || i >= n then Err.internal "Column.get: Const out of bounds";
    v
  | Seq { start; n } ->
    if i < 0 || i >= n then Err.internal "Column.get: Seq out of bounds";
    Value.Int (start + i)
  | Mixed a -> a.(i)

let const v n = Const { v; n }
let seq ~start n = Seq { start; n }

(* -- conversions ----------------------------------------------------------- *)

(* Infer the tightest typed representation of a boxed column: one
   detection-and-build pass per candidate type; any heterogeneity falls
   back to sharing the boxed array as [Mixed] (zero copy). *)
let of_values ~pool (vs : Value.t array) : t =
  let n = Array.length vs in
  if n = 0 then Mixed vs
  else
    match vs.(0) with
    | Value.Int _ ->
      let a = Array.make n 0 in
      let rec go i =
        if i >= n then Ints a
        else
          match vs.(i) with
          | Value.Int x -> a.(i) <- x; go (i + 1)
          | _ -> Mixed vs
      in
      go 0
    | Value.Dbl _ ->
      let a = Array.make n 0.0 in
      let rec go i =
        if i >= n then Dbls a
        else
          match vs.(i) with
          | Value.Dbl x -> a.(i) <- x; go (i + 1)
          | _ -> Mixed vs
      in
      go 0
    | Value.Bool _ ->
      let b = Bytes.make n '\000' in
      let rec go i =
        if i >= n then Bools b
        else
          match vs.(i) with
          | Value.Bool x -> if x then Bytes.set b i '\001'; go (i + 1)
          | _ -> Mixed vs
      in
      go 0
    | Value.Str _ ->
      let ids = Array.make n 0 in
      let rec go i =
        if i >= n then Strs { pool; ids }
        else
          match vs.(i) with
          | Value.Str s -> ids.(i) <- String_pool.intern pool s; go (i + 1)
          | _ -> Mixed vs
      in
      go 0
    | Value.Node _ ->
      let frag = Array.make n 0 and pre = Array.make n 0 in
      let rec go i =
        if i >= n then Nodes { frag; pre }
        else
          match vs.(i) with
          | Value.Node nd ->
            frag.(i) <- Xmldb.Node_id.frag nd;
            pre.(i) <- Xmldb.Node_id.pre nd;
            go (i + 1)
          | _ -> Mixed vs
      in
      go 0
    | Value.Qname_v _ -> Mixed vs

let to_values c =
  match c with
  | Mixed a -> a  (* shared, like Table.col: callers must not mutate *)
  | _ -> Array.init (length c) (fun i -> get c i)

(* Try to tighten a [Mixed] column; other representations pass through. *)
let retype ~pool = function
  | Mixed vs -> of_values ~pool vs
  | c -> c

(* -- bulk operations ------------------------------------------------------- *)

let gather c (idx : int array) : t =
  let n = Array.length idx in
  match c with
  | Ints a -> Ints (Array.map (fun i -> a.(i)) idx)
  | Dbls a -> Dbls (Array.map (fun i -> a.(i)) idx)
  | Bools b ->
    let out = Bytes.create n in
    for k = 0 to n - 1 do Bytes.set out k (Bytes.get b idx.(k)) done;
    Bools out
  | Strs { pool; ids } -> Strs { pool; ids = Array.map (fun i -> ids.(i)) idx }
  | Codes { frag; pool; codes } ->
    Codes { frag; pool; codes = Array.map (fun i -> codes.(i)) idx }
  | Nodes { frag; pre } ->
    Nodes
      { frag = Array.map (fun i -> frag.(i)) idx;
        pre = Array.map (fun i -> pre.(i)) idx }
  | Const { v; n = len } ->
    Array.iter
      (fun i ->
         if i < 0 || i >= len then
           Err.internal "Column.gather: Const out of bounds")
      idx;
    Const { v; n }
  | Seq { start; n = len } ->
    Ints
      (Array.map
         (fun i ->
            if i < 0 || i >= len then
              Err.internal "Column.gather: Seq out of bounds";
            start + i)
         idx)
  | Mixed a -> Mixed (Array.map (fun i -> a.(i)) idx)

(* Disjoint-union append. Matching representations stay typed ([Strs]
   only when both columns physically share one pool — ids are only
   comparable within a pool); anything else degrades to [Mixed]. *)
let append a b =
  match (a, b) with
  | Ints x, Ints y -> Ints (Array.append x y)
  | Dbls x, Dbls y -> Dbls (Array.append x y)
  | Bools x, Bools y -> Bools (Bytes.cat x y)
  | Strs { pool = p1; ids = x }, Strs { pool = p2; ids = y } when p1 == p2 ->
    Strs { pool = p1; ids = Array.append x y }
  | Codes c1, Codes c2 when c1.frag == c2.frag ->
    (* same physical fragment = same dictionary: codes stay comparable *)
    Codes { c1 with codes = Array.append c1.codes c2.codes }
  | Nodes n1, Nodes n2 ->
    Nodes
      { frag = Array.append n1.frag n2.frag;
        pre = Array.append n1.pre n2.pre }
  | Const c1, Const c2 when Value.equal c1.v c2.v ->
    Const { v = c1.v; n = c1.n + c2.n }
  | _ ->
    Mixed (Array.append (to_values a) (to_values b))

(* Estimated footprint: the Budget byte-accounting currency. Typed
   columns are priced at their flat-array cost; [Mixed] at the boxed
   cost, as the logical layer would. *)
let estimated_bytes c =
  match c with
  | Ints a -> 16 + (8 * Array.length a)
  | Dbls a -> 16 + (8 * Array.length a)
  | Bools b -> 16 + Bytes.length b
  | Strs { ids; _ } -> 16 + (8 * Array.length ids)
  | Codes { codes; _ } -> 16 + (8 * Array.length codes)
  | Nodes { pre; _ } -> 32 + (16 * Array.length pre)
  | Const { v; _ } -> 16 + Value.estimated_bytes v
  | Seq _ -> 32
  | Mixed a ->
    Array.fold_left (fun acc v -> acc + Value.estimated_bytes v) 16 a

let describe c =
  Printf.sprintf "%s[%d]%s" (ty_name (ty_of c)) (length c)
    (match c with
     | Const _ -> " const" | Seq _ -> " seq" | Codes _ -> " codes"
     | _ -> "")
