(** The columnar executor: evaluates an algebra DAG bottom-up, memoizing
    every node's result by node id, so Pathfinder-style DAG sharing
    translates into single evaluation.

    The engine is "inherently unordered": no operator promises any row
    order; all order semantics live in explicit [pos]/[iter] columns. The
    cost asymmetry the paper's results rest on holds: [Rownum] ("%") sorts
    its input, [Rowid] ("#") stamps a counter. Integer join/group keys
    (iter/bind columns) take unboxed fast paths. *)

(** Which implementation realizes the step operator ⊘ (paper, Section 3):
    the staircase-join scan, or TwigStack-style tag-indexed element
    streams (used where applicable, scan elsewhere). *)
type step_impl = Scan | Tag_index

(** How sharing in the plan is exploited: [Dag] (the default) memoizes
    every node's result by hash-cons id, so shared subplans are computed —
    and their budget cost charged — exactly once per run; [Tree] walks the
    plan as a tree, re-evaluating shared subtrees at every reference (the
    differential-testing oracle for the sharing machinery). Results are
    identical in both modes; only cost differs. *)
type mode = Dag | Tree

(** An evaluation context: result cache + store + optional profile +
    optional resource guard. *)
type ctx

(** [guard] is checked at every operator boundary (one {!Basis.Budget.check}
    per plan-node evaluation; cache hits are free) and charged with every
    materialized result table's rows and — when a byte budget is armed —
    estimated bytes. Exhaustion raises {!Basis.Err.Resource_error} and the
    evaluation unwinds; no partial table escapes. *)
val create :
  ?profile:Profile.t -> ?guard:Basis.Budget.t -> ?step_impl:step_impl ->
  ?mode:mode -> Xmldb.Doc_store.t -> ctx

(** Node evaluations performed so far (cache hits excluded): equals
    {!Plan.count_ops} of the evaluated plan in [Dag] mode and
    {!Plan.count_tree_nodes} in [Tree] mode. *)
val evals : ctx -> int

(** Evaluate a node (and, transitively, its children) against the context;
    cached results are returned as-is. When profiling, each node's local
    evaluation time goes to its label's bucket (or its operator symbol
    when unlabeled) and to its per-node attribution ({!Profile.add_node});
    in [Tree] mode per-node times are inclusive of children. *)
val eval : ctx -> Plan.node -> Table.t

(** [run ?profile ?guard store root] — evaluate against a fresh context. *)
val run :
  ?profile:Profile.t -> ?guard:Basis.Budget.t -> ?step_impl:step_impl ->
  ?mode:mode -> Xmldb.Doc_store.t -> Plan.node -> Table.t

(** {2 Primitive semantics} (exposed for the interpreter and tests) *)

(** Atomization: nodes become their string value; atomics pass through. *)
val atomize : Xmldb.Doc_store.t -> Value.t -> Value.t

val apply1 : Xmldb.Doc_store.t -> Plan.prim1 -> Value.t -> Value.t
val apply2 : Xmldb.Doc_store.t -> Plan.prim2 -> Value.t -> Value.t -> Value.t
val apply3 :
  Xmldb.Doc_store.t -> Plan.prim3 -> Value.t -> Value.t -> Value.t -> Value.t
