(** Staircase-join style XPath axis evaluation over the pre/size/level
    encoding (Grust/van Keulen/Teubner, VLDB 2003 — the paper's
    reference [12]). This is the implementation behind the algebraic step
    operator "⊘ ax::nt". *)

(** [step store axis test contexts] evaluates one location step: the
    context node set may arrive in any order and contain duplicates; the
    result is duplicate-free and in document order.

    Staircase techniques applied: context pruning for
    [descendant](-or-self) (each result region is scanned once), earliest-
    context-only evaluation of [following], latest-context-only evaluation
    of [preceding]. Axes whose per-context results interleave fall back to
    collect + sort + dedup.

    [batch] (default [true]) lets the three contiguous-range axes
    ([descendant](-or-self), [following], [preceding]) decode kind/name
    columns through the store's bulk range accessors, window by window,
    with name tests translated to per-fragment dictionary codes once and
    compared as integers per row. Results are bit-identical either way;
    [batch:false] is the scalar reference path (engine flag
    [--no-code-eval]). *)
val step :
  ?batch:bool ->
  Doc_store.t -> Axis.t -> Node_test.t -> Node_id.t array -> Node_id.t array

(** The principal node kind of an axis (attributes for the attribute axis,
    elements otherwise): name tests match only this kind. *)
val principal_kind : Axis.t -> Node_kind.t

(** {2 Shared helpers} (used by alternative step implementations such as
    {!Tag_index}) *)

(** Sort the context set and group it per fragment: (fragment id, sorted
    deduplicated context pres) in ascending fragment order. *)
val group_contexts : Node_id.t array -> (int * int array) list

(** Sort a collected node-id vector into document order and drop adjacent
    duplicates. *)
val sort_dedup : Node_id.t Basis.Vec.t -> Node_id.t array
