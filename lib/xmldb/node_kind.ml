(* The six XDM node kinds. Attributes are stored inline in the pre/size/
   level table (immediately after their owner element, before its children,
   with size 0); the axis evaluator filters them out of every axis except
   [attribute] and [self]/[ancestor]-style membership tests. *)

type t =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Processing_instruction

let equal (a : t) (b : t) = a = b

(* Stable one-byte codes for the packed store and its snapshot format —
   renumbering is a snapshot format change. *)
let to_int = function
  | Document -> 0
  | Element -> 1
  | Attribute -> 2
  | Text -> 3
  | Comment -> 4
  | Processing_instruction -> 5

let of_int = function
  | 0 -> Document
  | 1 -> Element
  | 2 -> Attribute
  | 3 -> Text
  | 4 -> Comment
  | 5 -> Processing_instruction
  | k -> invalid_arg (Printf.sprintf "Node_kind.of_int: %d" k)

let to_string = function
  | Document -> "document"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"
  | Comment -> "comment"
  | Processing_instruction -> "processing-instruction"

let pp fmt t = Format.pp_print_string fmt (to_string t)
