(* ID lookup (fn:id). Without DTD/schema processing, ID-ness is assigned
   pragmatically: every attribute whose local name is "id" (or the
   standard xml:id) is ID-typed — which matches XMark's person/item/
   open_auction identifiers and common schema practice.

   Per fragment, the index maps the id token to the *element owning* the
   attribute; on duplicates, the first in document order wins (IDs are
   supposed to be unique). Lookups are restricted to the context node's
   fragment: fn:id only finds nodes in the same document. *)

open Basis

type t = {
  store : Doc_store.t;
  by_frag : (int, (string, Node_id.t) Hashtbl.t) Hashtbl.t;
}

let create store = { store; by_frag = Hashtbl.create 8 }

let frag_table t frag_id =
  match Hashtbl.find_opt t.by_frag frag_id with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 256 in
    let f = Doc_store.frag t.store frag_id in
    for pre = 0 to Doc_store.frag_length f - 1 do
      if Node_kind.equal (Doc_store.kind_at f pre) Node_kind.Attribute then begin
        let q = Doc_store.name_of_id t.store (Doc_store.name_at f pre) in
        if String.equal (Qname.local q) "id" then begin
          let v = Doc_store.text_of_id t.store (Doc_store.value_at f pre) in
          let owner = Doc_store.parent_at f pre in
          if owner >= 0 && not (Hashtbl.mem tbl v) then
            Hashtbl.add tbl v (Node_id.make ~frag:frag_id ~pre:owner)
        end
      end
    done;
    Hashtbl.add t.by_frag frag_id tbl;
    tbl

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* Split an idrefs value on whitespace (each fn:id argument item may carry
   a space-separated list of ids). *)
let tokens s =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_ws c then flush () else Buffer.add_char buf c) s;
  flush ();
  List.rev !out

(* Look up id tokens within the fragment of [ctx]; result is
   duplicate-free, in document order. *)
let lookup t ~ctx values =
  let frag_id = Node_id.frag ctx in
  let tbl = frag_table t frag_id in
  let hits = Vec.create (Node_id.make ~frag:0 ~pre:0) in
  List.iter
    (fun v ->
       List.iter
         (fun tok ->
            match Hashtbl.find_opt tbl tok with
            | Some n -> Vec.push hits n
            | None -> ())
         (tokens v))
    values;
  Staircase.sort_dedup hits
