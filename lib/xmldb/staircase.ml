(* Staircase-join style XPath axis evaluation over the pre/size/level
   encoding (Grust/van Keulen/Teubner, VLDB 2003 — reference [12] of the
   paper). This is the implementation behind the algebraic step operator
   "⊘ ax::nt": it consumes an arbitrary set of context nodes and returns a
   duplicate-free set of result nodes in document order.

   The staircase tricks used:
     - contexts are sorted by (frag, pre) and deduplicated up front;
     - [descendant]/[descendant-or-self] prune context nodes whose subtree
       is covered by an earlier context ("pruning"), making the scan of
       the pre range emit each result exactly once, already sorted;
     - [following] only needs the earliest context per fragment;
     - [preceding] only needs the latest context per fragment;
   axes whose per-context results can interleave (parent, ancestor,
   siblings, child with nested contexts) fall back to collect + sort +
   adjacent-dedup, which is still O(out log out). *)

open Basis

type ctx_groups = (int * int array) list
(* per fragment: (frag id, sorted deduped context pres) *)

let group_contexts (nodes : Node_id.t array) : ctx_groups =
  let sorted = Array.copy nodes in
  Array.sort Node_id.compare sorted;
  let groups = ref [] and cur = ref [] and cur_frag = ref (-1) in
  let flush () =
    if !cur <> [] then
      groups := (!cur_frag, Array.of_list (List.rev !cur)) :: !groups
  in
  Array.iter
    (fun n ->
       let f = Node_id.frag n and p = Node_id.pre n in
       if f <> !cur_frag then begin flush (); cur_frag := f; cur := [ p ] end
       else match !cur with
         | q :: _ when q = p -> () (* duplicate *)
         | _ -> cur := p :: !cur)
    sorted;
  flush ();
  List.rev !groups

(* Resolve the PI-target of a node test once per step call. *)
let resolve_test store (test : Node_test.t) =
  match test with
  | Node_test.Pi_target t ->
    Node_test.Name (Doc_store.name_test_id store (Qname.make t))
  | t -> t

let matches (f : Doc_store.frag) principal test pre =
  let k = Doc_store.kind_at f pre in
  match (test : Node_test.t) with
  | Node_test.Any_node -> true
  | Node_test.Kind k' -> Node_kind.equal k k'
  | Node_test.Name_wild -> Node_kind.equal k principal
  | Node_test.Name id ->
    Node_kind.equal k principal && Doc_store.name_at f pre = id
  | Node_test.Pi_target _ -> Err.internal "unresolved PI target test"

let principal_kind (axis : Axis.t) =
  match axis with
  | Axis.Attribute -> Node_kind.Attribute
  | _ -> Node_kind.Element

(* -- batched contiguous scans --------------------------------------------- *)

(* The three axes whose staircase form is one contiguous pre-range scan
   ([descendant](-or-self), [following], [preceding]) can consume the
   store's bulk range accessors: decode a window of the kind column (and
   the raw name-code column when the test is a name test) in one pass,
   then run a branch-light match loop over the scratch buffers. The node
   test is translated to the fragment's dictionary code once per
   (step, fragment), so a name test is an integer compare per row — no
   per-row dictionary expansion, no string in sight. Results are
   bit-identical to the scalar loops. *)

let window = 4096
let batch_threshold = 64 (* below this a windowed decode is pure overhead *)

type scratch = {
  kbuf : Node_kind.t array;  (* kinds of the current window *)
  cbuf : int array;          (* raw local name codes *)
  sbuf : int array;          (* subtree sizes (preceding only) *)
}

let mk_scratch () = {
  kbuf = Array.make window Node_kind.Text;
  cbuf = Array.make window 0;
  sbuf = Array.make window 0;
}

(* A node test translated against one fragment's dictionary. *)
type tr_test =
  | T_none                   (* cannot match any row of this fragment *)
  | T_any                    (* any non-attribute row *)
  | T_kind of Node_kind.t
  | T_wild                   (* principal (element) rows *)
  | T_name of int            (* element rows carrying this local code *)

let translate f (test : Node_test.t) : tr_test =
  match test with
  | Node_test.Any_node -> T_any
  | Node_test.Kind k ->
    (* the batched axes never yield attribute rows *)
    if Node_kind.equal k Node_kind.Attribute then T_none else T_kind k
  | Node_test.Name_wild -> T_wild
  | Node_test.Name id ->
    (match Doc_store.name_code_of_id f id with
     | Some c -> T_name c
     | None -> T_none)
  | Node_test.Pi_target _ -> Err.internal "unresolved PI target test"

(* Emit every p in [lo, hi] (inclusive) that is not an attribute row and
   satisfies [tr]; with [~before_ctx:(Some mc)], additionally require
   [p + size(p) < mc] (the [preceding] non-ancestor condition). *)
let scan_batched scr f tr lo hi ~before_ctx emit =
  let w0 = ref lo in
  while !w0 <= hi do
    let w1 = min (hi + 1) (!w0 + window) in (* exclusive *)
    Doc_store.kinds_range f !w0 w1 scr.kbuf;
    (match tr with
     | T_name _ -> Doc_store.name_codes_range f !w0 w1 scr.cbuf
     | _ -> ());
    (match before_ctx with
     | Some _ -> Doc_store.sizes_range f !w0 w1 scr.sbuf
     | None -> ());
    let base = !w0 in
    let len = w1 - base in
    for i = 0 to len - 1 do
      let k = Array.unsafe_get scr.kbuf i in
      if (not (Node_kind.equal k Node_kind.Attribute))
         && (match before_ctx with
             | None -> true
             | Some mc -> base + i + Array.unsafe_get scr.sbuf i < mc)
         && (match tr with
             | T_any -> true
             | T_kind k' -> Node_kind.equal k k'
             | T_wild -> Node_kind.equal k Node_kind.Element
             | T_name c ->
               Node_kind.equal k Node_kind.Element
               && Array.unsafe_get scr.cbuf i = c
             | T_none -> false)
      then emit (base + i)
    done;
    w0 := w1
  done

let eval_group ?scr store (axis : Axis.t) test frag_id (ctxs : int array) out =
  let f = Doc_store.frag store frag_id in
  let n = Doc_store.frag_length f in
  let principal = principal_kind axis in
  let m pre = matches f principal test pre in
  let emit pre = Vec.push out (Node_id.make ~frag:frag_id ~pre) in
  let size_ pre = Doc_store.size_at f pre in
  let parent_ pre = Doc_store.parent_at f pre in
  let is_attr pre =
    Node_kind.equal (Doc_store.kind_at f pre) Node_kind.Attribute in
  let tr = lazy (translate f test) in
  (* Try the bulk-decoding scan for a contiguous range; false = caller
     falls back to the scalar loop (batching off, or range too small to
     amortize the window setup). *)
  let batched lo hi ~before_ctx =
    match scr with
    | Some s when hi - lo >= batch_threshold ->
      (match Lazy.force tr with
       | T_none -> ()
       | t -> scan_batched s f t lo hi ~before_ctx emit);
      true
    | _ -> false
  in
  let sorted_output = ref true in
  (match axis with
   | Axis.Self ->
     Array.iter (fun pre -> if m pre then emit pre) ctxs
   | Axis.Child ->
     (* Nested contexts make per-context child runs interleave. *)
     let covered_end = ref (-1) in
     Array.iter
       (fun pre ->
          if pre <= !covered_end then sorted_output := false;
          covered_end := max !covered_end (pre + size_ pre);
          let p = ref (pre + 1) in
          let stop = pre + size_ pre in
          while !p <= stop do
            if is_attr !p then incr p
            else begin
              if m !p then emit !p;
              p := !p + size_ !p + 1
            end
          done)
       ctxs
   | Axis.Attribute ->
     Array.iter
       (fun pre ->
          if Node_kind.equal (Doc_store.kind_at f pre) Node_kind.Element then begin
            let p = ref (pre + 1) in
            while !p < n && is_attr !p do
              if m !p then emit !p;
              incr p
            done
          end)
       ctxs
   | Axis.Descendant | Axis.Descendant_or_self ->
     (* staircase pruning: skip the part of the scan already covered *)
     let covered_end = ref (-1) in
     Array.iter
       (fun pre ->
          if axis = Axis.Descendant_or_self && is_attr pre then begin
            (* an attribute context contributes only itself; it may land
               after nodes already emitted by a covering ancestor scan *)
            if pre <= !covered_end then sorted_output := false;
            if m pre then emit pre
          end else begin
            let lo =
              if axis = Axis.Descendant_or_self then pre else pre + 1 in
            let lo = max lo (!covered_end + 1) in
            let hi = pre + size_ pre in
            (* the context row itself is never an attribute here (attribute
               contexts took the special branch), so the batched scan's
               uniform skip-attributes rule coincides with the scalar
               or-self condition *)
            if not (batched lo hi ~before_ctx:None) then
              for p = lo to hi do
                if (axis = Axis.Descendant_or_self && p = pre) || not (is_attr p)
                then (if m p then emit p)
              done;
            covered_end := max !covered_end hi
          end)
       ctxs
   | Axis.Parent ->
     sorted_output := false;
     Array.iter
       (fun pre ->
          let pa = parent_ pre in
          if pa >= 0 && m pa then emit pa)
       ctxs
   | Axis.Ancestor | Axis.Ancestor_or_self ->
     sorted_output := false;
     Array.iter
       (fun pre ->
          if axis = Axis.Ancestor_or_self && m pre then emit pre;
          let p = ref (parent_ pre) in
          while !p >= 0 do
            if m !p then emit !p;
            p := parent_ !p
          done)
       ctxs
   | Axis.Following_sibling ->
     sorted_output := false;
     Array.iter
       (fun pre ->
          if not (is_attr pre) && parent_ pre >= 0 then begin
            let parent = parent_ pre in
            let stop = parent + size_ parent in
            let p = ref (pre + size_ pre + 1) in
            while !p <= stop do
              if is_attr !p then incr p
              else begin
                if m !p then emit !p;
                p := !p + size_ !p + 1
              end
            done
          end)
       ctxs
   | Axis.Preceding_sibling ->
     sorted_output := false;
     Array.iter
       (fun pre ->
          if not (is_attr pre) && parent_ pre >= 0 then begin
            let parent = parent_ pre in
            let p = ref (parent + 1) in
            while !p < pre do
              if is_attr !p then incr p
              else begin
                if m !p then emit !p;
                p := !p + size_ !p + 1
              end
            done
          end)
       ctxs
   | Axis.Following ->
     (* only the earliest context matters: its following set covers all *)
     if Array.length ctxs > 0 then begin
       let start =
         Array.fold_left
           (fun acc pre -> min acc (pre + size_ pre + 1))
           max_int ctxs
       in
       if not (batched start (n - 1) ~before_ctx:None) then
         for p = start to n - 1 do
           if (not (is_attr p)) && m p then emit p
         done
     end
   | Axis.Preceding ->
     (* p precedes some context iff it precedes the latest one and is not
        one of its ancestors: max_ctx > p + size(p) *)
     if Array.length ctxs > 0 then begin
       let max_ctx = ctxs.(Array.length ctxs - 1) in
       if not (batched 0 (max_ctx - 1) ~before_ctx:(Some max_ctx)) then
         for p = 0 to max_ctx - 1 do
           if p + size_ p < max_ctx && (not (is_attr p)) && m p then emit p
         done
     end);
  !sorted_output

(* Sort + adjacent-dedup a Vec of node ids in place (returns fresh array). *)
let sort_dedup (v : Node_id.t Vec.t) =
  let a = Vec.to_array v in
  Array.sort Node_id.compare a;
  let out = Vec.create (Node_id.make ~frag:0 ~pre:0) ~capacity:(Array.length a) in
  Array.iter
    (fun n ->
       if Vec.length out = 0 || not (Node_id.equal (Vec.last out) n) then
         Vec.push out n)
    a;
  Vec.to_array out

let step ?(batch = true) store (axis : Axis.t) (test : Node_test.t)
    (contexts : Node_id.t array) =
  let test = resolve_test store test in
  let groups = group_contexts contexts in
  let out = Vec.create (Node_id.make ~frag:0 ~pre:0) in
  let scr =
    match (batch, axis) with
    | true, (Axis.Descendant | Axis.Descendant_or_self
            | Axis.Following | Axis.Preceding) -> Some (mk_scratch ())
    | _ -> None
  in
  let all_sorted =
    List.fold_left
      (fun acc (frag_id, ctxs) ->
         let sorted = eval_group ?scr store axis test frag_id ctxs out in
         acc && sorted)
      true groups
  in
  if all_sorted then Vec.to_array out else sort_dedup out
