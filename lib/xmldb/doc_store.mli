(** The document store: Pathfinder's schema-oblivious XML encoding
    (paper, Section 3 / Figure 5).

    Every XML fragment — a parsed document or a run of constructed
    nodes — is one contiguous pre/size/level table; see {!frag}.
    Attributes are inlined immediately after their owner element (before
    its children) with size 0; every axis except [attribute] skips them.

    Fragments are immutable once finished. Runtime node construction
    allocates fresh fragments, giving constructed trees a document order
    after all existing nodes; *within* a constructed fragment, document
    order is the order content was fed to the {!Builder} — this realizes
    the seq→doc order interaction (paper, Section 2, interaction 2).

    Physically, a finished fragment is frozen into bit-width minimal
    packed columns (u8/u16/u32 per column, chosen from the actual
    maximum; per-fragment dictionaries over the global name/text pools) —
    the MonetDB/X100-style encoded relational back-end of the paper's
    experiments. The boxed word-per-cell representation remains available
    as a reference build ([create ~packed:false], env [XRQ_STORE_PACK=0])
    whose accessors must agree row for row with the packed one. *)

(** One fragment's pre/size/level table, indexed by preorder rank through
    the [*_at] accessors below. The concrete layout (packed columns or
    boxed arrays) is private to the store; per-row access cost is O(1)
    either way. *)
type frag

type t

(** [create ()] makes an empty store. [packed] selects the physical
    fragment representation frozen at builder [finish] (default: packed,
    unless the environment sets [XRQ_STORE_PACK=0]). *)
val create : ?packed:bool -> unit -> t

val n_frags : t -> int
val frag : t -> int -> frag
val frag_length : frag -> int

(** Whether this fragment was frozen into packed columns. *)
val frag_packed : frag -> bool

(** Whether this store packs fragments at freeze time. *)
val packing : t -> bool

(** Bytes held by all fragment tables (packed column bytes plus one word
    per dictionary entry; boxed fragments count one word per cell).
    Excludes the shared name/text pools. *)
val encoded_bytes : t -> int

(** {2 Per-fragment row accessors}

    These are the only way to read a fragment's table; {!Staircase},
    {!Serialize} and the index structures scan through them. *)

val kind_at : frag -> int -> Node_kind.t

(** Name-pool id at a row (elements, attributes, PI targets); -1 for
    rows without a name. *)
val name_at : frag -> int -> int

(** Text-pool id at a row (text/attribute/comment/PI content); -1 for
    rows without a value. *)
val value_at : frag -> int -> int

(** Number of table rows in the row's subtree (includes inlined
    attribute rows). *)
val size_at : frag -> int -> int

(** Depth; fragment roots are at level 0. *)
val level_at : frag -> int -> int

(** Preorder rank of the parent, -1 for fragment roots. *)
val parent_at : frag -> int -> int

(** {2 Bulk range decoding}

    Each [*_range f lo hi buf] decodes the rows [lo, hi) of one column
    into [buf.(0 .. hi-lo-1)] in a single pass: the packed column's
    bit-width dispatch happens once per call instead of once per row,
    and each width gets a tight copy loop. The caller owns the scratch
    buffer (reuse it across windows); it must hold at least [hi - lo]
    entries. Decoded values agree exactly with the per-row accessors
    above, for packed and boxed fragments alike. Every call adds
    [hi - lo] to {!Stats.bulk_decodes}. *)

val kinds_range : frag -> int -> int -> Node_kind.t array -> unit
val names_range : frag -> int -> int -> int array -> unit
val values_range : frag -> int -> int -> int array -> unit
val sizes_range : frag -> int -> int -> int array -> unit

(** Raw local name codes (see {!name_code_at}), bulk form. *)
val name_codes_range : frag -> int -> int -> int array -> unit

(** {2 Dictionary codes}

    A fragment's name/value columns store small local codes: 0 = no
    name/value; with a dictionary, code [k > 0] denotes dictionary entry
    [k - 1]; without one the code is the global pool id + 1. Boxed
    fragments present the identity coding (global id + 1), so code
    equality coincides with string equality under every representation —
    the pools intern and dictionaries are injective, hence within one
    fragment two rows carry equal names/values iff they carry equal
    codes. This is what lets an equality predicate be translated to a
    code {e once} and evaluated as an integer compare per row. *)

(** Local name code at a row (0 = unnamed). *)
val name_code_at : frag -> int -> int

(** Local text/value code at a row (0 = no value). *)
val text_code_at : frag -> int -> int

(** Translate a name into the fragment's local code. [None] = this name
    cannot occur in the fragment (or is not interned at all): a name test
    against it matches nothing. One probe per (predicate, fragment). *)
val code_of_name : t -> frag -> Qname.t -> int option

(** Same, from an already-interned global name id (negative ids — the
    {!name_test_id} "never occurs" marker included — give [None]). *)
val name_code_of_id : frag -> int -> int option

(** Translate a string constant into the fragment's local value code.
    [None] = no row of this fragment can carry the string. *)
val code_of_text : t -> frag -> string -> int option

(** Global text-pool id behind a local value code (-1 for code 0). *)
val text_id_of_code : frag -> int -> int

(** Materialize a local value code ([""] for code 0). *)
val text_of_code : t -> frag -> int -> string

(** The store's global text pool (late materialization of code-carrying
    columns keys interned ids against it). *)
val text_pool : t -> Basis.String_pool.t

(** {2 Execution counters} *)

(** Process-wide counters for the compressed-execution paths, maintained
    as atomics (bulk scans run inside worker domains); the engine
    snapshots deltas around a run. *)
module Stats : sig
  (** Total rows decoded through the bulk [*_range] accessors. *)
  val bulk_decodes : unit -> int
end

(** {2 Name and text pools} *)

val intern_name : t -> Qname.t -> int
val name_of_id : t -> int -> Qname.t

(** Name id for a node test; returns -2 (matching no node) when the name
    never occurs in the store. *)
val name_test_id : t -> Qname.t -> int

val text_of_id : t -> int -> string

(** {2 Node accessors} *)

val kind : t -> Node_id.t -> Node_kind.t
val name_id : t -> Node_id.t -> int
val size : t -> Node_id.t -> int
val level : t -> Node_id.t -> int
val name : t -> Node_id.t -> Qname.t option

(** The node's own value (attribute value, text content, ...); [""] for
    elements and documents. *)
val value : t -> Node_id.t -> string

val parent : t -> Node_id.t -> Node_id.t option

(** String value per XDM: elements and documents concatenate their text
    descendants in document order; other kinds return their own value. *)
val string_value : t -> Node_id.t -> string

(** {2 Document registry (fn:doc)} *)

val register_document : t -> string -> Node_id.t -> unit
val find_document : t -> string -> Node_id.t option
val documents : t -> (string * Node_id.t) list

(** Total number of node rows across all fragments (statistics). *)
val total_nodes : t -> int

(** Number of nodes (elements and attributes) carrying the given name,
    across all fragments; 0 for names the store has never seen. Counts
    fold incrementally over finished (immutable) fragments, so repeated
    queries are cheap. Seeds the optimizer's cardinality estimates. *)
val name_occurrences : t -> Qname.t -> int

(** {2 Building fragments}

    A builder accumulates one fragment event-style. Text pushed in
    adjacent calls merges into a single text node (XDM); attributes must
    precede other content of their element. *)
module Builder : sig
  type store := t
  type t

  val create : store -> t

  val start_document : t -> unit
  val end_document : t -> unit
  val start_element : t -> Qname.t -> unit
  val end_element : t -> unit

  (** Add an attribute to the currently open element (or a parentless
      attribute node when no element is open). Raises a dynamic error if
      the open element already has non-attribute content. *)
  val attribute : t -> Qname.t -> string -> unit

  (** Append character data; empty strings are ignored, adjacent text
      merges. *)
  val text : t -> string -> unit

  (** Emit a text node even when empty and without merging (computed text
      constructors). *)
  val force_text : t -> string -> unit

  val comment : t -> string -> unit
  val pi : t -> string -> string -> unit

  (** Deep-copy the subtree rooted at the given node (from any fragment of
      the same store) as content of the currently open node — XQuery
      constructor copy semantics. Text merges with an adjacent text
      sibling; a document node copies its children. *)
  val copy : t -> Node_id.t -> unit

  (** Freeze into a new fragment; returns its id and the node ids of the
      fragment's roots. The builder must be balanced and is dead
      afterwards. Freezing is where packed columns are built. *)
  val finish : t -> int * Node_id.t array
end

(** {2 Snapshots}

    A versioned, checksummed on-disk image of a whole store: magic,
    format version, the two pools in dense id order, the document
    registry, then each fragment's packed columns verbatim (one read per
    column at load, no re-encoding). Saving a boxed store packs on the
    fly, so save → load → save is byte-identical regardless of the
    source representation. Any corruption — bad magic, version skew,
    truncation, checksum mismatch, out-of-range structure — raises
    {!Basis.Err.Dynamic_error}; a failed load never yields a partially
    populated store. *)
module Snapshot : sig
  (** Version written by [save]; [load] refuses any other. *)
  val format_version : int

  val save : t -> string -> unit
  val load : string -> t
  val to_string : t -> string
  val of_string : string -> t
end
