(* Tag-name indexed step evaluation — the "element streams" alternative
   implementation of the step operator that the paper attributes to
   TwigStack [5] (Section 3: "Several existing XPath step evaluation
   techniques may be plugged in to realize ⊘").

   For every (fragment, tag name) pair touched, the index materializes the
   sorted array of preorder ranks carrying that name (elements and
   attributes indexed separately, matching the principal node kind).
   Descendant steps then binary-search the stream for each context
   subtree instead of scanning the pre range — a large win for selective
   tags in wide documents; child steps additionally filter the stream by
   parent. Axes and tests outside this profile fall back to the
   staircase scan. *)

open Basis

type t = {
  store : Doc_store.t;
  (* (frag, name id, attr?) -> sorted pres *)
  streams : (int * int * bool, int array) Hashtbl.t;
}

let create store = { store; streams = Hashtbl.create 64 }

let stream t frag_id name_id ~attr =
  let key = (frag_id, name_id, attr) in
  match Hashtbl.find_opt t.streams key with
  | Some s -> s
  | None ->
    let f = Doc_store.frag t.store frag_id in
    let acc = Vec.create 0 in
    let wanted_kind =
      if attr then Node_kind.Attribute else Node_kind.Element
    in
    for pre = 0 to Doc_store.frag_length f - 1 do
      if Doc_store.name_at f pre = name_id
         && Node_kind.equal (Doc_store.kind_at f pre) wanted_kind
      then Vec.push acc pre
    done;
    let s = Vec.to_array acc in
    Hashtbl.add t.streams key s;
    s

(* Index of the first stream element >= x. *)
let lower_bound (s : int array) x =
  let lo = ref 0 and hi = ref (Array.length s) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Does the (axis, test) profile have an indexed implementation? *)
let applicable (axis : Axis.t) (test : Node_test.t) =
  match (axis, test) with
  | (Axis.Child | Axis.Descendant | Axis.Descendant_or_self | Axis.Attribute),
    Node_test.Name _ -> true
  | _ -> false

(* Indexed evaluation; same contract as Staircase.step: duplicate-free,
   document order. The caller guarantees [applicable]. *)
let step t (axis : Axis.t) (test : Node_test.t) (contexts : Node_id.t array) =
  let name_id =
    match test with
    | Node_test.Name id -> id
    | _ -> Err.internal "Tag_index.step: name test expected"
  in
  if name_id < 0 then [||]
  else begin
    let groups = Staircase.group_contexts contexts in
    let out = Vec.create (Node_id.make ~frag:0 ~pre:0) in
    List.iter
      (fun (frag_id, ctxs) ->
         let f = Doc_store.frag t.store frag_id in
         let attr = axis = Axis.Attribute in
         let s = stream t frag_id name_id ~attr in
         let emit pre = Vec.push out (Node_id.make ~frag:frag_id ~pre) in
         match axis with
         | Axis.Descendant | Axis.Descendant_or_self ->
           (* staircase pruning over the streams: never rescan a region *)
           let covered_end = ref (-1) in
           Array.iter
             (fun pre ->
                let hi = pre + Doc_store.size_at f pre in
                let lo =
                  if axis = Axis.Descendant_or_self then pre else pre + 1
                in
                let lo = max lo (!covered_end + 1) in
                let i = ref (lower_bound s lo) in
                while !i < Array.length s && s.(!i) <= hi do
                  emit s.(!i);
                  incr i
                done;
                covered_end := max !covered_end hi)
             ctxs
         | Axis.Child ->
           (* stream positions inside the subtree whose parent is the
              context node *)
           let last = ref (-1) in
           let sorted = ref true in
           Array.iter
             (fun pre ->
                let hi = pre + Doc_store.size_at f pre in
                let i = ref (lower_bound s (pre + 1)) in
                while !i < Array.length s && s.(!i) <= hi do
                  if Doc_store.parent_at f s.(!i) = pre then begin
                    if s.(!i) < !last then sorted := false;
                    last := s.(!i);
                    emit s.(!i)
                  end;
                  incr i
                done)
             ctxs;
           ignore !sorted
         | Axis.Attribute ->
           Array.iter
             (fun pre ->
                (* attributes sit immediately after their owner *)
                let i = ref (lower_bound s (pre + 1)) in
                let continue_ = ref true in
                while !continue_ && !i < Array.length s do
                  let p = s.(!i) in
                  if Doc_store.parent_at f p = pre then begin
                    emit p;
                    incr i
                  end
                  else if p <= pre + Doc_store.size_at f pre then incr i
                  else continue_ := false
                done)
             ctxs
         | _ -> Err.internal "Tag_index.step: unsupported axis")
      groups;
    (* child steps over nested contexts may interleave; normalize *)
    Staircase.sort_dedup out
  end
