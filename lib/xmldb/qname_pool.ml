(* Interning of qualified names, mirroring String_pool for QNames —
   including the internal mutex: the query server shares one store across
   concurrent sessions, and name interning happens during evaluation
   (constructors, name tests on computed names), not just at load time. *)

type t = {
  mu : Mutex.t;
  table : (Qname.t, int) Hashtbl.t;
  qnames : Qname.t Basis.Vec.t;
}

let create () =
  { mu = Mutex.create ();
    table = Hashtbl.create 64;
    qnames = Basis.Vec.create (Qname.make "") }

let[@inline] locked t f =
  Mutex.lock t.mu;
  match f () with
  | v -> Mutex.unlock t.mu; v
  | exception e -> Mutex.unlock t.mu; raise e

let intern t q =
  locked t (fun () ->
    match Hashtbl.find_opt t.table q with
    | Some id -> id
    | None ->
      let id = Basis.Vec.length t.qnames in
      Basis.Vec.push t.qnames q;
      Hashtbl.add t.table q id;
      id)

let find_opt t q = locked t (fun () -> Hashtbl.find_opt t.table q)

let get t id = locked t (fun () -> Basis.Vec.get t.qnames id)

let size t = locked t (fun () -> Basis.Vec.length t.qnames)
