(* XML serialization of stored nodes, used both to print query results and
   to compare results structurally in tests (two nodes with different
   identities but equal serializations are "deep equal"). *)

let escape_text buf s =
  String.iter
    (fun c ->
       match c with
       | '&' -> Buffer.add_string buf "&amp;"
       | '<' -> Buffer.add_string buf "&lt;"
       | '>' -> Buffer.add_string buf "&gt;"
       | c -> Buffer.add_char buf c)
    s

let escape_attr buf s =
  String.iter
    (fun c ->
       match c with
       | '&' -> Buffer.add_string buf "&amp;"
       | '<' -> Buffer.add_string buf "&lt;"
       | '"' -> Buffer.add_string buf "&quot;"
       | '\n' -> Buffer.add_string buf "&#10;"
       | '\t' -> Buffer.add_string buf "&#9;"
       | c -> Buffer.add_char buf c)
    s

let rec serialize_pre store (f : Doc_store.frag) frag_id buf pre =
  match Doc_store.kind_at f pre with
  | Node_kind.Document ->
    iter_children store f frag_id buf pre
  | Node_kind.Element ->
    let name = Qname.to_string (Doc_store.name_of_id store (Doc_store.name_at f pre)) in
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    (* attribute rows directly follow the element row *)
    let p = ref (pre + 1) in
    let stop = pre + Doc_store.size_at f pre in
    while !p <= stop && Doc_store.kind_at f !p = Node_kind.Attribute do
      let aname = Qname.to_string (Doc_store.name_of_id store (Doc_store.name_at f !p)) in
      Buffer.add_char buf ' ';
      Buffer.add_string buf aname;
      Buffer.add_string buf "=\"";
      escape_attr buf (Doc_store.text_of_id store (Doc_store.value_at f !p));
      Buffer.add_char buf '"';
      incr p
    done;
    if !p > stop then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      while !p <= stop do
        serialize_pre store f frag_id buf !p;
        p := !p + Doc_store.size_at f !p + 1
      done;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_char buf '>'
    end
  | Node_kind.Attribute ->
    (* a free-standing attribute serializes as name="value" *)
    let aname = Qname.to_string (Doc_store.name_of_id store (Doc_store.name_at f pre)) in
    Buffer.add_string buf aname;
    Buffer.add_string buf "=\"";
    escape_attr buf (Doc_store.text_of_id store (Doc_store.value_at f pre));
    Buffer.add_char buf '"'
  | Node_kind.Text ->
    escape_text buf (Doc_store.text_of_id store (Doc_store.value_at f pre))
  | Node_kind.Comment ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf (Doc_store.text_of_id store (Doc_store.value_at f pre));
    Buffer.add_string buf "-->"
  | Node_kind.Processing_instruction ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf
      (Qname.to_string (Doc_store.name_of_id store (Doc_store.name_at f pre)));
    let content = Doc_store.text_of_id store (Doc_store.value_at f pre) in
    if content <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf content
    end;
    Buffer.add_string buf "?>"

and iter_children store f frag_id buf pre =
  let p = ref (pre + 1) in
  let stop = pre + Doc_store.size_at f pre in
  while !p <= stop do
    if Doc_store.kind_at f !p <> Node_kind.Attribute then
      serialize_pre store f frag_id buf !p;
    p := !p + Doc_store.size_at f !p + 1
  done

let node_to_buf store buf (n : Node_id.t) =
  let f = Doc_store.frag store (Node_id.frag n) in
  serialize_pre store f (Node_id.frag n) buf (Node_id.pre n)

let node_to_string store n =
  let buf = Buffer.create 128 in
  node_to_buf store buf n;
  Buffer.contents buf
