(** A small, dependency-free XML 1.0 parser, sufficient for the paper's
    workloads: elements, attributes, character data, the five predefined
    entities and numeric character references, comments, processing
    instructions, CDATA sections; the XML declaration and DOCTYPE are
    accepted and skipped. No DTD processing and no namespace resolution
    (prefixes are kept lexically, see {!Qname}).

    Parsing streams directly into a {!Doc_store.Builder}, so a document
    becomes one pre/size/level fragment without an intermediate tree.
    Input arrives either as one in-memory string or through a chunked
    reader callback ({!parse_reader}): the reader variants keep only a
    sliding window live, so ingest memory is O(chunk), and the resulting
    store is byte-identical to a monolithic parse at any chunk size. *)

(** Raised on malformed input, with a message and byte offset. *)
exception Parse_error of string * int

(** Parse a complete document into [store]; returns its document node.
    [strip_ws] drops whitespace-only text nodes (boundary whitespace).
    [guard] is checked at every element boundary, so ingest runs under
    the same budget regime as evaluation: a deadline, operator budget, or
    cancellation trips [Err.Resource_error] mid-parse. Abandoning a parse
    this way leaves the store untouched apart from interned names/text —
    fragments only publish at builder [finish]. *)
val parse_document :
  ?strip_ws:bool -> ?guard:Basis.Budget.t -> Doc_store.t -> string ->
  Node_id.t

(** Parse a document streamed through a reader callback: [reader b ofs
    len] must store at most [len] fresh input bytes into [b] at [ofs] and
    return how many it stored (0 or negative ends the input — short reads
    are fine and define the chunking). Live memory is bounded by the
    sliding window ([window] bytes initially, default 64 KB, growing only
    when a single token outsizes it), and [guard] is additionally polled
    at every refill, i.e. at chunk boundaries. An aborted ingest
    publishes nothing: fragments only appear at builder [finish]. *)
val parse_reader :
  ?strip_ws:bool -> ?guard:Basis.Budget.t -> ?window:int -> Doc_store.t ->
  (Bytes.t -> int -> int -> int) -> Node_id.t

(** Like {!parse_document}, and also registers the document under [uri]
    so that [fn:doc(uri)] finds it. *)
val load_document :
  ?strip_ws:bool -> ?guard:Basis.Budget.t -> Doc_store.t -> uri:string ->
  string -> Node_id.t

(** Like {!parse_reader}, registering the document under [uri]. *)
val load_reader :
  ?strip_ws:bool -> ?guard:Basis.Budget.t -> ?window:int -> Doc_store.t ->
  uri:string -> (Bytes.t -> int -> int -> int) -> Node_id.t

(** Stream [path] from disk in [chunk_size]-byte reads (default 64 KB)
    and {!load_reader} it: whole-file slurping is gone, so multi-GB
    documents ingest in O(chunk) parser memory. *)
val load_file :
  ?strip_ws:bool -> ?guard:Basis.Budget.t -> ?chunk_size:int ->
  Doc_store.t -> uri:string -> string -> Node_id.t
