(** A small, dependency-free XML 1.0 parser, sufficient for the paper's
    workloads: elements, attributes, character data, the five predefined
    entities and numeric character references, comments, processing
    instructions, CDATA sections; the XML declaration and DOCTYPE are
    accepted and skipped. No DTD processing and no namespace resolution
    (prefixes are kept lexically, see {!Qname}).

    Parsing streams directly into a {!Doc_store.Builder}, so a document
    becomes one pre/size/level fragment without an intermediate tree. *)

(** Raised on malformed input, with a message and byte offset. *)
exception Parse_error of string * int

(** Parse a complete document into [store]; returns its document node.
    [strip_ws] drops whitespace-only text nodes (boundary whitespace).
    [guard] is checked at every element boundary, so ingest runs under
    the same budget regime as evaluation: a deadline, operator budget, or
    cancellation trips [Err.Resource_error] mid-parse. Abandoning a parse
    this way leaves the store untouched apart from interned names/text —
    fragments only publish at builder [finish]. *)
val parse_document :
  ?strip_ws:bool -> ?guard:Basis.Budget.t -> Doc_store.t -> string ->
  Node_id.t

(** Like {!parse_document}, and also registers the document under [uri]
    so that [fn:doc(uri)] finds it. *)
val load_document :
  ?strip_ws:bool -> ?guard:Basis.Budget.t -> Doc_store.t -> uri:string ->
  string -> Node_id.t

(** Read [path] from disk and {!load_document} it. *)
val load_file :
  ?strip_ws:bool -> ?guard:Basis.Budget.t -> Doc_store.t -> uri:string ->
  string -> Node_id.t
