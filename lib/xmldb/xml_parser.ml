(* A small, dependency-free XML 1.0 parser, sufficient for the paper's
   workloads: elements, attributes (single- or double-quoted), character
   data, the five predefined entities plus numeric character references,
   comments, processing instructions, CDATA sections, an optional XML
   declaration and DOCTYPE (both skipped). No DTD processing, no
   namespace resolution (prefixes are kept lexically, see Qname).

   Parsing streams straight into a Doc_store.Builder, so a parsed document
   becomes one pre/size/level fragment without an intermediate tree. *)

open Basis

exception Parse_error of string * int (* message, byte offset *)

type state = {
  src : string;
  mutable pos : int;
  builder : Doc_store.Builder.t;
  strip_ws : bool;
  guard : Budget.t option;
      (* budget checked at element boundaries: remote-ingested documents
         (server LOAD) run under the session budget, so a hostile or
         oversized payload trips Resource_error instead of occupying the
         worker indefinitely. Abandoning the builder mid-parse is safe:
         fragments only publish at [finish]. *)
}

let check_guard st =
  match st.guard with None -> () | Some g -> Budget.check g

let error st fmt =
  Format.kasprintf (fun m -> raise (Parse_error (m, st.pos))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let advance st n = st.pos <- st.pos + n

let expect st s =
  if looking_at st s then advance st (String.length s)
  else error st "expected %S" s

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while (match peek st with Some c when is_ws c -> true | _ -> false) do
    advance st 1
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let start = st.pos in
  (match peek st with
   | Some c when is_name_start c -> advance st 1
   | _ -> error st "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st 1
  done;
  String.sub st.src start (st.pos - start)

(* Decode an entity reference starting right after '&'. *)
let parse_entity st buf =
  if looking_at st "#x" || looking_at st "#X" then begin
    advance st 2;
    let start = st.pos in
    while (match peek st with
        | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> true
        | _ -> false) do advance st 1 done;
    let hex = String.sub st.src start (st.pos - start) in
    expect st ";";
    let code = int_of_string ("0x" ^ hex) in
    Buffer.add_utf_8_uchar buf (Uchar.of_int code)
  end
  else if looking_at st "#" then begin
    advance st 1;
    let start = st.pos in
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      advance st 1
    done;
    let dec = String.sub st.src start (st.pos - start) in
    expect st ";";
    Buffer.add_utf_8_uchar buf (Uchar.of_int (int_of_string dec))
  end
  else begin
    let name = parse_name st in
    expect st ";";
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | other -> error st "unknown entity &%s;" other
  end

let parse_attr_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) -> advance st 1; q
    | _ -> error st "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated attribute value"
    | Some c when c = quote -> advance st 1
    | Some '&' -> advance st 1; parse_entity st buf; loop ()
    | Some c -> Buffer.add_char buf c; advance st 1; loop ()
  in
  loop ();
  Buffer.contents buf

let all_ws s =
  let ok = ref true in
  String.iter (fun c -> if not (is_ws c) then ok := false) s;
  !ok

let parse_text st =
  let buf = Buffer.create 32 in
  let rec loop () =
    match peek st with
    | None | Some '<' -> ()
    | Some '&' -> advance st 1; parse_entity st buf; loop ()
    | Some c -> Buffer.add_char buf c; advance st 1; loop ()
  in
  loop ();
  let s = Buffer.contents buf in
  if st.strip_ws && all_ws s then () else Doc_store.Builder.text st.builder s

let parse_comment st =
  expect st "<!--";
  let start = st.pos in
  let rec find () =
    if st.pos + 2 >= String.length st.src then error st "unterminated comment"
    else if looking_at st "-->" then ()
    else (advance st 1; find ())
  in
  find ();
  let content = String.sub st.src start (st.pos - start) in
  advance st 3;
  Doc_store.Builder.comment st.builder content

let parse_pi st =
  expect st "<?";
  let target = parse_name st in
  skip_ws st;
  let start = st.pos in
  let rec find () =
    if st.pos + 1 >= String.length st.src then error st "unterminated PI"
    else if looking_at st "?>" then ()
    else (advance st 1; find ())
  in
  find ();
  let content = String.sub st.src start (st.pos - start) in
  advance st 2;
  Doc_store.Builder.pi st.builder target content

let parse_cdata st =
  expect st "<![CDATA[";
  let start = st.pos in
  let rec find () =
    if st.pos + 2 >= String.length st.src then error st "unterminated CDATA"
    else if looking_at st "]]>" then ()
    else (advance st 1; find ())
  in
  find ();
  let content = String.sub st.src start (st.pos - start) in
  advance st 3;
  Doc_store.Builder.text st.builder content

let rec parse_element st =
  check_guard st;
  expect st "<";
  let name = parse_name st in
  let qname = Qname.of_string name in
  Doc_store.Builder.start_element st.builder qname;
  (* attributes *)
  let rec attrs () =
    skip_ws st;
    match peek st with
    | Some c when is_name_start c ->
      let aname = parse_name st in
      skip_ws st; expect st "="; skip_ws st;
      let v = parse_attr_value st in
      Doc_store.Builder.attribute st.builder (Qname.of_string aname) v;
      attrs ()
    | _ -> ()
  in
  attrs ();
  if looking_at st "/>" then begin
    advance st 2;
    Doc_store.Builder.end_element st.builder
  end else begin
    expect st ">";
    parse_content st;
    expect st "</";
    let close = parse_name st in
    if close <> name then error st "mismatched tags <%s>...</%s>" name close;
    skip_ws st;
    expect st ">";
    Doc_store.Builder.end_element st.builder
  end

and parse_content st =
  match peek st with
  | None -> ()
  | Some '<' ->
    if looking_at st "</" then ()
    else begin
      (if looking_at st "<!--" then parse_comment st
       else if looking_at st "<![CDATA[" then parse_cdata st
       else if looking_at st "<?" then parse_pi st
       else parse_element st);
      parse_content st
    end
  | Some _ -> parse_text st; parse_content st

let skip_doctype st =
  expect st "<!DOCTYPE";
  (* skip to the matching '>' allowing one level of [...] *)
  let depth = ref 0 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated DOCTYPE"
    | Some '[' -> incr depth; advance st 1; loop ()
    | Some ']' -> decr depth; advance st 1; loop ()
    | Some '>' when !depth = 0 -> advance st 1
    | Some _ -> advance st 1; loop ()
  in
  loop ()

let parse_prolog st =
  skip_ws st;
  if looking_at st "<?xml" then begin
    let rec find () =
      if looking_at st "?>" then advance st 2
      else if st.pos >= String.length st.src then error st "unterminated XML declaration"
      else (advance st 1; find ())
    in
    find ()
  end;
  let rec misc () =
    skip_ws st;
    if looking_at st "<!--" then (parse_comment st; misc ())
    else if looking_at st "<!DOCTYPE" then (skip_doctype st; misc ())
    else if looking_at st "<?" then (parse_pi st; misc ())
  in
  misc ()

(* Parse a complete document; returns its document node. *)
let parse_document ?(strip_ws = false) ?guard store src =
  let builder = Doc_store.Builder.create store in
  let st = { src; pos = 0; builder; strip_ws; guard } in
  Doc_store.Builder.start_document builder;
  parse_prolog st;
  (match peek st with
   | Some '<' -> parse_element st
   | _ -> error st "expected root element");
  (* trailing misc *)
  let rec misc () =
    skip_ws st;
    if looking_at st "<!--" then (parse_comment st; misc ())
    else if looking_at st "<?" then (parse_pi st; misc ())
  in
  misc ();
  if st.pos <> String.length st.src then
    error st "trailing garbage after document element";
  Doc_store.Builder.end_document builder;
  let _, roots = Doc_store.Builder.finish builder in
  match roots with
  | [| root |] -> root
  | _ -> Err.internal "document parse produced %d roots" (Array.length roots)

(* Parse and register under a URI so that fn:doc can find it. *)
let load_document ?strip_ws ?guard store ~uri src =
  let root = parse_document ?strip_ws ?guard store src in
  Doc_store.register_document store uri root;
  root

let load_file ?strip_ws ?guard store ~uri path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  load_document ?strip_ws ?guard store ~uri src
