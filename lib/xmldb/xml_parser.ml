(* A small, dependency-free XML 1.0 parser, sufficient for the paper's
   workloads: elements, attributes (single- or double-quoted), character
   data, the five predefined entities plus numeric character references,
   comments, processing instructions, CDATA sections, an optional XML
   declaration and DOCTYPE (both skipped). No DTD processing, no
   namespace resolution (prefixes are kept lexically, see Qname).

   Parsing streams straight into a Doc_store.Builder, so a parsed document
   becomes one pre/size/level fragment without an intermediate tree.

   The parser reads through a sliding window over an optional refill
   callback, so ingest is O(window) in live memory regardless of document
   size: a multi-GB file streams through a fixed-size buffer straight
   into the builder's growable columns. Parsing a whole in-memory string
   is the degenerate case where the window *is* the string (zero copy,
   no refills). The window only grows when a single token needs more
   lookahead than it holds, and every refill is a chunk boundary: the
   budget guard is polled there, so cancellation and deadlines cut a
   streaming ingest off mid-file — abandoning the builder then is safe
   because fragments only publish at [finish]. *)

open Basis

exception Parse_error of string * int (* message, byte offset *)

type state = {
  mutable buf : Bytes.t; (* the window *)
  mutable lo : int;      (* read position within [buf] *)
  mutable hi : int;      (* filled extent of [buf] *)
  mutable base : int;    (* absolute offset of buf.[0] in the input *)
  refill : (Bytes.t -> int -> int -> int) option;
      (* [refill b ofs len] stores up to [len] fresh bytes at [ofs],
         returning how many (<= 0 means end of input); None when the
         whole input is already in [buf]. *)
  mutable eof : bool;
  builder : Doc_store.Builder.t;
  strip_ws : bool;
  guard : Budget.t option;
      (* budget checked at element boundaries and at every refill:
         remote-ingested documents (server LOAD) run under the session
         budget, so a hostile or oversized payload trips Resource_error
         instead of occupying the worker indefinitely. Abandoning the
         builder mid-parse is safe: fragments only publish at [finish]. *)
}

let check_guard st =
  match st.guard with None -> () | Some g -> Budget.check g

let error st fmt =
  Format.kasprintf (fun m -> raise (Parse_error (m, st.base + st.lo))) fmt

(* Pull the next chunk into the window, compacting the consumed prefix
   first and growing the window only if a token needs more lookahead than
   it holds. Returns whether any bytes arrived; always either makes
   progress or sets [eof]. *)
let fill st =
  match st.refill with
  | None -> st.eof <- true; false
  | Some refill ->
    if st.eof then false
    else begin
      if st.lo > 0 then begin
        let live = st.hi - st.lo in
        Bytes.blit st.buf st.lo st.buf 0 live;
        st.base <- st.base + st.lo;
        st.hi <- live;
        st.lo <- 0
      end;
      if st.hi = Bytes.length st.buf then begin
        let nb = Bytes.create (2 * Bytes.length st.buf) in
        Bytes.blit st.buf 0 nb 0 st.hi;
        st.buf <- nb
      end;
      check_guard st; (* chunk boundary *)
      let n = refill st.buf st.hi (Bytes.length st.buf - st.hi) in
      if n <= 0 then begin st.eof <- true; false end
      else begin st.hi <- st.hi + n; true end
    end

let rec peek st =
  if st.lo < st.hi then Some (Bytes.unsafe_get st.buf st.lo)
  else if st.eof then None
  else begin ignore (fill st : bool); peek st end

(* Try to make the window hold at least [n] unread bytes (fewer only at
   end of input). *)
let rec ensure st n =
  if st.hi - st.lo < n && not st.eof then begin
    ignore (fill st : bool);
    ensure st n
  end

let looking_at st s =
  let n = String.length s in
  ensure st n;
  st.hi - st.lo >= n
  && begin
    let rec eq i =
      i >= n || (Bytes.unsafe_get st.buf (st.lo + i) = s.[i] && eq (i + 1))
    in
    eq 0
  end

let advance st n = st.lo <- st.lo + n

let expect st s =
  if looking_at st s then advance st (String.length s)
  else error st "expected %S" s

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while (match peek st with Some c when is_ws c -> true | _ -> false) do
    advance st 1
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let buf = Buffer.create 16 in
  (match peek st with
   | Some c when is_name_start c -> Buffer.add_char buf c; advance st 1
   | _ -> error st "expected a name");
  let rec loop () =
    match peek st with
    | Some c when is_name_char c -> Buffer.add_char buf c; advance st 1; loop ()
    | _ -> ()
  in
  loop ();
  Buffer.contents buf

(* Decode an entity reference starting right after '&'. *)
let parse_entity st buf =
  if looking_at st "#x" || looking_at st "#X" then begin
    advance st 2;
    let hex = Buffer.create 8 in
    let rec digits () =
      match peek st with
      | Some (('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') as c) ->
        Buffer.add_char hex c; advance st 1; digits ()
      | _ -> ()
    in
    digits ();
    expect st ";";
    if Buffer.length hex = 0 then error st "empty character reference";
    let code = int_of_string ("0x" ^ Buffer.contents hex) in
    Buffer.add_utf_8_uchar buf (Uchar.of_int code)
  end
  else if looking_at st "#" then begin
    advance st 1;
    let dec = Buffer.create 8 in
    let rec digits () =
      match peek st with
      | Some ('0' .. '9' as c) -> Buffer.add_char dec c; advance st 1; digits ()
      | _ -> ()
    in
    digits ();
    expect st ";";
    if Buffer.length dec = 0 then error st "empty character reference";
    Buffer.add_utf_8_uchar buf (Uchar.of_int (int_of_string (Buffer.contents dec)))
  end
  else begin
    let name = parse_name st in
    expect st ";";
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | other -> error st "unknown entity &%s;" other
  end

let parse_attr_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) -> advance st 1; q
    | _ -> error st "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated attribute value"
    | Some c when c = quote -> advance st 1
    | Some '&' -> advance st 1; parse_entity st buf; loop ()
    | Some c -> Buffer.add_char buf c; advance st 1; loop ()
  in
  loop ();
  Buffer.contents buf

let all_ws s =
  let ok = ref true in
  String.iter (fun c -> if not (is_ws c) then ok := false) s;
  !ok

(* Bulk-copy window bytes into [buf] until a byte satisfying [stop]
   appears at the head of the window (or end of input). *)
let copy_until st stop buf =
  let rec loop () =
    let i = ref st.lo in
    while !i < st.hi && not (stop (Bytes.unsafe_get st.buf !i)) do incr i done;
    if !i > st.lo then begin
      Buffer.add_subbytes buf st.buf st.lo (!i - st.lo);
      st.lo <- !i
    end;
    if st.lo >= st.hi && not st.eof then begin
      ignore (fill st : bool);
      loop ()
    end
  in
  loop ()

let parse_text st =
  let buf = Buffer.create 32 in
  let rec loop () =
    copy_until st (fun c -> c = '<' || c = '&') buf;
    match peek st with
    | None | Some '<' -> ()
    | Some _ -> advance st 1; parse_entity st buf; loop ()
  in
  loop ();
  let s = Buffer.contents buf in
  if st.strip_ws && all_ws s then () else Doc_store.Builder.text st.builder s

(* Collect raw bytes up to (excluding) the delimiter, which the caller
   then advances over; used for comments, PIs and CDATA, whose content
   takes no entity processing. *)
let scan_until st delim what =
  let buf = Buffer.create 32 in
  let d0 = delim.[0] in
  let rec loop () =
    copy_until st (fun c -> c = d0) buf;
    if looking_at st delim then ()
    else
      match peek st with
      | None -> error st "unterminated %s" what
      | Some c -> Buffer.add_char buf c; advance st 1; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_comment st =
  expect st "<!--";
  let content = scan_until st "-->" "comment" in
  advance st 3;
  Doc_store.Builder.comment st.builder content

let parse_pi st =
  expect st "<?";
  let target = parse_name st in
  skip_ws st;
  let content = scan_until st "?>" "PI" in
  advance st 2;
  Doc_store.Builder.pi st.builder target content

let parse_cdata st =
  expect st "<![CDATA[";
  let content = scan_until st "]]>" "CDATA" in
  advance st 3;
  Doc_store.Builder.text st.builder content

let rec parse_element st =
  check_guard st;
  expect st "<";
  let name = parse_name st in
  let qname = Qname.of_string name in
  Doc_store.Builder.start_element st.builder qname;
  (* attributes *)
  let rec attrs () =
    skip_ws st;
    match peek st with
    | Some c when is_name_start c ->
      let aname = parse_name st in
      skip_ws st; expect st "="; skip_ws st;
      let v = parse_attr_value st in
      Doc_store.Builder.attribute st.builder (Qname.of_string aname) v;
      attrs ()
    | _ -> ()
  in
  attrs ();
  if looking_at st "/>" then begin
    advance st 2;
    Doc_store.Builder.end_element st.builder
  end else begin
    expect st ">";
    parse_content st;
    expect st "</";
    let close = parse_name st in
    if close <> name then error st "mismatched tags <%s>...</%s>" name close;
    skip_ws st;
    expect st ">";
    Doc_store.Builder.end_element st.builder
  end

and parse_content st =
  match peek st with
  | None -> ()
  | Some '<' ->
    if looking_at st "</" then ()
    else begin
      (if looking_at st "<!--" then parse_comment st
       else if looking_at st "<![CDATA[" then parse_cdata st
       else if looking_at st "<?" then parse_pi st
       else parse_element st);
      parse_content st
    end
  | Some _ -> parse_text st; parse_content st

let skip_doctype st =
  expect st "<!DOCTYPE";
  (* skip to the matching '>' allowing one level of [...] *)
  let depth = ref 0 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated DOCTYPE"
    | Some '[' -> incr depth; advance st 1; loop ()
    | Some ']' -> decr depth; advance st 1; loop ()
    | Some '>' when !depth = 0 -> advance st 1
    | Some _ -> advance st 1; loop ()
  in
  loop ()

let parse_prolog st =
  skip_ws st;
  if looking_at st "<?xml" then begin
    let rec find () =
      if looking_at st "?>" then advance st 2
      else
        match peek st with
        | None -> error st "unterminated XML declaration"
        | Some _ -> advance st 1; find ()
    in
    find ()
  end;
  let rec misc () =
    skip_ws st;
    if looking_at st "<!--" then (parse_comment st; misc ())
    else if looking_at st "<!DOCTYPE" then (skip_doctype st; misc ())
    else if looking_at st "<?" then (parse_pi st; misc ())
  in
  misc ()

(* Drive a prepared state through one complete document. *)
let run st =
  Doc_store.Builder.start_document st.builder;
  parse_prolog st;
  (match peek st with
   | Some '<' -> parse_element st
   | _ -> error st "expected root element");
  (* trailing misc *)
  let rec misc () =
    skip_ws st;
    if looking_at st "<!--" then (parse_comment st; misc ())
    else if looking_at st "<?" then (parse_pi st; misc ())
  in
  misc ();
  if peek st <> None then error st "trailing garbage after document element";
  Doc_store.Builder.end_document st.builder;
  let _, roots = Doc_store.Builder.finish st.builder in
  match roots with
  | [| root |] -> root
  | _ -> Err.internal "document parse produced %d roots" (Array.length roots)

(* Parse a complete in-memory document; returns its document node. The
   string itself serves as the (never-written) window. *)
let parse_document ?(strip_ws = false) ?guard store src =
  let builder = Doc_store.Builder.create store in
  let st = {
    buf = Bytes.unsafe_of_string src;
    lo = 0;
    hi = String.length src;
    base = 0;
    refill = None;
    eof = true;
    builder;
    strip_ws;
    guard;
  } in
  run st

(* Parse a document streamed through [reader]; each call to [reader b ofs
   len] supplies at most [len] bytes (<= 0 ends the input). Live memory
   is bounded by the window (initially [window] bytes, growing only past
   oversized tokens), and the guard is polled at every refill. *)
let parse_reader ?(strip_ws = false) ?guard ?(window = 65536) store reader =
  if window <= 0 then Err.internal "parse_reader: window must be positive";
  let builder = Doc_store.Builder.create store in
  let st = {
    buf = Bytes.create window;
    lo = 0;
    hi = 0;
    base = 0;
    refill = Some reader;
    eof = false;
    builder;
    strip_ws;
    guard;
  } in
  run st

(* Parse and register under a URI so that fn:doc can find it. *)
let load_document ?strip_ws ?guard store ~uri src =
  let root = parse_document ?strip_ws ?guard store src in
  Doc_store.register_document store uri root;
  root

let load_reader ?strip_ws ?guard ?window store ~uri reader =
  let root = parse_reader ?strip_ws ?guard ?window store reader in
  Doc_store.register_document store uri root;
  root

(* Stream [path] from disk in [chunk_size]-byte reads. *)
let load_file ?strip_ws ?guard ?(chunk_size = 65536) store ~uri path =
  if chunk_size <= 0 then Err.internal "load_file: chunk_size must be positive";
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
    let reader b ofs len = input ic b ofs (min len chunk_size) in
    load_reader ?strip_ws ?guard ~window:chunk_size store ~uri reader)
