(* The document store: Pathfinder's schema-oblivious XML encoding.

   Every XML fragment (a parsed document or a run of constructed nodes)
   is one contiguous pre/size/level table (paper, Section 3 / Figure 5):

     pre    - implicit row index: preorder rank
     kind   - node kind
     name   - name-pool id (elements, attributes, PI targets), -1 otherwise
     value  - text-pool id (text, attribute, comment, PI content), -1
     size   - number of table rows in the node's subtree (descendants,
              including inlined attribute rows)
     level  - depth (roots of the fragment are at level 0)
     parent - preorder rank of the parent inside this fragment, -1 for roots

   Attributes are inlined immediately after their owner element and before
   its children with size 0; axes other than [attribute] skip them.

   Fragments are append-only once finished; runtime node construction
   allocates fresh fragments, giving constructed trees a document order
   after all existing nodes — the seq->doc order interaction (paper 2(2))
   is realized by the *order of content rows* fed to the builder.

   Physical layout (paper Section 3: the MonetDB/X100-style encoded
   relational back-end). A finished fragment is frozen into bit-width
   minimal packed columns: each integer column picks the narrowest of
   u8/u16/u32 that holds its actual maximum, kinds are one byte per row,
   and the name/value columns are dictionary-encoded per fragment on top
   of the global pools whenever the local dictionary shrinks the column
   (a scale-10 XMark document has ~80 distinct tag names, so tag columns
   drop from 32 to 8 bits per row). The boxed representation is kept both
   as the builder's working form and as a runtime-selectable reference
   build ([create ~packed:false], env XRQ_STORE_PACK=0) that the property
   tests and the differential fuzzer compare against row for row. *)

open Basis

(* -- fragment representations -------------------------------------------- *)

type boxed = {
  kinds : Node_kind.t array;
  names : int array;
  values : int array;
  sizes : int array;
  levels : int array;
  parents : int array;
}

(* A packed integer column: u8 / u16 / u32 little-endian, chosen at freeze
   time from the column's actual maximum. *)
type col = C8 of Bytes.t | C16 of Bytes.t | C32 of Bytes.t

type packed = {
  p_len : int;
  p_kinds : Bytes.t;       (* Node_kind code, one byte per row *)
  p_names : col;           (* 0 = no name; see [decode_dict] *)
  p_name_dict : int array; (* local code - 1 -> global pool id; [||] = identity *)
  p_values : col;
  p_value_dict : int array;
  p_sizes : col;
  p_levels : col;
  p_parents : col;         (* parent pre + 1, 0 for roots *)
}

type frag = Boxed of boxed | Packed of packed

let frag_length = function
  | Boxed b -> Array.length b.kinds
  | Packed p -> p.p_len

let frag_packed = function Boxed _ -> false | Packed _ -> true

let[@inline] col_get c i =
  match c with
  | C8 b -> Char.code (Bytes.get b i)
  | C16 b -> Bytes.get_uint16_le b (i * 2)
  | C32 b -> Int32.to_int (Bytes.get_int32_le b (i * 4)) land 0xFFFFFFFF

(* Name/value column codes: 0 means "none" (-1 in the boxed form). With a
   dictionary, code k > 0 stands for dict.(k - 1); without one the code is
   the global pool id + 1. *)
let[@inline] decode_dict dict code =
  if code = 0 then -1
  else if Array.length dict = 0 then code - 1
  else Array.unsafe_get dict (code - 1)

let[@inline] kind_at f pre =
  match f with
  | Boxed b -> b.kinds.(pre)
  | Packed p -> Node_kind.of_int (Char.code (Bytes.get p.p_kinds pre))

let[@inline] name_at f pre =
  match f with
  | Boxed b -> b.names.(pre)
  | Packed p -> decode_dict p.p_name_dict (col_get p.p_names pre)

let[@inline] value_at f pre =
  match f with
  | Boxed b -> b.values.(pre)
  | Packed p -> decode_dict p.p_value_dict (col_get p.p_values pre)

let[@inline] size_at f pre =
  match f with
  | Boxed b -> b.sizes.(pre)
  | Packed p -> col_get p.p_sizes pre

let[@inline] level_at f pre =
  match f with
  | Boxed b -> b.levels.(pre)
  | Packed p -> col_get p.p_levels pre

let[@inline] parent_at f pre =
  match f with
  | Boxed b -> b.parents.(pre)
  | Packed p -> col_get p.p_parents pre - 1

(* -- bulk range decoding --------------------------------------------------- *)

(* Executor-visible counters for the compressed-execution paths. Plain
   atomics at module level: bulk scans run inside worker domains where no
   profile handle is in scope, so the engine snapshots deltas around a
   run instead. Counting is per row decoded, which makes the numbers
   independent of how rows were partitioned into windows — serial and
   parallel runs agree bit for bit. *)
module Stats = struct
  let bulk = Atomic.make 0
  let bulk_decodes () = Atomic.get bulk
  let add_bulk n = ignore (Atomic.fetch_and_add bulk n)
end

(* Decode one packed column slice [lo, hi) into [buf.(0 .. hi-lo-1)]: the
   bit-width dispatch happens once per call instead of once per row, and
   each width gets its own tight loop. *)
let col_range c lo hi (buf : int array) =
  match c with
  | C8 b ->
    for i = lo to hi - 1 do
      Array.unsafe_set buf (i - lo) (Char.code (Bytes.unsafe_get b i))
    done
  | C16 b ->
    for i = lo to hi - 1 do
      Array.unsafe_set buf (i - lo) (Bytes.get_uint16_le b (i * 2))
    done
  | C32 b ->
    for i = lo to hi - 1 do
      Array.unsafe_set buf (i - lo)
        (Int32.to_int (Bytes.get_int32_le b (i * 4)) land 0xFFFFFFFF)
    done

let check_range what f lo hi buf_len =
  let n = frag_length f in
  if lo < 0 || hi < lo || hi > n then
    Err.internal "Doc_store.%s: range [%d,%d) outside fragment of %d rows"
      what lo hi n;
  if hi - lo > buf_len then
    Err.internal "Doc_store.%s: scratch buffer too small (%d < %d)"
      what buf_len (hi - lo)

let kinds_range f lo hi (buf : Node_kind.t array) =
  check_range "kinds_range" f lo hi (Array.length buf);
  (match f with
   | Boxed b -> Array.blit b.kinds lo buf 0 (hi - lo)
   | Packed p ->
     for i = lo to hi - 1 do
       Array.unsafe_set buf (i - lo)
         (Node_kind.of_int (Char.code (Bytes.unsafe_get p.p_kinds i)))
     done);
  Stats.add_bulk (hi - lo)

let names_range f lo hi buf =
  check_range "names_range" f lo hi (Array.length buf);
  (match f with
   | Boxed b -> Array.blit b.names lo buf 0 (hi - lo)
   | Packed p ->
     col_range p.p_names lo hi buf;
     let dict = p.p_name_dict in
     if Array.length dict = 0 then
       for i = 0 to hi - lo - 1 do buf.(i) <- buf.(i) - 1 done
     else
       for i = 0 to hi - lo - 1 do buf.(i) <- decode_dict dict buf.(i) done);
  Stats.add_bulk (hi - lo)

let values_range f lo hi buf =
  check_range "values_range" f lo hi (Array.length buf);
  (match f with
   | Boxed b -> Array.blit b.values lo buf 0 (hi - lo)
   | Packed p ->
     col_range p.p_values lo hi buf;
     let dict = p.p_value_dict in
     if Array.length dict = 0 then
       for i = 0 to hi - lo - 1 do buf.(i) <- buf.(i) - 1 done
     else
       for i = 0 to hi - lo - 1 do buf.(i) <- decode_dict dict buf.(i) done);
  Stats.add_bulk (hi - lo)

let sizes_range f lo hi buf =
  check_range "sizes_range" f lo hi (Array.length buf);
  (match f with
   | Boxed b -> Array.blit b.sizes lo buf 0 (hi - lo)
   | Packed p -> col_range p.p_sizes lo hi buf);
  Stats.add_bulk (hi - lo)

(* Local name-code column slice: the raw per-fragment codes, no dictionary
   expansion. Boxed fragments present the identity coding (global id + 1,
   0 = none) so predicate translation is uniform across representations. *)
let name_codes_range f lo hi buf =
  check_range "name_codes_range" f lo hi (Array.length buf);
  (match f with
   | Boxed b ->
     for i = lo to hi - 1 do buf.(i - lo) <- b.names.(i) + 1 done
   | Packed p -> col_range p.p_names lo hi buf);
  Stats.add_bulk (hi - lo)

(* -- dictionary-code access ------------------------------------------------ *)

(* The per-row local codes (0 = none). Boxed fragments use the identity
   coding, so code equality coincides with name/text equality in every
   representation: the pools intern, dictionaries are injective into the
   pools, hence local codes are injective into strings per fragment. *)
let[@inline] name_code_at f pre =
  match f with
  | Boxed b -> b.names.(pre) + 1
  | Packed p -> col_get p.p_names pre

let[@inline] text_code_at f pre =
  match f with
  | Boxed b -> b.values.(pre) + 1
  | Packed p -> col_get p.p_values pre

(* -- freezing a boxed fragment into packed columns ------------------------ *)

let width_for maxv = if maxv < 0x100 then 1 else if maxv < 0x10000 then 2 else 4

(* Pack a non-negative integer column at the narrowest width that holds
   its maximum. *)
let pack_col (a : int array) : col =
  let n = Array.length a in
  let maxv = Array.fold_left (fun m v -> if v > m then v else m) 0 a in
  match width_for maxv with
  | 1 ->
    let b = Bytes.create n in
    for i = 0 to n - 1 do Bytes.unsafe_set b i (Char.unsafe_chr a.(i)) done;
    C8 b
  | 2 ->
    let b = Bytes.create (2 * n) in
    for i = 0 to n - 1 do Bytes.set_uint16_le b (2 * i) a.(i) done;
    C16 b
  | _ ->
    if maxv > 0xFFFFFFFF then
      Err.internal "Doc_store: column value %d exceeds u32" maxv;
    let b = Bytes.create (4 * n) in
    for i = 0 to n - 1 do Bytes.set_int32_le b (4 * i) (Int32.of_int a.(i)) done;
    C32 b

(* Dictionary-encode a pool-id column (-1 = none). Returns the code column
   and the dictionary; the dictionary is [||] (identity coding: global
   id + 1) whenever it would not shrink the bytes — local codes are dense
   in first-occurrence order, so the encoding is deterministic. *)
let dict_encode (ids : int array) : int array * int array =
  let n = Array.length ids in
  let tbl = Hashtbl.create 64 in
  let dict = Vec.create 0 in
  let codes = Array.make n 0 in
  let maxg = ref (-1) in
  for i = 0 to n - 1 do
    let id = ids.(i) in
    if id >= 0 then begin
      if id > !maxg then maxg := id;
      let c =
        match Hashtbl.find_opt tbl id with
        | Some c -> c
        | None ->
          let c = Vec.length dict + 1 in
          Vec.push dict id;
          Hashtbl.add tbl id c;
          c
      in
      codes.(i) <- c
    end
  done;
  let k = Vec.length dict in
  let with_dict = (n * width_for k) + (8 * k) in
  let without = n * width_for (!maxg + 1) in
  if k > 0 && with_dict < without then (codes, Vec.to_array dict)
  else (Array.map (fun id -> id + 1) ids, [||])

let pack_frag (b : boxed) : packed =
  let n = Array.length b.kinds in
  let kinds = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set kinds i (Char.unsafe_chr (Node_kind.to_int b.kinds.(i)))
  done;
  let name_codes, name_dict = dict_encode b.names in
  let value_codes, value_dict = dict_encode b.values in
  {
    p_len = n;
    p_kinds = kinds;
    p_names = pack_col name_codes;
    p_name_dict = name_dict;
    p_values = pack_col value_codes;
    p_value_dict = value_dict;
    p_sizes = pack_col b.sizes;
    p_levels = pack_col b.levels;
    p_parents = pack_col (Array.map (fun p -> p + 1) b.parents);
  }

let col_bytes = function C8 b | C16 b | C32 b -> Bytes.length b

(* Table bytes of one fragment as held in memory (dictionaries count at
   one word per entry; boxed fragments at one word per cell). *)
let frag_bytes = function
  | Boxed b -> 8 * 6 * Array.length b.kinds
  | Packed p ->
    Bytes.length p.p_kinds
    + col_bytes p.p_names + (8 * Array.length p.p_name_dict)
    + col_bytes p.p_values + (8 * Array.length p.p_value_dict)
    + col_bytes p.p_sizes + col_bytes p.p_levels + col_bytes p.p_parents

(* -- the store ------------------------------------------------------------ *)

type t = {
  mu : Mutex.t;
      (* guards frags appends, the documents list, and name_counts; the
         pools carry their own locks. Readers of already-published
         fragments do not take it — fragments are immutable once pushed,
         and cross-thread visibility of the push itself is the lock's
         job on the writing side (server-level store locks keep whole
         queries from racing a concurrent append). *)
  name_pool : Qname_pool.t;
  text_pool : String_pool.t;
  frags : frag Vec.t;
  pack : bool; (* freeze finished fragments into packed columns? *)
  mutable documents : (string * Node_id.t) list; (* uri -> document node *)
  name_counts : (int, int) Hashtbl.t;  (* name id -> total occurrences *)
  mutable counted_frags : int;         (* frags folded into name_counts *)
}

let empty_frag = Boxed {
  kinds = [||]; names = [||]; values = [||];
  sizes = [||]; levels = [||]; parents = [||];
}

let default_pack () =
  match Sys.getenv_opt "XRQ_STORE_PACK" with
  | Some ("0" | "off" | "false") -> false
  | _ -> true

let create ?packed () = {
  mu = Mutex.create ();
  name_pool = Qname_pool.create ();
  text_pool = String_pool.create ();
  frags = Vec.create empty_frag;
  pack = (match packed with Some b -> b | None -> default_pack ());
  documents = [];
  name_counts = Hashtbl.create 64;
  counted_frags = 0;
}

let[@inline] locked t f =
  Mutex.lock t.mu;
  match f () with
  | v -> Mutex.unlock t.mu; v
  | exception e -> Mutex.unlock t.mu; raise e

let n_frags t = Vec.length t.frags
let frag t i = Vec.get t.frags i
let packing t = t.pack

let encoded_bytes t = Vec.fold_left (fun acc f -> acc + frag_bytes f) 0 t.frags

(* -- name/text pools ----------------------------------------------------- *)

let intern_name t q = Qname_pool.intern t.name_pool q
let name_of_id t id = Qname_pool.get t.name_pool id

(* Name id for a node test: if the name never occurs in the store, return
   -2 which matches no node. *)
let name_test_id t q =
  match Qname_pool.find_opt t.name_pool q with
  | Some id -> id
  | None -> -2

let text_of_id t id = String_pool.get t.text_pool id

let text_pool t = t.text_pool

(* -- predicate-to-code translation ---------------------------------------- *)

(* Reverse probes: translate a constant (a qname or a string literal) into
   the fragment's local code, once per (predicate, fragment), so the per-
   row evaluation is an integer compare on the stored codes. [None] means
   the constant cannot occur in this fragment — the predicate is decided
   without touching a single row. Dictionary scans are linear, but local
   dictionaries are small by construction (they only exist when they
   shrink the column) and the probe runs once per fragment, not per row. *)

let code_of_id dict id =
  if Array.length dict = 0 then Some (id + 1)
  else
    let n = Array.length dict in
    let rec find i =
      if i >= n then None
      else if Array.unsafe_get dict i = id then Some (i + 1)
      else find (i + 1)
    in
    find 0

let name_code_of_id f id =
  if id < 0 then None
  else
    match f with
    | Boxed _ -> Some (id + 1)
    | Packed p -> code_of_id p.p_name_dict id

let code_of_name t f q =
  match Qname_pool.find_opt t.name_pool q with
  | None -> None
  | Some id -> name_code_of_id f id

let code_of_text t f s =
  match String_pool.find_opt t.text_pool s with
  | None -> None
  | Some id ->
    (match f with
     | Boxed _ -> Some (id + 1)
     | Packed p -> code_of_id p.p_value_dict id)

(* Decode a local text code back to its global pool id (-1 for 0 = none):
   the late-materialization step of code-carrying columns. *)
let[@inline] text_id_of_code f code =
  match f with
  | Boxed _ -> code - 1
  | Packed p -> decode_dict p.p_value_dict code

let text_of_code t f code =
  let id = text_id_of_code f code in
  if id < 0 then "" else text_of_id t id

(* -- node accessors ------------------------------------------------------ *)

let kind t (n : Node_id.t) = kind_at (frag t (Node_id.frag n)) (Node_id.pre n)
let name_id t (n : Node_id.t) = name_at (frag t (Node_id.frag n)) (Node_id.pre n)
let size t (n : Node_id.t) = size_at (frag t (Node_id.frag n)) (Node_id.pre n)
let level t (n : Node_id.t) = level_at (frag t (Node_id.frag n)) (Node_id.pre n)

let name t n =
  let id = name_id t n in
  if id < 0 then None else Some (name_of_id t id)

let value t (n : Node_id.t) =
  let id = value_at (frag t (Node_id.frag n)) (Node_id.pre n) in
  if id < 0 then "" else text_of_id t id

let parent t (n : Node_id.t) =
  let p = parent_at (frag t (Node_id.frag n)) (Node_id.pre n) in
  if p < 0 then None else Some (Node_id.make ~frag:(Node_id.frag n) ~pre:p)

(* String value per XDM: elements and documents concatenate the text
   descendants in document order, other kinds carry their own value. *)
let string_value t (n : Node_id.t) =
  match kind t n with
  | Node_kind.Element | Node_kind.Document ->
    let f = frag t (Node_id.frag n) in
    let pre = Node_id.pre n in
    let buf = Buffer.create 32 in
    for p = pre + 1 to pre + size_at f pre do
      if kind_at f p = Node_kind.Text then
        Buffer.add_string buf (text_of_id t (value_at f p))
    done;
    Buffer.contents buf
  | Node_kind.Attribute | Node_kind.Text | Node_kind.Comment
  | Node_kind.Processing_instruction -> value t n

(* -- documents ----------------------------------------------------------- *)

let register_document t uri root =
  locked t (fun () -> t.documents <- (uri, root) :: t.documents)

let find_document t uri = locked t (fun () -> List.assoc_opt uri t.documents)

let documents t = locked t (fun () -> List.rev t.documents)

(* -- builder ------------------------------------------------------------- *)

module Builder = struct
  type nonrec t = {
    store : t;
    kinds : Node_kind.t Vec.t;
    names : int Vec.t;
    values : int Vec.t;
    sizes : int Vec.t;
    levels : int Vec.t;
    parents : int Vec.t;
    mutable stack : int list;      (* open nodes, innermost first *)
    mutable last_text : int;       (* pre of a trailing mergeable text node, -1 *)
    mutable finished : bool;
  }

  let create store = {
    store;
    kinds = Vec.create Node_kind.Text;
    names = Vec.create (-1);
    values = Vec.create (-1);
    sizes = Vec.create 0;
    levels = Vec.create 0;
    parents = Vec.create (-1);
    stack = [];
    last_text = -1;
    finished = false;
  }

  let depth b = List.length b.stack

  let cur_parent b = match b.stack with [] -> -1 | p :: _ -> p

  let emit b kind name value =
    let pre = Vec.length b.kinds in
    Vec.push b.kinds kind;
    Vec.push b.names name;
    Vec.push b.values value;
    Vec.push b.sizes 0;
    Vec.push b.levels (depth b);
    Vec.push b.parents (cur_parent b);
    pre

  let start_document b =
    b.last_text <- -1;
    let pre = emit b Node_kind.Document (-1) (-1) in
    b.stack <- pre :: b.stack

  let start_element b qname =
    b.last_text <- -1;
    let pre = emit b Node_kind.Element (intern_name b.store qname) (-1) in
    b.stack <- pre :: b.stack

  (* Standalone attribute construction (computed attribute constructors
     yield parentless attribute nodes) is allowed on an empty stack. *)
  let attribute b qname v =
    (match b.stack with
     | [] -> ()
     | top :: _ ->
       if Vec.get b.kinds top <> Node_kind.Element then
         Err.internal "Builder.attribute: owner is not an element";
       (* Attributes must precede any content of the open element. *)
       if Vec.length b.kinds <> top + 1
          && Vec.get b.kinds (Vec.length b.kinds - 1) <> Node_kind.Attribute
       then Err.dynamic "attribute node constructed after non-attribute content");
    let vid = String_pool.intern b.store.text_pool v in
    ignore (emit b Node_kind.Attribute (intern_name b.store qname) vid)

  let text b s =
    if s <> "" then begin
      if b.last_text >= 0 then begin
        (* merge adjacent text nodes, as XDM requires after construction *)
        let old = text_of_id b.store (Vec.get b.values b.last_text) in
        Vec.set b.values b.last_text
          (String_pool.intern b.store.text_pool (old ^ s))
      end else begin
        let vid = String_pool.intern b.store.text_pool s in
        let pre = emit b Node_kind.Text (-1) vid in
        b.last_text <- pre
      end
    end

  (* Emit a text node even when [s] is empty and without merging: computed
     text constructors (text { "" }) create a node regardless. *)
  let force_text b s =
    b.last_text <- -1;
    ignore (emit b Node_kind.Text (-1) (String_pool.intern b.store.text_pool s))

  let comment b s =
    b.last_text <- -1;
    ignore (emit b Node_kind.Comment (-1) (String_pool.intern b.store.text_pool s))

  let pi b target content =
    b.last_text <- -1;
    let nid = intern_name b.store (Qname.make target) in
    ignore (emit b Node_kind.Processing_instruction nid
              (String_pool.intern b.store.text_pool content))

  let close b =
    match b.stack with
    | [] -> Err.internal "Builder: unbalanced end of node"
    | top :: rest ->
      Vec.set b.sizes top (Vec.length b.kinds - top - 1);
      b.stack <- rest;
      b.last_text <- -1

  let end_element b = close b
  let end_document b = close b

  (* Blit the subtree rooted at [pre0] of fragment [src] into the builder,
     shifting levels and rebasing parent pointers. *)
  let copy_node b (src : frag) pre0 =
    b.last_text <- -1;
    let dst0 = Vec.length b.kinds in
    let delta_level = depth b - level_at src pre0 in
    for p = pre0 to pre0 + size_at src pre0 do
      let parent =
        if p = pre0 then cur_parent b
        else parent_at src p - pre0 + dst0
      in
      Vec.push b.kinds (kind_at src p);
      Vec.push b.names (name_at src p);
      Vec.push b.values (value_at src p);
      Vec.push b.sizes (size_at src p);
      Vec.push b.levels (level_at src p + delta_level);
      Vec.push b.parents parent
    done;
    b.last_text <- -1

  (* Deep-copy the subtree rooted at [n] (from any fragment of the same
     store) as content of the currently open node. Implements the node
     copying of XQuery constructors. Copying a text node merges with an
     adjacent text sibling; copying a document node copies its children. *)
  let copy b (n : Node_id.t) =
    let src = frag b.store (Node_id.frag n) in
    let pre0 = Node_id.pre n in
    match kind_at src pre0 with
    | Node_kind.Text ->
      text b (text_of_id b.store (value_at src pre0))
    | Node_kind.Attribute ->
      attribute b (name_of_id b.store (name_at src pre0))
        (text_of_id b.store (value_at src pre0))
    | Node_kind.Document ->
      b.last_text <- -1;
      let p = ref (pre0 + 1) in
      let stop = pre0 + size_at src pre0 in
      while !p <= stop do
        if kind_at src !p = Node_kind.Text then
          text b (text_of_id b.store (value_at src !p))
        else copy_node b src !p;
        p := !p + size_at src !p + 1
      done
    | Node_kind.Element | Node_kind.Comment | Node_kind.Processing_instruction ->
      copy_node b src pre0

  (* Freeze the builder into a new fragment; returns the fragment id and
     the preorder ranks of the fragment's roots. The freeze step is where
     the packed columns are built: the boxed working arrays are scanned
     once for their maxima and re-emitted at minimal width. *)
  let finish b =
    if b.finished then Err.internal "Builder.finish called twice";
    if b.stack <> [] then Err.internal "Builder.finish with open nodes";
    b.finished <- true;
    let boxed = {
      kinds = Vec.to_array b.kinds;
      names = Vec.to_array b.names;
      values = Vec.to_array b.values;
      sizes = Vec.to_array b.sizes;
      levels = Vec.to_array b.levels;
      parents = Vec.to_array b.parents;
    } in
    let f = if b.store.pack then Packed (pack_frag boxed) else Boxed boxed in
    let fid =
      locked b.store (fun () ->
        let fid = Vec.length b.store.frags in
        Vec.push b.store.frags f;
        fid)
    in
    let roots = Vec.create (-1) in
    let p = ref 0 in
    let n = frag_length f in
    while !p < n do
      Vec.push roots !p;
      p := !p + size_at f !p + 1
    done;
    (fid, Array.map (fun pre -> Node_id.make ~frag:fid ~pre) (Vec.to_array roots))
end

(* -- total node count (for stats / benchmarks) --------------------------- *)

let total_nodes t =
  Vec.fold_left (fun acc f -> acc + frag_length f) 0 t.frags

(* How many nodes (elements and attributes) carry the given name, across
   all fragments. Counts are folded incrementally: fragments are immutable
   once finished, so only the frags appended since the last query need a
   scan. Packed fragments with a name dictionary fold by counting local
   codes and expanding once through the dictionary. Used to seed the
   optimizer's cardinality estimates. *)
let name_occurrences t q =
  let qid = Qname_pool.find_opt t.name_pool q in
  locked t (fun () ->
    let bump id k =
      if k > 0 then
        Hashtbl.replace t.name_counts id
          (k + Option.value ~default:0 (Hashtbl.find_opt t.name_counts id))
    in
    for fid = t.counted_frags to n_frags t - 1 do
      match frag t fid with
      | Boxed b ->
        Array.iter (fun id -> if id >= 0 then bump id 1) b.names
      | Packed p ->
        let k = Array.length p.p_name_dict in
        if k > 0 then begin
          let counts = Array.make (k + 1) 0 in
          for pre = 0 to p.p_len - 1 do
            let c = col_get p.p_names pre in
            counts.(c) <- counts.(c) + 1
          done;
          for c = 1 to k do bump p.p_name_dict.(c - 1) counts.(c) done
        end else
          for pre = 0 to p.p_len - 1 do
            let c = col_get p.p_names pre in
            if c > 0 then bump (c - 1) 1
          done
    done;
    t.counted_frags <- n_frags t;
    match qid with
    | None -> 0
    | Some id -> Option.value ~default:0 (Hashtbl.find_opt t.name_counts id))

(* -- snapshots ------------------------------------------------------------ *)

(* A versioned, checksummed on-disk image of a whole store. Layout:

     magic "XRQSNAP1" | u32 version
     qname pool   : u32 count | blob of (u32 plen, prefix, u32 llen, local)*
     text pool    : u32 count | blob of (u32 len, bytes)*
     documents    : u32 count | blob of (u32 len, uri, u32 frag, u32 pre)*
     fragments    : u32 count | per fragment:
                      u32 rows
                      kinds   : u8 width=1 | blob
                      names   : u8 width | blob ; u32 dict count | blob
                      values  : u8 width | blob ; u32 dict count | blob
                      sizes   : u8 width | blob
                      levels  : u8 width | blob
                      parents : u8 width | blob
     trailer "XRQEND1\n"

   where blob = u64 byte length | payload | u32 crc32(payload). Column
   payloads are the packed column bytes verbatim, so a fragment loads
   with one read per column and no re-encoding; boxed fragments pack on
   the fly at save, which also makes save -> load -> save byte-identical
   regardless of the source store's representation. Pools are written in
   dense id order and re-interned in that order at load, reproducing ids
   exactly. All corruption — bad magic, version skew, truncation, a
   checksum mismatch, out-of-range structure — raises [Err.Dynamic_error]
   ("the input is bad", exit code 1); a failed load never publishes a
   partial store because the store is only returned after every section
   validated. *)
module Snapshot = struct
  let magic = "XRQSNAP1"
  let trailer = "XRQEND1\n"
  let format_version = 1

  (* CRC-32 (IEEE 802.3, reflected), table-driven. *)
  let crc_table = lazy (Array.init 256 (fun n ->
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    !c))

  let crc32 b ofs len =
    let t = Lazy.force crc_table in
    let c = ref 0xFFFFFFFF in
    for i = ofs to ofs + len - 1 do
      c := Array.unsafe_get t
             ((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
           lxor (!c lsr 8)
    done;
    !c lxor 0xFFFFFFFF

  (* --- writing --- *)

  type sink = Bytes.t -> int -> int -> unit

  let put_bytes (out : sink) b = out b 0 (Bytes.length b)
  let put_string out s = put_bytes out (Bytes.unsafe_of_string s)

  let put_u8 out v =
    let b = Bytes.create 1 in
    Bytes.set_uint8 b 0 v;
    put_bytes out b

  let put_u32 out v =
    if v < 0 || v > 0xFFFFFFFF then Err.internal "snapshot: u32 overflow (%d)" v;
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    put_bytes out b

  let put_u64 out v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    put_bytes out b

  let put_blob out payload =
    put_u64 out (Bytes.length payload);
    put_bytes out payload;
    put_u32 out (crc32 payload 0 (Bytes.length payload))

  let put_col out c =
    let width, payload =
      match c with C8 b -> (1, b) | C16 b -> (2, b) | C32 b -> (4, b)
    in
    put_u8 out width;
    put_blob out payload

  let put_dict out d =
    put_u32 out (Array.length d);
    let payload = Bytes.create (4 * Array.length d) in
    Array.iteri
      (fun i v -> Bytes.set_int32_le payload (4 * i) (Int32.of_int v)) d;
    put_blob out payload

  let add_u32 buf v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b

  let write (out : sink) t =
    (* Capture fragments and documents under the lock first, pool sizes
       after: every id referenced by a captured fragment was interned
       before that fragment finished, hence before the capture. *)
    let frags, docs =
      locked t (fun () ->
        (Array.init (Vec.length t.frags) (Vec.get t.frags),
         List.rev t.documents))
    in
    let frags =
      Array.map (function Boxed b -> pack_frag b | Packed p -> p) frags
    in
    put_string out magic;
    put_u32 out format_version;
    (* qname pool, dense id order; prefix and local part separately so
       colons in either survive the round trip *)
    let n_names = Qname_pool.size t.name_pool in
    put_u32 out n_names;
    let buf = Buffer.create 1024 in
    for id = 0 to n_names - 1 do
      let q = Qname_pool.get t.name_pool id in
      let p = Qname.prefix q and l = Qname.local q in
      add_u32 buf (String.length p); Buffer.add_string buf p;
      add_u32 buf (String.length l); Buffer.add_string buf l
    done;
    put_blob out (Buffer.to_bytes buf);
    (* text pool *)
    let n_texts = String_pool.size t.text_pool in
    put_u32 out n_texts;
    let buf = Buffer.create 4096 in
    for id = 0 to n_texts - 1 do
      let s = String_pool.get t.text_pool id in
      add_u32 buf (String.length s); Buffer.add_string buf s
    done;
    put_blob out (Buffer.to_bytes buf);
    (* document registry, registration order *)
    put_u32 out (List.length docs);
    let buf = Buffer.create 256 in
    List.iter
      (fun (uri, n) ->
         add_u32 buf (String.length uri); Buffer.add_string buf uri;
         add_u32 buf (Node_id.frag n); add_u32 buf (Node_id.pre n))
      docs;
    put_blob out (Buffer.to_bytes buf);
    (* fragments *)
    put_u32 out (Array.length frags);
    Array.iter
      (fun p ->
         put_u32 out p.p_len;
         put_u8 out 1; put_blob out p.p_kinds;
         put_col out p.p_names; put_dict out p.p_name_dict;
         put_col out p.p_values; put_dict out p.p_value_dict;
         put_col out p.p_sizes;
         put_col out p.p_levels;
         put_col out p.p_parents)
      frags;
    put_string out trailer

  (* --- reading --- *)

  let corrupt fmt = Err.dynamic ("corrupt snapshot: " ^^ fmt)

  type source = {
    read_exact : Bytes.t -> int -> int -> unit;
    remaining : unit -> int; (* bytes left, for length sanity checks *)
  }

  let source_of_channel ic =
    { read_exact =
        (fun b ofs len ->
           try really_input ic b ofs len
           with End_of_file -> corrupt "truncated (unexpected end of file)");
      remaining = (fun () -> in_channel_length ic - pos_in ic) }

  let source_of_string s =
    let pos = ref 0 in
    { read_exact =
        (fun b ofs len ->
           if !pos + len > String.length s then
             corrupt "truncated (unexpected end of data)";
           Bytes.blit_string s !pos b ofs len;
           pos := !pos + len);
      remaining = (fun () -> String.length s - !pos) }

  let get_bytes src n =
    let b = Bytes.create n in
    src.read_exact b 0 n;
    b

  let get_u8 src = Bytes.get_uint8 (get_bytes src 1) 0

  let get_u32 src =
    Int32.to_int (Bytes.get_int32_le (get_bytes src 4) 0) land 0xFFFFFFFF

  let get_blob src =
    let len = Int64.to_int (Bytes.get_int64_le (get_bytes src 8) 0) in
    if len < 0 || len > src.remaining () then
      corrupt "section length %d exceeds remaining input" len;
    let payload = get_bytes src len in
    let stored = get_u32 src in
    let actual = crc32 payload 0 len in
    if stored <> actual then
      corrupt "checksum mismatch (stored %08lx, computed %08lx)"
        (Int32.of_int stored) (Int32.of_int actual);
    payload

  let get_col src rows =
    let width = get_u8 src in
    let payload = get_blob src in
    if Bytes.length payload <> rows * width then
      corrupt "column has %d bytes, expected %d rows at width %d"
        (Bytes.length payload) rows width;
    match width with
    | 1 -> C8 payload
    | 2 -> C16 payload
    | 4 -> C32 payload
    | w -> corrupt "invalid column width %d" w

  let get_dict src =
    let k = get_u32 src in
    let payload = get_blob src in
    if Bytes.length payload <> 4 * k then
      corrupt "dictionary has %d bytes, expected %d entries"
        (Bytes.length payload) k;
    Array.init k
      (fun i -> Int32.to_int (Bytes.get_int32_le payload (4 * i)) land 0xFFFFFFFF)

  (* Cursor over a validated section payload. *)
  let c_u32 payload pos =
    if !pos + 4 > Bytes.length payload then corrupt "section truncated";
    let v = Int32.to_int (Bytes.get_int32_le payload !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v

  let c_str payload pos n =
    if n < 0 || !pos + n > Bytes.length payload then corrupt "section truncated";
    let s = Bytes.sub_string payload !pos n in
    pos := !pos + n;
    s

  let c_end payload pos what =
    if !pos <> Bytes.length payload then corrupt "trailing bytes in %s section" what

  (* Bounds-validate one loaded fragment so that no accessor, axis scan or
     serialization over it can index out of range: kind codes, dictionary
     codes, pool ids, subtree extents and parent pointers are all checked.
     Structural coherence beyond bounds (size nesting, level arithmetic)
     is the byte-identity tests' job, not the loader's. *)
  let validate_frag p ~n_names ~n_texts =
    let rows = p.p_len in
    Array.iter
      (fun id -> if id < 0 || id >= n_names then corrupt "name dictionary entry out of range")
      p.p_name_dict;
    Array.iter
      (fun id -> if id < 0 || id >= n_texts then corrupt "text dictionary entry out of range")
      p.p_value_dict;
    let nk = Array.length p.p_name_dict in
    let vk = Array.length p.p_value_dict in
    for pre = 0 to rows - 1 do
      let k = Char.code (Bytes.get p.p_kinds pre) in
      if k > 5 then corrupt "invalid node kind code %d" k;
      let nc = col_get p.p_names pre in
      if (if nk > 0 then nc > nk else nc > n_names) then
        corrupt "name code out of range at row %d" pre;
      let vc = col_get p.p_values pre in
      if (if vk > 0 then vc > vk else vc > n_texts) then
        corrupt "text code out of range at row %d" pre;
      if pre + col_get p.p_sizes pre > rows - 1 then
        corrupt "subtree size out of range at row %d" pre;
      if col_get p.p_parents pre > rows then
        corrupt "parent out of range at row %d" pre
    done

  let read src =
    let m = get_bytes src (String.length magic) in
    if not (Bytes.equal m (Bytes.of_string magic)) then
      corrupt "bad magic (not a snapshot file)";
    let v = get_u32 src in
    if v <> format_version then
      Err.dynamic
        "corrupt snapshot: unsupported format version %d (this build reads %d)"
        v format_version;
    let st = create ~packed:true () in
    (* qname pool *)
    let n_names = get_u32 src in
    let payload = get_blob src in
    let pos = ref 0 in
    for id = 0 to n_names - 1 do
      let p = c_str payload pos (c_u32 payload pos) in
      let l = c_str payload pos (c_u32 payload pos) in
      if intern_name st (Qname.make ~prefix:p l) <> id then
        corrupt "duplicate qname pool entry"
    done;
    c_end payload pos "qname pool";
    (* text pool *)
    let n_texts = get_u32 src in
    let payload = get_blob src in
    let pos = ref 0 in
    for id = 0 to n_texts - 1 do
      let s = c_str payload pos (c_u32 payload pos) in
      if String_pool.intern st.text_pool s <> id then
        corrupt "duplicate text pool entry"
    done;
    c_end payload pos "text pool";
    (* document registry (applied after fragments are known) *)
    let n_docs = get_u32 src in
    let payload = get_blob src in
    let pos = ref 0 in
    let docs = ref [] in
    for _ = 1 to n_docs do
      let uri = c_str payload pos (c_u32 payload pos) in
      let fid = c_u32 payload pos in
      let pre = c_u32 payload pos in
      docs := (uri, fid, pre) :: !docs
    done;
    let docs = List.rev !docs in
    c_end payload pos "document registry";
    (* fragments: decode and validate everything before publishing any *)
    let nf = get_u32 src in
    let frags = ref [] in
    for _ = 1 to nf do
      let rows = get_u32 src in
      let kw = get_u8 src in
      if kw <> 1 then corrupt "invalid kind column width %d" kw;
      let kinds = get_blob src in
      if Bytes.length kinds <> rows then
        corrupt "kind column has %d bytes, expected %d rows"
          (Bytes.length kinds) rows;
      let names = get_col src rows in
      let name_dict = get_dict src in
      let values = get_col src rows in
      let value_dict = get_dict src in
      let sizes = get_col src rows in
      let levels = get_col src rows in
      let parents = get_col src rows in
      let p = {
        p_len = rows; p_kinds = kinds;
        p_names = names; p_name_dict = name_dict;
        p_values = values; p_value_dict = value_dict;
        p_sizes = sizes; p_levels = levels; p_parents = parents;
      } in
      validate_frag p ~n_names ~n_texts;
      frags := p :: !frags
    done;
    let frags = List.rev !frags in
    let tr = get_bytes src (String.length trailer) in
    if not (Bytes.equal tr (Bytes.of_string trailer)) then
      corrupt "bad trailer";
    if src.remaining () <> 0 then corrupt "trailing garbage after snapshot";
    (* everything validated: publish *)
    List.iter (fun p -> Vec.push st.frags (Packed p)) frags;
    List.iter
      (fun (uri, fid, pre) ->
         if fid >= nf then corrupt "document fragment id out of range";
         if pre >= frag_length (frag st fid) then
           corrupt "document root out of range";
         register_document st uri (Node_id.make ~frag:fid ~pre))
      docs;
    st

  (* --- public entry points --- *)

  let save t path =
    let tmp = path ^ ".tmp" in
    let oc =
      try open_out_bin tmp
      with Sys_error m -> Err.dynamic "cannot write snapshot: %s" m
    in
    (try write (fun b ofs len -> output oc b ofs len) t
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    close_out oc;
    Sys.rename tmp path

  let load path =
    let ic =
      try open_in_bin path
      with Sys_error m -> Err.dynamic "cannot open snapshot: %s" m
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic)
      (fun () -> read (source_of_channel ic))

  let to_string t =
    let buf = Buffer.create 4096 in
    write (fun b ofs len -> Buffer.add_subbytes buf b ofs len) t;
    Buffer.contents buf

  let of_string s = read (source_of_string s)
end
