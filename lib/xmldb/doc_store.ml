(* The document store: Pathfinder's schema-oblivious XML encoding.

   Every XML fragment (a parsed document or a run of constructed nodes)
   is one contiguous pre/size/level table (paper, Section 3 / Figure 5):

     pre    - implicit row index: preorder rank
     kind   - node kind
     name   - name-pool id (elements, attributes, PI targets), -1 otherwise
     value  - text-pool id (text, attribute, comment, PI content), -1
     size   - number of table rows in the node's subtree (descendants,
              including inlined attribute rows)
     level  - depth (roots of the fragment are at level 0)
     parent - preorder rank of the parent inside this fragment, -1 for roots

   Attributes are inlined immediately after their owner element and before
   its children with size 0; axes other than [attribute] skip them.

   Fragments are append-only once finished; runtime node construction
   allocates fresh fragments, giving constructed trees a document order
   after all existing nodes — the seq->doc order interaction (paper 2(2))
   is realized by the *order of content rows* fed to the builder. *)

open Basis

type frag = {
  kinds : Node_kind.t array;
  names : int array;
  values : int array;
  sizes : int array;
  levels : int array;
  parents : int array;
}

type t = {
  mu : Mutex.t;
      (* guards frags appends, the documents list, and name_counts; the
         pools carry their own locks. Readers of already-published
         fragments do not take it — fragments are immutable once pushed,
         and cross-thread visibility of the push itself is the lock's
         job on the writing side (server-level store locks keep whole
         queries from racing a concurrent append). *)
  name_pool : Qname_pool.t;
  text_pool : String_pool.t;
  frags : frag Vec.t;
  mutable documents : (string * Node_id.t) list; (* uri -> document node *)
  name_counts : (int, int) Hashtbl.t;  (* name id -> total occurrences *)
  mutable counted_frags : int;         (* frags folded into name_counts *)
}

let empty_frag = {
  kinds = [||]; names = [||]; values = [||];
  sizes = [||]; levels = [||]; parents = [||];
}

let create () = {
  mu = Mutex.create ();
  name_pool = Qname_pool.create ();
  text_pool = String_pool.create ();
  frags = Vec.create empty_frag;
  documents = [];
  name_counts = Hashtbl.create 64;
  counted_frags = 0;
}

let[@inline] locked t f =
  Mutex.lock t.mu;
  match f () with
  | v -> Mutex.unlock t.mu; v
  | exception e -> Mutex.unlock t.mu; raise e

let n_frags t = Vec.length t.frags
let frag t i = Vec.get t.frags i
let frag_length f = Array.length f.kinds

(* -- name/text pools ----------------------------------------------------- *)

let intern_name t q = Qname_pool.intern t.name_pool q
let name_of_id t id = Qname_pool.get t.name_pool id

(* Name id for a node test: if the name never occurs in the store, return
   -2 which matches no node. *)
let name_test_id t q =
  match Qname_pool.find_opt t.name_pool q with
  | Some id -> id
  | None -> -2

let text_of_id t id = String_pool.get t.text_pool id

(* -- node accessors ------------------------------------------------------ *)

let kind t (n : Node_id.t) = (frag t (Node_id.frag n)).kinds.(Node_id.pre n)
let name_id t (n : Node_id.t) = (frag t (Node_id.frag n)).names.(Node_id.pre n)
let size t (n : Node_id.t) = (frag t (Node_id.frag n)).sizes.(Node_id.pre n)
let level t (n : Node_id.t) = (frag t (Node_id.frag n)).levels.(Node_id.pre n)

let name t n =
  let id = name_id t n in
  if id < 0 then None else Some (name_of_id t id)

let value t (n : Node_id.t) =
  let id = (frag t (Node_id.frag n)).values.(Node_id.pre n) in
  if id < 0 then "" else text_of_id t id

let parent t (n : Node_id.t) =
  let p = (frag t (Node_id.frag n)).parents.(Node_id.pre n) in
  if p < 0 then None else Some (Node_id.make ~frag:(Node_id.frag n) ~pre:p)

(* String value per XDM: elements and documents concatenate the text
   descendants in document order, other kinds carry their own value. *)
let string_value t (n : Node_id.t) =
  match kind t n with
  | Node_kind.Element | Node_kind.Document ->
    let f = frag t (Node_id.frag n) in
    let pre = Node_id.pre n in
    let buf = Buffer.create 32 in
    for p = pre + 1 to pre + f.sizes.(pre) do
      if f.kinds.(p) = Node_kind.Text then
        Buffer.add_string buf (text_of_id t f.values.(p))
    done;
    Buffer.contents buf
  | Node_kind.Attribute | Node_kind.Text | Node_kind.Comment
  | Node_kind.Processing_instruction -> value t n

(* -- documents ----------------------------------------------------------- *)

let register_document t uri root =
  locked t (fun () -> t.documents <- (uri, root) :: t.documents)

let find_document t uri = locked t (fun () -> List.assoc_opt uri t.documents)

let documents t = locked t (fun () -> List.rev t.documents)

(* -- builder ------------------------------------------------------------- *)

module Builder = struct
  type nonrec t = {
    store : t;
    kinds : Node_kind.t Vec.t;
    names : int Vec.t;
    values : int Vec.t;
    sizes : int Vec.t;
    levels : int Vec.t;
    parents : int Vec.t;
    mutable stack : int list;      (* open nodes, innermost first *)
    mutable last_text : int;       (* pre of a trailing mergeable text node, -1 *)
    mutable finished : bool;
  }

  let create store = {
    store;
    kinds = Vec.create Node_kind.Text;
    names = Vec.create (-1);
    values = Vec.create (-1);
    sizes = Vec.create 0;
    levels = Vec.create 0;
    parents = Vec.create (-1);
    stack = [];
    last_text = -1;
    finished = false;
  }

  let depth b = List.length b.stack

  let cur_parent b = match b.stack with [] -> -1 | p :: _ -> p

  let emit b kind name value =
    let pre = Vec.length b.kinds in
    Vec.push b.kinds kind;
    Vec.push b.names name;
    Vec.push b.values value;
    Vec.push b.sizes 0;
    Vec.push b.levels (depth b);
    Vec.push b.parents (cur_parent b);
    pre

  let start_document b =
    b.last_text <- -1;
    let pre = emit b Node_kind.Document (-1) (-1) in
    b.stack <- pre :: b.stack

  let start_element b qname =
    b.last_text <- -1;
    let pre = emit b Node_kind.Element (intern_name b.store qname) (-1) in
    b.stack <- pre :: b.stack

  (* Standalone attribute construction (computed attribute constructors
     yield parentless attribute nodes) is allowed on an empty stack. *)
  let attribute b qname v =
    (match b.stack with
     | [] -> ()
     | top :: _ ->
       if Vec.get b.kinds top <> Node_kind.Element then
         Err.internal "Builder.attribute: owner is not an element";
       (* Attributes must precede any content of the open element. *)
       if Vec.length b.kinds <> top + 1
          && Vec.get b.kinds (Vec.length b.kinds - 1) <> Node_kind.Attribute
       then Err.dynamic "attribute node constructed after non-attribute content");
    let vid = String_pool.intern b.store.text_pool v in
    ignore (emit b Node_kind.Attribute (intern_name b.store qname) vid)

  let text b s =
    if s <> "" then begin
      if b.last_text >= 0 then begin
        (* merge adjacent text nodes, as XDM requires after construction *)
        let old = text_of_id b.store (Vec.get b.values b.last_text) in
        Vec.set b.values b.last_text
          (String_pool.intern b.store.text_pool (old ^ s))
      end else begin
        let vid = String_pool.intern b.store.text_pool s in
        let pre = emit b Node_kind.Text (-1) vid in
        b.last_text <- pre
      end
    end

  (* Emit a text node even when [s] is empty and without merging: computed
     text constructors (text { "" }) create a node regardless. *)
  let force_text b s =
    b.last_text <- -1;
    ignore (emit b Node_kind.Text (-1) (String_pool.intern b.store.text_pool s))

  let comment b s =
    b.last_text <- -1;
    ignore (emit b Node_kind.Comment (-1) (String_pool.intern b.store.text_pool s))

  let pi b target content =
    b.last_text <- -1;
    let nid = intern_name b.store (Qname.make target) in
    ignore (emit b Node_kind.Processing_instruction nid
              (String_pool.intern b.store.text_pool content))

  let close b =
    match b.stack with
    | [] -> Err.internal "Builder: unbalanced end of node"
    | top :: rest ->
      Vec.set b.sizes top (Vec.length b.kinds - top - 1);
      b.stack <- rest;
      b.last_text <- -1

  let end_element b = close b
  let end_document b = close b

  (* Blit the subtree rooted at [pre0] of fragment [src] into the builder,
     shifting levels and rebasing parent pointers. *)
  let copy_node b (src : frag) pre0 =
    b.last_text <- -1;
    let dst0 = Vec.length b.kinds in
    let delta_level = depth b - src.levels.(pre0) in
    for p = pre0 to pre0 + src.sizes.(pre0) do
      let parent =
        if p = pre0 then cur_parent b
        else src.parents.(p) - pre0 + dst0
      in
      Vec.push b.kinds src.kinds.(p);
      Vec.push b.names src.names.(p);
      Vec.push b.values src.values.(p);
      Vec.push b.sizes src.sizes.(p);
      Vec.push b.levels (src.levels.(p) + delta_level);
      Vec.push b.parents parent
    done;
    b.last_text <- -1

  (* Deep-copy the subtree rooted at [n] (from any fragment of the same
     store) as content of the currently open node. Implements the node
     copying of XQuery constructors. Copying a text node merges with an
     adjacent text sibling; copying a document node copies its children. *)
  let copy b (n : Node_id.t) =
    let src = frag b.store (Node_id.frag n) in
    let pre0 = Node_id.pre n in
    match src.kinds.(pre0) with
    | Node_kind.Text ->
      text b (text_of_id b.store src.values.(pre0))
    | Node_kind.Attribute ->
      attribute b (name_of_id b.store src.names.(pre0))
        (text_of_id b.store src.values.(pre0))
    | Node_kind.Document ->
      b.last_text <- -1;
      let p = ref (pre0 + 1) in
      let stop = pre0 + src.sizes.(pre0) in
      while !p <= stop do
        if src.kinds.(!p) = Node_kind.Text then
          text b (text_of_id b.store src.values.(!p))
        else copy_node b src !p;
        p := !p + src.sizes.(!p) + 1
      done
    | Node_kind.Element | Node_kind.Comment | Node_kind.Processing_instruction ->
      copy_node b src pre0

  (* Freeze the builder into a new fragment; returns the fragment id and
     the preorder ranks of the fragment's roots. *)
  let finish b =
    if b.finished then Err.internal "Builder.finish called twice";
    if b.stack <> [] then Err.internal "Builder.finish with open nodes";
    b.finished <- true;
    let f = {
      kinds = Vec.to_array b.kinds;
      names = Vec.to_array b.names;
      values = Vec.to_array b.values;
      sizes = Vec.to_array b.sizes;
      levels = Vec.to_array b.levels;
      parents = Vec.to_array b.parents;
    } in
    let fid =
      locked b.store (fun () ->
        let fid = Vec.length b.store.frags in
        Vec.push b.store.frags f;
        fid)
    in
    let roots = Vec.create (-1) in
    let p = ref 0 in
    while !p < Array.length f.kinds do
      Vec.push roots !p;
      p := !p + f.sizes.(!p) + 1
    done;
    (fid, Array.map (fun pre -> Node_id.make ~frag:fid ~pre) (Vec.to_array roots))
end

(* -- total node count (for stats / benchmarks) --------------------------- *)

let total_nodes t =
  Vec.fold_left (fun acc f -> acc + frag_length f) 0 t.frags

(* How many nodes (elements and attributes) carry the given name, across
   all fragments. Counts are folded incrementally: fragments are immutable
   once finished, so only the frags appended since the last query need a
   scan. Used to seed the optimizer's cardinality estimates. *)
let name_occurrences t q =
  let qid = Qname_pool.find_opt t.name_pool q in
  locked t (fun () ->
    for fid = t.counted_frags to n_frags t - 1 do
      let f = frag t fid in
      Array.iter
        (fun id ->
           if id >= 0 then
             Hashtbl.replace t.name_counts id
               (1 + Option.value ~default:0
                      (Hashtbl.find_opt t.name_counts id)))
        f.names
    done;
    t.counted_frags <- n_frags t;
    match qid with
    | None -> 0
    | Some id -> Option.value ~default:0 (Hashtbl.find_opt t.name_counts id))
