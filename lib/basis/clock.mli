(** Monotonic clock (CLOCK_MONOTONIC) for deadline and duration
    arithmetic. Unlike [Unix.gettimeofday], it cannot jump when NTP steps
    the wall clock, so {!Budget} timeouts can neither fire early nor be
    suppressed. The origin is unspecified; only differences mean
    anything. *)

(** Nanoseconds on the monotonic scale. *)
val now_ns : unit -> int64

(** Seconds on the monotonic scale (the unit {!Budget} deadlines use). *)
val now : unit -> float
