(* Resource governance for query evaluation.

   A [spec] declares the limits a caller is willing to grant a query; a
   running guard [t] (one per evaluation, [start spec]) accounts work
   against them. Both executors call [check] at every operator boundary —
   once per algebra-node evaluation in the columnar executor, once per
   core-expression node in the reference interpreter — and [add_rows] /
   [add_bytes] after materializing a result. Exhaustion raises
   [Err.Resource_error]; evaluation unwinds through the ordinary exception
   path, so no partial result can escape.

   Cancellation is cooperative: flipping a [cancel] switch makes the
   *next* boundary check raise. Granularity is therefore one operator —
   a single enormous operator is only interrupted at its end.

   The fault-injection hook ([fault_at = Some n]) turns the n-th boundary
   check into [Err.Internal_error], deterministically. Tests seed
   [Basis.Prng] to pick boundaries and prove that every operator unwinds
   cleanly and that the engine's interpreter fallback engages. *)

type cancel = bool ref

let cancel_switch () = ref false
let cancel c = c := true
let cancelled c = !c

type spec = {
  timeout_s : float option;
  max_rows : int option;
  max_bytes : int option;
  max_ops : int option;
  cancel : cancel option;
  fault_at : int option;
}

let unlimited =
  { timeout_s = None;
    max_rows = None;
    max_bytes = None;
    max_ops = None;
    cancel = None;
    fault_at = None }

let limits ?timeout_s ?max_rows ?max_bytes ?max_ops ?cancel ?fault_at () =
  { timeout_s; max_rows; max_bytes; max_ops; cancel; fault_at }

type t = {
  spec : spec;
  deadline : float option;  (* absolute, on the monotonic Clock scale:
                               an NTP step of the wall clock can neither
                               fire the timeout early nor suppress it *)
  mutable ops : int;
  mutable rows : int;
  mutable bytes : int;
}

let start spec =
  { spec;
    deadline = Option.map (fun s -> Clock.now () +. s) spec.timeout_s;
    ops = 0;
    rows = 0;
    bytes = 0 }

let ops t = t.ops
let rows t = t.rows
let bytes t = t.bytes

(* Byte accounting costs a walk over the materialized values, so callers
   skip the estimate entirely unless a byte budget is armed. *)
let wants_bytes t = t.spec.max_bytes <> None

let check t =
  t.ops <- t.ops + 1;
  (match t.spec.fault_at with
   | Some n when t.ops = n ->
     Err.internal "injected fault at operator boundary %d" n
   | _ -> ());
  (match t.spec.cancel with
   | Some c when !c -> Err.resource "query cancelled"
   | _ -> ());
  (match t.spec.max_ops with
   | Some m when t.ops > m ->
     Err.resource "operator budget exhausted (limit %d evaluations)" m
   | _ -> ());
  match t.deadline with
  | Some d when Clock.now () >= d ->
    (match t.spec.timeout_s with
     | Some s -> Err.resource "deadline exceeded (limit %gs)" s
     | None -> assert false)
  | _ -> ()

let add_rows t n =
  t.rows <- t.rows + n;
  match t.spec.max_rows with
  | Some m when t.rows > m ->
    Err.resource "row budget exhausted (%d rows materialized, limit %d)"
      t.rows m
  | _ -> ()

let add_bytes t n =
  t.bytes <- t.bytes + n;
  match t.spec.max_bytes with
  | Some m when t.bytes > m ->
    Err.resource
      "byte budget exhausted (~%d bytes materialized, limit %d)" t.bytes m
  | _ -> ()
