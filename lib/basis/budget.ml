(* Resource governance for query evaluation.

   A [spec] declares the limits a caller is willing to grant a query; a
   running guard [t] (one per evaluation, [start spec]) accounts work
   against them. Both executors call [check] at every operator boundary —
   once per algebra-node evaluation in the columnar executor, once per
   core-expression node in the reference interpreter — and [add_rows] /
   [add_bytes] after materializing a result. Exhaustion raises
   [Err.Resource_error]; evaluation unwinds through the ordinary exception
   path, so no partial result can escape.

   Cancellation is cooperative: flipping a [cancel] switch makes the
   *next* boundary check raise. Granularity is therefore one operator —
   a single enormous operator is only interrupted at its end — except in
   the parallel physical executor, which additionally polls
   [interrupted] between morsels and converts a trip into the same error
   via [check_interrupted].

   All counters are atomics and the cancel switch is an [Atomic.t bool]:
   a guard may be shared by the coordinator and the worker domains of a
   morsel-parallel query (and cancelled from yet another domain) without
   losing increments or racing. The boundary checks themselves stay on
   the coordinating domain, so op counts — and therefore [fault_at]
   determinism — are identical in serial and parallel mode.

   The fault-injection hook ([fault_at = Some n]) turns the n-th boundary
   check into [Err.Internal_error], deterministically. Tests seed
   [Basis.Prng] to pick boundaries and prove that every operator unwinds
   cleanly and that the engine's interpreter fallback engages. *)

type cancel = bool Atomic.t

let cancel_switch () = Atomic.make false
let cancel c = Atomic.set c true
let cancelled c = Atomic.get c

type spec = {
  timeout_s : float option;
  max_rows : int option;
  max_bytes : int option;
  max_ops : int option;
  cancel : cancel option;
  fault_at : int option;
}

let unlimited =
  { timeout_s = None;
    max_rows = None;
    max_bytes = None;
    max_ops = None;
    cancel = None;
    fault_at = None }

let limits ?timeout_s ?max_rows ?max_bytes ?max_ops ?cancel ?fault_at () =
  { timeout_s; max_rows; max_bytes; max_ops; cancel; fault_at }

(* Session scoping: clamp a (possibly client-supplied) spec under a
   server-side ceiling. Every numeric limit takes the tighter of the two
   sides; a limit armed on only one side is kept. The cancel switch and
   the fault hook stay the request's own — the ceiling is pure policy and
   must not alias one client's cancellation into another's, nor let a
   remote caller arm fault injection. *)
let clamp ~ceiling spec =
  let tighter merge a b =
    match (a, b) with
    | Some a, Some b -> Some (merge a b)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  { timeout_s = tighter Float.min spec.timeout_s ceiling.timeout_s;
    max_rows = tighter Int.min spec.max_rows ceiling.max_rows;
    max_bytes = tighter Int.min spec.max_bytes ceiling.max_bytes;
    max_ops = tighter Int.min spec.max_ops ceiling.max_ops;
    cancel = spec.cancel;
    fault_at = spec.fault_at }

type t = {
  spec : spec;
  deadline : float option;  (* absolute, on the monotonic Clock scale:
                               an NTP step of the wall clock can neither
                               fire the timeout early nor suppress it *)
  ops : int Atomic.t;
  rows : int Atomic.t;
  bytes : int Atomic.t;
}

let start spec =
  { spec;
    deadline = Option.map (fun s -> Clock.now () +. s) spec.timeout_s;
    ops = Atomic.make 0;
    rows = Atomic.make 0;
    bytes = Atomic.make 0 }

let ops t = Atomic.get t.ops
let rows t = Atomic.get t.rows
let bytes t = Atomic.get t.bytes

(* Seconds until the deadline (negative once passed), on the monotonic
   scale; None when no deadline is armed. *)
let remaining_s t = Option.map (fun d -> d -. Clock.now ()) t.deadline

(* Byte accounting costs a walk over the materialized values, so callers
   skip the estimate entirely unless a byte budget is armed. *)
let wants_bytes t = t.spec.max_bytes <> None

let check t =
  let ops = Atomic.fetch_and_add t.ops 1 + 1 in
  (match t.spec.fault_at with
   | Some n when ops = n ->
     Err.internal "injected fault at operator boundary %d" n
   | _ -> ());
  (match t.spec.cancel with
   | Some c when Atomic.get c -> Err.resource "query cancelled"
   | _ -> ());
  (match t.spec.max_ops with
   | Some m when ops > m ->
     Err.resource "operator budget exhausted (limit %d evaluations)" m
   | _ -> ());
  match t.deadline with
  | Some d when Clock.now () >= d ->
    (match t.spec.timeout_s with
     | Some s -> Err.resource "deadline exceeded (limit %gs)" s
     | None -> assert false)
  | _ -> ()

(* Morsel-boundary poll: true when cancellation or the deadline would
   make the next [check] raise. Deliberately does NOT count an operator
   evaluation, so polling frequency cannot perturb [fault_at] or
   [max_ops] accounting — serial and parallel runs see identical op
   counts. *)
let interrupted t =
  (match t.spec.cancel with Some c -> Atomic.get c | None -> false)
  || (match t.deadline with Some d -> Clock.now () >= d | None -> false)

(* Raise the same error [check] would for a cancellation/deadline trip,
   again without counting an operator evaluation. The parallel executor
   calls this on the coordinating domain after workers bail out via
   [interrupted], so the surfaced error message is identical to the one
   serial execution produces. *)
let check_interrupted t =
  (match t.spec.cancel with
   | Some c when Atomic.get c -> Err.resource "query cancelled"
   | _ -> ());
  match t.deadline with
  | Some d when Clock.now () >= d ->
    (match t.spec.timeout_s with
     | Some s -> Err.resource "deadline exceeded (limit %gs)" s
     | None -> assert false)
  | _ -> ()

let add_rows t n =
  let rows = Atomic.fetch_and_add t.rows n + n in
  match t.spec.max_rows with
  | Some m when rows > m ->
    Err.resource "row budget exhausted (%d rows materialized, limit %d)"
      rows m
  | _ -> ()

let add_bytes t n =
  let bytes = Atomic.fetch_and_add t.bytes n + n in
  match t.spec.max_bytes with
  | Some m when bytes > m ->
    Err.resource
      "byte budget exhausted (~%d bytes materialized, limit %d)" bytes m
  | _ -> ()
