(* Error discipline shared by every layer of the system.

   [Dynamic_error] corresponds to XQuery dynamic errors (the err:XPDY and
   err:FORG families); [Static_error] to parse/normalization-time errors
   (the err:XPST family); [Resource_error] to exhausted execution budgets
   (deadline, rows, bytes, operator count) and cooperative cancellation;
   [Internal_error] flags broken invariants of our own making (a bug,
   never a user error). *)

exception Dynamic_error of string
exception Static_error of string
exception Internal_error of string
exception Resource_error of string

type kind = Dynamic | Static | Resource | Internal

let dynamic fmt = Format.kasprintf (fun s -> raise (Dynamic_error s)) fmt
let static fmt = Format.kasprintf (fun s -> raise (Static_error s)) fmt
let internal fmt = Format.kasprintf (fun s -> raise (Internal_error s)) fmt
let resource fmt = Format.kasprintf (fun s -> raise (Resource_error s)) fmt

let kind_label = function
  | Dynamic -> "dynamic"
  | Static -> "static"
  | Resource -> "resource"
  | Internal -> "internal"

(* The CLI contract: one distinct exit code per error class. *)
let exit_code = function
  | Dynamic -> 1
  | Static -> 2
  | Resource -> 3
  | Internal -> 4

let classify = function
  | Dynamic_error m -> Some (Dynamic, m)
  | Static_error m -> Some (Static, m)
  | Resource_error m -> Some (Resource, m)
  | Internal_error m -> Some (Internal, m)
  | _ -> None

(* Render any of the four errors for user display; re-raises others. *)
let to_string e =
  match classify e with
  | Some (Internal, m) -> "internal error (please report): " ^ m
  | Some (k, m) -> kind_label k ^ " error: " ^ m
  | None -> raise e

let protect f = match f () with
  | v -> Ok v
  | exception
      (Dynamic_error _ | Static_error _ | Resource_error _
      | Internal_error _ as e) ->
    Error (to_string e)

let protect_kind f = match f () with
  | v -> Ok v
  | exception
      (Dynamic_error _ | Static_error _ | Resource_error _
      | Internal_error _ as e) ->
    (match classify e with
     | Some pair -> Error pair
     | None -> assert false)
