(** A fixed pool of worker domains for morsel-driven parallel execution.

    [run t ~jobs ntasks body] executes [body i] for every [i] in
    [0, ntasks), spread over at most [jobs] domains (the caller plus up
    to [jobs - 1] pool helpers). Tasks are claimed from a shared atomic
    counter, so each index runs exactly once, on some domain, in some
    order.

    Determinism contract (the basis of the executor's serial/parallel
    parity guarantee):
    - if one or more task bodies raise, [run] still executes all
      remaining tasks, then re-raises the exception of the
      lowest-indexed failed task — for callers that number tasks in row
      order this reproduces the error serial execution raises first;
    - if [stop ()] becomes true, workers stop claiming new tasks (tasks
      already started still finish); the caller is expected to convert
      the interruption into its own deterministic error.

    Helper domains are spawned lazily on first parallel [run], persist
    for the life of the process, and are joined at exit. The pool
    assumes a single submitting domain; a nested or concurrent [run]
    degrades to inline serial execution (counted by {!contended}).

    Exceptions cannot wedge the pool: a task body or [stop] hook raising
    anything — including [Stack_overflow] — is recorded and re-raised by
    [run] after the job completes; helper domains survive and the pool
    stays usable for the next [run]. A raising [stop] hook acts as a
    trip, and its exception only surfaces when no task body failed
    (task-body failures carry lower indices, i.e. serial order). *)

type t

(** A fresh, empty pool. Helpers are spawned on demand by {!run}. *)
val create : unit -> t

(** The shared process-wide pool (lazily created; joined via [at_exit]). *)
val get : unit -> t

(** See the module description. [jobs <= 1] or [ntasks <= 1] runs inline
    on the calling domain with no pool interaction at all. *)
val run :
  t -> jobs:int -> ?stop:(unit -> bool) -> int -> (int -> unit) -> unit

(** Signal shutdown and join all helper domains. The pool must not be
    used afterwards. Idempotent. *)
val shutdown : t -> unit

(** How many parallel submissions found the job board occupied and
    degraded to inline serial execution, since pool creation. A rising
    rate under concurrent queries means the pool is oversubscribed; the
    server's overload watchdog samples this to decide when to degrade
    query execution to [jobs = 1]. *)
val contended : t -> int

(** [Domain.recommended_domain_count ()] — how wide this host can go. *)
val recommended_jobs : unit -> int

(** [adaptive_spans n ~morsel ~jobs] splits [0, n) into contiguous
    [(lo, hi)] spans for morsel-driven execution. Spans start at
    [max morsel (n / (jobs * 8))] rows and double geometrically, capped
    near [n / (jobs * 2)]: small early spans get every worker busy,
    large later spans amortize per-span overhead, and the cap bounds
    tail imbalance to half a worker's fair share. Pure — depends only on
    its arguments — so serial and parallel runs see identical spans. *)
val adaptive_spans : int -> morsel:int -> jobs:int -> (int * int) array
