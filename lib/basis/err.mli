(** Error discipline shared by every layer.

    Four exception classes partition all failures:
    {ul
    {- [Dynamic_error] — XQuery dynamic errors (the [err:XPDY]/[err:FORG]
       families): division by zero, cardinality violations, missing
       documents, invalid casts. Raised during evaluation.}
    {- [Static_error] — parse- and normalization-time errors (the
       [err:XPST] family): unknown functions, unbound context items,
       unsupported constructs.}
    {- [Resource_error] — an execution budget was exhausted (wall-clock
       deadline, row/byte/operator budgets of {!Budget}) or the query was
       cancelled. Not a bug and not a query error: the work was refused.}
    {- [Internal_error] — a broken invariant of this implementation;
       always a bug, never a user error.}} *)

exception Dynamic_error of string
exception Static_error of string
exception Internal_error of string
exception Resource_error of string

(** The four error classes as a value, for dispatch without exception
    matching. *)
type kind = Dynamic | Static | Resource | Internal

(** [dynamic fmt ...] raises {!Dynamic_error} with a formatted message. *)
val dynamic : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [static fmt ...] raises {!Static_error} with a formatted message. *)
val static : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [internal fmt ...] raises {!Internal_error} with a formatted message. *)
val internal : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [resource fmt ...] raises {!Resource_error} with a formatted message. *)
val resource : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** "dynamic" / "static" / "resource" / "internal". *)
val kind_label : kind -> string

(** The CLI exit-code contract: dynamic 1, static 2, resource 3,
    internal 4. *)
val exit_code : kind -> int

(** [classify e] is [Some (kind, message)] for the four error classes,
    [None] for any other exception. *)
val classify : exn -> (kind * string) option

(** Render one of the four errors for user display. Re-raises any other
    exception. *)
val to_string : exn -> string

(** [protect f] runs [f ()] and captures the four error classes as
    [Error message]; other exceptions propagate. *)
val protect : (unit -> 'a) -> ('a, string) result

(** Like {!protect}, keeping the error class. *)
val protect_kind : (unit -> 'a) -> ('a, kind * string) result
