(* A writer-preferring reader-writer lock.

   The query server uses one per document store to isolate store-mutating
   work (node construction, document ingest) from concurrent readers:
   fragments and pools are append-only, so any number of read-only
   queries may scan a store concurrently, but a query that appends
   fragments needs exclusivity — readers racing a fragment append from
   another domain could observe a half-published vector.

   Writer preference: once a writer is waiting, new readers queue behind
   it. Under a server workload dominated by reads this keeps the
   occasional constructor query from starving. *)

type t = {
  mu : Mutex.t;
  readable : Condition.t;      (* no writer active or waiting *)
  writable : Condition.t;      (* no reader or writer active *)
  mutable readers : int;       (* active readers *)
  mutable writer : bool;       (* a writer is active *)
  mutable writers_waiting : int;
}

let create () =
  { mu = Mutex.create ();
    readable = Condition.create ();
    writable = Condition.create ();
    readers = 0;
    writer = false;
    writers_waiting = 0 }

let lock_read t =
  Mutex.lock t.mu;
  while t.writer || t.writers_waiting > 0 do
    Condition.wait t.readable t.mu
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mu

let unlock_read t =
  Mutex.lock t.mu;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.writable;
  Mutex.unlock t.mu

let lock_write t =
  Mutex.lock t.mu;
  t.writers_waiting <- t.writers_waiting + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.writable t.mu
  done;
  t.writers_waiting <- t.writers_waiting - 1;
  t.writer <- true;
  Mutex.unlock t.mu

let unlock_write t =
  Mutex.lock t.mu;
  t.writer <- false;
  Condition.broadcast t.writable;
  Condition.broadcast t.readable;
  Mutex.unlock t.mu

let with_read t f =
  lock_read t;
  Fun.protect ~finally:(fun () -> unlock_read t) f

let with_write t f =
  lock_write t;
  Fun.protect ~finally:(fun () -> unlock_write t) f
