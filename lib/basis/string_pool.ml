(* String interning. The document store keeps tag names and text values as
   integer ids into a pool, which makes node tables compact and makes
   name-test comparison an integer comparison (the property staircase join
   and TwigStack-style evaluation rely on).

   All operations take an internal mutex: the query server shares one
   store across concurrent sessions, and even "read-only" evaluation
   interns strings (casts, comparisons against literals), so the pool is
   a genuine cross-thread mutation point. The critical sections are a
   hash probe plus at most one push, so the lock is uncontended in
   practice and serial-path overhead is noise. *)

type t = {
  mu : Mutex.t;
  table : (string, int) Hashtbl.t;
  strings : string Vec.t;
}

let create () =
  { mu = Mutex.create ();
    table = Hashtbl.create 64;
    strings = Vec.create "" }

let[@inline] locked t f =
  Mutex.lock t.mu;
  match f () with
  | v -> Mutex.unlock t.mu; v
  | exception e -> Mutex.unlock t.mu; raise e

let intern t s =
  locked t (fun () ->
    match Hashtbl.find_opt t.table s with
    | Some id -> id
    | None ->
      let id = Vec.length t.strings in
      Vec.push t.strings s;
      Hashtbl.add t.table s id;
      id)

let find_opt t s = locked t (fun () -> Hashtbl.find_opt t.table s)

let get t id = locked t (fun () -> Vec.get t.strings id)

let size t = locked t (fun () -> Vec.length t.strings)
