(* SplitMix64 — deterministic, seedable PRNG for the XMark generator and
   workload synthesis. Independent of [Random] so that generated documents
   are bit-stable across OCaml versions and test runs. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then Err.internal "Prng.int: bound %d <= 0" bound;
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Zipf-like skewed choice over [0, n): rank 0 is most likely. XMark uses
   skewed reference distributions (people watching popular auctions). *)
let zipf t n =
  if n <= 0 then Err.internal "Prng.zipf: n %d <= 0" n;
  let u = float t in
  let r = int_of_float (float_of_int n ** u) - 1 in
  if r < 0 then 0 else if r >= n then n - 1 else r

let pick t arr = arr.(int t (Array.length arr))
