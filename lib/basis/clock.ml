(* Monotonic clock. All deadline and profiling arithmetic in the engine
   uses this scale, never Unix.gettimeofday: the wall clock can be stepped
   by NTP or an operator, which would fire timeouts early or hold them off
   forever. The origin is unspecified (boot-relative on Linux); only
   differences are meaningful. *)

external monotonic_ns : unit -> int64 = "exrquy_clock_monotonic_ns"

let now_ns = monotonic_ns

let now () = Int64.to_float (monotonic_ns ()) *. 1e-9
