/* Monotonic time for deadline arithmetic. Unix.gettimeofday follows the
   wall clock, so an NTP step (or a manual date change) can fire a query
   deadline early or suppress it entirely; CLOCK_MONOTONIC cannot move
   backwards and is unaffected by clock discipline. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value exrquy_clock_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t) ts.tv_sec * 1000000000 + ts.tv_nsec);
}
