(* A fixed pool of worker domains for morsel-driven execution.

   The physical executor splits a batch into contiguous row-range morsels
   and runs them as numbered tasks. Workers claim task indices from a
   shared atomic counter (work stealing degenerates to striding, which is
   all a morsel scheduler needs); the submitting domain participates too,
   so [jobs = n] means at most [n] domains touch the query, n-1 of them
   pool helpers.

   Determinism contract, relied on by the executor's serial/parallel
   parity guarantee:
   - every task index in [0, ntasks) is executed exactly once (unless
     [stop] trips, in which case a suffix of unclaimed tasks is skipped —
     the caller is expected to turn that into a deterministic
     budget/cancellation error);
   - task bodies may raise; [run] completes the remaining tasks, then
     re-raises the exception of the *lowest-indexed* failed task. Since
     the executor assigns morsels to tasks in ascending row order and
     scans rows within a morsel in ascending order, that is exactly the
     exception serial execution would have raised first.

   The pool is lazily created and grown; helper domains live until
   process exit ([at_exit] signals shutdown and joins them, so test
   runners exit cleanly). A single submitter is assumed — if a second
   [run] finds the job board occupied it degrades to inline serial
   execution rather than corrupting the board. *)

type job = {
  body : int -> unit;
  ntasks : int;
  next : int Atomic.t;          (* next unclaimed task index *)
  stop : unit -> bool;          (* polled between tasks; true skips the rest *)
  mutable seats : int;          (* helpers still allowed to join, under [mu] *)
  mutable inflight : int;       (* participating workers, under [mu] *)
  mutable failures : (int * exn) list;  (* under [mu] *)
}

type t = {
  mu : Mutex.t;
  work_cv : Condition.t;        (* helpers: a job was posted / shutdown *)
  done_cv : Condition.t;        (* submitter: a participant retired *)
  mutable job : job option;
  mutable gen : int;            (* bumps per job, so a helper that just
                                   finished a job does not rejoin it *)
  mutable shutdown : bool;
  mutable helpers : unit Domain.t list;
  mutable nhelpers : int;
  contended : int Atomic.t;     (* parallel submissions that found the job
                                   board occupied and degraded to serial —
                                   the cross-query contention signal a
                                   serving layer watches to decide when
                                   concurrent queries should stop asking
                                   for morsel parallelism *)
}

(* Beyond physical cores extra domains only add scheduling noise, but the
   parity tests deliberately run jobs up to 8 on small machines, so allow
   a generous fixed cap rather than tying it to the host. *)
let max_helpers = 15

let create () =
  { mu = Mutex.create ();
    work_cv = Condition.create ();
    done_cv = Condition.create ();
    job = None;
    gen = 0;
    shutdown = false;
    helpers = [];
    nhelpers = 0;
    contended = Atomic.make 0 }

(* Run claimed tasks until the counter runs dry or [stop] trips. Failures
   are recorded, never propagated mid-job: later tasks must still run so
   the lowest-index failure (= serial order) can be chosen afterwards.

   Nothing may escape [drain]: an exception slipping out of a helper's
   drain would skip [retire], leaving [inflight] forever positive and the
   submitter blocked on [done_cv] — and out of the submitter's drain it
   would leave the job board occupied, silently degrading every later
   [run] to serial. So both the task body and the [stop] hook are fenced.
   [Stack_overflow] (and any other catchable runtime exception) raised
   mid-task is an ordinary recorded failure. A raising [stop] hook counts
   as a trip *and* records its exception under an index past every real
   task, so task-body failures (lower indices = serial order) still win
   the re-raise. *)
let record_failure t j i e =
  Mutex.lock t.mu;
  j.failures <- (i, e) :: j.failures;
  Mutex.unlock t.mu

let drain t j =
  let stopped () =
    try j.stop ()
    with e -> record_failure t j j.ntasks e; true
  in
  let rec claim () =
    if not (stopped ()) then begin
      let i = Atomic.fetch_and_add j.next 1 in
      if i < j.ntasks then begin
        (try j.body i with e -> record_failure t j i e);
        claim ()
      end
    end
  in
  claim ()

let retire t j =
  Mutex.lock t.mu;
  j.inflight <- j.inflight - 1;
  if j.inflight = 0 then Condition.broadcast t.done_cv;
  Mutex.unlock t.mu

let helper_loop t =
  let last_gen = ref (-1) in
  let rec loop () =
    Mutex.lock t.mu;
    let rec await () =
      if t.shutdown then (Mutex.unlock t.mu; None)
      else
        match t.job with
        | Some j when t.gen <> !last_gen && j.seats > 0 ->
          j.seats <- j.seats - 1;
          j.inflight <- j.inflight + 1;
          last_gen := t.gen;
          Mutex.unlock t.mu;
          Some j
        | _ -> Condition.wait t.work_cv t.mu; await ()
    in
    match await () with
    | None -> ()
    | Some j -> drain t j; retire t j; loop ()
  in
  loop ()

let ensure_helpers t n =
  let n = min n max_helpers in
  while t.nhelpers < n do
    let d = Domain.spawn (fun () -> helper_loop t) in
    t.helpers <- d :: t.helpers;
    t.nhelpers <- t.nhelpers + 1
  done

let shutdown t =
  Mutex.lock t.mu;
  t.shutdown <- true;
  Condition.broadcast t.work_cv;
  let ds = t.helpers in
  t.helpers <- [];
  t.nhelpers <- 0;
  Mutex.unlock t.mu;
  List.iter Domain.join ds

let run_serial ?(stop = fun () -> false) ntasks body =
  (* Inline path: raises at the first failure, which for in-order serial
     execution is already the lowest-indexed one. *)
  let i = ref 0 in
  while !i < ntasks && not (stop ()) do
    body !i;
    incr i
  done

let run t ~jobs ?(stop = fun () -> false) ntasks body =
  if ntasks <= 0 then ()
  else if jobs <= 1 || ntasks = 1 then run_serial ~stop ntasks body
  else begin
    Mutex.lock t.mu;
    if t.job <> None then begin
      (* Nested/concurrent submission: do something safe instead of
         clobbering the board. Each degradation is counted — under a
         multi-query server this is the morsel-claim contention signal
         the overload watchdog samples. *)
      Mutex.unlock t.mu;
      Atomic.incr t.contended;
      run_serial ~stop ntasks body
    end
    else begin
      ensure_helpers t (jobs - 1);
      let j =
        { body; ntasks; next = Atomic.make 0; stop;
          seats = min (jobs - 1) t.nhelpers;
          inflight = 1;  (* the submitter *)
          failures = [] }
      in
      t.job <- Some j;
      t.gen <- t.gen + 1;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.mu;
      drain t j;
      Mutex.lock t.mu;
      j.inflight <- j.inflight - 1;
      j.seats <- 0;  (* no late joiners once the submitter is done claiming *)
      while j.inflight > 0 do Condition.wait t.done_cv t.mu done;
      t.job <- None;
      let failures = j.failures in
      Mutex.unlock t.mu;
      match List.sort (fun (a, _) (b, _) -> compare a b) failures with
      | (_, e) :: _ -> raise e
      | [] -> ()
    end
  end

(* One process-wide pool, shared by every query: worker domains are too
   expensive to spawn per evaluation. *)
let global = lazy (
  let t = create () in
  at_exit (fun () -> shutdown t);
  t)

let get () = Lazy.force global

let contended t = Atomic.get t.contended

let recommended_jobs () = Domain.recommended_domain_count ()

(* Adaptive morsel sizing: contiguous [lo, hi) spans covering [0, n).
   The first span is small enough that every worker gets work promptly
   (but never below the configured morsel floor); subsequent spans double
   until capped at roughly n / (2 * jobs), which keeps the tail balanced
   — the last worker to claim can be late by at most half its fair share.
   Fewer, larger spans amortize per-span scheduling and column-decode
   setup on big inputs, which is what erases the fan-out penalty small
   fixed morsels pay on queries with many short pipelines. *)
let adaptive_spans n ~morsel ~jobs =
  if n <= 0 then [||]
  else begin
    let jobs = max 1 jobs in
    let s0 = max 1 (max morsel ((n + (jobs * 8) - 1) / (jobs * 8))) in
    let cap = max s0 ((n + (jobs * 2) - 1) / (jobs * 2)) in
    let spans = ref [] and lo = ref 0 and sz = ref s0 in
    while !lo < n do
      let hi = min n (!lo + !sz) in
      spans := (!lo, hi) :: !spans;
      lo := hi;
      sz := min cap (!sz * 2)
    done;
    Array.of_list (List.rev !spans)
  end
