(** A writer-preferring reader-writer lock.

    The query server holds one per document store: read-only queries
    share the store concurrently; store-mutating work (node construction,
    document ingest) takes the write side for exclusivity. Once a writer
    is waiting, new readers queue behind it, so writers cannot starve
    under a read-heavy workload.

    Not reentrant: a thread must not re-acquire a side it already
    holds. *)

type t

val create : unit -> t

val lock_read : t -> unit
val unlock_read : t -> unit
val lock_write : t -> unit
val unlock_write : t -> unit

(** [with_read t f] / [with_write t f] run [f ()] under the lock,
    releasing it on any exit (including exceptions). *)
val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a
