(** Growable arrays (amortized O(1) push), used wherever result sizes are
    unknown up front: the store builder, the XML parser, the columnar
    executor. *)

type 'a t

(** [create ?capacity dummy] makes an empty vector. [dummy] fills unused
    slots and is never observed. *)
val create : ?capacity:int -> 'a -> 'a t

val length : 'a t -> int

(** Reset the length to 0 (keeps the allocation). *)
val clear : 'a t -> unit

(** Ensure capacity for at least [n] elements. *)
val ensure : 'a t -> int -> unit

val push : 'a t -> 'a -> unit

(** O(1) indexed access; raises {!Err.Internal_error} out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** Last element; raises {!Err.Internal_error} when empty. *)
val last : 'a t -> 'a

(** Remove and return the last element. *)
val pop : 'a t -> 'a

(** Snapshot the contents as a fresh array of exactly [length] elements. *)
val to_array : 'a t -> 'a array

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [of_array dummy a] builds a vector holding [a]'s elements. *)
val of_array : 'a -> 'a array -> 'a t

(** [append dst src] pushes all of [src] onto [dst]. *)
val append : 'a t -> 'a t -> unit
