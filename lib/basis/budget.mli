(** Resource governance for query evaluation: wall-clock deadline, output
    row budget, estimated-byte budget, operator-evaluation-count budget,
    cooperative cancellation, and a deterministic fault-injection hook.

    A {!spec} declares the limits; {!start} arms a fresh guard for one
    evaluation. Executors call {!check} at every operator boundary and
    {!add_rows}/{!add_bytes} after materializing results; exhaustion
    raises {!Err.Resource_error}, unwinding through the normal exception
    path so no partial result escapes.

    Cancellation is cooperative with operator granularity: flipping a
    {!cancel} switch makes the next boundary check raise.

    Guards are domain-safe: counters are atomics and the cancel switch
    is atomic, so one guard can be shared by the coordinator and worker
    domains of a morsel-parallel query and flipped from any domain. *)

(** A shared cancellation switch. Create one, stash it in a {!spec}, and
    flip it (e.g. from a signal handler or another domain's request
    router) to stop the query at its next operator boundary. *)
type cancel

val cancel_switch : unit -> cancel
val cancel : cancel -> unit
val cancelled : cancel -> bool

type spec = {
  timeout_s : float option;
      (** relative deadline in seconds, armed by {!start}; [<= 0.] means
          already expired *)
  max_rows : int option;
      (** cumulative rows materialized across all operators *)
  max_bytes : int option;
      (** cumulative estimated bytes materialized across all operators *)
  max_ops : int option;  (** operator (plan/core node) evaluations *)
  cancel : cancel option;
  fault_at : int option;
      (** fault injection: the n-th {!check} raises
          {!Err.Internal_error} — test machinery, never set it in
          production paths *)
}

(** No limits at all. Build specs as [{ unlimited with ... }]. *)
val unlimited : spec

(** Keyword-argument spec builder. *)
val limits :
  ?timeout_s:float -> ?max_rows:int -> ?max_bytes:int -> ?max_ops:int ->
  ?cancel:cancel -> ?fault_at:int -> unit -> spec

(** Session scoping: [clamp ~ceiling spec] tightens [spec] under a
    server-side ceiling — each numeric limit becomes the minimum of the
    two sides (a limit armed on only one side is kept). The [cancel]
    switch and [fault_at] hook are taken from [spec] alone: the ceiling
    is policy, and must neither alias one client's cancellation into
    another's nor let a remote caller arm fault injection. *)
val clamp : ceiling:spec -> spec -> spec

(** A running guard: counters plus the absolute deadline (kept on the
    monotonic {!Clock} scale, immune to wall-clock steps). *)
type t

(** Arm a guard: the deadline clock starts now. *)
val start : spec -> t

val ops : t -> int
val rows : t -> int
val bytes : t -> int

(** Seconds left until the armed deadline (negative once passed) on the
    monotonic {!Clock} scale; [None] when no deadline is armed. *)
val remaining_s : t -> float option

(** The operator-boundary check: counts one operator evaluation, then
    raises {!Err.Resource_error} on cancellation, an exhausted operator
    budget, or a passed deadline — or {!Err.Internal_error} when this is
    the boundary selected by [fault_at]. *)
val check : t -> unit

(** Morsel-boundary poll: true when cancellation or the deadline would
    make the next {!check} raise. Unlike {!check} this does not count an
    operator evaluation, so polling frequency cannot perturb [fault_at]
    or [max_ops] accounting. Safe to call from worker domains. *)
val interrupted : t -> bool

(** Raise exactly the error {!check} would for a cancellation or
    deadline trip (same message text), without counting an operator
    evaluation. No-op when neither has tripped. The parallel executor
    calls this on the coordinator after workers observe {!interrupted}. *)
val check_interrupted : t -> unit

(** Account [n] materialized rows; raises {!Err.Resource_error} past
    [max_rows]. *)
val add_rows : t -> int -> unit

(** Account [n] estimated bytes; raises {!Err.Resource_error} past
    [max_bytes]. *)
val add_bytes : t -> int -> unit

(** Whether a byte budget is armed — callers skip the (linear-cost) byte
    estimate when it is not. *)
val wants_bytes : t -> bool
