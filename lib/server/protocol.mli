(** The server's line-delimited wire protocol: parsing and rendering only
    — no sockets, no sessions — so both sides (server loop, bench/fuzz
    clients, tests) share one grammar.

    One request per line, one response line per request. Payload fields
    are escaped so a query or document never breaks line framing:
    [\\ -> \\\\], [LF -> \n], [CR -> \r]; itemized response fields are
    additionally space-escaped ([SP -> \s]) so a response line can carry
    a list of items.

    Requests:
    {v
    Q  [t=<ms>] <query>      evaluate; respond with the serialized result
    QI [t=<ms>] <query>      evaluate; respond with per-item fields
    P <name> <query>         prepare a named statement
    E  [t=<ms>] <name>       execute a prepared statement (serialized)
    EI [t=<ms>] <name>       execute a prepared statement (per-item)
    L  [t=<ms>] <uri> <xml>  ingest into the session-private store
    U <store>                switch store ("session" = private store)
    STATS                    one line of k=v counters (never queued)
    PING / QUIT              liveness / close
    SLEEP [t=<ms>] <ms>      debug builds: hold a worker, poll the budget
    v}
    [t=<ms>] is the client deadline wish, clamped under the server
    ceiling.

    Responses:
    {v
    OK <n> <payload>            n items, one escaped payload field
    OK <n> <item1> ... <itemn>  itemized (space-escaped fields)
    ERR <class> <code> <message>
    PONG / BYE
    v}
    [class] is the error taxonomy label ([dynamic] | [static] |
    [resource] | [internal]) and [code] the matching CLI exit code —
    the wire mirrors {!Basis.Err.exit_code} exactly. *)

val escape : string -> string
val unescape : string -> string

(** Like {!escape}/{!unescape}, with [SP -> \s] as well. *)
val escape_item : string -> string
val unescape_item : string -> string

type request =
  | Query of { itemized : bool; timeout_s : float option; text : string }
  | Prepare of { name : string; text : string }
  | Exec of { itemized : bool; timeout_s : float option; name : string }
  | Load of { timeout_s : float option; uri : string; xml : string }
  | Use of string
  | Stats
  | Ping
  | Quit
  | Sleep of { timeout_s : float option; ms : int }

val parse_request : string -> (request, string) result

(** Render a request (client side). *)
val render_request : request -> string

(** [OK <n> <payload>] *)
val ok_payload : n:int -> string -> string

(** [OK <n> <item1> ... <itemn>] *)
val ok_items : string list -> string

(** [OK 0] — acknowledgement with no payload. *)
val ok_unit : string

val err : Basis.Err.kind -> string -> string
val pong : string
val bye : string

type response =
  | Resp_ok of int * string
      (** item count and the raw (still escaped) field text after it —
          {!payload_of} or {!items_of} decode it, per what was asked *)
  | Resp_err of { class_ : string; code : int; message : string }
  | Resp_pong
  | Resp_bye

val parse_response : string -> (response, string) result

(** Decode a [Resp_ok] field text as the single serialized payload. *)
val payload_of : string -> string

(** Decode a [Resp_ok] field text as itemized fields. [n] disambiguates
    the empty payload (0 items) from one empty item. *)
val items_of : n:int -> string -> string list
