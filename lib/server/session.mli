(** Sessions and the shared-store registry: the engine-side substrate of
    the query server, independent of any wire protocol.

    A {!Registry.t} names the stores loaded at server start; sessions
    evaluate against one of them at a time (or against a session-private
    store populated by {!load}). Each shared store carries a
    reader-writer lock: queries whose plans cannot construct nodes share
    the store, queries that may append fragments get exclusivity (see
    {!Engine.constructs_nodes}).

    A session owns:
    - its current store selection ({!use});
    - a lazily created private store for ingested documents;
    - named prepared statements ({!prepare} / {!exec}) backed by the
      server-wide prepared-plan cache, so two sessions preparing the same
      query share one compile;
    - the cancellation switches of its in-flight requests
      ({!cancel_inflight}), flipped by the server when the client
      disconnects mid-query.

    Every request budget is clamped under the server [ceiling]
    ({!Basis.Budget.clamp}): a client may tighten its own deadline, never
    widen the server's. *)

module Registry : sig
  type t

  val create : unit -> t

  (** Register a store under a name. Last registration wins. *)
  val add : t -> name:string -> Xmldb.Doc_store.t -> unit

  val mem : t -> string -> bool

  (** Registration order. *)
  val names : t -> string list
end

type t

(** [create ~registry ~store ()] opens a session on the named shared
    store. [ceiling] caps every request budget; [opts] is the engine
    configuration (the per-request [jobs] override in {!query} patches
    it); [cache] is the shared prepared-plan cache. Returns [Error] when
    [store] is not registered. *)
val create :
  ?cache:Engine.cache -> ?ceiling:Basis.Budget.spec -> ?opts:Engine.opts ->
  registry:Registry.t -> store:string -> unit -> (t, string) result

(** Switch the current store: [`Shared name] (must be registered) or
    [`Private] (the session's own store, created on first use). *)
val use : t -> [ `Shared of string | `Private ] -> (unit, string) result

(** The current selection, for STATS lines. *)
val current_store : t -> string

(** A request's outcome: per-item serializations (what differential
    tooling compares), the whole-sequence serialization (what [Q]
    returns), and the degradation notice when the interpreter fallback
    answered. *)
type reply = {
  items : string list;
  serialized : string;
  n : int;
  degraded : string option;
}

(** Evaluate query text under the session's current store and a fresh
    clamped budget. [timeout_s] is the client's deadline wish;
    [jobs] overrides the engine parallelism (the overload watchdog
    degrades it to 1). All classified failures come back as [Error];
    unclassified exceptions escape (server maps them to internal). *)
val query :
  ?timeout_s:float -> ?jobs:int -> t -> string ->
  (reply, Engine.error) result

(** Name a query text for later {!exec}. Compiles eagerly (through the
    shared plan cache), so static errors surface at prepare time. *)
val prepare : t -> name:string -> string -> (unit, Engine.error) result

(** Run a prepared statement; dynamic error when the name is unknown. *)
val exec :
  ?timeout_s:float -> ?jobs:int -> t -> string ->
  (reply, Engine.error) result

(** Parse [xml] into the session-private store and register it under
    [uri] (so [fn:doc(uri)] finds it once the session switches to
    [`Private]). Runs under the same clamped budget as queries — ingest
    of a hostile payload trips [Resource_error], and an abandoned parse
    publishes nothing. *)
val load :
  ?timeout_s:float -> t -> uri:string -> string ->
  (unit, Engine.error) result

(** Debug work simulator (the wire's [SLEEP], admitted like a query):
    hold the calling worker for [ms] milliseconds under the session's
    clamped budget, polling the guard every ~2ms — so deadlines trip it
    and a disconnect cancels it, deterministically. *)
val sleep :
  ?timeout_s:float -> t -> ms:int -> (unit, Engine.error) result

(** Flip the cancellation switches of all in-flight requests, if any:
    their next budget checks raise [Resource_error]. Safe from any
    thread. *)
val cancel_inflight : t -> unit
