(* The concurrent query server. Threading model:

   - one ACCEPTOR thread selects on the listen socket (with a timeout, so
     it can observe the stopping flag without being woken);
   - one READER thread per connection: parses requests, answers the cheap
     ones inline (PING/STATS/U/P/QUIT — these must keep working on a
     saturated server), and submits the rest to the admission queue. A
     reader never executes a query, so a client can neither occupy a
     worker by dribbling bytes nor dodge admission control;
   - a fixed pool of WORKER threads consuming the queue, executing
     through Session (which clamps budgets and arms per-request
     cancellation switches) and writing the response to the client under
     the connection's write lock;
   - one TICKER thread sampling domain-pool contention for the overload
     watchdog; while degraded, workers run queries with jobs = 1.

   All server threads are systhreads: they interleave under the runtime
   lock, which is exactly right for a workload of parsing lines and
   blocking on sockets, while the actual data parallelism (morsel
   execution inside one query) fans out over the domain pool. The
   watchdog closes the loop between the two layers: the domain pool
   serves one parallel query at a time and concurrent submitters degrade
   to inline serial execution, bumping Pool.contended — sustained growth
   of that counter is the signal that fan-out no longer pays, and the
   server stops requesting it.

   Shutdown (stop) drains: admission closes immediately (shed with the
   "draining" resource error), workers finish everything already admitted
   — past the grace deadline their budgets are cancelled instead, which
   unwinds them through the ordinary Resource_error path — and every
   admitted response is flushed before the sockets are shut down. *)

(* re-exports: the library is wrapped with this module at its root, so
   these are the public paths of the server's parts *)
module Protocol = Protocol
module Session = Session
module Admission = Admission
module Watchdog = Watchdog

module Budget = Basis.Budget
module Err = Basis.Err

type config = {
  host : string;
  port : int;
  stores : (string * Xmldb.Doc_store.t) list;
  ceiling : Budget.spec;
  opts : Engine.opts;
  workers : int;
  queue_capacity : int;
  client_cap : int;
  cache_capacity : int;
  debug : bool;
  wd_threshold : int;
  wd_degrade_after : int;
  wd_recover_after : int;
  tick_s : float;
}

let config ?(host = "127.0.0.1") ?(port = 0)
    ?(ceiling = Budget.limits ~timeout_s:10. ()) ?(opts = Engine.default_opts)
    ?(workers = 4) ?(queue_capacity = 64) ?(client_cap = 4)
    ?(cache_capacity = 128) ?(debug = false) ?(wd_threshold = 4)
    ?(wd_degrade_after = 3) ?(wd_recover_after = 5) ?(tick_s = 0.1) ~stores
    () =
  { host; port; stores; ceiling; opts; workers; queue_capacity; client_cap;
    cache_capacity; debug; wd_threshold; wd_degrade_after; wd_recover_after;
    tick_s }

type conn = {
  conn_id : int;
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  write_mu : Mutex.t;
  session : Session.t;
  inflight : int Atomic.t;   (* admitted-but-unfinished requests *)
  alive : bool Atomic.t;     (* false once the client is gone *)
  mutable closed : bool;     (* under write_mu: fd actually closed *)
}

type job = { jconn : conn; jreq : Protocol.request }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  registry : Session.Registry.t;
  default_store : string;
  cache : Engine.cache;
  queue : job Admission.t;
  wd : Watchdog.t;           (* observed by the ticker thread only *)
  degraded : bool Atomic.t;  (* the watchdog verdict, read by workers *)
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  executing : int Atomic.t;  (* jobs currently inside a worker *)
  completed : int Atomic.t;
  shed_cap : int Atomic.t;
  active_workers : int Atomic.t;
  next_conn_id : int Atomic.t;
  conns_mu : Mutex.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;    (* under conns_mu *)
  mutable workers_t : Thread.t list;
  mutable acceptor_t : Thread.t option;
  mutable ticker_t : Thread.t option;
  mutable last_contended : int;       (* ticker-private *)
}

(* ------------------------------------------------------------ responses *)

(* Writes go through the connection's write lock: several workers (and
   the reader) may answer one client, and a torn line would desynchronize
   the whole response stream. A write failure just marks the client gone;
   readers and workers check [alive] and move on. *)
let send conn line =
  Mutex.lock conn.write_mu;
  (if not conn.closed then
     try
       output_string conn.oc line;
       output_char conn.oc '\n';
       flush conn.oc
     with Sys_error _ -> Atomic.set conn.alive false);
  Mutex.unlock conn.write_mu

let close_conn conn =
  Mutex.lock conn.write_mu;
  (if not conn.closed then begin
     conn.closed <- true;
     (try Unix.close conn.fd with Unix.Unix_error _ -> ())
   end);
  Mutex.unlock conn.write_mu

let send_error conn (e : Engine.error) =
  send conn (Protocol.err e.Engine.kind e.Engine.message)

let shed conn message =
  send conn (Protocol.err Err.Resource message)

(* --------------------------------------------------------------- stats *)

let stats t =
  let q = Admission.stats t.queue in
  let c = Engine.cache_stats t.cache in
  let conns = Mutex.protect t.conns_mu (fun () -> List.length t.conns) in
  [ ("state",
     if Atomic.get t.degraded then "degraded"
     else if Atomic.get t.stopping then "draining"
     else "normal");
    ("conns", string_of_int conns);
    ("queue_depth", string_of_int (Admission.depth t.queue));
    ("executing", string_of_int (Atomic.get t.executing));
    ("admitted", string_of_int q.Admission.admitted);
    ("completed", string_of_int (Atomic.get t.completed));
    ("shed_full", string_of_int q.Admission.shed_full);
    ("shed_cap", string_of_int (Atomic.get t.shed_cap));
    ("shed_draining", string_of_int q.Admission.shed_draining);
    ("degradations", string_of_int (Watchdog.degradations t.wd));
    ("pool_contended", string_of_int (Basis.Pool.contended (Basis.Pool.get ())));
    ("cache_hits", string_of_int c.Engine.Plan_cache.hits);
    ("cache_misses", string_of_int c.Engine.Plan_cache.misses);
    ("cache_evictions", string_of_int c.Engine.Plan_cache.evictions) ]

let stats_payload t conn =
  let kvs = stats t @ [ ("store", Session.current_store conn.session) ] in
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)

(* -------------------------------------------------------------- workers *)

(* Run one admitted job; returns the response line to write, or [None]
   when the client vanished while the job sat in the queue (its response
   has no reader, and the session's switches were already tripped). *)
let execute t job =
  let conn = job.jconn in
  if not (Atomic.get conn.alive) then None
  else begin
    let jobs = if Atomic.get t.degraded then Some 1 else None in
    let reply_ok ~itemized (r : Session.reply) =
      if itemized then Protocol.ok_items r.Session.items
      else Protocol.ok_payload ~n:r.Session.n r.Session.serialized
    in
    Some
      (match
         match job.jreq with
         | Protocol.Query { itemized; timeout_s; text } ->
           Result.map (reply_ok ~itemized)
             (Session.query ?timeout_s ?jobs conn.session text)
         | Protocol.Exec { itemized; timeout_s; name } ->
           Result.map (reply_ok ~itemized)
             (Session.exec ?timeout_s ?jobs conn.session name)
         | Protocol.Load { timeout_s; uri; xml } ->
           Result.map
             (fun () -> Protocol.ok_unit)
             (Session.load ?timeout_s conn.session ~uri xml)
         | Protocol.Sleep { timeout_s; ms } ->
           Result.map
             (fun () -> Protocol.ok_unit)
             (Session.sleep ?timeout_s conn.session ~ms)
         | Protocol.Prepare _ | Protocol.Use _ | Protocol.Stats
         | Protocol.Ping | Protocol.Quit ->
           (* inline requests never reach the queue *)
           Error
             { Engine.kind = Err.Internal; message = "request not admissible" }
       with
       | Ok line -> line
       | Error e -> Protocol.err e.Engine.kind e.Engine.message
       | exception e ->
         (* a worker must survive anything a request throws at it *)
         Protocol.err Err.Internal
           ("unclassified server error: " ^ Printexc.to_string e))
  end

let rec worker_loop t =
  match Admission.take t.queue with
  | None -> ()  (* draining and empty: done *)
  | Some job ->
    Atomic.incr t.executing;
    let resp = execute t job in
    (* free the client's slots before the response hits the wire: a
       client reacting to its response immediately must not be shed by
       a cap counter we have not decremented yet *)
    Atomic.decr t.executing;
    Atomic.decr job.jconn.inflight;
    Atomic.incr t.completed;
    Option.iter (send job.jconn) resp;
    worker_loop t

(* -------------------------------------------------------------- readers *)

let disconnect t conn =
  Atomic.set conn.alive false;
  (* cooperative cancellation: whatever this client had in flight stops
     at its next budget check instead of running to completion for a
     reader that no longer exists *)
  Session.cancel_inflight conn.session;
  close_conn conn;
  Mutex.protect t.conns_mu (fun () ->
    t.conns <- List.filter (fun c -> c.conn_id <> conn.conn_id) t.conns)

let admit t conn req =
  if Atomic.get conn.inflight >= t.cfg.client_cap then begin
    Atomic.incr t.shed_cap;
    shed conn
      (Printf.sprintf "per-client concurrency cap reached (limit %d in flight)"
         t.cfg.client_cap)
  end
  else begin
    (* the reader is the only thread that increments, so cap-check +
       increment cannot race with itself; workers only decrement *)
    Atomic.incr conn.inflight;
    match Admission.submit t.queue { jconn = conn; jreq = req } with
    | `Admitted -> ()
    | `Queue_full ->
      Atomic.decr conn.inflight;
      shed conn
        (Printf.sprintf "server overloaded: admission queue full (capacity %d)"
           t.cfg.queue_capacity)
    | `Draining ->
      Atomic.decr conn.inflight;
      shed conn "server draining: not admitting new work"
  end

let handle t conn line =
  match Protocol.parse_request line with
  | Error msg -> send conn (Protocol.err Err.Static ("protocol error: " ^ msg))
  | Ok Protocol.Ping -> send conn Protocol.pong
  | Ok Protocol.Quit ->
    send conn Protocol.bye;
    Atomic.set conn.alive false
  | Ok Protocol.Stats ->
    send conn (Protocol.ok_payload ~n:1 (stats_payload t conn))
  | Ok (Protocol.Use name) ->
    let sel = if name = "session" then `Private else `Shared name in
    (match Session.use conn.session sel with
     | Ok () -> send conn Protocol.ok_unit
     | Error msg -> send conn (Protocol.err Err.Dynamic msg))
  | Ok (Protocol.Prepare { name; text }) ->
    (match Session.prepare conn.session ~name text with
     | Ok () -> send conn Protocol.ok_unit
     | Error e -> send_error conn e)
  | Ok (Protocol.Sleep _) when not t.cfg.debug ->
    send conn (Protocol.err Err.Static "SLEEP requires --debug")
  | Ok ((Protocol.Query _ | Protocol.Exec _ | Protocol.Load _
        | Protocol.Sleep _) as req) ->
    admit t conn req

(* Accept both LF and CRLF framing. *)
let chomp_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let rec reader_loop t conn =
  match input_line conn.ic with
  | exception (End_of_file | Sys_error _) -> disconnect t conn
  | line ->
    handle t conn (chomp_cr line);
    if Atomic.get conn.alive then reader_loop t conn
    else disconnect t conn

(* ------------------------------------------------------------- acceptor *)

let spawn_conn t fd =
  let session =
    match
      Session.create ~cache:t.cache ~ceiling:t.cfg.ceiling ~opts:t.cfg.opts
        ~registry:t.registry ~store:t.default_store ()
    with
    | Ok s -> s
    | Error msg -> Err.internal "session on registered store: %s" msg
  in
  let conn =
    { conn_id = Atomic.fetch_and_add t.next_conn_id 1;
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      write_mu = Mutex.create ();
      session;
      inflight = Atomic.make 0;
      alive = Atomic.make true;
      closed = false }
  in
  let th = Thread.create (fun () -> reader_loop t conn) () in
  Mutex.protect t.conns_mu (fun () ->
    t.conns <- conn :: t.conns;
    t.readers <- th :: t.readers)

let rec acceptor_loop t =
  if not (Atomic.get t.stopping) then begin
    (match Unix.select [ t.listen_fd ] [] [] 0.1 with
     | [], _, _ -> ()
     | _ ->
       (match Unix.accept t.listen_fd with
        | fd, _ -> spawn_conn t fd
        | exception Unix.Unix_error _ -> ())
     | exception Unix.Unix_error _ -> ());
    acceptor_loop t
  end

(* -------------------------------------------------------------- watchdog *)

let rec ticker_loop t =
  if not (Atomic.get t.stopping) then begin
    Thread.delay t.cfg.tick_s;
    let total = Basis.Pool.contended (Basis.Pool.get ()) in
    let delta = total - t.last_contended in
    t.last_contended <- total;
    let st = Watchdog.observe t.wd delta in
    Atomic.set t.degraded (st = Watchdog.Degraded);
    ticker_loop t
  end

(* ------------------------------------------------------------ lifecycle *)

let start cfg =
  if cfg.stores = [] then invalid_arg "Server.start: no stores";
  (* a worker writing to a freshly disconnected client must get EPIPE as
     an exception (caught in [send]), not a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let registry = Session.Registry.create () in
  List.iter
    (fun (name, store) -> Session.Registry.add registry ~name store)
    cfg.stores;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen listen_fd 64
   with e -> (try Unix.close listen_fd with _ -> ()); raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let t =
    { cfg;
      listen_fd;
      bound_port;
      registry;
      default_store = fst (List.hd cfg.stores);
      cache = Engine.create_cache ~capacity:cfg.cache_capacity ();
      queue = Admission.create ~capacity:cfg.queue_capacity;
      wd =
        Watchdog.create ~threshold:cfg.wd_threshold
          ~degrade_after:cfg.wd_degrade_after
          ~recover_after:cfg.wd_recover_after ();
      degraded = Atomic.make false;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      executing = Atomic.make 0;
      completed = Atomic.make 0;
      shed_cap = Atomic.make 0;
      active_workers = Atomic.make 0;
      next_conn_id = Atomic.make 0;
      conns_mu = Mutex.create ();
      conns = [];
      readers = [];
      workers_t = [];
      acceptor_t = None;
      ticker_t = None;
      last_contended = Basis.Pool.contended (Basis.Pool.get ()) }
  in
  t.workers_t <-
    List.init (max 1 cfg.workers) (fun _ ->
        Atomic.incr t.active_workers;
        Thread.create
          (fun () ->
             Fun.protect
               ~finally:(fun () -> Atomic.decr t.active_workers)
               (fun () -> worker_loop t))
          ());
  t.acceptor_t <- Some (Thread.create (fun () -> acceptor_loop t) ());
  t.ticker_t <- Some (Thread.create (fun () -> ticker_loop t) ());
  t

let port t = t.bound_port

let stop ?(grace_s = 5.) t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.stopping true;
    (* 1. close admission: everything new is shed with the draining
       error, workers keep consuming what was already admitted *)
    Admission.drain t.queue;
    (* 2. wait for in-flight work — past the grace deadline, cancel it:
       every session switch flips, and the stragglers unwind through
       Resource_error with their (error) responses still delivered *)
    let deadline = Basis.Clock.now () +. Float.max 0. grace_s in
    let cancelled = ref false in
    while Atomic.get t.active_workers > 0 do
      if (not !cancelled) && Basis.Clock.now () >= deadline then begin
        cancelled := true;
        Mutex.protect t.conns_mu (fun () -> t.conns)
        |> List.iter (fun c -> Session.cancel_inflight c.session)
      end;
      Thread.delay 0.01
    done;
    List.iter Thread.join t.workers_t;
    (* 3. all admitted responses are flushed; now take the listener and
       the client sockets down (shutdown wakes readers blocked in
       input_line) and join every remaining thread *)
    Option.iter Thread.join t.acceptor_t;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let conns, readers =
      Mutex.protect t.conns_mu (fun () -> (t.conns, t.readers))
    in
    List.iter
      (fun c ->
         try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join readers;
    Option.iter Thread.join t.ticker_t
  end
