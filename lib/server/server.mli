(** The concurrent query server: line-delimited TCP ({!Protocol}) over
    persistently loaded document stores ({!Session.Registry}), built for
    predictable behaviour under overload.

    The request pipeline is {b admission → budget → shed/degrade}:

    - connection readers never execute queries; they parse a request and
      {!Admission.submit} it to a bounded queue consumed by a fixed pool
      of worker threads. When the queue is full, or the client already
      has its per-client cap in flight, or the server is draining, the
      request is refused {e immediately} with a wire-level
      [ERR resource 3 ...] — load is shed, never silently buffered;
    - every admitted request runs under a fresh budget guard: the
      client's deadline wish clamped below the server ceiling
      ({!Basis.Budget.clamp}), plus a cancellation switch that the
      reader trips when the client disconnects mid-query;
    - a watchdog thread samples domain-pool contention
      ({!Basis.Pool.contended}) and, on sustained contention, degrades
      query execution to [jobs = 1] ({!Watchdog}) — concurrent queries
      stop fighting over the morsel pool and run serially-parallel
      instead.

    {!stop} is the graceful drain: admission closes (new work is shed
    with the [draining] error), workers finish everything already
    admitted — past [grace_s] their budgets are cancelled instead — and
    every in-flight response is flushed before sockets close. After
    {!stop} returns no server thread is left running.

    Cheap protocol work (PING, STATS, U, P, QUIT) is answered inline by
    the reader, off-admission, so health checks and test synchronization
    still work on a saturated server. *)

(** The server's parts, re-exported (the library is wrapped with this
    module at its root): the wire grammar, the session/prepared-statement
    layer, the bounded admission queue, and the overload watchdog. *)
module Protocol : module type of Protocol

module Session : module type of Session
module Admission : module type of Admission
module Watchdog : module type of Watchdog

type config = {
  host : string;
  port : int;                     (** 0 picks an ephemeral port *)
  stores : (string * Xmldb.Doc_store.t) list;
      (** preloaded shared stores; the first is every session's initial
          store. Must be non-empty. *)
  ceiling : Basis.Budget.spec;    (** per-request budget ceiling *)
  opts : Engine.opts;             (** engine configuration for all runs *)
  workers : int;                  (** executing worker threads *)
  queue_capacity : int;           (** admission queue bound *)
  client_cap : int;               (** per-client in-flight cap *)
  cache_capacity : int;           (** shared prepared-plan cache *)
  debug : bool;                   (** enable the SLEEP test request *)
  wd_threshold : int;             (** watchdog: hot-tick contention delta *)
  wd_degrade_after : int;         (** hot ticks before degrading *)
  wd_recover_after : int;         (** calm ticks before recovering *)
  tick_s : float;                 (** watchdog sampling period *)
}

(** Defaults: 4 workers, queue 64, client cap 4, cache 128, 10s ceiling,
    watchdog 4/3/5 at 100ms ticks, [debug = false]. *)
val config :
  ?host:string -> ?port:int -> ?ceiling:Basis.Budget.spec ->
  ?opts:Engine.opts -> ?workers:int -> ?queue_capacity:int ->
  ?client_cap:int -> ?cache_capacity:int -> ?debug:bool ->
  ?wd_threshold:int -> ?wd_degrade_after:int -> ?wd_recover_after:int ->
  ?tick_s:float -> stores:(string * Xmldb.Doc_store.t) list -> unit ->
  config

type t

(** Bind, listen, and spawn the acceptor, workers and watchdog. Raises
    [Invalid_argument] on an empty store list; socket errors propagate
    as [Unix.Unix_error]. *)
val start : config -> t

(** The bound port (useful with [port = 0]). *)
val port : t -> int

(** Graceful drain (idempotent): stop admitting, finish — or after
    [grace_s] (default 5s) budget-cancel — in-flight work, flush every
    admitted response, close sockets, join every thread. *)
val stop : ?grace_s:float -> t -> unit

(** The STATS counters, as the wire reports them. *)
val stats : t -> (string * string) list
