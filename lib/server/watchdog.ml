(* The overload watchdog — a pure hysteresis machine over pool-contention
   deltas (see the interface for the full story). Kept free of threads
   and clocks on purpose: the server owns the sampling cadence, tests
   drive it with synthetic deltas, and the transition logic stays
   exhaustively checkable. *)

type state = Normal | Degraded

type t = {
  threshold : int;      (* a tick is "hot" when delta >= threshold *)
  degrade_after : int;  (* consecutive hot ticks before degrading *)
  recover_after : int;  (* consecutive calm ticks before recovering *)
  mutable st : state;
  mutable streak : int; (* consecutive ticks agreeing with a flip *)
  mutable degradations : int;
}

let create ?(threshold = 4) ?(degrade_after = 3) ?(recover_after = 5) () =
  if threshold <= 0 || degrade_after <= 0 || recover_after <= 0 then
    invalid_arg "Watchdog.create: parameters must be positive";
  { threshold;
    degrade_after;
    recover_after;
    st = Normal;
    streak = 0;
    degradations = 0 }

let observe t delta =
  let hot = delta >= t.threshold in
  (match t.st with
   | Normal ->
     if hot then begin
       t.streak <- t.streak + 1;
       if t.streak >= t.degrade_after then begin
         t.st <- Degraded;
         t.streak <- 0;
         t.degradations <- t.degradations + 1
       end
     end
     else t.streak <- 0
   | Degraded ->
     if hot then t.streak <- 0
     else begin
       t.streak <- t.streak + 1;
       if t.streak >= t.recover_after then begin
         t.st <- Normal;
         t.streak <- 0
       end
     end);
  t.st

let state t = t.st
let degradations t = t.degradations
