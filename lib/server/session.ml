(* Sessions and the shared-store registry — the engine-side substrate of
   the query server, independent of any wire protocol.

   The concurrency story, end to end:

   - Shared stores live in a registry; each carries a reader-writer lock.
     Queries that cannot construct nodes (per Engine.constructs_nodes on
     the prepared plan) evaluate under the read side and run concurrently;
     queries that may append fragments — and all interpreter-backend
     runs, conservatively — take the write side. The pools and the
     store-level metadata carry their own mutexes (see Doc_store), so the
     rwlock's sole job is keeping whole-query fragment scans from racing
     a concurrent fragment append.

   - Budgets: every request arms a fresh guard from the client's wishes
     clamped under the server ceiling (Budget.clamp) plus a per-request
     cancellation switch. The switch is registered as the session's
     in-flight handle so a disconnect observed by another thread can trip
     it (cancel_inflight); the next budget check inside evaluation raises
     Resource_error and the worker unwinds normally.

   - Prepared statements are name -> query-text bindings; compilation
     lives in the server-wide plan cache, keyed by (normalized text,
     options fingerprint), so exec shares the compile with plain queries
     of the same text and two sessions preparing the same statement
     compile once. *)

module Budget = Basis.Budget
module Rwlock = Basis.Rwlock

(* ------------------------------------------------------------ registry *)

module Registry = struct
  type entry = { store : Xmldb.Doc_store.t; lock : Rwlock.t }

  type t = {
    mu : Mutex.t;
    tbl : (string, entry) Hashtbl.t;
    mutable order : string list;  (* registration order, reversed *)
  }

  let create () =
    { mu = Mutex.create (); tbl = Hashtbl.create 8; order = [] }

  let[@inline] locked t f =
    Mutex.lock t.mu;
    match f () with
    | v -> Mutex.unlock t.mu; v
    | exception e -> Mutex.unlock t.mu; raise e

  let add t ~name store =
    locked t (fun () ->
      if not (Hashtbl.mem t.tbl name) then t.order <- name :: t.order;
      Hashtbl.replace t.tbl name { store; lock = Rwlock.create () })

  let find t name = locked t (fun () -> Hashtbl.find_opt t.tbl name)

  let mem t name = locked t (fun () -> Hashtbl.mem t.tbl name)

  let names t = locked t (fun () -> List.rev t.order)
end

(* ------------------------------------------------------------- session *)

type t = {
  registry : Registry.t;
  cache : Engine.cache option;
  ceiling : Budget.spec;
  opts : Engine.opts;
  mu : Mutex.t;  (* guards current / private_store / prepared / inflight *)
  mutable current : [ `Shared of string | `Private ];
  mutable private_store : Registry.entry option;  (* created on first use *)
  prepared : (string, string) Hashtbl.t;          (* name -> query text *)
  mutable inflight : Budget.cancel list;
      (* switches of requests currently evaluating: a client may have
         several in flight (per-client cap > 1), and a disconnect must
         cancel them all *)
}

let[@inline] locked t f =
  Mutex.lock t.mu;
  match f () with
  | v -> Mutex.unlock t.mu; v
  | exception e -> Mutex.unlock t.mu; raise e

let create ?cache ?(ceiling = Budget.unlimited)
    ?(opts = Engine.default_opts) ~registry ~store () =
  if not (Registry.mem registry store) then
    Error (Printf.sprintf "unknown store %S" store)
  else
    Ok
      { registry;
        cache;
        ceiling;
        opts;
        mu = Mutex.create ();
        current = `Shared store;
        private_store = None;
        prepared = Hashtbl.create 8;
        inflight = [] }

let use t sel =
  match sel with
  | `Private -> locked t (fun () -> t.current <- `Private); Ok ()
  | `Shared name ->
    if Registry.mem t.registry name then begin
      locked t (fun () -> t.current <- `Shared name);
      Ok ()
    end
    else Error (Printf.sprintf "unknown store %S" name)

let current_store t =
  locked t (fun () ->
    match t.current with `Private -> "session" | `Shared name -> name)

let private_entry t =
  locked t (fun () ->
    match t.private_store with
    | Some e -> e
    | None ->
      let e =
        { Registry.store = Xmldb.Doc_store.create ();
          lock = Rwlock.create () }
      in
      t.private_store <- Some e;
      e)

(* The session's current store entry. A shared store deleted between
   [use] and here cannot happen — the registry only grows. *)
let current_entry t =
  match locked t (fun () -> t.current) with
  | `Private -> private_entry t
  | `Shared name ->
    (match Registry.find t.registry name with
     | Some e -> e
     | None -> Basis.Err.internal "store %S vanished from the registry" name)

let cancel_inflight t =
  List.iter Budget.cancel (locked t (fun () -> t.inflight))

(* Arm the request: a fresh cancel switch registered as an in-flight
   handle, and the client's wishes clamped under the server ceiling. The
   switch is armed before evaluation starts — a disconnect racing request
   start either sees it in [inflight] and trips it, or the request had
   not begun and simply never runs. *)
let with_request ?timeout_s t f =
  let switch = Budget.cancel_switch () in
  let spec =
    Budget.clamp ~ceiling:t.ceiling
      (Budget.limits ?timeout_s ~cancel:switch ())
  in
  locked t (fun () -> t.inflight <- switch :: t.inflight);
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () ->
        t.inflight <- List.filter (fun s -> s != switch) t.inflight))
    (fun () -> f spec)

type reply = {
  items : string list;
  serialized : string;
  n : int;
  degraded : string option;
}

(* Per-item serialization, the form differential tooling multiset-compares
   (Xdm.serialize joins nodes without separators, which is ambiguous). *)
let reply_of store (r : Engine.result) =
  { items =
      List.map
        (function
          | Algebra.Value.Node n -> Xmldb.Serialize.node_to_string store n
          | v -> Algebra.Value.to_string v)
        r.Engine.items;
    serialized = r.Engine.serialized;
    n = List.length r.Engine.items;
    degraded = r.Engine.degraded }

let classified f =
  match f () with
  | v -> v
  | exception e ->
    (match Engine.classify_error e with
     | Some err -> Error err
     | None -> raise e)

let query ?timeout_s ?jobs t text =
  let entry = current_entry t in
  let store = entry.Registry.store in
  with_request ?timeout_s t (fun spec ->
    let opts =
      { t.opts with
        Engine.budget = Some spec;
        jobs = Option.value ~default:t.opts.Engine.jobs jobs }
    in
    classified (fun () ->
      (* Classification compiles through the shared cache, so the lock is
         only held for execution — the run below hits the same entry. *)
      let writes = Engine.constructs_nodes ?cache:t.cache ~opts store text in
      let section = if writes then Rwlock.with_write else Rwlock.with_read in
      section entry.Registry.lock (fun () ->
        Result.map (reply_of store)
          (Engine.run_result ?cache:t.cache ~opts store text))))

let prepare t ~name text =
  let entry = current_entry t in
  classified (fun () ->
    (* Compile eagerly (populating the shared cache) so static errors
       surface at prepare time, not first exec. *)
    ignore
      (Engine.constructs_nodes ?cache:t.cache ~opts:t.opts
         entry.Registry.store text);
    locked t (fun () -> Hashtbl.replace t.prepared name text);
    Ok ())

let exec ?timeout_s ?jobs t name =
  match locked t (fun () -> Hashtbl.find_opt t.prepared name) with
  | None ->
    Error
      { Engine.kind = Basis.Err.Dynamic;
        message = Printf.sprintf "unknown prepared statement %S" name }
  | Some text -> query ?timeout_s ?jobs t text

(* Debug work simulator: occupy the calling worker for [ms], polling the
   clamped budget guard — the deterministic stand-in for a slow query in
   shedding/cancellation tests. check_interrupted (not check) keeps the
   poll loop out of op accounting. *)
let sleep ?timeout_s t ~ms =
  with_request ?timeout_s t (fun spec ->
    classified (fun () ->
      let guard = Budget.start spec in
      let until = Basis.Clock.now () +. (float_of_int ms /. 1000.) in
      let rec wait () =
        Budget.check_interrupted guard;
        if Basis.Clock.now () < until then begin
          Thread.delay 0.002;
          wait ()
        end
      in
      wait ();
      Ok ()))

let load ?timeout_s t ~uri xml =
  let entry = private_entry t in
  with_request ?timeout_s t (fun spec ->
    classified (fun () ->
      let guard = Budget.start spec in
      Rwlock.with_write entry.Registry.lock (fun () ->
        ignore
          (Xmldb.Xml_parser.load_document ~guard entry.Registry.store
             ~uri xml));
      Ok ()))
