(** The overload watchdog: a pure state machine that decides when to
    degrade intra-query parallelism to serial execution.

    The domain pool serves one morsel-parallel query at a time; every
    concurrent submission degrades itself to inline serial execution and
    bumps the pool's {!Basis.Pool.contended} counter. Under light load
    that counter barely moves; under sustained concurrency it climbs
    every tick. The server samples the counter periodically and feeds
    the per-tick delta to {!observe}:

    - [degrade_after] consecutive ticks with [delta >= threshold] switch
      the state to [Degraded] — the server then runs queries with
      [jobs = 1], so no query pays the fan-out cost only to lose the
      pool lottery;
    - [recover_after] consecutive calm ticks ([delta < threshold])
      switch back to [Normal].

    Pure and synchronous: no threads, no clocks — the caller owns the
    sampling cadence, and tests drive it with synthetic deltas. *)

type state = Normal | Degraded

type t

(** Defaults: [threshold = 4], [degrade_after = 3], [recover_after = 5].
    All must be positive. *)
val create :
  ?threshold:int -> ?degrade_after:int -> ?recover_after:int -> unit -> t

(** Feed one sampling tick's contention delta; returns the state after
    the tick. *)
val observe : t -> int -> state

val state : t -> state

(** How many [Normal -> Degraded] transitions have happened. *)
val degradations : t -> int
