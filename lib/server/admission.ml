(* The bounded admission queue (see the interface). A plain
   mutex+condition MPMC queue; the only subtlety is the drain contract:
   draining refuses new work immediately but lets workers finish what was
   already admitted, so [take] keeps returning jobs until the queue is
   empty and only then reports exhaustion. *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  capacity : int;
  mutable draining : bool;
  mutable admitted : int;
  mutable shed_full : int;
  mutable shed_draining : int;
}

type stats = {
  admitted : int;
  shed_full : int;
  shed_draining : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Admission.create: capacity must be > 0";
  { mu = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    capacity;
    draining = false;
    admitted = 0;
    shed_full = 0;
    shed_draining = 0 }

let[@inline] locked t f =
  Mutex.lock t.mu;
  match f () with
  | v -> Mutex.unlock t.mu; v
  | exception e -> Mutex.unlock t.mu; raise e

let submit t job =
  locked t (fun () ->
    if t.draining then begin
      t.shed_draining <- t.shed_draining + 1;
      `Draining
    end
    else if Queue.length t.q >= t.capacity then begin
      t.shed_full <- t.shed_full + 1;
      `Queue_full
    end
    else begin
      Queue.push job t.q;
      t.admitted <- t.admitted + 1;
      Condition.signal t.nonempty;
      `Admitted
    end)

let take t =
  locked t (fun () ->
    let rec wait () =
      if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
      else if t.draining then None
      else begin
        Condition.wait t.nonempty t.mu;
        wait ()
      end
    in
    wait ())

let drain t =
  locked t (fun () ->
    t.draining <- true;
    Condition.broadcast t.nonempty)

let draining t = locked t (fun () -> t.draining)

let depth t = locked t (fun () -> Queue.length t.q)

let stats t =
  locked t (fun () ->
    { admitted = t.admitted;
      shed_full = t.shed_full;
      shed_draining = t.shed_draining })
