(* The wire grammar of the query server (see the interface for the
   request/response survey). Pure string processing: the server loop and
   the clients (bench, fuzz loopback, tests) share this module, so a
   framing bug cannot hide in one side's private copy. *)

(* -------------------------------------------------------------- escaping *)

let needs_escape ~item s =
  let hit = ref false in
  String.iter
    (fun c ->
       match c with
       | '\\' | '\n' | '\r' -> hit := true
       | ' ' when item -> hit := true
       | _ -> ())
    s;
  !hit

let escape_gen ~item s =
  if not (needs_escape ~item s) then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
         match c with
         | '\\' -> Buffer.add_string b "\\\\"
         | '\n' -> Buffer.add_string b "\\n"
         | '\r' -> Buffer.add_string b "\\r"
         | ' ' when item -> Buffer.add_string b "\\s"
         | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let escape s = escape_gen ~item:false s
let escape_item s = escape_gen ~item:true s

(* Unescaping is shared: [\s] decodes to a space whether or not the field
   was space-escaped on the way out — a non-item field never contains a
   bare backslash followed by 's' unless it went through [escape], which
   would have doubled the backslash. Unknown escapes decode to the
   escaped character itself (lenient: framing only cares about \n/\r). *)
let unescape s =
  if not (String.contains s '\\') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '\\' && !i + 1 < n then begin
         (match s.[!i + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 's' -> Buffer.add_char b ' '
          | c -> Buffer.add_char b c);
         i := !i + 2
       end
       else begin
         Buffer.add_char b s.[!i];
         incr i
       end)
    done;
    Buffer.contents b
  end

let unescape_item = unescape

(* -------------------------------------------------------------- requests *)

type request =
  | Query of { itemized : bool; timeout_s : float option; text : string }
  | Prepare of { name : string; text : string }
  | Exec of { itemized : bool; timeout_s : float option; name : string }
  | Load of { timeout_s : float option; uri : string; xml : string }
  | Use of string
  | Stats
  | Ping
  | Quit
  | Sleep of { timeout_s : float option; ms : int }

(* Split off the first space-delimited word; the rest (possibly empty)
   keeps its internal spaces — last fields carry raw escaped payloads. *)
let cut line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i,
     String.sub line (i + 1) (String.length line - i - 1))

(* An optional leading [t=<ms>] field: the client's deadline wish. *)
let parse_deadline rest =
  let word, tail = cut rest in
  if String.length word > 2 && String.sub word 0 2 = "t=" then
    match
      int_of_string_opt (String.sub word 2 (String.length word - 2))
    with
    | Some ms when ms >= 0 -> Ok (Some (float_of_int ms /. 1000.), tail)
    | _ -> Error (Printf.sprintf "malformed deadline field %S" word)
  else Ok (None, rest)

let parse_request line =
  let cmd, rest = cut line in
  let with_deadline k =
    Result.bind (parse_deadline rest) (fun (timeout_s, tail) ->
        k timeout_s tail)
  in
  let nonempty what s k =
    if s = "" then Error (Printf.sprintf "%s: missing %s" cmd what)
    else k s
  in
  match cmd with
  | "Q" | "QI" ->
    with_deadline (fun timeout_s tail ->
        nonempty "query text" tail (fun text ->
            Ok
              (Query
                 { itemized = cmd = "QI";
                   timeout_s;
                   text = unescape text })))
  | "P" ->
    let name, text = cut rest in
    nonempty "statement name" name (fun name ->
        nonempty "query text" text (fun text ->
            Ok (Prepare { name; text = unescape text })))
  | "E" | "EI" ->
    with_deadline (fun timeout_s tail ->
        nonempty "statement name" tail (fun name ->
            Ok (Exec { itemized = cmd = "EI"; timeout_s; name })))
  | "L" ->
    with_deadline (fun timeout_s tail ->
        let uri, xml = cut tail in
        nonempty "document uri" uri (fun uri ->
            nonempty "document text" xml (fun xml ->
                Ok (Load { timeout_s; uri; xml = unescape xml }))))
  | "U" -> nonempty "store name" rest (fun s -> Ok (Use s))
  | "STATS" -> Ok Stats
  | "PING" -> Ok Ping
  | "QUIT" -> Ok Quit
  | "SLEEP" ->
    with_deadline (fun timeout_s tail ->
        match int_of_string_opt tail with
        | Some ms when ms >= 0 -> Ok (Sleep { timeout_s; ms })
        | _ -> Error "SLEEP: expected a millisecond count")
  | "" -> Error "empty request"
  | other -> Error (Printf.sprintf "unknown request %S" other)

let render_deadline = function
  | None -> ""
  | Some s ->
    Printf.sprintf "t=%d " (int_of_float (Float.ceil (s *. 1000.)))

let render_request = function
  | Query { itemized; timeout_s; text } ->
    Printf.sprintf "%s %s%s"
      (if itemized then "QI" else "Q")
      (render_deadline timeout_s) (escape text)
  | Prepare { name; text } -> Printf.sprintf "P %s %s" name (escape text)
  | Exec { itemized; timeout_s; name } ->
    Printf.sprintf "%s %s%s"
      (if itemized then "EI" else "E")
      (render_deadline timeout_s) name
  | Load { timeout_s; uri; xml } ->
    Printf.sprintf "L %s%s %s" (render_deadline timeout_s) uri (escape xml)
  | Use s -> "U " ^ s
  | Stats -> "STATS"
  | Ping -> "PING"
  | Quit -> "QUIT"
  | Sleep { timeout_s; ms } ->
    Printf.sprintf "SLEEP %s%d" (render_deadline timeout_s) ms

(* ------------------------------------------------------------- responses *)

let ok_payload ~n payload = Printf.sprintf "OK %d %s" n (escape payload)

let ok_items items =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "OK %d" (List.length items));
  List.iter
    (fun it ->
       Buffer.add_char b ' ';
       Buffer.add_string b (escape_item it))
    items;
  Buffer.contents b

let ok_unit = "OK 0"

let err kind message =
  Printf.sprintf "ERR %s %d %s" (Basis.Err.kind_label kind)
    (Basis.Err.exit_code kind) (escape message)

let pong = "PONG"
let bye = "BYE"

type response =
  | Resp_ok of int * string
  | Resp_err of { class_ : string; code : int; message : string }
  | Resp_pong
  | Resp_bye

let parse_response line =
  let cmd, rest = cut line in
  match cmd with
  | "OK" ->
    let n, fields = cut rest in
    (match int_of_string_opt n with
     | Some n when n >= 0 -> Ok (Resp_ok (n, fields))
     | _ -> Error (Printf.sprintf "malformed OK count %S" n))
  | "ERR" ->
    let class_, rest = cut rest in
    let code, message = cut rest in
    (match int_of_string_opt code with
     | Some code ->
       Ok (Resp_err { class_; code; message = unescape message })
     | None -> Error (Printf.sprintf "malformed ERR code %S" code))
  | "PONG" -> Ok Resp_pong
  | "BYE" -> Ok Resp_bye
  | other -> Error (Printf.sprintf "unknown response %S" other)

let payload_of fields = unescape fields

let items_of ~n fields =
  if n = 0 then []
  else List.map unescape_item (String.split_on_char ' ' fields)
