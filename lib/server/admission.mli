(** The bounded admission queue between connection readers and the worker
    pool — the server's load-shedding point.

    Admission is explicit and immediate: {!submit} either enqueues or
    refuses right now ([`Queue_full] / [`Draining]); nothing ever blocks
    a connection reader, so an overloaded server answers every request
    promptly — with work or with a shed error — instead of letting the
    queue (and client-perceived latency) grow without bound.

    Draining ({!drain}) closes admission but keeps the queue's contents:
    workers finish everything already admitted ({!take} only returns
    [None] once draining {e and} empty), which is the graceful-shutdown
    contract — no admitted request loses its response. *)

type 'a t

val create : capacity:int -> 'a t

val submit : 'a t -> 'a -> [ `Admitted | `Queue_full | `Draining ]

(** Block until a job is available; [None] once the queue is draining and
    empty (the worker's exit signal). *)
val take : 'a t -> 'a option

(** Stop admitting; wake every blocked {!take}. Idempotent. *)
val drain : 'a t -> unit

val draining : 'a t -> bool

(** Current queue depth (admitted, not yet taken). *)
val depth : 'a t -> int

type stats = {
  admitted : int;
  shed_full : int;
  shed_draining : int;
}

val stats : 'a t -> stats
