#!/usr/bin/env bash
# End-to-end smoke test of bin/serve, as CI runs it: boot the server,
# drive concurrent healthy clients, force the admission queue to shed
# with an overload burst, then SIGTERM with work still in flight and
# require a graceful drain — every admitted response delivered, final
# stats flushed, exit status 0, process actually gone.
#
# Usage: scripts/serve_smoke.sh [path/to/serve.exe]
# (default: _build/default/bin/serve.exe, i.e. run after `dune build`)

set -euo pipefail

SERVE=${1:-_build/default/bin/serve.exe}
PORT=${PORT:-7077}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"; kill "$SERVE_PID" 2>/dev/null || true' EXIT

echo '<a><b/><b/></a>' > "$WORK/t.xml"

# Tiny capacity on purpose: two workers + a two-slot queue hold exactly
# the four healthy clients below, and the eight-request burst after them
# must shed.
"$SERVE" -d "t.xml=$WORK/t.xml" --port "$PORT" --debug \
  --workers 2 --queue-cap 2 --client-cap 8 --grace 10 \
  > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVE_PID=$!

for _ in $(seq 1 100); do
  grep -q "listening on" "$WORK/serve.out" 2>/dev/null && break
  sleep 0.1
done
grep "listening on" "$WORK/serve.out"

echo "== healthy concurrent clients =="
client_pids=()
for i in 1 2 3 4; do
  (
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf 'Q count(doc("t.xml")//b)\n' >&3
    read -r -u 3 resp
    resp=${resp%$'\r'}
    if [ "$resp" != "OK 1 2" ]; then
      echo "client $i: unexpected response: $resp" >&2
      exit 1
    fi
    printf 'QUIT\n' >&3
  ) &
  client_pids+=($!)
done
for pid in "${client_pids[@]}"; do wait "$pid"; done
echo "4 clients served"

echo "== forced-shed overload burst =="
# Pipeline more work than workers + queue can hold: the SLEEPs pin both
# workers and the queue slots, so trailing requests must be refused
# immediately with the resource error class.
exec 4<>"/dev/tcp/127.0.0.1/$PORT"
printf 'SLEEP 400\nSLEEP 400\nSLEEP 400\nQ 1\nQ 2\nQ 3\nQ 4\nQ 5\n' >&4
burst=$(timeout 15 head -n 8 <&4)
echo "$burst"
shed=$(echo "$burst" | grep -c "ERR resource" || true)
ok=$(echo "$burst" | grep -c "^OK" || true)
if [ "$shed" -lt 1 ]; then
  echo "overload burst did not shed" >&2
  exit 1
fi
if [ "$ok" -lt 2 ]; then
  echo "admitted work was lost under overload" >&2
  exit 1
fi
echo "shed=$shed ok=$ok"
printf 'QUIT\n' >&4 || true

echo "== graceful SIGTERM drain with work in flight =="
exec 5<>"/dev/tcp/127.0.0.1/$PORT"
printf 'SLEEP 300\nQ 40 + 2\n' >&5
sleep 0.2
kill -TERM "$SERVE_PID"
drain=$(timeout 15 cat <&5 || true)
echo "$drain"
echo "$drain" | grep -q "^OK 0" || { echo "in-flight response lost" >&2; exit 1; }
echo "$drain" | grep -q "^OK 1 42" || { echo "queued response lost" >&2; exit 1; }

# the process must exit 0 of its own accord — a clean drain joins every
# thread and domain, so a hang here is a leak
status=0
wait "$SERVE_PID" || status=$?
if [ "$status" -ne 0 ]; then
  echo "serve exited with status $status" >&2
  exit 1
fi
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "serve process still alive after drain" >&2
  exit 1
fi
grep -q "draining" "$WORK/serve.err" || { echo "no drain notice" >&2; exit 1; }
grep -q "final stats" "$WORK/serve.err" || { echo "no final stats" >&2; exit 1; }
grep "final stats" "$WORK/serve.err"

echo "serve smoke: PASS"
