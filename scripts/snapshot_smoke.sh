#!/usr/bin/env bash
# End-to-end smoke test of the snapshot store path, as CI runs it:
# build a store from a generated XMark document plus a hand-written one,
# save a snapshot, load it back, and require query results identical to
# evaluating directly against the source documents. Then the failure
# side: truncated, bit-flipped and version-skewed snapshots must all be
# refused with a clean "corrupt snapshot" dynamic error (exit 1, no
# crash), and two saves of the same store must be byte-identical.
#
# Usage: scripts/snapshot_smoke.sh [path/to/xrquy.exe]
# (default: _build/default/bin/xrquy.exe, i.e. run after `dune build`)

set -euo pipefail

XRQUY=${1:-_build/default/bin/xrquy.exe}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo '<a><b><c/><d/></b><c/><e k="1">x<f/>y</e></a>' > "$WORK/t.xml"
"$XRQUY" gen --scale 0.003 -o "$WORK/auction.xml"

echo "== save =="
"$XRQUY" store save -d "t.xml=$WORK/t.xml" -d "auction.xml=$WORK/auction.xml" \
  -o "$WORK/store.xrqs"

echo "== load lists both documents =="
"$XRQUY" store load "$WORK/store.xrqs" | sort > "$WORK/docs.txt"
printf 'auction.xml\nt.xml\n' | diff - "$WORK/docs.txt"

echo "== snapshot results == direct results =="
queries=(
  'count(doc("auction.xml")//item)'
  'count(doc("t.xml")//c)'
  'for $p in doc("auction.xml")/site/people/person[position() <= 3] return $p/name/text()'
)
for q in "${queries[@]}"; do
  "$XRQUY" run -d "t.xml=$WORK/t.xml" -d "auction.xml=$WORK/auction.xml" \
    "$q" 2>/dev/null > "$WORK/direct.out"
  "$XRQUY" store load "$WORK/store.xrqs" -e "$q" 2>/dev/null > "$WORK/snap.out"
  diff "$WORK/direct.out" "$WORK/snap.out"
  echo "  ok: $q"
done

echo "== deterministic save =="
"$XRQUY" store save -d "t.xml=$WORK/t.xml" -d "auction.xml=$WORK/auction.xml" \
  -o "$WORK/store2.xrqs" 2>/dev/null
cmp "$WORK/store.xrqs" "$WORK/store2.xrqs"

expect_corrupt () {
  # $1: label, $2: file — load must exit 1 with a "corrupt snapshot" error
  local label=$1 file=$2 status=0
  "$XRQUY" store load "$file" > "$WORK/corrupt.out" 2> "$WORK/corrupt.err" \
    || status=$?
  if [ "$status" -ne 1 ]; then
    echo "FAIL: $label: expected exit 1, got $status"; exit 1
  fi
  grep -q "corrupt snapshot" "$WORK/corrupt.err" \
    || { echo "FAIL: $label: no 'corrupt snapshot' in stderr:"; \
         cat "$WORK/corrupt.err"; exit 1; }
  echo "  ok: $label"
}

echo "== corruption is refused cleanly =="
size=$(wc -c < "$WORK/store.xrqs")

head -c $((size / 2)) "$WORK/store.xrqs" > "$WORK/trunc.xrqs"
expect_corrupt "truncated to half" "$WORK/trunc.xrqs"

head -c 4 "$WORK/store.xrqs" > "$WORK/tiny.xrqs"
expect_corrupt "truncated to 4 bytes" "$WORK/tiny.xrqs"

cp "$WORK/store.xrqs" "$WORK/flip.xrqs"
printf '\xff' | dd of="$WORK/flip.xrqs" bs=1 seek=$((size * 2 / 3)) \
  conv=notrunc status=none
expect_corrupt "bit flip in a column payload" "$WORK/flip.xrqs"

cp "$WORK/store.xrqs" "$WORK/ver.xrqs"
printf '\x09' | dd of="$WORK/ver.xrqs" bs=1 seek=8 conv=notrunc status=none
expect_corrupt "format version skew" "$WORK/ver.xrqs"

cat "$WORK/store.xrqs" <(printf 'junk') > "$WORK/tail.xrqs"
expect_corrupt "trailing garbage" "$WORK/tail.xrqs"

echo "snapshot smoke: all checks passed"
