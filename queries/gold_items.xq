(: Items whose description mentions gold (XMark Q14's predicate), grouped
   by region. :)
declare ordering unordered;
let $a := doc("auction.xml")
for $r in $a/site/regions/*
let $hits := for $i in $r/item
             where contains(string(exactly-one($i/description)), "gold")
             return $i/name/text()
return <region name="{ name($r) }" gold-items="{ count($hits) }"/>
