(: The Links "xpath1" pattern — a leaf test phrased as a nested
   emptiness check over a value join: persons who never bought a closed
   auction. Loop-lifting compiles [where empty(for ...)] into a
   count-then-filter presence scaffold (attach false over the inner
   query, attach true over the iterations it misses, union, filter);
   the join-graph isolation rules collapse the whole scaffold into a
   single hash anti-join filtering the person loop. :)
let $auction := doc("auction.xml")
return
  for $p in $auction/site/people/person
  where empty(for $t in $auction/site/closed_auctions/closed_auction
              where $t/buyer/@person = $p/@id
              return $t)
  return <quiet>{ $p/name/text() }</quiet>
