(: The paper's Section 1 example: under unordered { }, the node set union
   '|' is traded for low-cost sequence concatenation ',' — all c elements
   may precede the d elements. :)
let $t := doc("t.xml")
return unordered { $t//(c|d) }
