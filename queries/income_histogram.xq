(: Income brackets over the auction site's population (Q20-flavoured). :)
declare ordering unordered;
let $people := doc("auction.xml")/site/people/person
return
  <histogram total="{ count($people) }">
    <preferred>{ count($people/profile[@income >= 100000]) }</preferred>
    <standard>{ count($people/profile[@income < 100000 and @income >= 30000]) }</standard>
    <challenge>{ count($people/profile[@income < 30000]) }</challenge>
    <unknown>{ count(for $p in $people where empty($p/profile/@income) return $p) }</unknown>
  </histogram>
