(: Quantified existential: open auctions where some bidder bid at least
   twice the initial price. [some ... satisfies] compiles to a
   count-then-filter scaffold whose hit test is a distinct-projected
   equijoin; jg-semijoin-synthesis turns it into a hash semijoin, and
   the companion prunes drop the scaffold around it. :)
let $auction := doc("auction.xml")
return
  for $a in $auction/site/open_auctions/open_auction
  where some $b in $a/bidder/increase
        satisfies $b >= 2 * zero-or-one($a/initial)
  return <hot>{ $a/reserve/text() }</hot>
