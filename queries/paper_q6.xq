(: XMark Q6, the query of Figures 6 and 9. Run it with --mode unordered
   and watch the plan lose every rownum operator. :)
let $auction := doc("auction.xml") return
for $b in $auction//site/regions return count($b//item)
