(: Existential value join (XMark Q8's shape, folded into a predicate):
   persons who bought at least one closed auction. Loop-lifting compiles
   the general comparison into a sigma-filtered cross product; the
   logical rewriter turns it into a theta join. :)
let $auction := doc("auction.xml")
return count($auction/site/people/person[@id =
    $auction/site/closed_auctions/closed_auction/buyer/@person])
