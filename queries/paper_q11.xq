(: XMark Q11, the query of Table 2: a value join between person incomes
   and auction opening bids, whose result order is unobservable under
   fn:count. :)
let $auction := doc("auction.xml") return
for $p in $auction/site/people/person
let $l := for $i in $auction/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i
          return $i
return <items name="{ $p/name/text() }">{ count($l) }</items>
