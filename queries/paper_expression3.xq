(: Expression (3): sequence order establishes document order in
   constructed fragments — evaluates to (true, false). :)
let $t := doc("t.xml")
let $b := $t//b, $d := $t//d
let $e := <e>{ $d, $b }</e>
return (exactly-one($b) << exactly-one($d),
        exactly-one($e/b) << exactly-one($e/d))
