(: Sellers ranked by number of open auctions — order by makes the binding
   order irrelevant (context (f) of the paper), so the compiler uses
   BIND# even under ordering mode ordered. :)
let $a := doc("auction.xml")
for $s in distinct-values($a/site/open_auctions/open_auction/seller/@person)
let $n := count($a/site/open_auctions/open_auction[seller/@person = $s])
order by $n descending
return <seller id="{ $s }" auctions="{ $n }"/>
