(* Tests for the relational algebra: value semantics, every operator of the
   Table-1 dialect through the executor, DAG hash-consing/sharing, and
   qcheck properties (rownum denseness, join/cross-select equivalence). *)

open Algebra

let v_int i = Value.Int i
let v_str s = Value.Str s
let v_dbl f = Value.Dbl f
let v_bool b = Value.Bool b

let store () = Xmldb.Doc_store.create ()

let run ?st plan =
  let st = match st with Some s -> s | None -> store () in
  Eval.run st plan

(* Compare a table against expected rows *disregarding row order* (the
   engine promises none): rows are multisets. *)
let check_table msg expected t =
  let to_sorted_strings rows =
    List.sort String.compare
      (List.map
         (fun row ->
            String.concat "|"
              (Array.to_list (Array.map (Format.asprintf "%a" Value.pp) row)))
         rows)
  in
  let actual = List.init (Table.nrows t) (Table.row t) in
  Alcotest.(check (list string)) msg
    (to_sorted_strings expected)
    (to_sorted_strings actual)

let schema_of t = Array.to_list (Table.schema t)

(* ------------------------------------------------------------- values *)

let test_value_arith () =
  Alcotest.(check bool) "int add" true (Value.equal (Value.add (v_int 2) (v_int 3)) (v_int 5));
  Alcotest.(check bool) "mixed add" true
    (Value.equal (Value.add (v_int 2) (v_dbl 0.5)) (v_dbl 2.5));
  Alcotest.(check bool) "untyped mul" true
    (Value.equal (Value.mul (v_str "5000") (v_int 2)) (v_dbl 10000.0));
  Alcotest.(check bool) "int div exact" true
    (Value.equal (Value.div (v_int 6) (v_int 3)) (v_int 2));
  Alcotest.(check bool) "int div inexact" true
    (Value.equal (Value.div (v_int 1) (v_int 2)) (v_dbl 0.5));
  (match Value.div (v_int 1) (v_int 0) with
   | exception Basis.Err.Dynamic_error _ -> ()
   | _ -> Alcotest.fail "div by zero must raise");
  Alcotest.(check bool) "idiv" true
    (Value.equal (Value.idiv (v_int 7) (v_int 2)) (v_int 3));
  Alcotest.(check bool) "mod" true
    (Value.equal (Value.modulo (v_int 7) (v_int 2)) (v_int 1))

let test_value_compare () =
  Alcotest.(check bool) "untyped vs numeric" true (Value.cmp_gt (v_str "6000") (v_int 5000));
  Alcotest.(check bool) "string compare" true (Value.cmp_lt (v_str "abc") (v_str "abd"));
  Alcotest.(check bool) "NaN eq false" false (Value.cmp_eq (v_dbl Float.nan) (v_dbl Float.nan));
  Alcotest.(check bool) "NaN ne true" true (Value.cmp_ne (v_dbl Float.nan) (v_dbl 1.0));
  Alcotest.(check bool) "NaN le false" false (Value.cmp_le (v_dbl Float.nan) (v_dbl 1.0));
  Alcotest.(check bool) "int=dbl" true (Value.cmp_eq (v_int 1) (v_dbl 1.0));
  (match Value.cmp_eq (v_bool true) (v_int 1) with
   | exception Basis.Err.Dynamic_error _ -> ()
   | _ -> Alcotest.fail "bool vs int must raise")

let test_value_serialize () =
  Alcotest.(check string) "int" "42" (Value.to_string (v_int 42));
  Alcotest.(check string) "double integral" "5" (Value.to_string (v_dbl 5.0));
  Alcotest.(check string) "double frac" "5.5" (Value.to_string (v_dbl 5.5));
  Alcotest.(check string) "NaN" "NaN" (Value.to_string (v_dbl Float.nan));
  Alcotest.(check string) "INF" "INF" (Value.to_string (v_dbl infinity));
  Alcotest.(check string) "bool" "true" (Value.to_string (v_bool true))

(* -------------------------------------------------------- basic operators *)

let test_lit_project () =
  let b = Plan.builder () in
  let t =
    Plan.lit b [| "a"; "b" |] [ [| v_int 1; v_str "x" |]; [| v_int 2; v_str "y" |] ]
  in
  let p = Plan.project b t [ ("b2", "b"); ("a", "a"); ("a2", "a") ] in
  let r = run p in
  Alcotest.(check (list string)) "schema" [ "b2"; "a"; "a2" ] (schema_of r);
  check_table "rows" [ [| v_str "x"; v_int 1; v_int 1 |]; [| v_str "y"; v_int 2; v_int 2 |] ] r

let test_select () =
  let b = Plan.builder () in
  let t =
    Plan.lit b [| "a"; "keep" |]
      [ [| v_int 1; v_bool true |]; [| v_int 2; v_bool false |];
        [| v_int 3; v_bool true |] ]
  in
  let r = run (Plan.select b t "keep") in
  check_table "selected" [ [| v_int 1; v_bool true |]; [| v_int 3; v_bool true |] ] r

let test_join () =
  let b = Plan.builder () in
  let l = Plan.lit b [| "iter"; "x" |]
      [ [| v_int 1; v_str "a" |]; [| v_int 2; v_str "b" |]; [| v_int 2; v_str "c" |] ] in
  let r = Plan.lit b [| "bind"; "y" |]
      [ [| v_int 2; v_int 20 |]; [| v_int 3; v_int 30 |]; [| v_int 2; v_int 21 |] ] in
  let j = run (Plan.join b l r "iter" "bind") in
  check_table "equi join"
    [ [| v_int 2; v_str "b"; v_int 2; v_int 20 |];
      [| v_int 2; v_str "b"; v_int 2; v_int 21 |];
      [| v_int 2; v_str "c"; v_int 2; v_int 20 |];
      [| v_int 2; v_str "c"; v_int 2; v_int 21 |] ]
    j

let test_thetajoin_inequality () =
  let b = Plan.builder () in
  let l = Plan.lit b [| "a" |] [ [| v_int 1 |]; [| v_int 5 |]; [| v_int 9 |] ] in
  let r = Plan.lit b [| "b" |] [ [| v_int 2 |]; [| v_int 5 |]; [| v_int 8 |] ] in
  let j = run (Plan.thetajoin b l r "a" Plan.P_lt "b") in
  check_table "a < b"
    [ [| v_int 1; v_int 2 |]; [| v_int 1; v_int 5 |]; [| v_int 1; v_int 8 |];
      [| v_int 5; v_int 8 |] ]
    j;
  let j = run (Plan.thetajoin b l r "a" Plan.P_ge "b") in
  check_table "a >= b"
    [ [| v_int 5; v_int 2 |]; [| v_int 5; v_int 5 |];
      [| v_int 9; v_int 2 |]; [| v_int 9; v_int 5 |]; [| v_int 9; v_int 8 |] ]
    j

let test_thetajoin_untyped () =
  (* untyped (string) values against numerics — the Q11 income join shape *)
  let b = Plan.builder () in
  let l = Plan.lit b [| "income" |] [ [| v_str "6000" |]; [| v_str "100" |] ] in
  let r = Plan.lit b [| "bid" |] [ [| v_dbl 5000.0 |] ] in
  let j = run (Plan.thetajoin b l r "income" Plan.P_gt "bid") in
  check_table "income > bid" [ [| v_str "6000"; v_dbl 5000.0 |] ] j

let test_semijoin_antijoin () =
  let b = Plan.builder () in
  let l = Plan.lit b [| "iter" |] [ [| v_int 1 |]; [| v_int 2 |]; [| v_int 3 |] ] in
  let r = Plan.lit b [| "k" |] [ [| v_int 2 |]; [| v_int 2 |] ] in
  check_table "semijoin" [ [| v_int 2 |] ] (run (Plan.semijoin b l r [ ("iter", "k") ]));
  check_table "antijoin" [ [| v_int 1 |]; [| v_int 3 |] ]
    (run (Plan.antijoin b l r [ ("iter", "k") ]))

let test_cross_union_distinct () =
  let b = Plan.builder () in
  let l = Plan.lit b [| "a" |] [ [| v_int 1 |]; [| v_int 2 |] ] in
  let r = Plan.lit b [| "b" |] [ [| v_str "x" |] ] in
  check_table "cross" [ [| v_int 1; v_str "x" |]; [| v_int 2; v_str "x" |] ]
    (run (Plan.cross b l r));
  let u = Plan.union b l (Plan.project b l [ ("a", "a") ]) in
  check_table "union keeps duplicates"
    [ [| v_int 1 |]; [| v_int 2 |]; [| v_int 1 |]; [| v_int 2 |] ]
    (run u);
  check_table "distinct" [ [| v_int 1 |]; [| v_int 2 |] ]
    (run (Plan.distinct b u))

let test_rownum () =
  let b = Plan.builder () in
  let t = Plan.lit b [| "iter"; "v" |]
      [ [| v_int 2; v_int 30 |]; [| v_int 1; v_int 9 |];
        [| v_int 2; v_int 10 |]; [| v_int 1; v_int 5 |] ] in
  (* global numbering ordered by v *)
  let r = run (Plan.rownum b t "n" [ ("v", Plan.Asc) ] None) in
  check_table "global rownum"
    [ [| v_int 2; v_int 30; v_int 4 |]; [| v_int 1; v_int 9; v_int 2 |];
      [| v_int 2; v_int 10; v_int 3 |]; [| v_int 1; v_int 5; v_int 1 |] ]
    r;
  (* grouped by iter, descending *)
  let r = run (Plan.rownum b t "n" [ ("v", Plan.Desc) ] (Some "iter")) in
  check_table "grouped desc rownum"
    [ [| v_int 2; v_int 30; v_int 1 |]; [| v_int 1; v_int 9; v_int 1 |];
      [| v_int 2; v_int 10; v_int 2 |]; [| v_int 1; v_int 5; v_int 2 |] ]
    r

let test_rowid_attach () =
  let b = Plan.builder () in
  let t = Plan.lit b [| "a" |] [ [| v_str "x" |]; [| v_str "y" |] ] in
  let r = run (Plan.rowid b t "id") in
  check_table "rowid dense" [ [| v_str "x"; v_int 1 |]; [| v_str "y"; v_int 2 |] ] r;
  let r = run (Plan.attach b t "pos" (v_int 1)) in
  check_table "attach" [ [| v_str "x"; v_int 1 |]; [| v_str "y"; v_int 1 |] ] r

let test_fun2 () =
  let b = Plan.builder () in
  let t = Plan.lit b [| "x"; "y" |]
      [ [| v_int 7; v_int 2 |]; [| v_str "3"; v_int 4 |] ] in
  let r = run (Plan.fun2 b t "s" Plan.P_add "x" "y") in
  check_table "add with coercion"
    [ [| v_int 7; v_int 2; v_int 9 |]; [| v_str "3"; v_int 4; v_dbl 7.0 |] ]
    r;
  let r = run (Plan.fun2 b t "c" Plan.P_gt "x" "y") in
  check_table "gt"
    [ [| v_int 7; v_int 2; v_bool true |]; [| v_str "3"; v_int 4; v_bool false |] ]
    r

let test_aggr () =
  let b = Plan.builder () in
  let t = Plan.lit b [| "iter"; "v" |]
      [ [| v_int 1; v_int 4 |]; [| v_int 1; v_int 6 |]; [| v_int 2; v_int 10 |] ] in
  check_table "grouped count"
    [ [| v_int 1; v_int 2 |]; [| v_int 2; v_int 1 |] ]
    (run (Plan.aggr b t "n" Plan.A_count None (Some "iter") None));
  check_table "grouped sum"
    [ [| v_int 1; v_int 10 |]; [| v_int 2; v_int 10 |] ]
    (run (Plan.aggr b t "s" Plan.A_sum (Some "v") (Some "iter") None));
  check_table "global max" [ [| v_int 10 |] ]
    (run (Plan.aggr b t "m" Plan.A_max (Some "v") None None));
  check_table "global min" [ [| v_int 4 |] ]
    (run (Plan.aggr b t "m" Plan.A_min (Some "v") None None));
  check_table "global avg" [ [| v_dbl (20.0 /. 3.0) |] ]
    (run (Plan.aggr b t "m" Plan.A_avg (Some "v") None None));
  (* count over empty input, global: one row of 0 *)
  let empty = Plan.lit b [| "iter"; "v" |] [] in
  check_table "count of empty" [ [| v_int 0 |] ]
    (run (Plan.aggr b empty "n" Plan.A_count None None None));
  (* max over empty: no rows *)
  check_table "max of empty" []
    (run (Plan.aggr b empty "m" Plan.A_max (Some "v") None None))

let test_aggr_ebv () =
  let b = Plan.builder () in
  let t = Plan.lit b [| "iter"; "v" |] [ [| v_int 1; v_bool false |] ] in
  check_table "singleton bool" [ [| v_int 1; v_bool false |] ]
    (run (Plan.aggr b t "e" Plan.A_ebv (Some "v") (Some "iter") None));
  let empty = Plan.lit b [| "iter"; "v" |] [] in
  check_table "ebv of empty (global)" [ [| v_bool false |] ]
    (run (Plan.aggr b empty "e" Plan.A_ebv (Some "v") None None))

let test_aggr_str_join () =
  let b = Plan.builder () in
  let t = Plan.lit b [| "iter"; "pos"; "v" |]
      [ [| v_int 1; v_int 2; v_str "b" |];
        [| v_int 1; v_int 1; v_str "a" |];
        [| v_int 1; v_int 3; v_str "c" |] ] in
  check_table "string-join respects order column"
    [ [| v_int 1; v_str "a-b-c" |] ]
    (run (Plan.aggr b t "s" (Plan.A_str_join "-") (Some "v") (Some "iter") (Some "pos")))

let test_range () =
  let b = Plan.builder () in
  let t = Plan.lit b [| "iter"; "lo"; "hi" |]
      [ [| v_int 1; v_int 2; v_int 4 |]; [| v_int 2; v_int 5; v_int 3 |] ] in
  check_table "range expansion (empty when lo>hi)"
    [ [| v_int 1; v_int 1; v_int 2 |]; [| v_int 1; v_int 2; v_int 3 |];
      [| v_int 1; v_int 3; v_int 4 |] ]
    (run (Plan.range b t "lo" "hi"))

(* ------------------------------------------------------- store operators *)

let test_step_doc () =
  let st = store () in
  let _root = Xmldb.Xml_parser.load_document st ~uri:"t.xml"
      "<a><b><c/><d/></b><c/></a>" in
  let b = Plan.builder () in
  let loop = Plan.lit_loop b in
  let uri = Plan.attach b loop "item" (v_str "t.xml") in
  let d = Plan.doc b uri in
  let site = Plan.step b d Xmldb.Axis.Descendant (Plan.N_name (Xmldb.Qname.make "c")) in
  let r = run ~st site in
  Alcotest.(check int) "two c elements" 2 (Table.nrows r);
  (* doc of unknown uri raises *)
  let bad = Plan.doc b (Plan.attach b loop "item" (v_str "nope.xml")) in
  (match run ~st bad with
   | exception Basis.Err.Dynamic_error _ -> ()
   | _ -> Alcotest.fail "expected dynamic error")

let test_step_dedup_per_iter () =
  let st = store () in
  let root = Xmldb.Xml_parser.load_document st ~uri:"t.xml" "<a><b/><b/></a>" in
  let b = Plan.builder () in
  (* two iterations, both with context = document root: results per iter *)
  let ctx = Plan.lit b [| "iter"; "item" |]
      [ [| v_int 1; Value.Node root |]; [| v_int 2; Value.Node root |];
        [| v_int 1; Value.Node root |] ] in
  let s = Plan.step b ctx Xmldb.Axis.Descendant (Plan.N_name (Xmldb.Qname.make "b")) in
  let r = run ~st s in
  (* duplicate context in iter 1 must not duplicate results *)
  Alcotest.(check int) "2 iters x 2 nodes" 4 (Table.nrows r)

let test_elem_construction () =
  let st = store () in
  let b = Plan.builder () in
  let qn = Plan.lit b [| "iter"; "item" |]
      [ [| v_int 1; Value.Qname_v (Xmldb.Qname.make "e") |];
        [| v_int 2; Value.Qname_v (Xmldb.Qname.make "f") |] ] in
  let content = Plan.lit b [| "iter"; "pos"; "item" |]
      [ [| v_int 1; v_int 2; v_str "world" |];
        [| v_int 1; v_int 1; v_str "hello" |] ] in
  let r = run ~st (Plan.elem b qn content) in
  Alcotest.(check int) "two elements" 2 (Table.nrows r);
  let serialized =
    List.init (Table.nrows r) (fun i ->
        match Table.get r "item" i with
        | Value.Node n -> Xmldb.Serialize.node_to_string st n
        | _ -> "?")
    |> List.sort String.compare
  in
  (* adjacent atomics are joined with a space *)
  Alcotest.(check (list string)) "constructed"
    [ "<e>hello world</e>"; "<f/>" ] serialized

let test_elem_copies_nodes () =
  let st = store () in
  let root = Xmldb.Xml_parser.load_document st ~uri:"t.xml" "<a><b>x</b></a>" in
  let a = Xmldb.Staircase.step st Xmldb.Axis.Child Xmldb.Node_test.Any_node [| root |] in
  let b_node = (Xmldb.Staircase.step st Xmldb.Axis.Child Xmldb.Node_test.Any_node a).(0) in
  let b = Plan.builder () in
  let qn = Plan.lit b [| "iter"; "item" |]
      [ [| v_int 1; Value.Qname_v (Xmldb.Qname.make "wrap") |] ] in
  let content = Plan.lit b [| "iter"; "pos"; "item" |]
      [ [| v_int 1; v_int 1; Value.Node b_node |];
        [| v_int 1; v_int 2; Value.Node b_node |] ] in
  let r = run ~st (Plan.elem b qn content) in
  (match Table.get r "item" 0 with
   | Value.Node n ->
     Alcotest.(check string) "deep copied twice"
       "<wrap><b>x</b><b>x</b></wrap>" (Xmldb.Serialize.node_to_string st n)
   | _ -> Alcotest.fail "expected node")

let test_attr_text_construction () =
  let st = store () in
  let b = Plan.builder () in
  let qn = Plan.lit b [| "iter"; "item" |]
      [ [| v_int 1; Value.Qname_v (Xmldb.Qname.make "pos") |] ] in
  let vals = Plan.lit b [| "iter"; "item" |] [ [| v_int 1; v_int 3 |] ] in
  let r = run ~st (Plan.attr b qn vals) in
  (match Table.get r "item" 0 with
   | Value.Node n ->
     Alcotest.(check string) "attr" "pos=\"3\"" (Xmldb.Serialize.node_to_string st n);
     Alcotest.(check bool) "kind" true
       (Xmldb.Doc_store.kind st n = Xmldb.Node_kind.Attribute)
   | _ -> Alcotest.fail "node expected");
  let txt = Plan.lit b [| "iter"; "item" |] [ [| v_int 1; v_str "hi" |] ] in
  let r = run ~st (Plan.textnode b txt) in
  (match Table.get r "item" 0 with
   | Value.Node n ->
     Alcotest.(check string) "text node" "hi" (Xmldb.Doc_store.string_value st n)
   | _ -> Alcotest.fail "node expected")

(* ------------------------------------------------------------ DAG/sharing *)

let test_hash_consing () =
  let b = Plan.builder () in
  let t = Plan.lit b [| "a" |] [ [| v_int 1 |] ] in
  let p1 = Plan.project b t [ ("a", "a") ] in
  let p2 = Plan.project b t [ ("a", "a") ] in
  Alcotest.(check bool) "structurally equal plans are shared" true (p1 == p2);
  let u = Plan.union b p1 p2 in
  Alcotest.(check int) "count_ops counts shared nodes once" 3 (Plan.count_ops u)

let test_eval_memoizes () =
  (* a shared sub-plan under a union is evaluated once: evaluation of the
     whole DAG with a Rowid over it must produce identical ids on both
     branches *)
  let st = store () in
  let b = Plan.builder () in
  let t = Plan.lit b [| "a" |] [ [| v_int 7 |] ] in
  let withid = Plan.rowid b t "id" in
  let u = Plan.union b withid withid in
  let r = run ~st u in
  Alcotest.(check int) "rows" 2 (Table.nrows r)

let test_plan_pp () =
  let b = Plan.builder () in
  let t = Plan.lit b [| "iter"; "item" |] [] in
  let s = Plan.step b t Xmldb.Axis.Child (Plan.N_name (Xmldb.Qname.make "c")) in
  let r = Plan.rownum b s "pos" [ ("item", Plan.Asc) ] (Some "iter") in
  let txt = Plan_pp.to_tree r in
  Alcotest.(check bool) "mentions rownum" true
    (Astring.String.is_infix ~affix:"%_{pos:" txt);
  Alcotest.(check bool) "mentions step" true
    (Astring.String.is_infix ~affix:"child::c" txt);
  let dot = Plan_pp.to_dot r in
  Alcotest.(check bool) "dot has edges" true
    (Astring.String.is_infix ~affix:"->" dot)

(* ------------------------------------------------------------ properties *)

let gen_small_table =
  let open QCheck2.Gen in
  let* n = int_range 0 30 in
  let* rows =
    list_repeat n
      (let* iter = int_range 1 4 in
       let* v = int_range 0 20 in
       return [| v_int iter; v_int v |])
  in
  return rows

let prop_rownum_dense =
  QCheck2.Test.make ~count:200 ~name:"rownum: dense 1..k per group"
    gen_small_table
    (fun rows ->
       let b = Plan.builder () in
       let t = Plan.lit b [| "iter"; "v" |] rows in
       let r = Eval.run (store ()) (Plan.rownum b t "n" [ ("v", Plan.Asc) ] (Some "iter")) in
       (* per iter group, the n values must be exactly 1..k *)
       let groups = Hashtbl.create 8 in
       for i = 0 to Table.nrows r - 1 do
         let iter = Table.get r "iter" i and n = Table.get r "n" i in
         let l = Option.value ~default:[] (Hashtbl.find_opt groups iter) in
         Hashtbl.replace groups iter (Value.int_value n :: l)
       done;
       Hashtbl.fold
         (fun _ ns acc ->
            acc && List.sort compare ns = List.init (List.length ns) (fun i -> i + 1))
         groups true)

let prop_rowid_unique =
  QCheck2.Test.make ~count:100 ~name:"rowid: unique dense values"
    gen_small_table
    (fun rows ->
       let b = Plan.builder () in
       let t = Plan.lit b [| "iter"; "v" |] rows in
       let r = Eval.run (store ()) (Plan.rowid b t "id") in
       let ids = List.init (Table.nrows r) (fun i -> Value.int_value (Table.get r "id" i)) in
       List.sort compare ids = List.init (List.length ids) (fun i -> i + 1))

let prop_join_cross_select =
  QCheck2.Test.make ~count:100 ~name:"equi-join = select over cross"
    QCheck2.Gen.(tup2 gen_small_table gen_small_table)
    (fun (rows1, rows2) ->
       let b = Plan.builder () in
       let l = Plan.lit b [| "iter"; "v" |] rows1 in
       let r = Plan.lit b [| "iter2"; "w" |] rows2 in
       let join = Plan.join b l r "iter" "iter2" in
       let cross_sel =
         let c = Plan.cross b l r in
         let cmp = Plan.fun2 b c "eq" Plan.P_eq "iter" "iter2" in
         let s = Plan.select b cmp "eq" in
         Plan.project b s [ ("iter", "iter"); ("v", "v"); ("iter2", "iter2"); ("w", "w") ]
       in
       let t1 = Eval.run (store ()) join in
       let t2 = Eval.run (store ()) cross_sel in
       let dump t =
         List.sort compare
           (List.init (Table.nrows t) (fun i ->
                Array.to_list (Array.map (Format.asprintf "%a" Value.pp) (Table.row t i))))
       in
       dump t1 = dump t2)

let prop_distinct_idempotent =
  QCheck2.Test.make ~count:100 ~name:"distinct is idempotent"
    gen_small_table
    (fun rows ->
       let b = Plan.builder () in
       let t = Plan.lit b [| "iter"; "v" |] rows in
       let d1 = Eval.run (store ()) (Plan.distinct b t) in
       let d2 = Eval.run (store ()) (Plan.distinct b (Plan.distinct b t)) in
       Table.nrows d1 = Table.nrows d2)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "algebra"
    [ ( "values",
        [ Alcotest.test_case "arithmetic" `Quick test_value_arith;
          Alcotest.test_case "comparison" `Quick test_value_compare;
          Alcotest.test_case "serialization" `Quick test_value_serialize ] );
      ( "operators",
        [ Alcotest.test_case "lit+project" `Quick test_lit_project;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "thetajoin inequality" `Quick test_thetajoin_inequality;
          Alcotest.test_case "thetajoin untyped" `Quick test_thetajoin_untyped;
          Alcotest.test_case "semi/anti join" `Quick test_semijoin_antijoin;
          Alcotest.test_case "cross+union+distinct" `Quick test_cross_union_distinct;
          Alcotest.test_case "rownum" `Quick test_rownum;
          Alcotest.test_case "rowid+attach" `Quick test_rowid_attach;
          Alcotest.test_case "fun2" `Quick test_fun2;
          Alcotest.test_case "aggregates" `Quick test_aggr;
          Alcotest.test_case "ebv aggregate" `Quick test_aggr_ebv;
          Alcotest.test_case "string-join" `Quick test_aggr_str_join;
          Alcotest.test_case "range" `Quick test_range ] );
      ( "store-ops",
        [ Alcotest.test_case "step+doc" `Quick test_step_doc;
          Alcotest.test_case "step dedup per iter" `Quick test_step_dedup_per_iter;
          Alcotest.test_case "elem construction" `Quick test_elem_construction;
          Alcotest.test_case "elem copies nodes" `Quick test_elem_copies_nodes;
          Alcotest.test_case "attr+text construction" `Quick test_attr_text_construction ] );
      ( "dag",
        [ Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "memoized eval" `Quick test_eval_memoizes;
          Alcotest.test_case "plan printing" `Quick test_plan_pp ] );
      qsuite "properties"
        [ prop_rownum_dense; prop_rowid_unique; prop_join_cross_select;
          prop_distinct_idempotent ];
    ]
