(* Tests for the compilation scheme and the algebraic order-indifference
   machinery: the Figure-7 rules (LOC#/BIND#/FN:UNORDERED), property
   inference, column dependency analysis and the rewrites it enables
   (operator counts mirroring Figures 6/9/10). *)

module A = Algebra.Plan
module C = Exrquy.Compile

let compile_text ?(mode = Xquery.Ast.Ordered) ?(rules = true) ?(cda = false) text =
  let q = Xquery.Parser.parse_query text in
  let core = Xquery.Normalize.normalize_query ~mode_override:mode q in
  let cfg = { (C.default_cfg ()) with C.unordered_rules = rules } in
  let _, plan = C.compile_core ~cfg core in
  if cda then Exrquy.Icols.optimize cfg.C.b plan else plan

let rownums p = A.count_kind p "%"
let rowids p = A.count_kind p "#"
let steps p = A.count_kind p "⊘"

let q6ish =
  {|for $b in doc("t.xml")/site/regions return count($b/descendant::item)|}

(* ------------------------------------------------------ figure 7 rules *)

let test_loc_rule () =
  (* ordered: steps are followed by %pos:<item>||iter *)
  let p = compile_text ~mode:Xquery.Ast.Ordered {|doc("t.xml")/a/b|} in
  Alcotest.(check int) "two rownums for two steps + none extra" 2 (rownums p);
  Alcotest.(check int) "no rowids" 0 (rowids p)

let test_loc_sharp_rule () =
  let p = compile_text ~mode:Xquery.Ast.Unordered {|doc("t.xml")/a/b|} in
  Alcotest.(check int) "LOC#: no rownums" 0 (rownums p);
  Alcotest.(check bool) "rowids instead" true (rowids p >= 2)

let test_rules_disabled () =
  (* the ablation switch: unordered mode compiled as if ordered *)
  let p = compile_text ~mode:Xquery.Ast.Unordered ~rules:false {|doc("t.xml")/a/b|} in
  Alcotest.(check int) "no # when rules are off" 0 (rowids p);
  Alcotest.(check int) "% as under ordered" 2 (rownums p)

let test_bind_rule () =
  let p = compile_text ~mode:Xquery.Ast.Ordered "for $x in 1 to 2 return $x" in
  Alcotest.(check int) "BIND uses % (+ the result numbering)" 2 (rownums p);
  let p = compile_text ~mode:Xquery.Ast.Unordered "for $x in 1 to 2 return $x" in
  (* BIND# for the binding; the result numbering %pos1:<bind,pos>||outer
     remains (iter->seq is not disabled by ordering mode, Figure 3) *)
  Alcotest.(check int) "BIND# leaves exactly the result %" 1 (rownums p);
  Alcotest.(check bool) "bind uses #" true (rowids p >= 1)

let test_orderby_uses_bind_sharp () =
  (* context (f): an order by clause makes binding order irrelevant *)
  let p =
    compile_text ~mode:Xquery.Ast.Ordered
      "for $x in (3,1,2) order by $x return $x"
  in
  Alcotest.(check bool) "# for the binding despite ordered mode" true (rowids p >= 1)

let test_fn_unordered_rule () =
  let p = compile_text ~mode:Xquery.Ast.Ordered "unordered((1,2,3))" in
  Alcotest.(check bool) "#pos on top" true (rowids p >= 1)

let test_quant_rule () =
  let p =
    compile_text ~mode:Xquery.Ast.Ordered "some $x in (1,2) satisfies $x > 1"
  in
  (* the quantifier's domain binds with # in either mode *)
  Alcotest.(check bool) "quantifier domain uses #" true (rowids p >= 1)

(* ------------------------------------------------- figures 6 and 9 (Q6) *)

let test_q6_ordered_plan () =
  let p = compile_text ~mode:Xquery.Ast.Ordered q6ish in
  (* Figure 6(a): five % operators (3 steps + bind + result numbering) *)
  Alcotest.(check int) "five rownums" 5 (rownums p)

let test_q6_unordered_plan () =
  let p = compile_text ~mode:Xquery.Ast.Unordered q6ish in
  (* Figure 6(b): all % but the result numbering traded for # *)
  Alcotest.(check int) "one rownum left" 1 (rownums p)

let test_q6_cda () =
  let p = compile_text ~mode:Xquery.Ast.Unordered ~cda:true q6ish in
  (* Figure 9 + Section 7: CDA removes the dead #pos chains and the
     property inference degrades the final % into a free # — no residual
     traces of order *)
  Alcotest.(check int) "no rownums after CDA" 0 (rownums p);
  let p_ord = compile_text ~mode:Xquery.Ast.Ordered q6ish in
  Alcotest.(check bool) "CDA shrinks the plan" true
    (A.count_ops p < A.count_ops p_ord)

let test_cda_keeps_required_order () =
  (* ordered mode without fn:unordered context: the result % must stay *)
  let p = compile_text ~mode:Xquery.Ast.Ordered ~cda:true
      {|for $x in doc("t.xml")/a/b return $x|} in
  Alcotest.(check bool) "result order survives CDA" true (rownums p >= 1)

(* --------------------------------------------------- figure 10 (| -> ,) *)

let test_union_becomes_concat () =
  let text = {|unordered { doc("t.xml")//(c|d) }|} in
  let p = compile_text ~mode:Xquery.Ast.Ordered ~cda:true text in
  Alcotest.(check int) "no sort left" 0 (rownums p);
  (* the union node remains, but as a cheap concatenation: no % above it *)
  Alcotest.(check bool) "union survives as append" true
    (A.count_kind p "∪" >= 1)

let test_step_merging () =
  (* descendant-or-self::node()/child::c fuses into descendant::c once the
     intermediate order is dead (Q6/Q7's exceptional speedup, Section 5) *)
  let p = compile_text ~mode:Xquery.Ast.Unordered ~cda:true {|doc("t.xml")//c|} in
  Alcotest.(check int) "single merged step" 1 (steps p);
  let nodes = A.topo_order p in
  let merged =
    List.exists
      (fun n ->
         match n.A.op with
         | A.Step { axis = Xmldb.Axis.Descendant; _ } -> true
         | _ -> false)
      nodes
  in
  Alcotest.(check bool) "descendant axis" true merged

let test_step_merging_needs_dead_order () =
  (* under the ordered baseline (rules+CDA off) the steps stay separate *)
  let p = compile_text ~mode:Xquery.Ast.Ordered ~rules:false {|doc("t.xml")//c|} in
  Alcotest.(check int) "two steps" 2 (steps p)

(* ------------------------------------------------------------ properties *)

let test_properties_consts () =
  let b = A.builder () in
  let loop = A.lit_loop b in
  let q = A.attach b loop "pos" (Algebra.Value.Int 1) in
  let props = Exrquy.Properties.infer q in
  let p = Exrquy.Properties.props props q in
  Alcotest.(check bool) "pos const" true
    (Exrquy.Properties.SMap.mem "pos" p.Exrquy.Properties.consts);
  Alcotest.(check bool) "iter const (unit loop)" true
    (Exrquy.Properties.SMap.mem "iter" p.Exrquy.Properties.consts)

let test_properties_arbitrary () =
  let b = A.builder () in
  let t = A.lit b [| "a" |] [ [| Algebra.Value.Int 1 |] ] in
  let r = A.rowid b t "id" in
  let pr = A.project b r [ ("x", "id") ] in
  let props = Exrquy.Properties.infer pr in
  let p = Exrquy.Properties.props props pr in
  Alcotest.(check bool) "arbitrary propagates through rename" true
    (Exrquy.Properties.SSet.mem "x" p.Exrquy.Properties.arbitrary)

let test_rownum_degradation () =
  (* %res:<id> over #id with const partition degrades to # (Section 7) *)
  let b = A.builder () in
  let t = A.lit b [| "v" |] [ [| Algebra.Value.Int 3 |]; [| Algebra.Value.Int 1 |] ] in
  let t = A.attach b t "grp" (Algebra.Value.Int 1) in
  let t = A.rowid b t "id" in
  let r = A.rownum b t "n" [ ("id", A.Asc) ] (Some "grp") in
  let keep = A.project b r [ ("n", "n"); ("v", "v") ] in
  let opt = Exrquy.Icols.optimize b keep in
  Alcotest.(check int) "degraded to rowid" 0 (rownums opt);
  Alcotest.(check bool) "rowid present" true (rowids opt >= 1)

let test_thetajoin_recognition () =
  let b = A.builder () in
  let l = A.lit b [| "a" |] [ [| Algebra.Value.Int 1 |]; [| Algebra.Value.Int 9 |] ] in
  let r = A.lit b [| "c" |] [ [| Algebra.Value.Int 5 |] ] in
  let x = A.cross b l r in
  let f = A.fun2 b x "keep" A.P_gt "a" "c" in
  let s = A.select b f "keep" in
  let p = A.project b s [ ("a", "a"); ("c", "c") ] in
  let opt = Exrquy.Icols.optimize b p in
  let has_theta =
    List.exists
      (fun n -> match n.A.op with A.Thetajoin _ -> true | _ -> false)
      (A.topo_order opt)
  in
  Alcotest.(check bool) "cross+select fused" true has_theta;
  (* and the fused plan computes the same rows *)
  let st = Xmldb.Doc_store.create () in
  let t1 = Algebra.Eval.run st p and t2 = Algebra.Eval.run st opt in
  Alcotest.(check int) "same cardinality" (Algebra.Table.nrows t1) (Algebra.Table.nrows t2)

let test_select_pushdown () =
  (* a selection on a left-side column descends below the join *)
  let b = A.builder () in
  let l = A.lit b [| "iter"; "flag" |]
      [ [| Algebra.Value.Int 1; Algebra.Value.Bool true |];
        [| Algebra.Value.Int 2; Algebra.Value.Bool false |] ] in
  let r = A.lit b [| "iter2"; "v" |]
      [ [| Algebra.Value.Int 1; Algebra.Value.Int 10 |];
        [| Algebra.Value.Int 2; Algebra.Value.Int 20 |] ] in
  let j = A.join b l r "iter" "iter2" in
  let s = A.select b j "flag" in
  let p = A.project b s [ ("iter", "iter"); ("v", "v"); ("flag", "flag") ] in
  let opt = Exrquy.Icols.optimize b p in
  let pushed =
    List.exists
      (fun n ->
         match n.A.op with
         | A.Join { left; _ } ->
           (match left.A.op with A.Select _ -> true | _ -> false)
         | _ -> false)
      (A.topo_order opt)
  in
  Alcotest.(check bool) "select below join" true pushed;
  (* and the results agree *)
  let st = Xmldb.Doc_store.create () in
  let t1 = Algebra.Eval.run st p and t2 = Algebra.Eval.run st opt in
  Alcotest.(check int) "same rows" (Algebra.Table.nrows t1) (Algebra.Table.nrows t2)

let test_cda_fixpoint () =
  (* optimizing an already-optimized plan is the identity *)
  let p = compile_text ~mode:Xquery.Ast.Unordered ~cda:true q6ish in
  let b = A.builder () in
  (* re-cons into a fresh builder via optimize: ids differ, shape must not *)
  let p2 = Exrquy.Icols.optimize b p in
  Alcotest.(check int) "op count stable" (A.count_ops p) (A.count_ops p2)

let test_join_recognition_flwor () =
  (* Q11's shape: the where-filtered inner loop becomes a theta join; no
     cross product of outer iterations with the domain remains *)
  let text =
    {|let $auction := doc("t.xml")
      for $p in $auction/site/people/person
      let $l := for $i in $auction/site/open_auctions/open_auction/initial
                where $p/profile/@income > 5000 * $i
                return $i
      return count($l)|}
  in
  let p = compile_text ~mode:Xquery.Ast.Ordered ~cda:true text in
  let has_theta =
    List.exists
      (fun n -> match n.A.op with A.Thetajoin { cmp = A.P_gt; _ } -> true | _ -> false)
      (A.topo_order p)
  in
  Alcotest.(check bool) "theta join present" true has_theta;
  (* with recognition off, the plan keeps the filter-over-everything shape *)
  let q = Xquery.Parser.parse_query text in
  let core = Xquery.Normalize.normalize_query ~mode_override:Xquery.Ast.Ordered q in
  let cfg = { (C.default_cfg ()) with C.join_rec = false } in
  let _, plan = C.compile_core ~cfg core in
  let plan = Exrquy.Icols.optimize cfg.C.b plan in
  let has_value_theta =
    List.exists
      (fun n -> match n.A.op with A.Thetajoin { cmp = A.P_gt; _ } -> true | _ -> false)
      (A.topo_order plan)
  in
  Alcotest.(check bool) "no theta join without recognition" false has_value_theta

let test_join_recognition_swapped () =
  (* Q8's orientation: the for-variable is on the left of the comparison *)
  let text =
    {|for $p in doc("t.xml")/site/people/person
      let $a := for $t in doc("t.xml")/site/closed_auctions/closed_auction
                where $t/buyer/@person = $p/@id
                return $t
      return count($a)|}
  in
  let p = compile_text ~mode:Xquery.Ast.Ordered ~cda:true text in
  let has_eq_theta =
    List.exists
      (fun n -> match n.A.op with A.Thetajoin { cmp = A.P_eq; _ } -> true | _ -> false)
      (A.topo_order p)
  in
  Alcotest.(check bool) "equality theta join present" true has_eq_theta

let test_hoisting_shares_path () =
  (* the inner for's domain is loop-invariant: the descendant step must
     appear once, not once per outer binding-level (Q11's "evaluated once
     only") *)
  let text =
    {|for $p in doc("t.xml")/site/people
      return count(for $i in doc("t.xml")/site/items return $i)|}
  in
  let p = compile_text ~mode:Xquery.Ast.Ordered text in
  (* child::site is shared between the two paths (hash-consing), and the
     inner path is hoisted out of the loop: 3 distinct steps, not 2 + 2n *)
  Alcotest.(check int) "3 shared steps" 3 (steps p)

let () =
  Alcotest.run "compiler"
    [ ( "figure7",
        [ Alcotest.test_case "rule LOC" `Quick test_loc_rule;
          Alcotest.test_case "rule LOC#" `Quick test_loc_sharp_rule;
          Alcotest.test_case "ablation switch" `Quick test_rules_disabled;
          Alcotest.test_case "rules BIND/BIND#" `Quick test_bind_rule;
          Alcotest.test_case "order by uses BIND#" `Quick test_orderby_uses_bind_sharp;
          Alcotest.test_case "rule FN:UNORDERED" `Quick test_fn_unordered_rule;
          Alcotest.test_case "rule QUANT" `Quick test_quant_rule ] );
      ( "figures6-9-10",
        [ Alcotest.test_case "Q6 ordered: 5 rownums (fig 6a)" `Quick test_q6_ordered_plan;
          Alcotest.test_case "Q6 unordered: 1 rownum (fig 6b)" `Quick test_q6_unordered_plan;
          Alcotest.test_case "Q6 + CDA: order-free (fig 9, §7)" `Quick test_q6_cda;
          Alcotest.test_case "CDA keeps required order" `Quick test_cda_keeps_required_order;
          Alcotest.test_case "union -> concat (fig 10)" `Quick test_union_becomes_concat;
          Alcotest.test_case "step merging" `Quick test_step_merging;
          Alcotest.test_case "no merging in baseline" `Quick test_step_merging_needs_dead_order ] );
      ( "analysis",
        [ Alcotest.test_case "const inference" `Quick test_properties_consts;
          Alcotest.test_case "arbitrary inference" `Quick test_properties_arbitrary;
          Alcotest.test_case "rownum degradation (§7)" `Quick test_rownum_degradation;
          Alcotest.test_case "thetajoin recognition" `Quick test_thetajoin_recognition;
          Alcotest.test_case "CDA fixpoint" `Quick test_cda_fixpoint;
          Alcotest.test_case "select pushdown" `Quick test_select_pushdown;
          Alcotest.test_case "join recognition (Q11 shape)" `Quick test_join_recognition_flwor;
          Alcotest.test_case "join recognition (swapped)" `Quick test_join_recognition_swapped;
          Alcotest.test_case "loop-invariant hoisting" `Quick test_hoisting_shares_path ] );
    ]
