(* Tests for the XMark substrate: generator determinism and schema
   coverage (the shapes the 20 queries probe), scale behaviour, and
   well-formedness of every query against the full pipeline. *)

let gen ~scale = Xmark.Xmark_gen.generate ~scale ()

let load scale =
  let st = Xmldb.Doc_store.create () in
  let root, bytes = Xmark.Xmark_gen.load ~scale st in
  (st, root, bytes)

let count st q =
  match Interp.Interpreter.run st q with
  | [ Algebra.Value.Int n ] -> n
  | _ -> Alcotest.failf "expected a single integer for %s" q

(* ------------------------------------------------------------- generator *)

let test_deterministic () =
  let a = gen ~scale:0.002 and b = gen ~scale:0.002 in
  Alcotest.(check int) "same size" (String.length a) (String.length b);
  Alcotest.(check bool) "bit identical" true (String.equal a b);
  let c = Xmark.Xmark_gen.generate ~seed:7 ~scale:0.002 () in
  Alcotest.(check bool) "seed changes content" false (String.equal a c)

let test_scaling () =
  let s1 = String.length (gen ~scale:0.002) in
  let s2 = String.length (gen ~scale:0.01) in
  let s3 = String.length (gen ~scale:0.05) in
  Alcotest.(check bool) "monotone growth" true (s1 < s2 && s2 < s3);
  (* roughly linear: 5x the scale within a factor-2 band of 5x the bytes *)
  let ratio = float_of_int s3 /. float_of_int s2 in
  Alcotest.(check bool) "roughly linear" true (ratio > 2.5 && ratio < 10.0)

let test_counts () =
  let c = Xmark.Xmark_gen.counts_of_scale 1.0 in
  Alcotest.(check int) "persons at f=1" 25500 c.Xmark.Xmark_gen.persons;
  Alcotest.(check int) "open auctions at f=1" 12000 c.Xmark.Xmark_gen.open_auctions;
  let st, _, _ = load 0.002 in
  let c = Xmark.Xmark_gen.counts_of_scale 0.002 in
  Alcotest.(check int) "generated persons match counts"
    c.Xmark.Xmark_gen.persons
    (count st {|count(doc("auction.xml")/site/people/person)|});
  Alcotest.(check int) "generated auctions match counts"
    c.Xmark.Xmark_gen.open_auctions
    (count st {|count(doc("auction.xml")/site/open_auctions/open_auction)|})

let test_schema_coverage () =
  let st, _, _ = load 0.01 in
  let nonzero what q =
    if count st q <= 0 then Alcotest.failf "no %s generated" what
  in
  (* every structural feature some query depends on *)
  nonzero "regions" {|count(doc("auction.xml")/site/regions/*)|};
  nonzero "europe items (Q9)" {|count(doc("auction.xml")/site/regions/europe/item)|};
  nonzero "australia items (Q13)" {|count(doc("auction.xml")/site/regions/australia/item)|};
  nonzero "person0 (Q1)"
    {|count(doc("auction.xml")/site/people/person[@id = "person0"])|};
  nonzero "incomes (Q11)"
    {|count(doc("auction.xml")/site/people/person/profile/@income)|};
  nonzero "persons without profile (Q20 na)"
    {|count(for $p in doc("auction.xml")/site/people/person
            where empty($p/profile) return $p)|};
  nonzero "homepage-less persons (Q17)"
    {|count(for $p in doc("auction.xml")/site/people/person
            where empty($p/homepage) return $p)|};
  nonzero "bidders (Q2/Q3)"
    {|count(doc("auction.xml")/site/open_auctions/open_auction/bidder)|};
  nonzero "reserves (Q4/Q18)"
    {|count(doc("auction.xml")/site/open_auctions/open_auction/reserve)|};
  nonzero "initial (Q11)"
    {|count(doc("auction.xml")/site/open_auctions/open_auction/initial)|};
  nonzero "closed auction prices (Q5)"
    {|count(doc("auction.xml")/site/closed_auctions/closed_auction/price)|};
  nonzero "interest categories (Q10)"
    {|count(doc("auction.xml")/site/people/person/profile/interest/@category)|};
  nonzero "gold descriptions (Q14)"
    {|count(for $i in doc("auction.xml")/site//item
            where contains(string(exactly-one($i/description)), "gold")
            return $i)|};
  nonzero "nested parlists (Q15/Q16 path prefix)"
    {|count(doc("auction.xml")//description/parlist/listitem/parlist)|};
  nonzero "emph keywords (Q15 tail)"
    {|count(doc("auction.xml")//text/emph/keyword)|}

let test_document_parses_cleanly () =
  (* the generator must emit well-formed XML that round-trips *)
  let src = gen ~scale:0.002 in
  let st = Xmldb.Doc_store.create () in
  let root = Xmldb.Xml_parser.parse_document st src in
  let re = Xmldb.Serialize.node_to_string st root in
  let st2 = Xmldb.Doc_store.create () in
  let root2 = Xmldb.Xml_parser.parse_document st2 re in
  Alcotest.(check string) "serialize-parse stable" re
    (Xmldb.Serialize.node_to_string st2 root2)

(* --------------------------------------------------------------- queries *)

let test_queries_compile () =
  List.iter
    (fun (name, q) ->
       (* parse + normalize + compile + optimize, under both modes *)
       List.iter
         (fun opts ->
            match Engine.plans_of ~opts q with
            | _, raw, opt ->
              if Algebra.Plan.count_ops raw = 0 || Algebra.Plan.count_ops opt = 0
              then Alcotest.failf "%s: empty plan" name
            | exception e ->
              Alcotest.failf "%s fails to compile: %s" name (Printexc.to_string e))
         [ Engine.default_opts;
           Engine.ordered_baseline;
           { Engine.default_opts with Engine.mode = Some Xquery.Ast.Unordered } ])
    Xmark.Xmark_queries.all

let test_q1_result () =
  let st, _, _ = load 0.002 in
  let r = Engine.run st Xmark.Xmark_queries.q1 in
  Alcotest.(check int) "exactly one name" 1 (List.length r.Engine.items)

let test_q20_brackets_partition () =
  (* preferred + standard + challenge + na = all persons *)
  let st, _, _ = load 0.005 in
  let r = Engine.run_to_string st Xmark.Xmark_queries.q20 in
  let persons = count st {|count(doc("auction.xml")/site/people/person)|} in
  (* parse the four counters out of the result element *)
  let st2 = Xmldb.Doc_store.create () in
  let root = Xmldb.Xml_parser.parse_document st2 r in
  let total =
    List.fold_left
      (fun acc tag ->
         let nodes =
           Xmldb.Staircase.step st2 Xmldb.Axis.Descendant
             (Xmldb.Node_test.Name (Xmldb.Doc_store.name_test_id st2 (Xmldb.Qname.make tag)))
             [| root |]
         in
         acc + int_of_string (Xmldb.Doc_store.string_value st2 nodes.(0)))
      0 [ "preferred"; "standard"; "challenge"; "na" ]
  in
  Alcotest.(check int) "income brackets partition the population" persons total

let test_q5_threshold () =
  let st, _, _ = load 0.005 in
  let n = count st Xmark.Xmark_queries.q5 in
  let all = count st {|count(doc("auction.xml")/site/closed_auctions/closed_auction)|} in
  Alcotest.(check bool) "0 <= q5 <= all" true (n >= 0 && n <= all)

let () =
  Alcotest.run "xmark"
    [ ( "generator",
        [ Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "scaling" `Quick test_scaling;
          Alcotest.test_case "entity counts" `Quick test_counts;
          Alcotest.test_case "schema coverage" `Quick test_schema_coverage;
          Alcotest.test_case "well-formed output" `Quick test_document_parses_cleanly ] );
      ( "queries",
        [ Alcotest.test_case "all 20 compile under every mode" `Quick test_queries_compile;
          Alcotest.test_case "Q1 finds person0" `Quick test_q1_result;
          Alcotest.test_case "Q20 partitions the population" `Quick test_q20_brackets_partition;
          Alcotest.test_case "Q5 bounded by population" `Quick test_q5_threshold ] );
    ]
